package toposearch_test

import (
	"context"
	"errors"
	"testing"

	"toposearch"
)

// TestNewSearcherContextCancelled asserts the offline phase aborts
// promptly with the context's error when the context is already
// cancelled — the table-stakes property for serving: a caller that
// gives up must not leave a topology computation running.
func TestNewSearcherContextCancelled(t *testing.T) {
	db, err := toposearch.Synthetic(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA,
		toposearch.DefaultSearcherConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("NewSearcherContext on cancelled ctx: got %v, want context.Canceled", err)
	}
}

// TestSearchContextCancelled asserts a cancelled context aborts query
// execution across representative methods, including the SQL strawman
// whose start-node loop has its own cancellation checks.
func TestSearchContextCancelled(t *testing.T) {
	s := figure3Searcher(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, method := range []string{"", "sql", "full-top-k-et"} {
		q := paperSearch()
		q.Method = method
		if method == "full-top-k-et" {
			q.K, q.Ranking = 3, toposearch.RankDomain
		}
		if _, err := s.SearchContext(ctx, q); !errors.Is(err, context.Canceled) {
			t.Fatalf("SearchContext(method=%q) on cancelled ctx: got %v, want context.Canceled", method, err)
		}
	}
}

// TestSearchContextBackground asserts the context-aware entry points
// agree with the plain ones when the context never fires.
func TestSearchContextBackground(t *testing.T) {
	s := figure3Searcher(t)
	plain, err := s.Search(paperSearch())
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := s.SearchContext(context.Background(), paperSearch())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Topologies) != len(withCtx.Topologies) {
		t.Fatalf("SearchContext returned %d topologies, Search returned %d",
			len(withCtx.Topologies), len(plain.Topologies))
	}
}

// TestSearcherParallelismSetting asserts the public Parallelism knob
// produces the same precomputed tables as the sequential default.
func TestSearcherParallelismSetting(t *testing.T) {
	db, err := toposearch.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	build := func(par int) *toposearch.Searcher {
		cfg := toposearch.DefaultSearcherConfig()
		cfg.PruneThreshold = 0
		cfg.Parallelism = par
		s, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	seq, par := build(1), build(8)
	if seq.TopologyCount() != par.TopologyCount() {
		t.Fatalf("TopologyCount: sequential %d vs parallel %d", seq.TopologyCount(), par.TopologyCount())
	}
	if seq.PrunedCount() != par.PrunedCount() {
		t.Fatalf("PrunedCount: sequential %d vs parallel %d", seq.PrunedCount(), par.PrunedCount())
	}
	ids1, fr1 := seq.FrequencyRank()
	ids2, fr2 := par.FrequencyRank()
	for i := range ids1 {
		if ids1[i] != ids2[i] || fr1[i] != fr2[i] {
			t.Fatalf("FrequencyRank diverged at %d: (%d,%d) vs (%d,%d)",
				i, ids1[i], fr1[i], ids2[i], fr2[i])
		}
	}
}
