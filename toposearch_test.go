package toposearch_test

import (
	"strings"
	"testing"

	"toposearch"
)

func figure3Searcher(t *testing.T) *toposearch.Searcher {
	t.Helper()
	db, err := toposearch.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	cfg := toposearch.DefaultSearcherConfig()
	cfg.PruneThreshold = 0 // prune the frequent paths, as in Figure 13
	s, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func paperSearch() toposearch.SearchQuery {
	return toposearch.SearchQuery{
		Cons1: []toposearch.Constraint{{Column: "desc", Keyword: "enzyme"}},
		Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}},
	}
}

func TestPublicAPIQuickstart(t *testing.T) {
	db, err := toposearch.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if db.NumEntities() != 11 || db.NumRelationships() != 11 {
		t.Errorf("db size = %d/%d, want 11/11", db.NumEntities(), db.NumRelationships())
	}
	if len(db.EntitySets()) != 7 {
		t.Errorf("entity sets = %v", db.EntitySets())
	}
	s := figure3Searcher(t)
	res, err := s.Search(paperSearch())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's running example: exactly four topologies T1-T4.
	if len(res.Topologies) != 4 {
		for _, tp := range res.Topologies {
			t.Logf("  %+v", tp)
		}
		t.Fatalf("got %d topologies, want 4", len(res.Topologies))
	}
	// One of them must be the self-contained T3/T4 family: 2 classes.
	multi := 0
	for _, tp := range res.Topologies {
		if tp.Classes == 2 {
			multi++
		}
		if tp.Structure == "" || tp.Nodes == 0 {
			t.Errorf("incomplete result %+v", tp)
		}
		if tp.Frequency != 1 {
			t.Errorf("frequency = %d, want 1", tp.Frequency)
		}
	}
	if multi != 2 {
		t.Errorf("two-class topologies = %d, want 2 (T3 and T4)", multi)
	}
	if res.Method != "fast-top" {
		t.Errorf("default non-top-k method = %q", res.Method)
	}
}

func TestPublicAPITopK(t *testing.T) {
	s := figure3Searcher(t)
	q := paperSearch()
	q.K = 2
	q.Ranking = toposearch.RankDomain
	res, err := s.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Topologies) != 2 {
		t.Fatalf("top-2 returned %d", len(res.Topologies))
	}
	// Domain ranking puts the complex (2-class) topologies first.
	if res.Topologies[0].Classes != 2 {
		t.Errorf("top domain-ranked topology has %d classes, want 2", res.Topologies[0].Classes)
	}
	if res.Topologies[0].Score < res.Topologies[1].Score {
		t.Error("results not in score order")
	}
	if res.Method != "fast-top-k-opt" {
		t.Errorf("default top-k method = %q", res.Method)
	}
	if res.Plan == "" {
		t.Error("no plan reported")
	}
	// Method override.
	q.Method = "full-top-k-et"
	res2, err := s.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Topologies) != 2 || res2.Topologies[0].ID != res.Topologies[0].ID {
		t.Errorf("method override disagrees: %+v vs %+v", res2.Topologies, res.Topologies)
	}
}

func TestPublicAPIInstancesAndWitness(t *testing.T) {
	s := figure3Searcher(t)
	res, err := s.Search(paperSearch())
	if err != nil {
		t.Fatal(err)
	}
	foundWitness := false
	for _, tp := range res.Topologies {
		inst := s.Instances(tp.ID, 0)
		if len(inst) == 0 {
			t.Errorf("topology %d has no instances", tp.ID)
			continue
		}
		if lim := s.Instances(tp.ID, 1); len(lim) != 1 {
			t.Errorf("limit ignored: %d", len(lim))
		}
		lines, ok := s.Witness(inst[0][0], inst[0][1], tp.ID)
		if !ok {
			t.Errorf("no witness for topology %d pair %v", tp.ID, inst[0])
			continue
		}
		foundWitness = true
		for _, l := range lines {
			if !strings.Contains(l, "-[") {
				t.Errorf("malformed witness line %q", l)
			}
		}
	}
	if !foundWitness {
		t.Error("no witnesses rendered")
	}
	// Nonexistent witness.
	if _, ok := s.Witness(32, 215, res.Topologies[0].ID); ok {
		t.Error("witness for unrelated pair")
	}
}

func TestPublicAPIExplainAndStats(t *testing.T) {
	s := figure3Searcher(t)
	plan, err := s.Explain(paperSearch())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "chosen plan:") {
		t.Errorf("Explain output: %q", plan)
	}
	if s.TopologyCount() == 0 {
		t.Error("no topologies")
	}
	if s.PrunedCount() == 0 {
		t.Error("nothing pruned at threshold 0")
	}
	ids, freqs := s.FrequencyRank()
	if len(ids) != s.TopologyCount() || len(freqs) != len(ids) {
		t.Error("FrequencyRank size mismatch")
	}
	for i := 1; i < len(freqs); i++ {
		if freqs[i] > freqs[i-1] {
			t.Error("FrequencyRank not descending")
		}
	}
	sp := s.Space()
	if sp.AllTopsRows == 0 || sp.Ratio <= 0 {
		t.Errorf("Space report %+v", sp)
	}
}

func TestPublicAPISynthetic(t *testing.T) {
	db, err := toposearch.Synthetic(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumEntities() == 0 {
		t.Fatal("empty synthetic db")
	}
	s, err := db.NewSearcher(toposearch.Protein, toposearch.Interaction, toposearch.DefaultSearcherConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Search(toposearch.SearchQuery{K: 5, Ranking: toposearch.RankFreq})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Topologies) == 0 {
		t.Error("no topologies for unconstrained P-I query")
	}
	for i := 1; i < len(res.Topologies); i++ {
		if res.Topologies[i].Score > res.Topologies[i-1].Score {
			t.Error("scores not descending")
		}
	}
}

func TestPublicAPIErrors(t *testing.T) {
	db, err := toposearch.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.NewSearcher("Nope", toposearch.DNA, toposearch.DefaultSearcherConfig()); err == nil {
		t.Error("unknown entity set accepted")
	}
	s := figure3Searcher(t)
	// Bad constraint: neither keyword nor equals.
	if _, err := s.Search(toposearch.SearchQuery{
		Cons1: []toposearch.Constraint{{Column: "desc"}},
	}); err == nil {
		t.Error("empty constraint accepted")
	}
	// Bad column.
	if _, err := s.Search(toposearch.SearchQuery{
		Cons1: []toposearch.Constraint{{Column: "nope", Keyword: "x"}},
	}); err == nil {
		t.Error("unknown column accepted")
	}
	// Bad method.
	if _, err := s.Search(toposearch.SearchQuery{Method: "bogus"}); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestNoPruningConfig(t *testing.T) {
	db, err := toposearch.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	cfg := toposearch.DefaultSearcherConfig()
	cfg.PruneThreshold = -1
	s, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.PrunedCount() != 0 {
		t.Errorf("pruned %d with pruning disabled", s.PrunedCount())
	}
}

func TestPublicAPISQL(t *testing.T) {
	db, err := toposearch.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// Searcher materializes the topology tables the SQL can query.
	if _, err := db.NewSearcher(toposearch.Protein, toposearch.DNA,
		toposearch.DefaultSearcherConfig()); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`
		SELECT DISTINCT AT.TID
		FROM Protein P, DNA D, AllTops_Protein_DNA AT
		WHERE P.desc.ct('enzyme') AND D.type = 'mRNA'
		  AND P.ID = AT.E1 AND D.ID = AT.E2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || len(res.Rows) != 4 {
		t.Errorf("SQL over AllTops: cols=%v rows=%d, want 1 col 4 rows (T1..T4)",
			res.Columns, len(res.Rows))
	}
	if _, err := db.Query("SELEC nope"); err == nil {
		t.Error("bad SQL accepted")
	}
}
