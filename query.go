package toposearch

import (
	"toposearch/internal/relstore"
	"toposearch/internal/sql"
)

// QueryRows is a generic SQL result: column names plus rows of stringly
// rendered values.
type QueryRows struct {
	Columns []string
	Rows    [][]string
}

// Query executes a SQL statement in the paper's dialect against the
// database — base tables plus any AllTops/LeftTops/ExcpTops/TopInfo
// tables materialized by searchers built on this DB. Supported syntax:
//
//	SELECT [DISTINCT] items FROM table [alias], ...
//	WHERE col = col | col = literal | col.ct('word')
//	      | NOT EXISTS (SELECT ...) [AND ...]
//	[UNION select]
//	[ORDER BY column [DESC]] [FETCH FIRST k ROWS ONLY]
//
// This lets the paper's own listings (SQL1–SQL5) run verbatim; see
// internal/sql for the dialect details.
func (db *DB) Query(stmt string) (*QueryRows, error) {
	cols, rows, err := sql.Run(db.rel, stmt, nil)
	if err != nil {
		return nil, err
	}
	out := &QueryRows{Columns: cols}
	for _, r := range rows {
		rendered := make([]string, len(r))
		for i, v := range r {
			if v.Kind == relstore.TString {
				rendered[i] = v.Str
			} else {
				rendered[i] = v.String()
			}
		}
		out.Rows = append(out.Rows, rendered)
	}
	return out, nil
}
