package toposearch

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"toposearch/internal/core"
	"toposearch/internal/delta"
	"toposearch/internal/fault"
	"toposearch/internal/graph"
	"toposearch/internal/methods"
	"toposearch/internal/obs"
	"toposearch/internal/ranking"
	"toposearch/internal/relstore"
	"toposearch/internal/shard"
)

// EnginePanicError is the typed containment of a panic that occurred
// inside the engine — in a speculative segment worker, a shard
// executor, an offline-computation worker, a cache fill, or a refresh.
// Panics never escape Search/Refresh or kill sibling queries; they
// surface as an error carrying the containment site, the panic value,
// and the goroutine stack. When the panic value was itself an error
// (fault injection panics with one), errors.Is/As see through to it.
type EnginePanicError = fault.PanicError

// ErrInjected is the sentinel wrapped by every error the fault
// registry injects (internal/fault); chaos tests match rejections
// against it with errors.Is.
var ErrInjected = fault.ErrInjected

// faultAccessor fires at the top of the guarded read-path accessors
// (Explain, Instances, Witness, Space): the chaos harness uses it to
// prove a panic inside an accessor is contained instead of escaping to
// the caller.
var faultAccessor = fault.Register("searcher.accessor")

// ErrOverloaded is returned by Search when admission control rejects
// the query: the searcher is at MaxInflight, the wait queue is at
// MaxQueue (or the queue wait timed out), and load must shed. Callers
// should back off and retry.
var ErrOverloaded = errors.New("toposearch: searcher overloaded")

// SearcherConfig controls the offline phase of a Searcher.
type SearcherConfig struct {
	// MaxLen is the path-length bound l (default 3, as in the paper).
	MaxLen int
	// PruneThreshold prunes topologies relating more entity pairs than
	// this from the precomputed tables (Fast-Top, Section 4.2). A
	// negative value disables pruning.
	PruneThreshold int
	// MaxCombinations bounds the per-pair Definition 2 enumeration.
	MaxCombinations int
	// WeakPruning drops weak-relationship schema paths (Appendix B);
	// meaningful for MaxLen >= 4.
	WeakPruning bool
	// Parallelism is the worker count of both phases. Offline, start
	// nodes are sharded across this many workers; online, every Search
	// shards its driving entity scan and the per-pruned-topology
	// existence checks the same way (0 = GOMAXPROCS, 1 = sequential).
	// The precomputed tables AND every query result are byte-identical
	// at every setting.
	Parallelism int
	// Speculation is the default speculative ET width for queries that
	// leave SearchQuery.Speculation at 0: early-termination plans
	// partition their score-ordered group stream into this many
	// contiguous segments racing on their own workers, cancelling
	// losers the moment the k-th witness commits. 0 and 1 keep the
	// classical sequential stack. Results (items, plans, useful-work
	// counters) are byte-identical at every setting; only latency and
	// the wasted-work report change.
	Speculation int
	// Shards is the default scatter-gather shard count for queries that
	// leave SearchQuery.Shards at 0: the searcher partitions its start-
	// entity space (and the ET plans' group stream) into this many
	// contiguous cost-weighted ranges, runs one executor per shard, and
	// merges the per-shard top-k streams — ET shards additionally
	// exchanging the global k-th bound so a shard stops once results
	// emitted below it already cover the top k. Delta batches route to
	// shards by the same partition function, keeping sharded and
	// single-store runs equivalent. 0 and 1 keep single-store
	// execution. Results are byte-identical at every shard count.
	Shards int
	// CacheBytes bounds the searcher's generation-tagged query result
	// cache: repeated queries between mutation batches become O(1)
	// lookups, and Refresh carries entries whose dependency footprint is
	// disjoint from the update frontier forward into the new generation
	// instead of flushing. 0 uses the 64 MiB default; a negative value
	// disables the cache. Cached results are byte-identical to uncached
	// execution (see SearchResult.CacheHit).
	CacheBytes int64
	// MaxInflight bounds how many Search calls may execute
	// concurrently (0 = unbounded). A query arriving while all slots
	// are busy first degrades — its speculative width and shard count
	// are clamped to 1, which never changes results — and waits in a
	// bounded queue for a slot; only when the queue itself is full (or
	// the wait exceeds QueueTimeout) is it rejected with ErrOverloaded.
	MaxInflight int
	// MaxQueue bounds how many degraded queries may wait for an
	// admission slot before new arrivals are rejected with
	// ErrOverloaded (0 = unbounded queue). Only meaningful with
	// MaxInflight > 0.
	MaxQueue int
	// QueueTimeout bounds how long a queued query waits for a slot
	// before giving up with ErrOverloaded (0 = wait until the query's
	// context expires). Only meaningful with MaxInflight > 0.
	QueueTimeout time.Duration
}

// DefaultSearcherConfig matches the paper's main experimental setup:
// l = 3 with frequency pruning.
func DefaultSearcherConfig() SearcherConfig {
	return SearcherConfig{MaxLen: 3, PruneThreshold: 8, MaxCombinations: 4096}
}

// Searcher answers topology queries for one entity-set pair, using the
// precomputed LeftTops/ExcpTops/TopInfo tables (the Fast-Top family).
//
// A Searcher is safe for concurrent use: the offline phase pre-builds
// every index and statistics object the query plans read, so any
// number of goroutines may call Search/SearchContext/Explain on one
// Searcher (or on several Searchers sharing one DB) simultaneously.
//
// A Searcher on a live DB stays consistent under inserts: every query
// runs against one atomically published store generation. Refresh
// incrementally folds the rows applied since the last refresh into a
// new generation (recomputing only the affected start-node frontier)
// and swaps it in; queries already running finish on the old one.
type Searcher struct {
	db     *DB
	spec   int // default speculative ET width for queries
	shards int // default scatter-gather shard count for queries

	store atomic.Pointer[methods.Store]

	// cache is the generation-tagged result cache (nil when disabled);
	// cacheRanges is the entity-bucket partition its dependency
	// footprints are recorded against, frozen at construction — table
	// positions are append-only, so the position→bucket mapping stays
	// valid across every later generation.
	cache       *methods.ResultCache
	cacheRanges shard.Ranges

	refreshMu   sync.Mutex // serializes Refresh
	cursor      int        // applied-edge log position this searcher has absorbed
	closed      bool
	lastRouting []int                // per-shard affected-start counts of the last sharded Refresh
	lastDiff    *methods.RefreshDiff // materializer outcome of the last full Refresh

	// lifecycle lets Close drain in-flight queries: every Search holds
	// the read side for its duration, Close takes the write side
	// momentarily. Queries keep working on a closed searcher (see
	// Close); the drain only guarantees none straddles the close.
	lifecycle sync.RWMutex

	// Admission control (nil admit = unbounded).
	admit     chan struct{}
	maxQueue  int
	queueWait time.Duration

	// sid labels this searcher's metric series ("<es1>-<es2>#<seq>");
	// met holds the resolved per-searcher instruments. The admission and
	// robustness counters live directly on the obs registry — Stats()
	// is a snapshot view over them.
	sid string
	met searcherMetrics
}

// SearcherStats is a point-in-time snapshot of a searcher's admission
// and robustness counters.
type SearcherStats struct {
	// Inflight is the number of Search calls currently executing;
	// Waiting the number queued for an admission slot.
	Inflight, Waiting int64
	// Admitted, Rejected and Degraded count admission outcomes:
	// queries that got a slot, queries shed with ErrOverloaded, and
	// queries that ran with speculation/sharding clamped to 1 because
	// they arrived under contention. Zero when MaxInflight is 0.
	Admitted, Rejected, Degraded int64
	// Canceled counts queries whose context expired while they waited
	// in the admission queue: they left without a slot and without
	// being shed, so every queued query resolves to exactly one of
	// Admitted, Rejected or Canceled.
	Canceled int64
	// PanicsContained counts panics recovered into EnginePanicError
	// values by Search and Refresh instead of crashing the process.
	PanicsContained int64
	// Partials counts deadline-bounded queries that returned a partial
	// result (SearchResult.Partial).
	Partials int64
}

// Stats snapshots the searcher's admission-control and robustness
// counters. The counters live on the obs metrics registry (labeled
// with this searcher's series id); SearcherStats remains the stable
// snapshot view over them.
func (s *Searcher) Stats() SearcherStats {
	return SearcherStats{
		Inflight: int64(s.met.inflight.Value()), Waiting: int64(s.met.waiting.Value()),
		Admitted: s.met.admitted.Value(), Rejected: s.met.rejected.Value(), Degraded: s.met.degraded.Value(),
		Canceled:        s.met.canceled.Value(),
		PanicsContained: s.met.panics.Value(), Partials: s.met.partials.Value(),
	}
}

// current returns the store generation queries should run against.
func (s *Searcher) current() *methods.Store { return s.store.Load() }

// NewSearcher runs the offline phase (topology computation + pruning +
// materialization) for the entity-set pair.
func (db *DB) NewSearcher(es1, es2 string, cfg SearcherConfig) (*Searcher, error) {
	return db.NewSearcherContext(context.Background(), es1, es2, cfg)
}

// NewSearcherContext is NewSearcher with a cancellation context: the
// offline topology computation runs on cfg.Parallelism workers and
// aborts with the context's error once it is cancelled (checked at
// start-node granularity).
func (db *DB) NewSearcherContext(ctx context.Context, es1, es2 string, cfg SearcherConfig) (*Searcher, error) {
	opts := core.Options{
		MaxLen:           cfg.MaxLen,
		MaxCombinations:  cfg.MaxCombinations,
		MaxPathsPerClass: 64,
		Parallelism:      cfg.Parallelism,
	}
	if cfg.WeakPruning {
		opts.Weak = core.DefaultWeakRules()
	}
	threshold := cfg.PruneThreshold
	if threshold < 0 {
		threshold = 1 << 40 // effectively no pruning
	}
	// Snapshot the graph together with the applied-edge log position it
	// reflects, so the first Refresh starts exactly where this build
	// left off. The searcher's cursor is registered with the DB inside
	// the same critical section: from this moment the applied-edge log
	// must retain everything at or after it until the searcher
	// refreshes past it or closes.
	s := &Searcher{db: db, spec: cfg.Speculation, shards: cfg.Shards}
	s.sid, s.met = newSearcherMetrics(es1, es2)
	if cfg.MaxInflight > 0 {
		s.admit = make(chan struct{}, cfg.MaxInflight)
		s.maxQueue = cfg.MaxQueue
		s.queueWait = cfg.QueueTimeout
	}
	db.mu.Lock()
	g := db.graphNow()
	s.cursor = db.log.Len()
	db.cursors[s] = s.cursor
	db.mu.Unlock()
	var t0 time.Time
	if obs.Enabled() {
		t0 = time.Now()
	}
	st, err := methods.BuildStoreFromGraph(ctx, db.rel, g, db.sg, es1, es2, methods.StoreConfig{
		Opts:           opts,
		PruneThreshold: threshold,
		Scores:         ranking.Schemes(),
	})
	if err != nil {
		s.Close()
		return nil, err
	}
	if !t0.IsZero() {
		obsBuildDur.Observe(time.Since(t0).Seconds())
	}
	s.store.Store(st)
	if cfg.CacheBytes >= 0 {
		bytes := cfg.CacheBytes
		if bytes == 0 {
			bytes = 64 << 20
		}
		s.cache = methods.NewResultCache(bytes)
		s.cacheRanges = st.EntityShardRanges(methods.FootprintBuckets)
	}
	return s, nil
}

// Close releases the searcher's claim on the DB's applied-edge log:
// its cursor leaves the DB's registry, allowing the log to be
// truncated past the mutations this searcher had not yet absorbed.
// Close first drains: it waits for every in-flight Search to finish,
// so no query straddles the cursor unregistration. Queries STARTED on
// a closed searcher keep working against its last store generation
// (the snapshot stays fully valid), but Refresh becomes a no-op.
// Close is idempotent and safe to race with Search; the cursor is
// unregistered exactly once.
func (s *Searcher) Close() {
	// Drain: the write side of the lifecycle lock is granted only once
	// every in-flight Search has released its read side.
	s.lifecycle.Lock()
	s.lifecycle.Unlock() //nolint:staticcheck // empty critical section IS the drain

	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.db.mu.Lock()
	delete(s.db.cursors, s)
	s.db.truncateLogLocked()
	s.db.mu.Unlock()
	// Drop this searcher's labeled series from the exposition; the
	// instrument pointers in s.met stay valid, so Stats() keeps working
	// on a closed searcher.
	releaseSearcherMetrics(s.sid)
}

// Refresh incrementally folds the mutations applied to the DB since
// this Searcher was built (or last refreshed) into its precomputed
// tables: the affected start-node frontier — entity-set-1 nodes within
// path range of the new relationships — is recomputed on the
// configured worker pool, merged with the untouched results, re-pruned
// and rematerialized, producing tables and query results byte-identical
// to running the offline phase from scratch on the grown database.
// Queries keep running throughout and switch to the new generation
// atomically. Refresh returns the number of new relationship rows it
// absorbed (0 means there was nothing to do).
func (s *Searcher) Refresh() (int, error) {
	return s.RefreshContext(context.Background())
}

// RefreshContext is Refresh with a cancellation context: the frontier
// recomputation aborts with the context's error once cancelled, in
// which case the current generation stays in place.
//
// Refresh is failure-contained and atomic: a failure or panic anywhere
// in the recomputation surfaces as an error (panics as
// *EnginePanicError) and leaves the current generation, the result
// cache, and the edge-log cursor exactly as they were — the next
// Refresh simply redoes the work.
func (s *Searcher) RefreshContext(ctx context.Context) (n int, err error) {
	// Metrics defer installed before the recover defer (LIFO) so it
	// sees the final n/err.
	if obs.Enabled() {
		t0 := time.Now()
		defer func() {
			status := "ok"
			if err != nil {
				status = "error"
			}
			obsRefreshDur.With(status).Observe(time.Since(t0).Seconds())
			obsRefreshEdges.Add(int64(n))
			obsDeltaBytes.Set(float64(s.db.rel.DeltaBytes()))
		}()
	}
	defer func() {
		if v := recover(); v != nil {
			n, err = 0, fault.NewPanicError("searcher.refresh", v)
		}
		var pe *EnginePanicError
		if errors.As(err, &pe) {
			s.met.panics.Inc()
		}
	}()
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	if s.closed {
		return 0, nil
	}
	s.db.mu.Lock()
	g := s.db.graphNow()
	edges, cursor := s.db.log.Since(s.cursor)
	s.db.mu.Unlock()
	st := s.current()
	if cursor == s.cursor && g == st.G {
		return 0, nil // nothing applied since the last refresh
	}
	if len(edges) == 0 {
		// Entity-only growth: topology tables cannot have changed, only
		// the graph needs swapping.
		s.store.Store(st.RefreshShallow(g))
		s.advanceCursor(cursor)
		return 0, nil
	}
	affected := delta.AffectedStarts(g, st.ES1, st.Cfg.Opts.EffectiveMaxLen(), edges)
	if s.shards > 1 {
		// Route the affected frontier to shards by the SAME partition
		// function sharded queries cut their entity ranges with, then
		// refresh every shard's share. The routed maps are disjoint with
		// union equal to the frontier, so folding them back together
		// recomputes exactly the affected set — one new generation, with
		// per-shard routing recorded for observability. Entities the
		// current generation doesn't know yet (this batch inserted them)
		// clamp to the last shard until the new generation re-cuts.
		routed := delta.RouteStarts(affected, s.shards, func(n graph.NodeID) int {
			return st.ShardOfEntity(int64(n), s.shards)
		})
		s.lastRouting = make([]int, len(routed))
		merged := make(map[graph.NodeID]bool, len(affected))
		for i, m := range routed {
			s.lastRouting[i] = len(m)
			for n := range m {
				merged[n] = true
			}
		}
		affected = merged
	} else {
		s.lastRouting = nil
	}
	ns, diff, err := st.RefreshDiff(ctx, g, affected)
	if err != nil {
		return 0, err
	}
	// Everything fallible is done. Derive the cache invalidation set
	// BEFORE publishing so the publication sequence below — generation
	// swap, cache advance, cursor advance — has no failure point left
	// and a contained fault can never leave them half-updated.
	var mask methods.Footprint
	var tail []int32
	if s.cache != nil && diff.TidStable {
		mask, tail = ns.InvalidationSet(diff, affected, s.cacheRanges)
	}
	s.store.Store(ns)
	s.lastDiff = diff
	if s.cache != nil {
		// Frontier-scoped invalidation: entries whose dependency
		// footprint is disjoint from the update's dirty start set are
		// retagged into the new generation; only intersecting entries
		// are dropped. An unstable topology registry renumbers IDs, so
		// nothing cached can be trusted — flush.
		s.cache.Advance(st.Gen, ns.Gen, cursor, mask, tail, ns.T1, !diff.TidStable)
	}
	s.advanceCursor(cursor)
	return len(edges), nil
}

// LastRefreshDiff reports how the last full Refresh materialized each
// precomputed table (nil before the first one).
func (s *Searcher) LastRefreshDiff() *methods.RefreshDiff {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	return s.lastDiff
}

// CacheStats snapshots the result cache's counters (zero value when
// the cache is disabled).
func (s *Searcher) CacheStats() methods.CacheStats {
	if s.cache == nil {
		return methods.CacheStats{}
	}
	return s.cache.Stats()
}

// ShardRouting reports, per shard, how many affected start entities
// the last sharded Refresh routed to it (nil when the searcher is
// unsharded or has not refreshed since going sharded).
func (s *Searcher) ShardRouting() []int {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	return append([]int(nil), s.lastRouting...)
}

// advanceCursor records that this searcher has absorbed the log up to
// cursor, both locally and in the DB's registry, and lets the DB drop
// log entries no live searcher needs anymore.
func (s *Searcher) advanceCursor(cursor int) {
	s.cursor = cursor
	s.db.mu.Lock()
	s.db.cursors[s] = cursor
	s.db.truncateLogLocked()
	s.db.mu.Unlock()
}

// SearchQuery is a 2-query: constraints on both entity sets, plus
// optional top-k controls and an evaluation method override.
type SearchQuery struct {
	Cons1, Cons2 []Constraint
	// K limits the result to the k best topologies (0 = all).
	K int
	// Ranking orders results (RankFreq, RankRare, RankDomain);
	// required when K > 0. Defaults to RankDomain when K > 0.
	Ranking string
	// Method overrides the evaluation strategy (one of the paper's
	// nine method names, e.g. "fast-top-k-opt"). Empty picks
	// fast-top-k-opt for top-k queries and fast-top otherwise.
	Method string
	// Speculation overrides the searcher's default speculative ET
	// width for this query (0 = inherit SearcherConfig.Speculation;
	// 1 = force the sequential stack).
	Speculation int
	// Shards overrides the searcher's default scatter-gather shard
	// count for this query (0 = inherit SearcherConfig.Shards;
	// 1 = force single-store execution).
	Shards int
	// Deadline bounds the query's execution time. 0 means no bound.
	// When the deadline expires the query fails with
	// context.DeadlineExceeded — unless PartialOK is set, in which case
	// it returns the ranked results produced so far with
	// SearchResult.Partial reporting the cut. Deadline-bounded queries
	// bypass the result cache (a partial answer must never be cached).
	Deadline time.Duration
	// PartialOK permits a deadline-bounded query to return a partial
	// result instead of failing at the deadline. See Deadline.
	PartialOK bool
	// Trace collects a span tree of this query's execution —
	// compile, cache lookup/fill, method dispatch, optimizer choice,
	// scan/join windows, ET segments, shard executors, merges — into
	// SearchResult.Trace: the engine's EXPLAIN ANALYZE. Tracing records
	// timings and counter attributes only; the result's topologies and
	// work counters are byte-identical to an untraced run. Independent
	// of SetMetricsEnabled.
	Trace bool
}

// TopologyResult describes one result topology.
type TopologyResult struct {
	ID        int
	Score     int64
	Structure string // canonical structure rendering
	Nodes     int
	Edges     int
	Classes   int // number of path equivalence classes unioned
	IsPath    bool
	Frequency int // entity pairs related by this topology (whole DB)
}

// SearchResult is the outcome of a Search.
type SearchResult struct {
	Topologies []TopologyResult
	// Method is the evaluation method that ran.
	Method string
	// Plan is the physical strategy the optimizer chose (Opt methods).
	Plan string
	// Speculation is the speculative ET width the query ran with (0 =
	// no speculation). Speculation changes only latency, never results.
	Speculation int
	// WastedWork is the physical work (rows scanned + index probes)
	// burned by losing speculative segment workers; useful work is
	// byte-identical to a sequential run.
	WastedWork int64
	// Shards is the scatter-gather shard count the query ran with (0 =
	// single-store execution). Sharding changes only latency and the
	// per-shard accounting below, never results.
	Shards int
	// ShardStats holds one entry per shard executor, in partition
	// order (nil when Shards is 0).
	ShardStats []ShardStat
	// CacheHit reports the result came from the searcher's result cache
	// (or a collapsed concurrent computation) instead of a method run.
	// The topologies are byte-identical to a fresh execution; Method,
	// Plan and the work accounting describe the run that populated the
	// entry.
	CacheHit bool
	// Partial reports that the query's Deadline expired with PartialOK
	// set: Topologies holds the ranked results produced before the
	// cut — a subset of the full answer. Per-shard completeness is in
	// ShardStats.
	Partial bool
	// Degraded reports that admission control clamped this query's
	// speculation and sharding to 1 because it arrived while all
	// MaxInflight slots were busy. Results are unaffected.
	Degraded bool
	// Trace is the execution span tree, present iff SearchQuery.Trace
	// was set. On a cache hit it holds the lookup path only (the work
	// spans belong to the query that filled the entry).
	Trace *TraceSpan
}

// ShardStat is one shard executor's share of a sharded Search.
type ShardStat struct {
	// Shard is the executor's index in partition order.
	Shard int
	// Work is the physical work the shard burned (rows scanned + index
	// probes), useful or not.
	Work int64
	// Witnesses is the number of results the shard produced before the
	// global merge.
	Witnesses int
	// Pruned reports that the global bound exchange stopped the shard
	// early: results emitted below it already covered the top k.
	Pruned bool
	// Complete reports the shard ran its window to the end (or was
	// legitimately stopped by the bound exchange or the top-k commit)
	// rather than being cut off by the query deadline. Always true for
	// non-partial results.
	Complete bool
}

func (q SearchQuery) method() string {
	if q.Method != "" {
		return q.Method
	}
	if q.K > 0 {
		return methods.MethodFastTopOpt
	}
	return methods.MethodFastTop
}

func (q SearchQuery) ranking() string {
	if q.Ranking != "" {
		return q.Ranking
	}
	if q.K > 0 {
		return RankDomain
	}
	return ""
}

func (s *Searcher) compileQuery(st *methods.Store, q SearchQuery) (methods.Query, error) {
	p1, _, err := s.db.compile(st.ES1, q.Cons1)
	if err != nil {
		return methods.Query{}, err
	}
	p2, _, err := s.db.compile(st.ES2, q.Cons2)
	if err != nil {
		return methods.Query{}, err
	}
	mq := methods.Query{Pred1: p1, Pred2: p2, K: q.K, Ranking: q.ranking()}
	mq.Speculation = q.Speculation
	if mq.Speculation == 0 {
		mq.Speculation = s.spec
	}
	mq.Shards = q.Shards
	if mq.Shards == 0 {
		mq.Shards = s.shards
	}
	return mq, nil
}

// Search runs the query and returns the matching topologies.
func (s *Searcher) Search(q SearchQuery) (*SearchResult, error) {
	return s.SearchContext(context.Background(), q)
}

// acquire admits one Search call under the MaxInflight bound. The fast
// path takes a free slot immediately; under contention the query joins
// the bounded wait queue and — once admitted — runs degraded
// (speculation and sharding clamped to 1, which never changes
// results). The queue overflowing, or the wait exceeding QueueTimeout,
// rejects with ErrOverloaded. release is non-nil exactly when err is
// nil.
func (s *Searcher) acquire(ctx context.Context) (degraded bool, release func(), err error) {
	if s.admit == nil {
		return false, func() {}, nil
	}
	select {
	case s.admit <- struct{}{}:
		s.met.admitted.Inc()
		return false, func() { <-s.admit }, nil
	default:
	}
	if n := int64(s.met.waiting.Add(1)); s.maxQueue > 0 && n > int64(s.maxQueue) {
		s.met.waiting.Add(-1)
		s.met.rejected.Inc()
		return false, nil, fmt.Errorf("%w: wait queue full (%d waiting)", ErrOverloaded, s.maxQueue)
	}
	defer s.met.waiting.Add(-1)
	var timeout <-chan time.Time
	if s.queueWait > 0 {
		t := time.NewTimer(s.queueWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case s.admit <- struct{}{}:
		s.met.admitted.Inc()
		s.met.degraded.Inc()
		return true, func() { <-s.admit }, nil
	case <-timeout:
		s.met.rejected.Inc()
		return false, nil, fmt.Errorf("%w: no slot within %v", ErrOverloaded, s.queueWait)
	case <-ctx.Done():
		// A context-cancelled queued query leaves without a slot and
		// without being shed; count it so Admitted + Rejected + Canceled
		// covers every queued arrival and the obs admission families
		// never under-count.
		s.met.canceled.Inc()
		return false, nil, ctx.Err()
	}
}

// SearchContext is Search with a cancellation context: long-running
// execution plans abort with the context's error once it is cancelled.
//
// SearchContext is failure-contained: a panic anywhere in the
// execution engine — including this call's own goroutine — surfaces as
// a *EnginePanicError instead of crashing the process, and sibling
// queries are unaffected.
func (s *Searcher) SearchContext(ctx context.Context, q SearchQuery) (res *SearchResult, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Latency metric: installed before the recover defer (LIFO) so it
	// observes the final res/err, including a contained panic. One
	// atomic load when telemetry is off.
	if obs.Enabled() {
		t0 := time.Now()
		defer func() {
			status := "ok"
			switch {
			case errors.Is(err, ErrOverloaded):
				status = "shed"
			case err != nil:
				status = "error"
			case res != nil && res.Partial:
				status = "partial"
			}
			obsQueryDur.With(q.method(), status).Observe(time.Since(t0).Seconds())
			if s.cache != nil {
				cs := s.cache.Stats()
				s.met.cacheBytes.Set(float64(cs.Bytes))
				s.met.cacheEntries.Set(float64(cs.Entries))
			}
		}()
	}
	// Hold the lifecycle read side for the whole call so Close can
	// drain in-flight queries.
	s.lifecycle.RLock()
	defer s.lifecycle.RUnlock()
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, fault.NewPanicError("searcher.search", v)
		}
		var pe *EnginePanicError
		if errors.As(err, &pe) {
			s.met.panics.Inc()
		}
	}()
	var root *TraceSpan
	if q.Trace {
		root = obs.NewTrace("search")
	}
	degraded, release, err := s.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	if degraded {
		root.SetInt("degraded", 1)
	}

	st := s.current()
	cs := root.Child("compile")
	mq, err := s.compileQuery(st, q)
	cs.End()
	if err != nil {
		return nil, err
	}
	if degraded {
		mq.Speculation, mq.Shards = 1, 1
	}
	m := q.method()
	// finishTrace seals the span tree onto a successful result. Traced
	// or not, the work performed is identical — spans only record
	// timings — so traced results stay byte-identical to untraced ones.
	finishTrace := func(r *SearchResult) {
		if root != nil && r != nil {
			root.End()
			r.Trace = root
		}
	}
	if q.Deadline > 0 || q.PartialOK {
		// Deadline-bounded queries bypass the cache entirely: a partial
		// answer must never be cached, and the cache's detached fill
		// deliberately ignores per-caller deadlines.
		mq.PartialOK = q.PartialOK
		mq.Trace = root.Child("execute")
		if q.Deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, q.Deadline)
			defer cancel()
		}
		res, err := s.execSearch(ctx, st, m, mq)
		if err != nil {
			return nil, err
		}
		if res.Partial {
			s.met.partials.Inc()
		}
		res.Degraded = degraded
		finishTrace(res)
		return res, nil
	}
	if s.cache == nil {
		mq.Trace = root.Child("execute")
		res, err := s.execSearch(ctx, st, m, mq)
		if res != nil {
			res.Degraded = degraded
			finishTrace(res)
		}
		return res, err
	}
	// Cache lookup under the (generation, edge-log position) tag: the
	// store snapshot plus the applied-edge log position pin everything a
	// result can depend on (method executors also read the live base
	// tables, which only change when a batch appends to the log).
	// The fill runs detached from this caller's context: if this caller
	// is cancelled mid-fill, waiters collapsed onto the flight still get
	// a completed result, and this caller returns its ctx error.
	//
	// The epoch is snapshotted here, before the fill can start, and
	// re-read after the fill's last base-table read: a batch applied
	// mid-fill means the execution may have observed post-epoch rows, so
	// the result is returned to the waiters but never cached under the
	// pre-fill tag (which would break the cached-results-byte-identical
	// invariant for any query that read the epoch before the batch).
	key := searchCacheKey(q)
	epoch := s.db.log.Len()
	fillCtx := context.WithoutCancel(ctx)
	lookup := root.Child("cache.lookup")
	v, hit, err := s.cache.GetOrCompute(ctx, key, st.Gen, epoch, func() (any, int64, methods.Footprint, relstore.Pred, bool, error) {
		// This closure runs only for the flight that computes the
		// entry, so a fill span here always belongs to this caller's
		// own tree. The cached value itself never carries a trace.
		fmq := mq
		fmq.Trace = lookup.Child("cache.fill")
		res, err := s.execSearch(fillCtx, st, m, fmq)
		fmq.Trace.End()
		if err != nil {
			return nil, 0, 0, nil, false, err
		}
		fp := methods.QueryFootprint(st.T1, mq.Pred1, s.cacheRanges)
		// Epoch re-check, AFTER the last base-table read above. Taken
		// under db.mu: ApplyBatch makes rows visible and appends to the
		// log while holding that lock, so once we acquire it any batch
		// whose rows this fill could have observed has finished its
		// append — Len moved — and the entry is skipped.
		cacheable := s.epochSettled() == epoch
		return res, res.approxBytes(), fp, mq.Pred1, cacheable, nil
	})
	if lookup != nil {
		if hit {
			lookup.SetInt("hit", 1)
		} else {
			lookup.SetInt("hit", 0)
		}
		lookup.End()
	}
	if err != nil {
		return nil, err
	}
	out := v.(*SearchResult).clone()
	out.CacheHit = hit
	out.Degraded = degraded
	finishTrace(out)
	return out, nil
}

// execSearch runs the query against the store generation and shapes
// the public result.
func (s *Searcher) execSearch(ctx context.Context, st *methods.Store, m string, mq methods.Query) (*SearchResult, error) {
	res, err := st.RunContext(ctx, m, mq)
	if err != nil {
		return nil, err
	}
	out := &SearchResult{Method: m, Plan: res.Plan.String(),
		Speculation: res.Spec.Width, WastedWork: res.Spec.Wasted.Work(),
		Shards: res.Shard.Count, Partial: res.Partial}
	for _, st := range res.Shard.Stats {
		out.ShardStats = append(out.ShardStats, ShardStat{
			Shard: st.Shard, Work: st.Work, Witnesses: st.Witnesses, Pruned: st.Pruned,
			Complete: st.Complete,
		})
	}
	pd := st.Res.Pair(st.ES1, st.ES2)
	for _, it := range res.Items {
		info := st.Res.Reg.Info(it.TID)
		out.Topologies = append(out.Topologies, TopologyResult{
			ID:        int(it.TID),
			Score:     it.Score,
			Structure: info.Describe(),
			Nodes:     info.NumNodes,
			Edges:     info.NumEdges,
			Classes:   len(info.Sigs),
			IsPath:    info.IsPath,
			Frequency: pd.Freq[it.TID],
		})
	}
	return out, nil
}

// epochSettled reads the applied-edge log length under db.mu. Unlike a
// bare log.Len() — safe but racy against a batch that has already made
// its rows visible and not yet appended to the log — acquiring db.mu
// orders the read after any in-flight ApplyBatch completes, so a cache
// fill comparing this against its pre-fill snapshot detects every
// batch whose rows it could have observed.
func (s *Searcher) epochSettled() int {
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	return s.db.log.Len()
}

// searchCacheKey canonicalizes the result-identity part of the query:
// resolved method and ranking, k, and the sorted constraint renderings.
// Latency-only knobs (Speculation, Shards, the searcher's parallelism)
// never enter the key — results are byte-identical across them.
func searchCacheKey(q SearchQuery) string {
	return methods.CacheKey(q.method(), q.ranking(), q.K, renderCons(q.Cons1), renderCons(q.Cons2))
}

func renderCons(cons []Constraint) []string {
	out := make([]string, len(cons))
	for i, c := range cons {
		if c.Keyword != "" {
			out[i] = "kw\x00" + c.Column + "\x00" + c.Keyword
		} else {
			out[i] = "eq\x00" + c.Column + "\x00" + c.Equals
		}
	}
	return out
}

// clone returns a copy whose slices are detached from the receiver, so
// callers can never mutate a cached entry through a returned result.
func (r *SearchResult) clone() *SearchResult {
	cp := *r
	cp.Topologies = append([]TopologyResult(nil), r.Topologies...)
	cp.ShardStats = append([]ShardStat(nil), r.ShardStats...)
	return &cp
}

// approxBytes estimates the result's resident size for the cache's
// memory accounting, mirroring relstore's ApproxBytes spirit: struct
// sizes plus string payloads.
func (r *SearchResult) approxBytes() int64 {
	b := int64(128 + len(r.Method) + len(r.Plan))
	for _, t := range r.Topologies {
		b += int64(72 + len(t.Structure))
	}
	b += int64(32 * len(r.ShardStats))
	return b
}

// guardAccessor gives the read-path accessors (Explain, Instances,
// Witness, Space) the same lifecycle and containment treatment
// SearchContext has: the read side of the lifecycle lock is held for
// the whole call, so Close's drain covers accessors too, and a panic
// inside fn is recovered into *EnginePanicError and counted in
// SearcherStats.PanicsContained. The searcher.accessor fault point
// fires before fn; an injected error (or contained panic) surfaces on
// Explain and degrades the error-less accessors to their zero returns.
func (s *Searcher) guardAccessor(site string, fn func() error) (err error) {
	s.lifecycle.RLock()
	defer s.lifecycle.RUnlock()
	defer func() {
		if v := recover(); v != nil {
			err = fault.NewPanicError(site, v)
			s.met.panics.Inc()
		}
	}()
	if err = faultAccessor.Hit(); err != nil {
		return err
	}
	return fn()
}

// Explain returns the optimizer's plan choice and rendering for a
// top-k query without executing it.
func (s *Searcher) Explain(q SearchQuery) (string, error) {
	var plan string
	err := s.guardAccessor("searcher.explain", func() error {
		st := s.current()
		mq, err := s.compileQuery(st, q)
		if err != nil {
			return err
		}
		if mq.Ranking == "" {
			mq.Ranking = RankDomain
		}
		if mq.K == 0 {
			mq.K = 10
		}
		p, choice, err := st.ExplainOpt(mq, true)
		if err != nil {
			return err
		}
		plan = fmt.Sprintf("chosen plan: %s\n%s", choice.Kind, p)
		return nil
	})
	if err != nil {
		return "", err
	}
	return plan, nil
}

// Instances lists up to limit entity pairs related by the topology
// (limit 0 = all). A contained panic yields nil.
func (s *Searcher) Instances(topologyID int, limit int) [][2]int64 {
	var out [][2]int64
	_ = s.guardAccessor("searcher.instances", func() error {
		st := s.current()
		pairs := st.Res.Instances(st.ES1, st.ES2, core.TopologyID(topologyID))
		if limit > 0 && len(pairs) > limit {
			pairs = pairs[:limit]
		}
		out = make([][2]int64, len(pairs))
		for i, p := range pairs {
			out[i] = [2]int64{int64(p[0]), int64(p[1])}
		}
		return nil
	})
	return out
}

// Witness renders, for one entity pair and topology, the concrete
// paths whose union realizes the topology — one line per path, e.g.
// "Protein:78 -[uni_encodes]- Unigene:103 -[uni_contains]- DNA:215".
// It runs against the same graph generation as the searcher's current
// precomputed tables, so topology IDs always resolve consistently.
func (s *Searcher) Witness(a, b int64, topologyID int) ([]string, bool) {
	var lines []string
	var found bool
	_ = s.guardAccessor("searcher.witness", func() error {
		st := s.current()
		g := st.G
		w, ok := core.WitnessFor(g, st.Res.Reg,
			graph.NodeID(a), graph.NodeID(b), core.TopologyID(topologyID), st.Cfg.Opts)
		if !ok {
			return nil
		}
		lines = make([]string, len(w.Paths))
		for i, p := range w.Paths {
			var sb strings.Builder
			for j, n := range p.Nodes {
				t, _ := g.NodeType(n)
				fmt.Fprintf(&sb, "%s:%d", g.NodeTypes.Name(t), int64(n))
				if j < len(p.Edges) {
					fmt.Fprintf(&sb, " -[%s]- ", g.EdgeTypes.Name(p.Types[j]))
				}
			}
			lines[i] = sb.String()
		}
		found = true
		return nil
	})
	if !found {
		return nil, false
	}
	return lines, true
}

// Space reports the precomputed tables' storage footprint (the paper's
// Table 1 row for this pair). A contained panic yields a zero report.
func (s *Searcher) Space() methods.SpaceReport {
	var rep methods.SpaceReport
	_ = s.guardAccessor("searcher.space", func() error {
		rep = s.current().Space()
		return nil
	})
	return rep
}

// PrunedCount reports how many topologies the offline phase pruned.
func (s *Searcher) PrunedCount() int { return len(s.current().PrunedTIDs) }

// TopologyCount reports how many distinct topologies were observed for
// the pair.
func (s *Searcher) TopologyCount() int { return s.current().TopInfo.NumRows() }

// FrequencyRank returns (topologyID, frequency) pairs sorted by
// descending frequency — the data behind the paper's Figures 11/12.
func (s *Searcher) FrequencyRank() ([]int, []int) {
	st := s.current()
	ids, freqs := st.Res.Pair(st.ES1, st.ES2).FrequencyRank()
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out, freqs
}
