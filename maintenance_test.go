// Tests for the storage-maintenance policies: the automatic
// compaction trigger (DeltaBytes vs ApproxBytes) and the truncation of
// the applied-edge log below the minimum live searcher cursor.
package toposearch

import (
	"fmt"
	"testing"
)

func maintenanceBatch(n, tag int) []Update {
	var ups []Update
	for i := 0; i < n; i++ {
		p := int64(1_800_000 + tag*1000 + i)
		ups = append(ups,
			InsertEntity(Protein, p, map[string]string{"desc": fmt.Sprintf("maintenance protein %d-%d", tag, i)}),
			InsertRelationship("encodes", p, int64(2_000_000+i%20)),
		)
	}
	return ups
}

func TestAutoCompactPolicy(t *testing.T) {
	db, err := Synthetic(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	db.Compact() // the generator's bulk load leaves pending write state behind
	if d := db.rel.DeltaBytes(); d != 0 {
		t.Fatalf("compacted database has DeltaBytes %d, want 0", d)
	}

	// Policy off: applied rows stay in the delta structures.
	if err := db.ApplyBatch(maintenanceBatch(8, 0)); err != nil {
		t.Fatal(err)
	}
	if d := db.rel.DeltaBytes(); d == 0 {
		t.Fatal("batch with auto-compaction off left no delta state; the policy test cannot observe anything")
	}

	// An effectively-zero threshold compacts right after the batch.
	db.SetAutoCompact(1e-9)
	if err := db.ApplyBatch(maintenanceBatch(8, 1)); err != nil {
		t.Fatal(err)
	}
	if d := db.rel.DeltaBytes(); d != 0 {
		t.Fatalf("DeltaBytes %d after auto-compacting batch, want 0", d)
	}

	// A huge threshold never fires.
	db.SetAutoCompact(0.99)
	if err := db.ApplyBatch(maintenanceBatch(8, 2)); err != nil {
		t.Fatal(err)
	}
	if d := db.rel.DeltaBytes(); d == 0 {
		t.Fatal("DeltaBytes 0 after batch under a 99% threshold; the policy fired when it should not have")
	}
}

func TestLogTruncatedBelowMinSearcherCursor(t *testing.T) {
	db, err := Synthetic(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SearcherConfig{MaxLen: 2, PruneThreshold: 8, MaxCombinations: 1024, Parallelism: 2}
	s1, err := db.NewSearcher(Protein, DNA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.NewSearcher(Protein, Unigene, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const edges = 8
	if err := db.ApplyBatch(maintenanceBatch(edges, 0)); err != nil {
		t.Fatal(err)
	}
	if got := db.log.Retained(); got != edges {
		t.Fatalf("log retains %d edges after batch, want %d", got, edges)
	}

	// One searcher refreshing does not allow truncation: the other
	// still needs the edges.
	if _, err := s1.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := db.log.Retained(); got != edges {
		t.Fatalf("log retains %d edges while a searcher lags, want %d", got, edges)
	}

	// Once every live searcher has absorbed them the records go away.
	if _, err := s2.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := db.log.Retained(); got != 0 {
		t.Fatalf("log retains %d edges after all searchers refreshed, want 0", got)
	}

	// Closing a lagging searcher releases its claim.
	if err := db.ApplyBatch(maintenanceBatch(edges, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := db.log.Retained(); got != edges {
		t.Fatalf("log retains %d edges while the lagging searcher is open, want %d", got, edges)
	}
	s2.Close()
	if got := db.log.Retained(); got != 0 {
		t.Fatalf("log retains %d edges after the lagging searcher closed, want 0", got)
	}
	// Refreshing a closed searcher is a harmless no-op.
	if n, err := s2.Refresh(); err != nil || n != 0 {
		t.Fatalf("Refresh on a closed searcher = (%d, %v), want (0, nil)", n, err)
	}
	// The surviving searcher keeps refreshing normally.
	if err := db.ApplyBatch(maintenanceBatch(edges, 2)); err != nil {
		t.Fatal(err)
	}
	if n, err := s1.Refresh(); err != nil || n != edges {
		t.Fatalf("Refresh after close = (%d, %v), want (%d, nil)", n, err, edges)
	}
	if got := db.log.Retained(); got != 0 {
		t.Fatalf("log retains %d edges with one live refreshed searcher, want 0", got)
	}
}
