// Golden equivalence suite for the live-update subsystem: applying a
// mutation batch to a running Searcher and refreshing incrementally
// must produce byte-identical precomputed tables AND byte-identical
// query results (items, counters, plan choices) to rebuilding the
// whole store from scratch over the grown database — at parallelism 1
// and 8. This is the correctness gate CI runs for incremental
// maintenance (go test -run LiveUpdate).
package toposearch

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"toposearch/internal/methods"
	"toposearch/internal/relstore"
)

// liveBatch stages growth that exercises every maintenance shape: new
// entities on both sides of the pair, a fresh pruning-exception
// triangle, links into existing hubs (shifting topology frequencies
// across the prune threshold), and an ambiguous-by-name "interaction"
// relationship resolved by its endpoints.
func liveBatch() []Update {
	var ups []Update
	for i := 0; i < 6; i++ {
		p := int64(1_900_000 + i)
		d := int64(2_900_000 + i)
		u := int64(3_900_000 + i)
		ups = append(ups,
			InsertEntity(Protein, p, map[string]string{"desc": fmt.Sprintf("novel enzyme %d kwsel50", i)}),
			InsertEntity(DNA, d, map[string]string{"type": "mRNA", "desc": fmt.Sprintf("novel dna %d kwsel50 kwsel85", i)}),
			InsertEntity(Unigene, u, map[string]string{"desc": fmt.Sprintf("novel cluster %d", i)}),
			InsertRelationship("encodes", p, d),
			InsertRelationship("uni_encodes", u, p),
			InsertRelationship("uni_contains", u, d),
			InsertRelationship("encodes", p, int64(2_000_000+i%40)),
			InsertRelationship("uni_encodes", int64(3_000_000+i%20), int64(1_000_000+i%30)),
		)
	}
	// Self-regulation motif touching an existing interaction hub, via
	// the name-ambiguous "interaction" relationship.
	ups = append(ups,
		InsertRelationship("interaction", 1_900_000, 4_000_003),
		InsertRelationship("interaction", 1_900_001, 4_000_003),
		InsertRelationship("interaction", 2_900_000, 4_000_003),
	)
	return ups
}

func dumpLiveTable(t *relstore.Table) string {
	var sb strings.Builder
	sb.WriteString(t.Schema.String())
	sb.WriteByte('\n')
	t.Scan(func(pos int32, r relstore.Row) bool {
		fmt.Fprintf(&sb, "%v\n", r)
		return true
	})
	return sb.String()
}

func liveConfig(workers int) SearcherConfig {
	return SearcherConfig{MaxLen: 3, PruneThreshold: 2, MaxCombinations: 4096, Parallelism: workers}
}

func TestLiveUpdateEquivalenceGolden(t *testing.T) {
	ctx := context.Background()
	batch := liveBatch()
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Live path: build, mutate, refresh incrementally.
			db1, err := Synthetic(1, 42)
			if err != nil {
				t.Fatal(err)
			}
			s1, err := db1.NewSearcherContext(ctx, Protein, DNA, liveConfig(workers))
			if err != nil {
				t.Fatal(err)
			}
			rowsBefore := s1.current().AllTops.NumRows()
			if err := db1.ApplyBatch(batch); err != nil {
				t.Fatal(err)
			}
			edges, err := s1.RefreshContext(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if edges == 0 {
				t.Fatal("Refresh absorbed no edges")
			}
			db1.Compact()
			if again, err := s1.Refresh(); err != nil || again != 0 {
				t.Fatalf("second Refresh = %d, %v; want 0, nil", again, err)
			}

			// Rebuild path: same final data, offline phase from scratch.
			db2, err := Synthetic(1, 42)
			if err != nil {
				t.Fatal(err)
			}
			if err := db2.ApplyBatch(batch); err != nil {
				t.Fatal(err)
			}
			db2.Compact()
			s2, err := db2.NewSearcherContext(ctx, Protein, DNA, liveConfig(workers))
			if err != nil {
				t.Fatal(err)
			}

			st1, st2 := s1.current(), s2.current()
			if st1.AllTops.NumRows() == rowsBefore {
				t.Fatal("batch did not change AllTops; the equivalence check would be vacuous")
			}
			for _, tb := range []struct {
				name string
				a, b *relstore.Table
			}{
				{"AllTops", st1.AllTops, st2.AllTops},
				{"LeftTops", st1.LeftTops, st2.LeftTops},
				{"ExcpTops", st1.ExcpTops, st2.ExcpTops},
				{"TopInfo", st1.TopInfo, st2.TopInfo},
			} {
				if got, want := dumpLiveTable(tb.a), dumpLiveTable(tb.b); got != want {
					t.Errorf("%s diverges between incremental refresh and rebuild (%d vs %d rows)",
						tb.name, tb.a.NumRows(), tb.b.NumRows())
				}
			}
			if got, want := fmt.Sprint(st1.PrunedTIDs), fmt.Sprint(st2.PrunedTIDs); got != want {
				t.Errorf("pruned TIDs diverge: %s vs %s", got, want)
			}

			// Query results — items, physical counters and plan choices —
			// must match on every method.
			p1, err := relstore.Contains(st1.T1.Schema, "desc", "kwsel50")
			if err != nil {
				t.Fatal(err)
			}
			p2, err := relstore.Eq(st1.T2.Schema, "type", relstore.StrVal("mRNA"))
			if err != nil {
				t.Fatal(err)
			}
			for _, method := range methods.AllMethods() {
				q := methods.Query{Pred1: p1, Pred2: p2, K: 10, Ranking: RankDomain, Parallelism: workers}
				r1, err := st1.Run(method, q)
				if err != nil {
					t.Fatalf("%s on refreshed store: %v", method, err)
				}
				r2, err := st2.Run(method, q)
				if err != nil {
					t.Fatalf("%s on rebuilt store: %v", method, err)
				}
				if !reflect.DeepEqual(r1.Items, r2.Items) {
					t.Errorf("%s: items diverge: %v vs %v", method, r1.Items, r2.Items)
				}
				if r1.Counters != r2.Counters {
					t.Errorf("%s: counters diverge: %+v vs %+v", method, r1.Counters, r2.Counters)
				}
				if r1.Plan != r2.Plan {
					t.Errorf("%s: plan diverges: %s vs %s", method, r1.Plan, r2.Plan)
				}
			}

			// And the public Search surface agrees too.
			sq := SearchQuery{
				Cons1: []Constraint{{Column: "desc", Keyword: "kwsel50"}},
				Cons2: []Constraint{{Column: "type", Equals: "mRNA"}},
				K:     10,
			}
			out1, err := s1.SearchContext(ctx, sq)
			if err != nil {
				t.Fatal(err)
			}
			out2, err := s2.SearchContext(ctx, sq)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out1, out2) {
				t.Errorf("public Search results diverge:\n%+v\nvs\n%+v", out1, out2)
			}
		})
	}
}

// TestLiveUpdateConcurrentSearch races searches against batch
// application and incremental refreshes: queries must keep succeeding
// on a consistent store generation throughout (run under -race in CI).
func TestLiveUpdateConcurrentSearch(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	ctx := context.Background()
	db, err := Synthetic(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSearcherContext(ctx, Protein, DNA, liveConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	sq := SearchQuery{
		Cons1: []Constraint{{Column: "desc", Keyword: "kwsel50"}},
		K:     5,
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.SearchContext(ctx, sq)
				if err != nil {
					t.Errorf("search during live update: %v", err)
					return
				}
				if len(res.Topologies) == 0 {
					t.Error("search returned no topologies during live update")
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		p := int64(1_950_000 + i)
		d := int64(2_950_000 + i)
		ups := []Update{
			InsertEntity(Protein, p, map[string]string{"desc": fmt.Sprintf("live protein %d kwsel50", i)}),
			InsertEntity(DNA, d, map[string]string{"type": "mRNA", "desc": "live dna kwsel50"}),
			InsertRelationship("encodes", p, d),
			InsertRelationship("encodes", p, int64(2_000_000+i)),
		}
		if err := db.ApplyBatch(ups); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RefreshContext(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	db.Compact()

	// Final state matches a from-scratch rebuild of the searcher.
	s2, err := db.NewSearcherContext(ctx, Protein, DNA, liveConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dumpLiveTable(s.current().AllTops), dumpLiveTable(s2.current().AllTops); got != want {
		t.Error("AllTops after concurrent live updates diverges from rebuild")
	}
}

// TestLiveUpdateValidation checks batch atomicity: a batch with any
// invalid mutation must leave the database untouched.
func TestLiveUpdateValidation(t *testing.T) {
	db, err := Synthetic(1, 42)
	if err != nil {
		t.Fatal(err)
	}
	ents, rels := db.NumEntities(), db.NumRelationships()
	cases := []struct {
		name string
		ups  []Update
	}{
		{"duplicate entity", []Update{InsertEntity(Protein, 1_000_000, nil)}},
		{"unknown entity set", []Update{InsertEntity("Genome", 99, nil)}},
		{"unknown attribute", []Update{InsertEntity(Protein, 1_990_000, map[string]string{"nope": "x"})}},
		{"key column via attrs", []Update{InsertEntity(Protein, 1_990_000, map[string]string{"ID": "7"})}},
		{"dangling endpoint", []Update{InsertRelationship("encodes", 1_000_000, 987_654_321)}},
		{"wrong endpoints", []Update{InsertRelationship("encodes", 1_000_000, 3_000_000)}},
		{"unknown relationship", []Update{InsertRelationship("regulates", 1_000_000, 2_000_000)}},
		{"valid then invalid", []Update{
			InsertEntity(Protein, 1_990_001, map[string]string{"desc": "ok"}),
			InsertRelationship("encodes", 1_990_001, 777),
		}},
	}
	for _, c := range cases {
		if err := db.ApplyBatch(c.ups); err == nil {
			t.Errorf("%s: ApplyBatch succeeded, want error", c.name)
		}
		if db.NumEntities() != ents || db.NumRelationships() != rels {
			t.Fatalf("%s: failed batch mutated the database", c.name)
		}
	}
	// Entities staged earlier in a batch are visible to later mutations.
	if err := db.ApplyBatch([]Update{
		InsertEntity(Protein, 1_990_002, map[string]string{"desc": "staged"}),
		InsertEntity(DNA, 2_990_002, map[string]string{"type": "EST", "desc": "staged"}),
		InsertRelationship("encodes", 1_990_002, 2_990_002),
	}); err != nil {
		t.Fatalf("intra-batch reference failed: %v", err)
	}
	if db.NumEntities() != ents+2 || db.NumRelationships() != rels+1 {
		t.Fatal("intra-batch apply has wrong cardinalities")
	}
}
