// Package toposearch is a from-scratch implementation of topology
// search over biological databases, after Guo, Shanmugasundaram and
// Yona: "Topology Search over Biological Databases".
//
// A topology summarizes, at the schema level, the complete set of
// relationships connecting two entities in a heterogeneous database:
// asking how transcription-factor proteins relate to DNA sequences
// returns not a flat list of paths but the distinct relationship
// *structures* — encoded-by, interacts-with, encoded-by-and-interacts
// (self-regulation), and so on — each backed by the concrete entity
// pairs that realize it.
//
// The package bundles the whole system the paper describes: a
// relational storage substrate, the graph view with bounded simple-path
// enumeration, labeled-graph canonicalization, the topology algebra
// (path equivalence classes, per-pair topologies, query results), the
// offline AllTops computation with frequency-based pruning into
// LeftTops and exception tables, a Volcano-style execution engine with
// the paper's Distinct Group Join operators, a cost-based optimizer
// with the early-termination cost model, and all nine evaluation
// methods from the paper's experiments.
//
// Both phases run on worker pools (SearcherConfig.Parallelism; results
// are byte-identical at every setting): the offline computation shards
// start nodes, and each query shards its driving entity scan and the
// pruned-topology existence checks. A built Searcher is safe for
// concurrent queries. Both phases are also cancellable:
// NewSearcherContext aborts the topology computation at start-node
// granularity, and SearchContext aborts running query plans, each
// returning the context's error.
//
// Quick start:
//
//	db, _ := toposearch.Figure3()
//	s, _ := db.NewSearcher(toposearch.Protein, toposearch.DNA, toposearch.DefaultSearcherConfig())
//	res, _ := s.Search(toposearch.SearchQuery{
//		Cons1: []toposearch.Constraint{{Column: "desc", Keyword: "enzyme"}},
//		Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}},
//	})
//	for _, t := range res.Topologies {
//		fmt.Println(t.Structure)
//	}
package toposearch

import (
	"fmt"

	"toposearch/internal/biozon"
	"toposearch/internal/graph"
	"toposearch/internal/relstore"
)

// Entity set names of the built-in Biozon-like schema (Figure 1 of the
// paper).
const (
	Protein     = biozon.Protein
	DNA         = biozon.DNA
	Unigene     = biozon.Unigene
	Interaction = biozon.Interaction
	Family      = biozon.Family
	Pathway     = biozon.Pathway
	Structure   = biozon.Structure
)

// Ranking scheme names (Section 6.1 of the paper).
const (
	RankFreq   = "freq"   // common topologies first
	RankRare   = "rare"   // rare topologies first
	RankDomain = "domain" // structural proxy for the expert ranking
)

// DB is a biological database opened for topology search.
type DB struct {
	rel *relstore.DB
	sg  *graph.SchemaGraph
	g   *graph.Graph
}

// Figure3 opens the paper's 11-entity running-example database
// (Figure 3): the ground truth for the T1–T4 result of query Q1.
func Figure3() (*DB, error) {
	return open(biozon.Figure3DB())
}

// Synthetic generates a Biozon-like database whose relationship degrees
// follow a Zipf distribution, sized by scale (1 is ~1.3k entities) and
// seeded deterministically.
func Synthetic(scale int, seed int64) (*DB, error) {
	cfg := biozon.DefaultConfig(scale)
	cfg.Seed = seed
	return open(biozon.Generate(cfg))
}

// SyntheticConfig generates a database from an explicit generator
// configuration.
func SyntheticConfig(cfg biozon.GenConfig) (*DB, error) {
	return open(biozon.Generate(cfg))
}

func open(rel *relstore.DB) (*DB, error) {
	sg := biozon.SchemaGraph()
	g, err := graph.Build(rel, sg)
	if err != nil {
		return nil, fmt.Errorf("toposearch: %w", err)
	}
	return &DB{rel: rel, sg: sg, g: g}, nil
}

// EntitySets lists the schema's entity sets.
func (db *DB) EntitySets() []string { return db.sg.EntitySetNames() }

// NumEntities returns the number of entities (graph nodes).
func (db *DB) NumEntities() int { return db.g.NumNodes() }

// NumRelationships returns the number of relationships (graph edges).
func (db *DB) NumRelationships() int { return db.g.NumEdges() }

// Constraint is one predicate on an entity attribute: either a keyword
// containment test on a text column (the paper's desc.ct('enzyme')) or
// an equality test (type = 'mRNA'). Multiple constraints are ANDed.
type Constraint struct {
	Column  string
	Keyword string // keyword containment, if non-empty
	Equals  string // string equality, if non-empty
}

func (db *DB) compile(es string, cons []Constraint) (relstore.Pred, *relstore.Table, error) {
	var table *relstore.Table
	for _, e := range db.sg.Entities {
		if e.Name == es {
			table = db.rel.Table(e.Table)
		}
	}
	if table == nil {
		return nil, nil, fmt.Errorf("toposearch: unknown entity set %q", es)
	}
	preds := make([]relstore.Pred, 0, len(cons))
	for _, c := range cons {
		switch {
		case c.Keyword != "":
			p, err := relstore.Contains(table.Schema, c.Column, c.Keyword)
			if err != nil {
				return nil, nil, err
			}
			preds = append(preds, p)
		case c.Equals != "":
			p, err := relstore.Eq(table.Schema, c.Column, relstore.StrVal(c.Equals))
			if err != nil {
				return nil, nil, err
			}
			preds = append(preds, p)
		default:
			return nil, nil, fmt.Errorf("toposearch: constraint on %q needs Keyword or Equals", c.Column)
		}
	}
	return relstore.And(preds...), table, nil
}
