// Package toposearch is a from-scratch implementation of topology
// search over biological databases, after Guo, Shanmugasundaram and
// Yona: "Topology Search over Biological Databases".
//
// A topology summarizes, at the schema level, the complete set of
// relationships connecting two entities in a heterogeneous database:
// asking how transcription-factor proteins relate to DNA sequences
// returns not a flat list of paths but the distinct relationship
// *structures* — encoded-by, interacts-with, encoded-by-and-interacts
// (self-regulation), and so on — each backed by the concrete entity
// pairs that realize it.
//
// The package bundles the whole system the paper describes: a
// relational storage substrate, the graph view with bounded simple-path
// enumeration, labeled-graph canonicalization, the topology algebra
// (path equivalence classes, per-pair topologies, query results), the
// offline AllTops computation with frequency-based pruning into
// LeftTops and exception tables, a Volcano-style execution engine with
// the paper's Distinct Group Join operators, a cost-based optimizer
// with the early-termination cost model, and all nine evaluation
// methods from the paper's experiments.
//
// Both phases run on worker pools (SearcherConfig.Parallelism; results
// are byte-identical at every setting): the offline computation shards
// start nodes, and each query shards its driving entity scan and the
// pruned-topology existence checks. The early-termination plans
// parallelize by speculation instead (SearcherConfig.Speculation /
// SearchQuery.Speculation): contiguous segments of the score-ordered
// group stream race on their own workers, witnesses commit in
// canonical order, and losers are cancelled at the k-th commit —
// again with byte-identical results and useful-work counters. A built
// Searcher is safe for concurrent queries. Both phases are also
// cancellable:
// NewSearcherContext aborts the topology computation at start-node
// granularity, and SearchContext aborts running query plans, each
// returning the context's error.
//
// The database is live: DB.Insert/DB.ApplyBatch absorb new entities
// and relationships while searches keep running (delta columns over
// the sealed columnar arrays, copy-on-write graph extension), and
// Searcher.Refresh folds them into the precomputed tables
// incrementally — recomputing only the affected start-node frontier —
// with output byte-identical to rerunning the offline phase from
// scratch.
//
// Quick start:
//
//	db, _ := toposearch.Figure3()
//	s, _ := db.NewSearcher(toposearch.Protein, toposearch.DNA, toposearch.DefaultSearcherConfig())
//	res, _ := s.Search(toposearch.SearchQuery{
//		Cons1: []toposearch.Constraint{{Column: "desc", Keyword: "enzyme"}},
//		Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}},
//	})
//	for _, t := range res.Topologies {
//		fmt.Println(t.Structure)
//	}
package toposearch

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"toposearch/internal/biozon"
	"toposearch/internal/delta"
	"toposearch/internal/fault"
	"toposearch/internal/graph"
	"toposearch/internal/obs"
	"toposearch/internal/relstore"
)

// Entity set names of the built-in Biozon-like schema (Figure 1 of the
// paper).
const (
	Protein     = biozon.Protein
	DNA         = biozon.DNA
	Unigene     = biozon.Unigene
	Interaction = biozon.Interaction
	Family      = biozon.Family
	Pathway     = biozon.Pathway
	Structure   = biozon.Structure
)

// Ranking scheme names (Section 6.1 of the paper).
const (
	RankFreq   = "freq"   // common topologies first
	RankRare   = "rare"   // rare topologies first
	RankDomain = "domain" // structural proxy for the expert ranking
)

// DB is a biological database opened for topology search.
//
// A DB is live: Insert and ApplyBatch absorb new entities and
// relationships while searches keep running. Base-table predicates see
// new rows immediately; precomputed topology results change only when
// a Searcher calls Refresh (incremental maintenance over the affected
// start-node frontier). Mutations are serialized internally; any
// number of concurrent readers never block.
type DB struct {
	rel *relstore.DB
	sg  *graph.SchemaGraph
	g   atomic.Pointer[graph.Graph]

	mu      sync.Mutex // serializes ApplyBatch and guards cursors
	applier *delta.Applier
	log     *delta.Log
	// cursors registers, per live Searcher, the applied-edge log
	// position it has absorbed; the log is truncated below the minimum
	// so it stops growing with the lifetime of the DB.
	cursors map[*Searcher]int
	// autoCompactFrac, when positive, triggers Compact after a batch
	// once the un-compacted write state exceeds this fraction of the
	// total footprint.
	autoCompactFrac float64
	// approxCache remembers the last measured total footprint so the
	// per-batch policy check stays O(delta state): the total only
	// grows, so comparing against a stale (smaller) value can only
	// trigger the exact re-measure early, never skip a compaction.
	approxCache atomic.Int64
}

// Figure3 opens the paper's 11-entity running-example database
// (Figure 3): the ground truth for the T1–T4 result of query Q1.
func Figure3() (*DB, error) {
	return open(biozon.Figure3DB())
}

// Synthetic generates a Biozon-like database whose relationship degrees
// follow a Zipf distribution, sized by scale (1 is ~1.3k entities) and
// seeded deterministically.
func Synthetic(scale int, seed int64) (*DB, error) {
	cfg := biozon.DefaultConfig(scale)
	cfg.Seed = seed
	return open(biozon.Generate(cfg))
}

// SyntheticConfig generates a database from an explicit generator
// configuration.
func SyntheticConfig(cfg biozon.GenConfig) (*DB, error) {
	return open(biozon.Generate(cfg))
}

func open(rel *relstore.DB) (*DB, error) {
	sg := biozon.SchemaGraph()
	g, err := graph.Build(rel, sg)
	if err != nil {
		return nil, fmt.Errorf("toposearch: %w", err)
	}
	db := &DB{rel: rel, sg: sg, applier: delta.NewApplier(rel, sg),
		log: &delta.Log{}, cursors: make(map[*Searcher]int)}
	db.g.Store(g)
	return db, nil
}

// truncateLogLocked drops applied-edge log entries below the minimum
// cursor of the live searchers (all of them, when none is registered:
// a future searcher starts at the log's current end). Callers hold
// db.mu.
func (db *DB) truncateLogLocked() {
	min := db.log.Len()
	for _, cur := range db.cursors {
		if cur < min {
			min = cur
		}
	}
	db.log.TruncateBelow(min)
}

// graphNow returns the current published data graph.
func (db *DB) graphNow() *graph.Graph { return db.g.Load() }

// EntitySets lists the schema's entity sets.
func (db *DB) EntitySets() []string { return db.sg.EntitySetNames() }

// NumEntities returns the number of entities (graph nodes).
func (db *DB) NumEntities() int { return db.graphNow().NumNodes() }

// NumRelationships returns the number of relationships (graph edges).
func (db *DB) NumRelationships() int { return db.graphNow().NumEdges() }

// Update is one staged mutation for Insert/ApplyBatch: either a new
// entity or a new relationship. Build them with InsertEntity and
// InsertRelationship.
type Update = delta.Mutation

// InsertEntity stages a new entity: its set, its globally unique
// integer ID, and its string attributes by column name (missing
// attributes default to ""). For example:
//
//	toposearch.InsertEntity(toposearch.Protein, 1900001,
//		map[string]string{"desc": "novel zinc finger enzyme"})
func InsertEntity(set string, id int64, attrs map[string]string) Update {
	return delta.Entity(set, id, attrs)
}

// InsertRelationship stages a new relationship between two existing
// entities (or entities staged earlier in the same batch). The
// relationship set is named by its edge label; when several sets share
// a label (Biozon's two "interaction" tables) the endpoints' entity
// sets disambiguate, and the endpoint order may be given either way
// around.
func InsertRelationship(rel string, a, b int64) Update {
	return delta.Relationship(rel, a, b)
}

// Insert applies a single mutation. Equivalent to ApplyBatch with one
// element; prefer ApplyBatch for bulk loads (one graph version per
// batch instead of one per row).
func (db *DB) Insert(u Update) error { return db.ApplyBatch([]Update{u}) }

// ApplyBatch validates and applies a batch of mutations atomically:
// on the first validation error nothing is touched, and a failure (or
// contained panic) mid-application rolls every touched table back to
// its pre-batch state — the batch either lands whole or leaves no
// trace. New rows land in the storage engine's delta columns without
// blocking concurrent searches, and the data graph is extended
// copy-on-write, so queries in flight keep their consistent snapshot.
// Precomputed topology results (and therefore Search output) reflect
// the batch only after each Searcher's Refresh.
func (db *DB) ApplyBatch(us []Update) (err error) {
	var t0 time.Time
	if obs.Enabled() {
		t0 = time.Now()
	}
	var frac float64
	edges := 0
	func() {
		db.mu.Lock()
		defer db.mu.Unlock()
		// Containment boundary: Applier.Apply already recovers and rolls
		// back its own panics; this guard covers the publication steps so
		// a panic can never leak with db.mu held (which would deadlock
		// every future mutation).
		defer fault.RecoverTo(&err, "db.applybatch")
		ng, applied, aerr := db.applier.Apply(db.graphNow(), delta.Batch(us))
		if aerr != nil {
			err = aerr
			return
		}
		db.g.Store(ng)
		db.log.Append(applied.Edges)
		edges = len(applied.Edges)
		frac = db.autoCompactFrac
	}()
	if !t0.IsZero() {
		status := "ok"
		if err != nil {
			status = "error"
		}
		obsApplyDur.With(status).Observe(time.Since(t0).Seconds())
		obsApplyMutations.Add(int64(len(us)))
		obsApplyEdges.Add(int64(edges))
		obsDeltaBytes.Set(float64(db.rel.DeltaBytes()))
	}
	if err != nil {
		return err
	}
	if frac > 0 {
		d := db.rel.DeltaBytes() // walks only the delta state
		if d > 0 && float64(d) > frac*float64(db.approxCache.Load()) {
			// Passed against the cached total: measure the real one
			// (the expensive full walk) and decide on it.
			total := db.rel.ApproxBytes()
			db.approxCache.Store(total)
			if float64(d) > frac*float64(total) {
				err = db.Compact()
			}
		}
	}
	return err
}

// SetAutoCompact installs the automatic compaction policy: after a
// batch, when the un-compacted write state (delta columns, delta-era
// dictionary entries, pending index buffers) exceeds fraction of the
// database's total footprint, the DB compacts itself, restoring fully
// lock-free reads without anyone having to call Compact explicitly.
// A fraction <= 0 disables the policy (the default). Typical values
// are small (e.g. 0.05): compaction is cheap relative to letting
// every read path keep merging delta state.
func (db *DB) SetAutoCompact(fraction float64) {
	db.mu.Lock()
	db.autoCompactFrac = fraction
	db.mu.Unlock()
}

// Compact folds every table's delta columns and pending index buffers
// into their sealed structures, restoring fully lock-free reads after
// a burst of inserts. Call it at quiet moments (e.g. after a Refresh);
// readers are never blocked by it. Compact serializes against
// ApplyBatch — mutation batches must never interleave with sealing,
// because batch rollback can only drop un-sealed rows — and contains
// engine panics into a *EnginePanicError; a contained failure leaves
// every table readable (each table either compacted fully, partially
// — every intermediate state is consistent — or not at all).
func (db *DB) Compact() (err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	defer fault.RecoverTo(&err, "db.compact")
	for _, name := range db.rel.TableNames() {
		db.rel.Table(name).Compact()
	}
	return nil
}

// Constraint is one predicate on an entity attribute: either a keyword
// containment test on a text column (the paper's desc.ct('enzyme')) or
// an equality test (type = 'mRNA'). Multiple constraints are ANDed.
type Constraint struct {
	Column  string
	Keyword string // keyword containment, if non-empty
	Equals  string // string equality, if non-empty
}

func (db *DB) compile(es string, cons []Constraint) (relstore.Pred, *relstore.Table, error) {
	var table *relstore.Table
	for _, e := range db.sg.Entities {
		if e.Name == es {
			table = db.rel.Table(e.Table)
		}
	}
	if table == nil {
		return nil, nil, fmt.Errorf("toposearch: unknown entity set %q", es)
	}
	preds := make([]relstore.Pred, 0, len(cons))
	for _, c := range cons {
		switch {
		case c.Keyword != "":
			p, err := relstore.Contains(table.Schema, c.Column, c.Keyword)
			if err != nil {
				return nil, nil, err
			}
			preds = append(preds, p)
		case c.Equals != "":
			p, err := relstore.Eq(table.Schema, c.Column, relstore.StrVal(c.Equals))
			if err != nil {
				return nil, nil, err
			}
			preds = append(preds, p)
		default:
			return nil, nil, fmt.Errorf("toposearch: constraint on %q needs Keyword or Equals", c.Column)
		}
	}
	return relstore.And(preds...), table, nil
}
