package toposearch_test

// Integration tests for the toposerve serving layer: an in-process
// daemon on a loopback listener, driven over real HTTP. The nine-method
// equivalence test is the serving analogue of the engine's equivalence
// gates — every method's answer through the wire must be byte-identical
// to a direct library call — and the remaining tests pin the serving
// contract: 429 + Retry-After under admission saturation, 200/partial
// for deadline cuts with partial_ok, 504 without it, 400 validation,
// 503 after shutdown, and a -race client/apply/stats hammer with a
// goroutine-leak check.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"toposearch"
	"toposearch/internal/fault"
	"toposearch/internal/methods"
	"toposearch/internal/serve"
)

// startServeTest boots an in-process daemon over db and returns its
// base URL, the server (for Shutdown-path tests) and a client. Cleanup
// closes the client's connections, the listener and the server.
func startServeTest(t *testing.T, db *toposearch.DB, scfg toposearch.SearcherConfig, cfg serve.Config) (string, *serve.Server, *http.Client) {
	t.Helper()
	cfg.DB = db
	cfg.Searcher = scfg
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	sv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: sv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	client := &http.Client{}
	t.Cleanup(func() {
		client.CloseIdleConnections()
		_ = httpSrv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := sv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	})
	return "http://" + ln.Addr().String(), sv, client
}

// post sends a JSON body and returns status, headers and body bytes.
func post(t *testing.T, client *http.Client, url, contentType, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := client.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, resp.Header, data
}

// searchHTTP posts a /v1/search body and decodes the 200 envelope.
func searchHTTP(t *testing.T, client *http.Client, base, body string) serve.SearchResponse {
	t.Helper()
	code, _, data := post(t, client, base+"/v1/search", "application/json", body)
	if code != http.StatusOK {
		t.Fatalf("search %s: status %d: %s", body, code, data)
	}
	var sr serve.SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("search %s: decoding: %v", body, err)
	}
	return sr
}

// TestServeNineMethodEquivalence drives every evaluation method through
// the daemon and asserts the wire answer byte-identical (as canonical
// JSON) to a direct Searcher.Search with the same query on the same
// database. Caches are disabled on both sides so every run is a full
// method execution.
func TestServeNineMethodEquivalence(t *testing.T) {
	db, err := toposearch.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	scfg := toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 4096, CacheBytes: -1,
	}
	direct, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	base, _, client := startServeTest(t, db, scfg, serve.Config{})

	mix := []string{""}
	mix = append(mix, methods.AllMethods()...)
	for _, m := range mix {
		q := toposearch.SearchQuery{K: 5, Method: m}
		if m == "sql" || m == "full-top" || m == "fast-top" {
			q.K = 0
		}
		body, err := json.Marshal(serve.SearchRequest{K: q.K, Method: q.Method})
		if err != nil {
			t.Fatal(err)
		}
		got := searchHTTP(t, client, base, string(body))
		want, err := direct.Search(q)
		if err != nil {
			t.Fatalf("direct %q: %v", m, err)
		}
		gj, _ := json.Marshal(got.Result)
		wj, _ := json.Marshal(want)
		if !bytes.Equal(gj, wj) {
			t.Errorf("method %q: wire result diverges from direct Search:\n got %s\nwant %s", m, gj, wj)
		}
		if len(got.Result.Topologies) == 0 {
			t.Errorf("method %q: empty result", m)
		}
	}
}

// TestServeApplyRefresh posts a JSONL mutation batch with ?sync=1 and
// asserts the inline refresh makes the new rows visible: the post-apply
// wire answer is byte-identical to a fresh from-scratch searcher built
// on the mutated database (the serving analogue of the engine's
// refresh-equals-rebuild gate). Malformed batches must 400.
func TestServeApplyRefresh(t *testing.T) {
	db, err := toposearch.Synthetic(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	scfg := toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048, CacheBytes: -1,
	}
	base, _, client := startServeTest(t, db, scfg, serve.Config{})

	query := `{"k":5,"method":"fast-top-k","cons2":[{"column":"type","equals":"mRNA"}]}`
	before := searchHTTP(t, client, base, query)

	batch := `# grow one protein-DNA pair
{"entity":"Protein","id":1960001,"attrs":{"desc":"serve test protein kwsel50"}}

{"entity":"DNA","id":2960001,"attrs":{"type":"mRNA","desc":"serve test dna"}}
{"rel":"encodes","a":1960001,"b":2960001}
`
	code, _, data := post(t, client, base+"/v1/apply?sync=1", "application/x-ndjson", batch)
	if code != http.StatusOK {
		t.Fatalf("apply: status %d: %s", code, data)
	}
	var ar serve.ApplyResponse
	if err := json.Unmarshal(data, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Mutations != 3 || !ar.Synced {
		t.Fatalf("apply response: %+v, want 3 mutations synced", ar)
	}
	if ar.RefreshedEdges["Protein-DNA"] != 1 {
		t.Fatalf("refreshed_edges = %v, want Protein-DNA:1", ar.RefreshedEdges)
	}

	after := searchHTTP(t, client, base, query)
	if bj, aj := fmt.Sprint(before.Result.Topologies), fmt.Sprint(after.Result.Topologies); bj == aj {
		t.Logf("note: batch did not change this query's answer (still valid, but weak)")
	}
	rebuilt, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rebuilt.Close()
	want, err := rebuilt.Search(toposearch.SearchQuery{K: 5, Method: "fast-top-k",
		Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}}})
	if err != nil {
		t.Fatal(err)
	}
	gj, _ := json.Marshal(after.Result)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(gj, wj) {
		t.Errorf("post-apply wire answer diverges from a fresh rebuild:\n got %s\nwant %s", gj, wj)
	}

	for _, bad := range []string{
		`{"entity":"Protein","id":1,"rel":"encodes","a":1,"b":2}`, // both
		`{"id": 7}`, // neither
		`{not json`, // malformed
		"",          // empty batch
	} {
		code, _, data := post(t, client, base+"/v1/apply", "application/x-ndjson", bad)
		if code != http.StatusBadRequest {
			t.Errorf("bad batch %q: status %d (%s), want 400", bad, code, data)
		}
	}
}

// TestServeValidation pins the 400 surface: unknown entity sets,
// unknown methods, unknown rankings, bad timeout headers and trailing
// garbage never reach the engine.
func TestServeValidation(t *testing.T) {
	db, err := toposearch.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	scfg := toposearch.SearcherConfig{MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048}
	base, _, client := startServeTest(t, db, scfg, serve.Config{})

	for _, bad := range []string{
		`{"es1":"Nope"}`,
		`{"method":"warp-drive"}`,
		`{"ranking":"best"}`,
		`{"k":-1}`,
		`{"timeout_ms":-5}`,
		`{"unknown_field":1}`,
		`{`,
	} {
		code, _, data := post(t, client, base+"/v1/search", "application/json", bad)
		if code != http.StatusBadRequest {
			t.Errorf("body %s: status %d (%s), want 400", bad, code, data)
		}
		var eb map[string]map[string]string
		if err := json.Unmarshal(data, &eb); err != nil || eb["error"]["code"] == "" {
			t.Errorf("body %s: error envelope missing code: %s", bad, data)
		}
	}
	req, _ := http.NewRequest("POST", base+"/v1/search", strings.NewReader(`{}`))
	req.Header.Set("X-Timeout-Ms", "soon")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad X-Timeout-Ms: status %d, want 400", resp.StatusCode)
	}
}

// TestServeSheddingAndDeadlines covers the load-response surface over
// real HTTP: a slot-holding query (slow cache fill via fault delay)
// saturates MaxInflight=1/MaxQueue=1, so a third request sheds with
// 429 + Retry-After; a deadline-bounded query without partial_ok gets
// the 504 cut; with partial_ok it gets 200 with partial=true.
func TestServeSheddingAndDeadlines(t *testing.T) {
	db, err := toposearch.Synthetic(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	scfg := toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048,
		MaxInflight: 1, MaxQueue: 1, QueueTimeout: 5 * time.Second,
	}
	base, sv, client := startServeTest(t, db, scfg, serve.Config{})
	if err := sv.Warm(context.Background(), toposearch.Protein, toposearch.DNA); err != nil {
		t.Fatal(err)
	}

	// statsFor polls GET /v1/stats until cond holds on the pair's stats.
	statsFor := func(what string, cond func(st toposearch.SearcherStats) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := client.Get(base + "/v1/stats")
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var sr serve.StatsResponse
			if err := json.Unmarshal(data, &sr); err != nil {
				t.Fatalf("stats: %v (%s)", err, data)
			}
			if cond(sr.Searchers["Protein-DNA"].Stats) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; stats: %s", what, data)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	t.Cleanup(fault.Disable)
	if err := fault.Enable(1, fault.Rule{Point: "cache.fill", Delay: 700 * time.Millisecond, DelayOnly: true}); err != nil {
		t.Fatal(err)
	}

	type result struct {
		code int
		hdr  http.Header
	}
	fire := func(body string) chan result {
		ch := make(chan result, 1)
		go func() {
			resp, err := client.Post(base+"/v1/search", "application/json", strings.NewReader(body))
			if err != nil {
				ch <- result{code: -1}
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ch <- result{code: resp.StatusCode, hdr: resp.Header}
		}()
		return ch
	}

	// Slot holder, then one queued waiter, then the shed request.
	c1 := fire(`{"k":5,"method":"fast-top-k"}`)
	statsFor("slot holder in flight", func(st toposearch.SearcherStats) bool { return st.Inflight == 1 })
	c2 := fire(`{"k":3,"method":"fast-top-k","cons1":[{"column":"desc","keyword":"kwsel15"}]}`)
	statsFor("waiter queued", func(st toposearch.SearcherStats) bool { return st.Waiting == 1 })
	code, hdr, data := post(t, client, base+"/v1/search", "application/json", `{"k":2,"method":"fast-top-k","cons1":[{"column":"desc","keyword":"kwsel85"}]}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated daemon: status %d (%s), want 429", code, data)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if r1 := <-c1; r1.code != http.StatusOK {
		t.Fatalf("slot holder: status %d", r1.code)
	}
	if r2 := <-c2; r2.code != http.StatusOK {
		t.Fatalf("queued waiter: status %d", r2.code)
	}
	fault.Disable()

	// Deadline cut without partial_ok: the SQL strawman cannot finish in
	// 150ms at this scale, and hard-fails at its deadline -> 504.
	code, _, data = post(t, client, base+"/v1/search", "application/json", `{"k":3,"method":"sql","timeout_ms":150}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline without partial_ok: status %d (%s), want 504", code, data)
	}

	// Deadline cut with partial_ok on an ET plan: the engine returns the
	// committed prefix -> 200 with partial=true. A segment delay makes
	// the query reliably outlive its deadline.
	if err := fault.Enable(1, fault.Rule{Point: "engine.segment", Delay: 600 * time.Millisecond, DelayOnly: true}); err != nil {
		t.Fatal(err)
	}
	code, _, data = post(t, client, base+"/v1/search", "application/json",
		`{"k":3,"method":"fast-top-k-et","timeout_ms":150,"partial_ok":true}`)
	if code != http.StatusOK {
		t.Fatalf("deadline with partial_ok: status %d (%s), want 200", code, data)
	}
	var sr serve.SearchResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Partial || !sr.Result.Partial {
		t.Fatalf("partial flags not set: envelope %v, result %v", sr.Partial, sr.Result.Partial)
	}
	fault.Disable()

	// X-Timeout-Ms header is an alternative to the body field.
	req, _ := http.NewRequest("POST", base+"/v1/search", strings.NewReader(`{"k":3,"method":"sql"}`))
	req.Header.Set("X-Timeout-Ms", "150")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("header deadline: status %d, want 504", resp.StatusCode)
	}
}

// TestServeShutdown pins the drain contract: after Shutdown begins,
// new requests get 503 with the shutting_down code, and Shutdown
// itself completes (loop stopped, searchers closed).
func TestServeShutdown(t *testing.T) {
	db, err := toposearch.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	scfg := toposearch.SearcherConfig{MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048}
	base, sv, client := startServeTest(t, db, scfg, serve.Config{})
	_ = searchHTTP(t, client, base, `{"k":3}`)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := sv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	code, _, data := post(t, client, base+"/v1/search", "application/json", `{"k":3}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown request: status %d (%s), want 503", code, data)
	}
	if !strings.Contains(string(data), "shutting_down") {
		t.Errorf("post-shutdown error body missing shutting_down: %s", data)
	}
}

// TestServeConcurrentHammer is the -race gate of the serving layer:
// concurrent search clients, JSONL applies (sync and async), stats
// scrapes and metrics scrapes against one daemon, then a clean
// shutdown with a goroutine-leak check.
func TestServeConcurrentHammer(t *testing.T) {
	// Registered before the server starts, so the LIFO cleanup order runs
	// the leak check after the server cleanup has torn everything down.
	baseline := goroutineBaseline()
	t.Cleanup(func() { assertNoGoroutineLeak(t, baseline) })
	db, err := toposearch.Synthetic(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	scfg := toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048,
		MaxInflight: 4, MaxQueue: 8, QueueTimeout: 2 * time.Second,
	}
	base, sv, client := startServeTest(t, db, scfg, serve.Config{})
	if err := sv.Warm(context.Background(), toposearch.Protein, toposearch.DNA); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`{"method":"fast-top"}`,
		`{"k":5,"method":"fast-top-k"}`,
		`{"k":3,"method":"full-top-k-et","cons1":[{"column":"desc","keyword":"kwsel50"}]}`,
		`{"k":4,"method":"fast-top-k-opt","cons2":[{"column":"type","equals":"mRNA"}]}`,
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resp, err := client.Post(base+"/v1/search", "application/json",
					strings.NewReader(queries[(w+i)%len(queries)]))
				if err != nil {
					errCh <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					errCh <- fmt.Errorf("worker %d: status %d", w, resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			qs := ""
			if i%2 == 0 {
				qs = "?sync=1"
			}
			p, d := 1970001+i, 2970001+i
			batch := fmt.Sprintf(`{"entity":"Protein","id":%d,"attrs":{"desc":"hammer %d"}}
{"entity":"DNA","id":%d,"attrs":{"type":"mRNA"}}
{"rel":"encodes","a":%d,"b":%d}
`, p, i, d, p, d)
			resp, err := client.Post(base+"/v1/apply"+qs, "application/x-ndjson", strings.NewReader(batch))
			if err != nil {
				errCh <- err
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errCh <- fmt.Errorf("apply %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			for _, path := range []string{"/v1/stats", "/metrics"} {
				resp, err := client.Get(base + path)
				if err != nil {
					errCh <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
				if path == "/metrics" && !bytes.Contains(body, []byte("toposerve_http_requests_total")) {
					errCh <- fmt.Errorf("/metrics missing toposerve_http series")
					return
				}
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
