// Command ranking contrasts the paper's three topology ranking schemes
// (Section 6.1) on the same query: Freq surfaces the ubiquitous simple
// relationships, Rare surfaces the uncommon ones, and Domain surfaces
// structurally rich topologies regardless of frequency. It also prints
// the optimizer's plan choice for each ranking — the Fast-Top-k-Opt
// decision between the regular and the early-termination plan.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"toposearch"
)

func main() {
	db, err := toposearch.Synthetic(2, 7)
	if err != nil {
		log.Fatal(err)
	}
	// A deadline bounds the offline phase: past it, NewSearcherContext
	// aborts at the next start node with context.DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.Unigene, toposearch.DefaultSearcherConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Protein-Unigene: %d topologies precomputed, %d pruned\n",
		s.TopologyCount(), s.PrunedCount())

	query := toposearch.SearchQuery{
		Cons1: []toposearch.Constraint{{Column: "desc", Keyword: "enzyme"}},
		K:     5,
	}
	for _, rk := range []string{toposearch.RankFreq, toposearch.RankRare, toposearch.RankDomain} {
		query.Ranking = rk
		res, err := s.Search(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== top %d under %q (plan: %s) ==\n", query.K, rk, res.Plan)
		for i, tp := range res.Topologies {
			fmt.Printf("  #%d score=%-5d freq=%-5d nodes=%d classes=%d  %s\n",
				i+1, tp.Score, tp.Frequency, tp.Nodes, tp.Classes, truncate(tp.Structure, 70))
		}
		plan, err := s.Explain(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(indent(plan, "  "))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func indent(s, pre string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += pre + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}
