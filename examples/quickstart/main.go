// Command quickstart runs the paper's running example end to end: it
// opens the Figure 3 micro-database, issues the query
//
//	Q1 = {(Protein, desc.ct('enzyme')), (DNA, type='mRNA')}
//
// and prints the four result topologies T1-T4 of Figure 5, each with
// its instance pairs and a witness subgraph.
package main

import (
	"context"
	"fmt"
	"log"

	"toposearch"
)

func main() {
	ctx := context.Background()
	db, err := toposearch.Figure3()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d entities, %d relationships\n",
		db.NumEntities(), db.NumRelationships())

	cfg := toposearch.DefaultSearcherConfig()
	cfg.PruneThreshold = 0 // prune every frequent simple path, as in Figure 13
	cfg.Parallelism = 0    // offline phase on all cores (the result is identical at any setting)
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline phase: %d topologies computed, %d pruned\n\n",
		s.TopologyCount(), s.PrunedCount())

	res, err := s.SearchContext(ctx, toposearch.SearchQuery{
		Cons1: []toposearch.Constraint{{Column: "desc", Keyword: "enzyme"}},
		Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query Q1 returned %d topologies (paper: T1..T4):\n\n", len(res.Topologies))
	for _, tp := range res.Topologies {
		fmt.Printf("topology %d: %d nodes, %d edges, %d path class(es)%s\n",
			tp.ID, tp.Nodes, tp.Edges, tp.Classes, pathNote(tp.IsPath))
		fmt.Printf("  structure: %s\n", tp.Structure)
		for _, pair := range s.Instances(tp.ID, 3) {
			fmt.Printf("  instance: Protein %d - DNA %d\n", pair[0], pair[1])
			if lines, ok := s.Witness(pair[0], pair[1], tp.ID); ok {
				for _, l := range lines {
					fmt.Printf("    %s\n", l)
				}
			}
		}
		fmt.Println()
	}
}

func pathNote(isPath bool) string {
	if isPath {
		return " (simple path)"
	}
	return ""
}
