// Command selfregulation hunts for the biologically significant
// topology of the paper's Figure 16: two proteins encoded by the same
// DNA sequence that also interact with each other — the signature of
// operons and viral genomes whose products are co-regulated, and of
// proteins that regulate their own DNA.
//
// Viewed as a Protein-DNA topology, the motif unions the direct
// "encodes" path with the Protein-Interaction-Protein-DNA path into a
// cycle through an Interaction node. The Domain ranking is designed to
// surface exactly such structures, so a top-k search under it finds the
// motif without enumerating anything by hand.
package main

import (
	"fmt"
	"log"
	"strings"

	"toposearch"
)

func main() {
	// A synthetic Biozon-like database with Figure-16 motifs planted by
	// the generator (alongside plenty of Zipfian noise).
	db, err := toposearch.Synthetic(2, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d entities, %d relationships\n",
		db.NumEntities(), db.NumRelationships())

	s, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, toposearch.DefaultSearcherConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline phase: %d Protein-DNA topologies, %d pruned\n\n",
		s.TopologyCount(), s.PrunedCount())

	res, err := s.Search(toposearch.SearchQuery{
		K:       20,
		Ranking: toposearch.RankDomain,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Among the candidates, the *minimal* structure is the crisp
	// Figure 16 motif; the larger ones are the same motif diluted by
	// extra relationships (the paper's Section 6.2.3 concern).
	var hit *toposearch.TopologyResult
	for i := range res.Topologies {
		tp := &res.Topologies[i]
		if isSelfRegulation(*tp) && (hit == nil || tp.Nodes < hit.Nodes ||
			(tp.Nodes == hit.Nodes && tp.Edges < hit.Edges)) {
			hit = tp
		}
	}
	fmt.Println("top topologies under the Domain (biological significance) ranking:")
	for i, tp := range res.Topologies {
		if i >= 8 {
			break
		}
		marker := ""
		if hit != nil && tp.ID == hit.ID {
			marker = "  <= Figure 16 candidate"
		}
		fmt.Printf("  #%d score=%-4d nodes=%d edges=%d classes=%d%s\n",
			i+1, tp.Score, tp.Nodes, tp.Edges, tp.Classes, marker)
	}
	if hit == nil {
		fmt.Println("\nno self-regulation candidate in the top results")
		return
	}
	fmt.Printf("\nminimal self-regulation structure:\n  %s\n", hit.Structure)

	fmt.Printf("\nself-regulation topology %d relates %d entity pair(s); examples:\n",
		hit.ID, hit.Frequency)
	for _, pair := range s.Instances(hit.ID, 3) {
		fmt.Printf("  Protein %d - DNA %d\n", pair[0], pair[1])
		if lines, ok := s.Witness(pair[0], pair[1], hit.ID); ok {
			for _, l := range lines {
				fmt.Printf("    %s\n", l)
			}
		}
	}
}

// isSelfRegulation recognizes the Figure 16 shape: a cyclic topology
// through an Interaction node combining the direct encodes path with an
// interaction-mediated one.
func isSelfRegulation(tp toposearch.TopologyResult) bool {
	return tp.Classes >= 2 &&
		tp.Edges >= tp.Nodes && // contains a cycle
		strings.Contains(tp.Structure, "Interaction") &&
		strings.Contains(tp.Structure, "encodes")
}
