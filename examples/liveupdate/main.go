// Command liveupdate demonstrates the live-update path: open a
// synthetic database, precompute a Protein-DNA searcher, run a query,
// then insert a new protein with fresh relationships — while the
// searcher stays usable — refresh incrementally, and watch the new
// entity surface in the results.
//
// The pattern to copy:
//
//  1. db.ApplyBatch(updates)   — rows land in the storage engine's
//     delta columns and the copy-on-write graph; searches keep running
//     and base-table predicates see the rows immediately.
//  2. s.Refresh()              — incremental maintenance: only the
//     affected start-node frontier is recomputed, and the precomputed
//     tables come out byte-identical to an offline rebuild.
//  3. db.Compact()             — optional, at a quiet moment: folds the
//     delta buffers into the sealed arrays for fully lock-free reads.
package main

import (
	"fmt"
	"log"
	"time"

	"toposearch"
)

func main() {
	db, err := toposearch.Synthetic(1, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d entities, %d relationships\n", db.NumEntities(), db.NumRelationships())

	start := time.Now()
	s, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, toposearch.DefaultSearcherConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline phase: %d topologies in %v\n\n", s.TopologyCount(), time.Since(start).Round(time.Millisecond))

	// A query for proteins described as kinases, before the insert.
	query := toposearch.SearchQuery{
		Cons1: []toposearch.Constraint{{Column: "desc", Keyword: "kinase"}},
		Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}},
		K:     5,
	}
	res, err := s.Search(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before insert: %d topologies relate kinase proteins to mRNA\n", len(res.Topologies))

	// Insert a new kinase protein, an mRNA sequence it encodes, and a
	// link into an existing Unigene cluster — one atomic batch.
	const (
		newProtein = 1_900_000
		newDNA     = 2_900_000
	)
	batch := []toposearch.Update{
		toposearch.InsertEntity(toposearch.Protein, newProtein,
			map[string]string{"desc": "novel serine kinase enzyme"}),
		toposearch.InsertEntity(toposearch.DNA, newDNA,
			map[string]string{"type": "mRNA", "desc": "novel kinase transcript"}),
		toposearch.InsertRelationship("encodes", newProtein, newDNA),
		toposearch.InsertRelationship("uni_encodes", 3_000_000, newProtein),
		toposearch.InsertRelationship("uni_contains", 3_000_000, newDNA),
	}
	if err := db.ApplyBatch(batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplied %d mutations; database now %d entities, %d relationships\n",
		len(batch), db.NumEntities(), db.NumRelationships())

	// Refresh folds the new rows into the precomputed tables,
	// recomputing only the start nodes the new edges can reach.
	start = time.Now()
	edges, err := s.Refresh()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental refresh of %d new relationships in %v (vs full offline phase above)\n",
		edges, time.Since(start).Round(time.Millisecond))
	db.Compact() // quiet moment: seal the delta buffers

	res, err = s.Search(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter refresh: %d topologies\n", len(res.Topologies))
	for _, tp := range res.Topologies {
		fmt.Printf("  topology %d (score %d): %s\n", tp.ID, tp.Score, tp.Structure)
	}
	if lines, ok := s.Witness(newProtein, newDNA, res.Topologies[0].ID); ok {
		fmt.Println("\nwitness for the inserted pair:")
		for _, l := range lines {
			fmt.Printf("  %s\n", l)
		}
	}
}
