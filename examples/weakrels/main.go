// Command weakrels reproduces the paper's Section 6.2.3 analysis: with
// path length l=4, weak relationships — schema paths that extend
// P-D-P / P-U-P / P-F-P / F-W-F patterns and mostly connect unrelated
// end points — both dilute the quality of topologies (Figure 17) and
// blow up precomputation cost. The paper's proposed fix is to prune
// them using domain knowledge (Appendix B); this example measures the
// effect of that pruning on the same database.
package main

import (
	"fmt"
	"log"
	"time"

	"toposearch"
)

func main() {
	db, err := toposearch.Synthetic(1, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d entities, %d relationships\n\n",
		db.NumEntities(), db.NumRelationships())

	run := func(weak bool) (*toposearch.Searcher, time.Duration) {
		cfg := toposearch.DefaultSearcherConfig()
		cfg.MaxLen = 4
		cfg.WeakPruning = weak
		cfg.Parallelism = 0 // l=4 precomputation is the expensive case: use all cores
		start := time.Now()
		s, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return s, time.Since(start)
	}

	sAll, dAll := run(false)
	sWeak, dWeak := run(true)

	fmt.Println("l=4 Protein-DNA topology computation:")
	fmt.Printf("  %-24s %12s %12s %14s\n", "", "topologies", "pruned", "precompute")
	fmt.Printf("  %-24s %12d %12d %14v\n", "all schema paths", sAll.TopologyCount(), sAll.PrunedCount(), dAll.Round(time.Millisecond))
	fmt.Printf("  %-24s %12d %12d %14v\n", "weak paths removed", sWeak.TopologyCount(), sWeak.PrunedCount(), dWeak.Round(time.Millisecond))

	spAll, spWeak := sAll.Space(), sWeak.Space()
	fmt.Printf("\n  AllTops rows: %d -> %d after weak-relationship pruning\n",
		spAll.AllTopsRows, spWeak.AllTopsRows)

	// Show the dilution: under the Domain ranking, the unpruned l=4
	// results drag in large diluted unions; the weak-pruned searcher
	// keeps the crisp structures.
	query := toposearch.SearchQuery{K: 5, Ranking: toposearch.RankDomain}
	for name, s := range map[string]*toposearch.Searcher{
		"with weak relationships": sAll,
		"weak paths pruned":       sWeak,
	} {
		res, err := s.Search(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntop domain-ranked topologies (%s):\n", name)
		for i, tp := range res.Topologies {
			fmt.Printf("  #%d score=%-5d nodes=%-3d edges=%-3d classes=%d\n",
				i+1, tp.Score, tp.Nodes, tp.Edges, tp.Classes)
		}
	}
	fmt.Println("\nconclusion: pruning weak relationships shrinks the l=4 computation")
	fmt.Println("while keeping the biologically meaningful structures (Appendix B).")
}
