package toposearch_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"toposearch"
)

// TestShardConcurrentSearchRefreshHammer races sharded scatter-gather
// searches against live batch application, incremental refreshes and
// compactions (run under -race in CI): every query must keep
// succeeding on one consistent store generation — no torn generation
// between the shard executors of a single query — while the delta
// router keeps feeding updates through the same partition function the
// queries shard by.
func TestShardConcurrentSearchRefreshHammer(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	db.SetAutoCompact(0.25)
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048,
		Parallelism: 4, Speculation: 2, Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := []toposearch.SearchQuery{
		{K: 5, Method: "fast-top-k-et", Cons1: []toposearch.Constraint{{Column: "desc", Keyword: "kwsel50"}}},
		{K: 3, Method: "full-top-k-et", Shards: 4},
		{K: 8, Method: "fast-top-k", Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}}},
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := queries[w%len(queries)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.SearchContext(ctx, q)
				if err != nil {
					t.Errorf("sharded search during live update: %v", err)
					return
				}
				if len(res.Topologies) == 0 {
					t.Error("sharded search returned no topologies during live update")
					return
				}
				if res.Shards > 1 && len(res.ShardStats) != res.Shards {
					t.Errorf("sharded search reported %d shard stats for %d shards", len(res.ShardStats), res.Shards)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		p := int64(1_970_000 + i)
		d := int64(2_970_000 + i)
		ups := []toposearch.Update{
			toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": fmt.Sprintf("hammer protein %d kwsel50", i)}),
			toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "mRNA", "desc": "hammer dna kwsel50"}),
			toposearch.InsertRelationship("encodes", p, d),
			toposearch.InsertRelationship("encodes", p, int64(2_000_000+i)),
		}
		if err := db.ApplyBatch(ups); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RefreshContext(ctx); err != nil {
			t.Fatal(err)
		}
		routing := s.ShardRouting()
		if len(routing) != 3 {
			t.Fatalf("round %d: delta routing has %d shards, want 3", i, len(routing))
		}
		total := 0
		for _, c := range routing {
			total += c
		}
		if total == 0 {
			t.Fatalf("round %d: delta routing assigned no affected starts to any shard", i)
		}
	}
	close(stop)
	wg.Wait()

	// The hammered searcher still answers identically to single-store
	// sequential settings — Shards: 1 overrides the searcher default.
	base := toposearch.SearchQuery{K: 5, Method: "fast-top-k-et", Speculation: 1, Shards: 1}
	want, err := s.SearchContext(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SearchContext(ctx, toposearch.SearchQuery{K: 5, Method: "fast-top-k-et", Speculation: 4, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(want.Topologies) != fmt.Sprint(got.Topologies) {
		t.Fatalf("sharded result diverges after hammer:\n got %v\nwant %v", got.Topologies, want.Topologies)
	}
}
