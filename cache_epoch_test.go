// Regression test for the cache-epoch TOCTOU: SearchContext snapshots
// the applied-edge log epoch before the fill starts, but the fill
// executes later on a detached goroutine — a mutation batch applied
// mid-fill could leave a result that observed post-epoch base-table
// rows cached under the pre-fill (generation, epoch) tag, breaking the
// cached-results-byte-identical-to-fresh-execution invariant. The fix
// re-reads the epoch after the fill's last base-table read and skips
// caching (still returning the result) when it moved.
package toposearch_test

import (
	"context"
	"testing"
	"time"

	"toposearch"
	"toposearch/internal/fault"
)

func TestCacheEpochMidFillBatchNotCached(t *testing.T) {
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Arm pure latency on the cache-fill seam so the mutation batch
	// below deterministically lands while the fill is in flight.
	if err := fault.Enable(1, fault.Rule{Point: "cache.fill", Delay: time.Second, DelayOnly: true}); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()

	q := toposearch.SearchQuery{K: 5}
	type outcome struct {
		res *toposearch.SearchResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := s.SearchContext(ctx, q)
		done <- outcome{res, err}
	}()
	// The fill is sleeping at the injected delay; apply a batch with a
	// relationship row, moving the edge-log epoch past the fill's tag.
	time.Sleep(200 * time.Millisecond)
	p, d := int64(1_950_001), int64(2_950_001)
	if err := db.ApplyBatch([]toposearch.Update{
		toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": "epoch toctou protein kwsel50"}),
		toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "mRNA", "desc": "epoch toctou dna"}),
		toposearch.InsertRelationship("encodes", p, d),
	}); err != nil {
		t.Fatal(err)
	}
	o := <-done
	if o.err != nil {
		t.Fatalf("search straddling the batch failed: %v", o.err)
	}
	if o.res == nil || o.res.CacheHit {
		t.Fatalf("search straddling the batch should have computed fresh, got %+v", o.res)
	}
	fault.Disable()

	// The fill completed after the epoch moved: its result must have
	// been returned but never cached under the stale tag.
	cs := s.CacheStats()
	if cs.Entries != 0 {
		t.Fatalf("fill that straddled a mutation batch was cached: %d entries resident, want 0", cs.Entries)
	}
	if cs.SkippedStale != 1 {
		t.Fatalf("CacheStats().SkippedStale = %d, want 1", cs.SkippedStale)
	}

	// At the settled epoch the same query runs fresh, is cached, and
	// the repeat hits.
	res2, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit {
		t.Fatal("post-batch query hit a cache that should hold no entry for the new epoch")
	}
	res3, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.CacheHit {
		t.Fatal("repeat of the post-batch query missed the cache")
	}
}
