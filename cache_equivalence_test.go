// Randomized cache-equivalence harness: a cached searcher and an
// uncached one over the same live database must return byte-identical
// topologies under any interleaving of Search, ApplyBatch and Refresh —
// including results served from carried-forward entries after a
// frontier-scoped invalidation pass. CI runs it via -run CacheEquiv
// and races the hammer variant under -race.
package toposearch_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"toposearch"
)

// cacheQueryPool is a deterministic query mix spanning unconstrained,
// keyword- and equality-constrained queries, top-k and full results,
// and explicit method overrides. Every entry resolves to a
// deterministic result, so cached and uncached searchers can be
// compared after each call.
func cacheQueryPool() []toposearch.SearchQuery {
	kw := func(k string) []toposearch.Constraint {
		return []toposearch.Constraint{{Column: "desc", Keyword: k}}
	}
	return []toposearch.SearchQuery{
		{},
		{K: 5},
		{K: 3, Ranking: toposearch.RankFreq},
		{K: 10, Method: "full-top-k-et", Cons1: kw("kwsel15")},
		{K: 5, Cons1: kw("kwsel50"), Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}}},
		{Method: "fast-top", Cons1: kw("kwsel85")},
		{K: 8, Ranking: toposearch.RankRare, Cons1: kw("kwsel15")},
	}
}

func mustSearch(t *testing.T, s *toposearch.Searcher, q toposearch.SearchQuery) *toposearch.SearchResult {
	t.Helper()
	res, err := s.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCacheEquivalenceRandomized(t *testing.T) {
	seeds := []int64{5, 77}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			db, err := toposearch.Synthetic(1, seed)
			if err != nil {
				t.Fatal(err)
			}
			base := toposearch.SearcherConfig{
				MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048, Parallelism: 2,
			}
			cachedCfg := base // default-on 64 MiB cache
			uncachedCfg := base
			uncachedCfg.CacheBytes = -1
			// A deliberately tiny cache joins the comparison so the
			// capacity-eviction path is exercised by the same oracle.
			tinyCfg := base
			tinyCfg.CacheBytes = 16 << 10
			cached, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, cachedCfg)
			if err != nil {
				t.Fatal(err)
			}
			uncached, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, uncachedCfg)
			if err != nil {
				t.Fatal(err)
			}
			tiny, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, tinyCfg)
			if err != nil {
				t.Fatal(err)
			}
			pool := cacheQueryPool()
			var lastPair [2]int64
			nextID := int64(0)
			for op := 0; op < 24; op++ {
				switch rng.Intn(4) {
				case 0, 1:
					q := pool[rng.Intn(len(pool))]
					want := mustSearch(t, uncached, q)
					// Twice on the cached searchers: first call may miss,
					// the second must hit the freshly stored entry.
					for rep := 0; rep < 2; rep++ {
						for name, s := range map[string]*toposearch.Searcher{"cached": cached, "tiny": tiny} {
							got := mustSearch(t, s, q)
							if fmt.Sprint(got.Topologies) != fmt.Sprint(want.Topologies) {
								t.Fatalf("op %d rep %d: %s searcher diverges for %+v:\n got %v\nwant %v",
									op, rep, name, q, got.Topologies, want.Topologies)
							}
						}
					}
				case 2:
					i := nextID
					nextID++
					var ups []toposearch.Update
					switch rng.Intn(3) {
					case 0: // generic growth: new pair wired into existing hubs
						p, d := 1_900_000+i, 2_900_000+i
						ups = []toposearch.Update{
							toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": fmt.Sprintf("growth protein %d kwsel50", i)}),
							toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "mRNA", "desc": "growth dna kwsel85"}),
							toposearch.InsertRelationship("encodes", p, d),
							toposearch.InsertRelationship("encodes", p, 2_000_000+i%40),
						}
						lastPair = [2]int64{p, d}
					case 1: // entity-only batch (shallow refresh path)
						ups = []toposearch.Update{
							toposearch.InsertEntity(toposearch.Protein, 1_920_000+i, map[string]string{"desc": "isolated protein"}),
						}
					case 2: // redundant parallel edge: zero frequency drift
						if lastPair == ([2]int64{}) {
							p, d := 1_900_000+i, 2_900_000+i
							ups = []toposearch.Update{
								toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": "island protein"}),
								toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "gene", "desc": "island dna"}),
								toposearch.InsertRelationship("encodes", p, d),
							}
							lastPair = [2]int64{p, d}
						} else {
							ups = []toposearch.Update{
								toposearch.InsertRelationship("encodes", lastPair[0], lastPair[1]),
							}
						}
					}
					if err := db.ApplyBatch(ups); err != nil {
						t.Fatal(err)
					}
				case 3:
					for _, s := range []*toposearch.Searcher{cached, uncached, tiny} {
						if _, err := s.Refresh(); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			// Quiesce and sweep the whole pool one last time: every entry
			// still resident (carried forward or not) must agree with the
			// uncached oracle.
			for _, s := range []*toposearch.Searcher{cached, uncached, tiny} {
				if _, err := s.Refresh(); err != nil {
					t.Fatal(err)
				}
			}
			for qi, q := range pool {
				want := mustSearch(t, uncached, q)
				for name, s := range map[string]*toposearch.Searcher{"cached": cached, "tiny": tiny} {
					got := mustSearch(t, s, q)
					if fmt.Sprint(got.Topologies) != fmt.Sprint(want.Topologies) {
						t.Fatalf("final sweep q%d: %s searcher diverges:\n got %v\nwant %v",
							qi, name, got.Topologies, want.Topologies)
					}
				}
			}
			if st := cached.CacheStats(); st.Hits == 0 {
				t.Errorf("cached searcher never hit: %+v", st)
			}
		})
	}
}

// TestCacheCarriedForward pins the frontier-scoped invalidation
// behavior: a query whose footprint is disjoint from an update's dirty
// start set must keep its cache entry across Refresh (served as a hit
// in the new generation), while the whole pipeline stays byte-identical
// to an uncached searcher.
func TestCacheCarriedForward(t *testing.T) {
	db, err := toposearch.Synthetic(1, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := toposearch.SearcherConfig{MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048, Parallelism: 2}
	cached, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	uncfg := cfg
	uncfg.CacheBytes = -1
	uncached, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, uncfg)
	if err != nil {
		t.Fatal(err)
	}
	q := toposearch.SearchQuery{K: 5, Cons1: []toposearch.Constraint{{Column: "desc", Keyword: "kwsel15"}}}
	check := func(stage string, wantHit bool) {
		t.Helper()
		want := mustSearch(t, uncached, q)
		got := mustSearch(t, cached, q)
		if fmt.Sprint(got.Topologies) != fmt.Sprint(want.Topologies) {
			t.Fatalf("%s: cached diverges:\n got %v\nwant %v", stage, got.Topologies, want.Topologies)
		}
		if got.CacheHit != wantHit {
			t.Fatalf("%s: CacheHit = %v, want %v (stats %+v)", stage, got.CacheHit, wantHit, cached.CacheStats())
		}
	}
	check("cold", false)
	check("warm", true)

	// An isolated island pair: the only affected start is the new
	// protein, whose desc does not match the query's keyword, and the
	// parallel second edge below drifts no topology frequency.
	p, d := int64(1_950_001), int64(2_950_001)
	if err := db.ApplyBatch([]toposearch.Update{
		toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": "island protein"}),
		toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "gene", "desc": "island dna"}),
		toposearch.InsertRelationship("encodes", p, d),
	}); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*toposearch.Searcher{cached, uncached} {
		if _, err := s.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	// The island's new encodes pair drifted the direct-encodes
	// topology's frequency, so the kwsel15 entry was (correctly)
	// invalidated: repopulate it in this generation.
	check("after island", false)
	check("after island warm", true)

	// A parallel duplicate of the island edge: same path class, so no
	// pair's class set and no topology frequency changes — the refresh
	// must reuse every table and carry the entry forward.
	if err := db.ApplyBatch([]toposearch.Update{
		toposearch.InsertRelationship("encodes", p, d),
	}); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*toposearch.Searcher{cached, uncached} {
		if _, err := s.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	diff := cached.LastRefreshDiff()
	if diff == nil || !diff.TidStable {
		t.Fatalf("parallel-edge refresh: diff = %+v, want stable registry", diff)
	}
	if len(diff.ChangedTIDs) != 0 {
		t.Fatalf("parallel-edge refresh drifted frequencies: %v", diff.ChangedTIDs)
	}
	if !diff.AllTops.Reused() {
		t.Errorf("parallel-edge refresh: AllTops %v, want reused", diff.AllTops)
	}
	check("carried", true)
	if st := cached.CacheStats(); st.CarriedForward == 0 {
		t.Errorf("no entries carried forward: %+v", st)
	}
}

// TestCacheConcurrentSearchRefreshHammer races cached searches against
// live batch application, refreshes (generation advances retagging and
// invalidating entries) and capacity evictions from a deliberately tiny
// cache — run under -race in CI.
func TestCacheConcurrentSearchRefreshHammer(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	db.SetAutoCompact(0.25)
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048, Parallelism: 4,
		CacheBytes: 32 << 10, // tiny: forces eviction churn under load
	})
	if err != nil {
		t.Fatal(err)
	}
	pool := cacheQueryPool()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := pool[w%len(pool)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.SearchContext(ctx, q)
				if err != nil {
					t.Errorf("cached search during live update: %v", err)
					return
				}
				if len(res.Topologies) == 0 {
					t.Error("cached search returned no topologies during live update")
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		p := int64(1_970_000 + i)
		d := int64(2_970_000 + i)
		ups := []toposearch.Update{
			toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": fmt.Sprintf("hammer protein %d kwsel50", i)}),
			toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "mRNA", "desc": "hammer dna kwsel50"}),
			toposearch.InsertRelationship("encodes", p, d),
			toposearch.InsertRelationship("encodes", p, int64(2_000_000+i)),
		}
		if err := db.ApplyBatch(ups); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RefreshContext(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: cached answers must equal a cache-bypassing baseline.
	fresh, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048, Parallelism: 4, CacheBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range pool {
		want, err := fresh.SearchContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.SearchContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Topologies) != fmt.Sprint(want.Topologies) {
			t.Fatalf("q%d diverges after hammer:\n got %v\nwant %v", qi, got.Topologies, want.Topologies)
		}
	}
}
