package toposearch

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"toposearch/internal/fault"
	"toposearch/internal/obs"
)

// TraceSpan is one node of a per-query trace tree (SearchResult.Trace):
// a named, monotonic-clocked span with integer/string attributes and
// children for the execution stages the query passed through — compile,
// cache lookup/fill, method dispatch, optimizer choice, scan/join
// windows, ET segments, shard executors, merges. Render writes the
// text outline `topsearch -trace` prints; the tree also marshals to
// JSON. Its methods are nil-safe, so code may hold a nil *TraceSpan
// and call Child/SetInt/End freely.
type TraceSpan = obs.Span

// SetMetricsEnabled switches the engine's telemetry recording on or
// off, process-wide. Disabled (the default), every instrumented event
// site costs one atomic load — the same discipline as fault injection —
// and the scan/join inner loops carry no instrumentation at all.
// Per-query tracing (SearchQuery.Trace) is independent of this switch.
func SetMetricsEnabled(on bool) { obs.SetEnabled(on) }

// MetricsEnabled reports whether telemetry recording is on.
func MetricsEnabled() bool { return obs.Enabled() }

// MetricsMux returns an http mux serving the engine's observability
// endpoints: /metrics (Prometheus text format v0.0.4), /statsz (JSON
// snapshot) and /debug/pprof/* (CPU, heap, goroutine, ... profiles).
// Mount it in a daemon, or let topsearch/benchtab serve it via
// -metrics-addr.
func MetricsMux() *http.ServeMux { return obs.Default().Mux() }

// ServeMetrics listens on addr (e.g. ":9090", "127.0.0.1:0") and serves
// MetricsMux in the background; it enables telemetry recording as a
// side effect. Close the returned server to stop. The returned address
// resolves a ":0" listener.
func ServeMetrics(addr string) (*http.Server, string, error) {
	obs.SetEnabled(true)
	return obs.Default().Serve(addr)
}

// WriteMetricsText writes every metric in Prometheus text exposition
// format.
func WriteMetricsText(w io.Writer) error { return obs.Default().WritePrometheus(w) }

// WriteMetricsJSON writes every metric as an indented JSON snapshot.
func WriteMetricsJSON(w io.Writer) error { return obs.Default().WriteJSON(w) }

// Engine-wide metric families. The per-event families (cache, shard,
// speculation, refresh tables) live next to their event sites in
// internal/methods; these are the searcher/DB-level ones.
var (
	obsQueryDur = obs.Default().HistogramVec("toposearch_query_duration_seconds",
		"Search latency by evaluation method and outcome (ok, partial, error, shed).",
		obs.DefLatencyBuckets(), "method", "status")
	obsRefreshDur = obs.Default().HistogramVec("toposearch_refresh_duration_seconds",
		"Searcher.Refresh latency by outcome.", obs.DefLatencyBuckets(), "status")
	obsRefreshEdges = obs.Default().Counter("toposearch_refresh_edges_total",
		"Relationship rows absorbed by Refresh.")
	obsApplyDur = obs.Default().HistogramVec("toposearch_apply_duration_seconds",
		"DB.ApplyBatch latency by outcome.", obs.DefLatencyBuckets(), "status")
	obsApplyMutations = obs.Default().Counter("toposearch_apply_mutations_total",
		"Mutations submitted through DB.ApplyBatch.")
	obsApplyEdges = obs.Default().Counter("toposearch_apply_edges_total",
		"Relationship edges appended to the applied-edge log.")
	obsDeltaBytes = obs.Default().Gauge("toposearch_delta_bytes",
		"Resident bytes of un-compacted write state (delta columns, pending index buffers).")
	obsBuildDur = obs.Default().Histogram("toposearch_build_duration_seconds",
		"Offline phase (NewSearcher) duration.", obs.ExpBuckets(0.01, 2, 14))

	obsSearcherInflight = obs.Default().GaugeVec("toposearch_searcher_inflight",
		"Search calls currently executing, per searcher.", "searcher")
	obsSearcherWaiting = obs.Default().GaugeVec("toposearch_searcher_waiting",
		"Search calls queued for an admission slot, per searcher.", "searcher")
	obsSearcherAdmission = obs.Default().CounterVec("toposearch_searcher_admission_total",
		"Admission outcomes per searcher: admitted, degraded (ran with speculation/shards clamped), rejected (shed with ErrOverloaded), canceled (context expired while queued).",
		"searcher", "outcome")
	obsSearcherPanics = obs.Default().CounterVec("toposearch_searcher_panics_contained_total",
		"Panics recovered into EnginePanicError by Search/Refresh, per searcher.", "searcher")
	obsSearcherPartials = obs.Default().CounterVec("toposearch_searcher_partials_total",
		"Deadline-bounded queries that returned a partial result, per searcher.", "searcher")
	obsSearcherCacheBytes = obs.Default().GaugeVec("toposearch_cache_resident_bytes",
		"Result-cache resident bytes, per searcher.", "searcher")
	obsSearcherCacheEntries = obs.Default().GaugeVec("toposearch_cache_resident_entries",
		"Result-cache resident entries, per searcher.", "searcher")

	obsFaultFired = obs.Default().CounterVec("toposearch_fault_fired_total",
		"Fault-injection activations by point name (mirrors fault.Stats; series appear once a chaos run arms the registry).",
		"point")
)

func init() {
	// The fault registry keeps its own counters; mirror them into a
	// family at scrape time instead of instrumenting Point.Hit (whose
	// disabled path must stay a single atomic load).
	obs.Default().RegisterCollector(func() {
		for _, ps := range fault.Stats() {
			obsFaultFired.With(ps.Name).Set(ps.Fired)
		}
	})
}

// searcherMetrics is one searcher's resolved per-series instruments,
// labeled searcher="<es1>-<es2>#<seq>". They replace the ad-hoc
// SearcherStats atomics: Stats() reads these, so the counters cost the
// same one atomic op they always did, whether or not telemetry
// recording is enabled.
type searcherMetrics struct {
	inflight, waiting                      *obs.Gauge
	admitted, rejected, degraded, canceled *obs.Counter
	panics, partials                       *obs.Counter
	cacheBytes, cacheEntries               *obs.Gauge
}

var searcherSeq atomic.Int64

func newSearcherMetrics(es1, es2 string) (string, searcherMetrics) {
	sid := fmt.Sprintf("%s-%s#%d", es1, es2, searcherSeq.Add(1))
	return sid, searcherMetrics{
		inflight:     obsSearcherInflight.With(sid),
		waiting:      obsSearcherWaiting.With(sid),
		admitted:     obsSearcherAdmission.With(sid, "admitted"),
		rejected:     obsSearcherAdmission.With(sid, "rejected"),
		degraded:     obsSearcherAdmission.With(sid, "degraded"),
		canceled:     obsSearcherAdmission.With(sid, "canceled"),
		panics:       obsSearcherPanics.With(sid),
		partials:     obsSearcherPartials.With(sid),
		cacheBytes:   obsSearcherCacheBytes.With(sid),
		cacheEntries: obsSearcherCacheEntries.With(sid),
	}
}

// releaseSearcherMetrics drops a closed searcher's series from the
// exposition. The searcher's own instrument pointers stay valid (Stats
// keeps working after Close); the series just stop being scraped.
func releaseSearcherMetrics(sid string) {
	obsSearcherInflight.Remove(sid)
	obsSearcherWaiting.Remove(sid)
	for _, oc := range []string{"admitted", "rejected", "degraded", "canceled"} {
		obsSearcherAdmission.Remove(sid, oc)
	}
	obsSearcherPanics.Remove(sid)
	obsSearcherPartials.Remove(sid)
	obsSearcherCacheBytes.Remove(sid)
	obsSearcherCacheEntries.Remove(sid)
}
