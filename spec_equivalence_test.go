// Randomized cross-method equivalence harness: seeded random databases
// and query mixes, every evaluation method, across the
// parallelism x speculation x shards grid. Items, counter totals and
// plan choices must be byte-identical to the single-store sequential
// baseline at every setting — this is the gate that lets speculative
// parallel ET and scatter-gather sharding (and any future execution
// strategy) ship without golden files for every workload shape (CI
// runs it via -run SpecEquivalence).
package toposearch_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"toposearch"
	"toposearch/internal/biozon"
	"toposearch/internal/core"
	"toposearch/internal/methods"
	"toposearch/internal/ranking"
	"toposearch/internal/relstore"
)

// randomQueries derives a deterministic query mix from the seed:
// random predicate selectivities on both sides (including none and an
// equality), random k, ranking and DGJ variant.
func randomQueries(t *testing.T, rng *rand.Rand, st *methods.Store, n int) []methods.Query {
	t.Helper()
	mkPred := func(tab *relstore.Table) relstore.Pred {
		switch rng.Intn(5) {
		case 0:
			return nil
		case 1:
			p, err := relstore.Eq(tab.Schema, "type", relstore.StrVal("mRNA"))
			if err != nil {
				// Not every entity table has a type column; fall through
				// to a keyword predicate.
				break
			}
			return p
		}
		p, err := biozon.SelectivityPred(tab.Schema, []string{"selective", "medium", "unselective"}[rng.Intn(3)])
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	ks := []int{1, 3, 10, 40}
	rks := ranking.Names()
	qs := make([]methods.Query, n)
	for i := range qs {
		qs[i] = methods.Query{
			Pred1:   mkPred(st.T1),
			Pred2:   mkPred(st.T2),
			K:       ks[rng.Intn(len(ks))],
			Ranking: rks[rng.Intn(len(rks))],
			UseHDGJ: rng.Intn(2) == 1,
		}
	}
	return qs
}

func TestSpecEquivalenceRandomized(t *testing.T) {
	seeds := []int64{3, 1234}
	if testing.Short() {
		seeds = seeds[:1]
	}
	type gridCfg struct{ par, spec, shards int }
	var grid []gridCfg
	for _, par := range []int{1, 4, 8} {
		for _, spec := range []int{1, 2, 8} {
			grid = append(grid, gridCfg{par, spec, 1})
		}
	}
	// Sharded executions join the same gate: scatter-gather across
	// cost-weighted entity shards, alone and stacked on top of query
	// workers and speculation.
	for _, shards := range []int{2, 4} {
		grid = append(grid, gridCfg{1, 1, shards}, gridCfg{4, 2, shards})
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := biozon.DefaultConfig(1)
			cfg.Seed = seed
			// Third-size database: the grid runs every method 9 times
			// per query, and the SQL strawman's from-scratch
			// per-candidate enumeration has to stay tractable even for
			// unselective predicate draws.
			for _, n := range []*int{
				&cfg.Proteins, &cfg.DNAs, &cfg.Unigenes, &cfg.Interactions,
				&cfg.Families, &cfg.Pathways, &cfg.Structures,
				&cfg.Encodes, &cfg.UniEncodes, &cfg.UniContains,
				&cfg.PInteract, &cfg.DInteract,
				&cfg.Belongs, &cfg.Manifest, &cfg.PathElements,
				&cfg.SelfRegulating, &cfg.Triangles,
			} {
				*n = (*n + 2) / 3
			}
			db := biozon.Generate(cfg)
			st, err := methods.BuildStore(context.Background(), db, biozon.SchemaGraph(),
				biozon.Protein, biozon.DNA, methods.StoreConfig{
					Opts:           core.DefaultOptions(),
					PruneThreshold: 2 + rng.Intn(5),
					Scores:         ranking.Schemes(),
				})
			if err != nil {
				t.Fatal(err)
			}
			for qi, q := range randomQueries(t, rng, st, 4) {
				for _, m := range methods.AllMethods() {
					mq := q
					if m == methods.MethodSQL || m == methods.MethodFullTop || m == methods.MethodFastTop {
						mq.K, mq.Ranking = 0, ""
					}
					base := mq
					base.Parallelism, base.Speculation = 1, 1
					want, err := st.Run(m, base)
					if err != nil {
						t.Fatalf("q%d %s baseline: %v", qi, m, err)
					}
					for _, g := range grid {
						if g.par == 1 && g.spec == 1 && g.shards == 1 {
							continue
						}
						run := mq
						run.Parallelism, run.Speculation, run.Shards = g.par, g.spec, g.shards
						got, err := st.Run(m, run)
						if err != nil {
							t.Fatalf("q%d %s p=%d s=%d sh=%d: %v", qi, m, g.par, g.spec, g.shards, err)
						}
						tag := fmt.Sprintf("q%d %s hdgj=%v k=%d p=%d s=%d sh=%d", qi, m, mq.UseHDGJ, mq.K, g.par, g.spec, g.shards)
						if gi, wi := itemsString(got.Items), itemsString(want.Items); gi != wi {
							t.Errorf("%s: items %s diverge from baseline %s", tag, gi, wi)
						}
						if got.Counters != want.Counters {
							t.Errorf("%s: counters %+v diverge from baseline %+v", tag, got.Counters, want.Counters)
						}
						if got.Plan != want.Plan {
							t.Errorf("%s: plan %v diverges from baseline %v", tag, got.Plan, want.Plan)
						}
					}
				}
			}
		})
	}
}

// TestSpecConcurrentSearchRefreshHammer races speculative-ET searches
// against live batch application, incremental refreshes and
// compactions (run under -race in CI): every query must keep
// succeeding on a consistent store generation while the speculation
// machinery spawns and cancels segment workers.
func TestSpecConcurrentSearchRefreshHammer(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	db.SetAutoCompact(0.25)
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048, Parallelism: 4, Speculation: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := []toposearch.SearchQuery{
		{K: 5, Method: "fast-top-k-et", Cons1: []toposearch.Constraint{{Column: "desc", Keyword: "kwsel50"}}},
		{K: 3, Method: "full-top-k-et", Speculation: 8},
		{K: 8, Method: "fast-top-k-opt", Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}}},
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := queries[w%len(queries)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.SearchContext(ctx, q)
				if err != nil {
					t.Errorf("speculative search during live update: %v", err)
					return
				}
				if len(res.Topologies) == 0 {
					t.Error("speculative search returned no topologies during live update")
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		p := int64(1_960_000 + i)
		d := int64(2_960_000 + i)
		ups := []toposearch.Update{
			toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": fmt.Sprintf("hammer protein %d kwsel50", i)}),
			toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "mRNA", "desc": "hammer dna kwsel50"}),
			toposearch.InsertRelationship("encodes", p, d),
			toposearch.InsertRelationship("encodes", p, int64(2_000_000+i)),
		}
		if err := db.ApplyBatch(ups); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RefreshContext(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// The hammered searcher still answers identically to a freshly
	// built one at sequential settings.
	q := toposearch.SearchQuery{K: 5, Method: "fast-top-k-et", Speculation: 1}
	want, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SearchContext(ctx, toposearch.SearchQuery{K: 5, Method: "fast-top-k-et", Speculation: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(want.Topologies) != fmt.Sprint(got.Topologies) {
		t.Fatalf("speculative result diverges after hammer:\n got %v\nwant %v", got.Topologies, want.Topologies)
	}
}
