package toposearch_test

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"sync"
	"testing"
	"time"

	"toposearch"
	"toposearch/internal/fault"
)

// chaosSeedFlag seeds the chaos harness deterministically: the same
// seed replays the same fault schedule on every run (CI pins one; a
// failure report's seed reproduces the failure locally).
var chaosSeedFlag = flag.Int64("chaos.seed", 1, "base seed for the chaos fault-injection harness")

// chaosTyped reports whether err is one of the errors the failure
// model permits to escape the public API under fault injection:
// injected faults, contained panics, admission-control rejections and
// context expiry. Anything else — in particular a raw runtime error
// text — is a containment bug.
func chaosTyped(err error) bool {
	if err == nil {
		return true
	}
	var pe *toposearch.EnginePanicError
	return errors.Is(err, toposearch.ErrInjected) ||
		errors.As(err, &pe) ||
		errors.Is(err, toposearch.ErrOverloaded) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// chaosConfig is the searcher build used across the chaos tests.
func chaosConfig(par int) toposearch.SearcherConfig {
	return toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048,
		Parallelism: par, Speculation: 2, Shards: 2,
	}
}

// TestChaosHammer is the chaos gate of the failure-containment layer:
// with every injection point armed — errors everywhere, panics inside
// segment racers, shard executors, offline workers, cache fills and
// batch application, plus latency on the bound exchange — concurrent
// searches, batch mutations, refreshes and compactions hammer one
// searcher across the {1,2,4}^3 parallelism x speculation x shards
// grid. The invariants: no panic escapes (the test process survives),
// every surfaced error is typed, no goroutine leaks, and after the
// chaos stops the searcher's answers are byte-identical to a fresh
// from-scratch rebuild on the final database state.
func TestChaosHammer(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	for _, par := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			chaosHammer(t, par)
		})
	}
}

func chaosHammer(t *testing.T, par int) {
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(par)
	cfg.MaxInflight = 4
	cfg.MaxQueue = 8
	cfg.QueueTimeout = 250 * time.Millisecond
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	t.Cleanup(fault.Disable)
	seed := *chaosSeedFlag*1000 + int64(par)
	if err := fault.Enable(seed,
		fault.Rule{Point: "*", Prob: 0.03},
		fault.Rule{Point: "engine.segment", Prob: 0.02, Panic: true},
		fault.Rule{Point: "shard.executor", Prob: 0.02, Panic: true},
		fault.Rule{Point: "core.start", Prob: 0.005, Panic: true},
		fault.Rule{Point: "cache.fill", Prob: 0.05, Panic: true},
		fault.Rule{Point: "delta.apply", Prob: 0.05, Panic: true},
		fault.Rule{Point: "relstore.compact.mid", Prob: 0.5, Panic: true},
		fault.Rule{Point: "shard.exchange", Prob: 0.02, Delay: time.Millisecond, DelayOnly: true},
	); err != nil {
		t.Fatal(err)
	}

	// The query mix: every speculation x shards combination of the grid,
	// cycled through by each worker, over join, top-k and ET plans.
	var settings [][2]int
	for _, sp := range []int{1, 2, 4} {
		for _, sh := range []int{1, 2, 4} {
			settings = append(settings, [2]int{sp, sh})
		}
	}
	bases := []toposearch.SearchQuery{
		{Method: "fast-top", Cons1: []toposearch.Constraint{{Column: "desc", Keyword: "kwsel50"}}},
		{K: 5, Method: "fast-top-k-et"},
		{K: 3, Method: "full-top-k", Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}}},
		{K: 4, Method: "full-top-k-et"},
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := bases[(w+i)%len(bases)]
				set := settings[(w*7+i)%len(settings)]
				q.Speculation, q.Shards = set[0], set[1]
				if i%5 == 4 {
					// Every fifth query runs deadline-bounded with partial
					// results permitted: under injected latency these must
					// come back as err == nil with Partial set, never as an
					// untyped failure.
					q.Deadline = 5 * time.Millisecond
					q.PartialOK = true
				}
				res, err := s.SearchContext(ctx, q)
				if !chaosTyped(err) {
					t.Errorf("chaos search returned untyped error: %v", err)
					return
				}
				if err == nil && !res.Partial && len(res.Topologies) == 0 {
					t.Error("complete chaos search returned no topologies")
					return
				}
			}
		}()
	}

	// Mutator: batches either land whole or roll back, so retrying the
	// identical batch after a typed failure is always safe — and the
	// retry succeeding is itself evidence the rollback left no residue
	// (a half-applied batch would re-collide on its own primary keys).
	for i := 0; i < 4; i++ {
		p := int64(3_970_000 + i)
		d := int64(4_970_000 + i)
		ups := []toposearch.Update{
			toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": fmt.Sprintf("chaos protein %d kwsel50", i)}),
			toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "mRNA", "desc": "chaos dna kwsel50"}),
			toposearch.InsertRelationship("encodes", p, d),
			toposearch.InsertRelationship("encodes", p, int64(2_000_000+i)),
		}
		applied := false
		for attempt := 0; attempt < 200; attempt++ {
			err := db.ApplyBatch(ups)
			if err == nil {
				applied = true
				break
			}
			if !chaosTyped(err) {
				t.Fatalf("chaos ApplyBatch returned untyped error: %v", err)
			}
		}
		if !applied {
			t.Fatalf("round %d: batch did not land in 200 attempts (fault schedule too hot?)", i)
		}
		if err := db.Compact(); !chaosTyped(err) {
			t.Fatalf("chaos Compact returned untyped error: %v", err)
		}
		refreshed := false
		for attempt := 0; attempt < 200; attempt++ {
			_, err := s.RefreshContext(ctx)
			if err == nil {
				refreshed = true
				break
			}
			if !chaosTyped(err) {
				t.Fatalf("chaos Refresh returned untyped error: %v", err)
			}
		}
		if !refreshed {
			t.Fatalf("round %d: refresh did not land in 200 attempts", i)
		}
	}
	close(stop)
	wg.Wait()

	if fault.TotalFired() == 0 {
		t.Fatal("chaos harness fired no faults — injection schedule is disarmed")
	}
	fault.Disable()

	// Post-chaos gate: with faults off, one final refresh must succeed,
	// and every grid setting must answer byte-identically to a fresh
	// from-scratch searcher on the final database state.
	if _, err := s.RefreshContext(ctx); err != nil {
		t.Fatalf("post-chaos refresh: %v", err)
	}
	if err := db.Compact(); err != nil {
		t.Fatalf("post-chaos compact: %v", err)
	}
	fresh, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, chaosConfig(par))
	if err != nil {
		t.Fatalf("fresh rebuild: %v", err)
	}
	defer fresh.Close()
	for _, base := range bases {
		want, err := fresh.SearchContext(ctx, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, set := range settings {
			q := base
			q.Speculation, q.Shards = set[0], set[1]
			got, err := s.SearchContext(ctx, q)
			if err != nil {
				t.Fatalf("post-chaos %s spec=%d shards=%d: %v", base.Method, set[0], set[1], err)
			}
			if fmt.Sprint(got.Topologies) != fmt.Sprint(want.Topologies) {
				t.Fatalf("post-chaos %s spec=%d shards=%d diverges from fresh rebuild:\n got %v\nwant %v",
					base.Method, set[0], set[1], got.Topologies, want.Topologies)
			}
		}
	}
	st := s.Stats()
	if st.Inflight != 0 || st.Waiting != 0 {
		t.Fatalf("post-chaos admission counters not drained: %+v", st)
	}
}

// TestChaosRefreshAtomicity proves Refresh is all-or-nothing: an
// injected failure (and separately a panic) anywhere in the refresh
// leaves the serving generation, the result cache and the edge-log
// cursor untouched, and the next clean Refresh absorbs everything.
func TestChaosRefreshAtomicity(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 11)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, chaosConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	t.Cleanup(fault.Disable)

	q := toposearch.SearchQuery{K: 5, Method: "fast-top-k"}
	before, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	p, d := int64(5_970_001), int64(6_970_001)
	if err := db.ApplyBatch([]toposearch.Update{
		toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": "refresh atomicity protein"}),
		toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "mRNA", "desc": "refresh atomicity dna"}),
		toposearch.InsertRelationship("encodes", p, d),
	}); err != nil {
		t.Fatal(err)
	}

	// Injected error: Refresh fails, the old generation keeps serving.
	if err := fault.Enable(*chaosSeedFlag, fault.Rule{Point: "methods.refresh"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RefreshContext(ctx); !errors.Is(err, toposearch.ErrInjected) {
		t.Fatalf("refresh under injected error: got %v, want ErrInjected", err)
	}
	mid, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(mid.Topologies) != fmt.Sprint(before.Topologies) {
		t.Fatalf("failed refresh changed the serving generation:\n got %v\nwant %v", mid.Topologies, before.Topologies)
	}

	// Injected panic: contained into *EnginePanicError, counted, and
	// still atomic.
	if err := fault.Enable(*chaosSeedFlag, fault.Rule{Point: "methods.refresh", Panic: true}); err != nil {
		t.Fatal(err)
	}
	_, err = s.RefreshContext(ctx)
	var pe *toposearch.EnginePanicError
	if !errors.As(err, &pe) {
		t.Fatalf("refresh under injected panic: got %v, want *EnginePanicError", err)
	}
	if got := s.Stats().PanicsContained; got == 0 {
		t.Fatal("contained refresh panic not counted in SearcherStats.PanicsContained")
	}
	fault.Disable()

	// Clean refresh absorbs the batch; the result now matches a fresh
	// rebuild.
	n, err := s.RefreshContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("clean refresh after contained failures absorbed nothing")
	}
	fresh, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, chaosConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	want, err := fresh.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Topologies) != fmt.Sprint(want.Topologies) {
		t.Fatalf("post-recovery refresh diverges from fresh rebuild:\n got %v\nwant %v", got.Topologies, want.Topologies)
	}
}

// TestChaosApplyBatchRollback proves batch application is atomic under
// mid-batch faults: a failure after some rows already landed rolls
// every touched table back, so retrying the identical batch succeeds —
// a half-applied batch would collide on its own primary keys.
func TestChaosApplyBatchRollback(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 13)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, chaosConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	t.Cleanup(fault.Disable)

	p, d := int64(7_970_001), int64(8_970_001)
	batch := []toposearch.Update{
		toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": "rollback protein kwsel50"}),
		toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "mRNA", "desc": "rollback dna"}),
		toposearch.InsertRelationship("encodes", p, d),
		toposearch.InsertRelationship("encodes", p, 2_000_001),
	}

	// Error after two rows landed: the batch must fail AND vanish.
	if err := fault.Enable(*chaosSeedFlag, fault.Rule{Point: "delta.apply", After: 2, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyBatch(batch); !errors.Is(err, toposearch.ErrInjected) {
		t.Fatalf("mid-batch injected error: got %v, want ErrInjected", err)
	}

	// Panic after two rows landed: contained, rolled back.
	if err := fault.Enable(*chaosSeedFlag, fault.Rule{Point: "delta.apply", After: 2, Count: 1, Panic: true}); err != nil {
		t.Fatal(err)
	}
	var pe *toposearch.EnginePanicError
	if err := db.ApplyBatch(batch); !errors.As(err, &pe) {
		t.Fatalf("mid-batch injected panic: got %v, want *EnginePanicError", err)
	}
	fault.Disable()

	// The identical batch lands cleanly: no residue from either failure.
	if err := db.ApplyBatch(batch); err != nil {
		t.Fatalf("retry of rolled-back batch: %v", err)
	}
	if _, err := s.RefreshContext(ctx); err != nil {
		t.Fatal(err)
	}
	fresh, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, chaosConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	q := toposearch.SearchQuery{K: 5, Method: "fast-top-k", Cons1: []toposearch.Constraint{{Column: "desc", Keyword: "kwsel50"}}}
	want, err := fresh.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Topologies) != fmt.Sprint(want.Topologies) {
		t.Fatalf("post-rollback state diverges from fresh rebuild:\n got %v\nwant %v", got.Topologies, want.Topologies)
	}
}

// TestChaosCompactContainment proves a panic in the middle of
// compaction — after the column merge published, before the
// dictionary/index merges — is contained and leaves every table
// readable with identical query answers.
func TestChaosCompactContainment(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 17)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, chaosConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	t.Cleanup(fault.Disable)

	p, d := int64(9_970_001), int64(1_970_002)
	if err := db.ApplyBatch([]toposearch.Update{
		toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": "compact chaos protein"}),
		toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "mRNA", "desc": "compact chaos dna"}),
		toposearch.InsertRelationship("encodes", p, d),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RefreshContext(ctx); err != nil {
		t.Fatal(err)
	}
	q := toposearch.SearchQuery{K: 5, Method: "fast-top-k"}
	before, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	if err := fault.Enable(*chaosSeedFlag, fault.Rule{Point: "relstore.compact.mid", Panic: true}); err != nil {
		t.Fatal(err)
	}
	var pe *toposearch.EnginePanicError
	if err := db.Compact(); !errors.As(err, &pe) {
		t.Fatalf("mid-compaction panic: got %v, want *EnginePanicError", err)
	}
	fault.Disable()

	mid, err := s.SearchContext(ctx, toposearch.SearchQuery{K: 5, Method: "fast-top-k", Speculation: 1, Shards: 1})
	if err != nil {
		t.Fatalf("search after contained mid-compaction panic: %v", err)
	}
	if fmt.Sprint(mid.Topologies) != fmt.Sprint(before.Topologies) {
		t.Fatalf("mid-compaction panic changed query answers:\n got %v\nwant %v", mid.Topologies, before.Topologies)
	}
	if err := db.Compact(); err != nil {
		t.Fatalf("clean compaction after contained panic: %v", err)
	}
	after, err := s.SearchContext(ctx, toposearch.SearchQuery{K: 5, Method: "fast-top-k", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(after.Topologies) != fmt.Sprint(before.Topologies) {
		t.Fatalf("post-compaction answers diverge:\n got %v\nwant %v", after.Topologies, before.Topologies)
	}
}

// TestChaosAdmissionControl drives the searcher past MaxInflight with
// injected executor latency: overflow must shed load with
// ErrOverloaded (never block forever, never crash), admitted queries
// must all succeed, and the counters must reconcile.
func TestChaosAdmissionControl(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 19)
	if err != nil {
		t.Fatal(err)
	}
	cfg := chaosConfig(2)
	cfg.MaxInflight = 1
	cfg.MaxQueue = 1
	cfg.QueueTimeout = 20 * time.Millisecond
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	t.Cleanup(fault.Disable)

	// Every shard executor sleeps: queries hold their admission slot
	// long enough that concurrent arrivals overflow the queue.
	if err := fault.Enable(*chaosSeedFlag,
		fault.Rule{Point: "shard.executor", Delay: 150 * time.Millisecond, DelayOnly: true}); err != nil {
		t.Fatal(err)
	}

	const callers = 6
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Distinct constraints keep the queries off each other's
			// cache flights: every caller really occupies a slot.
			q := toposearch.SearchQuery{Method: "fast-top",
				Cons1: []toposearch.Constraint{{Column: "desc", Keyword: fmt.Sprintf("kwsel%d", 10*(i+1))}}}
			_, errs[i] = s.SearchContext(ctx, q)
		}()
	}
	wg.Wait()
	fault.Disable()

	okCount, shed := 0, 0
	for i, err := range errs {
		switch {
		case err == nil:
			okCount++
		case errors.Is(err, toposearch.ErrOverloaded):
			shed++
		default:
			t.Fatalf("caller %d: got %v, want nil or ErrOverloaded", i, err)
		}
	}
	if okCount == 0 {
		t.Fatal("no query was admitted under overload")
	}
	if shed == 0 {
		t.Fatal("no query was shed with ErrOverloaded despite MaxInflight=1, MaxQueue=1 and 6 concurrent callers")
	}
	st := s.Stats()
	if st.Rejected != int64(shed) {
		t.Fatalf("Stats().Rejected = %d, want %d", st.Rejected, shed)
	}
	if st.Admitted != int64(okCount) {
		t.Fatalf("Stats().Admitted = %d, want %d", st.Admitted, okCount)
	}
	if st.Inflight != 0 || st.Waiting != 0 {
		t.Fatalf("admission counters not drained after overload: %+v", st)
	}

	// With the latency gone the same searcher serves everyone again.
	if _, err := s.SearchContext(ctx, toposearch.SearchQuery{K: 3, Method: "fast-top-k"}); err != nil {
		t.Fatalf("search after overload episode: %v", err)
	}
	if st := s.Stats(); st.Canceled != 0 {
		t.Fatalf("Stats().Canceled = %d after an episode with no cancellations, want 0", st.Canceled)
	}

	// Cancelled-while-queued on a no-timeout queue: the queued query's
	// exit must land in the canceled counter — it used to return from
	// the admission wait without touching any counter, vanishing from
	// the Admitted + Rejected accounting.
	ccfg := chaosConfig(2)
	ccfg.MaxInflight = 1
	ccfg.MaxQueue = 4
	s2, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := fault.Enable(*chaosSeedFlag,
		fault.Rule{Point: "shard.executor", Delay: 300 * time.Millisecond, DelayOnly: true}); err != nil {
		t.Fatal(err)
	}
	waitFor := func(what string, cond func(toposearch.SearcherStats) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond(s2.Stats()) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: %+v", what, s2.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	holder := make(chan error, 1)
	go func() {
		_, err := s2.SearchContext(ctx, toposearch.SearchQuery{Method: "fast-top"})
		holder <- err
	}()
	waitFor("the slot to be held", func(st toposearch.SearcherStats) bool { return st.Inflight == 1 })
	cctx, cancel := context.WithCancel(ctx)
	queued := make(chan error, 1)
	go func() {
		_, err := s2.SearchContext(cctx, toposearch.SearchQuery{K: 3, Method: "fast-top-k"})
		queued <- err
	}()
	waitFor("the second query to queue", func(st toposearch.SearcherStats) bool { return st.Waiting == 1 })
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled-while-queued query: got %v, want context.Canceled", err)
	}
	if err := <-holder; err != nil {
		t.Fatalf("slot-holding query: %v", err)
	}
	fault.Disable()
	st2 := s2.Stats()
	if st2.Canceled != 1 || st2.Admitted != 1 || st2.Rejected != 0 {
		t.Fatalf("admission accounting after queued cancellation: %+v, want 1 admitted / 0 rejected / 1 canceled", st2)
	}
	if st2.Inflight != 0 || st2.Waiting != 0 {
		t.Fatalf("admission gauges not drained after queued cancellation: %+v", st2)
	}
}

// TestChaosDeadlinePartial proves the deadline-budget contract: with
// PartialOK a deadline cut ships a ranked prefix (err == nil,
// Partial set, incomplete shards reported), without it the query fails
// with context.DeadlineExceeded — and partial answers never enter the
// result cache.
func TestChaosDeadlinePartial(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 23)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, chaosConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	t.Cleanup(fault.Disable)

	if err := fault.Enable(*chaosSeedFlag,
		fault.Rule{Point: "shard.executor", Delay: 150 * time.Millisecond, DelayOnly: true}); err != nil {
		t.Fatal(err)
	}

	q := toposearch.SearchQuery{Method: "full-top", Shards: 2, Deadline: 30 * time.Millisecond, PartialOK: true}
	res, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatalf("deadline-bounded PartialOK query failed: %v", err)
	}
	if !res.Partial {
		t.Fatal("deadline-bounded query under injected latency did not report Partial")
	}
	if res.CacheHit {
		t.Fatal("partial result claimed a cache hit")
	}
	incomplete := 0
	for _, st := range res.ShardStats {
		if !st.Complete {
			incomplete++
		}
	}
	if len(res.ShardStats) > 0 && incomplete == 0 {
		t.Fatal("partial result reported every shard complete")
	}
	if s.Stats().Partials == 0 {
		t.Fatal("partial result not counted in SearcherStats.Partials")
	}

	// Same deadline without PartialOK: a typed failure, not a partial.
	hard := toposearch.SearchQuery{Method: "full-top", Shards: 2, Deadline: 30 * time.Millisecond}
	if _, err := s.SearchContext(ctx, hard); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-bounded query without PartialOK: got %v, want DeadlineExceeded", err)
	}

	fault.Disable()

	// The partial run must not have poisoned the cache: the same query
	// shape without a deadline computes the full answer.
	full, err := s.SearchContext(ctx, toposearch.SearchQuery{Method: "full-top", Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("unbounded query reported Partial")
	}
	if full.CacheHit {
		t.Fatal("full answer was served from cache right after a partial run — partials must never be cached")
	}
	if len(full.Topologies) == 0 {
		t.Fatal("full answer empty")
	}
}

// TestChaosSearchCloseConcurrent races Search against Close: Close
// drains in-flight queries (none straddles the cursor unregistration),
// is idempotent under concurrent callers, and queries on the closed
// searcher keep answering from its last generation.
func TestChaosSearchCloseConcurrent(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 29)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, chaosConfig(2))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.SearchContext(ctx, toposearch.SearchQuery{K: 3, Method: "fast-top-k"}); err != nil {
					t.Errorf("search racing Close: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(30 * time.Millisecond)
	var cwg sync.WaitGroup
	for i := 0; i < 3; i++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			s.Close()
		}()
	}
	cwg.Wait()
	close(stop)
	wg.Wait()

	// The closed searcher still answers from its last generation.
	res, err := s.SearchContext(ctx, toposearch.SearchQuery{K: 3, Method: "fast-top-k"})
	if err != nil {
		t.Fatalf("search on closed searcher: %v", err)
	}
	if len(res.Topologies) == 0 {
		t.Fatal("search on closed searcher returned no topologies")
	}
	s.Close() // idempotent
}

// TestChaosCacheFillSurvivesCallerCancellation is the regression test
// for the singleflight cancellation bug: the caller that INITIATES a
// cache fill being cancelled must not fail the fill for the waiters
// that collapsed onto it — the fill runs detached, completes, and is
// cached.
func TestChaosCacheFillSurvivesCallerCancellation(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 31)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, chaosConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	t.Cleanup(fault.Disable)

	// Only the first fill is slow: the initiator times out mid-fill.
	if err := fault.Enable(*chaosSeedFlag,
		fault.Rule{Point: "shard.executor", Delay: 200 * time.Millisecond, DelayOnly: true, Count: 1}); err != nil {
		t.Fatal(err)
	}

	q := toposearch.SearchQuery{Method: "fast-top", Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}}}
	initiatorErr := make(chan error, 1)
	go func() {
		cctx, cancel := context.WithTimeout(ctx, 40*time.Millisecond)
		defer cancel()
		_, err := s.SearchContext(cctx, q)
		initiatorErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // the initiator is inside the slow fill now

	// A second caller with no deadline joins the same flight and must
	// get the full result even though the initiator is about to die.
	res, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatalf("waiter on cancelled initiator's fill: %v", err)
	}
	if len(res.Topologies) == 0 {
		t.Fatal("waiter got an empty result")
	}
	if err := <-initiatorErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("initiator: got %v, want DeadlineExceeded", err)
	}
	fault.Disable()

	// The fill completed and was cached despite the initiator's death.
	again, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("fill initiated by a cancelled caller was not cached")
	}
	if fmt.Sprint(again.Topologies) != fmt.Sprint(res.Topologies) {
		t.Fatalf("cached fill diverges from the waiter's answer:\n got %v\nwant %v", again.Topologies, res.Topologies)
	}
}

// TestChaosAccessorContainment covers the read-path accessors' guard:
// Explain, Instances, Witness and Space hold the same lifecycle read
// lock and panic containment SearchContext does, so a panic injected at
// searcher.accessor surfaces as a typed *EnginePanicError from Explain,
// degrades the error-less accessors to their zero returns, and is
// counted in PanicsContained — it never escapes to the caller. With the
// fault disarmed all four accessors work again, against the same store
// generation.
func TestChaosAccessorContainment(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	db, err := toposearch.Synthetic(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSearcher(toposearch.Protein, toposearch.DNA, chaosConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A live topology ID and instance pair for the healthy passes.
	res, err := s.Search(toposearch.SearchQuery{K: 3, Method: "fast-top-k"})
	if err != nil || len(res.Topologies) == 0 {
		t.Fatalf("seed query: res=%v err=%v", res, err)
	}
	tid := res.Topologies[0].ID
	pairs := s.Instances(tid, 1)
	if len(pairs) == 0 {
		t.Fatalf("topology %d has no instances", tid)
	}

	t.Cleanup(fault.Disable)
	if err := fault.Enable(*chaosSeedFlag,
		fault.Rule{Point: "searcher.accessor", Panic: true}); err != nil {
		t.Fatal(err)
	}

	var pe *toposearch.EnginePanicError
	if _, err := s.Explain(toposearch.SearchQuery{K: 3, Method: "fast-top-k"}); !errors.As(err, &pe) {
		t.Fatalf("Explain under injected panic: got %v, want EnginePanicError", err)
	}
	if got := s.Instances(tid, 4); got != nil {
		t.Fatalf("Instances under injected panic = %v, want nil", got)
	}
	if lines, ok := s.Witness(pairs[0][0], pairs[0][1], tid); ok || lines != nil {
		t.Fatalf("Witness under injected panic = %v, %v; want nil, false", lines, ok)
	}
	if rep := s.Space(); rep.ES1 != "" || rep.AllTopsBytes != 0 {
		t.Fatalf("Space under injected panic = %+v, want zero report", rep)
	}
	if st := s.Stats(); st.PanicsContained != 4 {
		t.Fatalf("PanicsContained = %d, want 4 (one per accessor)", st.PanicsContained)
	}

	fault.Disable()
	if _, err := s.Explain(toposearch.SearchQuery{K: 3, Method: "fast-top-k"}); err != nil {
		t.Fatalf("Explain after disarm: %v", err)
	}
	if got := s.Instances(tid, 1); len(got) == 0 {
		t.Fatal("Instances after disarm came back empty")
	}
	if lines, ok := s.Witness(pairs[0][0], pairs[0][1], tid); !ok || len(lines) == 0 {
		t.Fatalf("Witness after disarm = %v, %v", lines, ok)
	}
	if rep := s.Space(); rep.ES1 == "" {
		t.Fatal("Space after disarm returned a zero report")
	}
}
