// Package obs is the engine's dependency-free telemetry core: atomic
// counters, gauges and exponential-bucket histograms organized in
// labeled families on a Registry, a Prometheus text-format (v0.0.4)
// exposition writer, a JSON snapshot API, an http handler bundle
// (/metrics, /statsz, /debug/pprof/*), and a nil-safe span tree for
// per-query tracing.
//
// Instrumentation follows the same discipline as internal/fault: every
// event site outside a hot loop costs one atomic load when telemetry is
// disabled (obs.Enabled()), and the scan/join inner loops carry no
// instrumentation at all — per-query counters are aggregated once per
// operation from the engine.Counters the methods already return.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled is the global gate for the *recording* side of telemetry.
// Registries, instruments and handlers work regardless; call sites in
// the engine guard their extra work (time.Now, label resolution,
// gauge refreshes) behind Enabled() so a disabled binary pays one
// atomic load per event site.
var enabled atomic.Bool

// Enabled reports whether telemetry recording is switched on.
func Enabled() bool { return enabled.Load() }

// SetEnabled switches telemetry recording on or off.
func SetEnabled(on bool) { enabled.Store(on) }

type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// labelSep joins label values into a child key. 0xff cannot appear in
// valid UTF-8 label values, so the join is unambiguous.
const labelSep = "\xff"

// family is one named metric with a fixed label set; children are the
// per-label-value series.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogramKind only

	mu       sync.RWMutex
	children map[string]*child
}

type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	ch := f.children[key]
	f.mu.RUnlock()
	if ch != nil {
		return ch
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch = f.children[key]; ch != nil {
		return ch
	}
	ch = &child{values: append([]string(nil), values...)}
	switch f.kind {
	case counterKind:
		ch.c = &Counter{}
	case gaugeKind:
		ch.g = &Gauge{}
	case histogramKind:
		ch.h = newHistogram(f.buckets)
	}
	f.children[key] = ch
	return ch
}

func (f *family) remove(values []string) {
	f.mu.Lock()
	delete(f.children, strings.Join(values, labelSep))
	f.mu.Unlock()
}

// Registry is a set of metric families plus optional collectors that
// refresh derived series right before every scrape or snapshot.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the engine's built-in
// instrumentation registers on.
func Default() *Registry { return defaultRegistry }

// RegisterCollector adds a function run (under no registry lock) before
// each exposition or snapshot; use it to refresh series mirrored from
// external sources (e.g. fault-point hit counts).
func (r *Registry) RegisterCollector(fn func()) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

func (r *Registry) collect() {
	r.mu.Lock()
	fns := append([]func(){}, r.collectors...)
	r.mu.Unlock()
	for _, fn := range fns {
		fn()
	}
}

// register returns the family for name, creating it if absent. A second
// registration with the same shape returns the existing family, so
// package-level metric vars in different files can share a series;
// conflicting shapes panic (a programming error, like a duplicate flag).
func (r *Registry) register(name, help string, k kind, labels []string, buckets []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     k,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedFamilies snapshots the family list in name order for stable
// exposition output.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedChildren snapshots a family's series in label-value order.
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*child, len(keys))
	for i, k := range keys {
		out[i] = f.children[k]
	}
	f.mu.RUnlock()
	return out
}
