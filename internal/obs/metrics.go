package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. Set exists for
// collector-maintained mirrors of external counters and must only be
// used to move the value forward.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Set overwrites the counter; for collectors mirroring an external
// monotonic source.
func (c *Counter) Set(n int64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (possibly negative) and returns the new value.
func (g *Gauge) Add(d float64) float64 {
	for {
		old := g.bits.Load()
		nv := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(nv)) {
			return nv
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets with upper bounds,
// plus a running sum. Observations and snapshots are lock-free; a
// snapshot taken during concurrent writes is a consistent-enough view
// (per-field atomic), the standard Prometheus client contract.
type Histogram struct {
	upper  []float64 // ascending; implicit +Inf bucket appended
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{
		upper:  buckets,
		counts: make([]atomic.Int64, len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

// snapshot returns cumulative bucket counts (one per upper bound, plus
// the +Inf bucket last), the total count and the sum.
func (h *Histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	var acc int64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cum[i] = acc
	}
	return cum, h.count.Load(), math.Float64frombits(h.sum.Load())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n exponential bucket upper bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBuckets covers 100µs .. ~3.3s in powers of two — the
// engine's query latencies across scales.
func DefLatencyBuckets() []float64 { return ExpBuckets(100e-6, 2, 16) }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. Resolve once and hold the pointer on hot-ish paths.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).c }

// Remove drops the series for the given label values (e.g. when a
// labeled component closes).
func (v *CounterVec) Remove(values ...string) { v.f.remove(values) }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).g }

// Remove drops the series for the given label values.
func (v *GaugeVec) Remove(values ...string) { v.f.remove(values) }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).h }

// Remove drops the series for the given label values.
func (v *HistogramVec) Remove(values ...string) { v.f.remove(values) }

// CounterVec registers (or returns the existing) labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, counterKind, labels, nil)}
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, counterKind, nil, nil).get(nil).c
}

// GaugeVec registers (or returns the existing) labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, gaugeKind, labels, nil)}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, gaugeKind, nil, nil).get(nil).g
}

// HistogramVec registers (or returns the existing) labeled histogram
// family with the given bucket upper bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, histogramKind, labels, buckets)}
}

// Histogram registers an unlabeled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, histogramKind, nil, buckets).get(nil).h
}
