package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the registry in Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// StatszHandler serves the registry as an indented JSON snapshot.
func (r *Registry) StatszHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		r.WriteJSON(w)
	})
}

// Mux bundles the observability endpoints on one stdlib mux:
// /metrics (Prometheus text), /statsz (JSON snapshot) and the
// /debug/pprof/* profiling handlers.
func (r *Registry) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/statsz", r.StatszHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr and serves the registry's Mux in a background
// goroutine. It returns the server (Close to stop) and the bound
// address, useful when addr had port 0.
func (r *Registry) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: r.Mux()}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
