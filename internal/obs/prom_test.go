package obs

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// TestPromGolden pins the exposition format byte-for-byte: family
// ordering, HELP/TYPE lines, label ordering and escaping, cumulative
// histogram buckets with +Inf, _sum/_count. If this test needs
// updating, scrapers may be looking at a changed wire format.
func TestPromGolden(t *testing.T) {
	r := NewRegistry()
	qc := r.CounterVec("toposearch_test_queries_total", "Queries by method.", "method", "status")
	qc.With("fast-top-k", "ok").Add(3)
	qc.With("sql", "error").Add(1)
	r.Gauge("toposearch_test_delta_bytes", "Resident delta bytes.").Set(4096)
	h := r.Histogram("toposearch_test_latency_seconds", "Query latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	esc := r.CounterVec("toposearch_test_escape_total", "Help with \\ and\nnewline.", "v")
	esc.With("quote\" back\\slash \nnl").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP toposearch_test_delta_bytes Resident delta bytes.
# TYPE toposearch_test_delta_bytes gauge
toposearch_test_delta_bytes 4096
# HELP toposearch_test_escape_total Help with \\ and\nnewline.
# TYPE toposearch_test_escape_total counter
toposearch_test_escape_total{v="quote\" back\\slash \nnl"} 1
# HELP toposearch_test_latency_seconds Query latency.
# TYPE toposearch_test_latency_seconds histogram
toposearch_test_latency_seconds_bucket{le="0.001"} 1
toposearch_test_latency_seconds_bucket{le="0.01"} 2
toposearch_test_latency_seconds_bucket{le="0.1"} 2
toposearch_test_latency_seconds_bucket{le="+Inf"} 3
toposearch_test_latency_seconds_sum 5.0055
toposearch_test_latency_seconds_count 3
# HELP toposearch_test_queries_total Queries by method.
# TYPE toposearch_test_queries_total counter
toposearch_test_queries_total{method="fast-top-k",status="ok"} 3
toposearch_test_queries_total{method="sql",status="error"} 1
`
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

// ValidateExposition is a minimal text-format v0.0.4 checker used by
// the golden test and the end-to-end /metrics tests: every non-comment
// line must parse as `name{labels} value`, every samples block must
// follow its TYPE header, histogram buckets must be cumulative and end
// with +Inf matching _count.
func ValidateExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	types := map[string]string{}
	curFam := ""
	var lastBucket int64
	var bucketFam string
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad metric type %q", parts[1])
			}
			if _, dup := types[parts[0]]; dup {
				t.Fatalf("duplicate TYPE for %q", parts[0])
			}
			types[parts[0]] = parts[1]
			curFam = parts[0]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if curFam == "" || !strings.HasPrefix(name, curFam) {
			t.Fatalf("sample %q outside its TYPE block (current %q)", name, curFam)
		}
		valStr := rest
		if strings.HasPrefix(rest, "{") {
			end := strings.LastIndex(rest, "}")
			if end < 0 {
				t.Fatalf("unclosed label set: %q", line)
			}
			valStr = rest[end+1:]
		}
		valStr = strings.TrimSpace(valStr)
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" {
			t.Fatalf("bad value %q in line %q: %v", valStr, line, err)
		}
		if strings.HasSuffix(name, "_bucket") {
			le := extractLabel(t, rest, "le")
			if bucketFam != name {
				bucketFam, lastBucket = name, 0
			}
			if int64(val) < lastBucket {
				t.Fatalf("non-cumulative bucket %q: %v < %d", line, val, lastBucket)
			}
			lastBucket = int64(val)
			if le == "" {
				t.Fatalf("bucket without le label: %q", line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return types
}

func extractLabel(t *testing.T, labels, key string) string {
	t.Helper()
	marker := key + `="`
	i := strings.Index(labels, marker)
	if i < 0 {
		return ""
	}
	rest := labels[i+len(marker):]
	j := strings.Index(rest, `"`)
	if j < 0 {
		t.Fatalf("unterminated label value in %q", labels)
	}
	return rest[:j]
}

func TestValidateCatchesGolden(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("ok_total", "h", "a")
	v.With("x").Inc()
	h := r.Histogram("lat", "h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	types := ValidateExposition(t, b.String())
	if types["ok_total"] != "counter" || types["lat"] != "histogram" {
		t.Fatalf("types = %v", types)
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("bench_total", "h", "m", "s")
	for m := 0; m < 9; m++ {
		for s := 0; s < 2; s++ {
			v.With(fmt.Sprint("m", m), fmt.Sprint("s", s)).Add(int64(m * s))
		}
	}
	h := r.HistogramVec("bench_seconds", "h", DefLatencyBuckets(), "m")
	for m := 0; m < 9; m++ {
		h.With(fmt.Sprint("m", m)).Observe(0.01)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		r.WritePrometheus(&sb)
	}
}
