package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one node of a per-query trace tree. All methods are safe on a
// nil receiver and do nothing, so tracing call sites stay branch-free:
// a disabled query carries a nil *Span and every Child/SetInt/End is a
// cheap nil-check. Spans only record timings and attributes — they
// never alter the work the query performs, which is what keeps traced
// and untraced results byte-identical.
//
// Children may be created and ended from concurrent worker goroutines;
// the parent's child list and each span's own fields are mutex-guarded.
type Span struct {
	name  string
	begin time.Time

	mu       sync.Mutex
	dur      time.Duration
	done     bool
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span; exactly one of Int/Str is
// meaningful, chosen by the setter used.
type Attr struct {
	Key string
	Int int64
	Str string
	str bool
}

// NewTrace starts a root span.
func NewTrace(name string) *Span {
	return &Span{name: name, begin: time.Now()}
}

// Child starts a sub-span. Returns nil when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, begin: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End finishes the span (idempotent, nil-safe). Ending a span also ends
// any still-open children so a partially-errored query renders cleanly.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.done = true
		s.dur = time.Since(s.begin)
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		c.End()
	}
}

// SetInt attaches an integer attribute (nil-safe).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
	s.mu.Unlock()
}

// SetStr attaches a string attribute (nil-safe).
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, str: true})
	s.mu.Unlock()
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded duration (0 while open or for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Children returns a copy of the child list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Attrs returns a copy of the attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// node is the marshal/render view of a span, offsets relative to the
// parent's begin time.
type node struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*node        `json:"children,omitempty"`
}

func (s *Span) toNode(parentBegin time.Time) *node {
	s.mu.Lock()
	n := &node{
		Name:    s.name,
		StartUS: s.begin.Sub(parentBegin).Microseconds(),
		DurUS:   s.dur.Microseconds(),
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			if a.str {
				n.Attrs[a.Key] = a.Str
			} else {
				n.Attrs[a.Key] = a.Int
			}
		}
	}
	kids := append([]*Span(nil), s.children...)
	begin := s.begin
	s.mu.Unlock()
	for _, c := range kids {
		n.Children = append(n.Children, c.toNode(begin))
	}
	// Concurrent children (shard executors, ET segments) are appended
	// in spawn order; sort by start offset so the tree reads in time
	// order.
	sort.SliceStable(n.Children, func(i, j int) bool {
		return n.Children[i].StartUS < n.Children[j].StartUS
	})
	return n
}

// MarshalJSON encodes the span tree with start offsets relative to the
// parent span.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.Marshal(s.toNode(s.begin))
}

// Render writes the span tree as an indented text outline:
//
//	search                         1.234ms
//	  compile                      +0µs 12µs
//	  execute                      +15µs 1.1ms
//	    method fast-top-k-et       +2µs 1.0ms  work=1234
func (s *Span) Render(w io.Writer) {
	if s == nil {
		return
	}
	renderNode(w, s.toNode(s.begin), 0)
}

func renderNode(w io.Writer, n *node, depth int) {
	for i := 0; i < depth; i++ {
		io.WriteString(w, "  ")
	}
	if depth == 0 {
		fmt.Fprintf(w, "%s  %s", n.Name, time.Duration(n.DurUS)*time.Microsecond)
	} else {
		fmt.Fprintf(w, "%s  +%s %s", n.Name,
			time.Duration(n.StartUS)*time.Microsecond,
			time.Duration(n.DurUS)*time.Microsecond)
	}
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		io.WriteString(w, " ")
		for i, k := range keys {
			if i > 0 {
				io.WriteString(w, " ")
			}
			fmt.Fprintf(w, "%s=%v", k, n.Attrs[k])
		}
	}
	io.WriteString(w, "\n")
	for _, c := range n.Children {
		renderNode(w, c, depth+1)
	}
}
