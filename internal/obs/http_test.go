package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("mux_total", "h").Add(5)
	r.Histogram("mux_seconds", "h", ExpBuckets(0.001, 2, 4)).Observe(0.002)
	srv := httptest.NewServer(r.Mux())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
		t.Fatalf("metrics content-type = %q", ctype)
	}
	types := ValidateExposition(t, body)
	if types["mux_total"] != "counter" || types["mux_seconds"] != "histogram" {
		t.Fatalf("metrics families = %v", types)
	}

	body, ctype = get("/statsz")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("statsz content-type = %q", ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("statsz not JSON: %v", err)
	}
	if len(snap.Metrics) != 2 {
		t.Fatalf("statsz metrics = %d, want 2", len(snap.Metrics))
	}

	// pprof index answers (profile endpoints excluded: they block).
	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index missing profiles:\n%.200s", body)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("serve_total", "h").Inc()
	srv, addr, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := httptest.NewServer(nil).Client().Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "serve_total 1") {
		t.Fatalf("served body:\n%s", body)
	}
}
