package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceNilSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil.Child must return nil")
	}
	c.SetInt("a", 1)
	c.SetStr("b", "x")
	c.End()
	if c.Name() != "" || c.Duration() != 0 || c.Children() != nil || c.Attrs() != nil {
		t.Fatal("nil span accessors must be zero")
	}
	var b strings.Builder
	c.Render(&b)
	if b.Len() != 0 {
		t.Fatal("nil Render must write nothing")
	}
	j, err := json.Marshal(c)
	if err != nil || string(j) != "null" {
		t.Fatalf("nil marshal = %s, %v", j, err)
	}
}

func TestTraceTree(t *testing.T) {
	root := NewTrace("search")
	c1 := root.Child("compile")
	c1.End()
	ex := root.Child("execute")
	m := ex.Child("method fast-top-k")
	m.SetInt("work", 42)
	m.SetStr("plan", "et-index")
	m.End()
	ex.End()
	root.End()

	if got := len(root.Children()); got != 2 {
		t.Fatalf("root has %d children, want 2", got)
	}
	var b strings.Builder
	root.Render(&b)
	out := b.String()
	for _, want := range []string{"search", "compile", "execute", "method fast-top-k", "plan=et-index", "work=42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	j, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var n struct {
		Name     string `json:"name"`
		Children []struct {
			Name  string         `json:"name"`
			Attrs map[string]any `json:"attrs"`
		} `json:"children"`
	}
	if err := json.Unmarshal(j, &n); err != nil {
		t.Fatal(err)
	}
	if n.Name != "search" || len(n.Children) != 2 {
		t.Fatalf("json tree = %s", j)
	}
}

func TestTraceEndClosesChildren(t *testing.T) {
	root := NewTrace("r")
	open := root.Child("never-ended")
	root.End()
	if open.Duration() <= 0 {
		t.Fatal("End must close open children")
	}
	d := root.Duration()
	root.End() // idempotent
	if root.Duration() != d {
		t.Fatal("second End must not change duration")
	}
}

func TestTraceConcurrentChildren(t *testing.T) {
	root := NewTrace("r")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("seg")
			c.SetInt("work", 1)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 16 {
		t.Fatalf("children = %d, want 16", got)
	}
	if _, err := json.Marshal(root); err != nil {
		t.Fatal(err)
	}
}
