package obs

import (
	"encoding/json"
	"io"
	"math"
)

// Snapshot is a point-in-time JSON-friendly view of a registry.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one family with all its series.
type MetricSnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    string           `json:"kind"`
	Samples []SampleSnapshot `json:"samples"`
}

// SampleSnapshot is one labeled series. Counters and gauges fill
// Value; histograms fill Count, Sum and cumulative Buckets.
type SampleSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   int64             `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket; Le is +Inf for the
// overflow bucket (encoded as the string "+Inf" in JSON).
type BucketSnapshot struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON encodes +Inf as the string "+Inf" (JSON has no Inf).
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	type alias struct {
		Le    any   `json:"le"`
		Count int64 `json:"count"`
	}
	var le any = b.Le
	if math.IsInf(b.Le, +1) {
		le = "+Inf"
	}
	return json.Marshal(alias{Le: le, Count: b.Count})
}

// UnmarshalJSON accepts the "+Inf" string form back.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    json.RawMessage `json:"le"`
		Count int64           `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	var s string
	if json.Unmarshal(raw.Le, &s) == nil {
		b.Le = math.Inf(+1)
		return nil
	}
	return json.Unmarshal(raw.Le, &b.Le)
}

// Snapshot captures the current value of every series, families and
// series in sorted order. Collectors run first.
func (r *Registry) Snapshot() *Snapshot {
	r.collect()
	snap := &Snapshot{}
	for _, f := range r.sortedFamilies() {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		ms := MetricSnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, ch := range children {
			s := SampleSnapshot{}
			if len(f.labels) > 0 {
				s.Labels = make(map[string]string, len(f.labels))
				for i, l := range f.labels {
					s.Labels[l] = ch.values[i]
				}
			}
			switch f.kind {
			case counterKind:
				s.Value = float64(ch.c.Value())
			case gaugeKind:
				s.Value = ch.g.Value()
			case histogramKind:
				cum, count, sum := ch.h.snapshot()
				s.Count, s.Sum = count, sum
				s.Buckets = make([]BucketSnapshot, 0, len(cum))
				for i, ub := range f.buckets {
					s.Buckets = append(s.Buckets, BucketSnapshot{Le: ub, Count: cum[i]})
				}
				s.Buckets = append(s.Buckets, BucketSnapshot{Le: math.Inf(+1), Count: cum[len(cum)-1]})
			}
			ms.Samples = append(ms.Samples, s)
		}
		snap.Metrics = append(snap.Metrics, ms)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
