package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus writes every family in text exposition format v0.0.4:
// sorted families, # HELP / # TYPE headers, label-sorted series,
// cumulative histogram buckets with an explicit +Inf bucket plus _sum
// and _count. Collectors run first so derived series are fresh.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.collect()
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, ch := range children {
			switch f.kind {
			case counterKind:
				writeSample(bw, f.name, "", f.labels, ch.values, "", formatInt(ch.c.Value()))
			case gaugeKind:
				writeSample(bw, f.name, "", f.labels, ch.values, "", formatFloat(ch.g.Value()))
			case histogramKind:
				cum, count, sum := ch.h.snapshot()
				for i, ub := range f.buckets {
					writeSample(bw, f.name, "_bucket", f.labels, ch.values, formatFloat(ub), formatInt(cum[i]))
				}
				writeSample(bw, f.name, "_bucket", f.labels, ch.values, "+Inf", formatInt(cum[len(cum)-1]))
				writeSample(bw, f.name, "_sum", f.labels, ch.values, "", formatFloat(sum))
				writeSample(bw, f.name, "_count", f.labels, ch.values, "", formatInt(count))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one line: name+suffix{labels,le="bound"} value.
// le is the histogram bucket bound, empty for non-bucket samples.
func writeSample(bw *bufio.Writer, name, suffix string, labels, values []string, le, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(values[i]))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
