package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterVecIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x_total", "help", "a", "b")
	c1 := v.With("p", "q")
	c2 := v.With("p", "q")
	if c1 != c2 {
		t.Fatal("same label values must resolve to the same counter")
	}
	if c3 := v.With("p", "r"); c3 == c1 {
		t.Fatal("different label values must resolve to different counters")
	}
	c1.Add(3)
	c1.Inc()
	if got := c2.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
	// Re-registering the same shape returns the same family.
	v2 := r.CounterVec("x_total", "help", "a", "b")
	if v2.With("p", "q") != c1 {
		t.Fatal("re-registration must share series")
	}
}

func TestRegisterConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape conflict")
		}
	}()
	r.Gauge("dup", "h")
}

func TestWrongLabelCountPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("lab_total", "h", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong label count")
		}
	}()
	v.With("x", "y")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "h")
	g.Set(2.5)
	if n := g.Add(-1); n != 1.5 {
		t.Fatalf("Add returned %v, want 1.5", n)
	}
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Value = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	// le=1: {0.5, 1}; le=2: +{1.5}; le=4: +{3}; +Inf: +{100}
	want := []int64{2, 3, 4, 5}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], want[i], cum)
		}
	}
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if math.Abs(sum-106) > 1e-9 {
		t.Fatalf("sum = %v, want 106", sum)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	if n := len(DefLatencyBuckets()); n != 16 {
		t.Fatalf("DefLatencyBuckets has %d buckets, want 16", n)
	}
}

func TestRemoveSeries(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("rm", "h", "id")
	v.With("a").Set(1)
	v.With("b").Set(2)
	v.Remove("a")
	snap := r.Snapshot()
	if len(snap.Metrics) != 1 || len(snap.Metrics[0].Samples) != 1 {
		t.Fatalf("snapshot after Remove = %+v", snap)
	}
	if snap.Metrics[0].Samples[0].Labels["id"] != "b" {
		t.Fatalf("surviving series = %+v", snap.Metrics[0].Samples[0])
	}
}

func TestCollector(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("ext_total", "h", "src")
	n := int64(0)
	r.RegisterCollector(func() {
		n += 7
		c.With("x").Set(n)
	})
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if s1.Metrics[0].Samples[0].Value != 7 || s2.Metrics[0].Samples[0].Value != 14 {
		t.Fatalf("collector not run per snapshot: %v then %v",
			s1.Metrics[0].Samples[0].Value, s2.Metrics[0].Samples[0].Value)
	}
}

func TestEnabledGate(t *testing.T) {
	old := Enabled()
	defer SetEnabled(old)
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled after SetEnabled(false)")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("!Enabled after SetEnabled(true)")
	}
}

func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cc_total", "h", "w")
	h := r.Histogram("ch", "h", ExpBuckets(1, 2, 8))
	g := r.Gauge("cg", "h")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lab := string(rune('a' + w%3))
			for i := 0; i < per; i++ {
				v.With(lab).Inc()
				h.Observe(float64(i % 10))
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, lab := range []string{"a", "b", "c"} {
		total += v.With(lab).Value()
	}
	if total != workers*per {
		t.Fatalf("counter total = %d, want %d", total, workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*per)
	}
}
