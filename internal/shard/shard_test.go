package shard

import (
	"math/rand"
	"testing"
)

// checkPartition asserts the Ranges invariants: ordered, contiguous,
// covering exactly [0, n).
func checkPartition(t *testing.T, r Ranges, n int) {
	t.Helper()
	if len(r) == 0 {
		if n != 0 {
			t.Fatalf("empty partition over domain %d", n)
		}
		return
	}
	lo := int32(0)
	for i, rg := range r {
		if rg[0] != lo {
			t.Fatalf("range %d starts at %d, want %d (partition %v)", i, rg[0], lo, r)
		}
		if rg[1] < rg[0] {
			t.Fatalf("range %d inverted: %v", i, rg)
		}
		lo = rg[1]
	}
	if int(lo) != n {
		t.Fatalf("partition covers [0,%d), want [0,%d)", lo, n)
	}
}

func TestEqualPartition(t *testing.T) {
	for _, n := range []int{0, 1, 5, 17, 100} {
		for _, w := range []int{1, 2, 3, 8, 200} {
			checkPartition(t, Equal(n, w), n)
		}
	}
}

func TestWeightedBalancesSkew(t *testing.T) {
	// Zipf-like profile: the first positions carry almost all weight.
	n := 1000
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		weights[i] = 1000.0 / float64(i+1)
		total += weights[i]
	}
	w := 4
	r := Weighted(weights, w)
	checkPartition(t, r, n)
	// Every range's weight share must be within 2x of the ideal (the
	// heaviest single position bounds the achievable balance).
	for i, rg := range r {
		share := 0.0
		for p := rg[0]; p < rg[1]; p++ {
			share += weights[p]
		}
		if share > 2*total/float64(w) {
			t.Errorf("range %d %v holds %.1f of %.1f total weight (over 2x the ideal %0.1f)", i, rg, share, total, total/float64(w))
		}
	}
	// An equal-count cut would put ~94% of the weight into range 0;
	// the weighted cut must do much better at the head.
	head := 0.0
	for p := r[0][0]; p < r[0][1]; p++ {
		head += weights[p]
	}
	if head > 0.6*total {
		t.Errorf("weighted head range still holds %.0f%% of the weight", 100*head/total)
	}
}

func TestWeightedDegenerateProfiles(t *testing.T) {
	checkPartition(t, Weighted(nil, 4), 0)
	checkPartition(t, Weighted(make([]float64, 10), 4), 10) // all zero -> Equal
	one := make([]float64, 10)
	one[7] = 5
	r := Weighted(one, 3)
	checkPartition(t, r, 10)
	if got := r.Find(7); r[got][0] > 7 || r[got][1] <= 7 {
		t.Errorf("Find(7) = %d (%v), does not contain 7", got, r[got])
	}
}

func TestFromPrefixMatchesWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		w := 1 + rng.Intn(9)
		ints := make([]int64, n)
		floats := make([]float64, n)
		prefix := make([]int64, n+1)
		for i := range ints {
			ints[i] = int64(rng.Intn(1000))
			floats[i] = float64(ints[i])
			prefix[i+1] = prefix[i] + ints[i]
		}
		a := Weighted(floats, w)
		b := FromPrefix(prefix, w)
		checkPartition(t, a, n)
		checkPartition(t, b, n)
		if len(a) != len(b) {
			t.Fatalf("trial %d: Weighted %d ranges, FromPrefix %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d range %d: Weighted %v, FromPrefix %v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestFindRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(300)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(rng.Intn(50))
		}
		r := Weighted(weights, 1+rng.Intn(7))
		checkPartition(t, r, n)
		for pos := int32(0); pos < int32(n); pos++ {
			i := r.Find(pos)
			if pos < r[i][0] || pos >= r[i][1] {
				t.Fatalf("trial %d: Find(%d) = range %d %v", trial, pos, i, r[i])
			}
		}
		// Out-of-domain positions clamp to the last range.
		if got := r.Find(int32(n) + 100); got != len(r)-1 {
			t.Errorf("trial %d: Find past domain = %d, want %d", trial, got, len(r)-1)
		}
	}
}

// TestExchangeBound replays a deterministic emission schedule and
// checks the two exchange decisions: later segments are cancelled the
// moment a prefix covers k, and the boundary segment self-stops.
func TestExchangeBound(t *testing.T) {
	const k, n = 3, 4
	e := NewExchange(k, n)
	cancelled := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		e.Bind(i, func() { cancelled[i] = true })
	}
	// Segment 2 emits twice: no prefix covers k yet.
	if e.Emit(2) || e.Emit(2) {
		t.Fatal("segment 2 stopped before any prefix covered k")
	}
	if e.CancelledCount() != 0 {
		t.Fatal("cancelled before any prefix covered k")
	}
	// Segment 0 emits three times: prefix {0} covers k, so segments
	// 1..3 are cancelled and segment 0 itself stops.
	e.Emit(0)
	e.Emit(0)
	if !e.Emit(0) {
		t.Error("segment 0 did not self-stop after covering k alone")
	}
	for i := 1; i < n; i++ {
		if !cancelled[i] {
			t.Errorf("segment %d not cancelled after prefix covered k", i)
		}
	}
	if cancelled[0] {
		t.Error("boundary segment 0 was cancelled instead of self-stopping")
	}
	if e.CancelledCount() != 3 {
		t.Errorf("CancelledCount = %d, want 3", e.CancelledCount())
	}
}

// TestExchangeNeverStopsEarlySegments drives random schedules and
// asserts the invariant the sequencer depends on: a segment strictly
// before the first prefix boundary b (smallest b with
// sum(emitted[0..b]) >= k) is never told to stop and never cancelled.
func TestExchangeNeverStopsEarlySegments(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(6)
		n := 2 + rng.Intn(6)
		e := NewExchange(k, n)
		cancelled := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			e.Bind(i, func() { cancelled[i] = true })
		}
		emitted := make([]int, n)
		for step := 0; step < 40; step++ {
			seg := rng.Intn(n)
			if cancelled[seg] {
				continue
			}
			stop := e.Emit(seg)
			emitted[seg]++
			// Recompute the boundary from the shadow counts.
			sum, b := 0, -1
			for i := 0; i < n; i++ {
				sum += emitted[i]
				if sum >= k {
					b = i
					break
				}
			}
			if stop && (b < 0 || seg < b) {
				t.Fatalf("trial %d: segment %d self-stopped with boundary %d (emitted %v, k=%d)", trial, seg, b, emitted, k)
			}
			if b >= 0 && !stop && seg >= b {
				t.Fatalf("trial %d: segment %d past boundary %d not stopped (emitted %v, k=%d)", trial, seg, b, emitted, k)
			}
			for i := 0; i <= b; i++ {
				if b >= 0 && cancelled[i] {
					t.Fatalf("trial %d: segment %d at or before boundary %d cancelled", trial, i, b)
				}
			}
			if b >= 0 {
				for i := b + 1; i < n; i++ {
					if !cancelled[i] {
						t.Fatalf("trial %d: segment %d past boundary %d not cancelled", trial, i, b)
					}
				}
			}
		}
	}
}
