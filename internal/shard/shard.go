// Package shard is the in-process sharded-execution layer: it
// partitions contiguous position spaces (entity-table rows, the
// score-ordered group stream) into cost-weighted ranges, and
// coordinates scatter-gather top-k execution across the resulting
// shard executors with an early-termination bound exchange.
//
// The partitioning side generalizes the equal-count cut points of the
// parallel scan (ScanRange windows) and speculative-ET segments:
// Weighted and FromPrefix balance the cuts by per-position cost
// estimates — the optimizer's per-group cardinalities for group-stream
// segments, the Tops-table fan-out for entity ranges — so Zipfian skew
// no longer caps the critical-path speedup at the heaviest range.
// Every cut is a pure function of its weight profile, so the same
// store generation always produces the same partition: queries and
// delta routing can never disagree about which shard owns a position.
//
// The Exchange side is the distributed analogue of the paper's
// early-termination plans: shard executors process disjoint windows of
// the score-descending stream, so every result a lower shard emits
// outranks everything a higher shard can still produce. Once the
// executors below (and including) some shard have emitted k results,
// the global k-th committed score is unbeatable by every later shard —
// the Exchange cancels them and lets the boundary shard stop itself.
package shard

import "sort"

// Ranges is a contiguous partition of a position space [0, n): the
// ranges are ordered, non-overlapping [lo, hi) windows whose
// concatenation reproduces the whole domain. Individual ranges may be
// empty when the weight profile is extremely skewed.
type Ranges [][2]int32

// Equal partitions [0, n) into at most w contiguous ranges of nearly
// equal position count (the PR 2 cut points, kept for uniform weight
// profiles and as the fallback when no cost estimate exists).
func Equal(n, w int) Ranges {
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	out := make(Ranges, 0, w)
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + (n-lo)/(w-i)
		out = append(out, [2]int32{int32(lo), int32(hi)})
		lo = hi
	}
	return out
}

// Weighted partitions [0, len(weights)) into w contiguous ranges of
// nearly equal total weight: cut i is placed at the smallest position
// whose weight prefix reaches i/w of the total. Non-positive weights
// count as zero; a nil/empty or zero-total profile degenerates to
// Equal. The cuts are a deterministic function of the weights.
func Weighted(weights []float64, w int) Ranges {
	n := len(weights)
	if w < 1 {
		w = 1
	}
	prefix := make([]float64, n+1)
	for i, wt := range weights {
		if wt < 0 {
			wt = 0
		}
		prefix[i+1] = prefix[i] + wt
	}
	total := prefix[n]
	if total <= 0 {
		return Equal(n, w)
	}
	out := make(Ranges, 0, w)
	lo := 0
	for i := 1; i <= w; i++ {
		hi := n
		if i < w {
			target := total * float64(i) / float64(w)
			hi = sort.Search(n, func(j int) bool { return prefix[j+1] >= target })
			// A zero-weight tail after the target position belongs to
			// the earlier range; keep cuts monotone.
			if hi < lo {
				hi = lo
			}
		}
		out = append(out, [2]int32{int32(lo), int32(hi)})
		lo = hi
	}
	return out
}

// FromPrefix partitions [0, len(prefix)-1) into w weight-balanced
// contiguous ranges given a precomputed integer weight prefix-sum
// array (prefix[0] = 0, prefix[i+1] = prefix[i] + weight_i): the form
// the store caches per generation so per-query partitioning is two
// binary searches per cut instead of a weight scan.
func FromPrefix(prefix []int64, w int) Ranges {
	n := len(prefix) - 1
	if n < 0 {
		n = 0
	}
	if w < 1 {
		w = 1
	}
	var total int64
	if n > 0 {
		total = prefix[n]
	}
	if total <= 0 {
		return Equal(n, w)
	}
	out := make(Ranges, 0, w)
	lo := 0
	for i := 1; i <= w; i++ {
		hi := n
		if i < w {
			// total*i stays well inside int64 for any realistic table
			// (weights are row counts; w is a shard count).
			target := total * int64(i) / int64(w)
			hi = sort.Search(n, func(j int) bool { return prefix[j+1] >= target })
			if hi < lo {
				hi = lo
			}
		}
		out = append(out, [2]int32{int32(lo), int32(hi)})
		lo = hi
	}
	return out
}

// Find returns the index of the range containing position pos. A
// position outside the partition's domain clamps to the nearest range
// (new rows appended after the partition was cut belong to the last
// shard until the next generation re-cuts).
func (r Ranges) Find(pos int32) int {
	if len(r) == 0 {
		return 0
	}
	i := sort.Search(len(r), func(j int) bool { return r[j][1] > pos })
	if i == len(r) {
		i = len(r) - 1
	}
	// Skip backwards over empty ranges that Search may land on when pos
	// sits below the whole domain.
	for i > 0 && pos < r[i][0] {
		i--
	}
	return i
}

// Domain returns the partitioned position space size (the hi bound of
// the last range).
func (r Ranges) Domain() int32 {
	if len(r) == 0 {
		return 0
	}
	return r[len(r)-1][1]
}
