package shard

import "sync"

// Exchange is the scatter-gather bound exchange: executors over the
// ordered segments of a score-descending stream report every emitted
// result, and the exchange converts the global count into
// early-termination decisions. Because the segments partition the
// stream in score order, segment j's emitted results all outrank
// anything segment j+1.. can still produce; so the moment segments
// 0..b have emitted k results in total, the global k-th committed
// score is unbeatable by every segment past b — those executors are
// cancelled, and the boundary executor b (or any later one that
// observes the same condition) stops itself.
//
// Soundness with the canonical-order Sequencer: the k-th committed
// witness always lies in some segment <= b, and within that segment
// among the results already emitted when the condition first held, so
// cancellation never discards a witness the commit still needs; and
// every segment strictly before the eventual stopping segment can
// never satisfy the condition, so it always runs to completion and
// reports its full counter totals. Emitted counts only grow, so a
// cancellation decision never has to be revoked.
//
// An Exchange is safe for concurrent use by the segment executors.
type Exchange struct {
	mu        sync.Mutex
	k         int
	emitted   []int
	cancel    []func()
	cancelled []bool
}

// NewExchange returns a bound exchange committing k results across n
// ordered segments. k must be positive (with no result bound there is
// nothing to exchange).
func NewExchange(k, n int) *Exchange {
	return &Exchange{
		k:         k,
		emitted:   make([]int, n),
		cancel:    make([]func(), n),
		cancelled: make([]bool, n),
	}
}

// Bind registers the cancellation hook of one segment executor. Must
// be called before the executor starts emitting.
func (e *Exchange) Bind(seg int, cancel func()) {
	e.mu.Lock()
	e.cancel[seg] = cancel
	e.mu.Unlock()
}

// Emit records one result emitted by seg and applies the bound: every
// segment past the first prefix of segments that already covers k
// results is cancelled. It returns true when seg itself is past (or
// is) that boundary — the executor should stop after the result it
// just emitted, and must NOT report a completed-segment total (its
// remaining work was never done).
func (e *Exchange) Emit(seg int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.emitted[seg]++
	sum := 0
	b := -1
	for i := range e.emitted {
		sum += e.emitted[i]
		if sum >= e.k {
			b = i
			break
		}
	}
	if b < 0 {
		return false
	}
	for j := b + 1; j < len(e.cancel); j++ {
		if !e.cancelled[j] {
			e.cancelled[j] = true
			if e.cancel[j] != nil {
				e.cancel[j]()
			}
		}
	}
	return seg >= b
}

// Cancelled reports whether the exchange cancelled the given segment.
func (e *Exchange) Cancelled(seg int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cancelled[seg]
}

// CancelledCount reports how many segments the exchange cancelled —
// the pruning the bound exchange achieved beyond the sequencer's own
// cancel-at-commit.
func (e *Exchange) CancelledCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, c := range e.cancelled {
		if c {
			n++
		}
	}
	return n
}
