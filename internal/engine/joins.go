package engine

import (
	"fmt"

	"toposearch/internal/relstore"
)

// HashJoin is a classic build-probe equi-join: it materializes the
// build (right) side into a hash table, then streams the probe (left)
// side. Output tuples are left ++ right.
type HashJoin struct {
	Left     Op
	LeftCol  int
	Right    Op
	RightCol int
	C        *Counters

	table   map[relstore.Value][]relstore.Row
	matches []relstore.Row
	lrow    relstore.Row
	buf     relstore.Row
	cols    []string
}

// NewHashJoin joins left.LeftCol = right.RightCol.
func NewHashJoin(left Op, leftCol int, right Op, rightCol int, c *Counters) *HashJoin {
	return &HashJoin{
		Left: left, LeftCol: leftCol, Right: right, RightCol: rightCol, C: c,
		cols: concatCols(left.Columns(), right.Columns()),
	}
}

// Columns implements Op.
func (j *HashJoin) Columns() []string { return j.cols }

// Open implements Op.
func (j *HashJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.table = make(map[relstore.Value][]relstore.Row)
	for {
		r, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := r[j.RightCol]
		j.table[k] = append(j.table[k], r.Clone())
	}
	j.matches = nil
	j.lrow = nil
	return j.Right.Close()
}

// Next implements Op.
func (j *HashJoin) Next() (relstore.Row, bool, error) {
	for {
		if len(j.matches) > 0 {
			m := j.matches[0]
			j.matches = j.matches[1:]
			j.buf = concatRows(j.buf, j.lrow, m)
			return j.buf, true, nil
		}
		l, ok, err := j.Left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if j.C != nil {
			j.C.IndexProbes++ // hash table probe
		}
		// Copy into the reusable buffer: the child may overwrite the
		// returned row on its next call, but a fresh allocation per
		// outer tuple is not needed to survive that.
		j.lrow = append(j.lrow[:0], l...)
		j.matches = j.table[l[j.LeftCol]]
	}
}

// Close implements Op.
func (j *HashJoin) Close() error { return j.Left.Close() }

// IndexJoin is an index nested-loops join: for each outer tuple it
// probes the inner table's hash index on InnerCol, applies the optional
// inner predicate, and emits outer ++ inner.
type IndexJoin struct {
	Outer     Op
	OuterCol  int
	Inner     *relstore.Table
	InnerName string // alias for inner columns
	InnerCol  string
	InnerPred relstore.Pred // nil means none
	C         *Counters

	idx     *relstore.HashIndex
	cols    []string
	orow    relstore.Row
	matches []int32
	buf     relstore.Row
}

// NewIndexJoin joins outer.OuterCol = inner.InnerCol via a hash index.
// CreateHashIndex is idempotent under the table lock, so concurrent
// plan builds against one table are safe; stores pre-build the indexes
// their plans need so the query path never pays the build.
func NewIndexJoin(outer Op, outerCol int, inner *relstore.Table, alias, innerCol string, innerPred relstore.Pred, c *Counters) (*IndexJoin, error) {
	idx, err := inner.CreateHashIndex(innerCol)
	if err != nil {
		return nil, fmt.Errorf("engine: index join: %w", err)
	}
	return &IndexJoin{
		Outer: outer, OuterCol: outerCol, Inner: inner, InnerName: alias,
		InnerCol: innerCol, InnerPred: innerPred, C: c, idx: idx,
		cols: concatCols(outer.Columns(), qualify(alias, inner.Schema)),
	}, nil
}

// Columns implements Op.
func (j *IndexJoin) Columns() []string { return j.cols }

// Open implements Op.
func (j *IndexJoin) Open() error {
	j.orow, j.matches = nil, nil
	return j.Outer.Open()
}

// Next implements Op. Inner rows are filtered positionally and
// appended to the output buffer straight from the column arrays, so
// the probe loop materializes nothing per candidate.
func (j *IndexJoin) Next() (relstore.Row, bool, error) {
	for {
		for len(j.matches) > 0 {
			pos := j.matches[0]
			j.matches = j.matches[1:]
			if j.InnerPred != nil && !j.InnerPred.EvalAt(j.Inner, pos) {
				continue
			}
			j.buf = append(j.buf[:0], j.orow...)
			j.buf = j.Inner.AppendRow(j.buf, pos)
			return j.buf, true, nil
		}
		o, ok, err := j.Outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.orow = append(j.orow[:0], o...)
		if j.C != nil {
			j.C.IndexProbes++
		}
		j.matches = j.idx.Lookup(o[j.OuterCol])
	}
}

// Close implements Op.
func (j *IndexJoin) Close() error { return j.Outer.Close() }

// AntiJoin emits the outer tuples that have NO match in the inner
// operator on a (possibly composite) key — the NOT EXISTS subquery of
// the paper's SQL1/SQL5 listings. Keys of one or two columns are
// compared as relstore.Value pairs directly, so the per-tuple probe
// allocates no strings.
type AntiJoin struct {
	Outer    Op
	OuterKey []int
	Inner    Op
	InnerKey []int
	C        *Counters

	seen *rowKeySet
}

// NewAntiJoin filters outer tuples whose key appears in inner.
func NewAntiJoin(outer Op, outerKey []int, inner Op, innerKey []int, c *Counters) *AntiJoin {
	return &AntiJoin{Outer: outer, OuterKey: outerKey, Inner: inner, InnerKey: innerKey, C: c}
}

// Columns implements Op.
func (j *AntiJoin) Columns() []string { return j.Outer.Columns() }

// Open implements Op.
func (j *AntiJoin) Open() error {
	if err := j.Outer.Open(); err != nil {
		return err
	}
	if err := j.Inner.Open(); err != nil {
		return err
	}
	j.seen = newRowKeySet(len(j.InnerKey))
	for {
		r, ok, err := j.Inner.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.seen.Insert(r, j.InnerKey)
	}
	return j.Inner.Close()
}

// Next implements Op.
func (j *AntiJoin) Next() (relstore.Row, bool, error) {
	for {
		r, ok, err := j.Outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if j.C != nil {
			j.C.IndexProbes++
		}
		if !j.seen.Contains(r, j.OuterKey) {
			return r, true, nil
		}
	}
}

// Close implements Op.
func (j *AntiJoin) Close() error { return j.Outer.Close() }
