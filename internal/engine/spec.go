package engine

import (
	"context"
	"fmt"

	"toposearch/internal/relstore"
)

// This file is the engine half of the speculative parallel
// early-termination (ET) subsystem. The sequential ET plans drive one
// DGJ stack over the score-ordered group stream and stop after k
// groups produce a witness; speculation partitions that stream into
// contiguous ordered segments, races one restartable DGJ stack per
// segment, and commits witnesses in canonical group order through a
// Sequencer, cancelling in-flight losers the moment the k-th witness
// commits. Correctness contract: the committed witnesses AND the
// committed (useful-work) counters are byte-identical to the
// sequential run at any segment count, because
//
//   - every counter charge of a DGJ stack is local to one driving-scan
//     row or one group, so partitioning the driving scan into windows
//     repartitions the charges without changing them;
//   - per-witness counter snapshots make "work up to the k-th witness"
//     well-defined inside a segment; and
//   - the one non-local charge — HDGJ's group lookahead running past a
//     segment boundary — is detected via LookaheadOpen and replayed by
//     the caller (see methods.etPlanSpec).

// GroupWitness is one witness tuple produced by a segment run: the
// first surviving tuple of one group, exactly what DistinctGroups
// would emit.
type GroupWitness struct {
	// Ord is the group ordinal relative to the segment's own driving
	// scan (the segment's first driving row is ordinal 0).
	Ord int
	// Row is the witness tuple (cloned; safe to retain).
	Row relstore.Row
	// C is the segment's cumulative counters at the moment this witness
	// was emitted and its group advanced — the work a sequential run
	// stopping at this witness would have charged within the segment.
	C Counters
	// LookaheadOpen reports that the stack's group lookahead (HDGJ
	// buffers one tuple of the next group when it loads a group) ran
	// off the end of the segment window while producing this witness.
	// A sequential run over the unpartitioned stream would have kept
	// scanning into the next segment's rows; the sequencer's consumer
	// replays that boundary work when this witness is the stopping one.
	LookaheadOpen bool
}

// lookaheadProber is implemented by group operators that can report
// whether their group lookahead has consumed the outer stream to
// exhaustion (currently HDGJ; wrappers delegate).
type lookaheadProber interface{ LookaheadOpen() bool }

func lookaheadOpen(op Op) bool {
	p, ok := op.(lookaheadProber)
	return ok && p.LookaheadOpen()
}

// DrainGroupWitnesses runs a DGJ stack the way DistinctGroups does —
// emit the first surviving tuple of each group, then skip the rest of
// the group — but hands every witness to emit as it is produced,
// together with the cumulative value of the worker's counters and the
// group-lookahead state, so a sequencer can later reconstruct the
// exact work a sequential run stopping at any witness would have done.
// It stops after max witnesses (max <= 0 means no limit), on stream
// exhaustion, or when ctx is cancelled (returning the context error).
// c must be the same counters object every operator of the stack
// charges into.
func DrainGroupWitnesses(ctx context.Context, g GroupOp, c *Counters, max int, emit func(GroupWitness)) error {
	_, err := DrainGroupWitnessesFunc(ctx, g, c, max, func(w GroupWitness) bool {
		emit(w)
		return false
	})
	return err
}

// DrainGroupWitnessesFunc is DrainGroupWitnesses with a stop-capable
// emit: when emit returns true the drain stops after the witness it
// just delivered, without touching the stream again. The bool result
// reports whether the drain was stopped by emit (as opposed to
// exhausting the stream or hitting max) — a stopped drain did NOT run
// its window to completion, so its counters are not a full-segment
// total. This is the hook the scatter-gather bound exchange uses: a
// shard executor stops the moment the exchange tells it the global
// k-th score is unbeatable by anything it can still produce.
func DrainGroupWitnessesFunc(ctx context.Context, g GroupOp, c *Counters, max int, emit func(GroupWitness) bool) (stopped bool, err error) {
	if err := g.Open(); err != nil {
		return false, err
	}
	defer g.Close()
	for n := 0; max <= 0 || n < max; n++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		r, ok, err := g.Next()
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		ord := g.GroupOrdinal()
		row := r.Clone() // advancing invalidates the tuple
		if err := g.AdvanceToNextGroup(); err != nil {
			return false, err
		}
		if emit(GroupWitness{Ord: ord, Row: row, C: *c, LookaheadOpen: lookaheadOpen(g)}) {
			return true, nil
		}
	}
	return false, nil
}

// SpecWitness is one committed witness: the segment it came from plus
// the witness itself. Committed witnesses are in canonical group order
// (segment order, then group order within the segment).
type SpecWitness struct {
	Seg int
	W   GroupWitness
}

// SpecOutcome is the sequencer's committed result.
type SpecOutcome struct {
	// Witnesses are the committed witnesses in canonical group order
	// (at most k of them when k > 0).
	Witnesses []SpecWitness
	// Counters is the useful work: exactly what a sequential ET run
	// over the unpartitioned stream would have charged, except for the
	// boundary lookahead flagged by NeedLookahead.
	Counters Counters
	// Exhausted reports that every segment completed with fewer than k
	// witnesses overall (or k <= 0): the whole stream was useful work.
	Exhausted bool
	// StopSeg is the segment holding the k-th witness (valid only when
	// !Exhausted).
	StopSeg int
	// NeedLookahead reports that the stopping witness left its
	// segment's group lookahead open: the caller must replay the
	// sequential run's boundary scan starting at the first driving row
	// after StopSeg's window to keep counters byte-identical.
	NeedLookahead bool
	// CriticalPath is the largest single-segment share of the
	// committed work: the racing phase cannot finish before its
	// slowest segment, so this is the latency the speculative run
	// converges to on hardware with one core per segment (the
	// machine-independent counterpart of the wall-clock measurement).
	CriticalPath Counters
}

// Sequencer commits witnesses from racing segment workers in canonical
// group order. Workers feed it Witness and SegmentDone events in any
// interleaving (the caller serializes the calls); the commit order and
// the committed counters depend only on the per-segment event streams,
// never on the interleaving. Once Finished reports true the caller
// should cancel all in-flight workers: nothing they produce can commit.
//
// The committed counters follow the segment decomposition of the
// sequential run's work: full totals for every segment wholly before
// the stopping witness, plus the stopping witness's in-segment
// snapshot. Segments after the stop contribute nothing (their work is
// speculative waste, reported separately by the caller).
type Sequencer struct {
	k    int
	segs []seqSegment

	cur       int // first segment not yet fully committed
	committed []SpecWitness
	base      Counters // sum of totals of fully committed segments

	finished      bool
	exhausted     bool
	stopSeg       int
	stopC         Counters
	needLookahead bool
}

type seqSegment struct {
	queue []GroupWitness
	done  bool
	total Counters
}

// NewSequencer returns a sequencer committing up to k witnesses
// (k <= 0: all witnesses) across numSegments ordered segments.
func NewSequencer(k, numSegments int) *Sequencer {
	return &Sequencer{k: k, segs: make([]seqSegment, numSegments)}
}

// Witness feeds one witness from a segment, in the segment's own group
// order. It returns Finished.
func (s *Sequencer) Witness(seg int, w GroupWitness) bool {
	if s.finished || seg < s.cur {
		return s.finished // late event from a loser; nothing can commit
	}
	s.segs[seg].queue = append(s.segs[seg].queue, w)
	s.drain()
	return s.finished
}

// SegmentDone marks a segment as having run to completion with the
// given final counters. It returns Finished. A worker that was
// cancelled or failed must NOT report SegmentDone: its partial total
// would understate the segment.
func (s *Sequencer) SegmentDone(seg int, total Counters) bool {
	if s.finished || seg < s.cur {
		return s.finished
	}
	s.segs[seg].done = true
	s.segs[seg].total = total
	s.drain()
	return s.finished
}

// drain commits in canonical order as far as the received events
// allow.
func (s *Sequencer) drain() {
	for !s.finished && s.cur < len(s.segs) {
		sg := &s.segs[s.cur]
		for len(sg.queue) > 0 {
			w := sg.queue[0]
			sg.queue = sg.queue[1:]
			s.committed = append(s.committed, SpecWitness{Seg: s.cur, W: w})
			if s.k > 0 && len(s.committed) == s.k {
				s.finished = true
				s.stopSeg = s.cur
				s.stopC = w.C
				s.needLookahead = w.LookaheadOpen
				return
			}
		}
		if !sg.done {
			return // need more events for the current segment
		}
		s.base.Add(sg.total)
		sg.queue = nil
		s.cur++
	}
	if !s.finished && s.cur == len(s.segs) {
		s.finished = true
		s.exhausted = true
	}
}

// Finished reports whether the committed result is fully determined:
// either the k-th witness committed or every segment completed.
func (s *Sequencer) Finished() bool { return s.finished }

// Partial returns the witnesses committed so far, in canonical group
// order. Unlike Outcome it is legal before Finished: the committed
// prefix is exactly what a sequential run truncated at the same point
// would have produced, which makes it the correct payload for a
// deadline-bounded partial result. The returned slice is shared with
// the sequencer and must not be mutated.
func (s *Sequencer) Partial() []SpecWitness { return s.committed }

// Outcome returns the committed result. It is an error to call it
// before Finished reports true.
func (s *Sequencer) Outcome() (SpecOutcome, error) {
	if !s.finished {
		return SpecOutcome{}, fmt.Errorf("engine: sequencer outcome requested before commit completed")
	}
	out := SpecOutcome{
		Witnesses: s.committed,
		Counters:  s.base,
		Exhausted: s.exhausted,
		StopSeg:   s.stopSeg,
	}
	if !s.exhausted {
		out.Counters.Add(s.stopC)
		out.NeedLookahead = s.needLookahead
	}
	for i := 0; i < s.cur; i++ {
		if s.segs[i].total.Work() > out.CriticalPath.Work() {
			out.CriticalPath = s.segs[i].total
		}
	}
	if !s.exhausted && s.stopC.Work() > out.CriticalPath.Work() {
		out.CriticalPath = s.stopC
	}
	return out, nil
}

// GroupGuard wraps a group operator with a cancellation check, like
// Guard does for plain operators but preserving the group interface:
// speculative segment workers thread it into their DGJ stacks so
// losing segments abort within microseconds of the sequencer's cancel,
// even mid-group. It charges no counters, so guarded and unguarded
// stacks do identical accounted work.
type GroupGuard struct {
	inner GroupOp
	ctx   context.Context
	n     int
}

// NewGroupGuard wraps op with a cancellation guard. A nil context
// returns op unchanged.
func NewGroupGuard(op GroupOp, ctx context.Context) GroupOp {
	if ctx == nil {
		return op
	}
	return &GroupGuard{inner: op, ctx: ctx}
}

// Columns implements Op.
func (g *GroupGuard) Columns() []string { return g.inner.Columns() }

// Open implements Op.
func (g *GroupGuard) Open() error {
	if err := g.ctx.Err(); err != nil {
		return err
	}
	g.n = 0
	return g.inner.Open()
}

// Next implements Op, checking the context every guardStride tuples.
func (g *GroupGuard) Next() (relstore.Row, bool, error) {
	g.n++
	if g.n%guardStride == 0 {
		if err := g.ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	return g.inner.Next()
}

// Close implements Op.
func (g *GroupGuard) Close() error { return g.inner.Close() }

// AdvanceToNextGroup implements GroupOp, checking the context at every
// group skip.
func (g *GroupGuard) AdvanceToNextGroup() error {
	if err := g.ctx.Err(); err != nil {
		return err
	}
	return g.inner.AdvanceToNextGroup()
}

// GroupOrdinal implements GroupOp.
func (g *GroupGuard) GroupOrdinal() int { return g.inner.GroupOrdinal() }

// LookaheadOpen delegates the lookahead probe through the guard.
func (g *GroupGuard) LookaheadOpen() bool { return lookaheadOpen(g.inner) }
