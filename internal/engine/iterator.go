// Package engine is the Volcano-style query execution engine the
// evaluation methods run on. It provides the standard physical
// operators the paper's SQL listings need (scans, index scans, filters,
// hash and index nested-loop joins, anti joins for NOT EXISTS,
// distinct, sort, limit, union) plus the paper's new Distinct Group
// Join (DGJ) operator family (Section 5.3): IDGJ (index nested-loops)
// and HDGJ (group-at-a-time hash join), both supporting the
// AdvanceToNextGroup method that enables early termination inside a
// group, and the DistinctGroups driver that emits one tuple per group
// and stops after k groups.
package engine

import (
	"fmt"

	"toposearch/internal/relstore"
)

// Op is the iterator interface implemented by every physical operator
// (the getNext interface of the Volcano model).
type Op interface {
	// Columns returns the qualified output column names, e.g. "P.ID".
	Columns() []string
	// Open prepares the operator for iteration.
	Open() error
	// Next returns the next output tuple; ok=false signals exhaustion.
	// The returned row may be reused by subsequent calls; callers that
	// retain it must clone.
	Next() (relstore.Row, bool, error)
	// Close releases resources. Close after exhaustion is required;
	// re-Open after Close restarts the iterator.
	Close() error
}

// GroupOp is an Op whose output stream is partitioned into ordered
// groups (property (a) of DGJ operators), exposing the
// advanceToNextGroup method (property (b)).
type GroupOp interface {
	Op
	// AdvanceToNextGroup skips the remainder of the current group so
	// the next call to Next returns the first tuple of the next group.
	AdvanceToNextGroup() error
	// GroupOrdinal returns the zero-based index of the group to which
	// the most recently returned tuple belongs.
	GroupOrdinal() int
}

// Counters tallies physical work, for cost-model validation and the
// experiment harness.
type Counters struct {
	RowsScanned int64 // base-table rows read by scans
	IndexProbes int64 // hash/ordered index lookups
	TuplesOut   int64 // tuples produced by the plan root
	Comparisons int64 // sort comparisons
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.RowsScanned += other.RowsScanned
	c.IndexProbes += other.IndexProbes
	c.TuplesOut += other.TuplesOut
	c.Comparisons += other.Comparisons
}

// Sub removes other from c (the speculative ET driver derives wasted
// work as total burned minus committed useful work).
func (c *Counters) Sub(other Counters) {
	c.RowsScanned -= other.RowsScanned
	c.IndexProbes -= other.IndexProbes
	c.TuplesOut -= other.TuplesOut
	c.Comparisons -= other.Comparisons
}

// Work is the scalar work measure used by the benchmarks: rows scanned
// plus index probes.
func (c Counters) Work() int64 { return c.RowsScanned + c.IndexProbes }

// ColIndex locates a qualified column name in an operator's output.
func ColIndex(op Op, name string) (int, error) {
	for i, c := range op.Columns() {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("engine: no column %q in %v", name, op.Columns())
}

// MustColIndex is ColIndex that panics; for statically known plans.
func MustColIndex(op Op, name string) int {
	i, err := ColIndex(op, name)
	if err != nil {
		panic(err)
	}
	return i
}

// Drain runs an operator to exhaustion and returns all tuples (cloned).
func Drain(op Op) ([]relstore.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []relstore.Row
	for {
		r, ok, err := op.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r.Clone())
	}
}

func qualify(alias string, schema *relstore.Schema) []string {
	cols := make([]string, len(schema.Cols))
	for i, c := range schema.Cols {
		cols[i] = alias + "." + c.Name
	}
	return cols
}

func concatCols(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

func concatRows(dst relstore.Row, a, b relstore.Row) relstore.Row {
	dst = dst[:0]
	dst = append(dst, a...)
	dst = append(dst, b...)
	return dst
}
