package engine

import (
	"context"

	"toposearch/internal/relstore"
)

// guardStride is how many tuples a Guard lets through between context
// checks: frequent enough to abort within microseconds of a cancel,
// rare enough that the atomic load in ctx.Err() stays off the profile.
const guardStride = 256

// Guard wraps an operator and aborts iteration with the context's error
// once it is cancelled, checking on Open and every guardStride tuples.
// It is how cancellation threads through the Volcano iterator stack:
// method drivers wrap their plan roots, so every scan, join and DGJ
// stack below becomes abortable without each operator knowing about
// contexts.
type Guard struct {
	inner Op
	ctx   context.Context
	n     int
}

// NewGuard wraps op with a cancellation guard. A nil context returns op
// unchanged.
func NewGuard(op Op, ctx context.Context) Op {
	if ctx == nil {
		return op
	}
	return &Guard{inner: op, ctx: ctx}
}

// Columns returns the inner operator's columns.
func (g *Guard) Columns() []string { return g.inner.Columns() }

// Open checks the context and opens the inner operator.
func (g *Guard) Open() error {
	if err := g.ctx.Err(); err != nil {
		return err
	}
	g.n = 0
	return g.inner.Open()
}

// Next forwards to the inner operator, checking the context every
// guardStride tuples.
func (g *Guard) Next() (relstore.Row, bool, error) {
	g.n++
	if g.n%guardStride == 0 {
		if err := g.ctx.Err(); err != nil {
			return nil, false, err
		}
	}
	return g.inner.Next()
}

// Close closes the inner operator.
func (g *Guard) Close() error { return g.inner.Close() }
