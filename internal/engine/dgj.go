package engine

import (
	"fmt"

	"toposearch/internal/relstore"
)

// GroupBase adapts a plain operator into a GroupOp in which every input
// tuple forms its own group. It is the bottom of every DGJ stack: the
// score-ordered scan of TopInfo makes each topology one group
// (Figure 15).
type GroupBase struct {
	Child Op

	ord int
}

// NewGroupBase wraps child so each tuple is one group.
func NewGroupBase(child Op) *GroupBase { return &GroupBase{Child: child} }

// Columns implements Op.
func (g *GroupBase) Columns() []string { return g.Child.Columns() }

// Open implements Op.
func (g *GroupBase) Open() error { g.ord = -1; return g.Child.Open() }

// Next implements Op.
func (g *GroupBase) Next() (relstore.Row, bool, error) {
	r, ok, err := g.Child.Next()
	if ok {
		g.ord++
	}
	return r, ok, err
}

// Close implements Op.
func (g *GroupBase) Close() error { return g.Child.Close() }

// AdvanceToNextGroup implements GroupOp. Each group has exactly one
// tuple, which was already consumed, so there is nothing to skip.
func (g *GroupBase) AdvanceToNextGroup() error { return nil }

// GroupOrdinal implements GroupOp.
func (g *GroupBase) GroupOrdinal() int { return g.ord }

// LookaheadOpen implements the lookahead probe: a GroupBase never
// reads ahead of the group it is emitting.
func (g *GroupBase) LookaheadOpen() bool { return false }

// IDGJ is the index nested-loops implementation of the Distinct Group
// Join operator (Section 5.3): it joins a group-ordered outer stream
// with an inner table via a hash-index probe, preserves the group
// structure of the outer (property a), and supports skipping the
// remainder of a group (property b) by discarding the current probe
// state and delegating to the outer.
type IDGJ struct {
	Outer     GroupOp
	OuterCol  int
	Inner     *relstore.Table
	InnerCol  string
	InnerPred relstore.Pred
	C         *Counters

	idx     *relstore.HashIndex
	cols    []string
	orow    relstore.Row
	matches []int32
	buf     relstore.Row
}

// NewIDGJ builds an IDGJ joining outer.OuterCol = inner.InnerCol.
func NewIDGJ(outer GroupOp, outerCol int, inner *relstore.Table, alias, innerCol string, innerPred relstore.Pred, c *Counters) (*IDGJ, error) {
	idx, err := inner.CreateHashIndex(innerCol)
	if err != nil {
		return nil, fmt.Errorf("engine: IDGJ: %w", err)
	}
	return &IDGJ{
		Outer: outer, OuterCol: outerCol, Inner: inner, InnerCol: innerCol,
		InnerPred: innerPred, C: c, idx: idx,
		cols: concatCols(outer.Columns(), qualify(alias, inner.Schema)),
	}, nil
}

// Columns implements Op.
func (j *IDGJ) Columns() []string { return j.cols }

// Open implements Op.
func (j *IDGJ) Open() error {
	j.orow, j.matches = nil, nil
	return j.Outer.Open()
}

// Next implements Op. Like IndexJoin, inner rows are filtered
// positionally and appended straight from the column arrays.
func (j *IDGJ) Next() (relstore.Row, bool, error) {
	for {
		for len(j.matches) > 0 {
			pos := j.matches[0]
			j.matches = j.matches[1:]
			if j.InnerPred != nil && !j.InnerPred.EvalAt(j.Inner, pos) {
				continue
			}
			j.buf = append(j.buf[:0], j.orow...)
			j.buf = j.Inner.AppendRow(j.buf, pos)
			return j.buf, true, nil
		}
		o, ok, err := j.Outer.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		j.orow = append(j.orow[:0], o...)
		if j.C != nil {
			j.C.IndexProbes++
		}
		j.matches = j.idx.Lookup(o[j.OuterCol])
	}
}

// Close implements Op.
func (j *IDGJ) Close() error { return j.Outer.Close() }

// AdvanceToNextGroup implements GroupOp: it discontinues the current
// probe loop and advances the outer to its next group.
func (j *IDGJ) AdvanceToNextGroup() error {
	j.matches = nil
	j.orow = j.orow[:0] // keep the buffer for the next group
	return j.Outer.AdvanceToNextGroup()
}

// GroupOrdinal implements GroupOp.
func (j *IDGJ) GroupOrdinal() int { return j.Outer.GroupOrdinal() }

// LookaheadOpen delegates the lookahead probe: an IDGJ pulls its outer
// strictly on demand, so only a lookahead below it can be open.
func (j *IDGJ) LookaheadOpen() bool { return lookaheadOpen(j.Outer) }

// HDGJ is the hash implementation of the DGJ operator: it materializes
// the outer tuples one group at a time, builds a hash table over the
// group, and scans the inner relation once per group, probing the group
// table. As the paper notes, "the inner relation may be evaluated
// multiple times, once for each group" — that rescan cost is exactly
// what the optimizer's cost model weighs against early termination.
type HDGJ struct {
	Outer     GroupOp
	OuterCol  int
	Inner     *relstore.Table
	InnerCol  int
	InnerPred relstore.Pred
	C         *Counters

	cols    []string
	pending relstore.Row // first tuple of the next group (lookahead)
	havePen bool
	penOrd  int
	done    bool

	groupOrd int
	emit     []relstore.Row
	buf      relstore.Row
}

// NewHDGJ builds an HDGJ joining outer.OuterCol = inner.InnerCol.
func NewHDGJ(outer GroupOp, outerCol int, inner *relstore.Table, alias, innerCol string, innerPred relstore.Pred, c *Counters) (*HDGJ, error) {
	ci, ok := inner.Schema.ColIndex(innerCol)
	if !ok {
		return nil, fmt.Errorf("engine: HDGJ: table %q has no column %q", inner.Schema.Name, innerCol)
	}
	return &HDGJ{
		Outer: outer, OuterCol: outerCol, Inner: inner, InnerCol: ci,
		InnerPred: innerPred, C: c,
		cols: concatCols(outer.Columns(), qualify(alias, inner.Schema)),
	}, nil
}

// Columns implements Op.
func (j *HDGJ) Columns() []string { return j.cols }

// Open implements Op.
func (j *HDGJ) Open() error {
	j.pending, j.havePen, j.done = nil, false, false
	j.emit = nil
	j.groupOrd = -1
	return j.Outer.Open()
}

// loadGroup pulls every outer tuple of the next group, joins it against
// a fresh scan of the inner relation, and fills the emit queue.
func (j *HDGJ) loadGroup() error {
	j.emit = j.emit[:0]
	var group []relstore.Row
	var ord int
	if j.havePen {
		group = append(group, j.pending)
		ord = j.penOrd
		j.havePen = false
	} else {
		r, ok, err := j.Outer.Next()
		if err != nil {
			return err
		}
		if !ok {
			j.done = true
			return nil
		}
		group = append(group, r.Clone())
		ord = j.Outer.GroupOrdinal()
	}
	for {
		r, ok, err := j.Outer.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if j.Outer.GroupOrdinal() != ord {
			j.pending = r.Clone()
			j.penOrd = j.Outer.GroupOrdinal()
			j.havePen = true
			break
		}
		group = append(group, r.Clone())
	}
	j.groupOrd = ord
	// Build the group hash table and scan the inner relation once.
	ht := make(map[relstore.Value][]relstore.Row, len(group))
	for _, o := range group {
		k := o[j.OuterCol]
		ht[k] = append(ht[k], o)
	}
	ncols := j.Inner.Schema.NumCols()
	j.Inner.ScanPos(func(pos int32) bool {
		if j.C != nil {
			j.C.RowsScanned++
		}
		if j.InnerPred != nil && !j.InnerPred.EvalAt(j.Inner, pos) {
			return true
		}
		for _, o := range ht[j.Inner.ValueAt(pos, j.InnerCol)] {
			out := make(relstore.Row, 0, len(o)+ncols)
			out = append(out, o...)
			out = j.Inner.AppendRow(out, pos)
			j.emit = append(j.emit, out)
		}
		return true
	})
	return nil
}

// Next implements Op.
func (j *HDGJ) Next() (relstore.Row, bool, error) {
	for {
		if len(j.emit) > 0 {
			j.buf = j.emit[0]
			j.emit = j.emit[1:]
			return j.buf, true, nil
		}
		if j.done {
			return nil, false, nil
		}
		if err := j.loadGroup(); err != nil {
			return nil, false, err
		}
		if j.done {
			return nil, false, nil
		}
	}
}

// Close implements Op.
func (j *HDGJ) Close() error { return j.Outer.Close() }

// AdvanceToNextGroup implements GroupOp: discard the emit queue for the
// current group. The lookahead tuple (if any) already belongs to the
// next group; when there is none, delegate the skip to the outer.
func (j *HDGJ) AdvanceToNextGroup() error {
	j.emit = j.emit[:0]
	if j.havePen || j.done {
		return nil
	}
	return j.Outer.AdvanceToNextGroup()
}

// GroupOrdinal implements GroupOp.
func (j *HDGJ) GroupOrdinal() int { return j.groupOrd }

// LookaheadOpen reports that loading the current group consumed the
// outer stream to exhaustion instead of parking a next-group tuple in
// the pending buffer. When the outer is a segment window of a larger
// stream, a sequential run over the whole stream would have kept
// scanning past the window's end to find that tuple — work the
// speculative sequencer's consumer replays at the stopping witness.
func (j *HDGJ) LookaheadOpen() bool { return !j.havePen }

// GroupFilter applies a predicate window to a group stream, preserving
// group structure (the sigma operators between DGJ joins in Figure 15).
type GroupFilter struct {
	Child  GroupOp
	Pred   relstore.Pred
	Offset int
}

// NewGroupFilter wraps child with a predicate at the column offset.
func NewGroupFilter(child GroupOp, pred relstore.Pred, offset int) *GroupFilter {
	return &GroupFilter{Child: child, Pred: pred, Offset: offset}
}

// Columns implements Op.
func (f *GroupFilter) Columns() []string { return f.Child.Columns() }

// Open implements Op.
func (f *GroupFilter) Open() error { return f.Child.Open() }

// Next implements Op.
func (f *GroupFilter) Next() (relstore.Row, bool, error) {
	for {
		r, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred.Eval(r[f.Offset:]) {
			return r, true, nil
		}
	}
}

// Close implements Op.
func (f *GroupFilter) Close() error { return f.Child.Close() }

// AdvanceToNextGroup implements GroupOp.
func (f *GroupFilter) AdvanceToNextGroup() error { return f.Child.AdvanceToNextGroup() }

// GroupOrdinal implements GroupOp.
func (f *GroupFilter) GroupOrdinal() int { return f.Child.GroupOrdinal() }

// LookaheadOpen delegates the lookahead probe.
func (f *GroupFilter) LookaheadOpen() bool { return lookaheadOpen(f.Child) }

// DistinctGroups drives a DGJ stack: it emits the first tuple that
// survives the stack for each group, immediately skips the remainder of
// that group, and stops after K groups have produced a result (K <= 0
// means no limit). This realizes the early-termination behaviour of the
// Fast-Top-k-ET plans: one witness tuple proves a topology non-empty,
// and k produced topologies end the query.
type DistinctGroups struct {
	Child GroupOp
	K     int

	emitted int
	buf     relstore.Row
}

// NewDistinctGroups wraps a DGJ stack with first-match-per-group and
// top-k-groups semantics.
func NewDistinctGroups(child GroupOp, k int) *DistinctGroups {
	return &DistinctGroups{Child: child, K: k}
}

// Columns implements Op.
func (d *DistinctGroups) Columns() []string { return d.Child.Columns() }

// Open implements Op.
func (d *DistinctGroups) Open() error { d.emitted = 0; return d.Child.Open() }

// Next implements Op.
func (d *DistinctGroups) Next() (relstore.Row, bool, error) {
	if d.K > 0 && d.emitted >= d.K {
		return nil, false, nil
	}
	r, ok, err := d.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	d.buf = append(d.buf[:0], r...) // clone before advancing invalidates it
	if err := d.Child.AdvanceToNextGroup(); err != nil {
		return nil, false, err
	}
	d.emitted++
	return d.buf, true, nil
}

// Close implements Op.
func (d *DistinctGroups) Close() error { return d.Child.Close() }
