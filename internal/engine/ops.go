package engine

import (
	"fmt"
	"sort"

	"toposearch/internal/relstore"
)

// Scan is a full table scan, optionally filtered by a predicate over
// the table's rows (a pushed-down local predicate). A scan can be
// restricted to a row-position window [Lo, Hi), which is how parallel
// plans shard one driving table across workers: concatenating the
// outputs of contiguous windows reproduces the full scan's row order
// exactly.
type Scan struct {
	Table *relstore.Table
	Alias string
	Pred  relstore.Pred // nil means no filter
	C     *Counters
	Lo    int32 // first row position (inclusive)
	Hi    int32 // one past the last row position; negative = end of table

	pos int32
	buf relstore.Row
}

// NewScan returns a (filtered) sequential scan of the whole table.
func NewScan(t *relstore.Table, alias string, pred relstore.Pred, c *Counters) *Scan {
	return &Scan{Table: t, Alias: alias, Pred: pred, C: c, Hi: -1}
}

// NewScanRange returns a scan restricted to row positions [lo, hi).
func NewScanRange(t *relstore.Table, alias string, pred relstore.Pred, c *Counters, lo, hi int32) *Scan {
	return &Scan{Table: t, Alias: alias, Pred: pred, C: c, Lo: lo, Hi: hi}
}

// Columns implements Op.
func (s *Scan) Columns() []string { return qualify(s.Alias, s.Table.Schema) }

// Open implements Op.
func (s *Scan) Open() error { s.pos = s.Lo; return nil }

// Next implements Op. The predicate is evaluated positionally against
// the column arrays; only rows that pass are materialized, into a
// buffer reused across calls.
func (s *Scan) Next() (relstore.Row, bool, error) {
	n := int32(s.Table.NumRows())
	if s.Hi >= 0 && s.Hi < n {
		n = s.Hi
	}
	for s.pos < n {
		pos := s.pos
		s.pos++
		if s.C != nil {
			s.C.RowsScanned++
		}
		if s.Pred == nil || s.Pred.EvalAt(s.Table, pos) {
			s.buf = s.Table.AppendRow(s.buf[:0], pos)
			return s.buf, true, nil
		}
	}
	return nil, false, nil
}

// Close implements Op.
func (s *Scan) Close() error { return nil }

// OrderedScan scans a table in the order of an ordered index
// (ascending or descending) — the "idxScan TopoInfo (score order)"
// leaf of the early-termination plans (Figure 15). A scan can be
// restricted to an order-position window [Lo, Hi) — positions in the
// index order, not row positions — which is how speculative ET plans
// hand each racing segment worker one contiguous slice of the
// score-ordered group stream.
type OrderedScan struct {
	Table *relstore.Table
	Alias string
	Col   string
	Desc  bool
	Pred  relstore.Pred
	C     *Counters
	Lo    int // first order position (inclusive)
	Hi    int // one past the last order position; negative = end
	// Order, when non-nil, is a pre-resolved index-order snapshot the
	// scan iterates instead of walking the index at Open. Speculative
	// ET resolves the order once and shares the (read-only) slice
	// across every segment worker's scan, instead of each worker
	// re-materializing all N positions for its one window.
	Order []int32

	idx   *relstore.OrderedIndex
	order []int32
	pos   int
	buf   relstore.Row
}

// NewOrderedScan returns a scan in index order over column col. Ties
// are visited in insertion order in both directions, so a descending
// score scan is equivalent to ORDER BY score DESC, insertion ASC.
func NewOrderedScan(t *relstore.Table, alias, col string, desc bool, pred relstore.Pred, c *Counters) (*OrderedScan, error) {
	idx, ok := t.OrderedIndexOn(col)
	if !ok {
		return nil, fmt.Errorf("engine: table %q has no ordered index on %q", t.Schema.Name, col)
	}
	return &OrderedScan{Table: t, Alias: alias, Col: col, Desc: desc, Pred: pred, C: c, Hi: -1, idx: idx}, nil
}

// NewOrderedScanRange returns an ordered scan restricted to order
// positions [lo, hi).
func NewOrderedScanRange(t *relstore.Table, alias, col string, desc bool, pred relstore.Pred, c *Counters, lo, hi int) (*OrderedScan, error) {
	s, err := NewOrderedScan(t, alias, col, desc, pred, c)
	if err != nil {
		return nil, err
	}
	s.Lo, s.Hi = lo, hi
	return s, nil
}

// Columns implements Op.
func (s *OrderedScan) Columns() []string { return qualify(s.Alias, s.Table.Schema) }

// Open implements Op.
func (s *OrderedScan) Open() error {
	s.pos = s.Lo
	if s.Order != nil {
		s.order = s.Order
		return nil
	}
	s.order = s.order[:0]
	s.idx.Scan(s.Desc, func(pos int32) bool {
		s.order = append(s.order, pos)
		return true
	})
	return nil
}

// Next implements Op.
func (s *OrderedScan) Next() (relstore.Row, bool, error) {
	n := len(s.order)
	if s.Hi >= 0 && s.Hi < n {
		n = s.Hi
	}
	for s.pos < n {
		pos := s.order[s.pos]
		s.pos++
		if s.C != nil {
			s.C.RowsScanned++
		}
		if s.Pred == nil || s.Pred.EvalAt(s.Table, pos) {
			s.buf = s.Table.AppendRow(s.buf[:0], pos)
			return s.buf, true, nil
		}
	}
	return nil, false, nil
}

// Close implements Op.
func (s *OrderedScan) Close() error { return nil }

// Filter applies a predicate to a window of the child's output tuple:
// the predicate is compiled against a base-table schema whose row
// occupies child columns [Offset, Offset+width).
type Filter struct {
	Child  Op
	Pred   relstore.Pred
	Offset int
}

// NewFilter wraps child with a predicate evaluated at the given offset.
func NewFilter(child Op, pred relstore.Pred, offset int) *Filter {
	return &Filter{Child: child, Pred: pred, Offset: offset}
}

// Columns implements Op.
func (f *Filter) Columns() []string { return f.Child.Columns() }

// Open implements Op.
func (f *Filter) Open() error { return f.Child.Open() }

// Next implements Op.
func (f *Filter) Next() (relstore.Row, bool, error) {
	for {
		r, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Pred.Eval(r[f.Offset:]) {
			return r, true, nil
		}
	}
}

// Close implements Op.
func (f *Filter) Close() error { return f.Child.Close() }

// Project keeps the listed child columns, in order.
type Project struct {
	Child Op
	Cols  []int

	names []string
	buf   relstore.Row
}

// NewProject returns a projection of the child's columns.
func NewProject(child Op, cols []int) *Project {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = child.Columns()[c]
	}
	return &Project{Child: child, Cols: cols, names: names}
}

// Columns implements Op.
func (p *Project) Columns() []string { return p.names }

// Open implements Op.
func (p *Project) Open() error { return p.Child.Open() }

// Next implements Op.
func (p *Project) Next() (relstore.Row, bool, error) {
	r, ok, err := p.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	p.buf = p.buf[:0]
	for _, c := range p.Cols {
		p.buf = append(p.buf, r[c])
	}
	return p.buf, true, nil
}

// Close implements Op.
func (p *Project) Close() error { return p.Child.Close() }

// Distinct emits the first tuple for each distinct key (a set of child
// columns), preserving input order.
type Distinct struct {
	Child Op
	Key   []int

	seen *rowKeySet
}

// NewDistinct returns a hash-distinct on the key columns.
func NewDistinct(child Op, key []int) *Distinct {
	return &Distinct{Child: child, Key: key}
}

// Columns implements Op.
func (d *Distinct) Columns() []string { return d.Child.Columns() }

// Open implements Op.
func (d *Distinct) Open() error {
	d.seen = newRowKeySet(len(d.Key))
	return d.Child.Open()
}

func keyString(r relstore.Row, key []int) string {
	s := ""
	for _, k := range key {
		s += r[k].String() + "\x00"
	}
	return s
}

// Next implements Op.
func (d *Distinct) Next() (relstore.Row, bool, error) {
	for {
		r, ok, err := d.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if d.seen.Insert(r, d.Key) {
			return r, true, nil
		}
	}
}

// Close implements Op.
func (d *Distinct) Close() error { return d.Child.Close() }

// Sort materializes the child and emits tuples ordered by one column.
type Sort struct {
	Child Op
	Col   int
	Desc  bool
	C     *Counters

	rows []relstore.Row
	pos  int
}

// NewSort returns a materializing sort on the given column.
func NewSort(child Op, col int, desc bool, c *Counters) *Sort {
	return &Sort{Child: child, Col: col, Desc: desc, C: c}
}

// Columns implements Op.
func (s *Sort) Columns() []string { return s.Child.Columns() }

// Open implements Op.
func (s *Sort) Open() error {
	if err := s.Child.Open(); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	s.pos = 0
	for {
		r, ok, err := s.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, r.Clone())
	}
	sort.SliceStable(s.rows, func(i, j int) bool {
		if s.C != nil {
			s.C.Comparisons++
		}
		c := s.rows[i][s.Col].Compare(s.rows[j][s.Col])
		if s.Desc {
			return c > 0
		}
		return c < 0
	})
	return nil
}

// Next implements Op.
func (s *Sort) Next() (relstore.Row, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	r := s.rows[s.pos]
	s.pos++
	return r, true, nil
}

// Close implements Op.
func (s *Sort) Close() error { return s.Child.Close() }

// Limit stops after K tuples (FETCH FIRST k ROWS ONLY).
type Limit struct {
	Child Op
	K     int

	n int
}

// NewLimit caps the child's output at k tuples.
func NewLimit(child Op, k int) *Limit { return &Limit{Child: child, K: k} }

// Columns implements Op.
func (l *Limit) Columns() []string { return l.Child.Columns() }

// Open implements Op.
func (l *Limit) Open() error { l.n = 0; return l.Child.Open() }

// Next implements Op.
func (l *Limit) Next() (relstore.Row, bool, error) {
	if l.n >= l.K {
		return nil, false, nil
	}
	r, ok, err := l.Child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.n++
	return r, true, nil
}

// Close implements Op.
func (l *Limit) Close() error { return l.Child.Close() }

// Concat emits all tuples of each child in turn (UNION ALL). Children
// must have compatible column counts; column names are taken from the
// first child.
type Concat struct {
	Children []Op

	cur int
}

// NewConcat returns the bag union of the children.
func NewConcat(children ...Op) *Concat { return &Concat{Children: children} }

// Columns implements Op.
func (u *Concat) Columns() []string { return u.Children[0].Columns() }

// Open implements Op.
func (u *Concat) Open() error {
	u.cur = 0
	if len(u.Children) == 0 {
		return nil
	}
	return u.Children[0].Open()
}

// Next implements Op.
func (u *Concat) Next() (relstore.Row, bool, error) {
	for u.cur < len(u.Children) {
		r, ok, err := u.Children[u.cur].Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			return r, true, nil
		}
		if err := u.Children[u.cur].Close(); err != nil {
			return nil, false, err
		}
		u.cur++
		if u.cur < len(u.Children) {
			if err := u.Children[u.cur].Open(); err != nil {
				return nil, false, err
			}
		}
	}
	return nil, false, nil
}

// Close implements Op.
func (u *Concat) Close() error {
	if u.cur < len(u.Children) {
		return u.Children[u.cur].Close()
	}
	return nil
}
