package engine

import "toposearch/internal/relstore"

// rowKeySet is a set of composite row keys of a fixed arity. The common
// one- and two-column keys (DISTINCT on TID; the E1/E2 anti join of
// SQL1/SQL5) use relstore.Value directly as the comparable map key, so
// the per-tuple hot path allocates nothing; wider keys fall back to an
// encoded string. Insert and Contains may use different column lists of
// the same arity (as an anti join does for its outer and inner sides).
type rowKeySet struct {
	arity int
	k1    map[relstore.Value]struct{}
	k2    map[[2]relstore.Value]struct{}
	kn    map[string]struct{}
}

func newRowKeySet(arity int) *rowKeySet {
	s := &rowKeySet{arity: arity}
	switch arity {
	case 1:
		s.k1 = make(map[relstore.Value]struct{})
	case 2:
		s.k2 = make(map[[2]relstore.Value]struct{})
	default:
		s.kn = make(map[string]struct{})
	}
	return s
}

// Insert adds the row's key (projected through cols) and reports
// whether it was absent before.
func (s *rowKeySet) Insert(r relstore.Row, cols []int) bool {
	switch {
	case s.k1 != nil:
		k := r[cols[0]]
		if _, dup := s.k1[k]; dup {
			return false
		}
		s.k1[k] = struct{}{}
		return true
	case s.k2 != nil:
		k := [2]relstore.Value{r[cols[0]], r[cols[1]]}
		if _, dup := s.k2[k]; dup {
			return false
		}
		s.k2[k] = struct{}{}
		return true
	default:
		k := keyString(r, cols)
		if _, dup := s.kn[k]; dup {
			return false
		}
		s.kn[k] = struct{}{}
		return true
	}
}

// Contains reports whether the row's key (projected through cols) is in
// the set.
func (s *rowKeySet) Contains(r relstore.Row, cols []int) bool {
	switch {
	case s.k1 != nil:
		_, ok := s.k1[r[cols[0]]]
		return ok
	case s.k2 != nil:
		_, ok := s.k2[[2]relstore.Value{r[cols[0]], r[cols[1]]}]
		return ok
	default:
		_, ok := s.kn[keyString(r, cols)]
		return ok
	}
}
