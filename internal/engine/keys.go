package engine

import "toposearch/internal/relstore"

// rowKeySet is a set of composite row keys of a fixed arity. The common
// one- and two-column keys (DISTINCT on TID; the E1/E2 anti join of
// SQL1/SQL5) hash the raw int64 payloads (or the string payload for
// string-typed cells) instead of composite Value structs, matching the
// columnar store's int64/dictionary-code index keys; wider keys fall
// back to an encoded string. Insert and Contains may use different
// column lists of the same arity (as an anti join does for its outer
// and inner sides).
type rowKeySet struct {
	arity int
	k1i   map[int64]struct{}
	k1s   map[string]struct{}
	k2i   map[[2]int64]struct{}
	k2v   map[[2]relstore.Value]struct{}
	kn    map[string]struct{}
}

func newRowKeySet(arity int) *rowKeySet {
	s := &rowKeySet{arity: arity}
	switch arity {
	case 1:
		s.k1i = make(map[int64]struct{})
	case 2:
		s.k2i = make(map[[2]int64]struct{})
	default:
		s.kn = make(map[string]struct{})
	}
	return s
}

// Insert adds the row's key (projected through cols) and reports
// whether it was absent before.
func (s *rowKeySet) Insert(r relstore.Row, cols []int) bool {
	switch s.arity {
	case 1:
		v := r[cols[0]]
		if v.Kind == relstore.TInt {
			if _, dup := s.k1i[v.Int]; dup {
				return false
			}
			s.k1i[v.Int] = struct{}{}
			return true
		}
		if s.k1s == nil {
			s.k1s = make(map[string]struct{})
		}
		if _, dup := s.k1s[v.Str]; dup {
			return false
		}
		s.k1s[v.Str] = struct{}{}
		return true
	case 2:
		a, b := r[cols[0]], r[cols[1]]
		if a.Kind == relstore.TInt && b.Kind == relstore.TInt {
			k := [2]int64{a.Int, b.Int}
			if _, dup := s.k2i[k]; dup {
				return false
			}
			s.k2i[k] = struct{}{}
			return true
		}
		if s.k2v == nil {
			s.k2v = make(map[[2]relstore.Value]struct{})
		}
		k := [2]relstore.Value{a, b}
		if _, dup := s.k2v[k]; dup {
			return false
		}
		s.k2v[k] = struct{}{}
		return true
	default:
		k := keyString(r, cols)
		if _, dup := s.kn[k]; dup {
			return false
		}
		s.kn[k] = struct{}{}
		return true
	}
}

// Contains reports whether the row's key (projected through cols) is in
// the set.
func (s *rowKeySet) Contains(r relstore.Row, cols []int) bool {
	switch s.arity {
	case 1:
		v := r[cols[0]]
		if v.Kind == relstore.TInt {
			_, ok := s.k1i[v.Int]
			return ok
		}
		_, ok := s.k1s[v.Str]
		return ok
	case 2:
		a, b := r[cols[0]], r[cols[1]]
		if a.Kind == relstore.TInt && b.Kind == relstore.TInt {
			_, ok := s.k2i[[2]int64{a.Int, b.Int}]
			return ok
		}
		_, ok := s.k2v[[2]relstore.Value{a, b}]
		return ok
	default:
		_, ok := s.kn[keyString(r, cols)]
		return ok
	}
}
