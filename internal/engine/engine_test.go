package engine

import (
	"fmt"
	"testing"

	"toposearch/internal/relstore"
)

// Compile-time interface checks.
var (
	_ GroupOp = (*GroupBase)(nil)
	_ GroupOp = (*IDGJ)(nil)
	_ GroupOp = (*HDGJ)(nil)
	_ GroupOp = (*GroupFilter)(nil)
	_ Op      = (*DistinctGroups)(nil)
	_ Op      = (*Scan)(nil)
	_ Op      = (*OrderedScan)(nil)
	_ Op      = (*Filter)(nil)
	_ Op      = (*Project)(nil)
	_ Op      = (*Distinct)(nil)
	_ Op      = (*Sort)(nil)
	_ Op      = (*Limit)(nil)
	_ Op      = (*Concat)(nil)
	_ Op      = (*HashJoin)(nil)
	_ Op      = (*IndexJoin)(nil)
	_ Op      = (*AntiJoin)(nil)
)

// testDB builds tiny Protein/DNA/LeftTops/TopInfo tables mirroring the
// paper's query shape.
func testDB(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.NewDB()

	prot := db.MustCreateTable(relstore.MustSchema("Protein", []relstore.Column{
		{Name: "ID", Type: relstore.TInt}, {Name: "desc", Type: relstore.TString}}, "ID"))
	for _, r := range []struct {
		id   int64
		desc string
	}{
		{1, "enzyme alpha"}, {2, "kinase"}, {3, "enzyme beta"}, {4, "receptor"},
	} {
		prot.MustInsert(relstore.IntVal(r.id), relstore.StrVal(r.desc))
	}
	if _, err := prot.CreateHashIndex("ID"); err != nil {
		t.Fatal(err)
	}

	dna := db.MustCreateTable(relstore.MustSchema("DNA", []relstore.Column{
		{Name: "ID", Type: relstore.TInt}, {Name: "type", Type: relstore.TString}}, "ID"))
	for _, r := range []struct {
		id int64
		ty string
	}{
		{10, "mRNA"}, {11, "EST"}, {12, "mRNA"},
	} {
		dna.MustInsert(relstore.IntVal(r.id), relstore.StrVal(r.ty))
	}
	if _, err := dna.CreateHashIndex("ID"); err != nil {
		t.Fatal(err)
	}

	// LeftTops(E1,E2,TID): topology 100 relates (1,10) and (2,11);
	// topology 101 relates (2,11) and (3,12); topology 102 relates (4,11).
	lt := db.MustCreateTable(relstore.MustSchema("LeftTops", []relstore.Column{
		{Name: "E1", Type: relstore.TInt}, {Name: "E2", Type: relstore.TInt},
		{Name: "TID", Type: relstore.TInt}}, ""))
	for _, r := range [][3]int64{
		{1, 10, 100}, {2, 11, 100},
		{2, 11, 101}, {3, 12, 101},
		{4, 11, 102},
	} {
		lt.MustInsert(relstore.IntVal(r[0]), relstore.IntVal(r[1]), relstore.IntVal(r[2]))
	}
	for _, c := range []string{"E1", "E2", "TID"} {
		if _, err := lt.CreateHashIndex(c); err != nil {
			t.Fatal(err)
		}
	}

	// TopInfo(TID, SCORE): scores make 101 best, then 100, then 102.
	ti := db.MustCreateTable(relstore.MustSchema("TopInfo", []relstore.Column{
		{Name: "TID", Type: relstore.TInt}, {Name: "SCORE", Type: relstore.TInt}}, "TID"))
	for _, r := range [][2]int64{{100, 50}, {101, 70}, {102, 10}} {
		ti.MustInsert(relstore.IntVal(r[0]), relstore.IntVal(r[1]))
	}
	if _, err := ti.CreateOrderedIndex("SCORE"); err != nil {
		t.Fatal(err)
	}
	return db
}

func col(r relstore.Row, i int) int64 { return r[i].Int }

func TestScanAndFilter(t *testing.T) {
	db := testDB(t)
	prot := db.MustTable("Protein")
	c := &Counters{}
	enzyme := relstore.MustContains(prot.Schema, "desc", "enzyme")
	rows, err := Drain(NewScan(prot, "P", enzyme, c))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || col(rows[0], 0) != 1 || col(rows[1], 0) != 3 {
		t.Errorf("filtered scan = %v", rows)
	}
	if c.RowsScanned != 4 {
		t.Errorf("RowsScanned = %d, want 4", c.RowsScanned)
	}
	// Filter as separate op.
	f := NewFilter(NewScan(prot, "P", nil, nil), enzyme, 0)
	rows, err = Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("Filter op = %v", rows)
	}
	if got := f.Columns(); got[0] != "P.ID" || got[1] != "P.desc" {
		t.Errorf("Columns = %v", got)
	}
}

func TestOrderedScan(t *testing.T) {
	db := testDB(t)
	ti := db.MustTable("TopInfo")
	sc, err := NewOrderedScan(ti, "T", "SCORE", true, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(sc)
	if err != nil {
		t.Fatal(err)
	}
	var tids []int64
	for _, r := range rows {
		tids = append(tids, col(r, 0))
	}
	if fmt.Sprint(tids) != "[101 100 102]" {
		t.Errorf("desc score order = %v, want [101 100 102]", tids)
	}
	// Ascending.
	asc, _ := NewOrderedScan(ti, "T", "SCORE", false, nil, nil)
	rows, _ = Drain(asc)
	if col(rows[0], 0) != 102 {
		t.Errorf("asc first = %d, want 102", col(rows[0], 0))
	}
	// No index -> error.
	if _, err := NewOrderedScan(ti, "T", "TID", false, nil, nil); err == nil {
		t.Error("OrderedScan without index accepted")
	}
}

func TestProjectDistinctSortLimit(t *testing.T) {
	db := testDB(t)
	lt := db.MustTable("LeftTops")
	// SELECT DISTINCT TID FROM LeftTops ORDER BY TID DESC LIMIT 2.
	scan := NewScan(lt, "LT", nil, nil)
	proj := NewProject(scan, []int{2})
	dist := NewDistinct(proj, []int{0})
	srt := NewSort(dist, 0, true, nil)
	lim := NewLimit(srt, 2)
	rows, err := Drain(lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || col(rows[0], 0) != 102 || col(rows[1], 0) != 101 {
		t.Errorf("result = %v, want [102 101]", rows)
	}
	if proj.Columns()[0] != "LT.TID" {
		t.Errorf("projected name = %v", proj.Columns())
	}
}

func TestHashJoin(t *testing.T) {
	db := testDB(t)
	lt := db.MustTable("LeftTops")
	prot := db.MustTable("Protein")
	scanLT := NewScan(lt, "LT", nil, nil)
	scanP := NewScan(prot, "P", nil, nil)
	j := NewHashJoin(scanLT, 0, scanP, 0, nil) // LT.E1 = P.ID
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("join rows = %d, want 5", len(rows))
	}
	// Every row: E1 == P.ID.
	idIdx := MustColIndex(j, "P.ID")
	for _, r := range rows {
		if col(r, 0) != col(r, idIdx) {
			t.Errorf("join mismatch: %v", r)
		}
	}
	if len(j.Columns()) != 5 {
		t.Errorf("join columns = %v", j.Columns())
	}
}

func TestIndexJoin(t *testing.T) {
	db := testDB(t)
	lt := db.MustTable("LeftTops")
	prot := db.MustTable("Protein")
	c := &Counters{}
	scanLT := NewScan(lt, "LT", nil, c)
	enzyme := relstore.MustContains(prot.Schema, "desc", "enzyme")
	j, err := NewIndexJoin(scanLT, 0, prot, "P", "ID", enzyme, c)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	// LeftTops rows with E1 in {1,3} (enzymes): (1,10,100),(3,12,101).
	if len(rows) != 2 {
		t.Fatalf("index join rows = %d, want 2: %v", len(rows), rows)
	}
	if c.IndexProbes != 5 {
		t.Errorf("IndexProbes = %d, want 5 (one per outer tuple)", c.IndexProbes)
	}
	// Missing column errors.
	if _, err := NewIndexJoin(scanLT, 0, prot, "P", "nope", nil, nil); err == nil {
		t.Error("index join on phantom column accepted")
	}
}

func TestAntiJoin(t *testing.T) {
	db := testDB(t)
	lt := db.MustTable("LeftTops")
	// NOT EXISTS over an exceptions-like table holding (2,11,100).
	ex := db.MustCreateTable(relstore.MustSchema("Ex", []relstore.Column{
		{Name: "E1", Type: relstore.TInt}, {Name: "E2", Type: relstore.TInt},
		{Name: "TID", Type: relstore.TInt}}, ""))
	ex.MustInsert(relstore.IntVal(2), relstore.IntVal(11), relstore.IntVal(100))
	outer := NewScan(lt, "LT", nil, nil)
	inner := NewScan(ex, "EX", nil, nil)
	aj := NewAntiJoin(outer, []int{0, 1, 2}, inner, []int{0, 1, 2}, nil)
	rows, err := Drain(aj)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("anti join rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if col(r, 0) == 2 && col(r, 1) == 11 && col(r, 2) == 100 {
			t.Error("excluded row leaked through anti join")
		}
	}
}

func TestConcat(t *testing.T) {
	db := testDB(t)
	prot := db.MustTable("Protein")
	a := NewScan(prot, "P", relstore.MustEq(prot.Schema, "ID", relstore.IntVal(1)), nil)
	b := NewScan(prot, "P", relstore.MustEq(prot.Schema, "ID", relstore.IntVal(3)), nil)
	rows, err := Drain(NewConcat(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || col(rows[0], 0) != 1 || col(rows[1], 0) != 3 {
		t.Errorf("concat = %v", rows)
	}
}

// buildDGJStack assembles the Figure-15(a) plan over the test DB:
// TopInfo (score desc) -> IDGJ LeftTops on TID -> IDGJ Protein(sigma) ->
// IDGJ DNA(sigma).
func buildDGJStack(t *testing.T, db *relstore.DB, protWord, dnaType string, c *Counters) (GroupOp, int) {
	t.Helper()
	ti := db.MustTable("TopInfo")
	lt := db.MustTable("LeftTops")
	prot := db.MustTable("Protein")
	dna := db.MustTable("DNA")
	scan, err := NewOrderedScan(ti, "T", "SCORE", true, nil, c)
	if err != nil {
		t.Fatal(err)
	}
	base := NewGroupBase(scan)
	j1, err := NewIDGJ(base, 0, lt, "LT", "TID", nil, c) // T.TID = LT.TID
	if err != nil {
		t.Fatal(err)
	}
	e1 := MustColIndex(j1, "LT.E1")
	j2, err := NewIDGJ(j1, e1, prot, "P", "ID",
		relstore.MustContains(prot.Schema, "desc", protWord), c)
	if err != nil {
		t.Fatal(err)
	}
	e2 := MustColIndex(j2, "LT.E2")
	j3, err := NewIDGJ(j2, e2, dna, "D", "ID",
		relstore.MustEq(dna.Schema, "type", relstore.StrVal(dnaType)), c)
	if err != nil {
		t.Fatal(err)
	}
	return j3, MustColIndex(j3, "T.TID")
}

func TestIDGJStackTopK(t *testing.T) {
	db := testDB(t)
	c := &Counters{}
	stack, tidIdx := buildDGJStack(t, db, "enzyme", "mRNA", c)
	top := NewDistinctGroups(stack, 2)
	rows, err := Drain(top)
	if err != nil {
		t.Fatal(err)
	}
	// Qualifying pairs: P1(enzyme)-D10(mRNA) via T100; P3(enzyme)-
	// D12(mRNA) via T101. Score order: 101 first, then 100.
	if len(rows) != 2 {
		t.Fatalf("top-2 rows = %d, want 2: %v", len(rows), rows)
	}
	if col(rows[0], tidIdx) != 101 || col(rows[1], tidIdx) != 100 {
		t.Errorf("top-2 TIDs = [%d %d], want [101 100]",
			col(rows[0], tidIdx), col(rows[1], tidIdx))
	}
	// k=1 stops after the best group.
	stack1, tidIdx1 := buildDGJStack(t, db, "enzyme", "mRNA", &Counters{})
	rows, err = Drain(NewDistinctGroups(stack1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || col(rows[0], tidIdx1) != 101 {
		t.Errorf("top-1 = %v", rows)
	}
}

func TestIDGJEarlyTerminationSkipsWork(t *testing.T) {
	db := testDB(t)
	// Unselective predicates: every LeftTops tuple matches, so the ET
	// driver should probe far fewer times than the full join.
	cAll := &Counters{}
	stackAll, _ := buildDGJStack(t, db, "", "", cAll) // empty word matches nothing; use nil preds instead
	_ = stackAll
	// Rebuild with nil predicates for a true "unselective" case.
	ti := db.MustTable("TopInfo")
	lt := db.MustTable("LeftTops")
	prot := db.MustTable("Protein")
	scan, _ := NewOrderedScan(ti, "T", "SCORE", true, nil, nil)
	base := NewGroupBase(scan)
	cET := &Counters{}
	j1, _ := NewIDGJ(base, 0, lt, "LT", "TID", nil, cET)
	j2, _ := NewIDGJ(j1, MustColIndex(j1, "LT.E1"), prot, "P", "ID", nil, cET)
	rows, err := Drain(NewDistinctGroups(j2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(rows))
	}
	// Full enumeration would probe once per LeftTops tuple (5) plus
	// once per TopInfo tuple (3); ET should do at most one LeftTops
	// probe and one Protein probe per group (3 each).
	if cET.IndexProbes > 6 {
		t.Errorf("ET probes = %d, want <= 6", cET.IndexProbes)
	}
}

func TestHDGJMatchesIDGJ(t *testing.T) {
	db := testDB(t)
	ti := db.MustTable("TopInfo")
	lt := db.MustTable("LeftTops")
	prot := db.MustTable("Protein")
	enzyme := relstore.MustContains(prot.Schema, "desc", "enzyme")

	build := func(useHash bool) Op {
		scan, _ := NewOrderedScan(ti, "T", "SCORE", true, nil, nil)
		base := NewGroupBase(scan)
		j1, _ := NewIDGJ(base, 0, lt, "LT", "TID", nil, nil)
		var j2 GroupOp
		if useHash {
			j2h, err := NewHDGJ(j1, MustColIndex(j1, "LT.E1"), prot, "P", "ID", enzyme, nil)
			if err != nil {
				t.Fatal(err)
			}
			j2 = j2h
		} else {
			j2i, err := NewIDGJ(j1, MustColIndex(j1, "LT.E1"), prot, "P", "ID", enzyme, nil)
			if err != nil {
				t.Fatal(err)
			}
			j2 = j2i
		}
		return NewDistinctGroups(j2, 0)
	}
	ir, err := Drain(build(false))
	if err != nil {
		t.Fatal(err)
	}
	hr, err := Drain(build(true))
	if err != nil {
		t.Fatal(err)
	}
	if len(ir) != len(hr) {
		t.Fatalf("IDGJ %d rows vs HDGJ %d rows", len(ir), len(hr))
	}
	for i := range ir {
		// Same group (TID) must be emitted in the same order.
		if col(ir[i], 1) != col(hr[i], 1) {
			t.Errorf("row %d: IDGJ TID %d vs HDGJ TID %d", i, col(ir[i], 1), col(hr[i], 1))
		}
	}
}

func TestHDGJFullDrainWithoutSkip(t *testing.T) {
	db := testDB(t)
	ti := db.MustTable("TopInfo")
	lt := db.MustTable("LeftTops")
	scan, _ := NewOrderedScan(ti, "T", "SCORE", true, nil, nil)
	base := NewGroupBase(scan)
	j, err := NewHDGJ(base, 0, lt, "LT", "TID", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(j)
	if err != nil {
		t.Fatal(err)
	}
	// All 5 LeftTops rows, grouped by topology in score order:
	// 101 (2 rows), 100 (2 rows), 102 (1 row).
	if len(rows) != 5 {
		t.Fatalf("HDGJ drain = %d rows, want 5", len(rows))
	}
	wantOrder := []int64{101, 101, 100, 100, 102}
	for i, r := range rows {
		if col(r, 2+2) != wantOrder[i] { // LT.TID is column 4 (T has 2 cols)
			t.Errorf("row %d TID = %d, want %d", i, col(r, 4), wantOrder[i])
		}
	}
}

func TestGroupFilter(t *testing.T) {
	db := testDB(t)
	ti := db.MustTable("TopInfo")
	lt := db.MustTable("LeftTops")
	scan, _ := NewOrderedScan(ti, "T", "SCORE", true, nil, nil)
	base := NewGroupBase(scan)
	j1, _ := NewIDGJ(base, 0, lt, "LT", "TID", nil, nil)
	// Keep only LeftTops rows with E1 = 2; window starts at LT's offset (2).
	pred := relstore.MustEq(lt.Schema, "E1", relstore.IntVal(2))
	gf := NewGroupFilter(j1, pred, 2)
	rows, err := Drain(NewDistinctGroups(gf, 0))
	if err != nil {
		t.Fatal(err)
	}
	// E1=2 appears in topologies 100 and 101 -> two groups emit.
	if len(rows) != 2 {
		t.Errorf("filtered groups = %d, want 2: %v", len(rows), rows)
	}
	if gf.GroupOrdinal() < 0 {
		t.Error("GroupOrdinal not tracked")
	}
}

func TestGroupBaseSemantics(t *testing.T) {
	db := testDB(t)
	ti := db.MustTable("TopInfo")
	scan, _ := NewOrderedScan(ti, "T", "SCORE", true, nil, nil)
	g := NewGroupBase(scan)
	if err := g.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := g.Next(); !ok {
		t.Fatal("no first tuple")
	}
	if g.GroupOrdinal() != 0 {
		t.Errorf("ordinal = %d, want 0", g.GroupOrdinal())
	}
	if err := g.AdvanceToNextGroup(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := g.Next(); !ok {
		t.Fatal("no second tuple")
	}
	if g.GroupOrdinal() != 1 {
		t.Errorf("ordinal = %d, want 1", g.GroupOrdinal())
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestColIndexErrors(t *testing.T) {
	db := testDB(t)
	scan := NewScan(db.MustTable("Protein"), "P", nil, nil)
	if _, err := ColIndex(scan, "P.nope"); err == nil {
		t.Error("phantom column accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustColIndex did not panic")
		}
	}()
	MustColIndex(scan, "P.nope")
}

func TestCountersAdd(t *testing.T) {
	a := Counters{RowsScanned: 1, IndexProbes: 2, TuplesOut: 3, Comparisons: 4}
	b := Counters{RowsScanned: 10, IndexProbes: 20, TuplesOut: 30, Comparisons: 40}
	a.Add(b)
	if a.RowsScanned != 11 || a.IndexProbes != 22 || a.TuplesOut != 33 || a.Comparisons != 44 {
		t.Errorf("Add = %+v", a)
	}
}

func TestScanRangeShardsComposeToFullScan(t *testing.T) {
	db := testDB(t)
	prot := db.MustTable("Protein")
	full, err := Drain(NewScan(prot, "P", nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	n := int32(prot.NumRows())
	for _, cut := range []int32{0, 1, n - 1, n} {
		a, err := Drain(NewScanRange(prot, "P", nil, nil, 0, cut))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Drain(NewScanRange(prot, "P", nil, nil, cut, -1))
		if err != nil {
			t.Fatal(err)
		}
		got := append(a, b...)
		if fmt.Sprint(got) != fmt.Sprint(full) {
			t.Errorf("cut=%d: concatenated shards != full scan", cut)
		}
	}
	// Hi past the end clamps to the table size.
	over, err := Drain(NewScanRange(prot, "P", nil, nil, 0, n+100))
	if err != nil {
		t.Fatal(err)
	}
	if len(over) != len(full) {
		t.Errorf("Hi beyond end returned %d rows, want %d", len(over), len(full))
	}
}

func TestDistinctAndAntiJoinPairKeys(t *testing.T) {
	// Two-column keys take the comparable value-pair path of rowKeySet;
	// the result must match the semantics of the string-key fallback.
	db := testDB(t)
	lt := db.MustTable("LeftTops")
	rows, err := Drain(NewDistinct(NewScan(lt, "LT", nil, nil), []int{0, 2}))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int64]bool{}
	for _, r := range rows {
		k := [2]int64{col(r, 0), col(r, 2)}
		if seen[k] {
			t.Fatalf("distinct on (E1, TID) emitted duplicate %v", k)
		}
		seen[k] = true
	}
	ex := db.MustCreateTable(relstore.MustSchema("Ex2", []relstore.Column{
		{Name: "E1", Type: relstore.TInt}, {Name: "E2", Type: relstore.TInt}}, ""))
	ex.MustInsert(relstore.IntVal(2), relstore.IntVal(11))
	anti, err := Drain(NewAntiJoin(
		NewScan(lt, "LT", nil, nil), []int{0, 1},
		NewScan(ex, "EX", nil, nil), []int{0, 1}, nil))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	lt.Scan(func(_ int32, r relstore.Row) bool {
		if !(r[0].Int == 2 && r[1].Int == 11) {
			want++
		}
		return true
	})
	for _, r := range anti {
		if col(r, 0) == 2 && col(r, 1) == 11 {
			t.Error("pair-keyed anti join leaked the excluded pair")
		}
	}
	if len(anti) != want {
		t.Errorf("anti join rows = %d, want %d", len(anti), want)
	}
}
