package engine

import "toposearch/internal/relstore"

// FuncFilter filters tuples with an arbitrary Go predicate — used for
// residual conditions the relstore predicate language cannot express,
// such as the all-nodes-distinct constraint of simple-path matching.
type FuncFilter struct {
	Child Op
	Keep  func(relstore.Row) bool
	Desc  string
}

// NewFuncFilter wraps child with the keep function.
func NewFuncFilter(child Op, desc string, keep func(relstore.Row) bool) *FuncFilter {
	return &FuncFilter{Child: child, Keep: keep, Desc: desc}
}

// Columns implements Op.
func (f *FuncFilter) Columns() []string { return f.Child.Columns() }

// Open implements Op.
func (f *FuncFilter) Open() error { return f.Child.Open() }

// Next implements Op.
func (f *FuncFilter) Next() (relstore.Row, bool, error) {
	for {
		r, ok, err := f.Child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.Keep(r) {
			return r, true, nil
		}
	}
}

// Close implements Op.
func (f *FuncFilter) Close() error { return f.Child.Close() }
