package engine

import (
	"testing"
)

// refCommit is the reference semantics of the speculative sequencer:
// flatten the per-segment witness lists in canonical order, stop at
// the k-th witness, and account counters as "full totals of every
// segment wholly before the stop, plus the stopping witness's
// snapshot".
func refCommit(k int, segs [][]GroupWitness, totals []Counters) SpecOutcome {
	var out SpecOutcome
	for si, ws := range segs {
		for _, w := range ws {
			out.Witnesses = append(out.Witnesses, SpecWitness{Seg: si, W: w})
			if k > 0 && len(out.Witnesses) == k {
				out.StopSeg = si
				out.Counters.Add(w.C)
				out.NeedLookahead = w.LookaheadOpen
				return out
			}
		}
		out.Counters.Add(totals[si])
	}
	out.Exhausted = true
	return out
}

func outcomesEqual(a, b SpecOutcome) bool {
	if a.Counters != b.Counters || a.Exhausted != b.Exhausted ||
		len(a.Witnesses) != len(b.Witnesses) {
		return false
	}
	if !a.Exhausted && (a.StopSeg != b.StopSeg || a.NeedLookahead != b.NeedLookahead) {
		return false
	}
	for i := range a.Witnesses {
		if a.Witnesses[i].Seg != b.Witnesses[i].Seg || a.Witnesses[i].W.Ord != b.Witnesses[i].W.Ord {
			return false
		}
	}
	return true
}

// fz is a cursor over fuzz bytes; exhausted input reads as zero so
// every byte string decodes to a valid scenario.
type fz struct {
	data []byte
	i    int
}

func (f *fz) byte() byte {
	if f.i >= len(f.data) {
		return 0
	}
	b := f.data[f.i]
	f.i++
	return b
}

// decodeScenario derives a sequencing scenario from fuzz bytes: k, a
// set of segments with monotone per-witness counter snapshots and
// segment totals, and lookahead flags.
func decodeScenario(f *fz) (k int, segs [][]GroupWitness, totals []Counters) {
	k = int(f.byte() % 12)
	nseg := 1 + int(f.byte()%6)
	segs = make([][]GroupWitness, nseg)
	totals = make([]Counters, nseg)
	for s := range segs {
		nw := int(f.byte() % 4)
		var cum Counters
		for w := 0; w < nw; w++ {
			cum.RowsScanned += int64(f.byte() % 16)
			cum.IndexProbes += int64(f.byte() % 8)
			segs[s] = append(segs[s], GroupWitness{
				Ord:           w,
				C:             cum,
				LookaheadOpen: f.byte()%4 == 0,
			})
		}
		totals[s] = cum
		totals[s].RowsScanned += int64(f.byte() % 16)
	}
	return k, segs, totals
}

// feedInterleaved replays the scenario's events into a sequencer in an
// interleaving chosen by the remaining fuzz bytes (per-segment order
// preserved, as the per-worker streams guarantee), stopping the moment
// the sequencer reports the commit complete — exactly when the driver
// cancels the racers and stops listening to them.
func feedInterleaved(f *fz, seqr *Sequencer, segs [][]GroupWitness, totals []Counters) {
	next := make([]int, len(segs)) // next event per segment; len(ws)=done marker sent, beyond=exhausted
	for {
		live := 0
		for s := range segs {
			if next[s] <= len(segs[s]) {
				live++
			}
		}
		if live == 0 {
			return
		}
		pick := int(f.byte()) % live
		for s := range segs {
			if next[s] > len(segs[s]) {
				continue
			}
			if pick > 0 {
				pick--
				continue
			}
			var finished bool
			if next[s] < len(segs[s]) {
				finished = seqr.Witness(s, segs[s][next[s]])
			} else {
				finished = seqr.SegmentDone(s, totals[s])
			}
			next[s]++
			if finished {
				return
			}
			break
		}
	}
}

func runScenario(t *testing.T, data []byte) {
	t.Helper()
	f := &fz{data: data}
	k, segs, totals := decodeScenario(f)
	want := refCommit(k, segs, totals)
	seqr := NewSequencer(k, len(segs))
	feedInterleaved(f, seqr, segs, totals)
	if !seqr.Finished() {
		t.Fatalf("sequencer not finished after all events (k=%d, segs=%v, totals=%v)", k, segs, totals)
	}
	got, err := seqr.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	if !outcomesEqual(got, want) {
		t.Fatalf("commit diverges from reference under interleaving\n got: %+v\nwant: %+v\n(k=%d, segs=%v, totals=%v)",
			got, want, k, segs, totals)
	}
}

// FuzzSpecSequencer drives the speculative sequencer with randomized
// segment layouts and event interleavings: whatever order the racing
// workers' events arrive in, the committed witnesses, the stop point
// and the committed counters must match the canonical-order reference.
func FuzzSpecSequencer(f *testing.F) {
	f.Add([]byte{})                             // k=0, one empty segment: exhaustion path
	f.Add([]byte{5, 3, 2, 1, 1, 0, 2, 2, 1, 9}) // k, multi-segment mix
	f.Add([]byte{1, 2, 0, 7, 3, 3, 3, 1, 0, 0, 0, 0, 1, 2, 3})
	f.Add([]byte{11, 6, 3, 15, 7, 0, 2, 1, 3, 9, 9, 9, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		runScenario(t, data)
	})
}

// TestSequencerCommitOrdering pins a hand-written scenario: witnesses
// from a late segment arriving first must not commit until every
// earlier segment is accounted for.
func TestSequencerCommitOrdering(t *testing.T) {
	w := func(ord int, rows int64, la bool) GroupWitness {
		return GroupWitness{Ord: ord, C: Counters{RowsScanned: rows}, LookaheadOpen: la}
	}
	seqr := NewSequencer(3, 3)

	// Segment 2 races ahead: nothing may commit.
	if seqr.Witness(2, w(0, 5, false)) {
		t.Fatal("commit finished on an out-of-order witness")
	}
	// Segment 0 yields one witness and completes at total 10.
	if seqr.Witness(0, w(0, 4, false)) {
		t.Fatal("commit finished with only one witness")
	}
	if seqr.SegmentDone(0, Counters{RowsScanned: 10}) {
		t.Fatal("commit finished before segment 1 reported")
	}
	// Segment 1 yields the 2nd witness (snapshot 7) and completes at
	// total 9; segment 2's buffered witness then becomes the 3rd and
	// stopping witness with snapshot 5.
	if seqr.Witness(1, w(0, 7, false)) {
		t.Fatal("commit finished before segment 1 completed")
	}
	if !seqr.SegmentDone(1, Counters{RowsScanned: 9}) {
		t.Fatal("commit did not finish once the third witness was orderable")
	}
	out, err := seqr.Outcome()
	if err != nil {
		t.Fatal(err)
	}
	// Useful work: seg0 total (10) + seg1 total (9) + stop snapshot (5).
	if out.Counters.RowsScanned != 24 {
		t.Fatalf("committed RowsScanned = %d, want 24", out.Counters.RowsScanned)
	}
	if out.Exhausted || out.StopSeg != 2 || len(out.Witnesses) != 3 {
		t.Fatalf("outcome = %+v, want stop in segment 2 with 3 witnesses", out)
	}
	// Events after the commit are ignored.
	if !seqr.Witness(2, w(1, 50, false)) || !seqr.SegmentDone(2, Counters{RowsScanned: 99}) {
		t.Fatal("post-commit events flipped the finished state")
	}
	out2, _ := seqr.Outcome()
	if !outcomesEqual(out, out2) {
		t.Fatalf("post-commit events changed the outcome: %+v vs %+v", out, out2)
	}
}
