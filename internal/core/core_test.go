package core_test

import (
	"context"
	"fmt"
	"testing"

	"toposearch/internal/biozon"
	"toposearch/internal/canon"
	"toposearch/internal/core"
	"toposearch/internal/graph"
	"toposearch/internal/relstore"
)

func figure3(t *testing.T) (*graph.Graph, *graph.SchemaGraph) {
	t.Helper()
	sg := biozon.SchemaGraph()
	g, err := graph.Build(biozon.Figure3DB(), sg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, sg
}

func computePD(t *testing.T) (*core.Result, *graph.Graph, *graph.SchemaGraph) {
	t.Helper()
	g, sg := figure3(t)
	res, err := core.Compute(context.Background(), g, sg, [][2]string{{biozon.Protein, biozon.DNA}}, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	return res, g, sg
}

// Expected canonical graphs of the paper's topologies (Figure 5).
func paperT1() *canon.Graph {
	return &canon.Graph{Labels: []string{"Protein", "DNA"},
		Edges: []canon.Edge{{U: 0, V: 1, Label: "encodes"}}}
}

func paperT2() *canon.Graph {
	return &canon.Graph{Labels: []string{"Protein", "Unigene", "DNA"},
		Edges: []canon.Edge{
			{U: 0, V: 1, Label: "uni_encodes"},
			{U: 1, V: 2, Label: "uni_contains"}}}
}

func paperT3() *canon.Graph { // shared Unigene
	return &canon.Graph{Labels: []string{"Protein", "Unigene", "DNA", "Protein"},
		Edges: []canon.Edge{
			{U: 0, V: 1, Label: "uni_encodes"},
			{U: 1, V: 2, Label: "uni_contains"},
			{U: 1, V: 3, Label: "uni_encodes"},
			{U: 3, V: 2, Label: "encodes"}}}
}

func paperT4() *canon.Graph { // disjoint Unigenes
	return &canon.Graph{Labels: []string{"Protein", "Unigene", "DNA", "Protein", "Unigene"},
		Edges: []canon.Edge{
			{U: 0, V: 1, Label: "uni_encodes"},
			{U: 1, V: 2, Label: "uni_contains"},
			{U: 0, V: 4, Label: "uni_encodes"},
			{U: 4, V: 3, Label: "uni_encodes"},
			{U: 3, V: 2, Label: "encodes"}}}
}

func TestPathClassesPaperExample(t *testing.T) {
	g, _ := figure3(t)
	// 3-PathEC(78,215) contains two equivalence classes: {l2,l3} and {l6}.
	classes := core.PathClasses(g, biozon.P78, biozon.D215, 3)
	if len(classes) != 2 {
		t.Fatalf("|3-PathEC(78,215)| = %d, want 2", len(classes))
	}
	sizes := map[int]int{}
	for _, paths := range classes {
		sizes[len(paths)]++
	}
	if sizes[2] != 1 || sizes[1] != 1 {
		t.Errorf("class sizes = %v, want one class of 2 and one of 1", sizes)
	}
	// 3-PathEC(44,742) has a single class of two isomorphic paths.
	classes = core.PathClasses(g, biozon.P44, biozon.D742, 3)
	if len(classes) != 1 {
		t.Fatalf("|3-PathEC(44,742)| = %d, want 1", len(classes))
	}
	for _, paths := range classes {
		if len(paths) != 2 {
			t.Errorf("class size = %d, want 2", len(paths))
		}
	}
	// Unrelated pair: empty.
	if got := core.PathClasses(g, biozon.P32, biozon.D215, 3); len(got) != 0 {
		t.Errorf("3-PathEC(32,215) = %v, want empty", got)
	}
}

func TestTopologiesOfPaperExample(t *testing.T) {
	g, _ := figure3(t)
	reg := core.NewRegistry()
	opts := core.DefaultOptions()

	// 3-Top(78,215) = {T3, T4}.
	tops := core.TopologiesOf(g, reg, biozon.P78, biozon.D215, opts)
	if len(tops) != 2 {
		t.Fatalf("|3-Top(78,215)| = %d, want 2", len(tops))
	}
	wantT3, _ := reg.Lookup(paperT3())
	wantT4, _ := reg.Lookup(paperT4())
	got := map[core.TopologyID]bool{tops[0]: true, tops[1]: true}
	if !got[wantT3] || !got[wantT4] {
		t.Errorf("3-Top(78,215) = %v, want {T3=%d, T4=%d}", tops, wantT3, wantT4)
	}

	// 3-Top(32,214) = {T1}.
	tops = core.TopologiesOf(g, reg, biozon.P32, biozon.D214, opts)
	if len(tops) != 1 {
		t.Fatalf("|3-Top(32,214)| = %d, want 1", len(tops))
	}
	if id, ok := reg.Lookup(paperT1()); !ok || id != tops[0] {
		t.Errorf("3-Top(32,214) = %v, want T1", tops)
	}

	// 3-Top(44,742) = {T2}: both paths are in one class, so T5 (their
	// union) must NOT appear, and the topology is the simple PUD path.
	tops = core.TopologiesOf(g, reg, biozon.P44, biozon.D742, opts)
	if len(tops) != 1 {
		t.Fatalf("|3-Top(44,742)| = %d, want 1 (T5 must not be a result)", len(tops))
	}
	if id, ok := reg.Lookup(paperT2()); !ok || id != tops[0] {
		t.Errorf("3-Top(44,742) = %v, want T2", tops)
	}
	if n := reg.Info(tops[0]).NumNodes; n != 3 {
		t.Errorf("T2 has %d nodes, want 3 (a 5-node result would be T5)", n)
	}
}

func TestTopologyProperties(t *testing.T) {
	g, _ := figure3(t)
	reg := core.NewRegistry()
	opts := core.DefaultOptions()
	core.TopologiesOf(g, reg, biozon.P78, biozon.D215, opts)
	core.TopologiesOf(g, reg, biozon.P32, biozon.D214, opts)

	t3, ok := reg.Lookup(paperT3())
	if !ok {
		t.Fatal("T3 not registered")
	}
	info := reg.Info(t3)
	if info.IsPath {
		t.Error("T3 classified as a path")
	}
	if len(info.Sigs) != 2 {
		t.Errorf("T3 has %d class signatures, want 2", len(info.Sigs))
	}
	if info.NumNodes != 4 || info.NumEdges != 4 {
		t.Errorf("T3 size = %d nodes/%d edges, want 4/4", info.NumNodes, info.NumEdges)
	}
	t1, _ := reg.Lookup(paperT1())
	if !reg.Info(t1).IsPath {
		t.Error("T1 not classified as a path")
	}
	if reg.Info(core.TopologyID(999)) != nil {
		t.Error("out-of-range Info should be nil")
	}
	if reg.Len() < 3 {
		t.Errorf("registry has %d topologies", reg.Len())
	}
	if reg.Info(t3).Describe() == "" {
		t.Error("empty Describe")
	}
}

func TestComputePairPD(t *testing.T) {
	res, _, _ := computePD(t)
	pd := res.Pair(biozon.Protein, biozon.DNA)
	if pd == nil {
		t.Fatal("no PairData for Protein-DNA")
	}
	// Related pairs: (32,214), (78,215), (44,742), (34,215).
	if pd.NumPairs() != 4 {
		t.Errorf("NumPairs = %d, want 4", pd.NumPairs())
	}
	// Five distinct topologies: T1..T4 plus the PD/PUD triangle of (34,215).
	if res.Reg.Len() != 5 {
		for _, info := range res.Reg.All() {
			t.Logf("  T%d: %s", info.ID, info.Canon)
		}
		t.Errorf("registry has %d topologies, want 5", res.Reg.Len())
	}
	// Per-pair results match Definitions 2-3.
	checks := []struct {
		a, b graph.NodeID
		want *canon.Graph
	}{
		{biozon.P32, biozon.D214, paperT1()},
		{biozon.P44, biozon.D742, paperT2()},
	}
	for _, c := range checks {
		tops := res.TopsOf(biozon.Protein, biozon.DNA, c.a, c.b)
		if len(tops) != 1 {
			t.Fatalf("TopsOf(%d,%d) = %v, want one topology", c.a, c.b, tops)
		}
		id, ok := res.Reg.Lookup(c.want)
		if !ok || id != tops[0] {
			t.Errorf("TopsOf(%d,%d) = %v, want %d", c.a, c.b, tops, id)
		}
	}
	tops := res.TopsOf(biozon.Protein, biozon.DNA, biozon.P78, biozon.D215)
	if len(tops) != 2 {
		t.Errorf("TopsOf(78,215) = %v, want two topologies", tops)
	}
	// Frequencies: every topology here relates exactly one pair.
	ids, freqs := pd.FrequencyRank()
	if len(ids) != 5 {
		t.Errorf("FrequencyRank returned %d ids", len(ids))
	}
	for i, f := range freqs {
		if f != 1 {
			t.Errorf("freq[%d] = %d, want 1", ids[i], f)
		}
	}
	// ClassSet of (78,215) has two signatures.
	if got := len(pd.ClassSet(biozon.P78, biozon.D215)); got != 2 {
		t.Errorf("ClassSet(78,215) size = %d, want 2", got)
	}
	if got := pd.ClassSet(biozon.P32, biozon.D215); got != nil {
		t.Errorf("ClassSet(32,215) = %v, want nil", got)
	}
}

func TestComputeSelfPairNoDuplicates(t *testing.T) {
	res, _, _ := computePDWithPairs(t, [][2]string{{biozon.Protein, biozon.Protein}})
	pd := res.Pair(biozon.Protein, biozon.Protein)
	if pd == nil {
		t.Fatal("no PairData")
	}
	// Every pair must appear with a < b and no duplicate entries.
	seen := map[string]bool{}
	for _, e := range pd.Entries {
		if e.A >= e.B {
			t.Errorf("self-pair entry not normalized: %d >= %d", e.A, e.B)
		}
		k := fmt.Sprintf("%d-%d-%d", e.A, e.B, e.TID)
		if seen[k] {
			t.Errorf("duplicate entry %s", k)
		}
		seen[k] = true
	}
	// 78 and 34 share unigene 103 (P-U-P), 78 also reaches 34 via
	// 78-103-...? and via paths through 215? 78-ue-103-ue-34 (len 2);
	// longer: 78-150-215-34? 150-uc-215, 215-enc-34: P-U-D-P (len 3);
	// 78-103-215-34 via uc,enc: P-U-D-P. So (34,78) is related.
	if len(pd.ClassSet(biozon.P34, biozon.P78)) == 0 {
		t.Error("(34,78) should be related")
	}
}

func computePDWithPairs(t *testing.T, pairs [][2]string) (*core.Result, *graph.Graph, *graph.SchemaGraph) {
	t.Helper()
	g, sg := figure3(t)
	res, err := core.Compute(context.Background(), g, sg, pairs, core.DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	return res, g, sg
}

func TestPrunePaperSemantics(t *testing.T) {
	res, _, _ := computePD(t)
	// Threshold 0: every path-shaped topology (T1, T2) is pruned; the
	// complex ones (T3, T4, triangle) survive.
	pr := res.Prune(0)
	pp := pr.Pair(biozon.Protein, biozon.DNA)
	if pp == nil {
		t.Fatal("no pruned pair data")
	}
	if len(pp.PrunedTIDs) != 2 {
		t.Fatalf("pruned %d topologies, want 2 (T1 and T2)", len(pp.PrunedTIDs))
	}
	t1, _ := res.Reg.Lookup(paperT1())
	t2, _ := res.Reg.Lookup(paperT2())
	prunedSet := map[core.TopologyID]bool{pp.PrunedTIDs[0]: true, pp.PrunedTIDs[1]: true}
	if !prunedSet[t1] || !prunedSet[t2] {
		t.Errorf("pruned = %v, want {T1=%d,T2=%d}", pp.PrunedTIDs, t1, t2)
	}
	// LeftTops: T3,T4 for (78,215) and the triangle for (34,215) = 3 rows.
	if len(pp.Left) != 3 {
		t.Errorf("LeftTops has %d rows, want 3: %+v", len(pp.Left), pp.Left)
	}
	// ExcpTops: (78,215,T2) — the paper's own example — plus
	// (34,215,T1) and (34,215,T2); (44,742) must NOT appear.
	type row struct {
		a, b graph.NodeID
		tid  core.TopologyID
	}
	want := map[row]bool{
		{biozon.P78, biozon.D215, t2}: true,
		{biozon.P34, biozon.D215, t1}: true,
		{biozon.P34, biozon.D215, t2}: true,
	}
	if len(pp.Excp) != len(want) {
		t.Fatalf("ExcpTops has %d rows, want %d: %+v", len(pp.Excp), len(want), pp.Excp)
	}
	for _, e := range pp.Excp {
		if !want[row{e.A, e.B, e.TID}] {
			t.Errorf("unexpected exception row %+v", e)
		}
		if e.A == biozon.P44 {
			t.Error("(44,742) must not be in ExcpTops")
		}
	}
	// Threshold 1: nothing has freq > 1, so nothing is pruned.
	pr1 := res.Prune(1)
	pp1 := pr1.Pair(biozon.Protein, biozon.DNA)
	if len(pp1.PrunedTIDs) != 0 {
		t.Errorf("threshold 1 pruned %v, want none", pp1.PrunedTIDs)
	}
	if len(pp1.Left) != len(res.Pair(biozon.Protein, biozon.DNA).Entries) {
		t.Error("threshold 1 LeftTops != AllTops")
	}
	if len(pp1.Excp) != 0 {
		t.Errorf("threshold 1 exceptions = %v, want none", pp1.Excp)
	}
}

func TestMaterializeTables(t *testing.T) {
	res, _, _ := computePD(t)
	pr := res.Prune(0)
	db := relstore.NewDB()
	at, err := res.MaterializeAllTops(db, biozon.Protein, biozon.DNA)
	if err != nil {
		t.Fatalf("MaterializeAllTops: %v", err)
	}
	pd := res.Pair(biozon.Protein, biozon.DNA)
	if at.NumRows() != len(pd.Entries) {
		t.Errorf("AllTops rows = %d, want %d", at.NumRows(), len(pd.Entries))
	}
	left, excp, err := pr.Materialize(db, biozon.Protein, biozon.DNA)
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	pp := pr.Pair(biozon.Protein, biozon.DNA)
	if left.NumRows() != len(pp.Left) || excp.NumRows() != len(pp.Excp) {
		t.Errorf("left/excp rows = %d/%d, want %d/%d",
			left.NumRows(), excp.NumRows(), len(pp.Left), len(pp.Excp))
	}
	scores := map[string]core.ScoreFunc{
		"freq": func(info *core.TopInfo, freq int) int64 { return int64(freq) },
		"rare": func(info *core.TopInfo, freq int) int64 { return -int64(freq) },
	}
	ti, err := res.MaterializeTopInfo(db, biozon.Protein, biozon.DNA, scores)
	if err != nil {
		t.Fatalf("MaterializeTopInfo: %v", err)
	}
	if ti.NumRows() != res.Reg.Len() {
		t.Errorf("TopInfo rows = %d, want %d", ti.NumRows(), res.Reg.Len())
	}
	if _, ok := ti.OrderedIndexOn(core.ScoreColumn("freq")); !ok {
		t.Error("no ordered index on SCORE_freq")
	}
	// Lookup by E1 works through the hash index.
	got, err := at.Lookup("E1", relstore.IntVal(biozon.P78))
	if err != nil || len(got) != 2 {
		t.Errorf("AllTops E1=78 rows = %d, want 2 (err=%v)", len(got), err)
	}
	// Unknown pairs error.
	if _, err := res.MaterializeAllTops(db, "Nope", "DNA"); err == nil {
		t.Error("unknown pair accepted")
	}
	if _, _, err := pr.Materialize(db, "Nope", "DNA"); err == nil {
		t.Error("unknown pruned pair accepted")
	}
	if _, err := res.MaterializeTopInfo(db, "Nope", "DNA", scores); err == nil {
		t.Error("unknown TopInfo pair accepted")
	}
}

func TestMaxCombinationsCap(t *testing.T) {
	g, _ := figure3(t)
	reg := core.NewRegistry()
	opts := core.Options{MaxLen: 3, MaxCombinations: 1}
	// (78,215) has 2 classes with 2x1 representatives; a budget of one
	// union can only discover one of T3/T4.
	tops := core.TopologiesOf(g, reg, biozon.P78, biozon.D215, opts)
	if len(tops) != 1 {
		t.Errorf("capped enumeration found %d topologies, want 1", len(tops))
	}
	// MaxPathsPerClass=1 drops l3, so only T3 (shared unigene, via l2) remains.
	reg2 := core.NewRegistry()
	opts2 := core.Options{MaxLen: 3, MaxCombinations: 4096, MaxPathsPerClass: 1}
	tops2 := core.TopologiesOf(g, reg2, biozon.P78, biozon.D215, opts2)
	if len(tops2) != 1 {
		t.Fatalf("MaxPathsPerClass=1 found %d topologies, want 1", len(tops2))
	}
	if id, ok := reg2.Lookup(paperT3()); !ok || id != tops2[0] {
		t.Error("MaxPathsPerClass=1 should keep the l2-based union (T3)")
	}
}

func TestWitnessFor(t *testing.T) {
	res, g, _ := computePD(t)
	t3, _ := res.Reg.Lookup(paperT3())
	t4, _ := res.Reg.Lookup(paperT4())
	w, ok := core.WitnessFor(g, res.Reg, biozon.P78, biozon.D215, t3, res.Opts)
	if !ok {
		t.Fatal("no witness for T3")
	}
	if len(w.Paths) != 2 {
		t.Errorf("T3 witness has %d paths, want 2", len(w.Paths))
	}
	// The witness for T3 must use u103 on both paths.
	w4, ok := core.WitnessFor(g, res.Reg, biozon.P78, biozon.D215, t4, res.Opts)
	if !ok {
		t.Fatal("no witness for T4")
	}
	if len(w4.Paths) != 2 {
		t.Errorf("T4 witness has %d paths, want 2", len(w4.Paths))
	}
	// T1 has no witness between 78 and 215.
	t1, _ := res.Reg.Lookup(paperT1())
	if _, ok := core.WitnessFor(g, res.Reg, biozon.P78, biozon.D215, t1, res.Opts); ok {
		t.Error("found witness for T1 between 78 and 215")
	}
	// Unknown topology or unrelated pair.
	if _, ok := core.WitnessFor(g, res.Reg, biozon.P32, biozon.D215, t3, res.Opts); ok {
		t.Error("witness for unrelated pair")
	}
	if _, ok := core.WitnessFor(g, res.Reg, biozon.P78, biozon.D215, core.TopologyID(999), res.Opts); ok {
		t.Error("witness for unknown topology")
	}
}

func TestInstances(t *testing.T) {
	res, _, _ := computePD(t)
	t2, _ := res.Reg.Lookup(paperT2())
	inst := res.Instances(biozon.Protein, biozon.DNA, t2)
	if len(inst) != 1 || inst[0] != [2]graph.NodeID{biozon.P44, biozon.D742} {
		t.Errorf("Instances(T2) = %v, want [(44,742)]", inst)
	}
	if got := res.Instances("Nope", "DNA", t2); got != nil {
		t.Errorf("Instances for unknown pair = %v", got)
	}
}

func TestWeakRules(t *testing.T) {
	sg := biozon.SchemaGraph()
	w := core.DefaultWeakRules()
	paths, err := sg.EnumeratePaths(biozon.Protein, biozon.DNA, 4)
	if err != nil {
		t.Fatal(err)
	}
	weakCount := 0
	for _, sp := range paths {
		if w.IsWeak(sg, sp) {
			weakCount++
			if sp.Len() < 4 {
				t.Errorf("short path flagged weak: %s", sp.String(sg))
			}
		}
	}
	if weakCount == 0 {
		t.Error("no weak P-D schema paths of length 4 found")
	}
	// Every length<=3 path is non-weak.
	short, _ := sg.EnumeratePaths(biozon.Protein, biozon.DNA, 3)
	for _, sp := range short {
		if w.IsWeak(sg, sp) {
			t.Errorf("length-%d path flagged weak: %s", sp.Len(), sp.String(sg))
		}
	}
	// nil rules never flag.
	var nilRules *core.WeakRules
	if nilRules.IsWeak(sg, paths[0]) {
		t.Error("nil rules flagged a path")
	}
}

func TestComputeWithWeakRulesShrinks(t *testing.T) {
	g, sg := figure3(t)
	optsAll := core.Options{MaxLen: 4, MaxCombinations: 4096}
	optsWeak := core.Options{MaxLen: 4, MaxCombinations: 4096, Weak: core.DefaultWeakRules()}
	resAll, err := core.Compute(context.Background(), g, sg, [][2]string{{biozon.Protein, biozon.DNA}}, optsAll)
	if err != nil {
		t.Fatal(err)
	}
	resWeak, err := core.Compute(context.Background(), g, sg, [][2]string{{biozon.Protein, biozon.DNA}}, optsWeak)
	if err != nil {
		t.Fatal(err)
	}
	all := len(resAll.Pair(biozon.Protein, biozon.DNA).Entries)
	weak := len(resWeak.Pair(biozon.Protein, biozon.DNA).Entries)
	if weak > all {
		t.Errorf("weak-pruned entries %d > unpruned %d", weak, all)
	}
}

func TestScoreColumnAndTableName(t *testing.T) {
	if core.ScoreColumn("freq") != "SCORE_freq" {
		t.Error("ScoreColumn wrong")
	}
	if core.TableName("AllTops", "Protein", "DNA") != "AllTops_Protein_DNA" {
		t.Error("TableName wrong")
	}
}
