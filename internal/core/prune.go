package core

import (
	"sort"

	"toposearch/internal/graph"
)

// PrunedPair is the Topology Pruning module's output for one entity-set
// pair (Section 4.2.2): the surviving LeftTops rows, the exception rows,
// and the topologies that were pruned.
type PrunedPair struct {
	ES1, ES2 string
	// Left contains the AllTops rows whose topology was not pruned.
	Left []Entry
	// Excp contains one row per (entity pair, pruned topology) where
	// the pair satisfies the pruned topology's path condition but is
	// related by a more complex topology, so it must not be reported
	// for the pruned topology at query time.
	Excp []Entry
	// PrunedTIDs lists the pruned topologies, most frequent first.
	PrunedTIDs []TopologyID
}

// Pruned is the output of the Topology Pruning module for a Result.
type Pruned struct {
	Res       *Result
	Threshold int
	Pairs     map[[2]string]*PrunedPair
}

// Pair returns the pruned data for an entity-set pair, or nil.
func (pr *Pruned) Pair(es1, es2 string) *PrunedPair {
	return pr.Pairs[[2]string{es1, es2}]
}

// Prune applies the paper's pruning strategy: for every entity-set
// pair, each topology with frequency strictly greater than threshold is
// removed from the AllTops rows, provided it has the simple path shape
// that makes its existence checkable on-line from the base data (the
// statistics of Section 4.2.1 show the frequent topologies are exactly
// of that shape). For every pruned topology T, entity pairs whose path
// set contains a path matching T but which are related by a more
// complex topology are recorded in the exception table.
func (res *Result) Prune(threshold int) *Pruned {
	pr := &Pruned{Res: res, Threshold: threshold, Pairs: make(map[[2]string]*PrunedPair)}
	for key, pd := range res.Pairs {
		pp := &PrunedPair{ES1: pd.ES1, ES2: pd.ES2}
		pruned := make(map[TopologyID]graph.PathSig)
		for tid, f := range pd.Freq {
			info := res.Reg.Info(tid)
			if f > threshold && info.IsPath && len(info.Sigs) == 1 {
				pruned[tid] = info.Sigs[0]
				pp.PrunedTIDs = append(pp.PrunedTIDs, tid)
			}
		}
		sort.Slice(pp.PrunedTIDs, func(i, j int) bool {
			fi, fj := pd.Freq[pp.PrunedTIDs[i]], pd.Freq[pp.PrunedTIDs[j]]
			if fi != fj {
				return fi > fj
			}
			return pp.PrunedTIDs[i] < pp.PrunedTIDs[j]
		})
		for _, e := range pd.Entries {
			if _, isPruned := pruned[e.TID]; !isPruned {
				pp.Left = append(pp.Left, e)
			}
		}
		// Exceptions: pair's class set contains the pruned topology's
		// signature but the pair is not related by the pruned topology
		// (its class set is bigger than just that signature).
		if len(pruned) > 0 {
			keys := make([]pairKey, 0, len(pd.classSets))
			for k := range pd.classSets {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i].a != keys[j].a {
					return keys[i].a < keys[j].a
				}
				return keys[i].b < keys[j].b
			})
			for _, k := range keys {
				sigs := pd.classSets[k]
				if len(sigs) < 2 {
					continue // related only by the simple topology (or nothing)
				}
				for _, tid := range pp.PrunedTIDs {
					if sigInSet(pruned[tid], sigs) {
						pp.Excp = append(pp.Excp, Entry{A: k.a, B: k.b, TID: tid})
					}
				}
			}
		}
		pr.Pairs[key] = pp
	}
	return pr
}

func sigInSet(s graph.PathSig, set []graph.PathSig) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}
