package core

import (
	"sort"

	"toposearch/internal/canon"
	"toposearch/internal/graph"
)

// Witness is one instance-level result: the representative paths whose
// union realizes a topology for a concrete entity pair (the
// "instance-level tuples of concrete examples" the paper reports under
// each topology).
type Witness struct {
	A, B  graph.NodeID
	TID   TopologyID
	Paths []graph.Path
}

// WitnessFor recomputes the path classes of (a, b) and searches for a
// combination of representatives whose union realizes topology tid. It
// returns the first witness in deterministic order, or ok=false when
// the pair is not related by tid.
func WitnessFor(g *graph.Graph, reg *Registry, a, b graph.NodeID, tid TopologyID, opts Options) (Witness, bool) {
	opts = opts.withDefaults()
	info := reg.Info(tid)
	if info == nil {
		return Witness{}, false
	}
	classes := PathClasses(g, a, b, opts.MaxLen)
	if len(classes) == 0 {
		return Witness{}, false
	}
	sigs := sortedSigs(classes)
	reps := make([][]graph.Path, len(sigs))
	for i, s := range sigs {
		reps[i] = classes[s]
		if opts.MaxPathsPerClass > 0 && len(reps[i]) > opts.MaxPathsPerClass {
			reps[i] = reps[i][:opts.MaxPathsPerClass]
		}
	}
	budget := opts.MaxCombinations
	choice := make([]graph.Path, len(sigs))
	var found []graph.Path
	var rec func(i int) bool
	rec = func(i int) bool {
		if budget <= 0 {
			return false
		}
		if i == len(sigs) {
			budget--
			bld := canon.NewBuilder()
			for _, p := range choice {
				addPath(g, bld, p)
			}
			if canon.Canonical(bld.Graph()) == info.Canon {
				found = make([]graph.Path, len(choice))
				for j, p := range choice {
					found[j] = p.Clone()
				}
				return true
			}
			return false
		}
		for _, p := range reps[i] {
			choice[i] = p
			if rec(i + 1) {
				return true
			}
			if budget <= 0 {
				return false
			}
		}
		return false
	}
	if !rec(0) {
		return Witness{}, false
	}
	return Witness{A: a, B: b, TID: tid, Paths: found}, true
}

// Instances returns every entity pair recorded as related by topology
// tid for the entity-set pair, in deterministic order. This is the
// lookup behind "for each topology we report all instance-level results
// that adhere to that topology".
func (res *Result) Instances(es1, es2 string, tid TopologyID) [][2]graph.NodeID {
	pd := res.Pair(es1, es2)
	if pd == nil {
		return nil
	}
	var out [][2]graph.NodeID
	for _, e := range pd.Entries {
		if e.TID == tid {
			out = append(out, [2]graph.NodeID{e.A, e.B})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
