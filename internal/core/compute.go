package core

import (
	"fmt"
	"sort"

	"toposearch/internal/graph"
)

// Entry is one row of the (All|Left)Tops tables: entity pair (A, B)
// related by topology TID.
type Entry struct {
	A, B graph.NodeID
	TID  TopologyID
}

type pairKey struct{ a, b graph.NodeID }

// PairData holds the computed topology information for one entity-set
// pair: the AllTops rows, per-topology frequencies, and the per-pair
// path-class signatures (kept so the Pruning module can derive the
// exception table).
type PairData struct {
	ES1, ES2 string
	Entries  []Entry
	Freq     map[TopologyID]int

	classSets map[pairKey][]graph.PathSig
}

// ClassSet returns the path-equivalence-class signatures relating the
// entity pair (empty when unrelated).
func (pd *PairData) ClassSet(a, b graph.NodeID) []graph.PathSig {
	return pd.classSets[pairKey{a, b}]
}

// NumPairs returns how many entity pairs are related by at least one
// topology.
func (pd *PairData) NumPairs() int { return len(pd.classSets) }

// FrequencyRank returns topology IDs sorted by descending frequency
// (ties by ID), with their frequencies — the data behind Figures 11
// and 12.
func (pd *PairData) FrequencyRank() ([]TopologyID, []int) {
	ids := make([]TopologyID, 0, len(pd.Freq))
	for id := range pd.Freq {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if pd.Freq[ids[i]] != pd.Freq[ids[j]] {
			return pd.Freq[ids[i]] > pd.Freq[ids[j]]
		}
		return ids[i] < ids[j]
	})
	freqs := make([]int, len(ids))
	for i, id := range ids {
		freqs[i] = pd.Freq[id]
	}
	return ids, freqs
}

// Result is the output of the Topology Computation module: the global
// topology registry plus per-entity-set-pair AllTops data.
type Result struct {
	Reg   *Registry
	Opts  Options
	Pairs map[[2]string]*PairData
}

// Pair returns the data for an entity-set pair, or nil.
func (res *Result) Pair(es1, es2 string) *PairData {
	return res.Pairs[[2]string{es1, es2}]
}

// TopsOf returns l-Top(a,b) as recorded for the entity-set pair.
func (res *Result) TopsOf(es1, es2 string, a, b graph.NodeID) []TopologyID {
	pd := res.Pair(es1, es2)
	if pd == nil {
		return nil
	}
	var out []TopologyID
	for _, e := range pd.Entries {
		if e.A == a && e.B == b {
			out = append(out, e.TID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Compute runs the Topology Computation module (Section 4.1) for the
// given entity-set pairs: it enumerates schema paths of length <=
// opts.MaxLen between each pair, materializes every conforming instance
// path, groups paths by entity pair and equivalence class, and derives
// each pair's l-topologies per Definition 2. Weak schema paths are
// dropped when opts.Weak is set.
func Compute(g *graph.Graph, sg *graph.SchemaGraph, pairs [][2]string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{Reg: NewRegistry(), Opts: opts, Pairs: make(map[[2]string]*PairData)}
	for _, pr := range pairs {
		pd, err := computePair(g, sg, res.Reg, pr[0], pr[1], opts)
		if err != nil {
			return nil, err
		}
		res.Pairs[pr] = pd
	}
	return res, nil
}

func computePair(g *graph.Graph, sg *graph.SchemaGraph, reg *Registry, es1, es2 string, opts Options) (*PairData, error) {
	schemaPaths, err := sg.EnumeratePaths(es1, es2, opts.MaxLen)
	if err != nil {
		return nil, fmt.Errorf("core: computing %s-%s: %w", es1, es2, err)
	}
	if opts.Weak != nil {
		kept := schemaPaths[:0]
		for _, sp := range schemaPaths {
			if !opts.Weak.IsWeak(sg, sp) {
				kept = append(kept, sp)
			}
		}
		schemaPaths = kept
	}
	pd := &PairData{
		ES1:       es1,
		ES2:       es2,
		Freq:      make(map[TopologyID]int),
		classSets: make(map[pairKey][]graph.PathSig),
	}
	selfPair := es1 == es2
	t1, ok := g.NodeTypes.Lookup(es1)
	if !ok {
		return pd, nil // entity set empty in this database
	}
	starts := append([]graph.NodeID(nil), g.NodesOfType(t1)...)
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, a := range starts {
		acc := make(map[graph.NodeID][]graph.Path)
		for _, sp := range schemaPaths {
			g.PathsAlong(sg, sp, a, func(p graph.Path) bool {
				b := p.End()
				if selfPair && b <= a {
					return true // counted from the smaller endpoint
				}
				acc[b] = append(acc[b], p.Clone())
				return true
			})
		}
		ends := make([]graph.NodeID, 0, len(acc))
		for b := range acc {
			ends = append(ends, b)
		}
		sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
		for _, b := range ends {
			classes := make(map[graph.PathSig][]graph.Path)
			for _, p := range acc[b] {
				classes[g.Signature(p)] = append(classes[g.Signature(p)], p)
			}
			for _, ps := range classes {
				sortPaths(ps)
			}
			tids := TopologiesFromClasses(g, reg, classes, opts)
			for _, tid := range tids {
				pd.Entries = append(pd.Entries, Entry{A: a, B: b, TID: tid})
				pd.Freq[tid]++
			}
			pd.classSets[pairKey{a, b}] = sortedSigs(classes)
		}
	}
	return pd, nil
}
