package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"toposearch/internal/fault"
	"toposearch/internal/graph"
)

// faultStart fires per claimed start node inside the worker pool,
// exercising worker-level failure and panic containment (chaos
// harness).
var faultStart = fault.Register("core.start")

// Entry is one row of the (All|Left)Tops tables: entity pair (A, B)
// related by topology TID.
type Entry struct {
	A, B graph.NodeID
	TID  TopologyID
}

type pairKey struct{ a, b graph.NodeID }

// PairData holds the computed topology information for one entity-set
// pair: the AllTops rows, per-topology frequencies, and the per-pair
// path-class signatures (kept so the Pruning module can derive the
// exception table).
type PairData struct {
	ES1, ES2 string
	Entries  []Entry
	Freq     map[TopologyID]int

	classSets map[pairKey][]graph.PathSig
	// cellTops records each cell's topology IDs in within-cell
	// discovery order (the order a sequential run would register them).
	// UpdateResult replays unaffected cells from it, so an incremental
	// refresh renumbers topologies exactly as a from-scratch rebuild
	// over the grown database would.
	cellTops map[pairKey][]TopologyID
}

// ClassSet returns the path-equivalence-class signatures relating the
// entity pair (empty when unrelated).
func (pd *PairData) ClassSet(a, b graph.NodeID) []graph.PathSig {
	return pd.classSets[pairKey{a, b}]
}

// NumPairs returns how many entity pairs are related by at least one
// topology.
func (pd *PairData) NumPairs() int { return len(pd.classSets) }

// FrequencyRank returns topology IDs sorted by descending frequency
// (ties by ID), with their frequencies — the data behind Figures 11
// and 12.
func (pd *PairData) FrequencyRank() ([]TopologyID, []int) {
	ids := make([]TopologyID, 0, len(pd.Freq))
	for id := range pd.Freq {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if pd.Freq[ids[i]] != pd.Freq[ids[j]] {
			return pd.Freq[ids[i]] > pd.Freq[ids[j]]
		}
		return ids[i] < ids[j]
	})
	freqs := make([]int, len(ids))
	for i, id := range ids {
		freqs[i] = pd.Freq[id]
	}
	return ids, freqs
}

// Result is the output of the Topology Computation module: the global
// topology registry plus per-entity-set-pair AllTops data.
type Result struct {
	Reg   *Registry
	Opts  Options
	Pairs map[[2]string]*PairData
}

// Pair returns the data for an entity-set pair, or nil.
func (res *Result) Pair(es1, es2 string) *PairData {
	return res.Pairs[[2]string{es1, es2}]
}

// TopsOf returns l-Top(a,b) as recorded for the entity-set pair.
func (res *Result) TopsOf(es1, es2 string, a, b graph.NodeID) []TopologyID {
	pd := res.Pair(es1, es2)
	if pd == nil {
		return nil
	}
	var out []TopologyID
	for _, e := range pd.Entries {
		if e.A == a && e.B == b {
			out = append(out, e.TID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Compute runs the Topology Computation module (Section 4.1) for the
// given entity-set pairs: it enumerates schema paths of length <=
// opts.MaxLen between each pair, materializes every conforming instance
// path, groups paths by entity pair and equivalence class, and derives
// each pair's l-topologies per Definition 2. Weak schema paths are
// dropped when opts.Weak is set.
//
// Start nodes are sharded across opts.Parallelism workers; the output —
// Entries order, Freq, class sets and registry ID assignment — is
// byte-identical at every parallelism level. Cancellation is checked at
// start-node granularity: when ctx is cancelled, Compute returns
// ctx.Err() promptly without waiting for the remaining start nodes.
func Compute(ctx context.Context, g *graph.Graph, sg *graph.SchemaGraph, pairs [][2]string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	res := &Result{Reg: NewRegistry(), Opts: opts, Pairs: make(map[[2]string]*PairData)}
	for _, pr := range pairs {
		pd, err := computePair(ctx, g, sg, res.Reg, pr[0], pr[1], opts)
		if err != nil {
			return nil, err
		}
		res.Pairs[pr] = pd
	}
	return res, nil
}

// startOutput is the per-start-node work unit result: for each end
// node b (ascending), the topology IDs in the producing worker's local
// registry (in within-cell discovery order) and the pair's class
// signatures.
type startOutput struct {
	reg   *Registry // the worker-local registry the tids refer to
	cells []cellOutput
}

type cellOutput struct {
	b    graph.NodeID
	tids []TopologyID // local registry IDs, within-cell discovery order
	sigs []graph.PathSig
}

func computePair(ctx context.Context, g *graph.Graph, sg *graph.SchemaGraph, reg *Registry, es1, es2 string, opts Options) (*PairData, error) {
	schemaPaths, err := sg.EnumeratePaths(es1, es2, opts.MaxLen)
	if err != nil {
		return nil, fmt.Errorf("core: computing %s-%s: %w", es1, es2, err)
	}
	if opts.Weak != nil {
		kept := schemaPaths[:0]
		for _, sp := range schemaPaths {
			if !opts.Weak.IsWeak(sg, sp) {
				kept = append(kept, sp)
			}
		}
		schemaPaths = kept
	}
	pd := newPairData(es1, es2)
	selfPair := es1 == es2
	t1, ok := g.NodeTypes.Lookup(es1)
	if !ok {
		return pd, nil // entity set empty in this database
	}
	starts := append([]graph.NodeID(nil), g.NodesOfType(t1)...)
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	results, err := runStarts(ctx, g, sg, starts, schemaPaths, selfPair, opts)
	if err != nil {
		return nil, fmt.Errorf("core: computing %s-%s: %w", es1, es2, err)
	}

	// Phase 2: merge in ascending start-node order. Adopting each
	// cell's topologies in within-cell discovery order replays the
	// exact registration order of a sequential run (a canonical form's
	// first global appearance is always at a cell where its worker also
	// first saw it, so the cell-local order restricted to new forms is
	// the sequential registration order), and therefore global IDs —
	// and with them Entries and Freq — come out byte-identical for
	// every parallelism level.
	for i := range results {
		mergeStart(reg, pd, starts[i], &results[i])
	}
	return pd, nil
}

func newPairData(es1, es2 string) *PairData {
	return &PairData{
		ES1:       es1,
		ES2:       es2,
		Freq:      make(map[TopologyID]int),
		classSets: make(map[pairKey][]graph.PathSig),
		cellTops:  make(map[pairKey][]TopologyID),
	}
}

// runStarts is phase 1 of the topology computation: fan the given
// start nodes out over a worker pool. Each worker interns topologies
// into its own local registry, so the hot path takes no locks; results
// land in the per-start slot, so no two goroutines share state beyond
// the atomic work counter. The incremental-update path reuses it over
// just the affected start-node frontier.
//
// Workers are failure-contained: a panic in one worker is recovered
// into a *fault.PanicError, cancels the siblings, and surfaces as the
// pool's error — it never escapes to the caller's goroutine. When both
// a real failure and the resulting cancellation are observed, the real
// failure wins.
func runStarts(ctx context.Context, g *graph.Graph, sg *graph.SchemaGraph, starts []graph.NodeID,
	schemaPaths []graph.SchemaPath, selfPair bool, opts Options) ([]startOutput, error) {
	workers := opts.Workers()
	if workers > len(starts) {
		workers = len(starts)
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]startOutput, len(starts))
	var next atomic.Int64
	var failMu sync.Mutex
	var failErr error
	fail := func(err error) {
		failMu.Lock()
		// Prefer the first non-cancellation error: a worker observing
		// ctx.Canceled after a sibling panicked must not mask the panic.
		if failErr == nil || (errors.Is(failErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			failErr = err
		}
		failMu.Unlock()
		cancel()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					fail(fault.NewPanicError("core.start", v))
				}
			}()
			localReg := NewRegistry()
			sc := g.NewScratch()
			acc := make(map[graph.NodeID][]graph.Path)
			for {
				// Cancellation is checked before claiming each start
				// node (and, more finely, inside computeStart — one
				// l=4 start node can run for seconds). ctx.Err() is
				// sticky, so an abort inside the final unit is still
				// observed here before the worker exits.
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(starts) {
					return
				}
				if err := faultStart.Hit(); err != nil {
					fail(err)
					return
				}
				results[i] = computeStart(ctx, g, sg, localReg, sc, acc, starts[i], schemaPaths, selfPair, opts)
			}
		}()
	}
	wg.Wait()
	if failErr != nil {
		return nil, failErr
	}
	return results, nil
}

// mergeStart folds one start node's recomputed cells into the global
// registry and pair data: adopt in discovery order, record the cell's
// discovery-order IDs for future incremental updates, then emit the
// sorted Entries rows.
func mergeStart(reg *Registry, pd *PairData, a graph.NodeID, ro *startOutput) {
	for _, cell := range ro.cells {
		gids := make([]TopologyID, len(cell.tids))
		for j, lid := range cell.tids {
			gids[j] = reg.Adopt(ro.reg.Info(lid))
		}
		mergeCell(pd, a, cell.b, gids, cell.sigs)
	}
}

// mergeCell records one cell given its topology IDs in discovery
// order. It takes ownership of gids (both callers build a fresh slice
// per cell).
func mergeCell(pd *PairData, a, b graph.NodeID, gids []TopologyID, sigs []graph.PathSig) {
	key := pairKey{a, b}
	pd.cellTops[key] = gids
	sorted := append([]TopologyID(nil), gids...)
	sort.Slice(sorted, func(x, y int) bool { return sorted[x] < sorted[y] })
	for _, tid := range sorted {
		pd.Entries = append(pd.Entries, Entry{A: a, B: b, TID: tid})
		pd.Freq[tid]++
	}
	pd.classSets[key] = sigs
}

// cancelCheckStride is how many materialized paths a work unit lets
// through between context checks inside the enumeration DFS.
const cancelCheckStride = 1024

// computeStart processes one start node: materialize every conforming
// instance path from a, group by end node and equivalence class, and
// derive each (a, b) cell's topologies into the worker-local registry.
// acc is the worker's reusable end-node accumulator (the same reuse
// the online SQLMethod's per-worker state applies): it is cleared here
// before use, so each worker allocates the map once instead of once
// per start node.
//
// Cancellation is additionally checked every cancelCheckStride
// materialized paths and before each (a, b) cell, so even a
// pathologically expensive start node (l=4 with weak relationships)
// aborts quickly. On abort the partial output is irrelevant: Compute
// discards everything and returns ctx.Err().
func computeStart(ctx context.Context, g *graph.Graph, sg *graph.SchemaGraph, localReg *Registry, sc *graph.Scratch,
	acc map[graph.NodeID][]graph.Path, a graph.NodeID, schemaPaths []graph.SchemaPath, selfPair bool, opts Options) startOutput {
	clear(acc)
	npaths := 0
	for _, sp := range schemaPaths {
		g.PathsAlongScratch(sc, sg, sp, a, func(p graph.Path) bool {
			npaths++
			if npaths%cancelCheckStride == 0 && ctx.Err() != nil {
				return false
			}
			b := p.End()
			if selfPair && b <= a {
				return true // counted from the smaller endpoint
			}
			acc[b] = append(acc[b], p.Clone())
			return true
		})
		if ctx.Err() != nil {
			return startOutput{reg: localReg}
		}
	}
	ends := make([]graph.NodeID, 0, len(acc))
	for b := range acc {
		ends = append(ends, b)
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
	out := startOutput{reg: localReg, cells: make([]cellOutput, 0, len(ends))}
	for _, b := range ends {
		if ctx.Err() != nil {
			return out
		}
		classes := make(map[graph.PathSig][]graph.Path)
		for _, p := range acc[b] {
			sig := g.Signature(p)
			classes[sig] = append(classes[sig], p)
		}
		for _, ps := range classes {
			sortPaths(ps)
		}
		tids := topologiesFromClassesOrdered(g, localReg, classes, opts)
		out.cells = append(out.cells, cellOutput{b: b, tids: tids, sigs: sortedSigs(classes)})
	}
	return out
}
