package core_test

import (
	"context"
	"reflect"
	"testing"

	"toposearch/internal/biozon"
	"toposearch/internal/core"
	"toposearch/internal/delta"
	"toposearch/internal/graph"
)

// fingerprint flattens everything observable about a computed pair so
// incremental and from-scratch results can be compared byte for byte:
// the registry's canonical forms in ID order, every Entries row, every
// frequency, and every pair's class-signature set.
func fingerprint(t *testing.T, res *core.Result, es1, es2 string) []string {
	t.Helper()
	var out []string
	for _, info := range res.Reg.All() {
		out = append(out, "reg|"+info.Canon)
	}
	pd := res.Pair(es1, es2)
	if pd == nil {
		return out
	}
	for _, e := range pd.Entries {
		out = append(out, "entry|"+string(rune(e.A))+"|"+string(rune(e.B))+"|"+string(rune(e.TID)))
	}
	ids, freqs := pd.FrequencyRank()
	for i, id := range ids {
		out = append(out, "freq|"+string(rune(id))+"|"+string(rune(freqs[i])))
	}
	seen := map[[2]graph.NodeID]bool{}
	for _, e := range pd.Entries {
		k := [2]graph.NodeID{e.A, e.B}
		if seen[k] {
			continue
		}
		seen[k] = true
		for _, sig := range pd.ClassSet(e.A, e.B) {
			out = append(out, "cls|"+string(rune(e.A))+"|"+string(rune(e.B))+"|"+string(sig))
		}
	}
	return out
}

// growthBatch stages a batch that exercises every update shape: new
// entities on both sides of the pair, edges that touch existing hubs,
// edges incident to the new entities, and a planted triangle (the
// pruning-exception structure).
func growthBatch(offset, n int) delta.Batch {
	var b delta.Batch
	for j := 0; j < n; j++ {
		i := offset + j
		p := int64(biozon.BaseProtein + 900000 + i)
		d := int64(biozon.BaseDNA + 900000 + i)
		u := int64(biozon.BaseUnigene + 900000 + i)
		b = append(b,
			delta.Entity(biozon.Protein, p, map[string]string{"desc": "novel enzyme kwsel50"}),
			delta.Entity(biozon.DNA, d, map[string]string{"type": "mRNA", "desc": "novel dna kwsel50"}),
			delta.Entity(biozon.Unigene, u, map[string]string{"desc": "novel cluster"}),
			// Triangle over the new entities plus links into the old graph.
			delta.Relationship(biozon.RelEncodes, p, d),
			delta.Relationship(biozon.RelUniEncodes, u, p),
			delta.Relationship(biozon.RelUniContains, u, d),
			delta.Relationship(biozon.RelEncodes, p, int64(biozon.BaseDNA+i%40)),
			delta.Relationship(biozon.RelUniEncodes, int64(biozon.BaseUnigene+i%20), int64(biozon.BaseProtein+i%30)),
		)
	}
	return b
}

// TestUpdateResultMatchesRebuild grows a synthetic database twice and
// checks that incremental maintenance — recomputing only the affected
// start-node frontier — produces a Result byte-identical to a full
// from-scratch Compute over the grown graph, at several parallelism
// levels and across chained updates.
func TestUpdateResultMatchesRebuild(t *testing.T) {
	ctx := context.Background()
	const es1, es2 = biozon.Protein, biozon.DNA
	pairs := [][2]string{{es1, es2}}
	cfg := biozon.DefaultConfig(1)
	cfg.Seed = 7

	for _, workers := range []int{1, 4, 8} {
		opts := core.Options{MaxLen: 3, MaxCombinations: 4096, MaxPathsPerClass: 64, Parallelism: workers}
		db := biozon.Generate(cfg)
		sg := biozon.SchemaGraph()
		g, err := graph.Build(db, sg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Compute(ctx, g, sg, pairs, opts)
		if err != nil {
			t.Fatal(err)
		}
		ap := delta.NewApplier(db, sg)
		offset := 0
		for round, size := range []int{3, 8} {
			g2, applied, err := ap.Apply(g, growthBatch(offset, size))
			offset += size
			if err != nil {
				t.Fatalf("workers=%d round %d: %v", workers, round, err)
			}
			if len(applied.Edges) == 0 {
				t.Fatalf("workers=%d round %d: batch applied no edges", workers, round)
			}
			affected := delta.AffectedStarts(g2, es1, opts.MaxLen, applied.Edges)
			if len(affected) == 0 {
				t.Fatalf("workers=%d round %d: no affected starts", workers, round)
			}
			inc, err := core.UpdateResult(ctx, g2, sg, res, es1, es2, affected, opts)
			if err != nil {
				t.Fatal(err)
			}
			full, err := core.Compute(ctx, g2, sg, pairs, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, want := fingerprint(t, inc, es1, es2), fingerprint(t, full, es1, es2)
			if !reflect.DeepEqual(got, want) {
				i := 0
				for i < len(got) && i < len(want) && got[i] == want[i] {
					i++
				}
				t.Fatalf("workers=%d round %d: incremental diverges from rebuild at element %d/%d vs %d",
					workers, round, i, len(got), len(want))
			}
			// The frontier must be a strict subset of all starts, or the
			// incremental path saved nothing.
			if nstarts := len(g2.NodesOfType(mustType(t, g2, es1))); len(affected) >= nstarts {
				t.Fatalf("workers=%d round %d: affected frontier %d covers all %d starts",
					workers, round, len(affected), nstarts)
			}
			g, res = g2, inc // chain the next round onto the incremental result
		}
	}
}

func mustType(t *testing.T, g *graph.Graph, es string) graph.TypeID {
	t.Helper()
	id, ok := g.NodeTypes.Lookup(es)
	if !ok {
		t.Fatalf("no node type %s", es)
	}
	return id
}

// TestUpdateResultNoEdges checks the degenerate refresh: an empty
// affected frontier (entity-only growth) must reproduce the previous
// result exactly.
func TestUpdateResultNoEdges(t *testing.T) {
	ctx := context.Background()
	const es1, es2 = biozon.Protein, biozon.DNA
	db := biozon.Generate(biozon.DefaultConfig(1))
	sg := biozon.SchemaGraph()
	g, err := graph.Build(db, sg)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{MaxLen: 3, MaxCombinations: 4096, MaxPathsPerClass: 64, Parallelism: 2}
	res, err := core.Compute(ctx, g, sg, [][2]string{{es1, es2}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := core.UpdateResult(ctx, g, sg, res, es1, es2, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, inc, es1, es2), fingerprint(t, res, es1, es2); !reflect.DeepEqual(got, want) {
		t.Fatal("empty update diverges from the original result")
	}
}
