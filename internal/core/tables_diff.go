package core

import (
	"fmt"
	"sort"

	"toposearch/internal/graph"
	"toposearch/internal/relstore"
)

// TableDiff reports how a diff-aware materializer produced one table
// generation.
type TableDiff struct {
	// Mode is "reused" (old table carried over wholesale), "spliced"
	// (unchanged row runs bulk-copied, changed runs re-encoded), or
	// "rebuilt" (full rematerialization fallback).
	Mode string
	// RowsChanged counts rows encoded fresh (spliced mode only).
	RowsChanged int
	// Rows is the total row count of the new generation.
	Rows int
}

// Reused reports whether the previous generation's table was carried
// over unchanged.
func (d TableDiff) Reused() bool { return d.Mode == "reused" }

func (d TableDiff) String() string {
	if d.Mode == "spliced" {
		return fmt.Sprintf("spliced(%d/%d)", d.RowsChanged, d.Rows)
	}
	return fmt.Sprintf("%s(%d)", d.Mode, d.Rows)
}

// span is one stretch of output rows: either a bulk copy of old-table
// rows [lo, hi) or a fresh encoding of newEntries[lo:hi].
type span struct {
	fromOld bool
	lo, hi  int32
}

// spliceEntries assembles the next generation of a tops table from the
// previous one. Both generations' rows are grouped into runs by start
// entity A (all three tops tables are emitted in ascending-A order), and
// the incremental-update contract (core.UpdateResult replays unaffected
// starts from the old generation's cell data) guarantees runs at
// unaffected starts are identical. The splice therefore bulk-copies
// unaffected runs from the old table's sealed arrays and re-encodes
// only affected runs — and when even those came out identical, the old
// table is reused wholesale.
//
// Every copied run is verified against newEntries before trusting it;
// any contract violation returns ok=false and the caller falls back to
// a full rebuild, so the output is byte-identical to buildEntries in
// all cases.
func spliceEntries(db *relstore.DB, name string, old *relstore.Table, oldEntries, newEntries []Entry, affected map[graph.NodeID]bool) (*relstore.Table, TableDiff, bool, error) {
	if old == nil || old.NumRows() != len(oldEntries) {
		return nil, TableDiff{}, false, nil
	}
	var spans []span
	changed := 0
	oi, ni := 0, 0
	addSpan := func(fromOld bool, lo, hi int) {
		if hi <= lo {
			return
		}
		if n := len(spans); n > 0 && spans[n-1].fromOld == fromOld && spans[n-1].hi == int32(lo) {
			spans[n-1].hi = int32(hi)
			return
		}
		spans = append(spans, span{fromOld: fromOld, lo: int32(lo), hi: int32(hi)})
	}
	for oi < len(oldEntries) || ni < len(newEntries) {
		switch {
		case ni == len(newEntries) || (oi < len(oldEntries) && oldEntries[oi].A < newEntries[ni].A):
			// Start present only in the old generation: its rows were
			// removed, which is only legal at an affected start.
			a := oldEntries[oi].A
			if !affected[a] {
				return nil, TableDiff{}, false, nil
			}
			for oi < len(oldEntries) && oldEntries[oi].A == a {
				oi++
			}
		case oi == len(oldEntries) || newEntries[ni].A < oldEntries[oi].A:
			// Start present only in the new generation.
			a := newEntries[ni].A
			if !affected[a] {
				return nil, TableDiff{}, false, nil
			}
			lo := ni
			for ni < len(newEntries) && newEntries[ni].A == a {
				ni++
			}
			addSpan(false, lo, ni)
			changed += ni - lo
		default:
			a := oldEntries[oi].A
			olo, nlo := oi, ni
			for oi < len(oldEntries) && oldEntries[oi].A == a {
				oi++
			}
			for ni < len(newEntries) && newEntries[ni].A == a {
				ni++
			}
			same := oi-olo == ni-nlo
			if same {
				for k := 0; k < oi-olo; k++ {
					if oldEntries[olo+k] != newEntries[nlo+k] {
						same = false
						break
					}
				}
			}
			switch {
			case same:
				addSpan(true, olo, oi)
			case affected[a]:
				addSpan(false, nlo, ni)
				changed += ni - nlo
			default:
				// Unaffected run differs: contract violation.
				return nil, TableDiff{}, false, nil
			}
		}
	}
	if changed == 0 && len(oldEntries) == len(newEntries) {
		return old, TableDiff{Mode: "reused", Rows: len(newEntries)}, true, nil
	}
	b, err := relstore.NewIntTableBuilder(topsSchema(name))
	if err != nil {
		return nil, TableDiff{}, false, err
	}
	b.Grow(len(newEntries))
	for _, sp := range spans {
		if sp.fromOld {
			b.AppendRange(old, sp.lo, sp.hi)
			continue
		}
		for _, e := range newEntries[sp.lo:sp.hi] {
			b.AppendInts(int64(e.A), int64(e.B), int64(e.TID))
		}
	}
	t, err := b.Build()
	if err != nil {
		return nil, TableDiff{}, false, err
	}
	if err := indexTops(t); err != nil {
		return nil, TableDiff{}, false, err
	}
	db.PutTable(t)
	return t, TableDiff{Mode: "spliced", RowsChanged: changed, Rows: len(newEntries)}, true, nil
}

// materializeEntriesDiff splices when possible and falls back to a full
// bulk rebuild otherwise.
func materializeEntriesDiff(db *relstore.DB, name string, old *relstore.Table, oldEntries, newEntries []Entry, affected map[graph.NodeID]bool) (*relstore.Table, TableDiff, error) {
	t, d, ok, err := spliceEntries(db, name, old, oldEntries, newEntries, affected)
	if err != nil {
		return nil, TableDiff{}, err
	}
	if ok {
		return t, d, nil
	}
	t, err = buildEntries(db, name, newEntries)
	return t, TableDiff{Mode: "rebuilt", Rows: len(newEntries)}, err
}

// MaterializeAllTopsDiff is the diff-aware counterpart of
// MaterializeAllTops: oldRes/old are the previous generation's computed
// data and table, affected the start-entity frontier of the update.
func (res *Result) MaterializeAllTopsDiff(db *relstore.DB, es1, es2 string, oldRes *Result, old *relstore.Table, affected map[graph.NodeID]bool) (*relstore.Table, TableDiff, error) {
	pd := res.Pair(es1, es2)
	if pd == nil {
		return nil, TableDiff{}, fmt.Errorf("core: no computed data for pair %s-%s", es1, es2)
	}
	var oldEntries []Entry
	if oldRes != nil {
		if opd := oldRes.Pair(es1, es2); opd != nil {
			oldEntries = opd.Entries
		}
	}
	return materializeEntriesDiff(db, TableName("AllTops", es1, es2), old, oldEntries, pd.Entries, affected)
}

// PrunedStable reports whether both generations pruned exactly the same
// topologies in the same (frequency-rank) order for the pair — the
// precondition for splicing LeftTops and ExcpTops, whose rows depend on
// the global pruned set, not just per-start cells.
func (pr *Pruned) PrunedStable(oldPr *Pruned, es1, es2 string) bool {
	if oldPr == nil {
		return false
	}
	pp, opp := pr.Pair(es1, es2), oldPr.Pair(es1, es2)
	if pp == nil || opp == nil || len(pp.PrunedTIDs) != len(opp.PrunedTIDs) {
		return false
	}
	for i, tid := range pp.PrunedTIDs {
		if opp.PrunedTIDs[i] != tid {
			return false
		}
	}
	return true
}

// MaterializeDiff is the diff-aware counterpart of Materialize. When
// the pruned set is unstable the per-start-run equality argument breaks
// for LeftTops/ExcpTops (a verdict flip rewrites rows at unaffected
// starts), so both tables are fully rebuilt.
func (pr *Pruned) MaterializeDiff(db *relstore.DB, es1, es2 string, oldPr *Pruned, oldLeft, oldExcp *relstore.Table, affected map[graph.NodeID]bool) (left, excp *relstore.Table, dl, de TableDiff, err error) {
	pp := pr.Pair(es1, es2)
	if pp == nil {
		return nil, nil, TableDiff{}, TableDiff{}, fmt.Errorf("core: no pruned data for pair %s-%s", es1, es2)
	}
	if !pr.PrunedStable(oldPr, es1, es2) {
		left, excp, err = pr.Materialize(db, es1, es2)
		dl = TableDiff{Mode: "rebuilt", Rows: len(pp.Left)}
		de = TableDiff{Mode: "rebuilt", Rows: len(pp.Excp)}
		return left, excp, dl, de, err
	}
	opp := oldPr.Pair(es1, es2)
	left, dl, err = materializeEntriesDiff(db, TableName("LeftTops", es1, es2), oldLeft, opp.Left, pp.Left, affected)
	if err != nil {
		return nil, nil, TableDiff{}, TableDiff{}, err
	}
	excp, de, err = materializeEntriesDiff(db, TableName("ExcpTops", es1, es2), oldExcp, opp.Excp, pp.Excp, affected)
	if err != nil {
		return nil, nil, TableDiff{}, TableDiff{}, err
	}
	return left, excp, dl, de, nil
}

// MaterializeTopInfoDiff is the diff-aware counterpart of
// MaterializeTopInfo. Rows are keyed by TID in ascending order; a row
// changes only when its frequency changed (scores are functions of the
// immutable TopInfo and the frequency), so unchanged-frequency rows are
// bulk-copied from the old table and only drifted/new topologies are
// re-scored. Callers must only pass old when the topology registry is
// stable across the generations (same TID ⇒ same canonical topology);
// pass old == nil to force a rebuild.
func (res *Result) MaterializeTopInfoDiff(db *relstore.DB, es1, es2 string, scores map[string]ScoreFunc, oldRes *Result, old *relstore.Table) (*relstore.Table, TableDiff, error) {
	pd := res.Pair(es1, es2)
	if pd == nil {
		return nil, TableDiff{}, fmt.Errorf("core: no computed data for pair %s-%s", es1, es2)
	}
	rankings := sortedRankings(scores)
	var oldFreq map[TopologyID]int
	if oldRes != nil {
		if opd := oldRes.Pair(es1, es2); opd != nil {
			oldFreq = opd.Freq
		}
	}
	rebuild := func() (*relstore.Table, TableDiff, error) {
		t, err := res.MaterializeTopInfo(db, es1, es2, scores)
		return t, TableDiff{Mode: "rebuilt", Rows: len(pd.Freq)}, err
	}
	if old == nil || oldFreq == nil ||
		old.NumRows() != len(oldFreq) ||
		len(old.Schema.Cols) != 6+len(rankings) {
		return rebuild()
	}
	oldTids := make([]TopologyID, 0, len(oldFreq))
	for tid := range oldFreq {
		oldTids = append(oldTids, tid)
	}
	sort.Slice(oldTids, func(i, j int) bool { return oldTids[i] < oldTids[j] })
	newTids := make([]TopologyID, 0, len(pd.Freq))
	for tid := range pd.Freq {
		newTids = append(newTids, tid)
	}
	sort.Slice(newTids, func(i, j int) bool { return newTids[i] < newTids[j] })

	var spans []span
	changed := 0
	addSpan := func(fromOld bool, lo, hi int) {
		if n := len(spans); n > 0 && spans[n-1].fromOld == fromOld && spans[n-1].hi == int32(lo) {
			spans[n-1].hi = int32(hi)
			return
		}
		spans = append(spans, span{fromOld: fromOld, lo: int32(lo), hi: int32(hi)})
	}
	oi, ni := 0, 0
	for oi < len(oldTids) || ni < len(newTids) {
		switch {
		case ni == len(newTids) || (oi < len(oldTids) && oldTids[oi] < newTids[ni]):
			// Topology no longer observed for the pair: its row drops out.
			changed++
			oi++
		case oi == len(oldTids) || newTids[ni] < oldTids[oi]:
			changed++
			addSpan(false, ni, ni+1)
			ni++
		default:
			if oldFreq[oldTids[oi]] == pd.Freq[newTids[ni]] {
				addSpan(true, oi, oi+1)
			} else {
				changed++
				addSpan(false, ni, ni+1)
			}
			oi++
			ni++
		}
	}
	if changed == 0 && len(oldTids) == len(newTids) {
		return old, TableDiff{Mode: "reused", Rows: len(newTids)}, nil
	}
	b, err := relstore.NewIntTableBuilder(topInfoSchema(TableName("TopInfo", es1, es2), rankings))
	if err != nil {
		return nil, TableDiff{}, err
	}
	b.Grow(len(newTids))
	row := make([]int64, 0, 6+len(rankings))
	fresh := 0
	for _, sp := range spans {
		if sp.fromOld {
			b.AppendRange(old, sp.lo, sp.hi)
			continue
		}
		for _, tid := range newTids[sp.lo:sp.hi] {
			b.AppendInts(res.topInfoRow(row, tid, pd.Freq[tid], rankings, scores)...)
			fresh++
		}
	}
	t, err := b.Build()
	if err != nil {
		return nil, TableDiff{}, err
	}
	if err := indexTopInfo(t, rankings); err != nil {
		return nil, TableDiff{}, err
	}
	db.PutTable(t)
	return t, TableDiff{Mode: "spliced", RowsChanged: fresh, Rows: len(newTids)}, nil
}
