package core_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"toposearch/internal/biozon"
	"toposearch/internal/core"
	"toposearch/internal/graph"
)

func syntheticGraph(t *testing.T, scale int) (*graph.Graph, *graph.SchemaGraph) {
	t.Helper()
	sg := biozon.SchemaGraph()
	g, err := graph.Build(biozon.Generate(biozon.DefaultConfig(scale)), sg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, sg
}

// registryRendering captures everything observable about a registry:
// the canonical forms, class signatures, and structural flags, in ID
// order.
func registryRendering(t *testing.T, r *core.Registry) []string {
	t.Helper()
	var out []string
	for _, info := range r.All() {
		line := info.Canon
		for _, s := range info.Sigs {
			line += " / " + string(s)
		}
		if info.IsPath {
			line += " [path]"
		}
		out = append(out, line)
	}
	return out
}

// TestComputeParallelDeterminism asserts the tentpole guarantee: the
// offline computation is byte-identical at every parallelism level —
// same Entries in the same order, same frequencies, same class sets,
// and the same registry with the same ID assignment. Run under -race
// this also exercises the worker pool for data races.
func TestComputeParallelDeterminism(t *testing.T) {
	g, sg := syntheticGraph(t, 1)
	pairs := [][2]string{
		{biozon.Protein, biozon.DNA},
		{biozon.DNA, biozon.Unigene},
		{biozon.Protein, biozon.Protein}, // self pair: counted from the smaller endpoint
	}
	compute := func(par int) *core.Result {
		opts := core.DefaultOptions()
		opts.Parallelism = par
		res, err := core.Compute(context.Background(), g, sg, pairs, opts)
		if err != nil {
			t.Fatalf("Compute(parallelism=%d): %v", par, err)
		}
		return res
	}
	seq := compute(1)
	for _, par := range []int{2, 8} {
		got := compute(par)
		if want, have := registryRendering(t, seq.Reg), registryRendering(t, got.Reg); !reflect.DeepEqual(want, have) {
			t.Fatalf("parallelism %d: registry diverged:\nseq: %q\npar: %q", par, want, have)
		}
		for _, pr := range pairs {
			pdSeq, pdPar := seq.Pair(pr[0], pr[1]), got.Pair(pr[0], pr[1])
			if !reflect.DeepEqual(pdSeq.Entries, pdPar.Entries) {
				t.Fatalf("parallelism %d: %v Entries diverged (%d vs %d rows)",
					par, pr, len(pdSeq.Entries), len(pdPar.Entries))
			}
			if !reflect.DeepEqual(pdSeq.Freq, pdPar.Freq) {
				t.Fatalf("parallelism %d: %v Freq diverged", par, pr)
			}
			if pdSeq.NumPairs() != pdPar.NumPairs() {
				t.Fatalf("parallelism %d: %v NumPairs %d vs %d",
					par, pr, pdSeq.NumPairs(), pdPar.NumPairs())
			}
			for _, e := range pdSeq.Entries {
				if !reflect.DeepEqual(pdSeq.ClassSet(e.A, e.B), pdPar.ClassSet(e.A, e.B)) {
					t.Fatalf("parallelism %d: %v ClassSet(%d,%d) diverged", par, pr, e.A, e.B)
				}
			}
		}
	}
	if len(seq.Pair(biozon.Protein, biozon.DNA).Entries) == 0 {
		t.Fatal("determinism test vacuous: no Protein-DNA entries computed")
	}
}

// TestComputeCancellation asserts that an already-cancelled context
// aborts the computation at the first start node with ctx.Err().
func TestComputeCancellation(t *testing.T) {
	g, sg := syntheticGraph(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := core.DefaultOptions()
	opts.Parallelism = 4
	_, err := core.Compute(ctx, g, sg, [][2]string{{biozon.Protein, biozon.DNA}}, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Compute on cancelled ctx: got %v, want context.Canceled", err)
	}
}
