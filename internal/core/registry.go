// Package core implements the paper's primary contribution: the
// topology algebra. It computes l-path equivalence classes
// (Definition 1), l-topologies for entity pairs (Definition 2), and
// l-topology query results (Definition 3); it runs the offline Topology
// Computation module that builds the AllTops table (Section 4.1) and
// the Topology Pruning module that derives LeftTops and ExcpTops
// (Section 4.2); and it materializes all of these as relational tables
// for the query-evaluation methods.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"toposearch/internal/canon"
	"toposearch/internal/graph"
)

// TopologyID densely numbers registered topologies.
type TopologyID int32

// TopInfo describes one registered topology (the paper's TopInfo table).
type TopInfo struct {
	ID       TopologyID
	Canon    string       // canonical form; the identity of the topology
	Graph    *canon.Graph // a representative labeled graph
	NumNodes int
	NumEdges int
	// Sigs are the path-equivalence-class signatures whose union first
	// produced this topology, sorted. For a path-shaped topology this
	// is the single signature of its path class.
	Sigs []graph.PathSig
	// IsPath reports whether the topology is a simple path — the
	// "simple structure" family that the pruning strategy targets
	// (Section 4.2.2).
	IsPath bool
}

// Describe renders a short human-readable structure summary, e.g.
// "Protein,Unigene,DNA; 0-1:uni_encodes,1-2:uni_contains".
func (ti *TopInfo) Describe() string {
	return strings.ReplaceAll(ti.Canon, ";", " ; ")
}

// Registry interns topologies by canonical form and assigns IDs. All
// methods are safe for concurrent use; note however that the order in
// which topologies are first registered determines their IDs, so
// callers that need deterministic IDs under parallelism must impose a
// deterministic registration order themselves. The parallel Compute
// path does this with a two-phase design: workers intern into local
// registries, and the results are merged into the global registry in
// sorted start-node order via Adopt.
type Registry struct {
	mu      sync.RWMutex
	byCanon map[string]TopologyID
	infos   []*TopInfo
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byCanon: make(map[string]TopologyID)}
}

// Register interns the graph (built as the union of one representative
// path per equivalence class with signatures sigs) and returns its
// topology ID. Re-registering an isomorphic graph returns the existing
// ID.
func (r *Registry) Register(g *canon.Graph, sigs []graph.PathSig) TopologyID {
	c := canon.Canonical(g) // compute outside the lock; it is expensive
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byCanon[c]; ok {
		return id
	}
	sorted := append([]graph.PathSig(nil), sigs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return r.add(&TopInfo{
		Canon:    c,
		Graph:    g,
		NumNodes: g.NumNodes(),
		NumEdges: g.NumEdges(),
		Sigs:     sorted,
		IsPath:   g.IsPath(),
	})
}

// Adopt interns a topology already described by another registry's
// TopInfo, reusing its precomputed canonical form instead of
// recanonicalizing. This is the merge half of the two-phase parallel
// interning design: workers Register into worker-local registries, then
// the merge loop Adopts each local entry into the global registry in a
// deterministic order.
func (r *Registry) Adopt(info *TopInfo) TopologyID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byCanon[info.Canon]; ok {
		return id
	}
	clone := *info
	return r.add(&clone)
}

// add appends a new TopInfo under r.mu; info.Canon must be absent.
func (r *Registry) add(info *TopInfo) TopologyID {
	id := TopologyID(len(r.infos))
	info.ID = id
	r.infos = append(r.infos, info)
	r.byCanon[info.Canon] = id
	return id
}

// Lookup finds the ID of a topology isomorphic to g.
func (r *Registry) Lookup(g *canon.Graph) (TopologyID, bool) {
	c := canon.Canonical(g)
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byCanon[c]
	return id, ok
}

// Info returns the TopInfo for an ID. The returned TopInfo is immutable
// after registration.
func (r *Registry) Info(id TopologyID) *TopInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(r.infos) {
		return nil
	}
	return r.infos[id]
}

// Len returns the number of registered topologies.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.infos)
}

// All returns a snapshot of every TopInfo in ID order (the TopInfos are
// shared and immutable; do not mutate).
func (r *Registry) All() []*TopInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*TopInfo(nil), r.infos...)
}

// String renders a summary.
func (r *Registry) String() string {
	return fmt.Sprintf("Registry(%d topologies)", r.Len())
}
