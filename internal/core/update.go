package core

import (
	"context"
	"fmt"
	"sort"

	"toposearch/internal/graph"
)

// UpdateResult incrementally maintains a computed Result after the
// data graph grew: only the start nodes in the affected frontier (plus
// any brand-new start nodes in it) are recomputed — sharded over the
// same worker pool as the offline phase — and their cells are merged
// with the untouched cells of the previous run into a fresh Result.
//
// The merge replays every cell, old and new, in the canonical order of
// a sequential from-scratch run — ascending start node, ascending end
// node, within-cell discovery order — adopting each topology's
// precomputed canonical form into a fresh registry. A topology's new
// ID is therefore assigned at its first appearance in exactly the
// order a full rebuild over the grown graph would assign it, so the
// returned Result (registry numbering, Entries, Freq, class sets) is
// byte-identical to Compute over the same graph, at any parallelism,
// while only paying path enumeration for the affected frontier.
//
// The previous Result is never mutated: queries holding it keep
// consistent state.
func UpdateResult(ctx context.Context, g *graph.Graph, sg *graph.SchemaGraph, old *Result,
	es1, es2 string, affected map[graph.NodeID]bool, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	oldPD := old.Pair(es1, es2)
	if oldPD == nil {
		return nil, fmt.Errorf("core: updating %s-%s: pair was never computed", es1, es2)
	}
	schemaPaths, err := sg.EnumeratePaths(es1, es2, opts.MaxLen)
	if err != nil {
		return nil, fmt.Errorf("core: updating %s-%s: %w", es1, es2, err)
	}
	if opts.Weak != nil {
		kept := schemaPaths[:0]
		for _, sp := range schemaPaths {
			if !opts.Weak.IsWeak(sg, sp) {
				kept = append(kept, sp)
			}
		}
		schemaPaths = kept
	}

	res := &Result{Reg: NewRegistry(), Opts: opts, Pairs: make(map[[2]string]*PairData)}
	pd := newPairData(es1, es2)
	res.Pairs[[2]string{es1, es2}] = pd

	selfPair := es1 == es2
	t1, ok := g.NodeTypes.Lookup(es1)
	if !ok {
		return res, nil // entity set empty in this database
	}
	starts := append([]graph.NodeID(nil), g.NodesOfType(t1)...)
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	// Phase 1: recompute only the affected frontier, in ascending order,
	// on the worker pool.
	var dirty []graph.NodeID
	for _, a := range starts {
		if affected[a] {
			dirty = append(dirty, a)
		}
	}
	recomputed, err := runStarts(ctx, g, sg, dirty, schemaPaths, selfPair, opts)
	if err != nil {
		return nil, fmt.Errorf("core: updating %s-%s: %w", es1, es2, err)
	}

	// Phase 2: replay all starts in ascending order, taking affected
	// ones from the recomputation and the rest from the previous run's
	// retained per-cell discovery orders.
	oldEntries := oldPD.Entries
	oi := 0 // cursor into oldEntries, which are (start asc, end asc) ordered
	di := 0 // cursor into dirty/recomputed
	for _, a := range starts {
		if affected[a] {
			// Skip this start's old entries; its cells are replaced.
			for oi < len(oldEntries) && oldEntries[oi].A == a {
				oi++
			}
			mergeStart(res.Reg, pd, a, &recomputed[di])
			di++
			continue
		}
		// Unaffected: replay the old cells. Their content is unchanged —
		// no path of length <= MaxLen from this start can reach a new
		// edge — so adopting the retained discovery order reproduces the
		// sequential registration order over the grown graph.
		for oi < len(oldEntries) && oldEntries[oi].A == a {
			b := oldEntries[oi].B
			for oi < len(oldEntries) && oldEntries[oi].A == a && oldEntries[oi].B == b {
				oi++
			}
			key := pairKey{a, b}
			oldIDs := oldPD.cellTops[key]
			gids := make([]TopologyID, len(oldIDs))
			for j, lid := range oldIDs {
				gids[j] = res.Reg.Adopt(old.Reg.Info(lid))
			}
			mergeCell(pd, a, b, gids, oldPD.classSets[key])
		}
	}
	if oi != len(oldEntries) {
		// Start nodes never disappear (the mutation model is insert-only),
		// so every old entry must have been consumed.
		return nil, fmt.Errorf("core: updating %s-%s: %d stale entries for start nodes missing from the graph",
			es1, es2, len(oldEntries)-oi)
	}
	return res, nil
}
