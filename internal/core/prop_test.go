package core_test

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"toposearch/internal/biozon"
	"toposearch/internal/core"
	"toposearch/internal/graph"
)

// randomEnv builds a small random database and computes Protein-DNA
// topologies for it.
func randomEnv(seed int64) (*core.Result, *graph.Graph, error) {
	cfg := biozon.GenConfig{
		Seed:     seed,
		Proteins: 40, DNAs: 50, Unigenes: 25, Interactions: 20,
		Families: 10, Pathways: 5, Structures: 10,
		Encodes: 60, UniEncodes: 70, UniContains: 65,
		PInteract: 50, DInteract: 30, Belongs: 40, Manifest: 20, PathElements: 10,
		Skew: 1.3, MaxDegree: 12, SelfRegulating: 2, Triangles: 3,
	}
	db := biozon.Generate(cfg)
	sg := biozon.SchemaGraph()
	g, err := graph.Build(db, sg)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.Compute(context.Background(), g, sg, [][2]string{{biozon.Protein, biozon.DNA}}, core.DefaultOptions())
	return res, g, err
}

// TestPropPruningLossless: for every pruning threshold, the pruned
// representation (LeftTops + per-pruned-topology path condition minus
// exceptions) reconstructs the AllTops relation exactly. This is the
// correctness contract of Section 4.2.2.
func TestPropPruningLossless(t *testing.T) {
	check := func(seedRaw uint8, thrRaw uint8) bool {
		res, _, err := randomEnv(int64(seedRaw))
		if err != nil {
			t.Fatalf("env: %v", err)
		}
		pd := res.Pair(biozon.Protein, biozon.DNA)
		thr := int(thrRaw % 8)
		pr := res.Prune(thr)
		pp := pr.Pair(biozon.Protein, biozon.DNA)

		type pairTop struct {
			a, b graph.NodeID
			tid  core.TopologyID
		}
		want := map[pairTop]bool{}
		for _, e := range pd.Entries {
			want[pairTop{e.A, e.B, e.TID}] = true
		}
		got := map[pairTop]bool{}
		for _, e := range pp.Left {
			got[pairTop{e.A, e.B, e.TID}] = true
		}
		// Reconstruct each pruned topology: every pair whose class set
		// contains the pruned signature and that is not excepted.
		excp := map[pairTop]bool{}
		for _, e := range pp.Excp {
			excp[pairTop{e.A, e.B, e.TID}] = true
		}
		for _, tid := range pp.PrunedTIDs {
			sig := res.Reg.Info(tid).Sigs[0]
			for _, e := range pd.Entries {
				// Consider each related pair once.
				key := pairTop{e.A, e.B, tid}
				if got[key] || excp[key] {
					continue
				}
				if sigIn(sig, pd.ClassSet(e.A, e.B)) {
					got[key] = true
				}
			}
		}
		if len(got) != len(want) {
			t.Logf("seed=%d thr=%d: reconstructed %d entries, want %d", seedRaw, thr, len(got), len(want))
			return false
		}
		for k := range want {
			if !got[k] {
				t.Logf("seed=%d thr=%d: missing %v", seedRaw, thr, k)
				return false
			}
		}
		for k := range got {
			if !want[k] {
				t.Logf("seed=%d thr=%d: spurious %v", seedRaw, thr, k)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

func sigIn(s graph.PathSig, set []graph.PathSig) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}

// TestPropTopologyInvariants: every topology registered for the
// Protein-DNA pair contains at least one Protein and one DNA node, has
// as many class signatures as the pair computations used, and
// single-class pairs always produce exactly one (path-shaped, when the
// class is a path) topology.
func TestPropTopologyInvariants(t *testing.T) {
	check := func(seedRaw uint8) bool {
		res, _, err := randomEnv(int64(seedRaw))
		if err != nil {
			t.Fatalf("env: %v", err)
		}
		for _, info := range res.Reg.All() {
			hasP, hasD := false, false
			for _, l := range info.Graph.Labels {
				if l == biozon.Protein {
					hasP = true
				}
				if l == biozon.DNA {
					hasD = true
				}
			}
			if !hasP || !hasD {
				t.Logf("topology %d lacks endpoints: %s", info.ID, info.Canon)
				return false
			}
			if len(info.Sigs) == 0 {
				t.Logf("topology %d has no class signatures", info.ID)
				return false
			}
			if info.IsPath && len(info.Sigs) != 1 {
				t.Logf("path topology %d claims %d classes", info.ID, len(info.Sigs))
				return false
			}
		}
		pd := res.Pair(biozon.Protein, biozon.DNA)
		perPair := map[[2]graph.NodeID][]core.TopologyID{}
		for _, e := range pd.Entries {
			perPair[[2]graph.NodeID{e.A, e.B}] = append(perPair[[2]graph.NodeID{e.A, e.B}], e.TID)
		}
		for pair, tids := range perPair {
			classes := pd.ClassSet(pair[0], pair[1])
			if len(classes) == 1 && len(tids) != 1 {
				t.Logf("single-class pair %v has %d topologies", pair, len(tids))
				return false
			}
			// Every topology of the pair must union exactly
			// len(classes) signatures.
			for _, tid := range tids {
				if len(res.Reg.Info(tid).Sigs) != len(classes) {
					t.Logf("pair %v topology %d: %d sigs vs %d classes",
						pair, tid, len(res.Reg.Info(tid).Sigs), len(classes))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestPropFrequencyConsistency: freq(T) equals the number of distinct
// pairs related by T, and the sum of frequencies equals the number of
// AllTops entries.
func TestPropFrequencyConsistency(t *testing.T) {
	check := func(seedRaw uint8) bool {
		res, _, err := randomEnv(int64(seedRaw))
		if err != nil {
			t.Fatalf("env: %v", err)
		}
		pd := res.Pair(biozon.Protein, biozon.DNA)
		counts := map[core.TopologyID]int{}
		for _, e := range pd.Entries {
			counts[e.TID]++
		}
		total := 0
		for tid, f := range pd.Freq {
			if counts[tid] != f {
				t.Logf("freq(%d) = %d but %d entries", tid, f, counts[tid])
				return false
			}
			total += f
		}
		return total == len(pd.Entries)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

// TestPropWitnessAgreesWithEntries: for a sample of recorded
// (pair, topology) entries, WitnessFor must find a realizing set of
// paths whose union has the right structure.
func TestPropWitnessAgreesWithEntries(t *testing.T) {
	res, g, err := randomEnv(11)
	if err != nil {
		t.Fatal(err)
	}
	pd := res.Pair(biozon.Protein, biozon.DNA)
	checked := 0
	for _, e := range pd.Entries {
		if checked >= 25 {
			break
		}
		checked++
		w, ok := core.WitnessFor(g, res.Reg, e.A, e.B, e.TID, res.Opts)
		if !ok {
			t.Errorf("no witness for recorded entry %+v", e)
			continue
		}
		if len(w.Paths) != len(res.Reg.Info(e.TID).Sigs) {
			t.Errorf("witness for %+v has %d paths, want %d",
				e, len(w.Paths), len(res.Reg.Info(e.TID).Sigs))
		}
		for _, p := range w.Paths {
			if p.Start() != e.A && p.End() != e.A && p.Start() != e.B && p.End() != e.B {
				t.Errorf("witness path does not touch the endpoints: %+v", p)
			}
		}
	}
	if checked == 0 {
		t.Skip("no entries to check")
	}
}

// TestPropDescribeStable: canonical structure renderings are parseable
// and deterministic across recomputation.
func TestPropDescribeStable(t *testing.T) {
	res1, _, err := randomEnv(5)
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := randomEnv(5)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Reg.Len() != res2.Reg.Len() {
		t.Fatalf("recomputation changed topology count: %d vs %d", res1.Reg.Len(), res2.Reg.Len())
	}
	for i := 0; i < res1.Reg.Len(); i++ {
		a := res1.Reg.Info(core.TopologyID(i))
		b := res2.Reg.Info(core.TopologyID(i))
		if a.Canon != b.Canon {
			t.Errorf("topology %d differs across recomputation", i)
		}
		if !strings.Contains(a.Describe(), ";") {
			t.Errorf("describe missing separator: %q", a.Describe())
		}
	}
}
