package core

import "toposearch/internal/graph"

// WeakRules encodes the domain knowledge of Appendix B: certain indirect
// relationships (P–D–P, P–U–P, P–F–P, F–W–F, ...) connect only remotely
// related entities, and schema paths that extend them (length >= 4)
// mostly connect unrelated end points, diluting meaningful topologies
// (Section 6.2.3, Figure 17). A schema path is weak when it is at least
// MinLen hops long and its node-type sequence contains one of the
// patterns (in either direction) as a contiguous subsequence.
type WeakRules struct {
	MinLen   int
	Patterns [][]string // node-type label sequences
}

// DefaultWeakRules returns the rules from Table 4, applied to paths of
// length >= 4 as the paper proposes.
func DefaultWeakRules() *WeakRules {
	return &WeakRules{
		MinLen: 4,
		Patterns: [][]string{
			{"Protein", "DNA", "Protein"},     // PDP: same long DNA encodes both
			{"Protein", "Unigene", "Protein"}, // PUP: homologous proteins
			{"Protein", "Family", "Protein"},  // PFP: homologous proteins
			{"Family", "Pathway", "Family"},   // FWF: pathway context only
		},
	}
}

// IsWeak reports whether the schema path triggers a weak-relationship rule.
func (w *WeakRules) IsWeak(sg *graph.SchemaGraph, sp graph.SchemaPath) bool {
	if w == nil || sp.Len() < w.MinLen {
		return false
	}
	seq := make([]string, 0, sp.Len()+1)
	seq = append(seq, sp.Start)
	for _, st := range sp.Steps {
		seq = append(seq, st.Next)
	}
	for _, pat := range w.Patterns {
		if containsSeq(seq, pat) || containsSeq(seq, reverseSeq(pat)) {
			return true
		}
	}
	return false
}

func containsSeq(seq, pat []string) bool {
	if len(pat) == 0 || len(pat) > len(seq) {
		return false
	}
outer:
	for i := 0; i+len(pat) <= len(seq); i++ {
		for j, p := range pat {
			if seq[i+j] != p {
				continue outer
			}
		}
		return true
	}
	return false
}

func reverseSeq(s []string) []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[len(s)-1-i] = v
	}
	return out
}
