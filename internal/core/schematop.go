package core

import (
	"sort"

	"toposearch/internal/canon"
	"toposearch/internal/graph"
)

// SchemaEnumOptions controls the schema-level enumeration of all
// possible topologies (Section 3.1, Figure 8).
type SchemaEnumOptions struct {
	// MaxLen is the path-length bound l.
	MaxLen int
	// MaxResults caps the number of distinct topologies produced
	// (0 = unlimited). The paper reports over 88453 possible
	// 3-topologies between Proteins and DNAs, so real enumerations
	// need a cap.
	MaxResults int
	// MaxUnions caps the number of glued graphs inspected
	// (0 = unlimited).
	MaxUnions int
	// AllowParallelEdges also generates topologies in which two paths
	// traverse distinct relationship tuples with the same label between
	// the same pair of entities (multigraph results).
	AllowParallelEdges bool
}

// SchemaEnumResult is the outcome of a schema-level enumeration.
type SchemaEnumResult struct {
	// Canons holds the canonical forms of every distinct topology
	// found, sorted.
	Canons []string
	// Unions is the number of glued graphs inspected.
	Unions int
	// Truncated reports whether a cap stopped the enumeration early.
	Truncated bool
}

// EnumerateSchemaTopologies enumerates every topology that could, in
// principle, relate an entity of es1 to an entity of es2: each subset
// of the schema paths of length <= l (one representative per path
// equivalence class, per Definition 2), glued in every possible way —
// each intermediate node of each path either merges with a same-typed
// node placed by an earlier path or stays fresh. This is the "88453
// possible topologies" computation that makes the SQL method of
// Section 3.1 hopeless.
func EnumerateSchemaTopologies(sg *graph.SchemaGraph, es1, es2 string, opts SchemaEnumOptions) (SchemaEnumResult, error) {
	if opts.MaxLen == 0 {
		opts.MaxLen = 2
	}
	paths, err := sg.EnumeratePaths(es1, es2, opts.MaxLen)
	if err != nil {
		return SchemaEnumResult{}, err
	}
	e := &schemaEnum{sg: sg, opts: opts, seen: make(map[string]bool)}
	// Node 0 = the es1 endpoint, node 1 = the es2 endpoint.
	e.labels = []string{es1, es2}
	e.recurse(paths, 0, false)
	res := SchemaEnumResult{Unions: e.unions, Truncated: e.truncated}
	res.Canons = make([]string, 0, len(e.seen))
	for c := range e.seen {
		res.Canons = append(res.Canons, c)
	}
	sort.Strings(res.Canons)
	return res, nil
}

type enumEdge struct {
	u, v  int
	label string
}

type schemaEnum struct {
	sg        *graph.SchemaGraph
	opts      SchemaEnumOptions
	labels    []string
	edges     []enumEdge
	edgeSet   map[enumEdge]int // multiplicity
	seen      map[string]bool
	unions    int
	truncated bool
}

func (e *schemaEnum) capped() bool {
	if e.opts.MaxResults > 0 && len(e.seen) >= e.opts.MaxResults {
		e.truncated = true
		return true
	}
	if e.opts.MaxUnions > 0 && e.unions >= e.opts.MaxUnions {
		e.truncated = true
		return true
	}
	return false
}

// recurse decides, for each schema path, whether to include it and how
// to glue it, then records the resulting graph.
func (e *schemaEnum) recurse(paths []graph.SchemaPath, i int, any bool) {
	if e.capped() {
		return
	}
	if i == len(paths) {
		if any {
			e.unions++
			e.record()
		}
		return
	}
	// Skip path i.
	e.recurse(paths, i+1, any)
	// Include path i with every gluing.
	e.placePath(paths, i, any)
}

func (e *schemaEnum) record() {
	g := &canon.Graph{Labels: append([]string(nil), e.labels...)}
	for _, ed := range e.edges {
		g.Edges = append(g.Edges, canon.Edge{U: ed.u, V: ed.v, Label: ed.label})
	}
	e.seen[canon.Canonical(g)] = true
}

// placePath enumerates all placements of schema path pi: each
// intermediate hop either merges into an existing same-typed node (not
// already on this path) or allocates a fresh node; each edge either
// reuses an identical existing edge or (with AllowParallelEdges) adds a
// parallel one.
func (e *schemaEnum) placePath(paths []graph.SchemaPath, pi int, any bool) {
	sp := paths[pi]
	if e.edgeSet == nil {
		e.edgeSet = make(map[enumEdge]int)
		for _, ed := range e.edges {
			e.edgeSet[ed]++
		}
	}
	onPath := map[int]bool{0: true}
	var step func(hop, cur int)
	step = func(hop, cur int) {
		if e.capped() {
			return
		}
		rel := e.sg.Rels[sp.Steps[hop].Rel]
		nextType := sp.Steps[hop].Next
		last := hop == len(sp.Steps)-1

		place := func(node int) {
			if onPath[node] {
				return
			}
			key := enumEdge{u: min(cur, node), v: max(cur, node), label: rel.Name}
			variants := []bool{false} // false = merge/add once
			if e.edgeSet[key] > 0 && e.opts.AllowParallelEdges {
				variants = append(variants, true) // true = force parallel edge
			}
			for _, parallel := range variants {
				addEdge := e.edgeSet[key] == 0 || parallel
				if addEdge {
					e.edges = append(e.edges, key)
					e.edgeSet[key]++
				}
				onPath[node] = true
				if last {
					e.recurse(paths, pi+1, true)
				} else {
					step(hop+1, node)
				}
				delete(onPath, node)
				if addEdge {
					e.edges = e.edges[:len(e.edges)-1]
					e.edgeSet[key]--
				}
			}
		}

		if last {
			// Final hop must land on the es2 endpoint (node 1).
			if nextType == e.labels[1] {
				place(1)
			}
			return
		}
		// Merge with any existing same-typed node. The es2 endpoint
		// (node 1) is reserved for the final hop: a simple path visits
		// it exactly once, at its end.
		for node, lbl := range e.labels {
			if node != 1 && lbl == nextType {
				place(node)
			}
		}
		// Or allocate a fresh node.
		fresh := len(e.labels)
		e.labels = append(e.labels, nextType)
		place(fresh)
		e.labels = e.labels[:fresh]
	}
	if len(sp.Steps) > 0 {
		step(0, 0)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
