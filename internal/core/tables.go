package core

import (
	"fmt"
	"sort"

	"toposearch/internal/relstore"
)

// ScoreFunc assigns a topology score for ranking; higher is better.
// Implementations live in internal/ranking (Freq, Rare, Domain).
type ScoreFunc func(info *TopInfo, freq int) int64

// ScoreColumn returns the TopInfo column name holding the given
// ranking's score.
func ScoreColumn(ranking string) string { return "SCORE_" + ranking }

// TableName builds the per-entity-set-pair table name, e.g.
// "AllTops_Protein_DNA".
func TableName(kind, es1, es2 string) string {
	return fmt.Sprintf("%s_%s_%s", kind, es1, es2)
}

func topsSchema(name string) *relstore.Schema {
	return relstore.MustSchema(name, []relstore.Column{
		{Name: "E1", Type: relstore.TInt},
		{Name: "E2", Type: relstore.TInt},
		{Name: "TID", Type: relstore.TInt},
	}, "")
}

// indexTops creates the hash indexes every tops table carries.
func indexTops(t *relstore.Table) error {
	for _, col := range []string{"E1", "E2", "TID"} {
		if _, err := t.CreateHashIndex(col); err != nil {
			return err
		}
	}
	return nil
}

// buildEntries bulk-materializes entries into a fresh sealed table
// (via IntTableBuilder — one array append per cell instead of a
// published snapshot per row), indexes it, and registers it in the
// catalog, replacing any previous generation's entry.
func buildEntries(db *relstore.DB, name string, entries []Entry) (*relstore.Table, error) {
	b, err := relstore.NewIntTableBuilder(topsSchema(name))
	if err != nil {
		return nil, err
	}
	b.Grow(len(entries))
	for _, e := range entries {
		b.AppendInts(int64(e.A), int64(e.B), int64(e.TID))
	}
	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := indexTops(t); err != nil {
		return nil, err
	}
	db.PutTable(t)
	return t, nil
}

// MaterializeAllTops writes the AllTops_<pair> table for one entity-set
// pair into db, with hash indices on all columns (Full-Top, Section 3.2).
func (res *Result) MaterializeAllTops(db *relstore.DB, es1, es2 string) (*relstore.Table, error) {
	pd := res.Pair(es1, es2)
	if pd == nil {
		return nil, fmt.Errorf("core: no computed data for pair %s-%s", es1, es2)
	}
	return buildEntries(db, TableName("AllTops", es1, es2), pd.Entries)
}

// Materialize writes the LeftTops_<pair> and ExcpTops_<pair> tables for
// one entity-set pair into db (Fast-Top, Section 4.2.2).
func (pr *Pruned) Materialize(db *relstore.DB, es1, es2 string) (left, excp *relstore.Table, err error) {
	pp := pr.Pair(es1, es2)
	if pp == nil {
		return nil, nil, fmt.Errorf("core: no pruned data for pair %s-%s", es1, es2)
	}
	left, err = buildEntries(db, TableName("LeftTops", es1, es2), pp.Left)
	if err != nil {
		return nil, nil, err
	}
	excp, err = buildEntries(db, TableName("ExcpTops", es1, es2), pp.Excp)
	if err != nil {
		return nil, nil, err
	}
	return left, excp, nil
}

// MaterializeTopInfo writes the TopInfo_<pair> table: one row per
// topology observed for the pair, with structural columns and one score
// column per ranking scheme, each backed by an ordered index so plans
// can scan topologies in score order (Figure 15).
func (res *Result) MaterializeTopInfo(db *relstore.DB, es1, es2 string, scores map[string]ScoreFunc) (*relstore.Table, error) {
	pd := res.Pair(es1, es2)
	if pd == nil {
		return nil, fmt.Errorf("core: no computed data for pair %s-%s", es1, es2)
	}
	rankings := sortedRankings(scores)
	b, err := relstore.NewIntTableBuilder(topInfoSchema(TableName("TopInfo", es1, es2), rankings))
	if err != nil {
		return nil, err
	}
	tids := make([]TopologyID, 0, len(pd.Freq))
	for tid := range pd.Freq {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	b.Grow(len(tids))
	row := make([]int64, 0, 6+len(rankings))
	for _, tid := range tids {
		b.AppendInts(res.topInfoRow(row, tid, pd.Freq[tid], rankings, scores)...)
	}
	t, err := b.Build()
	if err != nil {
		return nil, err
	}
	if err := indexTopInfo(t, rankings); err != nil {
		return nil, err
	}
	db.PutTable(t)
	return t, nil
}

func sortedRankings(scores map[string]ScoreFunc) []string {
	rankings := make([]string, 0, len(scores))
	for name := range scores {
		rankings = append(rankings, name)
	}
	sort.Strings(rankings)
	return rankings
}

func topInfoSchema(name string, rankings []string) *relstore.Schema {
	cols := []relstore.Column{
		{Name: "TID", Type: relstore.TInt},
		{Name: "FREQ", Type: relstore.TInt},
		{Name: "NODES", Type: relstore.TInt},
		{Name: "EDGES", Type: relstore.TInt},
		{Name: "CLASSES", Type: relstore.TInt},
		{Name: "ISPATH", Type: relstore.TInt},
	}
	for _, r := range rankings {
		cols = append(cols, relstore.Column{Name: ScoreColumn(r), Type: relstore.TInt})
	}
	return relstore.MustSchema(name, cols, "TID")
}

// topInfoRow encodes one TopInfo row into buf (reused across calls).
func (res *Result) topInfoRow(buf []int64, tid TopologyID, freq int, rankings []string, scores map[string]ScoreFunc) []int64 {
	info := res.Reg.Info(tid)
	isPath := int64(0)
	if info.IsPath {
		isPath = 1
	}
	buf = append(buf[:0],
		int64(tid),
		int64(freq),
		int64(info.NumNodes),
		int64(info.NumEdges),
		int64(len(info.Sigs)),
		isPath,
	)
	for _, name := range rankings {
		buf = append(buf, scores[name](info, freq))
	}
	return buf
}

func indexTopInfo(t *relstore.Table, rankings []string) error {
	for _, name := range rankings {
		if _, err := t.CreateOrderedIndex(ScoreColumn(name)); err != nil {
			return err
		}
	}
	_, err := t.CreateHashIndex("TID")
	return err
}
