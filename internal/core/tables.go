package core

import (
	"fmt"
	"sort"

	"toposearch/internal/relstore"
)

// ScoreFunc assigns a topology score for ranking; higher is better.
// Implementations live in internal/ranking (Freq, Rare, Domain).
type ScoreFunc func(info *TopInfo, freq int) int64

// ScoreColumn returns the TopInfo column name holding the given
// ranking's score.
func ScoreColumn(ranking string) string { return "SCORE_" + ranking }

// TableName builds the per-entity-set-pair table name, e.g.
// "AllTops_Protein_DNA".
func TableName(kind, es1, es2 string) string {
	return fmt.Sprintf("%s_%s_%s", kind, es1, es2)
}

func topsSchema(name string) *relstore.Schema {
	return relstore.MustSchema(name, []relstore.Column{
		{Name: "E1", Type: relstore.TInt},
		{Name: "E2", Type: relstore.TInt},
		{Name: "TID", Type: relstore.TInt},
	}, "")
}

func insertEntries(t *relstore.Table, entries []Entry) error {
	for _, e := range entries {
		if err := t.Insert(relstore.Row{
			relstore.IntVal(int64(e.A)),
			relstore.IntVal(int64(e.B)),
			relstore.IntVal(int64(e.TID)),
		}); err != nil {
			return err
		}
	}
	for _, col := range []string{"E1", "E2", "TID"} {
		if _, err := t.CreateHashIndex(col); err != nil {
			return err
		}
	}
	return nil
}

// MaterializeAllTops writes the AllTops_<pair> table for one entity-set
// pair into db, with hash indices on all columns (Full-Top, Section 3.2).
func (res *Result) MaterializeAllTops(db *relstore.DB, es1, es2 string) (*relstore.Table, error) {
	pd := res.Pair(es1, es2)
	if pd == nil {
		return nil, fmt.Errorf("core: no computed data for pair %s-%s", es1, es2)
	}
	t, err := db.CreateTable(topsSchema(TableName("AllTops", es1, es2)))
	if err != nil {
		return nil, err
	}
	return t, insertEntries(t, pd.Entries)
}

// Materialize writes the LeftTops_<pair> and ExcpTops_<pair> tables for
// one entity-set pair into db (Fast-Top, Section 4.2.2).
func (pr *Pruned) Materialize(db *relstore.DB, es1, es2 string) (left, excp *relstore.Table, err error) {
	pp := pr.Pair(es1, es2)
	if pp == nil {
		return nil, nil, fmt.Errorf("core: no pruned data for pair %s-%s", es1, es2)
	}
	left, err = db.CreateTable(topsSchema(TableName("LeftTops", es1, es2)))
	if err != nil {
		return nil, nil, err
	}
	if err := insertEntries(left, pp.Left); err != nil {
		return nil, nil, err
	}
	excp, err = db.CreateTable(topsSchema(TableName("ExcpTops", es1, es2)))
	if err != nil {
		return nil, nil, err
	}
	if err := insertEntries(excp, pp.Excp); err != nil {
		return nil, nil, err
	}
	return left, excp, nil
}

// MaterializeTopInfo writes the TopInfo_<pair> table: one row per
// topology observed for the pair, with structural columns and one score
// column per ranking scheme, each backed by an ordered index so plans
// can scan topologies in score order (Figure 15).
func (res *Result) MaterializeTopInfo(db *relstore.DB, es1, es2 string, scores map[string]ScoreFunc) (*relstore.Table, error) {
	pd := res.Pair(es1, es2)
	if pd == nil {
		return nil, fmt.Errorf("core: no computed data for pair %s-%s", es1, es2)
	}
	rankings := make([]string, 0, len(scores))
	for name := range scores {
		rankings = append(rankings, name)
	}
	sort.Strings(rankings)
	cols := []relstore.Column{
		{Name: "TID", Type: relstore.TInt},
		{Name: "FREQ", Type: relstore.TInt},
		{Name: "NODES", Type: relstore.TInt},
		{Name: "EDGES", Type: relstore.TInt},
		{Name: "CLASSES", Type: relstore.TInt},
		{Name: "ISPATH", Type: relstore.TInt},
	}
	for _, name := range rankings {
		cols = append(cols, relstore.Column{Name: ScoreColumn(name), Type: relstore.TInt})
	}
	t, err := db.CreateTable(relstore.MustSchema(TableName("TopInfo", es1, es2), cols, "TID"))
	if err != nil {
		return nil, err
	}
	tids := make([]TopologyID, 0, len(pd.Freq))
	for tid := range pd.Freq {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, tid := range tids {
		info := res.Reg.Info(tid)
		isPath := int64(0)
		if info.IsPath {
			isPath = 1
		}
		row := relstore.Row{
			relstore.IntVal(int64(tid)),
			relstore.IntVal(int64(pd.Freq[tid])),
			relstore.IntVal(int64(info.NumNodes)),
			relstore.IntVal(int64(info.NumEdges)),
			relstore.IntVal(int64(len(info.Sigs))),
			relstore.IntVal(isPath),
		}
		for _, name := range rankings {
			row = append(row, relstore.IntVal(scores[name](info, pd.Freq[tid])))
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	for _, name := range rankings {
		if _, err := t.CreateOrderedIndex(ScoreColumn(name)); err != nil {
			return nil, err
		}
	}
	if _, err := t.CreateHashIndex("TID"); err != nil {
		return nil, err
	}
	return t, nil
}
