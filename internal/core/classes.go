package core

import (
	"runtime"
	"sort"

	"toposearch/internal/canon"
	"toposearch/internal/graph"
)

// Options controls topology computation.
type Options struct {
	// MaxLen is the path-length bound l (the paper uses 3 and 4).
	MaxLen int
	// MaxCombinations bounds how many representative combinations the
	// Definition 2 enumeration inspects per entity pair. The paper hits
	// the same combinatorial blow-up for weak relationships with
	// thousands of instance paths per class (Section 6.2.3); the cap
	// keeps precomputation bounded while canonical-form deduplication
	// keeps the result set exact in all non-pathological cases.
	MaxCombinations int
	// MaxPathsPerClass bounds the representatives considered per
	// equivalence class (0 = unlimited).
	MaxPathsPerClass int
	// Weak optionally filters out weak-relationship schema paths before
	// computation (Appendix B).
	Weak *WeakRules
	// Parallelism is the worker count of the offline computation: start
	// nodes are sharded across this many workers (0 = GOMAXPROCS,
	// 1 = sequential). Results are byte-identical at every setting.
	Parallelism int
}

// DefaultOptions returns the options used across the reproduction:
// l = 3, as in most of the paper's experiments.
func DefaultOptions() Options {
	return Options{MaxLen: 3, MaxCombinations: 4096, MaxPathsPerClass: 64}
}

func (o Options) withDefaults() Options {
	if o.MaxLen == 0 {
		o.MaxLen = 3
	}
	if o.MaxCombinations == 0 {
		o.MaxCombinations = 4096
	}
	return o
}

// EffectiveMaxLen resolves the path-length bound (0 = the default).
// Incremental maintenance derives the affected-frontier BFS radius
// from it, so every caller must resolve the default the same way the
// computation itself does.
func (o Options) EffectiveMaxLen() int { return o.withDefaults().MaxLen }

// Workers resolves the effective worker count of the Parallelism
// setting (0 = GOMAXPROCS). The online evaluation methods use the same
// resolution for their query-time worker pools.
func (o Options) Workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// PathClasses computes l-PathEC(a,b) (Definition 1): the simple paths
// of length <= maxLen between a and b, grouped into equivalence classes
// by their type signature. Classes are returned with deterministically
// ordered members.
func PathClasses(g *graph.Graph, a, b graph.NodeID, maxLen int) map[graph.PathSig][]graph.Path {
	classes := make(map[graph.PathSig][]graph.Path)
	g.SimplePaths(a, b, maxLen, func(p graph.Path) bool {
		sig := g.Signature(p)
		classes[sig] = append(classes[sig], p.Clone())
		return true
	})
	for _, paths := range classes {
		sortPaths(paths)
	}
	return classes
}

func sortPaths(paths []graph.Path) {
	sort.Slice(paths, func(i, j int) bool {
		pi, pj := paths[i], paths[j]
		if len(pi.Nodes) != len(pj.Nodes) {
			return len(pi.Nodes) < len(pj.Nodes)
		}
		for k := range pi.Nodes {
			if pi.Nodes[k] != pj.Nodes[k] {
				return pi.Nodes[k] < pj.Nodes[k]
			}
		}
		for k := range pi.Edges {
			if pi.Edges[k] != pj.Edges[k] {
				return pi.Edges[k] < pj.Edges[k]
			}
		}
		return false
	})
}

// sortedSigs returns the class signatures in lexicographic order.
func sortedSigs(classes map[graph.PathSig][]graph.Path) []graph.PathSig {
	sigs := make([]graph.PathSig, 0, len(classes))
	for s := range classes {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
	return sigs
}

// TopologiesFromClasses computes l-Top(a,b) (Definition 2) given the
// pair's path equivalence classes: every way of choosing one
// representative path per class, unioned into a graph, reduced to its
// equivalence class. Results are registered in reg and returned as a
// sorted, duplicate-free ID list.
func TopologiesFromClasses(g *graph.Graph, reg *Registry,
	classes map[graph.PathSig][]graph.Path, opts Options) []TopologyID {
	out := topologiesFromClassesOrdered(g, reg, classes, opts)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// topologiesFromClassesOrdered is TopologiesFromClasses returning the
// IDs in within-cell discovery order instead of sorted. Discovery
// order is intrinsic to the cell — it depends only on the pair's path
// classes (sorted signatures, sorted representatives, the bounded
// combination enumeration), never on the registry's prior contents —
// which is what lets the incremental-update merge replay a cell's
// registrations in exactly the order a from-scratch sequential run
// would perform them.
func topologiesFromClassesOrdered(g *graph.Graph, reg *Registry,
	classes map[graph.PathSig][]graph.Path, opts Options) []TopologyID {
	opts = opts.withDefaults()
	if len(classes) == 0 {
		return nil
	}
	sigs := sortedSigs(classes)
	reps := make([][]graph.Path, len(sigs))
	for i, s := range sigs {
		reps[i] = classes[s]
		if opts.MaxPathsPerClass > 0 && len(reps[i]) > opts.MaxPathsPerClass {
			reps[i] = reps[i][:opts.MaxPathsPerClass]
		}
	}

	seen := make(map[TopologyID]bool)
	var out []TopologyID
	budget := opts.MaxCombinations
	choice := make([]graph.Path, len(sigs))
	var rec func(i int)
	rec = func(i int) {
		if budget <= 0 {
			return
		}
		if i == len(sigs) {
			budget--
			id := registerUnion(g, reg, choice, sigs)
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
			return
		}
		for _, p := range reps[i] {
			choice[i] = p
			rec(i + 1)
			if budget <= 0 {
				return
			}
		}
	}
	rec(0)
	return out
}

// registerUnion unions the chosen representative paths into one labeled
// graph and registers its topology.
func registerUnion(g *graph.Graph, reg *Registry, paths []graph.Path, sigs []graph.PathSig) TopologyID {
	b := canon.NewBuilder()
	for _, p := range paths {
		addPath(g, b, p)
	}
	return reg.Register(b.Graph(), sigs)
}

func addPath(g *graph.Graph, b *canon.Builder, p graph.Path) {
	for i, n := range p.Nodes {
		t, _ := g.NodeType(n)
		b.Node(int64(n), g.NodeTypes.Name(t))
		if i > 0 {
			b.Edge(p.Edges[i-1], int64(p.Nodes[i-1]), int64(n), g.EdgeTypes.Name(p.Types[i-1]))
		}
	}
}

// TopologiesOf computes l-Top(a,b) directly from the data graph.
func TopologiesOf(g *graph.Graph, reg *Registry, a, b graph.NodeID, opts Options) []TopologyID {
	opts = opts.withDefaults()
	return TopologiesFromClasses(g, reg, PathClasses(g, a, b, opts.MaxLen), opts)
}
