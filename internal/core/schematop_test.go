package core_test

import (
	"strings"
	"testing"

	"toposearch/internal/biozon"
	"toposearch/internal/core"
)

func TestEnumerateSchemaTopologiesL2(t *testing.T) {
	sg := biozon.SchemaGraph()
	res, err := core.EnumerateSchemaTopologies(sg, biozon.Protein, biozon.DNA,
		core.SchemaEnumOptions{MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Three schema paths connect P and D with l<=2 (PD, PUD, PID); no
	// intermediate can merge across paths (different types), so the
	// possible topologies are exactly the 2^3-1 = 7 subset unions
	// (Figure 8's enumeration over our schema).
	if len(res.Canons) != 7 {
		for _, c := range res.Canons {
			t.Logf("  %s", c)
		}
		t.Errorf("l=2 P-D topologies = %d, want 7", len(res.Canons))
	}
	if res.Truncated {
		t.Error("l=2 enumeration should not truncate")
	}
	// The single-edge topology must be among them.
	found := false
	for _, c := range res.Canons {
		if strings.Contains(c, "encodes") && strings.Count(c, ",") == 1 {
			found = true
		}
	}
	if !found {
		t.Error("P-encodes-D topology missing")
	}
}

func TestEnumerateSchemaTopologiesL3Blowup(t *testing.T) {
	sg := biozon.SchemaGraph()
	// With the ten l<=3 schema paths the space explodes (the paper
	// counts 88453); cap the enumeration and verify it reports
	// truncation and a large count.
	res, err := core.EnumerateSchemaTopologies(sg, biozon.Protein, biozon.DNA,
		core.SchemaEnumOptions{MaxLen: 3, MaxResults: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Canons) < 5000 {
		t.Errorf("l=3 enumeration found only %d topologies before the cap", len(res.Canons))
	}
	if !res.Truncated {
		t.Error("capped enumeration should report truncation")
	}
	if res.Unions == 0 {
		t.Error("no unions counted")
	}
}

func TestEnumerateSchemaTopologiesParallelEdges(t *testing.T) {
	sg := biozon.SchemaGraph()
	plain, err := core.EnumerateSchemaTopologies(sg, biozon.Protein, biozon.Interaction,
		core.SchemaEnumOptions{MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := core.EnumerateSchemaTopologies(sg, biozon.Protein, biozon.Interaction,
		core.SchemaEnumOptions{MaxLen: 2, AllowParallelEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Canons) < len(plain.Canons) {
		t.Errorf("parallel-edge enumeration (%d) smaller than plain (%d)",
			len(multi.Canons), len(plain.Canons))
	}
}

func TestEnumerateSchemaTopologiesErrors(t *testing.T) {
	sg := biozon.SchemaGraph()
	if _, err := core.EnumerateSchemaTopologies(sg, "Nope", biozon.DNA,
		core.SchemaEnumOptions{MaxLen: 2}); err == nil {
		t.Error("unknown entity set accepted")
	}
	// MaxUnions cap.
	res, err := core.EnumerateSchemaTopologies(sg, biozon.Protein, biozon.DNA,
		core.SchemaEnumOptions{MaxLen: 3, MaxUnions: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || res.Unions > 101 {
		t.Errorf("MaxUnions not honoured: unions=%d truncated=%v", res.Unions, res.Truncated)
	}
}

func TestSchemaTopologiesConsistentWithInstances(t *testing.T) {
	// Every topology observed at the instance level on Figure 3 must be
	// in the schema-level enumeration for the same l.
	res, _, _ := computePD(t)
	schema, err := core.EnumerateSchemaTopologies(biozon.SchemaGraph(), biozon.Protein, biozon.DNA,
		core.SchemaEnumOptions{MaxLen: 3, MaxResults: 200000, MaxUnions: 2000000})
	if err != nil {
		t.Fatal(err)
	}
	inSchema := map[string]bool{}
	for _, c := range schema.Canons {
		inSchema[c] = true
	}
	for _, info := range res.Reg.All() {
		if !inSchema[info.Canon] {
			t.Errorf("instance topology %d (%s) missing from schema enumeration", info.ID, info.Canon)
		}
	}
}
