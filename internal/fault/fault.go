// Package fault is the failure-containment substrate of the engine: a
// deterministic, seedable fault-injection registry plus the typed panic
// error every worker goroutine recovers into.
//
// Packages declare named injection points as package-level variables
// (fault.Register at init time) and call Point.Hit() at their hot
// seams. While the registry is disabled — the shipped default — a hit
// is one atomic load and nothing else: no allocation, no lock, no
// branch beyond the load, so production paths pay effectively nothing
// for being injectable. Tests and chaos harnesses arm points with
// Enable(seed, rules...): a rule fires with a given probability, after
// a warm-up count, at most a bounded number of times, and its action is
// returning an error, panicking with an *Injected value, and/or
// sleeping — the vocabulary needed to simulate worker crashes, slow
// shards and transient storage failures deterministically.
//
// Determinism: each armed point draws from its own rand source seeded
// from the global seed and the point's name, so whether a given hit
// fires depends only on (seed, point, hit ordinal) — never on the
// interleaving of other points. Under concurrency the assignment of
// hit ordinals to goroutines is scheduling-dependent, but the fired
// subsequence for a fixed ordinal sequence is reproducible.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel every injected error (and every injected
// panic value) wraps; errors.Is(err, fault.ErrInjected) identifies a
// failure as synthetic through any number of wrapping layers,
// including containment in a *PanicError.
var ErrInjected = errors.New("injected fault")

// Injected is the concrete injected failure: returned as the error of
// a firing point, and used as the panic value of a panic-action rule
// (so a recovered chaos panic still identifies itself via errors.Is).
type Injected struct {
	// Point is the name of the injection point that fired.
	Point string
}

func (e *Injected) Error() string { return "fault: injected at " + e.Point }

// Unwrap ties every injected failure to the ErrInjected sentinel.
func (e *Injected) Unwrap() error { return ErrInjected }

// Rule describes one armed behavior for injection points.
type Rule struct {
	// Point selects the injection point by exact name; "*" arms every
	// registered point with this rule.
	Point string
	// Prob is the chance a hit fires once eligible (0 means 1.0, i.e.
	// every eligible hit fires).
	Prob float64
	// After skips the first After hits of the point before any can fire
	// (lets a batch make progress before the fault lands mid-way).
	After int
	// Count bounds how many times the rule fires (0 = unlimited).
	Count int
	// Err, when set, replaces the default *Injected error returned by a
	// firing hit. Ignored by panic-action rules.
	Err error
	// Panic makes a firing hit panic with an *Injected value instead of
	// returning an error — the worker-crash simulation.
	Panic bool
	// Delay makes a firing hit sleep before acting (slow-shard /
	// slow-storage simulation). A delay-only rule (no Err, no Panic,
	// Delay > 0) sleeps and returns nil.
	Delay time.Duration
	// DelayOnly marks the rule as pure latency: sleep, then return nil
	// instead of an error.
	DelayOnly bool
}

// armed is the live state of one rule bound to one point.
type armed struct {
	mu    sync.Mutex
	r     Rule
	prob  float64
	rng   *rand.Rand
	seen  int64
	fired int64
}

// Point is one named injection site. Points are registered once at
// package init and live forever; arming and disarming swaps the rule
// pointer atomically.
type Point struct {
	name string
	rule atomic.Pointer[armed]
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

var (
	regMu   sync.Mutex
	points  = map[string]*Point{}
	enabled atomic.Bool
)

// Register declares (or returns the existing) injection point with the
// given name. Call it from package-level variable initializers so the
// chaos harness can enumerate every seam via Names().
func Register(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	if p := points[name]; p != nil {
		return p
	}
	p := &Point{name: name}
	points[name] = p
	return p
}

// Names lists every registered injection point, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(points))
	for name := range points {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Enabled reports whether the registry is armed.
func Enabled() bool { return enabled.Load() }

// Enable arms the registry: every rule is bound to its matching
// point(s) — later rules override earlier ones on the same point — and
// hits start being evaluated. Each (point, rule) binding gets an
// independent deterministic rand source derived from seed and the
// point's name. Enabling with a rule naming an unregistered point is an
// error (catches typos in chaos configs); "*" matches all points.
func Enable(seed int64, rules ...Rule) error {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range points {
		p.rule.Store(nil)
	}
	for _, r := range rules {
		var targets []*Point
		if r.Point == "*" {
			for _, p := range points {
				targets = append(targets, p)
			}
		} else if p := points[r.Point]; p != nil {
			targets = []*Point{p}
		} else {
			for _, p := range points {
				p.rule.Store(nil)
			}
			return fmt.Errorf("fault: unknown injection point %q", r.Point)
		}
		for _, p := range targets {
			prob := r.Prob
			if prob == 0 {
				prob = 1
			}
			h := fnv.New64a()
			h.Write([]byte(p.name))
			p.rule.Store(&armed{r: r, prob: prob,
				rng: rand.New(rand.NewSource(seed ^ int64(h.Sum64())))})
		}
	}
	enabled.Store(true)
	return nil
}

// Disable disarms the registry. Rule state (hit/fire counters) stays
// readable via Stats until the next Enable.
func Disable() {
	enabled.Store(false)
}

// PointStats reports one point's activity since it was last armed.
type PointStats struct {
	Name  string
	Seen  int64 // hits evaluated while armed
	Fired int64 // hits that fired an action
}

// Stats snapshots every currently-armed point's counters, sorted by
// name.
func Stats() []PointStats {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]PointStats, 0, len(points))
	for name, p := range points {
		a := p.rule.Load()
		if a == nil {
			continue
		}
		a.mu.Lock()
		out = append(out, PointStats{Name: name, Seen: a.seen, Fired: a.fired})
		a.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TotalFired sums the fire counts across all armed points.
func TotalFired() int64 {
	var n int64
	for _, st := range Stats() {
		n += st.Fired
	}
	return n
}

// Hit evaluates the point: nil while the registry is disabled or the
// point unarmed; otherwise the armed rule decides whether this hit
// fires, and with which action. The disabled fast path is a single
// atomic load.
func (p *Point) Hit() error {
	if !enabled.Load() {
		return nil
	}
	return p.hit()
}

func (p *Point) hit() error {
	a := p.rule.Load()
	if a == nil {
		return nil
	}
	a.mu.Lock()
	a.seen++
	if a.seen <= int64(a.r.After) {
		a.mu.Unlock()
		return nil
	}
	if a.r.Count > 0 && a.fired >= int64(a.r.Count) {
		a.mu.Unlock()
		return nil
	}
	if a.prob < 1 && a.rng.Float64() >= a.prob {
		a.mu.Unlock()
		return nil
	}
	a.fired++
	r := a.r
	a.mu.Unlock()
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.Panic {
		panic(&Injected{Point: p.name})
	}
	if r.DelayOnly {
		return nil
	}
	if r.Err != nil {
		return fmt.Errorf("fault at %s: %w", p.name, r.Err)
	}
	return &Injected{Point: p.name}
}

// PanicError is a panic recovered inside a worker goroutine (or a
// public entry point) and converted into a typed error: the containment
// boundary's receipt. It records where the panic was caught, the
// recovered value, and the goroutine stack at recovery time.
type PanicError struct {
	// Site names the containment boundary that caught the panic (e.g.
	// "engine.segment", "core.start", "toposearch.ApplyBatch").
	Site string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic contained in %s: %v", e.Site, e.Value)
}

// Unwrap exposes the panic value when it is itself an error (an
// *Injected chaos panic, a wrapped storage error), so errors.Is and
// errors.As see through the containment layer.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// NewPanicError wraps a recovered panic value. A value that is already
// a *PanicError passes through unchanged, so re-containment at an outer
// boundary keeps the innermost site and stack.
func NewPanicError(site string, v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Site: site, Value: v, Stack: debug.Stack()}
}

// RecoverTo is the deferred containment idiom:
//
//	defer fault.RecoverTo(&err, "core.start")
//
// If the surrounded code panics, the panic is converted into a
// *PanicError stored in *errp (overwriting any error already there —
// the panic is strictly more information). Without a panic in flight it
// does nothing.
func RecoverTo(errp *error, site string) {
	if v := recover(); v != nil {
		*errp = NewPanicError(site, v)
	}
}
