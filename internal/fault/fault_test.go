package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// arm is a test helper: Enable with t-scoped cleanup so a failing test
// never leaves the registry armed for its neighbors.
func arm(t *testing.T, seed int64, rules ...Rule) {
	t.Helper()
	if err := Enable(seed, rules...); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	t.Cleanup(Disable)
}

func TestDisabledPointReturnsNil(t *testing.T) {
	p := Register("test.disabled")
	for i := 0; i < 100; i++ {
		if err := p.Hit(); err != nil {
			t.Fatalf("disabled point fired: %v", err)
		}
	}
}

func TestErrorActionAndSentinel(t *testing.T) {
	p := Register("test.err")
	arm(t, 1, Rule{Point: "test.err"})
	err := p.Hit()
	if err == nil {
		t.Fatal("armed point with prob 1 did not fire")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error does not wrap ErrInjected: %v", err)
	}
	var inj *Injected
	if !errors.As(err, &inj) || inj.Point != "test.err" {
		t.Fatalf("injected error does not carry the point name: %v", err)
	}
}

func TestCustomError(t *testing.T) {
	p := Register("test.custom")
	custom := errors.New("disk on fire")
	arm(t, 1, Rule{Point: "test.custom", Err: custom})
	if err := p.Hit(); !errors.Is(err, custom) {
		t.Fatalf("custom error not returned: %v", err)
	}
}

func TestAfterAndCount(t *testing.T) {
	p := Register("test.window")
	arm(t, 1, Rule{Point: "test.window", After: 3, Count: 2})
	var fired []int
	for i := 0; i < 10; i++ {
		if p.Hit() != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("After=3 Count=2 fired at %v, want [3 4]", fired)
	}
}

func TestProbDeterministicAcrossRuns(t *testing.T) {
	p := Register("test.prob")
	run := func() []int {
		arm(t, 42, Rule{Point: "test.prob", Prob: 0.3})
		var fired []int
		for i := 0; i < 200; i++ {
			if p.Hit() != nil {
				fired = append(fired, i)
			}
		}
		Disable()
		return fired
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed, different fire sequence:\n%v\n%v", a, b)
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("prob 0.3 fired %d/200 times; rng not applied", len(a))
	}
	arm(t, 43, Rule{Point: "test.prob", Prob: 0.3})
	var c []int
	for i := 0; i < 200; i++ {
		if p.Hit() != nil {
			c = append(c, i)
		}
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical fire sequences")
	}
}

func TestPanicAction(t *testing.T) {
	p := Register("test.panic")
	arm(t, 1, Rule{Point: "test.panic", Panic: true})
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic rule did not panic")
		}
		inj, ok := v.(*Injected)
		if !ok || inj.Point != "test.panic" {
			t.Fatalf("panic value = %v, want *Injected for test.panic", v)
		}
		if !errors.Is(inj, ErrInjected) {
			t.Fatal("panic value does not satisfy errors.Is(ErrInjected)")
		}
	}()
	p.Hit()
}

func TestDelayOnly(t *testing.T) {
	p := Register("test.delay")
	arm(t, 1, Rule{Point: "test.delay", Delay: 20 * time.Millisecond, DelayOnly: true})
	start := time.Now()
	if err := p.Hit(); err != nil {
		t.Fatalf("delay-only rule returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay-only rule slept %v, want >= 20ms", d)
	}
}

func TestWildcardAndStats(t *testing.T) {
	a := Register("test.wild.a")
	b := Register("test.wild.b")
	arm(t, 7, Rule{Point: "*", Count: 1})
	a.Hit()
	b.Hit()
	b.Hit()
	var sa, sb PointStats
	for _, st := range Stats() {
		switch st.Name {
		case "test.wild.a":
			sa = st
		case "test.wild.b":
			sb = st
		}
	}
	if sa.Seen != 1 || sa.Fired != 1 {
		t.Fatalf("point a stats = %+v, want seen 1 fired 1", sa)
	}
	if sb.Seen != 2 || sb.Fired != 1 {
		t.Fatalf("point b stats = %+v, want seen 2 fired 1 (Count bound)", sb)
	}
	if TotalFired() < 2 {
		t.Fatalf("TotalFired = %d, want >= 2", TotalFired())
	}
}

func TestUnknownPointRejected(t *testing.T) {
	if err := Enable(1, Rule{Point: "no.such.point"}); err == nil {
		Disable()
		t.Fatal("Enable with unknown point succeeded")
	}
	if Enabled() {
		t.Fatal("failed Enable left the registry armed")
	}
}

func TestDisableStopsFiring(t *testing.T) {
	p := Register("test.off")
	arm(t, 1, Rule{Point: "test.off"})
	if p.Hit() == nil {
		t.Fatal("armed point did not fire")
	}
	Disable()
	if err := p.Hit(); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
}

func TestPanicErrorContainment(t *testing.T) {
	boom := func() (err error) {
		defer RecoverTo(&err, "test.site")
		panic(&Injected{Point: "test.deep"})
	}
	err := boom()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("RecoverTo produced %T, want *PanicError", err)
	}
	if pe.Site != "test.site" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError missing site/stack: %+v", pe)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatal("containment hid the injected sentinel from errors.Is")
	}
	// Re-containment at an outer boundary keeps the inner site.
	outer := func() (err error) {
		defer RecoverTo(&err, "test.outer")
		panic(NewPanicError("test.inner", "boom"))
	}
	err = outer()
	if !errors.As(err, &pe) || pe.Site != "test.inner" {
		t.Fatalf("re-contained panic lost inner site: %v", err)
	}
}

func TestNoPanicOnNonErrorValue(t *testing.T) {
	boom := func() (err error) {
		defer RecoverTo(&err, "test.site")
		panic("plain string")
	}
	err := boom()
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "plain string" {
		t.Fatalf("string panic not contained: %v", err)
	}
	if errors.Unwrap(err) != nil {
		t.Fatal("non-error panic value should unwrap to nil")
	}
}

func BenchmarkHitDisabled(b *testing.B) {
	p := Register("bench.disabled")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Hit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHitArmedNeverFires(b *testing.B) {
	p := Register("bench.armed")
	if err := Enable(1, Rule{Point: "bench.armed", Prob: 1e-18}); err != nil {
		b.Fatal(err)
	}
	defer Disable()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Hit()
	}
}
