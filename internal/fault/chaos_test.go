package fault

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestChaosRegistryConcurrent hammers a set of points from many
// goroutines while the registry is repeatedly armed and disarmed,
// asserting the registry itself never corrupts under the very
// concurrency it exists to test: every returned error is typed, every
// panic carries an *Injected value, and the counters stay coherent.
func TestChaosRegistryConcurrent(t *testing.T) {
	pts := []*Point{
		Register("chaos.reg.a"),
		Register("chaos.reg.b"),
		Register("chaos.reg.c"),
	}
	var wrong atomic.Int64
	var fired atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := pts[(g+i)%len(pts)]
				func() {
					defer func() {
						if v := recover(); v != nil {
							fired.Add(1)
							if inj, ok := v.(*Injected); !ok || inj.Point != p.Name() {
								wrong.Add(1)
							}
						}
					}()
					if err := p.Hit(); err != nil {
						fired.Add(1)
						if !errors.Is(err, ErrInjected) {
							wrong.Add(1)
						}
					}
				}()
			}
		}(g)
	}
	for round := 0; round < 50; round++ {
		rules := []Rule{
			{Point: "chaos.reg.a", Prob: 0.5},
			{Point: "chaos.reg.b", Prob: 0.5, Panic: true},
			{Point: "chaos.reg.c", Prob: 0.5, After: 2},
		}
		if err := Enable(int64(round), rules...); err != nil {
			t.Fatalf("Enable round %d: %v", round, err)
		}
		Disable()
	}
	close(stop)
	wg.Wait()
	Disable()
	if wrong.Load() != 0 {
		t.Fatalf("%d mistyped failures escaped the registry", wrong.Load())
	}
	if fired.Load() == 0 {
		t.Log("note: no fault fired during the race window (acceptable, timing-dependent)")
	}
}

// TestChaosSeedReproducible drives one point through a fixed hit
// sequence under several seeds and checks each seed reproduces its own
// fire pattern exactly — the property chaos failures are replayed with.
func TestChaosSeedReproducible(t *testing.T) {
	p := Register("chaos.seed")
	pattern := func(seed int64) string {
		if err := Enable(seed, Rule{Point: "chaos.seed", Prob: 0.4}); err != nil {
			t.Fatal(err)
		}
		defer Disable()
		out := make([]byte, 300)
		for i := range out {
			if p.Hit() != nil {
				out[i] = '1'
			} else {
				out[i] = '0'
			}
		}
		return string(out)
	}
	for seed := int64(0); seed < 5; seed++ {
		a, b := pattern(seed), pattern(seed)
		if a != b {
			t.Fatalf("seed %d not reproducible:\n%s\n%s", seed, a, b)
		}
	}
}
