package sql_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"toposearch/internal/biozon"
	"toposearch/internal/core"
	"toposearch/internal/engine"
	"toposearch/internal/methods"
	"toposearch/internal/ranking"
	"toposearch/internal/relstore"
	"toposearch/internal/sql"
)

func TestParseBasics(t *testing.T) {
	sel, err := sql.Parse(`SELECT DISTINCT AT.TID
		FROM Protein P, DNA D, AllTops AT
		WHERE P.desc.ct('enzyme') AND D.type = 'mRNA'
		  AND P.ID = AT.E1 AND D.ID = AT.E2`)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Distinct || len(sel.Items) != 1 || len(sel.From) != 3 || len(sel.Where) != 4 {
		t.Errorf("parsed shape wrong: %+v", sel)
	}
	if sel.From[1].Alias != "D" || sel.From[1].Table != "DNA" {
		t.Errorf("alias parsing wrong: %+v", sel.From[1])
	}
	if sel.Where[0].Kind != sql.CondContains || sel.Where[0].Str != "enzyme" {
		t.Errorf("ct parsing wrong: %+v", sel.Where[0])
	}
	if sel.Where[1].Kind != sql.CondColEqStr {
		t.Errorf("string equality wrong: %+v", sel.Where[1])
	}
	if sel.Where[2].Kind != sql.CondColEqCol {
		t.Errorf("join cond wrong: %+v", sel.Where[2])
	}
}

func TestParseOrderFetchUnionNotExists(t *testing.T) {
	sel, err := sql.Parse(`SELECT DISTINCT LT.TID, TI.SCORE_freq
		FROM LeftTops LT, TopInfo TI
		WHERE LT.TID = TI.TID
		UNION
		SELECT DISTINCT 7, 42
		FROM Protein P
		WHERE P.ID = 1 AND NOT EXISTS (
			SELECT 1 FROM ExcpTops e WHERE e.E1 = P.ID AND e.TID = 7)
		ORDER BY SCORE_freq DESC
		FETCH FIRST 10 ROWS ONLY`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Union == nil {
		t.Fatal("union missing")
	}
	if sel.OrderBy == nil || sel.OrderBy.Column != "SCORE_freq" || !sel.OrderDesc {
		t.Errorf("order by wrong: %+v", sel.OrderBy)
	}
	if sel.FetchK != 10 {
		t.Errorf("fetch = %d", sel.FetchK)
	}
	u := sel.Union
	if len(u.Items) != 2 || !u.Items[0].IsLit || u.Items[0].LitInt != 7 {
		t.Errorf("literal select items wrong: %+v", u.Items)
	}
	if len(u.Where) != 2 || u.Where[1].Kind != sql.CondNotExists {
		t.Fatalf("NOT EXISTS missing: %+v", u.Where)
	}
	if len(u.Where[1].Sub.Where) != 2 {
		t.Errorf("subquery conds: %+v", u.Where[1].Sub.Where)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM t WHERE",
		"SELECT x FROM t WHERE a =",
		"SELECT x FROM t WHERE a.ct(5)",
		"SELECT x FROM t WHERE NOT a",
		"SELECT x FROM t ORDER",
		"SELECT x FROM t FETCH FIRST x ROWS ONLY",
		"SELECT x FROM t trailing garbage()",
		"SELECT x FROM t WHERE s = 'unterminated",
	}
	for _, src := range bad {
		if _, err := sql.Parse(src); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
}

// figure3WithStore materializes the topology tables for Figure 3 so the
// paper's SQL listings can run against them.
func figure3WithStore(t *testing.T) (*relstore.DB, *methods.Store) {
	t.Helper()
	db := biozon.Figure3DB()
	st, err := methods.BuildStore(context.Background(), db, biozon.SchemaGraph(), biozon.Protein, biozon.DNA,
		methods.StoreConfig{
			Opts:           core.DefaultOptions(),
			PruneThreshold: 0,
			Scores:         ranking.Schemes(),
		})
	if err != nil {
		t.Fatal(err)
	}
	return db, st
}

func TestSimpleSelect(t *testing.T) {
	db, _ := figure3WithStore(t)
	cols, rows, err := sql.Run(db,
		`SELECT P.ID FROM Protein P WHERE P.desc.ct('enzyme')`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || cols[0] != "P.ID" {
		t.Errorf("columns = %v", cols)
	}
	var ids []int64
	for _, r := range rows {
		ids = append(ids, r[0].Int)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if fmt.Sprint(ids) != "[32 44 78]" {
		t.Errorf("enzymes = %v, want [32 44 78]", ids)
	}
}

func TestJoinQueryMatchesFullTop(t *testing.T) {
	db, st := figure3WithStore(t)
	// Full-Top's query (Section 3.2) written as SQL against the
	// materialized AllTops table.
	_, rows, err := sql.Run(db, `
		SELECT DISTINCT AT.TID
		FROM Protein P, DNA D, AllTops_Protein_DNA AT
		WHERE P.desc.ct('enzyme') AND D.type = 'mRNA'
		  AND P.ID = AT.E1 AND D.ID = AT.E2`, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, r := range rows {
		got = append(got, r[0].Int)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })

	p1, _ := relstore.Contains(st.T1.Schema, "desc", "enzyme")
	p2, _ := relstore.Eq(st.T2.Schema, "type", relstore.StrVal("mRNA"))
	ref, err := st.FullTop(methods.Query{Pred1: p1, Pred2: p2})
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for _, it := range ref.Items {
		want = append(want, int64(it.TID))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("SQL result %v != Full-Top %v", got, want)
	}
}

// TestSQL1Listing runs the paper's SQL1 query — the Fast-Top
// evaluation — literally: the LeftTops join UNIONed with one
// existence-check subquery per pruned topology, each guarded by NOT
// EXISTS over the exception table. The result must equal the Fast-Top
// method's answer (T1..T4).
func TestSQL1Listing(t *testing.T) {
	db, st := figure3WithStore(t)
	if len(st.PrunedTIDs) != 2 {
		t.Fatalf("expected 2 pruned topologies, got %v", st.PrunedTIDs)
	}
	// Identify which pruned topology is the encodes path (T1) and
	// which is the PUD path (T2).
	var t1, t2 int64 = -1, -1
	for _, tid := range st.PrunedTIDs {
		info := st.Res.Reg.Info(tid)
		if info.NumEdges == 1 {
			t1 = int64(tid)
		} else {
			t2 = int64(tid)
		}
	}
	if t1 < 0 || t2 < 0 {
		t.Fatalf("could not classify pruned topologies %v", st.PrunedTIDs)
	}

	query := fmt.Sprintf(`
		SELECT DISTINCT LT.TID
		FROM Protein P, DNA D, LeftTops_Protein_DNA LT
		WHERE P.desc.ct('enzyme') AND D.type = 'mRNA'
		  AND P.ID = LT.E1 AND D.ID = LT.E2
		UNION
		SELECT DISTINCT %d
		FROM Protein P, DNA D, Encodes E
		WHERE P.desc.ct('enzyme') AND D.type = 'mRNA'
		  AND E.PID = P.ID AND E.DID = D.ID
		  AND NOT EXISTS (SELECT 1 FROM ExcpTops_Protein_DNA e
		                  WHERE e.E1 = P.ID AND e.E2 = D.ID AND e.TID = %d)
		UNION
		SELECT DISTINCT %d
		FROM Protein P, DNA D, Uni_encodes UE, Uni_contains UC
		WHERE P.desc.ct('enzyme') AND D.type = 'mRNA'
		  AND UE.PID = P.ID AND UE.UID = UC.UID AND UC.DID = D.ID
		  AND NOT EXISTS (SELECT 1 FROM ExcpTops_Protein_DNA e
		                  WHERE e.E1 = P.ID AND e.E2 = D.ID AND e.TID = %d)`,
		t1, t1, t2, t2)

	var c engine.Counters
	_, rows, err := sql.Run(db, query, &c)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, r := range rows {
		got = append(got, r[0].Int)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })

	p1, _ := relstore.Contains(st.T1.Schema, "desc", "enzyme")
	p2, _ := relstore.Eq(st.T2.Schema, "type", relstore.StrVal("mRNA"))
	ref, err := st.FastTop(methods.Query{Pred1: p1, Pred2: p2})
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for _, it := range ref.Items {
		want = append(want, int64(it.TID))
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("SQL1 = %v, Fast-Top = %v", got, want)
	}
	if len(got) != 4 {
		t.Errorf("SQL1 returned %d topologies, want 4 (T1..T4)", len(got))
	}
	if c.IndexProbes == 0 {
		t.Error("no probes counted")
	}
}

func TestOrderByFetch(t *testing.T) {
	db, _ := figure3WithStore(t)
	_, rows, err := sql.Run(db, `
		SELECT TI.TID, TI.FREQ FROM TopInfo_Protein_DNA TI
		WHERE TI.FREQ = 1
		ORDER BY TID DESC
		FETCH FIRST 2 ROWS ONLY`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0][0].Int < rows[1][0].Int {
		t.Error("not descending")
	}
}

func TestCompileErrors(t *testing.T) {
	db, _ := figure3WithStore(t)
	bad := []string{
		`SELECT x.ID FROM Nope x`,
		`SELECT P.nope FROM Protein P`,
		`SELECT P.ID FROM Protein P, DNA D`, // cross product
		`SELECT P.ID FROM Protein P, Protein P`,
		`SELECT P.ID FROM Protein P WHERE NOT EXISTS (SELECT 1 FROM Protein a, DNA b WHERE a.ID = b.ID)`,
		`SELECT ID FROM Protein P, DNA D WHERE P.ID = D.ID`, // ambiguous ID output
	}
	for _, src := range bad {
		if _, _, err := sql.Run(db, src, nil); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
}

func TestResidualJoinFilter(t *testing.T) {
	db, _ := figure3WithStore(t)
	// A cyclic join graph: the triangle Protein-Unigene-DNA closed by
	// the direct encodes edge. The third join condition becomes a
	// residual filter. Protein 34 / Unigene 103 / DNA 215 is the only
	// such triangle in Figure 3.
	_, rows, err := sql.Run(db, `
		SELECT DISTINCT UE.PID, UC.DID
		FROM Uni_encodes UE, Uni_contains UC, Encodes E
		WHERE UE.UID = UC.UID AND E.PID = UE.PID AND E.DID = UC.DID`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int != 34 || rows[0][1].Int != 215 {
		t.Errorf("triangle = %v, want [(34,215)]", rows)
	}
}
