package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SELECT statement (with optional UNION chain, ORDER
// BY and FETCH FIRST) in the paper's dialect.
func Parse(src string) (*Select, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// ORDER BY / FETCH apply to the whole union chain.
	if p.matchKeyword("ORDER") {
		if !p.expectKeyword("BY") {
			return nil, p.errf("expected BY after ORDER")
		}
		col, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		sel.OrderBy = &col
		if p.matchKeyword("DESC") {
			sel.OrderDesc = true
		} else {
			p.matchKeyword("ASC")
		}
	}
	if p.matchKeyword("FETCH") {
		if !p.expectKeyword("FIRST") {
			return nil, p.errf("expected FIRST after FETCH")
		}
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errf("expected row count after FETCH FIRST")
		}
		k, err := strconv.Atoi(t.text)
		if err != nil || k < 0 {
			return nil, p.errf("bad FETCH count %q", t.text)
		}
		sel.FetchK = k
		if !p.expectKeyword("ROWS") || !p.expectKeyword("ONLY") {
			return nil, p.errf("expected ROWS ONLY")
		}
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.peek().text)
	}
	return sel, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF token
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) backup() {
	if p.pos > 0 {
		p.pos--
	}
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near position %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) matchKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) bool { return p.matchKeyword(kw) }

func (p *parser) parseSelect() (*Select, error) {
	if !p.matchKeyword("SELECT") {
		return nil, p.errf("expected SELECT")
	}
	sel := &Select{}
	if p.matchKeyword("DISTINCT") {
		sel.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if !p.matchKeyword("FROM") {
		return nil, p.errf("expected FROM")
	}
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, p.errf("expected table name, got %q", t.text)
		}
		ref := TableRef{Table: t.text, Alias: t.text}
		if nt := p.peek(); nt.kind == tokIdent && !isKeyword(nt.text) {
			ref.Alias = p.next().text
		}
		sel.From = append(sel.From, ref)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if p.matchKeyword("WHERE") {
		for {
			c, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			sel.Where = append(sel.Where, c)
			if !p.matchKeyword("AND") {
				break
			}
		}
	}
	if p.matchKeyword("UNION") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		sel.Union = sub
	}
	return sel, nil
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"AND": true, "NOT": true, "EXISTS": true, "UNION": true,
	"ORDER": true, "BY": true, "DESC": true, "ASC": true,
	"FETCH": true, "FIRST": true, "ROWS": true, "ONLY": true, "AS": true,
}

func isKeyword(s string) bool { return keywords[strings.ToUpper(s)] }

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return SelectItem{}, p.errf("bad number %q", t.text)
		}
		return SelectItem{IsLit: true, LitInt: v}, nil
	case tokString:
		p.next()
		return SelectItem{IsLit: true, IsStrLit: true, LitStr: t.text}, nil
	case tokIdent:
		col, err := p.parseColRef()
		if err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Col: col}, nil
	default:
		return SelectItem{}, p.errf("expected select item, got %q", t.text)
	}
}

// parseColRef parses ident or ident.ident.
func (p *parser) parseColRef() (ColRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return ColRef{}, p.errf("expected identifier, got %q", t.text)
	}
	if p.peek().kind == tokDot {
		// Could be qualifier.column or column.ct(...) — look ahead.
		p.next()
		t2 := p.next()
		if t2.kind != tokIdent {
			return ColRef{}, p.errf("expected identifier after dot")
		}
		if strings.EqualFold(t2.text, "ct") && p.peek().kind == tokLParen {
			// It was column.ct( — rewind so parseCond sees it.
			p.backup() // t2
			p.backup() // dot
			return ColRef{Column: t.text}, nil
		}
		return ColRef{Qualifier: t.text, Column: t2.text}, nil
	}
	return ColRef{Column: t.text}, nil
}

func (p *parser) parseCond() (Cond, error) {
	if p.matchKeyword("NOT") {
		if !p.expectKeyword("EXISTS") {
			return Cond{}, p.errf("expected EXISTS after NOT")
		}
		if p.next().kind != tokLParen {
			return Cond{}, p.errf("expected ( after NOT EXISTS")
		}
		sub, err := p.parseSelect()
		if err != nil {
			return Cond{}, err
		}
		if p.next().kind != tokRParen {
			return Cond{}, p.errf("expected ) closing NOT EXISTS")
		}
		return Cond{Kind: CondNotExists, Sub: sub}, nil
	}
	left, err := p.parseColRef()
	if err != nil {
		return Cond{}, err
	}
	// col.ct('word') — possibly with a qualifier consumed into left.
	if p.peek().kind == tokDot {
		p.next()
		t := p.next()
		if !strings.EqualFold(t.text, "ct") {
			return Cond{}, p.errf("expected ct after %s.", left)
		}
		if p.next().kind != tokLParen {
			return Cond{}, p.errf("expected ( after ct")
		}
		w := p.next()
		if w.kind != tokString {
			return Cond{}, p.errf("ct() needs a string literal")
		}
		if p.next().kind != tokRParen {
			return Cond{}, p.errf("expected ) closing ct")
		}
		return Cond{Kind: CondContains, L: left, Str: w.text}, nil
	}
	if p.next().kind != tokEq {
		p.backup()
		return Cond{}, p.errf("expected = or .ct after %s", left)
	}
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Cond{}, p.errf("bad number %q", t.text)
		}
		return Cond{Kind: CondColEqInt, L: left, Int: v}, nil
	case tokString:
		p.next()
		return Cond{Kind: CondColEqStr, L: left, Str: t.text}, nil
	case tokIdent:
		right, err := p.parseColRef()
		if err != nil {
			return Cond{}, err
		}
		return Cond{Kind: CondColEqCol, L: left, R: right}, nil
	default:
		return Cond{}, p.errf("expected value after =")
	}
}
