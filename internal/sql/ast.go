package sql

import "fmt"

// ColRef is a possibly-qualified column reference.
type ColRef struct {
	Qualifier string // alias or table name; may be empty
	Column    string
}

// String renders the reference.
func (c ColRef) String() string {
	if c.Qualifier == "" {
		return c.Column
	}
	return c.Qualifier + "." + c.Column
}

// SelectItem is one output column (optionally a literal for the
// paper's "SELECT distinct T2, score(T2)" style constants).
type SelectItem struct {
	Col      ColRef
	IsLit    bool
	LitInt   int64
	LitStr   string
	IsStrLit bool
}

// TableRef is one FROM entry.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// CondKind classifies a WHERE conjunct.
type CondKind int

// The condition kinds of the paper's dialect.
const (
	CondColEqCol  CondKind = iota // P.ID = AT.E1
	CondColEqInt                  // e.TID = 7
	CondColEqStr                  // D.type = 'mRNA'
	CondContains                  // P.desc.ct('enzyme')
	CondNotExists                 // NOT EXISTS (SELECT ...)
)

// Cond is one WHERE conjunct.
type Cond struct {
	Kind CondKind
	L, R ColRef
	Int  int64
	Str  string
	Sub  *Select // for CondNotExists
}

// String renders the condition.
func (c Cond) String() string {
	switch c.Kind {
	case CondColEqCol:
		return fmt.Sprintf("%s = %s", c.L, c.R)
	case CondColEqInt:
		return fmt.Sprintf("%s = %d", c.L, c.Int)
	case CondColEqStr:
		return fmt.Sprintf("%s = '%s'", c.L, c.Str)
	case CondContains:
		return fmt.Sprintf("%s.ct('%s')", c.L, c.Str)
	case CondNotExists:
		return "NOT EXISTS (...)"
	default:
		return "?"
	}
}

// Select is one SELECT block; Union chains additional blocks (SQL set
// union with duplicate elimination, as in SQL1/SQL3).
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    []Cond

	Union *Select

	OrderBy   *ColRef
	OrderDesc bool
	FetchK    int // 0 = no FETCH FIRST clause
}
