package sql

import (
	"fmt"
	"strings"

	"toposearch/internal/engine"
	"toposearch/internal/relstore"
)

// Compile translates a parsed statement into an executable engine plan
// over the database: filtered scans, index nested-loop joins in a
// greedy selectivity order, anti joins for NOT EXISTS, projection,
// distinct, sort and limit.
func Compile(db *relstore.DB, sel *Select, c *engine.Counters) (engine.Op, error) {
	var branches []engine.Op
	for s := sel; s != nil; s = s.Union {
		op, err := compileBlock(db, s, c)
		if err != nil {
			return nil, err
		}
		branches = append(branches, op)
	}
	var plan engine.Op
	if len(branches) == 1 {
		plan = branches[0]
	} else {
		w := len(branches[0].Columns())
		for i, b := range branches[1:] {
			if len(b.Columns()) != w {
				return nil, fmt.Errorf("sql: UNION branch %d has %d columns, first has %d",
					i+2, len(b.Columns()), w)
			}
		}
		plan = engine.NewConcat(branches...)
		// SQL UNION eliminates duplicates.
		plan = engine.NewDistinct(plan, allCols(plan))
	}
	if sel.OrderBy != nil {
		idx, err := findCol(plan, *sel.OrderBy)
		if err != nil {
			return nil, err
		}
		plan = engine.NewSort(plan, idx, sel.OrderDesc, c)
	}
	if sel.FetchK > 0 {
		plan = engine.NewLimit(plan, sel.FetchK)
	}
	return plan, nil
}

// Run compiles and drains a statement, returning the output column
// names and rows.
func Run(db *relstore.DB, src string, c *engine.Counters) ([]string, []relstore.Row, error) {
	sel, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	plan, err := Compile(db, sel, c)
	if err != nil {
		return nil, nil, err
	}
	rows, err := engine.Drain(plan)
	if err != nil {
		return nil, nil, err
	}
	return plan.Columns(), rows, nil
}

func allCols(op engine.Op) []int {
	out := make([]int, len(op.Columns()))
	for i := range out {
		out[i] = i
	}
	return out
}

func findCol(op engine.Op, ref ColRef) (int, error) {
	cols := op.Columns()
	var hit = -1
	for i, c := range cols {
		qualifier, col, _ := strings.Cut(c, ".")
		if col == "" { // unqualified output name
			col = qualifier
			qualifier = ""
		}
		if col != ref.Column {
			continue
		}
		if ref.Qualifier != "" && qualifier != ref.Qualifier {
			continue
		}
		if hit >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %s", ref)
		}
		hit = i
	}
	if hit < 0 {
		return 0, fmt.Errorf("sql: column %s not found among %v", ref, cols)
	}
	return hit, nil
}

type blockCtx struct {
	db     *relstore.DB
	tables map[string]*relstore.Table // alias -> table
	local  map[string][]relstore.Pred // alias -> local predicates
	joins  []Cond
	anti   []Cond
	outer  *blockCtx // enclosing block, for correlated subqueries
}

func newBlockCtx(db *relstore.DB, s *Select, outer *blockCtx) (*blockCtx, error) {
	ctx := &blockCtx{
		db:     db,
		tables: map[string]*relstore.Table{},
		local:  map[string][]relstore.Pred{},
		outer:  outer,
	}
	for _, f := range s.From {
		t := db.Table(f.Table)
		if t == nil {
			return nil, fmt.Errorf("sql: unknown table %q", f.Table)
		}
		if _, dup := ctx.tables[f.Alias]; dup {
			return nil, fmt.Errorf("sql: duplicate alias %q", f.Alias)
		}
		ctx.tables[f.Alias] = t
	}
	return ctx, nil
}

// resolveAlias finds which alias a column reference belongs to.
func (ctx *blockCtx) resolveAlias(ref ColRef) (string, bool) {
	if ref.Qualifier != "" {
		_, ok := ctx.tables[ref.Qualifier]
		return ref.Qualifier, ok
	}
	hit := ""
	for alias, t := range ctx.tables {
		if _, ok := t.Schema.ColIndex(ref.Column); ok {
			if hit != "" {
				return "", false // ambiguous
			}
			hit = alias
		}
	}
	return hit, hit != ""
}

func compileBlock(db *relstore.DB, s *Select, c *engine.Counters) (engine.Op, error) {
	ctx, err := newBlockCtx(db, s, nil)
	if err != nil {
		return nil, err
	}
	// Classify conjuncts.
	for _, cond := range s.Where {
		switch cond.Kind {
		case CondNotExists:
			ctx.anti = append(ctx.anti, cond)
		case CondColEqCol:
			la, lok := ctx.resolveAlias(cond.L)
			ra, rok := ctx.resolveAlias(cond.R)
			if !lok || !rok {
				return nil, fmt.Errorf("sql: cannot resolve %s", cond)
			}
			if la == ra {
				return nil, fmt.Errorf("sql: same-relation equality %s not supported", cond)
			}
			ctx.joins = append(ctx.joins, cond)
		default:
			alias, ok := ctx.resolveAlias(cond.L)
			if !ok {
				return nil, fmt.Errorf("sql: cannot resolve %s", cond)
			}
			p, err := localPred(ctx.tables[alias], cond)
			if err != nil {
				return nil, err
			}
			ctx.local[alias] = append(ctx.local[alias], p)
		}
	}
	plan, err := ctx.buildJoinTree(c)
	if err != nil {
		return nil, err
	}
	// Anti joins for NOT EXISTS.
	for _, cond := range ctx.anti {
		plan, err = ctx.buildAntiJoin(plan, cond.Sub, c)
		if err != nil {
			return nil, err
		}
	}
	// Projection.
	return projectItems(plan, s.Items)
}

func localPred(t *relstore.Table, cond Cond) (relstore.Pred, error) {
	switch cond.Kind {
	case CondColEqInt:
		return relstore.Eq(t.Schema, cond.L.Column, relstore.IntVal(cond.Int))
	case CondColEqStr:
		return relstore.Eq(t.Schema, cond.L.Column, relstore.StrVal(cond.Str))
	case CondContains:
		return relstore.Contains(t.Schema, cond.L.Column, cond.Str)
	default:
		return nil, fmt.Errorf("sql: %s is not a local predicate", cond)
	}
}

// buildJoinTree picks the most selective filtered relation as the
// driver and extends it with index nested-loop joins along the equality
// conjuncts — the standard shape of the paper's plans.
func (ctx *blockCtx) buildJoinTree(c *engine.Counters) (engine.Op, error) {
	// Choose the starting alias: smallest estimated output.
	start := ""
	bestEst := 0.0
	for alias, t := range ctx.tables {
		est := float64(t.NumRows())
		for _, p := range ctx.local[alias] {
			est *= p.Sel(t)
		}
		if start == "" || est < bestEst {
			start, bestEst = alias, est
		}
	}
	if start == "" {
		return nil, fmt.Errorf("sql: no tables in FROM")
	}
	planned := map[string]bool{start: true}
	var plan engine.Op = engine.NewScan(ctx.tables[start], start,
		relstore.And(ctx.local[start]...), c)

	used := make([]bool, len(ctx.joins))
	for len(planned) < len(ctx.tables) {
		progressed := false
		for i, j := range ctx.joins {
			if used[i] {
				continue
			}
			la, _ := ctx.resolveAlias(j.L)
			ra, _ := ctx.resolveAlias(j.R)
			var outerRef, innerRef ColRef
			var innerAlias string
			switch {
			case planned[la] && !planned[ra]:
				outerRef, innerRef, innerAlias = j.L, j.R, ra
			case planned[ra] && !planned[la]:
				outerRef, innerRef, innerAlias = j.R, j.L, la
			default:
				continue
			}
			outerCol, err := findCol(plan, ColRef{Qualifier: qualifierOf(outerRef, ctx), Column: outerRef.Column})
			if err != nil {
				return nil, err
			}
			inner := ctx.tables[innerAlias]
			plan, err = engine.NewIndexJoin(plan, outerCol, inner, innerAlias,
				innerRef.Column, relstore.And(ctx.local[innerAlias]...), c)
			if err != nil {
				return nil, err
			}
			planned[innerAlias] = true
			used[i] = true
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("sql: cross products are not supported (disconnected FROM)")
		}
	}
	// Residual join predicates between already-planned relations (e.g.
	// cycles in the join graph) become filters.
	for i, j := range ctx.joins {
		if used[i] {
			continue
		}
		lIdx, err := findCol(plan, ColRef{Qualifier: qualifierOf(j.L, ctx), Column: j.L.Column})
		if err != nil {
			return nil, err
		}
		rIdx, err := findCol(plan, ColRef{Qualifier: qualifierOf(j.R, ctx), Column: j.R.Column})
		if err != nil {
			return nil, err
		}
		li, ri := lIdx, rIdx
		plan = engine.NewFuncFilter(plan, j.String(), func(r relstore.Row) bool {
			return r[li].Equal(r[ri])
		})
	}
	return plan, nil
}

func qualifierOf(ref ColRef, ctx *blockCtx) string {
	if ref.Qualifier != "" {
		return ref.Qualifier
	}
	alias, _ := ctx.resolveAlias(ref)
	return alias
}

// buildAntiJoin compiles NOT EXISTS (SELECT ... FROM inner WHERE
// correlations AND locals) into an AntiJoin against the outer plan.
func (ctx *blockCtx) buildAntiJoin(outer engine.Op, sub *Select, c *engine.Counters) (engine.Op, error) {
	if sub == nil || len(sub.From) != 1 {
		return nil, fmt.Errorf("sql: NOT EXISTS subquery must have exactly one table")
	}
	subCtx, err := newBlockCtx(ctx.db, sub, ctx)
	if err != nil {
		return nil, err
	}
	innerAlias := sub.From[0].Alias
	inner := subCtx.tables[innerAlias]
	var innerLocal []relstore.Pred
	var outerKeys, innerKeys []int
	var innerKeyCols []string
	for _, cond := range sub.Where {
		switch cond.Kind {
		case CondColEqCol:
			// One side inner, the other correlated to the outer block.
			var innerRef, outerRef ColRef
			if la, ok := subCtx.resolveAlias(cond.L); ok && la == innerAlias {
				if _, ok := subCtx.resolveAlias(cond.R); ok {
					return nil, fmt.Errorf("sql: %s: both sides inner", cond)
				}
				innerRef, outerRef = cond.L, cond.R
			} else {
				innerRef, outerRef = cond.R, cond.L
			}
			oIdx, err := findCol(outer, ColRef{Qualifier: qualifierOf(outerRef, ctx), Column: outerRef.Column})
			if err != nil {
				return nil, err
			}
			outerKeys = append(outerKeys, oIdx)
			innerKeyCols = append(innerKeyCols, innerRef.Column)
		case CondColEqInt, CondColEqStr, CondContains:
			p, err := localPred(inner, cond)
			if err != nil {
				return nil, err
			}
			innerLocal = append(innerLocal, p)
		default:
			return nil, fmt.Errorf("sql: unsupported condition in NOT EXISTS: %s", cond)
		}
	}
	innerScan := engine.NewScan(inner, innerAlias, relstore.And(innerLocal...), c)
	for _, col := range innerKeyCols {
		idx, err := findCol(innerScan, ColRef{Qualifier: innerAlias, Column: col})
		if err != nil {
			return nil, err
		}
		innerKeys = append(innerKeys, idx)
	}
	return engine.NewAntiJoin(outer, outerKeys, innerScan, innerKeys, c), nil
}

// litOp wraps a child, appending literal select items to every tuple.
type litOp struct {
	child engine.Op
	cols  []string
	items []SelectItem // in output order; IsLit entries add constants
	picks []int        // child column index per non-literal item
	buf   relstore.Row
}

func projectItems(plan engine.Op, items []SelectItem) (engine.Op, error) {
	anyLit := false
	for _, it := range items {
		if it.IsLit {
			anyLit = true
		}
	}
	if !anyLit {
		cols := make([]int, len(items))
		for i, it := range items {
			idx, err := findCol(plan, it.Col)
			if err != nil {
				return nil, err
			}
			cols[i] = idx
		}
		return engine.NewProject(plan, cols), nil
	}
	op := &litOp{child: plan, items: items, picks: make([]int, len(items))}
	for i, it := range items {
		if it.IsLit {
			op.picks[i] = -1
			op.cols = append(op.cols, fmt.Sprintf("lit%d", i))
			continue
		}
		idx, err := findCol(plan, it.Col)
		if err != nil {
			return nil, err
		}
		op.picks[i] = idx
		op.cols = append(op.cols, plan.Columns()[idx])
	}
	return op, nil
}

// Columns implements engine.Op.
func (o *litOp) Columns() []string { return o.cols }

// Open implements engine.Op.
func (o *litOp) Open() error { return o.child.Open() }

// Next implements engine.Op.
func (o *litOp) Next() (relstore.Row, bool, error) {
	r, ok, err := o.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	o.buf = o.buf[:0]
	for i, it := range o.items {
		if o.picks[i] >= 0 {
			o.buf = append(o.buf, r[o.picks[i]])
		} else if it.IsStrLit {
			o.buf = append(o.buf, relstore.StrVal(it.LitStr))
		} else {
			o.buf = append(o.buf, relstore.IntVal(it.LitInt))
		}
	}
	return o.buf, true, nil
}

// Close implements engine.Op.
func (o *litOp) Close() error { return o.child.Close() }
