// Package sql implements a small SQL front end covering exactly the
// dialect of the paper's query listings (SQL1–SQL6):
//
//	SELECT [DISTINCT] items FROM table [alias], ...
//	WHERE conjunct AND conjunct ...
//	[UNION select]
//	[ORDER BY column [DESC|ASC]]
//	[FETCH FIRST k ROWS ONLY]
//
// where a conjunct is a column equality (join or literal), a keyword
// containment test col.ct('word'), or NOT EXISTS (subquery). Queries
// parse to an AST and compile to engine operator trees over a relstore
// database, so the paper's listings can be executed verbatim against
// the materialized AllTops/LeftTops/ExcpTops/TopInfo tables.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokEq
	tokStar
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the input; keywords stay tokIdent and are matched
// case-insensitively by the parser.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == ',':
			l.emit(tokComma, ",")
		case c == '.':
			l.emit(tokDot, ".")
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '=':
			l.emit(tokEq, "=")
		case c == '*':
			l.emit(tokStar, "*")
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) emit(k tokKind, s string) {
	l.toks = append(l.toks, token{kind: k, text: s, pos: l.pos})
	l.pos += len(s)
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}
