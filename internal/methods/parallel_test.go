package methods_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"toposearch/internal/biozon"
	"toposearch/internal/core"
	"toposearch/internal/methods"
	"toposearch/internal/ranking"
	"toposearch/internal/relstore"
)

// generatedStore builds a store on the synthetic Zipfian database with
// enough pruning for the parallel pruned-check path to be exercised.
func generatedStore(t *testing.T, threshold int) *methods.Store {
	t.Helper()
	db := biozon.Generate(biozon.DefaultConfig(1))
	s, err := methods.BuildStore(context.Background(), db, biozon.SchemaGraph(),
		biozon.Protein, biozon.DNA, methods.StoreConfig{
			Opts:           core.DefaultOptions(),
			PruneThreshold: threshold,
			Scores:         ranking.Schemes(),
		})
	if err != nil {
		t.Fatalf("BuildStore: %v", err)
	}
	return s
}

// TestOnlineParallelDeterminism asserts the parallel online path's core
// contract: every method returns byte-identical items AND identical
// merged counter totals at Parallelism 1 and 8.
func TestOnlineParallelDeterminism(t *testing.T) {
	s := generatedStore(t, 2)
	if len(s.PrunedTIDs) == 0 {
		t.Fatal("threshold 2 pruned nothing; the parallel pruned-check path is untested")
	}
	p1, err := biozon.SelectivityPred(s.T1.Schema, "medium")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := relstore.Eq(s.T2.Schema, "type", relstore.StrVal("mRNA"))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range methods.AllMethods() {
		q := methods.Query{Pred1: p1, Pred2: p2, K: 10, Ranking: ranking.Domain}
		if m == methods.MethodSQL || m == methods.MethodFullTop || m == methods.MethodFastTop {
			q.K, q.Ranking = 0, ""
		}
		q.Parallelism = 1
		seq, err := s.Run(m, q)
		if err != nil {
			t.Fatalf("%s sequential: %v", m, err)
		}
		q.Parallelism = 8
		par, err := s.Run(m, q)
		if err != nil {
			t.Fatalf("%s parallel: %v", m, err)
		}
		if !reflect.DeepEqual(seq.Items, par.Items) {
			t.Errorf("%s: items differ at parallelism 8: %v vs %v", m, par.Items, seq.Items)
		}
		if seq.Counters != par.Counters {
			t.Errorf("%s: counters differ at parallelism 8: %+v vs %+v", m, par.Counters, seq.Counters)
		}
		if seq.Plan != par.Plan {
			t.Errorf("%s: plan differs at parallelism 8: %v vs %v", m, par.Plan, seq.Plan)
		}
	}
}

// TestConcurrentQueriesSharedStore hammers one Store from many
// goroutines running a mix of methods, selectivities and worker counts
// simultaneously — the data-race check for the shared index maps,
// statistics, and registry (run under -race in CI). Every result must
// match the reference computed sequentially up front.
func TestConcurrentQueriesSharedStore(t *testing.T) {
	s := generatedStore(t, 2)
	ms := methods.AllMethods()
	sels := []string{"selective", "unselective"}

	type job struct {
		m   string
		q   methods.Query
		ref methods.QueryResult
	}
	var jobs []job
	for _, m := range ms {
		if m == methods.MethodSQL {
			// The strawman re-derives topologies from scratch; one
			// selective instance keeps the test fast while still
			// exercising its parallel candidate loop concurrently.
			continue
		}
		for _, sel := range sels {
			p1, err := biozon.SelectivityPred(s.T1.Schema, sel)
			if err != nil {
				t.Fatal(err)
			}
			q := methods.Query{Pred1: p1, Pred2: relstore.True{}, K: 5, Ranking: ranking.Freq}
			if m == methods.MethodFullTop || m == methods.MethodFastTop {
				q.K, q.Ranking = 0, ""
			}
			ref, err := s.Run(m, q)
			if err != nil {
				t.Fatalf("%s/%s reference: %v", m, sel, err)
			}
			jobs = append(jobs, job{m: m, q: q, ref: ref})
		}
	}
	p1, err := biozon.SelectivityPred(s.T1.Schema, "selective")
	if err != nil {
		t.Fatal(err)
	}
	sqlQ := methods.Query{Pred1: p1, Pred2: relstore.True{}}
	sqlRef, err := s.Run(methods.MethodSQL, sqlQ)
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, job{m: methods.MethodSQL, q: sqlQ, ref: sqlRef})

	var wg sync.WaitGroup
	errc := make(chan error, 2*len(jobs))
	for round := 0; round < 2; round++ {
		for i := range jobs {
			wg.Add(1)
			go func(round int, j job) {
				defer wg.Done()
				q := j.q
				q.Parallelism = 4 * (round + 1) // mix worker counts across rounds
				res, err := s.Run(j.m, q)
				if err != nil {
					errc <- fmt.Errorf("%s: %w", j.m, err)
					return
				}
				if !reflect.DeepEqual(res.Items, j.ref.Items) {
					errc <- fmt.Errorf("%s: concurrent run returned %v, want %v", j.m, res.Items, j.ref.Items)
				}
			}(round, jobs[i])
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestConcurrentStoreBuildsSharedDB builds stores for several pairs
// concurrently against one database and graph — the experiments.NewEnv
// pattern — and checks each store still answers correctly.
func TestConcurrentStoreBuildsSharedDB(t *testing.T) {
	db := biozon.Generate(biozon.DefaultConfig(1))
	sg := biozon.SchemaGraph()
	pairs := [][2]string{
		{biozon.Protein, biozon.DNA},
		{biozon.Protein, biozon.Interaction},
		{biozon.Protein, biozon.Unigene},
		{biozon.DNA, biozon.Unigene},
	}
	stores := make([]*methods.Store, len(pairs))
	errs := make([]error, len(pairs))
	var wg sync.WaitGroup
	for i, pair := range pairs {
		wg.Add(1)
		go func(i int, pair [2]string) {
			defer wg.Done()
			stores[i], errs[i] = methods.BuildStore(context.Background(), db, sg, pair[0], pair[1],
				methods.StoreConfig{
					Opts:           core.DefaultOptions(),
					PruneThreshold: 4,
					Scores:         ranking.Schemes(),
				})
		}(i, pair)
	}
	wg.Wait()
	for i, pair := range pairs {
		if errs[i] != nil {
			t.Fatalf("building %v: %v", pair, errs[i])
		}
		res, err := stores[i].FastTop(methods.Query{})
		if err != nil {
			t.Fatalf("%v FastTop: %v", pair, err)
		}
		full, err := stores[i].FullTop(methods.Query{})
		if err != nil {
			t.Fatalf("%v FullTop: %v", pair, err)
		}
		if !reflect.DeepEqual(res.TIDs(), full.TIDs()) {
			t.Errorf("%v: FastTop %v != FullTop %v", pair, res.TIDs(), full.TIDs())
		}
	}
}
