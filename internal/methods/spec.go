package methods

import (
	"context"
	"errors"
	"fmt"

	"toposearch/internal/core"
	"toposearch/internal/engine"
	"toposearch/internal/fault"
	"toposearch/internal/obs"
	"toposearch/internal/relstore"
	"toposearch/internal/shard"
)

var (
	// faultSegment fires at the start of each speculative segment
	// worker; faultExchange fires in the bound-exchange emit callback
	// (chaos harness).
	faultSegment  = fault.Register("engine.segment")
	faultExchange = fault.Register("shard.exchange")
)

// This file is the speculative/sharded parallel early-termination
// driver: the methods half of the subsystem whose engine half (segment
// drains, witness snapshots, the commit sequencer) lives in
// engine/spec.go and whose partitioning half (cost-weighted cuts, the
// scatter-gather bound exchange) lives in internal/shard.
//
// The sequential ET plans (etPlan) win by stopping the moment k groups
// have produced a witness — but a single worker crawls the group
// stream while the rest of the machine idles. etPlanSpec partitions
// the score-ordered stream into Shards × Speculation contiguous
// segments — cut points balanced by the optimizer's per-group cost
// estimates, not group counts, so a Zipfian head group no longer
// dominates one segment — races one restartable DGJ stack per segment,
// and commits witnesses in canonical group order. Two mechanisms
// cancel in-flight losers: the sequencer the moment the k-th witness
// commits, and (earlier) the bound exchange the moment the witnesses
// emitted by a prefix of segments already cover k, making everything a
// later segment can still produce unable to enter the top k — the
// scatter-gather analogue of the paper's ET stopping rule. Items,
// plans and the useful-work counters stay byte-identical to the
// sequential run at any segment/shard count; the work burned by losing
// segments is reported in QueryResult.Spec, the per-shard split in
// QueryResult.Shard.

// etRun dispatches an ET query between the sequential driver and the
// speculative/sharded one. Both ET methods call it with fresh
// counters, so the sequential critical path is simply everything
// charged by the plan.
func (s *Store) etRun(tops *relstore.Table, q Query, k int, c *engine.Counters) ([]Item, SpecReport, ShardReport, bool, error) {
	// PartialOK queries always take the speculative driver, even at
	// width 1: its streaming witness commit means a deadline cut leaves
	// a well-defined committed prefix to return, which the monolithic
	// sequential stack cannot provide.
	if q.Speculation > 1 || q.Shards > 1 || q.PartialOK {
		return s.etPlanSpec(tops, q, k, c)
	}
	sp := q.Trace.Child("et-sequential")
	items, err := s.etPlan(tops, q, k, c)
	if sp != nil {
		sp.SetInt("work", c.Work())
		sp.SetInt("witnesses", int64(len(items)))
		sp.End()
	}
	return items, SpecReport{CriticalPath: *c}, ShardReport{}, false, err
}

// specEvent is one message from a segment worker to the sequencing
// loop: either a witness, or the worker's exit (err == nil means the
// segment finished cleanly; stopped marks a clean exit forced early by
// the bound exchange, whose counters are NOT a full-segment total;
// total always carries the worker's final counters, partial or not).
type specEvent struct {
	seg     int
	witness engine.GroupWitness
	exit    bool
	stopped bool
	err     error
	total   engine.Counters
}

// etSegments cuts the score-ordered group stream into n contiguous
// segments. For the in-order DGJ stack they are balanced by the
// optimizer's per-group cost estimates (Appendix A probe-cost chains
// over the group cardinality histogram), which evens out the Zipfian
// group-cost skew equal-count cuts suffer from. HDGJ keeps equal
// group counts: its dominant cost (hash probes plus the boundary
// lookahead) is flat per group rather than chain-shaped, and weighting
// by the chain estimates concentrates nearly all of its real work in
// one segment. Equal counts are also the fallback when the estimates
// are unavailable. The result is padded with empty trailing windows so
// it always holds exactly n segments.
func (s *Store) etSegments(tops *relstore.Table, q Query, order []int32, n int) shard.Ranges {
	var segs shard.Ranges
	if !q.UseHDGJ {
		if _, stack, err := s.gatherStats(tops, q); err == nil && len(stack.Cards) == len(order) {
			segs = shard.Weighted(stack.GroupCosts(), n)
		}
	}
	if segs == nil {
		segs = shard.Equal(len(order), n)
	}
	end := int32(len(order))
	for len(segs) < n {
		segs = append(segs, [2]int32{end, end})
	}
	return segs
}

// etPlanSpec is the speculative/sharded ET driver. Segment workers
// stream witnesses into an engine.Sequencer; the loop cancels every
// in-flight worker the moment the commit is fully determined, and the
// bound exchange cancels trailing segments even earlier, as soon as
// the witnesses emitted below them cover k. The committed counters are
// completed with the one piece of sequential work no segment performs
// — the HDGJ group lookahead that would have run past the stopping
// segment's boundary — via replayBoundaryLookahead.
func (s *Store) etPlanSpec(tops *relstore.Table, q Query, k int, c *engine.Counters) ([]Item, SpecReport, ShardReport, bool, error) {
	if q.Ranking == "" {
		return nil, SpecReport{}, ShardReport{}, false, fmt.Errorf("methods: ET plans need a ranking")
	}
	// Resolve the score order once; every segment's windowed scan and
	// the boundary replay share this one (read-only) snapshot instead
	// of each re-materializing all N positions.
	order, err := s.scoreOrder(q.Ranking)
	if err != nil {
		return nil, SpecReport{}, ShardReport{}, false, err
	}
	width := q.Speculation
	if width < 1 {
		width = 1
	}
	nshards := q.Shards
	if nshards < 1 {
		nshards = 1
	}
	segs := s.etSegments(tops, q, order, nshards*width)
	rep := SpecReport{Width: width}
	shrep := ShardReport{}
	trace := q.Trace.Child("et-race")
	defer trace.End()
	var segSpans []*obs.Span
	if trace != nil {
		trace.SetInt("segments", int64(len(segs)))
		trace.SetInt("width", int64(width))
		trace.SetInt("shards", int64(nshards))
		segSpans = make([]*obs.Span, len(segs))
		for i, sg := range segs {
			segSpans[i] = trace.Child(fmt.Sprintf("segment %d [%d,%d)", i, sg[0], sg[1]))
		}
	}
	// Resolve the witness rows' TID/score positions from the real stack
	// output layout (an empty-window stack; operators are never opened)
	// instead of assuming TopInfo's columns prefix the row.
	var probe engine.Counters
	_, tidCol, scoreIdx, err := s.buildETStack(tops, q, order, 0, 0, &probe, nil)
	if err != nil {
		return nil, rep, shrep, false, err
	}

	parent := q.Ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	// The bound exchange: segment workers report every emitted witness,
	// and a segment is cancelled (or told to stop itself) the moment
	// the witnesses emitted at or below some earlier segment already
	// cover k. With k <= 0 every group is wanted, so there is no bound
	// to exchange.
	var ex *shard.Exchange
	segCancels := make([]context.CancelFunc, len(segs))
	segCtxs := make([]context.Context, len(segs))
	for i := range segs {
		segCtxs[i], segCancels[i] = context.WithCancel(ctx)
	}
	defer func() {
		for _, cf := range segCancels {
			cf()
		}
	}()
	if k > 0 && !q.NoBoundExchange && len(segs) > 1 {
		ex = shard.NewExchange(k, len(segs))
		for i := range segs {
			ex.Bind(i, segCancels[i])
		}
	}

	events := make(chan specEvent, 2*len(segs))
	// Spawn segment 0 last: the runtime runs the last-spawned goroutine
	// first and the rest in spawn order, so on undersubscribed machines
	// the workers start in roughly canonical segment order — the
	// sequential run's own priority, and the order that lets the stop
	// (and the bound exchange) cancel high segments before they burn
	// their windows. Results never depend on this scheduling hint; it
	// only shifts work from wasted to never-started.
	spawnOrder := make([]int, 0, len(segs))
	for i := 1; i < len(segs); i++ {
		spawnOrder = append(spawnOrder, i)
	}
	spawnOrder = append(spawnOrder, 0)
	for _, i := range spawnOrder {
		go func(seg int, lo, hi int) {
			var wc engine.Counters
			var stopped bool
			var err error
			// The exit event is sent from the deferred recover so a
			// panicking worker still reports — otherwise the sequencing
			// loop would wait on it forever. The panic itself is
			// contained into the event's typed error.
			defer func() {
				if v := recover(); v != nil {
					err, stopped = fault.NewPanicError("engine.segment", v), false
				}
				events <- specEvent{seg: seg, exit: true, stopped: stopped, err: err, total: wc}
			}()
			sctx := segCtxs[seg]
			if err = faultSegment.Hit(); err != nil {
				return
			}
			var g engine.GroupOp
			g, _, _, err = s.buildETStack(tops, q, order, lo, hi, &wc, sctx)
			if err != nil {
				return
			}
			var exchErr error
			stopped, err = engine.DrainGroupWitnessesFunc(sctx, g, &wc, k, func(w engine.GroupWitness) bool {
				events <- specEvent{seg: seg, witness: w}
				if e := faultExchange.Hit(); e != nil {
					exchErr = e
					return true
				}
				return ex != nil && ex.Emit(seg)
			})
			if err == nil && exchErr != nil {
				err, stopped = exchErr, false
			}
		}(i, int(segs[i][0]), int(segs[i][1]))
	}

	// Sequencing loop: commit in canonical order as events arrive, and
	// cancel the racers the moment the outcome is determined. The loop
	// keeps draining until every worker has exited so no goroutine is
	// left blocked on the events channel.
	seqr := engine.NewSequencer(k, len(segs))
	errs := make([]error, len(segs))
	segWork := make([]int64, len(segs))
	segWitness := make([]int, len(segs))
	segStopped := make([]bool, len(segs))
	var burned engine.Counters // every worker's final counters, won or lost
	for remaining := len(segs); remaining > 0; {
		ev := <-events
		switch {
		case ev.exit:
			remaining--
			burned.Add(ev.total)
			segWork[ev.seg] = ev.total.Work()
			segStopped[ev.seg] = ev.stopped
			if segSpans != nil {
				sp := segSpans[ev.seg]
				sp.SetInt("work", ev.total.Work())
				sp.SetInt("witnesses", int64(segWitness[ev.seg]))
				if ev.stopped {
					sp.SetInt("bound_stopped", 1)
				}
				if ev.err != nil {
					sp.SetStr("error", ev.err.Error())
				}
				sp.End()
			}
			if ev.err != nil {
				errs[ev.seg] = ev.err
				break
			}
			if ev.stopped {
				// The exchange stopped this worker mid-window: its
				// counters are not a full-segment total, and the
				// sequencer never needs the missing remainder (the
				// witnesses that cover the top k were emitted before the
				// stop). Reporting SegmentDone here would understate the
				// segment, so don't.
				break
			}
			if seqr.SegmentDone(ev.seg, ev.total) {
				cancel()
			}
		default:
			segWitness[ev.seg]++
			if seqr.Witness(ev.seg, ev.witness) {
				cancel()
			}
		}
	}
	if !seqr.Finished() {
		// Deadline cut with PartialOK: if every failure is the deadline
		// (or the cancellation it cascaded into), the committed witness
		// prefix is exactly what a sequential run truncated at the same
		// point would have produced — return it as a partial answer.
		// Counters then report the work actually burned.
		deadlined := false
		realErr := false
		for _, err := range errs {
			switch {
			case err == nil:
			case errors.Is(err, context.DeadlineExceeded):
				deadlined = true
			case errors.Is(err, context.Canceled):
			default:
				realErr = true
			}
		}
		if q.PartialOK && deadlined && !realErr {
			c.Add(burned)
			witnesses := seqr.Partial()
			c.TuplesOut += int64(len(witnesses))
			if nshards > 1 {
				shrep = etShardReport(nshards, width, segs, segWork, segWitness, segStopped, segComplete(errs), ex)
			}
			recordSpecMetrics(len(segs), burned.Work(), 0, shrep)
			trace.SetInt("partial", 1)
			items := make([]Item, len(witnesses))
			for i, w := range witnesses {
				items[i] = Item{TID: core.TopologyID(w.W.Row[tidCol].Int), Score: w.W.Row[scoreIdx].Int}
			}
			return items, rep, shrep, true, nil
		}
		// A segment the commit still needed failed; surface the
		// earliest failure in canonical order (losers past the commit
		// point are the only segments allowed to die cancelled).
		for _, err := range errs {
			if err != nil {
				return nil, rep, shrep, false, err
			}
		}
		return nil, rep, shrep, false, fmt.Errorf("methods: speculative ET stalled without error")
	}
	out, err := seqr.Outcome()
	if err != nil {
		return nil, rep, shrep, false, err
	}

	committed := out.Counters
	c.Add(committed)
	rep.CriticalPath = out.CriticalPath
	if out.NeedLookahead {
		rsp := trace.Child("boundary-lookahead")
		// The stopping witness left its segment's HDGJ lookahead open:
		// a sequential run would have kept scanning the group stream
		// past the segment boundary for the next non-empty group.
		// Replay exactly that boundary scan so the useful-work counters
		// stay byte-identical to the sequential stack's. The replay is
		// part of the stopping segment's share of the latency bound.
		before := *c
		if err := s.replayBoundaryLookahead(tops, order, int(segs[out.StopSeg][1]), c); err != nil {
			return nil, rep, shrep, false, err
		}
		delta := *c
		delta.Sub(before)
		rep.CriticalPath.Add(delta)
		if rsp != nil {
			rsp.SetInt("work", delta.Work())
			rsp.End()
		}
	}
	c.TuplesOut += int64(len(out.Witnesses))

	// Wasted work: everything the racers burned beyond the committed
	// useful work.
	rep.Wasted = burned
	rep.Wasted.Sub(committed)

	// Per-shard accounting: shard j owns the contiguous segment block
	// [j*width, (j+1)*width).
	if nshards > 1 {
		shrep = etShardReport(nshards, width, segs, segWork, segWitness, segStopped, segComplete(errs), ex)
	}
	recordSpecMetrics(len(segs), committed.Work(), rep.Wasted.Work(), shrep)

	items := make([]Item, len(out.Witnesses))
	for i, w := range out.Witnesses {
		items[i] = Item{TID: core.TopologyID(w.W.Row[tidCol].Int), Score: w.W.Row[scoreIdx].Int}
	}
	return items, rep, shrep, false, nil
}

// recordSpecMetrics folds one speculative run into the obs counters:
// segments raced, useful vs wasted work, and (when sharded) per-shard
// work and bound-exchange stops. One gated call per query, not per
// event.
func recordSpecMetrics(segments int, useful, wasted int64, shrep ShardReport) {
	if !obs.Enabled() {
		return
	}
	obsSpecSegments.Add(int64(segments))
	obsSpecUseful.Add(useful)
	obsSpecWasted.Add(wasted)
	if shrep.Count > 1 {
		obsShardExecutors.Add(int64(shrep.Count))
		for _, st := range shrep.Stats {
			obsShardWork.Add(st.Work)
			if st.Pruned {
				obsShardPruned.Inc()
			}
		}
	}
}

// segComplete derives per-segment completeness from the worker exit
// errors: a segment is complete unless the query deadline cut it off.
// Cancellation by the commit or the bound exchange is a legitimate full
// stop, not an incompleteness.
func segComplete(errs []error) []bool {
	out := make([]bool, len(errs))
	for i, err := range errs {
		out[i] = err == nil || errors.Is(err, context.Canceled)
	}
	return out
}

// etShardReport folds per-segment accounting into per-shard stats:
// shard j owns the contiguous segment block [j*width, (j+1)*width).
func etShardReport(nshards, width int, segs shard.Ranges, segWork []int64, segWitness []int, segStopped, segDone []bool, ex *shard.Exchange) ShardReport {
	shrep := ShardReport{Count: nshards, Stats: make([]ShardStat, 0, nshards)}
	for j := 0; j < nshards; j++ {
		st := ShardStat{Shard: j, Lo: segs[j*width][0], Hi: segs[(j+1)*width-1][1], Complete: true}
		for i := j * width; i < (j+1)*width; i++ {
			st.Work += segWork[i]
			st.Witnesses += segWitness[i]
			if segStopped[i] || (ex != nil && ex.Cancelled(i)) {
				st.Pruned = true
			}
			if !segDone[i] {
				st.Complete = false
			}
		}
		shrep.Stats = append(shrep.Stats, st)
	}
	return shrep
}

// scoreOrder resolves the descending score order of the TopInfo rows —
// the canonical group order of the ET plans — as one reusable position
// snapshot.
func (s *Store) scoreOrder(rk string) ([]int32, error) {
	idx, ok := s.TopInfo.OrderedIndexOn(core.ScoreColumn(rk))
	if !ok {
		return nil, fmt.Errorf("methods: no score index for ranking %q", rk)
	}
	order := make([]int32, 0, s.TopInfo.NumRows())
	idx.Scan(true, func(pos int32) bool {
		order = append(order, pos)
		return true
	})
	return order, nil
}

// replayBoundaryLookahead charges the work a sequential HDGJ stack
// performs after emitting the stopping witness: loading the witness's
// group buffered one tuple of the next non-empty group, which scans
// the score-ordered TopInfo stream — one row read and one Tops index
// probe per group — until a group with Tops matches appears (or the
// stream ends). The stopping segment's own window already absorbed the
// scan up to its boundary; this replays the continuation from the
// first row after the window, mirroring IDGJ's probe accounting
// exactly.
func (s *Store) replayBoundaryLookahead(tops *relstore.Table, order []int32, from int, c *engine.Counters) error {
	topsIdx, err := tops.CreateHashIndex("TID")
	if err != nil {
		return err
	}
	tidCol, _ := s.TopInfo.Schema.ColIndex("TID")
	for _, pos := range order[from:] {
		c.RowsScanned++
		c.IndexProbes++
		if len(topsIdx.LookupInt(s.TopInfo.IntAt(pos, tidCol))) > 0 {
			break
		}
	}
	return nil
}
