package methods

import (
	"context"
	"fmt"

	"toposearch/internal/core"
	"toposearch/internal/engine"
	"toposearch/internal/relstore"
)

// This file is the speculative parallel early-termination driver: the
// methods half of the subsystem whose engine half (segment drains,
// witness snapshots, the commit sequencer) lives in engine/spec.go.
//
// The sequential ET plans (etPlan) win by stopping the moment k groups
// have produced a witness — but a single worker crawls the group
// stream while the rest of the machine idles. etPlanSpec partitions
// the score-ordered stream into Query.Speculation contiguous segments,
// races one restartable DGJ stack per segment, and commits witnesses
// in canonical group order, cancelling in-flight losers the moment the
// k-th witness commits. Items, plans and the useful-work counters stay
// byte-identical to the sequential run at any width; the work burned
// by losing segments is reported separately in QueryResult.Spec.

// etRun dispatches an ET query between the sequential driver and the
// speculative one. Both ET methods call it with fresh counters, so the
// sequential critical path is simply everything charged by the plan.
func (s *Store) etRun(tops *relstore.Table, q Query, k int, c *engine.Counters) ([]Item, SpecReport, error) {
	if q.Speculation > 1 {
		return s.etPlanSpec(tops, q, k, c)
	}
	items, err := s.etPlan(tops, q, k, c)
	return items, SpecReport{CriticalPath: *c}, err
}

// specEvent is one message from a segment worker to the sequencing
// loop: either a witness, or the worker's exit (err == nil means the
// segment ran to completion; total always carries the worker's final
// counters, partial or not).
type specEvent struct {
	seg     int
	witness engine.GroupWitness
	exit    bool
	err     error
	total   engine.Counters
}

// etPlanSpec is the speculative ET driver. Segment workers stream
// witnesses into an engine.Sequencer; the loop cancels every in-flight
// worker the moment the commit is fully determined. The committed
// counters are completed with the one piece of sequential work no
// segment performs — the HDGJ group lookahead that would have run past
// the stopping segment's boundary — via replayBoundaryLookahead.
func (s *Store) etPlanSpec(tops *relstore.Table, q Query, k int, c *engine.Counters) ([]Item, SpecReport, error) {
	if q.Ranking == "" {
		return nil, SpecReport{}, fmt.Errorf("methods: ET plans need a ranking")
	}
	// Resolve the score order once; every segment's windowed scan and
	// the boundary replay share this one (read-only) snapshot instead
	// of each re-materializing all N positions.
	order, err := s.scoreOrder(q.Ranking)
	if err != nil {
		return nil, SpecReport{}, err
	}
	width := q.Speculation
	segs := shardRanges(len(order), width)
	rep := SpecReport{Width: width}
	// Resolve the witness rows' TID/score positions from the real stack
	// output layout (an empty-window stack; operators are never opened)
	// instead of assuming TopInfo's columns prefix the row.
	var probe engine.Counters
	_, tidCol, scoreIdx, err := s.buildETStack(tops, q, order, 0, 0, &probe, nil)
	if err != nil {
		return nil, rep, err
	}

	parent := q.Ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	events := make(chan specEvent, 2*len(segs))
	for i := range segs {
		go func(seg int, lo, hi int) {
			var wc engine.Counters
			g, _, _, err := s.buildETStack(tops, q, order, lo, hi, &wc, ctx)
			if err == nil {
				err = engine.DrainGroupWitnesses(ctx, g, &wc, k, func(w engine.GroupWitness) {
					events <- specEvent{seg: seg, witness: w}
				})
			}
			events <- specEvent{seg: seg, exit: true, err: err, total: wc}
		}(i, int(segs[i][0]), int(segs[i][1]))
	}

	// Sequencing loop: commit in canonical order as events arrive, and
	// cancel the racers the moment the outcome is determined. The loop
	// keeps draining until every worker has exited so no goroutine is
	// left blocked on the events channel.
	seqr := engine.NewSequencer(k, len(segs))
	errs := make([]error, len(segs))
	var burned engine.Counters // every worker's final counters, won or lost
	for remaining := len(segs); remaining > 0; {
		ev := <-events
		switch {
		case ev.exit:
			remaining--
			burned.Add(ev.total)
			if ev.err != nil {
				errs[ev.seg] = ev.err
				break
			}
			if seqr.SegmentDone(ev.seg, ev.total) {
				cancel()
			}
		default:
			if seqr.Witness(ev.seg, ev.witness) {
				cancel()
			}
		}
	}
	if !seqr.Finished() {
		// A segment the commit still needed failed; surface the
		// earliest failure in canonical order (losers past the commit
		// point are the only segments allowed to die cancelled).
		for _, err := range errs {
			if err != nil {
				return nil, rep, err
			}
		}
		return nil, rep, fmt.Errorf("methods: speculative ET stalled without error")
	}
	out, err := seqr.Outcome()
	if err != nil {
		return nil, rep, err
	}

	committed := out.Counters
	c.Add(committed)
	rep.CriticalPath = out.CriticalPath
	if out.NeedLookahead {
		// The stopping witness left its segment's HDGJ lookahead open:
		// a sequential run would have kept scanning the group stream
		// past the segment boundary for the next non-empty group.
		// Replay exactly that boundary scan so the useful-work counters
		// stay byte-identical to the sequential stack's. The replay is
		// part of the stopping segment's share of the latency bound.
		before := *c
		if err := s.replayBoundaryLookahead(tops, order, int(segs[out.StopSeg][1]), c); err != nil {
			return nil, rep, err
		}
		delta := *c
		delta.Sub(before)
		rep.CriticalPath.Add(delta)
	}
	c.TuplesOut += int64(len(out.Witnesses))

	// Wasted work: everything the racers burned beyond the committed
	// useful work.
	rep.Wasted = burned
	rep.Wasted.Sub(committed)

	items := make([]Item, len(out.Witnesses))
	for i, w := range out.Witnesses {
		items[i] = Item{TID: core.TopologyID(w.W.Row[tidCol].Int), Score: w.W.Row[scoreIdx].Int}
	}
	return items, rep, nil
}

// scoreOrder resolves the descending score order of the TopInfo rows —
// the canonical group order of the ET plans — as one reusable position
// snapshot.
func (s *Store) scoreOrder(rk string) ([]int32, error) {
	idx, ok := s.TopInfo.OrderedIndexOn(core.ScoreColumn(rk))
	if !ok {
		return nil, fmt.Errorf("methods: no score index for ranking %q", rk)
	}
	order := make([]int32, 0, s.TopInfo.NumRows())
	idx.Scan(true, func(pos int32) bool {
		order = append(order, pos)
		return true
	})
	return order, nil
}

// replayBoundaryLookahead charges the work a sequential HDGJ stack
// performs after emitting the stopping witness: loading the witness's
// group buffered one tuple of the next non-empty group, which scans
// the score-ordered TopInfo stream — one row read and one Tops index
// probe per group — until a group with Tops matches appears (or the
// stream ends). The stopping segment's own window already absorbed the
// scan up to its boundary; this replays the continuation from the
// first row after the window, mirroring IDGJ's probe accounting
// exactly.
func (s *Store) replayBoundaryLookahead(tops *relstore.Table, order []int32, from int, c *engine.Counters) error {
	topsIdx, err := tops.CreateHashIndex("TID")
	if err != nil {
		return err
	}
	tidCol, _ := s.TopInfo.Schema.ColIndex("TID")
	for _, pos := range order[from:] {
		c.RowsScanned++
		c.IndexProbes++
		if len(topsIdx.LookupInt(s.TopInfo.IntAt(pos, tidCol))) > 0 {
			break
		}
	}
	return nil
}
