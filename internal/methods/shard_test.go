package methods_test

import (
	"fmt"
	"testing"

	"toposearch/internal/biozon"
	"toposearch/internal/methods"
	"toposearch/internal/ranking"
	"toposearch/internal/relstore"
)

// TestShardedETMatchesSingleStore pins the scatter-gather contract at
// the methods level: for every ET method, both DGJ variants, several k
// values, with and without the bound exchange, items AND useful-work
// counters at any shards × speculation combination are byte-identical
// to the single-store sequential run, and the shard report accounts
// every executor.
func TestShardedETMatchesSingleStore(t *testing.T) {
	s := syntheticStore(t, 1, 42, 2)
	sel, err := biozon.SelectivityPred(s.T1.Schema, "selective")
	if err != nil {
		t.Fatal(err)
	}
	med, err := biozon.SelectivityPred(s.T2.Schema, "medium")
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{methods.MethodFullTopKET, methods.MethodFastTopKET} {
		for _, hdgj := range []bool{false, true} {
			for _, k := range []int{1, 5, 100, 0} {
				q := methods.Query{Pred1: sel, Pred2: med, K: k,
					Ranking: ranking.Domain, UseHDGJ: hdgj, Parallelism: 1}
				want, err := s.Run(method, q)
				if err != nil {
					t.Fatalf("%s single: %v", method, err)
				}
				for _, shards := range []int{2, 3, 8} {
					for _, spec := range []int{1, 4} {
						for _, noEx := range []bool{false, true} {
							qq := q
							qq.Shards = shards
							qq.Speculation = spec
							qq.NoBoundExchange = noEx
							got, err := s.Run(method, qq)
							if err != nil {
								t.Fatalf("%s shards=%d spec=%d: %v", method, shards, spec, err)
							}
							tag := fmt.Sprintf("%s/hdgj=%v/k=%d/shards=%d/spec=%d/noex=%v", method, hdgj, k, shards, spec, noEx)
							if gi, wi := itemsStr(got.Items), itemsStr(want.Items); gi != wi {
								t.Errorf("%s: items %s, want %s", tag, gi, wi)
							}
							if got.Counters != want.Counters {
								t.Errorf("%s: counters %+v, want %+v", tag, got.Counters, want.Counters)
							}
							if got.Shard.Count != shards {
								t.Errorf("%s: shard count %d, want %d", tag, got.Shard.Count, shards)
							}
							if len(got.Shard.Stats) != shards {
								t.Fatalf("%s: %d shard stats, want %d", tag, len(got.Shard.Stats), shards)
							}
							checkShardStats(t, tag, got.Shard)
							if noEx && got.Shard.PrunedShards() != 0 {
								t.Errorf("%s: %d shards pruned with the exchange disabled", tag, got.Shard.PrunedShards())
							}
							w := got.Spec.Wasted
							if w.RowsScanned < 0 || w.IndexProbes < 0 || w.TuplesOut < 0 || w.Comparisons < 0 {
								t.Errorf("%s: negative wasted work %+v", tag, w)
							}
						}
					}
				}
			}
		}
	}
}

// checkShardStats asserts the structural invariants of a shard report:
// ordered contiguous windows and non-negative work.
func checkShardStats(t *testing.T, tag string, rep methods.ShardReport) {
	t.Helper()
	for i, st := range rep.Stats {
		if st.Shard != i {
			t.Errorf("%s: stat %d has shard index %d", tag, i, st.Shard)
		}
		if st.Hi < st.Lo || st.Work < 0 || st.Witnesses < 0 {
			t.Errorf("%s: malformed shard stat %+v", tag, st)
		}
		if i > 0 && st.Lo != rep.Stats[i-1].Hi {
			t.Errorf("%s: shard %d window [%d,%d) not contiguous with previous hi %d",
				tag, i, st.Lo, st.Hi, rep.Stats[i-1].Hi)
		}
	}
}

// TestShardedScanMethodsMatchSingleStore pins the scan-method half of
// the contract: Full-Top/Fast-Top/Full-Top-k/Fast-Top-k over
// cost-weighted entity shards return byte-identical items and counter
// totals to the single-store run, at every shard count and with
// parallel workers underneath.
func TestShardedScanMethodsMatchSingleStore(t *testing.T) {
	s := syntheticStore(t, 1, 42, 2)
	med, err := biozon.SelectivityPred(s.T1.Schema, "medium")
	if err != nil {
		t.Fatal(err)
	}
	mrna, err := relstore.Eq(s.T2.Schema, "type", relstore.StrVal("mRNA"))
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{methods.MethodFullTop, methods.MethodFastTop,
		methods.MethodFullTopK, methods.MethodFastTopK} {
		q := methods.Query{Pred1: med, Pred2: mrna, Parallelism: 1}
		if method == methods.MethodFullTopK || method == methods.MethodFastTopK {
			q.K = 5
			q.Ranking = ranking.Domain
		}
		want, err := s.Run(method, q)
		if err != nil {
			t.Fatalf("%s single: %v", method, err)
		}
		for _, shards := range []int{2, 3, 8} {
			for _, par := range []int{1, 4} {
				qq := q
				qq.Shards = shards
				qq.Parallelism = par
				got, err := s.Run(method, qq)
				if err != nil {
					t.Fatalf("%s shards=%d: %v", method, shards, err)
				}
				tag := fmt.Sprintf("%s/shards=%d/par=%d", method, shards, par)
				if gi, wi := itemsStr(got.Items), itemsStr(want.Items); gi != wi {
					t.Errorf("%s: items %s, want %s", tag, gi, wi)
				}
				if got.Counters != want.Counters {
					t.Errorf("%s: counters %+v, want %+v", tag, got.Counters, want.Counters)
				}
				if got.Shard.Count == 0 || len(got.Shard.Stats) == 0 {
					t.Fatalf("%s: missing shard report", tag)
				}
				checkShardStats(t, tag, got.Shard)
				var total int64
				for _, st := range got.Shard.Stats {
					total += st.Work
				}
				if total <= 0 || total > got.Counters.Work() {
					t.Errorf("%s: shard work sum %d outside (0, %d]", tag, total, got.Counters.Work())
				}
			}
		}
	}
}

// TestEntityShardRangesCoverAndRoute pins the partition function the
// queries and delta routing share: the cost-weighted entity ranges
// cover the entity table exactly, and ShardOfEntity routes every known
// entity into its owning range (unknown entities clamp to the last
// shard).
func TestEntityShardRangesCoverAndRoute(t *testing.T) {
	s := syntheticStore(t, 1, 42, 2)
	n := s.T1.NumRows()
	keyCol := s.T1.Schema.KeyCol
	for _, shards := range []int{1, 2, 3, 7} {
		r := s.EntityShardRanges(shards)
		if len(r) != shards {
			t.Fatalf("%d shards: got %d ranges", shards, len(r))
		}
		lo := int32(0)
		for i, rg := range r {
			if rg[0] != lo || rg[1] < rg[0] {
				t.Fatalf("%d shards: range %d = %v not contiguous from %d", shards, i, rg, lo)
			}
			lo = rg[1]
		}
		if int(lo) != n {
			t.Fatalf("%d shards: ranges cover [0,%d), want [0,%d)", shards, lo, n)
		}
		for pos := int32(0); pos < int32(n); pos++ {
			id := s.T1.IntAt(pos, keyCol)
			sh := s.ShardOfEntity(id, shards)
			if pos < r[sh][0] || pos >= r[sh][1] {
				t.Fatalf("%d shards: entity %d at pos %d routed to shard %d %v", shards, id, pos, sh, r[sh])
			}
		}
		if sh := s.ShardOfEntity(-12345, shards); sh != shards-1 {
			t.Errorf("%d shards: unknown entity routed to %d, want last shard %d", shards, sh, shards-1)
		}
	}
}

// TestMergePrunedParallelMatchesSequential pins the parallelized SQL4
// cut-off merge: Fast-Top-k(-ET) with workers runs the pruned
// existence checks speculatively in parallel, yet items and counter
// totals stay byte-identical to the sequential merge — in the
// underfull regime (large k: every pruned topology needs its check)
// and the overfull-with-admissions regime (small k: the bar rises as
// checks admit candidates, shrinking the executed set).
func TestMergePrunedParallelMatchesSequential(t *testing.T) {
	// Threshold 1 prunes aggressively so the merge has many candidates.
	s := syntheticStore(t, 1, 42, 1)
	if len(s.PrunedTIDs) < 2 {
		t.Fatalf("store pruned only %d topologies; test needs candidates", len(s.PrunedTIDs))
	}
	med, err := biozon.SelectivityPred(s.T1.Schema, "medium")
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{methods.MethodFastTopK, methods.MethodFastTopKET} {
		for _, k := range []int{1, 2, 1000} {
			q := methods.Query{Pred1: med, K: k, Ranking: ranking.Domain, Parallelism: 1}
			want, err := s.Run(method, q)
			if err != nil {
				t.Fatalf("%s seq: %v", method, err)
			}
			for _, par := range []int{2, 8} {
				qq := q
				qq.Parallelism = par
				got, err := s.Run(method, qq)
				if err != nil {
					t.Fatalf("%s par=%d: %v", method, par, err)
				}
				tag := fmt.Sprintf("%s/k=%d/par=%d", method, k, par)
				if gi, wi := itemsStr(got.Items), itemsStr(want.Items); gi != wi {
					t.Errorf("%s: items %s, want %s", tag, gi, wi)
				}
				if got.Counters != want.Counters {
					t.Errorf("%s: counters %+v, want %+v", tag, got.Counters, want.Counters)
				}
				w := got.Spec.Wasted
				if w.RowsScanned < 0 || w.IndexProbes < 0 {
					t.Errorf("%s: negative wasted work %+v", tag, w)
				}
			}
		}
	}
}
