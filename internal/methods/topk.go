package methods

import (
	"context"
	"errors"

	"toposearch/internal/engine"
	"toposearch/internal/relstore"
)

// topKOverTops runs the regular top-k pipeline (SQL3/SQL4 upper
// sub-query) over the given Tops table: join, attach scores, distinct,
// order by score, fetch k. The join shards its driving entity scan
// across the query workers (or, under Query.Shards, across the
// cost-weighted entity shards).
func (s *Store) topKOverTops(tops *relstore.Table, q Query, c *engine.Counters) ([]Item, []ShardStat, bool, error) {
	tids, stats, partial, err := s.distinctTopsTIDs(tops, q, c)
	if err != nil {
		return nil, nil, false, err
	}
	items, err := s.itemsForTIDs(tids, q.Ranking)
	if err != nil {
		return nil, nil, false, err
	}
	sortItems(items)
	return items, stats, partial, nil
}

// shardReportFor wraps per-shard stats into a report when the query
// actually ran sharded.
func shardReportFor(q Query, stats []ShardStat) ShardReport {
	if q.Shards > 1 && len(stats) > 0 {
		return ShardReport{Count: len(stats), Stats: stats}
	}
	return ShardReport{}
}

// FullTopK is SQL3 over AllTops: compute every topology result, order
// by score, fetch the first k.
func (s *Store) FullTopK(q Query) (QueryResult, error) {
	var c engine.Counters
	items, stats, partial, err := s.topKOverTops(s.AllTops, q, &c)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Items: trimK(items, q.K), Counters: c, Shard: shardReportFor(q, stats), Partial: partial}, nil
}

// FastTopK is the Fast-Top-k method of Section 5.1 (queries SQL4 and
// SQL5): first the top-k over LeftTops; then, only when a pruned
// topology could still enter the result — the result is underfull or
// the pruned topology's score beats the current k-th score — run the
// per-topology existence check with the exception-table guard.
func (s *Store) FastTopK(q Query) (QueryResult, error) {
	var c engine.Counters
	items, stats, partial, err := s.topKOverTops(s.LeftTops, q, &c)
	if err != nil {
		return QueryResult{}, err
	}
	items = trimK(items, q.K)
	var wasted engine.Counters
	if !partial {
		// A deadline already cut the join phase: the expired context
		// would fail every pruned-topology check, so the partial answer
		// ships without the merge.
		items, wasted, partial, err = s.mergePruned(items, q, &c)
		if err != nil {
			return QueryResult{}, err
		}
	}
	res := QueryResult{Items: items, Counters: c, Shard: shardReportFor(q, stats), Partial: partial}
	res.Spec.Wasted.Add(wasted)
	return res, nil
}

// mergePruned applies the SQL4 cut-off and runs SQL5 for each pruned
// topology that could still reach the top k. It returns the merged
// result plus the speculative work its parallel phase burned beyond
// what the sequential loop charges.
//
// The cut-off compares each pruned candidate against the current k-th
// result, which earlier admissions may have raised, so WHICH existence
// checks run depends on the outcomes of previous ones — the loop's
// decisions are inherently sequential. But the executed set can only
// SHRINK as the bar rises: a candidate cut off against the initial
// k-th result stays cut off forever. So with workers available the
// checks passing the initial cut-off run speculatively in parallel
// (each into private counters), and a sequential replay then re-walks
// the candidates in order, re-applying the cut-off against the
// evolving bar and charging exactly the checks the classical loop
// would have executed — making items AND counters byte-identical to
// the sequential run, with the surplus checks reported as wasted work.
func (s *Store) mergePruned(items []Item, q Query, c *engine.Counters) ([]Item, engine.Counters, bool, error) {
	var wasted engine.Counters
	if len(s.PrunedTIDs) == 0 {
		return items, wasted, false, nil
	}
	trace := q.Trace.Child("pruned-merge")
	defer trace.End()
	trace.SetInt("candidates", int64(len(s.PrunedTIDs)))
	// Resolve candidate scores up front (score lookups charge nothing).
	cands := make([]Item, len(s.PrunedTIDs))
	for i, tid := range s.PrunedTIDs {
		score := int64(0)
		if q.Ranking != "" {
			var err error
			score, err = s.scoreOf(tid, q.Ranking)
			if err != nil {
				return nil, wasted, false, err
			}
		}
		cands[i] = Item{TID: tid, Score: score}
	}
	// SQL4 cut-off: a pruned topology that cannot displace the current
	// k-th result under the (score desc, TID asc) total order is
	// skipped without an existence check.
	cutOff := func(cand Item, cur []Item) bool {
		return q.K > 0 && len(cur) >= q.K && !rankedBefore(cand, cur[len(cur)-1])
	}
	type checkOut struct {
		run bool
		ok  bool
		err error
		c   engine.Counters
	}
	outs := make([]checkOut, len(cands))
	if workers := s.queryWorkers(q); workers > 1 {
		var idxs []int
		for i, cand := range cands {
			if !cutOff(cand, items) {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) > 1 {
			if err := parallelFor(len(idxs), workers, func(_, j int) {
				o := &outs[idxs[j]]
				o.run = true
				o.ok, o.err = s.prunedExists(cands[idxs[j]].TID, q, &o.c)
			}); err != nil {
				return nil, wasted, false, err
			}
		}
	}
	// Sequential replay: identical admissions and counter charges to
	// the classical loop.
	partial := false
	replayed := make([]bool, len(cands))
	for i, cand := range cands {
		if cutOff(cand, items) {
			continue
		}
		o := &outs[i]
		if !o.run {
			// Not precomputed (sequential mode, or a single-candidate
			// pass set): run it now. The replay never needs a check the
			// initial pass over-approximation missed, because the bar
			// only rises.
			o.run = true
			o.ok, o.err = s.prunedExists(cand.TID, q, &o.c)
		}
		replayed[i] = true
		if o.err != nil {
			if q.PartialOK && errors.Is(o.err, context.DeadlineExceeded) {
				// Deadline cut mid-merge: ship the admissions made so
				// far as a partial answer instead of failing.
				partial = true
				break
			}
			return nil, wasted, false, o.err
		}
		c.Add(o.c)
		if o.ok {
			items = append(items, cand)
			sortItems(items)
			items = trimK(items, q.K)
		}
	}
	for i := range outs {
		if outs[i].run && !replayed[i] {
			wasted.Add(outs[i].c)
		}
	}
	trace.SetInt("wasted_work", wasted.Work())
	sortItems(items)
	return trimK(items, q.K), wasted, partial, nil
}

// FullTopKET is the early-termination method over AllTops (no pruning):
// the Figure 15 DGJ stack, stopping after k groups produce a witness.
// Query.Speculation > 1 or Query.Shards > 1 races the stack's group
// stream across segment workers with byte-identical results.
func (s *Store) FullTopKET(q Query) (QueryResult, error) {
	var c engine.Counters
	items, rep, shrep, partial, err := s.etRun(s.AllTops, q, q.K, &c)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Items: items, Counters: c, Spec: rep, Shard: shrep, Partial: partial}, nil
}

// FastTopKET is the Fast-Top-k-ET method of Section 5.3: the DGJ stack
// over LeftTops plus the SQL5 merging of pruned topologies.
// Query.Speculation > 1 or Query.Shards > 1 races the stack's group
// stream across segment workers with byte-identical results.
func (s *Store) FastTopKET(q Query) (QueryResult, error) {
	var c engine.Counters
	items, rep, shrep, partial, err := s.etRun(s.LeftTops, q, q.K, &c)
	if err != nil {
		return QueryResult{}, err
	}
	if !partial {
		var wasted engine.Counters
		items, wasted, partial, err = s.mergePruned(items, q, &c)
		if err != nil {
			return QueryResult{}, err
		}
		rep.Wasted.Add(wasted)
	}
	return QueryResult{Items: items, Counters: c, Spec: rep, Shard: shrep, Partial: partial}, nil
}
