package methods

import (
	"toposearch/internal/engine"
	"toposearch/internal/relstore"
)

// topKOverTops runs the regular top-k pipeline (SQL3/SQL4 upper
// sub-query) over the given Tops table: join, attach scores, distinct,
// order by score, fetch k. The join shards its driving entity scan
// across the query workers.
func (s *Store) topKOverTops(tops *relstore.Table, q Query, c *engine.Counters) ([]Item, error) {
	tids, err := s.distinctTopsTIDs(tops, q, c)
	if err != nil {
		return nil, err
	}
	items, err := s.itemsForTIDs(tids, q.Ranking)
	if err != nil {
		return nil, err
	}
	sortItems(items)
	return items, nil
}

// FullTopK is SQL3 over AllTops: compute every topology result, order
// by score, fetch the first k.
func (s *Store) FullTopK(q Query) (QueryResult, error) {
	var c engine.Counters
	items, err := s.topKOverTops(s.AllTops, q, &c)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Items: trimK(items, q.K), Counters: c}, nil
}

// FastTopK is the Fast-Top-k method of Section 5.1 (queries SQL4 and
// SQL5): first the top-k over LeftTops; then, only when a pruned
// topology could still enter the result — the result is underfull or
// the pruned topology's score beats the current k-th score — run the
// per-topology existence check with the exception-table guard.
func (s *Store) FastTopK(q Query) (QueryResult, error) {
	var c engine.Counters
	items, err := s.topKOverTops(s.LeftTops, q, &c)
	if err != nil {
		return QueryResult{}, err
	}
	items = trimK(items, q.K)
	items, err = s.mergePruned(items, q, &c)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Items: items, Counters: c}, nil
}

// mergePruned applies the SQL4 cut-off and runs SQL5 for each pruned
// topology that could still reach the top k.
//
// This loop stays sequential even when the query runs with workers: the
// cut-off compares each pruned candidate against the current k-th
// result, which earlier admissions may have raised, so WHICH existence
// checks run depends on the outcomes of previous ones. Parallelizing it
// would either change the executed check set (non-deterministic
// counters) or forfeit the cut-off; FastTop's unconditional checks are
// the parallel case (prunedSurvivors).
func (s *Store) mergePruned(items []Item, q Query, c *engine.Counters) ([]Item, error) {
	if len(s.PrunedTIDs) == 0 {
		return items, nil
	}
	for _, tid := range s.PrunedTIDs {
		score := int64(0)
		if q.Ranking != "" {
			var err error
			score, err = s.scoreOf(tid, q.Ranking)
			if err != nil {
				return nil, err
			}
		}
		cand := Item{TID: tid, Score: score}
		if q.K > 0 && len(items) >= q.K && !rankedBefore(cand, items[len(items)-1]) {
			// SQL4 cut-off: this pruned topology cannot displace the
			// current k-th result under the (score desc, TID asc)
			// total order.
			continue
		}
		ok, err := s.prunedExists(tid, q, c)
		if err != nil {
			return nil, err
		}
		if ok {
			items = append(items, Item{TID: tid, Score: score})
			sortItems(items)
			items = trimK(items, q.K)
		}
	}
	sortItems(items)
	return trimK(items, q.K), nil
}

// FullTopKET is the early-termination method over AllTops (no pruning):
// the Figure 15 DGJ stack, stopping after k groups produce a witness.
// Query.Speculation > 1 races the stack's group stream across
// speculative segment workers with byte-identical results.
func (s *Store) FullTopKET(q Query) (QueryResult, error) {
	var c engine.Counters
	items, rep, err := s.etRun(s.AllTops, q, q.K, &c)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Items: items, Counters: c, Spec: rep}, nil
}

// FastTopKET is the Fast-Top-k-ET method of Section 5.3: the DGJ stack
// over LeftTops plus the SQL5 merging of pruned topologies.
// Query.Speculation > 1 races the stack's group stream across
// speculative segment workers with byte-identical results.
func (s *Store) FastTopKET(q Query) (QueryResult, error) {
	var c engine.Counters
	items, rep, err := s.etRun(s.LeftTops, q, q.K, &c)
	if err != nil {
		return QueryResult{}, err
	}
	items, err = s.mergePruned(items, q, &c)
	if err != nil {
		return QueryResult{}, err
	}
	return QueryResult{Items: items, Counters: c, Spec: rep}, nil
}
