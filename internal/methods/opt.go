package methods

import (
	"fmt"

	"toposearch/internal/core"
	"toposearch/internal/optimizer"
	"toposearch/internal/relstore"
)

// gatherStats derives the optimizer inputs of Section 5.4.3 from the
// database statistics: group cardinalities in score order (from the
// Tops table's TID histogram), inner-relation cardinalities, predicate
// selectivities, and join selectivities (key joins: S*N = 1).
func (s *Store) gatherStats(tops *relstore.Table, q Query) (optimizer.RegularStats, optimizer.StackStats, error) {
	if q.Ranking == "" {
		return optimizer.RegularStats{}, optimizer.StackStats{}, fmt.Errorf("methods: optimizer needs a ranking")
	}
	n1 := float64(s.T1.NumRows())
	n2 := float64(s.T2.NumRows())
	rho1, rho2 := 1.0, 1.0
	if q.Pred1 != nil {
		rho1 = q.Pred1.Sel(s.T1)
	}
	if q.Pred2 != nil {
		rho2 = q.Pred2.Sel(s.T2)
	}

	// Per-group cardinalities in descending score order.
	tidCol, _ := tops.Schema.ColIndex("TID")
	hist := tops.Stats().Col(tidCol)
	scoreIdx, ok := s.TopInfo.OrderedIndexOn(core.ScoreColumn(q.Ranking))
	if !ok {
		return optimizer.RegularStats{}, optimizer.StackStats{}, fmt.Errorf("methods: no score index for ranking %q", q.Ranking)
	}
	var cards []float64
	scoreIdx.Scan(true, func(pos int32) bool {
		tid := relstore.IntVal(s.TopInfo.IntAt(pos, 0))
		var card float64
		if hist != nil && hist.Freq != nil {
			card = float64(hist.Freq[tid])
		} else if s.TopInfo.NumRows() > 0 {
			card = float64(tops.NumRows()) / float64(s.TopInfo.NumRows())
		}
		cards = append(cards, card)
		return true
	})

	joins := []optimizer.JoinStats{
		{N: n1, I: optimizer.DefaultProbeCostET, Rho: rho1, S: 1 / maxf(n1, 1)},
		{N: n2, I: optimizer.DefaultProbeCostET, Rho: rho2, S: 1 / maxf(n2, 1)},
	}
	stack := optimizer.StackStats{Cards: cards, Joins: joins}
	reg := optimizer.RegularStats{
		Entity1Rows: n1 * rho1,
		TopsMatches: float64(tops.NumRows()) * rho1,
		Rho2:        rho2,
		Groups:      float64(s.TopInfo.NumRows()),
	}
	return reg, stack, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// optRun chooses between the regular top-k plan and the ET plans using
// the Section 5.4 cost model, then executes the winner.
func (s *Store) optRun(tops *relstore.Table, fast bool, q Query) (QueryResult, error) {
	osp := q.Trace.Child("optimize")
	reg, stack, err := s.gatherStats(tops, q)
	if err != nil {
		osp.End()
		return QueryResult{}, err
	}
	choice := optimizer.Choose(reg, stack, q.K)
	if osp != nil {
		osp.SetStr("plan", choice.Kind.String())
		osp.End()
	}
	run := q
	run.UseHDGJ = choice.Kind == optimizer.PlanETHash
	var res QueryResult
	switch {
	case choice.Kind == optimizer.PlanRegular && fast:
		res, err = s.FastTopK(run)
	case choice.Kind == optimizer.PlanRegular:
		res, err = s.FullTopK(run)
	case fast:
		res, err = s.FastTopKET(run)
	default:
		res, err = s.FullTopKET(run)
	}
	if err != nil {
		return QueryResult{}, err
	}
	res.Plan = choice.Kind
	return res, nil
}

// FullTopKOpt chooses the better of Full-Top-k and Full-Top-k-ET.
func (s *Store) FullTopKOpt(q Query) (QueryResult, error) {
	return s.optRun(s.AllTops, false, q)
}

// FastTopKOpt chooses the better of Fast-Top-k and Fast-Top-k-ET — the
// method the paper recommends ("best of both worlds", Section 6.2.2).
func (s *Store) FastTopKOpt(q Query) (QueryResult, error) {
	return s.optRun(s.LeftTops, true, q)
}

// ExplainOpt reports the optimizer's decision for a query without
// executing it — the Figure 14/15 plan rendering.
func (s *Store) ExplainOpt(q Query, fast bool) (string, optimizer.Choice, error) {
	tops := s.AllTops
	topsName := core.TableName("AllTops", s.ES1, s.ES2)
	if fast {
		tops = s.LeftTops
		topsName = core.TableName("LeftTops", s.ES1, s.ES2)
	}
	reg, stack, err := s.gatherStats(tops, q)
	if err != nil {
		return "", optimizer.Choice{}, err
	}
	choice := optimizer.Choose(reg, stack, q.K)
	desc1, desc2 := "TRUE", "TRUE"
	if q.Pred1 != nil {
		desc1 = q.Pred1.String()
	}
	if q.Pred2 != nil {
		desc2 = q.Pred2.String()
	}
	plan := optimizer.Explain(choice.Kind, optimizer.ExplainInput{
		TopInfo:  core.TableName("TopInfo", s.ES1, s.ES2),
		Tops:     topsName,
		Entity1:  fmt.Sprintf("%s (%s)", s.ES1, desc1),
		Entity2:  fmt.Sprintf("%s (%s)", s.ES2, desc2),
		ScoreCol: core.ScoreColumn(q.Ranking),
		K:        q.K,
	})
	return plan, choice, nil
}
