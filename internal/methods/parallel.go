package methods

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"toposearch/internal/core"
	"toposearch/internal/engine"
	"toposearch/internal/fault"
	"toposearch/internal/obs"
	"toposearch/internal/relstore"
)

// faultShardExec fires inside each shard executor of the scan-method
// joins, exercising per-shard failure containment (chaos harness).
var faultShardExec = fault.Register("shard.executor")

// queryWorkers resolves the worker count for a query: the query's own
// Parallelism setting, falling back to the store's offline setting
// (0 = GOMAXPROCS, 1 = sequential).
func (s *Store) queryWorkers(q Query) int {
	o := s.Cfg.Opts
	if q.Parallelism != 0 {
		o.Parallelism = q.Parallelism
	}
	return o.Workers()
}

// parallelFor runs fn(worker, i) for every i in [0, n), sharding the
// indices across at most w workers via an atomic cursor (the same
// scheme the offline computation uses for start nodes). With one
// effective worker it degenerates to a plain loop on the caller's
// goroutine, so sequential execution takes no scheduling detour.
//
// Workers are failure-contained: a panic out of fn — in a spawned
// worker or on the caller's goroutine — is recovered into the returned
// *fault.PanicError and aborts the remaining iterations; it never
// escapes to the caller's caller or kills the process. fn itself
// reports ordinary errors through its own out-slots, as before.
func parallelFor(n, w int, fn func(worker, i int)) error {
	if w > n {
		w = n
	}
	if w <= 1 {
		var err error
		func() {
			defer func() {
				if v := recover(); v != nil {
					err = fault.NewPanicError("methods.parallel", v)
				}
			}()
			for i := 0; i < n; i++ {
				fn(0, i)
			}
		}()
		return err
	}
	var next atomic.Int64
	var panicked atomic.Pointer[fault.PanicError]
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicked.CompareAndSwap(nil, fault.NewPanicError("methods.parallel", v))
					// Park the cursor past the end so no worker claims
					// further iterations.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(wk, i)
			}
		}(wk)
	}
	wg.Wait()
	if pe := panicked.Load(); pe != nil {
		return pe
	}
	return nil
}

// shardRanges splits [0, n) into at most w contiguous ranges of nearly
// equal size. Concatenating the ranges in order reproduces [0, n).
func shardRanges(n, w int) [][2]int32 {
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	out := make([][2]int32, 0, w)
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + (n-lo)/(w-i)
		out = append(out, [2]int32{int32(lo), int32(hi)})
		lo = hi
	}
	return out
}

// distinctTopsTIDs evaluates the Figure 14 join over the given Tops
// table and returns the distinct TIDs in first-occurrence order, plus
// per-shard stats when the query runs sharded. The driving ES1 scan is
// partitioned into contiguous row ranges — under Query.Shards into
// that many cost-weighted entity shards (one searcher-like executor
// per shard, all racing), otherwise into equal windows across the
// query workers. Concatenating the per-shard outputs in shard order
// reproduces the sequential scan's row order exactly, so the TID list —
// and the merged counter totals, each row costing the same work in
// whichever shard it lands — are byte-identical at every parallelism
// and shard count.
func (s *Store) distinctTopsTIDs(tops *relstore.Table, q Query, c *engine.Counters) ([]core.TopologyID, []ShardStat, bool, error) {
	sharded := q.Shards > 1
	var shards [][2]int32
	if sharded {
		shards = s.EntityShardRanges(q.Shards)
	} else {
		shards = shardRanges(s.T1.NumRows(), s.queryWorkers(q))
	}
	trace := q.Trace.Child("tops-join")
	defer trace.End()
	var winSpans []*obs.Span
	if trace != nil {
		trace.SetInt("windows", int64(len(shards)))
		if sharded {
			trace.SetInt("shards", int64(len(shards)))
		}
		winSpans = make([]*obs.Span, len(shards))
		for i, sh := range shards {
			winSpans[i] = trace.Child(fmt.Sprintf("window %d [%d,%d)", i, sh[0], sh[1]))
		}
	}
	type shardOut struct {
		tids []core.TopologyID
		c    engine.Counters
		err  error
	}
	outs := make([]shardOut, len(shards))
	if err := parallelFor(len(shards), len(shards), func(_, i int) {
		o := &outs[i]
		if winSpans != nil {
			defer func() {
				sp := winSpans[i]
				sp.SetInt("work", o.c.Work())
				sp.SetInt("tids", int64(len(o.tids)))
				if o.err != nil {
					sp.SetStr("error", o.err.Error())
				}
				sp.End()
			}()
		}
		if err := faultShardExec.Hit(); err != nil {
			o.err = err
			return
		}
		plan, tidCol, err := s.topsJoinPlan(tops, q, shards[i][0], shards[i][1], &o.c)
		if err != nil {
			o.err = err
			return
		}
		o.tids, o.err = drainDistinctTIDs(plan, tidCol)
	}); err != nil {
		return nil, nil, false, err
	}
	var tids []core.TopologyID
	partial := false
	seen := make(map[core.TopologyID]bool)
	for i := range outs {
		if outs[i].err != nil {
			// A shard cut off by the query deadline still produced a
			// valid (pair-supported) TID prefix; with PartialOK that
			// prefix joins the partial answer instead of failing the
			// query. Any other failure fails the whole query.
			if !q.PartialOK || !errors.Is(outs[i].err, context.DeadlineExceeded) {
				return nil, nil, false, outs[i].err
			}
			partial = true
		}
		c.Add(outs[i].c)
		// Per-shard dedup composes: the global first occurrence of a
		// TID is its first occurrence within the earliest shard that
		// saw it, so deduping the concatenation of shard-deduped lists
		// equals deduping the sequential stream.
		for _, tid := range outs[i].tids {
			if !seen[tid] {
				seen[tid] = true
				tids = append(tids, tid)
			}
		}
	}
	c.TuplesOut += int64(len(tids))
	trace.SetInt("distinct_tids", int64(len(tids)))
	var stats []ShardStat
	if sharded {
		stats = make([]ShardStat, len(shards))
		for i := range outs {
			stats[i] = ShardStat{
				Shard: i, Lo: shards[i][0], Hi: shards[i][1],
				Work: outs[i].c.Work(), Witnesses: len(outs[i].tids),
				Complete: outs[i].err == nil,
			}
		}
		if obs.Enabled() {
			obsShardExecutors.Add(int64(len(stats)))
			for i := range stats {
				obsShardWork.Add(stats[i].Work)
			}
		}
	}
	return tids, stats, partial, nil
}

// drainDistinctTIDs runs a tops join plan to exhaustion and collects
// its distinct TIDs without materializing any joined rows. On error the
// TIDs collected before the failure are returned alongside it, so a
// deadline-bounded caller can keep the prefix as a partial answer.
func drainDistinctTIDs(plan engine.Op, tidCol int) ([]core.TopologyID, error) {
	dist := engine.NewDistinct(plan, []int{tidCol})
	if err := dist.Open(); err != nil {
		return nil, err
	}
	defer dist.Close()
	var out []core.TopologyID
	for {
		r, ok, err := dist.Next()
		if err != nil {
			return out, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, core.TopologyID(r[tidCol].Int))
	}
}

// prunedSurvivors runs the SQL1/SQL5 existence check for every pruned
// topology, sharded across the query workers, and returns the TIDs
// whose check found a witness, in PrunedTIDs order. Each check is
// independent and its work depends only on its own topology, so both
// the surviving set and the merged counter totals are identical at
// every parallelism level.
func (s *Store) prunedSurvivors(q Query, c *engine.Counters) ([]core.TopologyID, error) {
	n := len(s.PrunedTIDs)
	if n == 0 {
		return nil, nil
	}
	trace := q.Trace.Child("pruned-checks")
	defer trace.End()
	trace.SetInt("pruned", int64(n))
	type checkOut struct {
		ok  bool
		err error
		c   engine.Counters
	}
	outs := make([]checkOut, n)
	if err := parallelFor(n, s.queryWorkers(q), func(_, i int) {
		o := &outs[i]
		o.ok, o.err = s.prunedExists(s.PrunedTIDs[i], q, &o.c)
	}); err != nil {
		return nil, err
	}
	var tids []core.TopologyID
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		c.Add(outs[i].c)
		if outs[i].ok {
			tids = append(tids, s.PrunedTIDs[i])
		}
	}
	trace.SetInt("survivors", int64(len(tids)))
	return tids, nil
}
