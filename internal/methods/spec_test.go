package methods_test

import (
	"context"
	"fmt"
	"testing"

	"toposearch/internal/biozon"
	"toposearch/internal/core"
	"toposearch/internal/methods"
	"toposearch/internal/ranking"
	"toposearch/internal/relstore"
)

func syntheticStore(t *testing.T, scale int, seed int64, threshold int) *methods.Store {
	t.Helper()
	cfg := biozon.DefaultConfig(scale)
	cfg.Seed = seed
	db := biozon.Generate(cfg)
	s, err := methods.BuildStore(context.Background(), db, biozon.SchemaGraph(), biozon.Protein, biozon.DNA,
		methods.StoreConfig{
			Opts:           core.DefaultOptions(),
			PruneThreshold: threshold,
			Scores:         ranking.Schemes(),
		})
	if err != nil {
		t.Fatalf("BuildStore: %v", err)
	}
	return s
}

// TestSpeculativeETMatchesSequential pins the speculative ET contract
// at the methods level: for every ET method, both DGJ stack variants,
// several k values and predicate mixes, the items AND the useful-work
// counters at any speculation width are byte-identical to the
// sequential stack's, and the wasted-work report never goes negative.
func TestSpeculativeETMatchesSequential(t *testing.T) {
	s := syntheticStore(t, 1, 42, 2)
	sel, err := biozon.SelectivityPred(s.T1.Schema, "selective")
	if err != nil {
		t.Fatal(err)
	}
	med, err := biozon.SelectivityPred(s.T2.Schema, "medium")
	if err != nil {
		t.Fatal(err)
	}
	mrna, err := relstore.Eq(s.T2.Schema, "type", relstore.StrVal("mRNA"))
	if err != nil {
		t.Fatal(err)
	}
	preds := []struct {
		name     string
		pr1, pr2 relstore.Pred
	}{
		{"none", nil, nil},
		{"sel-med", sel, med},
		{"sel-mrna", sel, mrna},
	}
	for _, method := range []string{methods.MethodFullTopKET, methods.MethodFastTopKET} {
		for _, pp := range preds {
			for _, hdgj := range []bool{false, true} {
				for _, k := range []int{1, 3, 10, 1000, 0} {
					q := methods.Query{Pred1: pp.pr1, Pred2: pp.pr2, K: k,
						Ranking: ranking.Domain, UseHDGJ: hdgj, Parallelism: 1}
					want, err := s.Run(method, q)
					if err != nil {
						t.Fatalf("%s seq: %v", method, err)
					}
					for _, spec := range []int{2, 3, 8, 64} {
						qq := q
						qq.Speculation = spec
						got, err := s.Run(method, qq)
						if err != nil {
							t.Fatalf("%s spec=%d: %v", method, spec, err)
						}
						tag := fmt.Sprintf("%s/%s/hdgj=%v/k=%d/spec=%d", method, pp.name, hdgj, k, spec)
						if gi, wi := itemsStr(got.Items), itemsStr(want.Items); gi != wi {
							t.Errorf("%s: items %s, want %s", tag, gi, wi)
						}
						if got.Counters != want.Counters {
							t.Errorf("%s: counters %+v, want %+v", tag, got.Counters, want.Counters)
						}
						if got.Spec.Width != spec {
							t.Errorf("%s: spec width %d, want %d", tag, got.Spec.Width, spec)
						}
						w := got.Spec.Wasted
						if w.RowsScanned < 0 || w.IndexProbes < 0 || w.TuplesOut < 0 || w.Comparisons < 0 {
							t.Errorf("%s: negative wasted work %+v", tag, w)
						}
					}
				}
			}
		}
	}
}

func itemsStr(items []methods.Item) string {
	s := ""
	for _, it := range items {
		s += fmt.Sprintf("%d:%d ", it.TID, it.Score)
	}
	return s
}

// TestSpeculativeETCancelled pins that an already-cancelled context
// aborts the speculative driver with the context's error.
func TestSpeculativeETCancelled(t *testing.T) {
	s := syntheticStore(t, 1, 7, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := methods.Query{K: 5, Ranking: ranking.Domain, Speculation: 4}
	if _, err := s.RunContext(ctx, methods.MethodFullTopKET, q); err != context.Canceled {
		t.Fatalf("cancelled speculative ET returned %v, want context.Canceled", err)
	}
}
