package methods

import (
	"context"

	"toposearch/internal/core"
	"toposearch/internal/fault"
	"toposearch/internal/graph"
	"toposearch/internal/obs"
)

// faultRefresh fires at the start of a refresh materialization (chaos
// harness). A refresh only ever builds a NEW store generation — the
// receiver is immutable — so failing here proves refresh atomicity:
// the caller keeps serving the old generation.
var faultRefresh = fault.Register("methods.refresh")

// RefreshDiff describes how a refresh produced its new store
// generation — which tables were carried over, spliced, or rebuilt,
// and the stability facts the result cache's frontier-scoped
// invalidation relies on.
type RefreshDiff struct {
	// TidStable reports that the topology registry survived the update
	// with every pre-existing topology keeping its ID (new topologies
	// may have been appended). It is the precondition for splicing any
	// table and for footprint-based cache invalidation; when false the
	// tables are fully rebuilt and caches must flush.
	TidStable bool
	// PrunedStable reports that both generations pruned exactly the
	// same topologies in the same order — the extra precondition for
	// splicing LeftTops and ExcpTops.
	PrunedStable bool
	// ChangedTIDs lists the topologies whose pair frequency changed
	// (including newly observed and no-longer-observed ones), ascending
	// by ID. Only meaningful when TidStable.
	ChangedTIDs []core.TopologyID
	// Per-table materialization outcomes.
	AllTops, LeftTops, ExcpTops, TopInfo core.TableDiff
}

// Refresh derives a new Store generation for the same entity-set pair
// after the database absorbed inserts: the topology data is maintained
// incrementally — core.UpdateResult recomputes only the affected
// start-node frontier on the configured worker pool and renumbers the
// merged result exactly as a from-scratch rebuild would — then the
// pruning pass reruns over the merged data and the four precomputed
// tables are refreshed and their indexes and statistics warmed.
//
// The receiver is left untouched: queries running against it keep
// their consistent snapshot (its table pointers survive even though
// the catalog now names the new generation's tables). Callers swap the
// returned Store in once it is ready — the public Searcher.Refresh
// does this atomically.
//
// g must be the grown data graph and affected the start-node frontier
// derived from the inserts applied since this store was built (see
// delta.AffectedStarts). The result is byte-identical to
// BuildStoreFromGraph over g, at any parallelism, but only pays path
// enumeration for the frontier.
func (s *Store) Refresh(ctx context.Context, g *graph.Graph, affected map[graph.NodeID]bool) (*Store, error) {
	ns, _, err := s.RefreshDiff(ctx, g, affected)
	return ns, err
}

// RefreshDiff is Refresh with the diff-aware materializer made
// observable: instead of rematerializing all four precomputed tables
// from scratch, each table's unchanged row runs are bulk-copied from
// the previous generation (or the whole table reused when nothing in
// it changed) and only rows belonging to the affected frontier — plus
// frequency-drifted TopInfo rows — are re-encoded. The table contents
// are byte-identical to a full rematerialization in every mode; the
// returned diff reports what each table actually did and feeds the
// result cache's invalidation.
func (s *Store) RefreshDiff(ctx context.Context, g *graph.Graph, affected map[graph.NodeID]bool) (*Store, *RefreshDiff, error) {
	if err := faultRefresh.Hit(); err != nil {
		return nil, nil, err
	}
	res, err := core.UpdateResult(ctx, g, s.SG, s.Res, s.ES1, s.ES2, affected, s.opts())
	if err != nil {
		return nil, nil, err
	}
	pr := res.Prune(s.Cfg.PruneThreshold)
	d := &RefreshDiff{
		TidStable:    registryStable(s.Res.Reg, res.Reg),
		PrunedStable: pr.PrunedStable(s.Pr, s.ES1, s.ES2),
	}
	if d.TidStable {
		d.ChangedTIDs = changedTIDsOf(s.Res.Pair(s.ES1, s.ES2), res.Pair(s.ES1, s.ES2))
	}
	ns := &Store{
		DB: s.DB, G: g, SG: s.SG, Res: res, Pr: pr,
		ES1: s.ES1, ES2: s.ES2, T1: s.T1, T2: s.T2,
		Cfg:       s.Cfg,
		Gen:       s.Gen + 1,
		sigToPath: s.sigToPath, // schema paths are static; shared read-only
	}
	if err := ns.materializeDiff(s, affected, d); err != nil {
		return nil, nil, err
	}
	if obs.Enabled() {
		obsRefreshTables.With("AllTops", d.AllTops.Mode).Inc()
		obsRefreshTables.With("LeftTops", d.LeftTops.Mode).Inc()
		obsRefreshTables.With("ExcpTops", d.ExcpTops.Mode).Inc()
		obsRefreshTables.With("TopInfo", d.TopInfo.Mode).Inc()
	}
	if d.AllTops.Reused() {
		// The entity-shard weight profile is a pure function of T1 and
		// the AllTops fan-outs; an unchanged AllTops means the profile is
		// unchanged too (new fan-out-free entities weigh the same as any
		// other unrelated entity: they produce no results, so shard scans
		// cut by the carried profile lose nothing). This skips the O(T1)
		// prefix recomputation for entity-only and no-op frontiers.
		ns.entityPrefix = s.entityPrefix
	}
	if err := ns.warmIndexes(); err != nil {
		return nil, nil, err
	}
	return ns, d, nil
}

// materializeDiff fills ns's four tables from old's generation plus
// the recomputed data, splicing where the stability preconditions hold
// and falling back to full rebuilds where they don't, recording each
// table's outcome in d.
func (ns *Store) materializeDiff(old *Store, affected map[graph.NodeID]bool, d *RefreshDiff) error {
	if !d.TidStable {
		// Topology renumbering invalidates every row-level equality
		// argument: rebuild everything.
		if err := ns.materialize(); err != nil {
			return err
		}
		d.AllTops = core.TableDiff{Mode: "rebuilt", Rows: ns.AllTops.NumRows()}
		d.LeftTops = core.TableDiff{Mode: "rebuilt", Rows: ns.LeftTops.NumRows()}
		d.ExcpTops = core.TableDiff{Mode: "rebuilt", Rows: ns.ExcpTops.NumRows()}
		d.TopInfo = core.TableDiff{Mode: "rebuilt", Rows: ns.TopInfo.NumRows()}
		return nil
	}
	var err error
	if ns.AllTops, d.AllTops, err = ns.Res.MaterializeAllTopsDiff(ns.DB, ns.ES1, ns.ES2, old.Res, old.AllTops, affected); err != nil {
		return err
	}
	if ns.LeftTops, ns.ExcpTops, d.LeftTops, d.ExcpTops, err = ns.Pr.MaterializeDiff(ns.DB, ns.ES1, ns.ES2, old.Pr, old.LeftTops, old.ExcpTops, affected); err != nil {
		return err
	}
	if ns.TopInfo, d.TopInfo, err = ns.Res.MaterializeTopInfoDiff(ns.DB, ns.ES1, ns.ES2, ns.Cfg.Scores, old.Res, old.TopInfo); err != nil {
		return err
	}
	ns.PrunedTIDs = append([]core.TopologyID(nil), ns.Pr.Pair(ns.ES1, ns.ES2).PrunedTIDs...)
	return nil
}

// registryStable reports whether every topology of the old registry
// kept its ID and canonical form in the new one (the new registry may
// have grown beyond it).
func registryStable(old, new *core.Registry) bool {
	o, n := old.All(), new.All()
	if len(n) < len(o) {
		return false
	}
	for i, info := range o {
		if n[i].Canon != info.Canon {
			return false
		}
	}
	return true
}

// RefreshShallow returns a new Store generation that only swaps the
// data graph — for batches that inserted entities but no relationships,
// where the topology tables cannot have changed. The generation tag is
// deliberately kept: cached results stay valid because no-edge entities
// relate to nothing.
func (s *Store) RefreshShallow(g *graph.Graph) *Store {
	ns := *s
	ns.G = g
	return &ns
}
