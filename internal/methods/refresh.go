package methods

import (
	"context"

	"toposearch/internal/core"
	"toposearch/internal/graph"
)

// Refresh derives a new Store generation for the same entity-set pair
// after the database absorbed inserts: the topology data is maintained
// incrementally — core.UpdateResult recomputes only the affected
// start-node frontier on the configured worker pool and renumbers the
// merged result exactly as a from-scratch rebuild would — then the
// pruning pass reruns over the merged data and the four precomputed
// tables are rematerialized and their indexes and statistics warmed.
//
// The receiver is left untouched: queries running against it keep
// their consistent snapshot (its table pointers survive even though
// the catalog now names the new generation's tables). Callers swap the
// returned Store in once it is ready — the public Searcher.Refresh
// does this atomically.
//
// g must be the grown data graph and affected the start-node frontier
// derived from the inserts applied since this store was built (see
// delta.AffectedStarts). The result is byte-identical to
// BuildStoreFromGraph over g, at any parallelism, but only pays path
// enumeration for the frontier.
func (s *Store) Refresh(ctx context.Context, g *graph.Graph, affected map[graph.NodeID]bool) (*Store, error) {
	res, err := core.UpdateResult(ctx, g, s.SG, s.Res, s.ES1, s.ES2, affected, s.opts())
	if err != nil {
		return nil, err
	}
	pr := res.Prune(s.Cfg.PruneThreshold)
	ns := &Store{
		DB: s.DB, G: g, SG: s.SG, Res: res, Pr: pr,
		ES1: s.ES1, ES2: s.ES2, T1: s.T1, T2: s.T2,
		Cfg:       s.Cfg,
		sigToPath: s.sigToPath, // schema paths are static; shared read-only
	}
	if err := ns.materialize(); err != nil {
		return nil, err
	}
	if err := ns.warmIndexes(); err != nil {
		return nil, err
	}
	return ns, nil
}

// RefreshShallow returns a new Store generation that only swaps the
// data graph — for batches that inserted entities but no relationships,
// where the topology tables cannot have changed.
func (s *Store) RefreshShallow(g *graph.Graph) *Store {
	ns := *s
	ns.G = g
	return &ns
}
