// Package methods implements the nine query-evaluation strategies of
// the paper's experimental evaluation (Section 6.1): SQL, Full-Top,
// Fast-Top, Full-Top-k, Fast-Top-k, Full-Top-k-ET, Fast-Top-k-ET,
// Full-Top-k-Opt and Fast-Top-k-Opt. Each method answers the same
// 2-query — find the l-topologies relating two predicate-filtered
// entity sets — but with different mixes of precomputation, pruning,
// early termination, and cost-based plan choice.
package methods

import (
	"context"
	"fmt"

	"toposearch/internal/core"
	"toposearch/internal/graph"
	"toposearch/internal/relstore"
	"toposearch/internal/shard"
)

// StoreConfig controls the offline phase: topology computation options
// (including Opts.Parallelism, the offline worker count), the pruning
// threshold (Section 4.2.2), and the ranking score functions
// materialized into TopInfo.
type StoreConfig struct {
	Opts core.Options
	// PruneThreshold prunes topologies with frequency strictly greater
	// than this value (the paper used 2M on full Biozon; scale it to
	// the generated database).
	PruneThreshold int
	// Scores maps ranking names to score functions.
	Scores map[string]core.ScoreFunc
}

// Store bundles the precomputed artifacts for one entity-set pair: the
// base data, the data graph, the topology registry, and the
// materialized AllTops / LeftTops / ExcpTops / TopInfo tables
// (Figure 10's architecture).
//
// A built Store is safe for concurrent queries: BuildStore pre-creates
// every index and statistics object the nine evaluation methods touch,
// so the online phase never mutates shared table state, and each query
// accumulates work into its own counters.
type Store struct {
	DB  *relstore.DB
	G   *graph.Graph
	SG  *graph.SchemaGraph
	Res *core.Result
	Pr  *core.Pruned

	ES1, ES2 string
	T1, T2   *relstore.Table // entity tables

	AllTops  *relstore.Table
	LeftTops *relstore.Table
	ExcpTops *relstore.Table
	TopInfo  *relstore.Table

	PrunedTIDs []core.TopologyID
	Cfg        StoreConfig

	// Gen numbers the store generation within a refresh chain: 0 for a
	// from-scratch build, +1 per (non-shallow) Refresh. The result
	// cache tags entries with it so a cached answer can never be served
	// against a store it was not computed (or proven equal) for.
	Gen uint64

	sigToPath map[graph.PathSig]graph.SchemaPath

	// entityPrefix is the per-generation entity-shard weight profile:
	// entityPrefix[p+1] - entityPrefix[p] = 1 + the AllTops fan-out of
	// the entity at T1 position p (one scan charge plus its tops join
	// matches — the dominant per-row cost of the Figure 14 plans).
	// Sharded queries and delta routing both cut/route through this one
	// prefix-sum array, so they can never disagree about which shard
	// owns an entity within a store generation.
	entityPrefix []int64
}

// BuildStore runs the offline phase for one entity-set pair: build the
// graph, compute AllTops, prune, and materialize all tables into db.
// The context cancels the long-running topology computation.
func BuildStore(ctx context.Context, db *relstore.DB, sg *graph.SchemaGraph, es1, es2 string, cfg StoreConfig) (*Store, error) {
	if es1 == es2 {
		return nil, fmt.Errorf("methods: self-pair queries (%s-%s) are not supported by the evaluation methods", es1, es2)
	}
	g, err := graph.Build(db, sg)
	if err != nil {
		return nil, err
	}
	return BuildStoreFromGraph(ctx, db, g, sg, es1, es2, cfg)
}

// BuildStoreFromGraph is BuildStore with a prebuilt data graph (so
// several stores can share one graph).
func BuildStoreFromGraph(ctx context.Context, db *relstore.DB, g *graph.Graph, sg *graph.SchemaGraph, es1, es2 string, cfg StoreConfig) (*Store, error) {
	if es1 == es2 {
		return nil, fmt.Errorf("methods: self-pair queries (%s-%s) are not supported", es1, es2)
	}
	res, err := core.Compute(ctx, g, sg, [][2]string{{es1, es2}}, cfg.Opts)
	if err != nil {
		return nil, err
	}
	pr := res.Prune(cfg.PruneThreshold)
	s := &Store{
		DB: db, G: g, SG: sg, Res: res, Pr: pr,
		ES1: es1, ES2: es2, Cfg: cfg,
		sigToPath: make(map[graph.PathSig]graph.SchemaPath),
	}
	for _, es := range sg.Entities {
		if es.Name == es1 {
			s.T1 = db.Table(es.Table)
		}
		if es.Name == es2 {
			s.T2 = db.Table(es.Table)
		}
	}
	if s.T1 == nil || s.T2 == nil {
		return nil, fmt.Errorf("methods: entity tables for %s/%s not found", es1, es2)
	}
	if err := s.materialize(); err != nil {
		return nil, err
	}
	paths, err := sg.EnumeratePaths(es1, es2, s.opts().MaxLen)
	if err != nil {
		return nil, err
	}
	for _, sp := range paths {
		s.sigToPath[sp.TypeSignature(sg)] = sp
	}
	if err := s.warmIndexes(); err != nil {
		return nil, err
	}
	return s, nil
}

// materialize (re)builds the store's four precomputed tables in the
// catalog from its Result and Pruned data. Rebuilding a store for the
// same pair replaces its tables in the catalog; a previous store
// generation keeps its own table pointers, so in-flight queries are
// undisturbed.
func (s *Store) materialize() error {
	var err error
	for _, kind := range []string{"AllTops", "LeftTops", "ExcpTops", "TopInfo"} {
		s.DB.DropTable(core.TableName(kind, s.ES1, s.ES2))
	}
	if s.AllTops, err = s.Res.MaterializeAllTops(s.DB, s.ES1, s.ES2); err != nil {
		return err
	}
	if s.LeftTops, s.ExcpTops, err = s.Pr.Materialize(s.DB, s.ES1, s.ES2); err != nil {
		return err
	}
	if s.TopInfo, err = s.Res.MaterializeTopInfo(s.DB, s.ES1, s.ES2, s.Cfg.Scores); err != nil {
		return err
	}
	s.PrunedTIDs = append([]core.TopologyID(nil), s.Pr.Pair(s.ES1, s.ES2).PrunedTIDs...)
	return nil
}

// warmIndexes pre-creates every index and statistics object the online
// plans read, so concurrent queries on one Store never race to build
// shared table state: the entity-table hash indexes the tops joins and
// DGJ stacks probe, the relationship-table indexes the SQL5 path chains
// probe, and the lazily-built per-table statistics behind selectivity
// estimation and the optimizer's group histogram. (The tops tables and
// TopInfo already get their indexes at materialization time.)
func (s *Store) warmIndexes() error {
	for _, t := range []*relstore.Table{s.T1, s.T2} {
		if _, err := t.CreateHashIndex("ID"); err != nil {
			return err
		}
	}
	for _, sp := range s.sigToPath {
		prevType := sp.Start
		for i, st := range sp.Steps {
			relTab, nearCol, _, err := s.relStepCols(prevType, st, i)
			if err != nil {
				return err
			}
			if _, err := relTab.CreateHashIndex(nearCol); err != nil {
				return err
			}
			prevType = st.Next
		}
	}
	for _, t := range []*relstore.Table{s.T1, s.T2, s.AllTops, s.LeftTops, s.ExcpTops, s.TopInfo} {
		t.Stats()
	}
	// Entity-shard weight profile: cost-weighted shard cuts and delta
	// routing read this prefix-sum array (see the field doc). The E1
	// hash index doubles as the probe index of the tops joins. A refresh
	// that carried AllTops over unchanged pre-seeds entityPrefix with
	// the previous generation's profile, skipping the O(T1) rebuild.
	e1Idx, err := s.AllTops.CreateHashIndex("E1")
	if err != nil {
		return err
	}
	if s.entityPrefix != nil {
		return nil
	}
	keyCol := s.T1.Schema.KeyCol
	n := s.T1.NumRows()
	prefix := make([]int64, n+1)
	for pos := int32(0); pos < int32(n); pos++ {
		w := 1 + int64(len(e1Idx.LookupInt(s.T1.IntAt(pos, keyCol))))
		prefix[pos+1] = prefix[pos] + w
	}
	s.entityPrefix = prefix
	return nil
}

// EntityShardRanges cuts the T1 position space into n cost-weighted
// contiguous shards, balanced by each entity's AllTops fan-out. The
// cut is a pure function of the store generation's weight profile:
// every query and every delta-routing decision against this generation
// sees the same partition.
func (s *Store) EntityShardRanges(n int) shard.Ranges {
	return shard.FromPrefix(s.entityPrefix, n)
}

// ShardOfEntity routes an entity-1 ID to its shard under an n-way
// partition of this store generation. Entities unknown to the
// generation (e.g. rows a delta batch is about to insert) clamp to the
// last shard, which owns the append frontier until the next
// generation re-cuts.
func (s *Store) ShardOfEntity(id int64, n int) int {
	r := s.EntityShardRanges(n)
	if pos, ok := s.T1.PKPos(id); ok {
		return r.Find(pos)
	}
	return len(r) - 1
}

func (s *Store) opts() core.Options {
	o := s.Cfg.Opts
	if o.MaxLen == 0 {
		o.MaxLen = 3
	}
	if o.MaxCombinations == 0 {
		o.MaxCombinations = 4096
	}
	return o
}

// scoreOf looks up a topology's score under the ranking.
func (s *Store) scoreOf(tid core.TopologyID, rk string) (int64, error) {
	pos, ok := s.TopInfo.PKPos(int64(tid))
	if !ok {
		return 0, fmt.Errorf("methods: topology %d not in TopInfo", tid)
	}
	col, ok := s.TopInfo.Schema.ColIndex(core.ScoreColumn(rk))
	if !ok {
		return 0, fmt.Errorf("methods: no ranking %q in TopInfo", rk)
	}
	return s.TopInfo.IntAt(pos, col), nil
}

// schemaPathFor returns the schema path whose signature matches the
// pruned topology's path class.
func (s *Store) schemaPathFor(tid core.TopologyID) (graph.SchemaPath, error) {
	info := s.Res.Reg.Info(tid)
	if info == nil {
		return graph.SchemaPath{}, fmt.Errorf("methods: unknown topology %d", tid)
	}
	if len(info.Sigs) != 1 {
		return graph.SchemaPath{}, fmt.Errorf("methods: topology %d is not a single-class path topology", tid)
	}
	sp, ok := s.sigToPath[info.Sigs[0]]
	if !ok {
		return graph.SchemaPath{}, fmt.Errorf("methods: no schema path for signature %q", info.Sigs[0])
	}
	return sp, nil
}

// SpaceReport summarizes the storage footprint of the precomputed
// tables — the data behind the paper's Table 1.
type SpaceReport struct {
	ES1, ES2                  string
	AllTopsBytes              int64
	LeftTopsBytes, ExcpBytes  int64
	AllTopsRows, LeftTopsRows int
	ExcpRows                  int
	Ratio                     float64 // (LeftTops+ExcpTops)/AllTops
}

// Space computes the Table 1 row for this store.
func (s *Store) Space() SpaceReport {
	r := SpaceReport{
		ES1: s.ES1, ES2: s.ES2,
		AllTopsBytes:  s.AllTops.ApproxBytes(),
		LeftTopsBytes: s.LeftTops.ApproxBytes(),
		ExcpBytes:     s.ExcpTops.ApproxBytes(),
		AllTopsRows:   s.AllTops.NumRows(),
		LeftTopsRows:  s.LeftTops.NumRows(),
		ExcpRows:      s.ExcpTops.NumRows(),
	}
	if r.AllTopsBytes > 0 {
		r.Ratio = float64(r.LeftTopsBytes+r.ExcpBytes) / float64(r.AllTopsBytes)
	}
	return r
}
