package methods

import (
	"context"
	"fmt"

	"toposearch/internal/core"
	"toposearch/internal/engine"
	"toposearch/internal/graph"
	"toposearch/internal/relstore"
)

// topsJoinPlan builds the regular (Figure 14 style) join pipeline:
//
//	sigma(ES1) -> IndexJoin Tops on E1 -> IndexJoin sigma(ES2) on E2
//
// driving from the selected entity-1 rows in positions [lo, hi), as the
// commercial plans do (hi < 0 means the whole entity table; parallel
// queries hand each worker a contiguous window). It returns the plan
// and the position of the Tops TID column.
func (s *Store) topsJoinPlan(tops *relstore.Table, q Query, lo, hi int32, c *engine.Counters) (engine.Op, int, error) {
	scanA := engine.NewScanRange(s.T1, "A", q.Pred1, c, lo, hi)
	idA := engine.MustColIndex(scanA, "A.ID")
	j1, err := engine.NewIndexJoin(scanA, idA, tops, "T", "E1", nil, c)
	if err != nil {
		return nil, 0, err
	}
	e2 := engine.MustColIndex(j1, "T.E2")
	j2, err := engine.NewIndexJoin(j1, e2, s.T2, "B", "ID", q.Pred2, c)
	if err != nil {
		return nil, 0, err
	}
	return engine.NewGuard(j2, q.Ctx), engine.MustColIndex(j2, "T.TID"), nil
}

// pathJoinPlan builds the existence-check pipeline for a pruned path
// topology (the lower sub-queries of SQL1/SQL5): a chain of index joins
// over the relationship tables along the topology's schema path,
// starting from the selected entity-1 rows and ending at the selected
// entity-2 rows, with a residual filter enforcing instance-path
// simplicity. It returns the plan plus the column positions of the two
// endpoint IDs.
func (s *Store) pathJoinPlan(sp graph.SchemaPath, q Query, c *engine.Counters) (engine.Op, int, int, error) {
	var cur engine.Op = engine.NewScan(s.T1, "A", q.Pred1, c)
	nodeCols := []int{engine.MustColIndex(cur, "A.ID")}
	curCol := nodeCols[0]
	prevType := sp.Start
	for i, st := range sp.Steps {
		relTab, nearCol, farCol, err := s.relStepCols(prevType, st, i)
		if err != nil {
			return nil, 0, 0, err
		}
		alias := fmt.Sprintf("R%d", i)
		j, err := engine.NewIndexJoin(cur, curCol, relTab, alias, nearCol, nil, c)
		if err != nil {
			return nil, 0, 0, err
		}
		cur = j
		curCol = engine.MustColIndex(cur, alias+"."+farCol)
		nodeCols = append(nodeCols, curCol)
		prevType = st.Next
	}
	// Join the far endpoint against the selected entity-2 rows.
	j, err := engine.NewIndexJoin(cur, curCol, s.T2, "B", "ID", q.Pred2, c)
	if err != nil {
		return nil, 0, 0, err
	}
	cur = j
	endCol := engine.MustColIndex(cur, "B.ID")
	// Enforce simple paths: all node IDs along the chain distinct.
	cols := append([]int(nil), nodeCols...)
	cur = engine.NewFuncFilter(cur, "all-nodes-distinct", func(r relstore.Row) bool {
		for x := 0; x < len(cols); x++ {
			for y := x + 1; y < len(cols); y++ {
				if r[cols[x]].Int == r[cols[y]].Int {
					return false
				}
			}
		}
		return true
	})
	return engine.NewGuard(cur, q.Ctx), nodeCols[0], endCol, nil
}

// relStepCols resolves one schema-path step: the relationship table to
// join, and the near (arriving) and far (leaving) column names as seen
// when reaching the step from prevType. pathJoinPlan builds its join
// chain from this and warmIndexes pre-creates the near-column indexes
// it probes, so the two can never disagree about which index a step
// needs.
func (s *Store) relStepCols(prevType string, st graph.SchemaStep, i int) (*relstore.Table, string, string, error) {
	rel := s.SG.Rels[st.Rel]
	relTab := s.DB.Table(rel.Table)
	if relTab == nil {
		return nil, "", "", fmt.Errorf("methods: no relationship table %q", rel.Table)
	}
	switch {
	case prevType == rel.A && st.Next == rel.B:
		return relTab, rel.ACol, rel.BCol, nil
	case prevType == rel.B && st.Next == rel.A:
		return relTab, rel.BCol, rel.ACol, nil
	default:
		return nil, "", "", fmt.Errorf("methods: schema path step %d does not fit relationship %q", i, rel.Name)
	}
}

// prunedExists runs the SQL5 check for one pruned topology: does some
// predicate-satisfying pair match the pruned topology's path and not
// appear in the exception table?
func (s *Store) prunedExists(tid core.TopologyID, q Query, c *engine.Counters) (bool, error) {
	sp, err := s.schemaPathFor(tid)
	if err != nil {
		return false, err
	}
	plan, startCol, endCol, err := s.pathJoinPlan(sp, q, c)
	if err != nil {
		return false, err
	}
	// NOT EXISTS (SELECT 1 FROM ExcpTops e WHERE e.E1=A.ID AND
	// e.E2=B.ID AND e.TID = tid).
	excpPred := relstore.MustEq(s.ExcpTops.Schema, "TID", relstore.IntVal(int64(tid)))
	inner := engine.NewScan(s.ExcpTops, "EX", excpPred, c)
	e1 := engine.MustColIndex(inner, "EX.E1")
	e2 := engine.MustColIndex(inner, "EX.E2")
	anti := engine.NewAntiJoin(plan, []int{startCol, endCol}, inner, []int{e1, e2}, c)
	lim := engine.NewLimit(anti, 1)
	rows, err := engine.Drain(lim)
	if err != nil {
		return false, err
	}
	return len(rows) == 1, nil
}

// buildETStack constructs the Figure 15 DGJ stack over the given Tops
// table: an ordered scan of TopInfo in descending score order —
// restricted to the order-position window [lo, hi); hi < 0 means the
// whole stream — feeding the three-join DGJ pipeline. Speculative ET
// builds one stack per contiguous segment of the group stream, all
// sharing one pre-resolved order snapshot; the sequential plans build
// one over the whole stream (order nil: the scan resolves it itself).
// ctx threads cancellation GroupGuards into the stack (losing segment
// workers abort mid-group); a nil ctx adds no guards, so the guarded
// and unguarded stacks charge identical counters. It returns the stack
// root plus the output positions of the TID and score columns.
func (s *Store) buildETStack(tops *relstore.Table, q Query, order []int32, lo, hi int, c *engine.Counters, ctx context.Context) (engine.GroupOp, int, int, error) {
	scoreCol := core.ScoreColumn(q.Ranking)
	ti, err := engine.NewOrderedScanRange(s.TopInfo, "TI", scoreCol, true, nil, c, lo, hi)
	if err != nil {
		return nil, 0, 0, err
	}
	ti.Order = order
	var base engine.GroupOp = engine.NewGroupBase(ti)
	tidCol := engine.MustColIndex(base, "TI.TID")
	scoreIdx := engine.MustColIndex(base, "TI."+scoreCol)
	base = engine.NewGroupGuard(base, ctx)
	g1, err := engine.NewIDGJ(base, tidCol, tops, "T", "TID", nil, c)
	if err != nil {
		return nil, 0, 0, err
	}
	e1 := engine.MustColIndex(g1, "T.E1")
	var g2 engine.GroupOp
	if q.UseHDGJ {
		g2, err = engine.NewHDGJ(g1, e1, s.T1, "A", "ID", q.Pred1, c)
	} else {
		g2, err = engine.NewIDGJ(g1, e1, s.T1, "A", "ID", q.Pred1, c)
	}
	if err != nil {
		return nil, 0, 0, err
	}
	g2 = engine.NewGroupGuard(g2, ctx)
	e2 := engine.MustColIndex(g2, "T.E2")
	g3, err := engine.NewIDGJ(g2, e2, s.T2, "B", "ID", q.Pred2, c)
	if err != nil {
		return nil, 0, 0, err
	}
	return g3, tidCol, scoreIdx, nil
}

// etPlan builds the Figure 15 early-termination pipeline over the given
// Tops table and drains it sequentially: the DGJ stack over the whole
// score-ordered group stream, topped by DistinctGroups(k).
func (s *Store) etPlan(tops *relstore.Table, q Query, k int, c *engine.Counters) ([]Item, error) {
	if q.Ranking == "" {
		return nil, fmt.Errorf("methods: ET plans need a ranking")
	}
	g3, tidCol, scoreIdx, err := s.buildETStack(tops, q, nil, 0, -1, c, nil)
	if err != nil {
		return nil, err
	}
	top := engine.NewDistinctGroups(g3, k)
	rows, err := engine.Drain(engine.NewGuard(top, q.Ctx))
	if err != nil {
		return nil, err
	}
	if c != nil {
		c.TuplesOut += int64(len(rows))
	}
	items := make([]Item, len(rows))
	for i, r := range rows {
		items[i] = Item{TID: core.TopologyID(r[tidCol].Int), Score: r[scoreIdx].Int}
	}
	return items, nil
}

// itemsForTIDs attaches ranking scores to a TID list (no ranking: zero
// scores).
func (s *Store) itemsForTIDs(tids []core.TopologyID, rk string) ([]Item, error) {
	items := make([]Item, len(tids))
	for i, tid := range tids {
		items[i] = Item{TID: tid}
		if rk != "" {
			sc, err := s.scoreOf(tid, rk)
			if err != nil {
				return nil, err
			}
			items[i].Score = sc
		}
	}
	return items, nil
}
