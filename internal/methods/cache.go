package methods

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"toposearch/internal/core"
	"toposearch/internal/fault"
	"toposearch/internal/graph"
	"toposearch/internal/obs"
	"toposearch/internal/relstore"
	"toposearch/internal/shard"
)

// faultFill fires inside the cache's detached fill goroutine (chaos
// harness): a failed or panicking fill must fail every waiter with a
// typed error and never cache anything.
var faultFill = fault.Register("cache.fill")

// FootprintBuckets is the width of the cache's dependency bitmask: the
// frozen entity-bucket partition a searcher cuts once at construction
// (via Store.EntityShardRanges) and keeps for its whole lifetime.
// Because table positions are append-only, the position→bucket mapping
// never changes, so footprints recorded against one generation remain
// meaningful against every later one.
const FootprintBuckets = 64

// Footprint is the dependency set of one cached result: a bitmask of
// the frozen entity buckets holding the start entities its answer was
// (or could have been) derived from — every T1 position matching the
// query's entity-set-1 predicate. Invalidation intersects it with the
// buckets dirtied by an update; disjoint entries are carried forward.
type Footprint uint64

// QueryFootprint scans the frozen-domain prefix of t1 and returns the
// bucket mask of positions matching pred (nil = all). Rows appended
// after the partition was frozen are not represented here — Advance
// checks those per-entry against the predicate directly, which is both
// exact and cheap since only dirtied tail rows need checking.
func QueryFootprint(t1 *relstore.Table, pred relstore.Pred, r shard.Ranges) Footprint {
	end := r.Domain()
	if n := int32(t1.NumRows()); end > n {
		end = n
	}
	var fp Footprint
	for pos := int32(0); pos < end; pos++ {
		if pred == nil || pred.EvalAt(t1, pos) {
			b := r.Find(pos)
			if b >= FootprintBuckets {
				b = FootprintBuckets - 1
			}
			fp |= 1 << uint(b)
		}
	}
	return fp
}

// InvalidationSet derives, for a generation swap produced by
// RefreshDiff, the dirty start-entity set every cached entry must be
// checked against: the in-domain part as a bucket mask under the frozen
// partition r, the part beyond r's domain (entities appended after the
// partition was frozen) as explicit T1 positions.
//
// A cached result can change across the swap only if some start entity
// matching its predicate either (a) lies on the affected frontier —
// its topology rows were recomputed — or (b) is related by a topology
// whose pair frequency changed, since result rows surface that
// frequency and the rank scores derived from it. (a) contributes the
// affected starts themselves; (b) contributes the E1 side of every new
// AllTops row whose TID frequency drifted. Entries disjoint from both
// are byte-identical across the generations. Only meaningful when the
// diff's registry was stable; an unstable registry renumbers
// topologies and the caller must flush instead.
func (s *Store) InvalidationSet(d *RefreshDiff, affected map[graph.NodeID]bool, r shard.Ranges) (Footprint, []int32) {
	var mask Footprint
	var tail []int32
	seen := make(map[int32]bool)
	add := func(pos int32) {
		if pos < int32(r.Domain()) {
			b := r.Find(pos)
			if b >= FootprintBuckets {
				b = FootprintBuckets - 1
			}
			mask |= 1 << uint(b)
			return
		}
		if !seen[pos] {
			seen[pos] = true
			tail = append(tail, pos)
		}
	}
	for n := range affected {
		if pos, ok := s.T1.PKPos(int64(n)); ok {
			add(pos)
		}
	}
	if len(d.ChangedTIDs) > 0 {
		tidIdx, err := s.AllTops.CreateHashIndex("TID")
		e1Col, ok := s.AllTops.Schema.ColIndex("E1")
		if err != nil || !ok {
			// Cannot walk the rows: dirty every bucket (sound, never hits).
			return ^Footprint(0), nil
		}
		for _, tid := range d.ChangedTIDs {
			for _, row := range tidIdx.LookupInt(int64(tid)) {
				if pos, ok := s.T1.PKPos(s.AllTops.IntAt(row, e1Col)); ok {
					add(pos)
				}
			}
		}
	}
	return mask, tail
}

// CacheStats is a point-in-time snapshot of a ResultCache's counters.
type CacheStats struct {
	// Hits counts lookups answered from a resident entry or a collapsed
	// in-flight computation; Misses counts computations actually run.
	Hits, Misses int64
	// Evictions counts entries dropped to respect the memory bound.
	Evictions int64
	// Invalidated counts entries dropped by generation advances because
	// their footprint intersected an update's dirty set (or the whole
	// cache was flushed).
	Invalidated int64
	// CarriedForward counts entries retagged into a new generation
	// because their footprint was disjoint from the update.
	CarriedForward int64
	// Flushes counts whole-cache flushes (topology registry unstable).
	Flushes int64
	// SkippedStale counts fills whose result was returned to callers
	// but not cached because the epoch they were tagged with had
	// already advanced while the fill ran — a mutation batch landed
	// mid-fill, so the result may reflect base-table rows the tag does
	// not pin.
	SkippedStale int64
	// Entries and Bytes describe the current resident set.
	Entries int
	Bytes   int64
}

type cacheEntry struct {
	key        string
	gen        uint64
	epoch      int
	fp         Footprint
	pred       relstore.Pred
	val        any
	bytes      int64
	prev, next *cacheEntry
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

type cacheShard struct {
	mu         sync.Mutex
	cap        int64
	bytes      int64
	entries    map[string]*cacheEntry
	head, tail *cacheEntry // LRU order, head = most recently used
	flights    map[string]*flight
}

// ResultCache is a bounded, concurrency-safe, generation-tagged query
// result cache: entries are valid for exactly one (store generation,
// edge-log position) pair, concurrent misses for the same key collapse
// onto a single computation, and Advance migrates entries across a
// generation swap by footprint intersection instead of flushing. The
// memory bound is split evenly across the internal shards and enforced
// per shard with LRU eviction.
type ResultCache struct {
	shards [8]cacheShard

	hits, misses, evictions, invalidated, carried, flushes, skippedStale atomic.Int64
}

// NewResultCache returns a cache holding at most maxBytes of result
// payload (as estimated by the caller-supplied entry sizes).
func NewResultCache(maxBytes int64) *ResultCache {
	c := &ResultCache{}
	per := maxBytes / int64(len(c.shards))
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].entries = make(map[string]*cacheEntry)
		c.shards[i].flights = make(map[string]*flight)
	}
	return c
}

func (c *ResultCache) shardOf(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// GetOrCompute returns the value cached under key for the (gen, epoch)
// tag, or runs compute exactly once — concurrent misses on the same tag
// wait for the first — and caches its result. The boolean reports
// whether the value came from the cache (or a collapsed flight) rather
// than this caller's own computation. Errors are returned to every
// waiter and never cached.
//
// The fill runs on its own goroutine, detached from every waiter: a
// waiter whose ctx is cancelled (including the fill's initiator) stops
// waiting with the ctx error, but the shared computation keeps running
// and completes the flight for everyone else — one abandoned caller
// can no longer poison the collapsed flight with its cancellation.
// compute must therefore not observe any single waiter's context (the
// searcher passes a detached one). A panic out of compute is contained
// into a typed *fault.PanicError, failing every waiter; nothing is
// cached. A nil ctx behaves like context.Background().
//
// compute's cacheable return gates storage without affecting delivery:
// a false value means the result is correct for the caller that asked
// for it but must not be tagged (gen, epoch) — the searcher returns
// false when the edge-log epoch advanced while the fill ran, since the
// fill may then have observed base-table rows the tag does not pin.
func (c *ResultCache) GetOrCompute(ctx context.Context, key string, gen uint64, epoch int, compute func() (val any, bytes int64, fp Footprint, pred relstore.Pred, cacheable bool, err error)) (any, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sh := c.shardOf(key)
	tag := fmt.Sprintf("%s\x00%d\x00%d", key, gen, epoch)
	sh.mu.Lock()
	if e := sh.entries[key]; e != nil && e.gen == gen && e.epoch == epoch {
		sh.moveFront(e)
		sh.mu.Unlock()
		c.hits.Add(1)
		if obs.Enabled() {
			obsCacheHit.Inc()
		}
		return e.val, true, nil
	}
	if f := sh.flights[tag]; f != nil {
		sh.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if f.err != nil {
			return nil, false, f.err
		}
		c.hits.Add(1)
		if obs.Enabled() {
			obsCacheHit.Inc()
			obsCacheCollapsed.Inc()
		}
		return f.val, true, nil
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[tag] = f
	sh.mu.Unlock()

	go func() {
		var val any
		var bytes int64
		var fp Footprint
		var pred relstore.Pred
		var cacheable bool
		var err error
		defer func() {
			if v := recover(); v != nil {
				err = fault.NewPanicError("cache.fill", v)
			}
			f.val, f.err = val, err
			sh.mu.Lock()
			delete(sh.flights, tag)
			if err == nil && cacheable {
				sh.store(c, &cacheEntry{key: key, gen: gen, epoch: epoch, fp: fp, pred: pred, val: val, bytes: bytes})
			}
			sh.mu.Unlock()
			close(f.done)
			c.misses.Add(1)
			if err == nil && !cacheable {
				c.skippedStale.Add(1)
			}
			if obs.Enabled() {
				obsCacheMiss.Inc()
				if err != nil {
					obsCacheFillErr.Inc()
				}
				if err == nil && !cacheable {
					obsCacheSkipStale.Inc()
				}
			}
		}()
		if err = faultFill.Hit(); err != nil {
			return
		}
		val, bytes, fp, pred, cacheable, err = compute()
	}()

	select {
	case <-f.done:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	if f.err != nil {
		return nil, false, f.err
	}
	return f.val, false, nil
}

// Advance migrates the cache across a store-generation swap: entries
// tagged with oldGen whose footprint is disjoint from the update's
// dirty set (mask for frozen-domain buckets, dirtyTail as explicit T1
// positions checked against each entry's predicate) are retagged to
// (newGen, newEpoch); everything else — intersecting, stale-generation,
// or all of them when flushAll is set — is dropped.
func (c *ResultCache) Advance(oldGen, newGen uint64, newEpoch int, mask Footprint, dirtyTail []int32, t1 *relstore.Table, flushAll bool) {
	if flushAll {
		c.flushes.Add(1)
		if obs.Enabled() {
			obsCacheFlush.Inc()
		}
	}
	rec := obs.Enabled()
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.entries {
			if !flushAll && e.gen == oldGen && e.fp&mask == 0 && !predHitsAny(e.pred, t1, dirtyTail) {
				e.gen, e.epoch = newGen, newEpoch
				c.carried.Add(1)
				if rec {
					obsCacheCarried.Inc()
				}
				continue
			}
			sh.removeEntry(e)
			c.invalidated.Add(1)
			if rec {
				obsCacheInval.Inc()
			}
		}
		sh.mu.Unlock()
	}
}

func predHitsAny(pred relstore.Pred, t1 *relstore.Table, tail []int32) bool {
	for _, pos := range tail {
		if pred == nil || pred.EvalAt(t1, pos) {
			return true
		}
	}
	return false
}

// Stats snapshots the cache's counters and resident set.
func (c *ResultCache) Stats() CacheStats {
	s := CacheStats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Evictions:      c.evictions.Load(),
		Invalidated:    c.invalidated.Load(),
		CarriedForward: c.carried.Load(),
		Flushes:        c.flushes.Load(),
		SkippedStale:   c.skippedStale.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.entries)
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}

// store inserts e (replacing any entry under the same key) and evicts
// from the LRU tail until the shard respects its byte budget. Entries
// larger than the whole shard budget are not cached. Caller holds the
// shard lock.
func (sh *cacheShard) store(c *ResultCache, e *cacheEntry) {
	if old := sh.entries[e.key]; old != nil {
		sh.removeEntry(old)
	}
	if e.bytes > sh.cap {
		return
	}
	sh.entries[e.key] = e
	sh.pushFront(e)
	sh.bytes += e.bytes
	for sh.bytes > sh.cap && sh.tail != nil && sh.tail != e {
		ev := sh.tail
		sh.removeEntry(ev)
		c.evictions.Add(1)
		if obs.Enabled() {
			obsCacheEvict.Inc()
		}
	}
}

func (sh *cacheShard) removeEntry(e *cacheEntry) {
	delete(sh.entries, e.key)
	sh.bytes -= e.bytes
	sh.unlink(e)
}

func (sh *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if sh.head == e {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if sh.tail == e {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *cacheShard) pushFront(e *cacheEntry) {
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *cacheShard) moveFront(e *cacheEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// CacheKey canonicalizes the result-identity part of a query into a
// comparable cache key: the resolved method and ranking, k, and the two
// constraint lists sorted (constraint order never affects results).
// Latency-only knobs — parallelism, speculation width, shard count —
// are deliberately excluded: results are byte-identical across them,
// so all settings share one entry. Callers render each constraint into
// a self-delimiting string before passing it here.
func CacheKey(method, ranking string, k int, cons1, cons2 []string) string {
	c1 := append([]string(nil), cons1...)
	c2 := append([]string(nil), cons2...)
	sort.Strings(c1)
	sort.Strings(c2)
	var sb []byte
	sb = fmt.Appendf(sb, "m=%s\x1fr=%s\x1fk=%d", method, ranking, k)
	for _, c := range c1 {
		sb = append(sb, '\x1e')
		sb = append(sb, c...)
	}
	sb = append(sb, '\x1d')
	for _, c := range c2 {
		sb = append(sb, '\x1e')
		sb = append(sb, c...)
	}
	return string(sb)
}

// changedTIDsOf computes the topologies whose pair frequency changed
// between two generations' computed data (including newly observed and
// no-longer-observed topologies), ascending by ID.
func changedTIDsOf(oldPD, newPD *core.PairData) []core.TopologyID {
	var out []core.TopologyID
	if oldPD == nil || newPD == nil {
		return out
	}
	for tid, f := range newPD.Freq {
		if of, ok := oldPD.Freq[tid]; !ok || of != f {
			out = append(out, tid)
		}
	}
	for tid := range oldPD.Freq {
		if _, ok := newPD.Freq[tid]; !ok {
			out = append(out, tid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
