package methods

import "toposearch/internal/obs"

// Engine-level metric families on the obs default registry. Every
// increment site is gated on obs.Enabled() (one atomic load when
// telemetry is off) and sits outside the scan/join inner loops:
// speculation, shard and cache events fire once per segment / shard /
// lookup, never per row.
var (
	obsCacheEvents = obs.Default().CounterVec("toposearch_cache_events_total",
		"Result-cache events by kind.", "event")
	obsCacheHit       = obsCacheEvents.With("hit")
	obsCacheMiss      = obsCacheEvents.With("miss")
	obsCacheEvict     = obsCacheEvents.With("eviction")
	obsCacheInval     = obsCacheEvents.With("invalidated")
	obsCacheCarried   = obsCacheEvents.With("carried_forward")
	obsCacheFlush     = obsCacheEvents.With("flush")
	obsCacheFillErr   = obsCacheEvents.With("fill_error")
	obsCacheCollapsed = obsCacheEvents.With("collapsed")
	obsCacheSkipStale = obsCacheEvents.With("skipped_stale")

	obsSpecSegments = obs.Default().Counter("toposearch_spec_segments_total",
		"Speculative ET segments raced.")
	obsSpecUseful = obs.Default().Counter("toposearch_spec_committed_work_total",
		"Useful (committed) work of speculative ET runs, in Counters.Work units.")
	obsSpecWasted = obs.Default().Counter("toposearch_spec_wasted_work_total",
		"Work burned by losing speculative segments beyond the committed work.")

	obsShardExecutors = obs.Default().Counter("toposearch_shard_executors_total",
		"Shard executors launched by scatter-gather queries.")
	obsShardWork = obs.Default().Counter("toposearch_shard_work_total",
		"Total work burned by shard executors, in Counters.Work units.")
	obsShardPruned = obs.Default().Counter("toposearch_shard_bound_exchange_stops_total",
		"Shard executors stopped early by the global top-k bound exchange.")

	obsRefreshTables = obs.Default().CounterVec("toposearch_refresh_tables_total",
		"Refresh materializations by topology table and diff mode (reused, spliced, rebuilt).",
		"table", "mode")
)
