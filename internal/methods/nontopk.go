package methods

import (
	"toposearch/internal/core"
	"toposearch/internal/engine"
	"toposearch/internal/graph"
	"toposearch/internal/relstore"
)

// SQLMethod is the strawman of Section 3.1: for every candidate
// topology — the paper restricts candidates to topologies with at least
// some corresponding entities, "close to 200" — issue one query that
// checks whether a predicate-satisfying pair is related by exactly that
// topology. All topology computation happens at query time: per
// candidate, the method re-enumerates paths and re-derives topologies
// from scratch, which is why it is orders of magnitude slower than the
// precomputation-based methods.
func (s *Store) SQLMethod(q Query) (QueryResult, error) {
	var c engine.Counters
	opts := s.opts()

	// Candidate set: every topology known for the entity-set pair.
	candidates := make([]core.TopologyID, 0, s.TopInfo.NumRows())
	s.TopInfo.Scan(func(_ int32, r relstore.Row) bool {
		candidates = append(candidates, core.TopologyID(r[0].Int))
		return true
	})

	// Selected entity-1 nodes and the entity-2 acceptance test.
	var starts []graph.NodeID
	s.T1.Scan(func(_ int32, r relstore.Row) bool {
		c.RowsScanned++
		if q.Pred1 == nil || q.Pred1.Eval(r) {
			starts = append(starts, graph.NodeID(r[s.T1.Schema.KeyCol].Int))
		}
		return true
	})
	accept2 := func(b graph.NodeID) bool {
		row, ok := s.T2.LookupPK(int64(b))
		if !ok {
			return false
		}
		c.IndexProbes++
		return q.Pred2 == nil || q.Pred2.Eval(row)
	}

	var items []Item
	sc := s.G.NewScratch()
	for _, tid := range candidates {
		found := false
		// One "SQL query" per topology: enumerate, from scratch, the
		// topologies of every qualifying pair until one matches tid.
		for _, a := range starts {
			if q.Ctx != nil {
				if err := q.Ctx.Err(); err != nil {
					return QueryResult{}, err
				}
			}
			acc := make(map[graph.NodeID][]graph.Path)
			for _, sp := range s.sigToPath {
				s.G.PathsAlongScratch(sc, s.SG, sp, a, func(p graph.Path) bool {
					c.IndexProbes++
					b := p.End()
					if !accept2(b) {
						return true
					}
					acc[b] = append(acc[b], p.Clone())
					return true
				})
			}
			for _, paths := range acc {
				classes := make(map[graph.PathSig][]graph.Path)
				for _, p := range paths {
					sig := s.G.Signature(p)
					classes[sig] = append(classes[sig], p)
				}
				tids := core.TopologiesFromClasses(s.G, s.Res.Reg, classes, opts)
				for _, got := range tids {
					if got == tid {
						found = true
						break
					}
				}
				if found {
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			items = append(items, Item{TID: tid})
		}
	}
	its, err := s.itemsForTIDs(tidsOf(items), q.Ranking)
	if err != nil {
		return QueryResult{}, err
	}
	sortItemsByTID(its)
	return QueryResult{Items: its, Counters: c}, nil
}

func tidsOf(items []Item) []core.TopologyID {
	out := make([]core.TopologyID, len(items))
	for i, it := range items {
		out[i] = it.TID
	}
	return out
}

// FullTop is the Section 3.2 method: a single join query over the
// precomputed AllTops table.
//
//	SELECT DISTINCT AT.TID FROM ES1 A, ES2 B, AllTops AT
//	WHERE pred1(A) AND pred2(B) AND A.ID = AT.E1 AND B.ID = AT.E2
func (s *Store) FullTop(q Query) (QueryResult, error) {
	var c engine.Counters
	plan, tidCol, err := s.topsJoinPlan(s.AllTops, q, &c)
	if err != nil {
		return QueryResult{}, err
	}
	tids, err := distinctTIDs(plan, tidCol, &c)
	if err != nil {
		return QueryResult{}, err
	}
	items, err := s.itemsForTIDs(tids, q.Ranking)
	if err != nil {
		return QueryResult{}, err
	}
	sortItemsByTID(items)
	return QueryResult{Items: items, Counters: c}, nil
}

// FastTop is the Section 4.3 method (query SQL1): the same join over
// the much smaller LeftTops table, plus one on-line existence check per
// pruned topology against the base data, guarded by the exception
// table.
func (s *Store) FastTop(q Query) (QueryResult, error) {
	var c engine.Counters
	plan, tidCol, err := s.topsJoinPlan(s.LeftTops, q, &c)
	if err != nil {
		return QueryResult{}, err
	}
	tids, err := distinctTIDs(plan, tidCol, &c)
	if err != nil {
		return QueryResult{}, err
	}
	for _, tid := range s.PrunedTIDs {
		ok, err := s.prunedExists(tid, q, &c)
		if err != nil {
			return QueryResult{}, err
		}
		if ok {
			tids = append(tids, tid)
		}
	}
	items, err := s.itemsForTIDs(tids, q.Ranking)
	if err != nil {
		return QueryResult{}, err
	}
	sortItemsByTID(items)
	return QueryResult{Items: items, Counters: c}, nil
}
