package methods

import (
	"toposearch/internal/core"
	"toposearch/internal/engine"
	"toposearch/internal/graph"
)

// sqlWorker is the reusable per-worker state of the SQL strawman: the
// DFS scratch, the end-node path accumulator and the class map are
// allocated once per worker and cleared between uses, so the per-start
// hot path allocates only the paths it keeps.
type sqlWorker struct {
	sc  *graph.Scratch
	acc map[graph.NodeID][]graph.Path
	cls map[graph.PathSig][]graph.Path
	c   engine.Counters
}

// SQLMethod is the strawman of Section 3.1: for every candidate
// topology — the paper restricts candidates to topologies with at least
// some corresponding entities, "close to 200" — issue one query that
// checks whether a predicate-satisfying pair is related by exactly that
// topology. All topology computation happens at query time: per
// candidate, the method re-enumerates paths and re-derives topologies
// from scratch, which is why it is orders of magnitude slower than the
// precomputation-based methods. The candidate queries are independent,
// so they are sharded across the query workers; each candidate's work
// depends only on its own topology, making results and counter totals
// identical at every parallelism level.
func (s *Store) SQLMethod(q Query) (QueryResult, error) {
	var c engine.Counters
	opts := s.opts()

	// Candidate set: every topology known for the entity-set pair.
	candidates := make([]core.TopologyID, 0, s.TopInfo.NumRows())
	s.TopInfo.ScanPos(func(pos int32) bool {
		candidates = append(candidates, core.TopologyID(s.TopInfo.IntAt(pos, 0)))
		return true
	})

	// Selected entity-1 nodes and the entity-2 acceptance test.
	var starts []graph.NodeID
	keyCol := s.T1.Schema.KeyCol
	s.T1.ScanPos(func(pos int32) bool {
		c.RowsScanned++
		if q.Pred1 == nil || q.Pred1.EvalAt(s.T1, pos) {
			starts = append(starts, graph.NodeID(s.T1.IntAt(pos, keyCol)))
		}
		return true
	})

	trace := q.Trace.Child("sql-candidates")
	defer trace.End()
	trace.SetInt("candidates", int64(len(candidates)))
	trace.SetInt("starts", int64(len(starts)))
	workers := s.queryWorkers(q)
	ws := make([]sqlWorker, workers)
	found := make([]bool, len(candidates))
	errs := make([]error, len(candidates))
	if err := parallelFor(len(candidates), workers, func(worker, i int) {
		w := &ws[worker]
		if w.sc == nil {
			w.sc = s.G.NewScratch()
			w.acc = make(map[graph.NodeID][]graph.Path)
			w.cls = make(map[graph.PathSig][]graph.Path)
		}
		found[i], errs[i] = s.sqlCandidate(candidates[i], starts, q, opts, w)
	}); err != nil {
		return QueryResult{}, err
	}
	for _, err := range errs {
		if err != nil {
			return QueryResult{}, err
		}
	}
	for i := range ws {
		c.Add(ws[i].c)
	}
	var tids []core.TopologyID
	for i, ok := range found {
		if ok {
			tids = append(tids, candidates[i])
		}
	}
	its, err := s.itemsForTIDs(tids, q.Ranking)
	if err != nil {
		return QueryResult{}, err
	}
	sortItemsByTID(its)
	return QueryResult{Items: its, Counters: c}, nil
}

// sqlCandidate is one "SQL query" of the strawman: enumerate, from
// scratch, the topologies of every qualifying pair until one matches
// tid.
func (s *Store) sqlCandidate(tid core.TopologyID, starts []graph.NodeID, q Query, opts core.Options, w *sqlWorker) (bool, error) {
	accept2 := func(b graph.NodeID) bool {
		pos, ok := s.T2.PKPos(int64(b))
		if !ok {
			return false
		}
		w.c.IndexProbes++
		return q.Pred2 == nil || q.Pred2.EvalAt(s.T2, pos)
	}
	for _, a := range starts {
		if q.Ctx != nil {
			if err := q.Ctx.Err(); err != nil {
				return false, err
			}
		}
		clear(w.acc)
		for _, sp := range s.sigToPath {
			s.G.PathsAlongScratch(w.sc, s.SG, sp, a, func(p graph.Path) bool {
				w.c.IndexProbes++
				b := p.End()
				if !accept2(b) {
					return true
				}
				w.acc[b] = append(w.acc[b], p.Clone())
				return true
			})
		}
		for _, paths := range w.acc {
			clear(w.cls)
			for _, p := range paths {
				sig := s.G.Signature(p)
				w.cls[sig] = append(w.cls[sig], p)
			}
			for _, got := range core.TopologiesFromClasses(s.G, s.Res.Reg, w.cls, opts) {
				if got == tid {
					return true, nil
				}
			}
		}
	}
	return false, nil
}

// FullTop is the Section 3.2 method: a single join query over the
// precomputed AllTops table.
//
//	SELECT DISTINCT AT.TID FROM ES1 A, ES2 B, AllTops AT
//	WHERE pred1(A) AND pred2(B) AND A.ID = AT.E1 AND B.ID = AT.E2
func (s *Store) FullTop(q Query) (QueryResult, error) {
	var c engine.Counters
	tids, stats, partial, err := s.distinctTopsTIDs(s.AllTops, q, &c)
	if err != nil {
		return QueryResult{}, err
	}
	items, err := s.itemsForTIDs(tids, q.Ranking)
	if err != nil {
		return QueryResult{}, err
	}
	sortItemsByTID(items)
	return QueryResult{Items: items, Counters: c, Shard: shardReportFor(q, stats), Partial: partial}, nil
}

// FastTop is the Section 4.3 method (query SQL1): the same join over
// the much smaller LeftTops table, plus one on-line existence check per
// pruned topology against the base data, guarded by the exception
// table. Both halves run on the query worker pool: the LeftTops join
// shards the driving entity scan and the pruned checks shard the
// pruned-topology list.
func (s *Store) FastTop(q Query) (QueryResult, error) {
	var c engine.Counters
	tids, stats, partial, err := s.distinctTopsTIDs(s.LeftTops, q, &c)
	if err != nil {
		return QueryResult{}, err
	}
	if !partial {
		// A deadline that already cut the join phase would fail every
		// pruned check against the expired context; the partial answer
		// ships without them.
		pruned, err := s.prunedSurvivors(q, &c)
		if err != nil {
			return QueryResult{}, err
		}
		tids = append(tids, pruned...)
	}
	items, err := s.itemsForTIDs(tids, q.Ranking)
	if err != nil {
		return QueryResult{}, err
	}
	sortItemsByTID(items)
	return QueryResult{Items: items, Counters: c, Shard: shardReportFor(q, stats), Partial: partial}, nil
}
