package methods_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"toposearch/internal/biozon"
	"toposearch/internal/core"
	"toposearch/internal/methods"
	"toposearch/internal/ranking"
	"toposearch/internal/relstore"
)

func figure3Store(t *testing.T, threshold int) *methods.Store {
	t.Helper()
	db := biozon.Figure3DB()
	s, err := methods.BuildStore(context.Background(), db, biozon.SchemaGraph(), biozon.Protein, biozon.DNA,
		methods.StoreConfig{
			Opts:           core.DefaultOptions(),
			PruneThreshold: threshold,
			Scores:         ranking.Schemes(),
		})
	if err != nil {
		t.Fatalf("BuildStore: %v", err)
	}
	return s
}

// paperQuery is Q1 = {(Protein, desc.ct('enzyme')), (DNA, type='mRNA')}.
func paperQuery(t *testing.T, s *methods.Store, rk string, k int) methods.Query {
	t.Helper()
	p1, err := relstore.Contains(s.T1.Schema, "desc", "enzyme")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := relstore.Eq(s.T2.Schema, "type", relstore.StrVal("mRNA"))
	if err != nil {
		t.Fatal(err)
	}
	return methods.Query{Pred1: p1, Pred2: p2, K: k, Ranking: rk}
}

func TestPaperExampleAllMethodsAgree(t *testing.T) {
	s := figure3Store(t, 0) // prune T1 and T2
	q := paperQuery(t, s, ranking.Freq, 0)

	// The paper's expected answer: exactly four topologies T1-T4
	// (Definition 3 example: 3-Topology(Q,G) = {T1, T2, T3, T4}).
	want := map[core.TopologyID]bool{}
	for _, tid := range s.Res.TopsOf(biozon.Protein, biozon.DNA, biozon.P32, biozon.D214) {
		want[tid] = true
	}
	for _, tid := range s.Res.TopsOf(biozon.Protein, biozon.DNA, biozon.P78, biozon.D215) {
		want[tid] = true
	}
	for _, tid := range s.Res.TopsOf(biozon.Protein, biozon.DNA, biozon.P44, biozon.D742) {
		want[tid] = true
	}
	if len(want) != 4 {
		t.Fatalf("expected result has %d topologies, want 4", len(want))
	}

	for _, m := range []string{methods.MethodSQL, methods.MethodFullTop, methods.MethodFastTop} {
		res, err := s.Run(m, q)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		got := map[core.TopologyID]bool{}
		for _, it := range res.Items {
			got[it.TID] = true
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s returned %v, want %v", m, keys(got), keys(want))
		}
	}
	// The triangle topology of pair (34,215) must NOT appear: protein
	// 34 does not satisfy the 'enzyme' predicate.
	res, _ := s.FullTop(q)
	if len(res.Items) != 4 {
		t.Errorf("FullTop returned %d topologies, want 4", len(res.Items))
	}
}

func keys(m map[core.TopologyID]bool) []core.TopologyID {
	var out []core.TopologyID
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestPaperExampleTopKMethodsAgree(t *testing.T) {
	s := figure3Store(t, 0)
	topK := []string{
		methods.MethodFullTopK, methods.MethodFastTopK,
		methods.MethodFullTopKET, methods.MethodFastTopKET,
		methods.MethodFullTopOpt, methods.MethodFastTopOpt,
	}
	for _, rk := range ranking.Names() {
		for _, k := range []int{1, 2, 4, 10} {
			q := paperQuery(t, s, rk, k)
			ref, err := s.FullTopK(q)
			if err != nil {
				t.Fatalf("FullTopK: %v", err)
			}
			for _, m := range topK[1:] {
				res, err := s.Run(m, q)
				if err != nil {
					t.Fatalf("%s (rk=%s k=%d): %v", m, rk, k, err)
				}
				if !reflect.DeepEqual(res.Items, ref.Items) {
					t.Errorf("%s (rk=%s k=%d) = %v, want %v", m, rk, k, res.Items, ref.Items)
				}
			}
		}
	}
}

func TestPaperExampleNoPruning(t *testing.T) {
	// Threshold 1: nothing pruned; Fast == Full trivially; the merge
	// path is a no-op.
	s := figure3Store(t, 1)
	if len(s.PrunedTIDs) != 0 {
		t.Fatalf("pruned = %v, want none", s.PrunedTIDs)
	}
	q := paperQuery(t, s, ranking.Freq, 0)
	full, err := s.FullTop(q)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.FastTop(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Items, fast.Items) {
		t.Errorf("Fast %v != Full %v without pruning", fast.Items, full.Items)
	}
}

func TestHDGJVariantAgrees(t *testing.T) {
	s := figure3Store(t, 0)
	for _, rk := range ranking.Names() {
		q := paperQuery(t, s, rk, 3)
		ref, err := s.FullTopKET(q)
		if err != nil {
			t.Fatal(err)
		}
		q.UseHDGJ = true
		got, err := s.FullTopKET(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.Items, got.Items) {
			t.Errorf("HDGJ variant (rk=%s) = %v, want %v", rk, got.Items, ref.Items)
		}
	}
}

// TestGeneratedCrossMethodEquivalence is the load-bearing integration
// test: on a synthetic Zipfian database, every method must return the
// same result set, across selectivities, rankings, k values and pruning
// thresholds.
func TestGeneratedCrossMethodEquivalence(t *testing.T) {
	db := biozon.Generate(biozon.DefaultConfig(1))
	for _, threshold := range []int{2, 8} {
		s, err := methods.BuildStore(context.Background(), db, biozon.SchemaGraph(), biozon.Protein, biozon.DNA,
			methods.StoreConfig{
				Opts:           core.DefaultOptions(),
				PruneThreshold: threshold,
				Scores:         ranking.Schemes(),
			})
		if err != nil {
			t.Fatalf("BuildStore: %v", err)
		}
		if threshold == 2 && len(s.PrunedTIDs) == 0 {
			t.Error("threshold 2 pruned nothing; generator may be too sparse")
		}
		for _, sel := range []string{"selective", "medium", "unselective"} {
			p1, err := biozon.SelectivityPred(s.T1.Schema, sel)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := relstore.Eq(s.T2.Schema, "type", relstore.StrVal("mRNA"))
			if err != nil {
				t.Fatal(err)
			}
			// Non-top-k agreement. The SQL strawman re-derives every
			// topology from scratch per candidate, so exercise it only
			// on the selective predicate to keep the suite fast.
			q := methods.Query{Pred1: p1, Pred2: p2}
			ref, err := s.FullTop(q)
			if err != nil {
				t.Fatal(err)
			}
			nonTopK := []string{methods.MethodFastTop}
			if sel == "selective" {
				nonTopK = append(nonTopK, methods.MethodSQL)
			}
			for _, m := range nonTopK {
				res, err := s.Run(m, q)
				if err != nil {
					t.Fatalf("%s: %v", m, err)
				}
				if !reflect.DeepEqual(res.Items, ref.Items) {
					t.Errorf("thr=%d sel=%s: %s returned %d items, Full-Top %d: %v vs %v",
						threshold, sel, m, len(res.Items), len(ref.Items),
						res.TIDs(), ref.TIDs())
				}
			}
			// Top-k agreement.
			for _, rk := range ranking.Names() {
				for _, k := range []int{1, 5, 20} {
					qk := methods.Query{Pred1: p1, Pred2: p2, K: k, Ranking: rk}
					refK, err := s.FullTopK(qk)
					if err != nil {
						t.Fatal(err)
					}
					for _, m := range []string{
						methods.MethodFastTopK, methods.MethodFullTopKET,
						methods.MethodFastTopKET, methods.MethodFullTopOpt,
						methods.MethodFastTopOpt,
					} {
						res, err := s.Run(m, qk)
						if err != nil {
							t.Fatalf("%s: %v", m, err)
						}
						if !reflect.DeepEqual(res.Items, refK.Items) {
							t.Errorf("thr=%d sel=%s rk=%s k=%d: %s = %v, want %v",
								threshold, sel, rk, k, m, res.Items, refK.Items)
						}
					}
				}
			}
		}
	}
}

func TestSpaceReport(t *testing.T) {
	db := biozon.Generate(biozon.DefaultConfig(1))
	s, err := methods.BuildStore(context.Background(), db, biozon.SchemaGraph(), biozon.Protein, biozon.DNA,
		methods.StoreConfig{
			Opts:           core.DefaultOptions(),
			PruneThreshold: 2,
			Scores:         ranking.Schemes(),
		})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Space()
	if r.AllTopsRows == 0 {
		t.Fatal("empty AllTops")
	}
	if r.LeftTopsRows >= r.AllTopsRows {
		t.Errorf("pruning did not shrink: %d -> %d rows", r.AllTopsRows, r.LeftTopsRows)
	}
	if r.Ratio <= 0 || r.Ratio >= 1 {
		t.Errorf("space ratio = %v, want in (0,1)", r.Ratio)
	}
}

func TestExplainOptAndPlans(t *testing.T) {
	db := biozon.Generate(biozon.DefaultConfig(1))
	s, err := methods.BuildStore(context.Background(), db, biozon.SchemaGraph(), biozon.Protein, biozon.DNA,
		methods.StoreConfig{
			Opts:           core.DefaultOptions(),
			PruneThreshold: 2,
			Scores:         ranking.Schemes(),
		})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := biozon.SelectivityPred(s.T1.Schema, "unselective")
	q := methods.Query{Pred1: p1, Pred2: relstore.True{}, K: 10, Ranking: ranking.Rare}
	plan, choice, err := s.ExplainOpt(q, true)
	if err != nil {
		t.Fatal(err)
	}
	if plan == "" || len(choice.CostByPlan) != 3 {
		t.Errorf("ExplainOpt plan=%q costs=%v", plan, choice.CostByPlan)
	}
	// The Opt run must report the plan it chose.
	res, err := s.FastTopKOpt(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan != choice.Kind {
		t.Errorf("executed plan %v != explained plan %v", res.Plan, choice.Kind)
	}
}

func TestQueryResultHelpers(t *testing.T) {
	s := figure3Store(t, 0)
	q := paperQuery(t, s, ranking.Freq, 2)
	res, err := s.FullTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TIDs()) != len(res.Items) {
		t.Error("TIDs length mismatch")
	}
	if res.Counters.IndexProbes == 0 {
		t.Error("no probes counted")
	}
}

func TestErrors(t *testing.T) {
	db := biozon.Figure3DB()
	if _, err := methods.BuildStore(context.Background(), db, biozon.SchemaGraph(), biozon.Protein, biozon.Protein,
		methods.StoreConfig{Opts: core.DefaultOptions(), Scores: ranking.Schemes()}); err == nil {
		t.Error("self-pair store accepted")
	}
	s := figure3Store(t, 0)
	if _, err := s.Run("nope", methods.Query{}); err == nil {
		t.Error("unknown method accepted")
	}
	// ET without ranking.
	if _, err := s.FullTopKET(methods.Query{K: 3}); err == nil {
		t.Error("ET without ranking accepted")
	}
	// Opt without ranking.
	if _, err := s.FastTopKOpt(methods.Query{K: 3}); err == nil {
		t.Error("Opt without ranking accepted")
	}
	// Unknown ranking.
	if _, err := s.FullTopK(paperQueryBadRanking(s)); err == nil {
		t.Error("unknown ranking accepted")
	}
}

func paperQueryBadRanking(s *methods.Store) methods.Query {
	p1, _ := relstore.Contains(s.T1.Schema, "desc", "enzyme")
	return methods.Query{Pred1: p1, Pred2: relstore.True{}, K: 1, Ranking: "bogus"}
}

func TestCountersShapeETvsRegular(t *testing.T) {
	// On an unselective query, the ET method should do less total work
	// than the regular top-k (the Table 2 shape).
	db := biozon.Generate(biozon.DefaultConfig(2))
	s, err := methods.BuildStore(context.Background(), db, biozon.SchemaGraph(), biozon.Protein, biozon.DNA,
		methods.StoreConfig{
			Opts:           core.DefaultOptions(),
			PruneThreshold: 4,
			Scores:         ranking.Schemes(),
		})
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := biozon.SelectivityPred(s.T1.Schema, "unselective")
	p2, _ := biozon.SelectivityPred(s.T2.Schema, "unselective")
	q := methods.Query{Pred1: p1, Pred2: p2, K: 10, Ranking: ranking.Rare}
	reg, err := s.FullTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	et, err := s.FullTopKET(q)
	if err != nil {
		t.Fatal(err)
	}
	regWork := reg.Counters.IndexProbes + reg.Counters.RowsScanned
	etWork := et.Counters.IndexProbes + et.Counters.RowsScanned
	if etWork >= regWork {
		t.Errorf("unselective: ET work (%d) should be below regular (%d)", etWork, regWork)
	}
	if fmt.Sprint(reg.TIDs()) != fmt.Sprint(et.TIDs()) {
		t.Errorf("results differ: %v vs %v", reg.TIDs(), et.TIDs())
	}
}
