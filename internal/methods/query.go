package methods

import (
	"context"
	"fmt"
	"sort"

	"toposearch/internal/core"
	"toposearch/internal/engine"
	"toposearch/internal/obs"
	"toposearch/internal/optimizer"
	"toposearch/internal/relstore"
)

// Query is the 2-query of Definition 3 plus the top-k controls: local
// predicates on both entity sets, the number of results wanted, and the
// ranking scheme.
type Query struct {
	Pred1 relstore.Pred // constraint on ES1 (nil = TRUE)
	Pred2 relstore.Pred // constraint on ES2 (nil = TRUE)
	K     int           // top-k for the *-k methods
	// Ranking names the score column ("freq", "rare", "domain").
	Ranking string
	// UseHDGJ switches the ET plans' middle join to the HDGJ
	// implementation — the "worst plan" variant of Table 2.
	UseHDGJ bool
	// Ctx optionally carries a cancellation context. When set, the
	// execution plans abort with its error once it is cancelled (nil
	// behaves like context.Background()). RunContext fills it in.
	Ctx context.Context
	// Parallelism is the query-time worker count: the driving
	// entity-set scan of the tops joins, FastTop's per-pruned-topology
	// existence checks and the SQL strawman's per-candidate probes are
	// sharded across this many workers. 0 inherits the store's offline
	// Parallelism setting (whose 0 means GOMAXPROCS); 1 forces
	// sequential execution. Result items AND merged counter totals are
	// byte-identical at every setting.
	Parallelism int
	// Speculation is the speculative ET width: the ET plans partition
	// the score-ordered group stream into this many contiguous
	// segments, race one restartable DGJ stack per segment, and commit
	// witnesses in canonical group order, cancelling in-flight losers
	// the moment the k-th witness commits. 0 and 1 run the classical
	// sequential stack. Result items, plans AND useful-work counters
	// are byte-identical at every setting; the extra work burned by
	// losing segments is reported separately in QueryResult.Spec.
	Speculation int
	// Shards is the scatter-gather shard count: the driving position
	// space — entity rows for the scan methods, the score-ordered
	// group stream for the ET plans — is partitioned into this many
	// contiguous cost-weighted ranges, one searcher-like executor per
	// shard, and the per-shard streams are merged by a coordinator.
	// ET executors additionally exchange the global top-k bound: a
	// shard is cancelled once the results emitted below it already
	// cover k (nothing it can still produce can enter the top k).
	// 0 and 1 run single-store execution. Result items, plans AND
	// merged useful-work counter totals are byte-identical at every
	// shard count; per-shard accounting lands in QueryResult.Shard.
	Shards int
	// NoBoundExchange disables the ET shards' global bound exchange
	// (results stay identical; the shards merely stop pruning each
	// other). It exists so the bench harness can measure the work the
	// exchange avoids.
	NoBoundExchange bool
	// PartialOK permits a deadline-bounded query (Ctx carrying a
	// deadline) to return the ranked results produced before the
	// deadline instead of failing with context.DeadlineExceeded. The
	// result's Partial flag reports that the answer is a subset;
	// per-shard completeness lands in ShardStat.Complete. Cancellation
	// (as opposed to deadline expiry) still fails the query: an
	// abandoned caller wants no answer at all.
	PartialOK bool
	// Trace, when non-nil, collects a span tree of the execution
	// (method dispatch, optimizer choice, scan/join windows, ET
	// segments, shard executors, merges) under the given parent span.
	// Tracing records timings and counter attributes only — it never
	// changes the work performed, so traced results stay byte-identical
	// to untraced ones. nil (the default) disables tracing at the cost
	// of a nil-check per span site.
	Trace *obs.Span
}

// Item is one ranked result.
type Item struct {
	TID   core.TopologyID
	Score int64
}

// QueryResult is a method's answer: topologies (rank order for top-k
// methods, ID order otherwise), the physical work counters, and the
// plan the optimizer chose (Opt methods only).
type QueryResult struct {
	Items    []Item
	Counters engine.Counters
	Plan     optimizer.PlanKind
	// Spec accounts speculative-execution work (zero unless the query
	// ran an ET plan with Query.Speculation > 1). Counters above always
	// reports the useful work only — byte-identical to a sequential
	// run — while Spec.Wasted holds the extra work losing segments
	// burned before they were cancelled.
	Spec SpecReport
	// Shard is the scatter-gather accounting (zero unless the query ran
	// with Query.Shards > 1): one entry per shard executor with its
	// position range, the work it burned, and whether the bound
	// exchange pruned it.
	Shard ShardReport
	// Partial reports that the query's deadline expired with PartialOK
	// set: Items holds the ranked results produced before the cut, a
	// subset of the full answer. Counters then report the work actually
	// performed (the byte-identical useful-work discipline applies only
	// to complete runs).
	Partial bool
}

// ShardReport is the scatter-gather accounting of one sharded query.
type ShardReport struct {
	// Count is the shard count the query ran with (0 = unsharded).
	Count int
	// Stats holds one entry per shard executor, in shard order.
	Stats []ShardStat
}

// ShardStat is one shard executor's share of a sharded query.
type ShardStat struct {
	// Shard is the executor's index in partition order.
	Shard int
	// Lo and Hi delimit the shard's position window [Lo, Hi) — entity
	// rows for the scan methods, score-order positions for ET.
	Lo, Hi int32
	// Work is the total work the shard burned (useful or not), in the
	// Counters.Work unit.
	Work int64
	// Witnesses is the number of results the shard produced (emitted
	// ET witnesses, or distinct TIDs before the global merge).
	Witnesses int
	// Pruned reports that the bound exchange stopped this shard early:
	// results already emitted below it covered the top k, so its
	// remaining window could not contribute (ET only).
	Pruned bool
	// Complete reports that the shard ran its window to the end (or was
	// legitimately pruned/cancelled by the bound exchange or the commit)
	// rather than being cut off by the query deadline. Always true for
	// non-partial results.
	Complete bool
}

// MaxWork returns the largest single-shard work share — the
// scatter-gather critical path.
func (r ShardReport) MaxWork() int64 {
	var m int64
	for _, st := range r.Stats {
		if st.Work > m {
			m = st.Work
		}
	}
	return m
}

// PrunedShards counts the shards the bound exchange stopped early.
func (r ShardReport) PrunedShards() int {
	n := 0
	for _, st := range r.Stats {
		if st.Pruned {
			n++
		}
	}
	return n
}

// SpecReport is the speculative-execution work accounting of one
// query.
type SpecReport struct {
	// Width is the speculation width the ET plan ran with (0 = the
	// query ran without speculation).
	Width int
	// Wasted is the work performed by speculative segment workers
	// beyond the committed useful work in QueryResult.Counters: groups
	// raced past the k-th witness, plus partial work in flight when
	// the losers were cancelled.
	Wasted engine.Counters
	// CriticalPath is the largest single-segment share of the useful
	// work: the racing phase cannot finish before its slowest segment,
	// so this bounds the ET latency from below on hardware with one
	// core per segment. For a sequential ET run it equals the whole ET
	// work.
	CriticalPath engine.Counters
}

// TIDs lists the result topology IDs in order.
func (r QueryResult) TIDs() []core.TopologyID {
	out := make([]core.TopologyID, len(r.Items))
	for i, it := range r.Items {
		out[i] = it.TID
	}
	return out
}

// Method names, as used by the harness and the Run dispatcher.
const (
	MethodSQL        = "sql"
	MethodFullTop    = "full-top"
	MethodFastTop    = "fast-top"
	MethodFullTopK   = "full-top-k"
	MethodFastTopK   = "fast-top-k"
	MethodFullTopKET = "full-top-k-et"
	MethodFastTopKET = "fast-top-k-et"
	MethodFullTopOpt = "full-top-k-opt"
	MethodFastTopOpt = "fast-top-k-opt"
)

// AllMethods lists every method in the order of the paper's Table 2.
func AllMethods() []string {
	return []string{
		MethodSQL,
		MethodFullTop, MethodFastTop,
		MethodFullTopK, MethodFastTopK,
		MethodFullTopKET, MethodFastTopKET,
		MethodFullTopOpt, MethodFastTopOpt,
	}
}

// Run dispatches a query to the named method.
func (s *Store) Run(method string, q Query) (QueryResult, error) {
	return s.dispatch(method, q)
}

// RunContext is Run with a cancellation context: long-running plans
// abort with the context's error once it is cancelled.
func (s *Store) RunContext(ctx context.Context, method string, q Query) (QueryResult, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return QueryResult{}, err
		}
		q.Ctx = ctx
	}
	return s.dispatch(method, q)
}

func (s *Store) dispatch(method string, q Query) (QueryResult, error) {
	sp := q.Trace.Child("method " + method)
	if sp != nil {
		q.Trace = sp
	}
	res, err := s.runMethod(method, q)
	if sp != nil {
		sp.SetInt("work", res.Counters.Work())
		sp.SetInt("tuples_out", res.Counters.TuplesOut)
		sp.SetInt("items", int64(len(res.Items)))
		if err != nil {
			sp.SetStr("error", err.Error())
		}
		sp.End()
	}
	return res, err
}

func (s *Store) runMethod(method string, q Query) (QueryResult, error) {
	switch method {
	case MethodSQL:
		return s.SQLMethod(q)
	case MethodFullTop:
		return s.FullTop(q)
	case MethodFastTop:
		return s.FastTop(q)
	case MethodFullTopK:
		return s.FullTopK(q)
	case MethodFastTopK:
		return s.FastTopK(q)
	case MethodFullTopKET:
		return s.FullTopKET(q)
	case MethodFastTopKET:
		return s.FastTopKET(q)
	case MethodFullTopOpt:
		return s.FullTopKOpt(q)
	case MethodFastTopOpt:
		return s.FastTopKOpt(q)
	default:
		return QueryResult{}, fmt.Errorf("methods: unknown method %q", method)
	}
}

// rankedBefore is the total result order of the top-k methods:
// descending score, ties broken by ascending topology ID.
func rankedBefore(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.TID < b.TID
}

func sortItems(items []Item) {
	sort.Slice(items, func(i, j int) bool { return rankedBefore(items[i], items[j]) })
}

func sortItemsByTID(items []Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].TID < items[j].TID })
}

func trimK(items []Item, k int) []Item {
	if k > 0 && len(items) > k {
		return items[:k]
	}
	return items
}
