package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"toposearch"
)

// batchLine is one JSONL mutation: an entity insert (entity/id/attrs)
// or a relationship insert (rel/a/b). The format is shared between the
// topsearch -apply flag and the daemon's POST /v1/apply body.
type batchLine struct {
	Entity string            `json:"entity"`
	ID     int64             `json:"id"`
	Attrs  map[string]string `json:"attrs"`
	Rel    string            `json:"rel"`
	A      int64             `json:"a"`
	B      int64             `json:"b"`
}

// ParseBatch parses a JSONL mutation stream into staged updates. Blank
// lines and #-comments are skipped; a line may stage either an entity
// or a relationship, never both. name prefixes error positions (a file
// path, or "body" for an HTTP request).
func ParseBatch(r io.Reader, name string) ([]toposearch.Update, error) {
	var ups []toposearch.Update
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // long desc attributes exceed the default line cap
	for n := 1; sc.Scan(); n++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var bl batchLine
		if err := json.Unmarshal([]byte(line), &bl); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, n, err)
		}
		switch {
		case bl.Entity != "" && bl.Rel != "":
			return nil, fmt.Errorf("%s:%d: line sets both \"entity\" and \"rel\"", name, n)
		case bl.Entity != "":
			ups = append(ups, toposearch.InsertEntity(bl.Entity, bl.ID, bl.Attrs))
		case bl.Rel != "":
			ups = append(ups, toposearch.InsertRelationship(bl.Rel, bl.A, bl.B))
		default:
			return nil, fmt.Errorf("%s:%d: line has neither \"entity\" nor \"rel\"", name, n)
		}
	}
	return ups, sc.Err()
}
