package serve

import "toposearch/internal/obs"

// Request-level metric families on the obs default registry. The
// counter carries rate (qps by route and status class); the histogram's
// bucket series yield end-to-end latency percentiles at scrape time —
// the serving-layer complement of toposearch_query_duration_seconds,
// which only covers the engine portion of a request.
var (
	obsHTTPRequests = obs.Default().CounterVec("toposerve_http_requests_total",
		"HTTP requests served by the toposerve daemon, by route and status code.",
		"route", "code")
	obsHTTPDur = obs.Default().HistogramVec("toposerve_http_request_duration_seconds",
		"End-to-end HTTP request latency by route, decode to last response byte.",
		obs.DefLatencyBuckets(), "route")
	obsHTTPInflight = obs.Default().Gauge("toposerve_http_inflight",
		"HTTP requests currently executing in the daemon.")
)
