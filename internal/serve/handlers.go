package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"toposearch"
	"toposearch/internal/methods"
)

// maxApplyBytes caps a /v1/apply request body (the JSONL parser's own
// per-line cap still applies inside it).
const maxApplyBytes = 64 << 20

// Constraint is the wire form of toposearch.Constraint.
type Constraint struct {
	Column  string `json:"column"`
	Keyword string `json:"keyword,omitempty"`
	Equals  string `json:"equals,omitempty"`
}

// SearchRequest is the POST /v1/search body. es1/es2 default to the
// server's configured pair; everything else mirrors
// toposearch.SearchQuery. A timeout may come from the body
// (timeout_ms) or the X-Timeout-Ms header (the header wins); it bounds
// the request context AND becomes the query's Deadline, so with
// partial_ok the daemon answers 200 with partial=true instead of 504.
type SearchRequest struct {
	ES1         string       `json:"es1,omitempty"`
	ES2         string       `json:"es2,omitempty"`
	K           int          `json:"k,omitempty"`
	Ranking     string       `json:"ranking,omitempty"`
	Method      string       `json:"method,omitempty"`
	Cons1       []Constraint `json:"cons1,omitempty"`
	Cons2       []Constraint `json:"cons2,omitempty"`
	Speculation int          `json:"speculation,omitempty"`
	Shards      int          `json:"shards,omitempty"`
	TimeoutMs   int64        `json:"timeout_ms,omitempty"`
	PartialOK   bool         `json:"partial_ok,omitempty"`
	Trace       bool         `json:"trace,omitempty"`
}

// SearchResponse is the POST /v1/search response. Result is the
// engine's answer verbatim — byte-identical to an embedded
// Searcher.Search call with the same query.
type SearchResponse struct {
	ES1       string                   `json:"es1"`
	ES2       string                   `json:"es2"`
	ElapsedUS int64                    `json:"elapsed_us"`
	Partial   bool                     `json:"partial"`
	Result    *toposearch.SearchResult `json:"result"`
}

// ApplyResponse is the POST /v1/apply response. RefreshedEdges is
// present only on ?sync=1 calls, which run the refresh round inline;
// otherwise the background loop folds the batch in shortly after.
type ApplyResponse struct {
	Mutations      int            `json:"mutations"`
	ElapsedUS      int64          `json:"elapsed_us"`
	Synced         bool           `json:"synced"`
	RefreshedEdges map[string]int `json:"refreshed_edges,omitempty"`
}

// SearcherStatus is one pool entry's slice of GET /v1/stats.
type SearcherStatus struct {
	Topologies int                      `json:"topologies"`
	Pruned     int                      `json:"pruned"`
	Stats      toposearch.SearcherStats `json:"stats"`
	Cache      methods.CacheStats       `json:"cache"`
	Routing    []int                    `json:"routing,omitempty"`
}

// StatsResponse is the GET /v1/stats body.
type StatsResponse struct {
	UptimeSec     float64                   `json:"uptime_sec"`
	Entities      int                       `json:"entities"`
	Relationships int                       `json:"relationships"`
	EntitySets    []string                  `json:"entity_sets"`
	Searchers     map[string]SearcherStatus `json:"searchers"`
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Site    string `json:"site,omitempty"`
	} `json:"error"`
}

// Handler returns the daemon's full route table: the /v1 API plus the
// engine's observability mux (/metrics, /statsz, /debug/pprof).
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/search", sv.instrument("search", sv.handleSearch))
	mux.Handle("POST /v1/apply", sv.instrument("apply", sv.handleApply))
	mux.Handle("GET /v1/stats", sv.instrument("stats", sv.handleStats))
	mm := toposearch.MetricsMux()
	mux.Handle("/metrics", mm)
	mux.Handle("/statsz", mm)
	mux.Handle("/debug/pprof/", mm)
	return mux
}

// statusWriter captures the status code for logs and metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the serving-layer cross-cutting
// concerns: shutdown refusal, in-flight accounting (Shutdown drains
// it), request metrics and one structured log record per request.
func (sv *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sv.shuttingDown() {
			writeError(w, http.StatusServiceUnavailable, "shutting_down",
				errors.New("daemon is shutting down"), "")
			return
		}
		sv.inflight.Add(1)
		defer sv.inflight.Done()
		obsHTTPInflight.Add(1)
		defer obsHTTPInflight.Add(-1)
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		elapsed := time.Since(t0)
		obsHTTPRequests.With(route, strconv.Itoa(sw.code)).Inc()
		obsHTTPDur.With(route).Observe(elapsed.Seconds())
		sv.log.Info("request", "route", route, "code", sw.code,
			"elapsed_us", elapsed.Microseconds(), "remote", r.RemoteAddr)
	})
}

// writeError writes the JSON error envelope. retryAfter, when
// non-empty, becomes a Retry-After header (429 shedding).
func writeError(w http.ResponseWriter, status int, code string, err error, retryAfter string) {
	var body errorBody
	body.Error.Code = code
	body.Error.Message = err.Error()
	var pe *toposearch.EnginePanicError
	if errors.As(err, &pe) {
		body.Error.Site = pe.Site
	}
	w.Header().Set("Content-Type", "application/json")
	if retryAfter != "" {
		w.Header().Set("Retry-After", retryAfter)
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeEngineError maps an engine error onto the serving contract:
// admission shed -> 429 + Retry-After, contained panic -> 500 carrying
// the containment site, deadline -> 504, client cancellation -> 499.
func writeEngineError(w http.ResponseWriter, err error) {
	var pe *toposearch.EnginePanicError
	switch {
	case errors.Is(err, toposearch.ErrOverloaded):
		writeError(w, http.StatusTooManyRequests, "overloaded", err, "1")
	case errors.As(err, &pe):
		writeError(w, http.StatusInternalServerError, "panic_contained", err, "")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", err, "")
	case errors.Is(err, context.Canceled):
		// Client went away; 499 mirrors the common reverse-proxy code.
		writeError(w, 499, "client_closed_request", err, "")
	default:
		writeError(w, http.StatusBadRequest, "bad_request", err, "")
	}
}

// decodeSearch parses and validates the request body against the
// engine's vocabulary, so malformed queries 400 before touching the
// pool.
func (sv *Server) decodeSearch(r *http.Request) (SearchRequest, toposearch.SearchQuery, error) {
	var req SearchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, toposearch.SearchQuery{}, fmt.Errorf("decoding body: %w", err)
	}
	if req.ES1 == "" {
		req.ES1 = sv.cfg.DefaultES1
	}
	if req.ES2 == "" {
		req.ES2 = sv.cfg.DefaultES2
	}
	if err := sv.validPair(req.ES1, req.ES2); err != nil {
		return req, toposearch.SearchQuery{}, err
	}
	if req.K < 0 {
		return req, toposearch.SearchQuery{}, fmt.Errorf("k must be >= 0, got %d", req.K)
	}
	if req.Method != "" {
		ok := false
		for _, m := range methods.AllMethods() {
			if m == req.Method {
				ok = true
				break
			}
		}
		if !ok {
			return req, toposearch.SearchQuery{}, fmt.Errorf("unknown method %q (have %v)", req.Method, methods.AllMethods())
		}
	}
	switch req.Ranking {
	case "", toposearch.RankFreq, toposearch.RankRare, toposearch.RankDomain:
	default:
		return req, toposearch.SearchQuery{}, fmt.Errorf("unknown ranking %q (freq|rare|domain)", req.Ranking)
	}
	if hdr := r.Header.Get("X-Timeout-Ms"); hdr != "" {
		ms, err := strconv.ParseInt(hdr, 10, 64)
		if err != nil || ms < 0 {
			return req, toposearch.SearchQuery{}, fmt.Errorf("invalid X-Timeout-Ms %q", hdr)
		}
		req.TimeoutMs = ms
	}
	if req.TimeoutMs < 0 {
		return req, toposearch.SearchQuery{}, fmt.Errorf("timeout_ms must be >= 0, got %d", req.TimeoutMs)
	}
	q := toposearch.SearchQuery{
		K:           req.K,
		Ranking:     req.Ranking,
		Method:      req.Method,
		Speculation: req.Speculation,
		Shards:      req.Shards,
		PartialOK:   req.PartialOK,
		Trace:       req.Trace,
	}
	for _, c := range req.Cons1 {
		q.Cons1 = append(q.Cons1, toposearch.Constraint{Column: c.Column, Keyword: c.Keyword, Equals: c.Equals})
	}
	for _, c := range req.Cons2 {
		q.Cons2 = append(q.Cons2, toposearch.Constraint{Column: c.Column, Keyword: c.Keyword, Equals: c.Equals})
	}
	return req, q, nil
}

// timeout resolves the request's effective deadline: the client's ask
// clamped to MaxTimeout, or DefaultTimeout when it sent none.
func (sv *Server) timeout(reqMs int64) time.Duration {
	d := time.Duration(reqMs) * time.Millisecond
	if d == 0 {
		d = sv.cfg.DefaultTimeout
	}
	if sv.cfg.MaxTimeout > 0 && (d == 0 || d > sv.cfg.MaxTimeout) {
		d = sv.cfg.MaxTimeout
	}
	return d
}

func (sv *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	req, q, err := sv.decodeSearch(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err, "")
		return
	}
	s, err := sv.searcher(r.Context(), req.ES1, req.ES2)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "build_failed", err, "")
		return
	}
	ctx := r.Context()
	if d := sv.timeout(req.TimeoutMs); d > 0 {
		q.Deadline = d
		// With partial_ok the engine's own deadline cut must win the
		// race against the transport context (a context kill is a hard
		// 504, the engine cut a 200 with partial=true), so the context
		// gets slack beyond the query deadline.
		slack := d
		if q.PartialOK {
			slack = d + d/2 + 100*time.Millisecond
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, slack)
		defer cancel()
	}
	t0 := time.Now()
	res, err := s.SearchContext(ctx, q)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(SearchResponse{
		ES1: req.ES1, ES2: req.ES2,
		ElapsedUS: time.Since(t0).Microseconds(),
		Partial:   res.Partial,
		Result:    res,
	})
}

func (sv *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxApplyBytes)
	ups, err := ParseBatch(body, "body")
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_batch", err, "")
		return
	}
	if len(ups) == 0 {
		writeError(w, http.StatusBadRequest, "bad_batch", errors.New("empty batch"), "")
		return
	}
	t0 := time.Now()
	if err := sv.db.ApplyBatch(ups); err != nil {
		var pe *toposearch.EnginePanicError
		if errors.As(err, &pe) {
			writeError(w, http.StatusInternalServerError, "panic_contained", err, "")
		} else {
			writeError(w, http.StatusBadRequest, "apply_failed", err, "")
		}
		return
	}
	resp := ApplyResponse{Mutations: len(ups)}
	if r.URL.Query().Get("sync") != "" {
		// Inline refresh round: when this returns, every pooled searcher
		// answers against the new rows (tests and scripted clients).
		resp.RefreshedEdges = sv.refreshAll(r.Context())
		resp.Synced = true
	} else {
		sv.kickRefresh()
	}
	resp.ElapsedUS = time.Since(t0).Microseconds()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (sv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		UptimeSec:     time.Since(sv.start).Seconds(),
		Entities:      sv.db.NumEntities(),
		Relationships: sv.db.NumRelationships(),
		EntitySets:    sv.db.EntitySets(),
		Searchers:     make(map[string]SearcherStatus),
	}
	for key, s := range sv.searchers() {
		resp.Searchers[key[0]+"-"+key[1]] = SearcherStatus{
			Topologies: s.TopologyCount(),
			Pruned:     s.PrunedCount(),
			Stats:      s.Stats(),
			Cache:      s.CacheStats(),
			Routing:    s.ShardRouting(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
