// Package serve is the toposearch serving layer: an HTTP daemon
// exposing the engine's query, mutation and introspection surface over
// JSON, with the same admission, containment and caching semantics the
// library gives embedded callers.
//
// Endpoints:
//
//	POST /v1/search   one SearchRequest -> SearchResponse
//	POST /v1/apply    JSONL mutation batch -> ApplyBatch + refresh
//	GET  /v1/stats    daemon + per-searcher stats snapshot
//	GET  /metrics     Prometheus exposition (plus /statsz, /debug/pprof)
//
// A Server owns one Searcher per entity-set pair, built on first use
// and reused across requests. A background loop refreshes every pooled
// searcher after mutation batches land (collapsing bursts) and
// compacts the store on a configurable cadence. Shutdown drains
// in-flight requests, stops the loop, then Closes every searcher.
package serve

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"toposearch"
)

// Config parameterizes a Server. DB is required; the zero value of
// everything else is usable.
type Config struct {
	// DB is the database the pooled searchers run over.
	DB *toposearch.DB
	// Searcher is the build template applied to every pooled searcher
	// (zero = DefaultSearcherConfig plus whatever admission bounds the
	// daemon sets).
	Searcher toposearch.SearcherConfig
	// DefaultES1/DefaultES2 name the entity-set pair used by requests
	// that leave es1/es2 empty (default Protein / DNA).
	DefaultES1, DefaultES2 string
	// DefaultTimeout bounds requests that send no timeout of their own
	// (0 = unbounded).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (0 = uncapped).
	MaxTimeout time.Duration
	// RefreshDebounce is how long the background loop waits after a
	// mutation batch before refreshing, collapsing bursts of /v1/apply
	// calls into one refresh round (default 25ms).
	RefreshDebounce time.Duration
	// CompactEvery compacts the store after every n-th background
	// refresh round (default 1 = after every round; negative disables).
	CompactEvery int
	// Log receives one structured record per request and per background
	// refresh round (default slog.Default()).
	Log *slog.Logger
}

// Server is the daemon state: the searcher pool, the background
// refresh/compact loop, and the in-flight request accounting that
// Shutdown drains.
type Server struct {
	cfg   Config
	db    *toposearch.DB
	log   *slog.Logger
	start time.Time

	mu   sync.Mutex
	pool map[[2]string]*pooledSearcher

	inflight sync.WaitGroup
	closed   chan struct{} // closed by Shutdown: new requests get 503
	kick     chan struct{} // nudges the refresh loop after a batch
	loopDone chan struct{}
	stopOnce sync.Once

	refreshMu sync.Mutex // serializes refresh rounds (loop vs sync applies)
	rounds    int        // completed refresh rounds, drives CompactEvery
}

// pooledSearcher is one pool slot: the once gate makes concurrent
// first requests for a pair share a single offline build, and done
// (closed when the build finishes) lets snapshot readers observe s/err
// without blocking on a build in progress.
type pooledSearcher struct {
	once sync.Once
	done chan struct{}
	s    *toposearch.Searcher
	err  error
}

// New builds a Server over cfg.DB and starts its background refresh
// loop. Callers must Shutdown the returned server to stop the loop and
// close the pooled searchers.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("serve: Config.DB is required")
	}
	if cfg.DefaultES1 == "" {
		cfg.DefaultES1 = toposearch.Protein
	}
	if cfg.DefaultES2 == "" {
		cfg.DefaultES2 = toposearch.DNA
	}
	if cfg.RefreshDebounce <= 0 {
		cfg.RefreshDebounce = 25 * time.Millisecond
	}
	if cfg.CompactEvery == 0 {
		cfg.CompactEvery = 1
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	if (cfg.Searcher == toposearch.SearcherConfig{}) {
		cfg.Searcher = toposearch.DefaultSearcherConfig()
	}
	sv := &Server{
		cfg:      cfg,
		db:       cfg.DB,
		log:      cfg.Log,
		start:    time.Now(),
		pool:     make(map[[2]string]*pooledSearcher),
		closed:   make(chan struct{}),
		kick:     make(chan struct{}, 1),
		loopDone: make(chan struct{}),
	}
	go sv.refreshLoop()
	return sv, nil
}

// Warm builds the searcher for one entity-set pair ahead of traffic,
// so the first request doesn't pay the offline phase.
func (sv *Server) Warm(ctx context.Context, es1, es2 string) error {
	_, err := sv.searcher(ctx, es1, es2)
	return err
}

// shuttingDown reports whether Shutdown has begun.
func (sv *Server) shuttingDown() bool {
	select {
	case <-sv.closed:
		return true
	default:
		return false
	}
}

// validPair reports whether both names are entity sets of the DB's
// schema graph, so bad pairs 400 without paying a pool build.
func (sv *Server) validPair(es1, es2 string) error {
	known := sv.db.EntitySets()
	for _, es := range []string{es1, es2} {
		ok := false
		for _, k := range known {
			if k == es {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("unknown entity set %q (have %v)", es, known)
		}
	}
	return nil
}

// searcher returns the pooled searcher for the pair, building it on
// first use. Concurrent first requests share one build; a failed build
// vacates the slot so a later request can retry.
func (sv *Server) searcher(ctx context.Context, es1, es2 string) (*toposearch.Searcher, error) {
	key := [2]string{es1, es2}
	sv.mu.Lock()
	ps, ok := sv.pool[key]
	if !ok {
		ps = &pooledSearcher{done: make(chan struct{})}
		sv.pool[key] = ps
	}
	sv.mu.Unlock()
	ps.once.Do(func() {
		defer close(ps.done)
		t0 := time.Now()
		// The build is detached from the request context: a client that
		// gives up mid-build must not poison the slot every later
		// request shares.
		ps.s, ps.err = sv.db.NewSearcherContext(context.WithoutCancel(ctx), es1, es2, sv.cfg.Searcher)
		if ps.err == nil {
			sv.log.Info("searcher built", "es1", es1, "es2", es2,
				"topologies", ps.s.TopologyCount(), "pruned", ps.s.PrunedCount(),
				"elapsed", time.Since(t0).Round(time.Microsecond).String())
		}
	})
	<-ps.done
	if ps.err != nil {
		sv.mu.Lock()
		if sv.pool[key] == ps {
			delete(sv.pool, key)
		}
		sv.mu.Unlock()
		return nil, ps.err
	}
	return ps.s, nil
}

// searchers snapshots the built pool entries (pairs still mid-build or
// failed are skipped).
func (sv *Server) searchers() map[[2]string]*toposearch.Searcher {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make(map[[2]string]*toposearch.Searcher, len(sv.pool))
	for key, ps := range sv.pool {
		select {
		case <-ps.done: // build finished; s/err safe to read
			if ps.err == nil {
				out[key] = ps.s
			}
		default: // still building — skip this round
		}
	}
	return out
}

// kickRefresh nudges the background loop; a nudge already pending is
// enough (the loop refreshes every pooled searcher per round).
func (sv *Server) kickRefresh() {
	select {
	case sv.kick <- struct{}{}:
	default:
	}
}

// refreshLoop folds applied batches into every pooled searcher: one
// round per burst of /v1/apply calls (collapsed by RefreshDebounce),
// compacting the store every CompactEvery rounds.
func (sv *Server) refreshLoop() {
	defer close(sv.loopDone)
	for {
		select {
		case <-sv.closed:
			return
		case <-sv.kick:
		}
		// Debounce: let a burst of applies land, then refresh once.
		timer := time.NewTimer(sv.cfg.RefreshDebounce)
		select {
		case <-sv.closed:
			timer.Stop()
			return
		case <-timer.C:
		}
		sv.refreshAll(context.Background())
	}
}

// refreshAll runs one refresh round: every pooled searcher absorbs the
// applied-edge log, then the store compacts on the CompactEvery
// cadence. Rounds are serialized; a synchronous /v1/apply?sync=1 and
// the background loop never interleave.
func (sv *Server) refreshAll(ctx context.Context) map[string]int {
	sv.refreshMu.Lock()
	defer sv.refreshMu.Unlock()
	edges := make(map[string]int)
	for key, s := range sv.searchers() {
		t0 := time.Now()
		n, err := s.RefreshContext(ctx)
		pair := key[0] + "-" + key[1]
		if err != nil {
			sv.log.Error("refresh failed", "pair", pair, "err", err.Error())
			continue
		}
		edges[pair] = n
		sv.log.Info("refreshed", "pair", pair, "edges", n,
			"elapsed", time.Since(t0).Round(time.Microsecond).String())
	}
	sv.rounds++
	if sv.cfg.CompactEvery > 0 && sv.rounds%sv.cfg.CompactEvery == 0 {
		if err := sv.db.Compact(); err != nil {
			sv.log.Error("compact failed", "err", err.Error())
		}
	}
	return edges
}

// Shutdown drains the daemon: new requests are refused with 503,
// in-flight requests run to completion (bounded by ctx), the refresh
// loop stops, and every pooled searcher is Closed — which itself
// drains that searcher's in-flight queries. Idempotent.
func (sv *Server) Shutdown(ctx context.Context) error {
	sv.stopOnce.Do(func() { close(sv.closed) })
	select {
	case <-sv.loopDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	done := make(chan struct{})
	go func() {
		sv.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	for _, s := range sv.searchers() {
		s.Close()
	}
	return nil
}
