// Package ranking provides the three topology scoring schemes of the
// paper's evaluation (Section 6.1): Freq favours common topologies,
// Rare favours uncommon ones, and Domain stands in for the
// domain-expert ranking with a deterministic structural score that
// rewards the features the paper's biologist found significant
// (interaction nodes, cyclic interplay of multiple path classes — see
// Figure 16 and Section 6.2.1).
package ranking

import "toposearch/internal/core"

// Scheme names.
const (
	Freq   = "freq"
	Rare   = "rare"
	Domain = "domain"
)

// Names lists the schemes in the order the paper's tables use.
func Names() []string { return []string{Freq, Domain, Rare} }

// Schemes returns the score functions keyed by scheme name.
func Schemes() map[string]core.ScoreFunc {
	return map[string]core.ScoreFunc{
		Freq:   FreqScore,
		Rare:   RareScore,
		Domain: DomainScore,
	}
}

// FreqScore ranks common topologies first.
func FreqScore(_ *core.TopInfo, freq int) int64 { return int64(freq) }

// RareScore ranks rare topologies first.
func RareScore(_ *core.TopInfo, freq int) int64 { return -int64(freq) }

// DomainScore is the structural stand-in for the expert ranking:
// topologies that weave several path classes into a cyclic structure
// through interactions score highest; bare frequent paths score lowest.
func DomainScore(info *core.TopInfo, freq int) int64 {
	var s int64
	for _, l := range info.Graph.Labels {
		if l == "Interaction" {
			s += 40
		}
	}
	if info.NumEdges >= info.NumNodes { // contains a cycle
		s += 25
	}
	if n := len(info.Sigs); n > 1 {
		s += int64(15 * (n - 1))
	}
	if info.IsPath {
		s -= 20
	}
	s += int64(info.NumNodes)
	// Rareness is mildly interesting to the expert too; break ties
	// away from the very frequent.
	if freq > 100 {
		s -= 5
	}
	return s
}
