package ranking

import (
	"testing"

	"toposearch/internal/canon"
	"toposearch/internal/core"
	"toposearch/internal/graph"
)

func pathInfo() *core.TopInfo {
	return &core.TopInfo{
		Graph: &canon.Graph{
			Labels: []string{"Protein", "Unigene", "DNA"},
			Edges: []canon.Edge{
				{U: 0, V: 1, Label: "uni_encodes"},
				{U: 1, V: 2, Label: "uni_contains"},
			},
		},
		NumNodes: 3, NumEdges: 2,
		Sigs:   []graph.PathSig{"a"},
		IsPath: true,
	}
}

func fig16Info() *core.TopInfo {
	return &core.TopInfo{
		Graph: &canon.Graph{
			Labels: []string{"Protein", "Protein", "DNA", "Interaction"},
			Edges: []canon.Edge{
				{U: 0, V: 2, Label: "encodes"},
				{U: 1, V: 2, Label: "encodes"},
				{U: 0, V: 3, Label: "interaction"},
				{U: 1, V: 3, Label: "interaction"},
			},
		},
		NumNodes: 4, NumEdges: 4,
		Sigs:   []graph.PathSig{"a", "b"},
		IsPath: false,
	}
}

func TestFreqAndRareAreOpposites(t *testing.T) {
	info := pathInfo()
	for _, f := range []int{0, 1, 100, 5000} {
		if FreqScore(info, f) != -RareScore(info, f) {
			t.Errorf("freq/rare not mirrored at %d", f)
		}
	}
	if FreqScore(info, 10) <= FreqScore(info, 5) {
		t.Error("FreqScore not increasing")
	}
	if RareScore(info, 10) >= RareScore(info, 5) {
		t.Error("RareScore not decreasing")
	}
}

func TestDomainPrefersFigure16OverPath(t *testing.T) {
	path := DomainScore(pathInfo(), 1000)
	motif := DomainScore(fig16Info(), 3)
	if motif <= path {
		t.Errorf("domain score: motif %d <= frequent path %d", motif, path)
	}
	// The interaction node, the cycle, and the extra class each
	// contribute.
	noCycle := fig16Info()
	noCycle.NumEdges = 3 // pretend the cycle is broken
	if DomainScore(noCycle, 3) >= motif {
		t.Error("cycle bonus missing")
	}
}

func TestDomainFrequencyPenalty(t *testing.T) {
	info := fig16Info()
	if DomainScore(info, 101) >= DomainScore(info, 99) {
		t.Error("very frequent topologies should be slightly penalized")
	}
}

func TestSchemesComplete(t *testing.T) {
	s := Schemes()
	if len(s) != 3 {
		t.Fatalf("schemes = %d, want 3", len(s))
	}
	for _, name := range Names() {
		if s[name] == nil {
			t.Errorf("missing scheme %q", name)
		}
	}
	if Names()[0] != Freq {
		t.Error("paper order starts with Freq")
	}
}
