package canon

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// permute returns g with nodes renamed by the permutation perm.
func permute(g *Graph, perm []int) *Graph {
	out := &Graph{Labels: make([]string, len(g.Labels))}
	for i, l := range g.Labels {
		out.Labels[perm[i]] = l
	}
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, Edge{U: perm[e.U], V: perm[e.V], Label: e.Label})
	}
	return out
}

func randPerm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// pathGraph builds P0-e-P1-e-...-Pn with alternating labels.
func pathGraph(labels []string, edgeLabels []string) *Graph {
	g := &Graph{Labels: labels}
	for i := 0; i < len(labels)-1; i++ {
		g.Edges = append(g.Edges, Edge{U: i, V: i + 1, Label: edgeLabels[i]})
	}
	return g
}

func TestCanonicalSimpleCases(t *testing.T) {
	empty := &Graph{}
	if Canonical(empty) != "empty" {
		t.Error("empty canonical wrong")
	}
	single := &Graph{Labels: []string{"Protein"}}
	if got := Canonical(single); got != "Protein;" {
		t.Errorf("single = %q", got)
	}
	// Two disconnected nodes, order-independent.
	a := &Graph{Labels: []string{"A", "B"}}
	b := &Graph{Labels: []string{"B", "A"}}
	if Canonical(a) != Canonical(b) {
		t.Error("disconnected two-node graphs differ")
	}
}

func TestPathDirectionInvariance(t *testing.T) {
	// Protein-encodes-DNA vs DNA-encodes-Protein.
	p1 := pathGraph([]string{"Protein", "DNA"}, []string{"encodes"})
	p2 := pathGraph([]string{"DNA", "Protein"}, []string{"encodes"})
	if Canonical(p1) != Canonical(p2) {
		t.Error("reversed edge changes canonical form")
	}
	// P-ue-U-uc-D forwards and backwards.
	f := pathGraph([]string{"Protein", "Unigene", "DNA"}, []string{"uni_encodes", "uni_contains"})
	r := pathGraph([]string{"DNA", "Unigene", "Protein"}, []string{"uni_contains", "uni_encodes"})
	if Canonical(f) != Canonical(r) {
		t.Error("reversed path changes canonical form")
	}
}

func TestNonIsomorphicDistinguished(t *testing.T) {
	// Same node multiset, different wiring: P-D plus isolated U vs P-U-D.
	g1 := &Graph{Labels: []string{"P", "U", "D"},
		Edges: []Edge{{U: 0, V: 2, Label: "e"}}}
	g2 := &Graph{Labels: []string{"P", "U", "D"},
		Edges: []Edge{{U: 0, V: 1, Label: "e"}, {U: 1, V: 2, Label: "e"}}}
	if Canonical(g1) == Canonical(g2) {
		t.Error("different graphs share canonical form")
	}
	// Same shape, different edge label.
	g3 := &Graph{Labels: []string{"P", "D"}, Edges: []Edge{{U: 0, V: 1, Label: "x"}}}
	g4 := &Graph{Labels: []string{"P", "D"}, Edges: []Edge{{U: 0, V: 1, Label: "y"}}}
	if Canonical(g3) == Canonical(g4) {
		t.Error("edge labels ignored")
	}
	// Same shape, different node label.
	g5 := &Graph{Labels: []string{"P", "D"}, Edges: []Edge{{U: 0, V: 1, Label: "x"}}}
	g6 := &Graph{Labels: []string{"P", "U"}, Edges: []Edge{{U: 0, V: 1, Label: "x"}}}
	if Canonical(g5) == Canonical(g6) {
		t.Error("node labels ignored")
	}
}

func TestMultiEdgeDistinguished(t *testing.T) {
	// One edge vs a double edge between the same labeled endpoints.
	g1 := &Graph{Labels: []string{"P", "I"}, Edges: []Edge{{U: 0, V: 1, Label: "i"}}}
	g2 := &Graph{Labels: []string{"P", "I"},
		Edges: []Edge{{U: 0, V: 1, Label: "i"}, {U: 0, V: 1, Label: "i"}}}
	if Canonical(g1) == Canonical(g2) {
		t.Error("multi-edge not distinguished")
	}
}

func TestT3VsT4(t *testing.T) {
	// The paper's T3 and T4 (Figure 5): both are the union of a PUD
	// path and a PUPD path, differing only in whether the Unigene is
	// shared. They must canonicalize differently.
	// T3: shared unigene.
	t3 := &Graph{
		Labels: []string{"Protein", "Unigene", "DNA", "Protein"},
		Edges: []Edge{
			{U: 0, V: 1, Label: "uni_encodes"},
			{U: 1, V: 2, Label: "uni_contains"},
			{U: 1, V: 3, Label: "uni_encodes"},
			{U: 3, V: 2, Label: "encodes"},
		},
	}
	// T4: two disjoint unigenes.
	t4 := &Graph{
		Labels: []string{"Protein", "Unigene", "DNA", "Protein", "Unigene"},
		Edges: []Edge{
			{U: 0, V: 1, Label: "uni_encodes"},
			{U: 1, V: 2, Label: "uni_contains"},
			{U: 0, V: 4, Label: "uni_encodes"},
			{U: 4, V: 3, Label: "uni_encodes"},
			{U: 3, V: 2, Label: "encodes"},
		},
	}
	if Canonical(t3) == Canonical(t4) {
		t.Error("T3 and T4 share canonical form")
	}
}

func TestPermutationInvarianceQuick(t *testing.T) {
	nodeLabels := []string{"P", "D", "U", "I"}
	edgeLabels := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		g := &Graph{Labels: make([]string, n)}
		for i := range g.Labels {
			g.Labels[i] = nodeLabels[rng.Intn(len(nodeLabels))]
		}
		m := rng.Intn(2 * n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.Edges = append(g.Edges, Edge{U: u, V: v, Label: edgeLabels[rng.Intn(len(edgeLabels))]})
		}
		h := permute(g, randPerm(rng, n))
		return Canonical(g) == Canonical(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIsoQuickNegatives(t *testing.T) {
	// Adding one edge to a graph must break isomorphism (edge counts differ).
	g := pathGraph([]string{"P", "U", "D"}, []string{"a", "b"})
	h := pathGraph([]string{"P", "U", "D"}, []string{"a", "b"})
	h.Edges = append(h.Edges, Edge{U: 0, V: 2, Label: "c"})
	if Iso(g, h) {
		t.Error("Iso ignored edge count")
	}
	if !Iso(g, permute(g, []int{2, 0, 1})) {
		t.Error("Iso rejected a permutation")
	}
	if Iso(g, pathGraph([]string{"P", "U"}, []string{"a"})) {
		t.Error("Iso ignored node count")
	}
}

func TestRegularGraphNeedsBranching(t *testing.T) {
	// A 6-cycle with all-same labels: colour refinement alone cannot
	// make the partition discrete, so this exercises the branching path.
	cycle := func(order []int) *Graph {
		g := &Graph{Labels: []string{"X", "X", "X", "X", "X", "X"}}
		for i := 0; i < 6; i++ {
			g.Edges = append(g.Edges, Edge{U: order[i], V: order[(i+1)%6], Label: "e"})
		}
		return g
	}
	c1 := cycle([]int{0, 1, 2, 3, 4, 5})
	c2 := cycle([]int{3, 1, 4, 0, 5, 2})
	if Canonical(c1) != Canonical(c2) {
		t.Error("relabeled 6-cycles differ")
	}
	// Two triangles vs a 6-cycle: same degree sequence, not isomorphic.
	twoTri := &Graph{Labels: []string{"X", "X", "X", "X", "X", "X"}}
	for _, tri := range [][3]int{{0, 1, 2}, {3, 4, 5}} {
		twoTri.Edges = append(twoTri.Edges,
			Edge{U: tri[0], V: tri[1], Label: "e"},
			Edge{U: tri[1], V: tri[2], Label: "e"},
			Edge{U: tri[2], V: tri[0], Label: "e"})
	}
	if Canonical(c1) == Canonical(twoTri) {
		t.Error("6-cycle and 2x triangle share canonical form")
	}
}

func TestIsPath(t *testing.T) {
	cases := []struct {
		g    *Graph
		want bool
	}{
		{&Graph{}, false},
		{&Graph{Labels: []string{"P"}}, true},
		{pathGraph([]string{"P", "D"}, []string{"e"}), true},
		{pathGraph([]string{"P", "U", "D"}, []string{"a", "b"}), true},
		// Triangle: not a path.
		{&Graph{Labels: []string{"A", "B", "C"}, Edges: []Edge{
			{U: 0, V: 1, Label: "e"}, {U: 1, V: 2, Label: "e"}, {U: 2, V: 0, Label: "e"}}}, false},
		// Star with 3 leaves: not a path.
		{&Graph{Labels: []string{"A", "B", "C", "D"}, Edges: []Edge{
			{U: 0, V: 1, Label: "e"}, {U: 0, V: 2, Label: "e"}, {U: 0, V: 3, Label: "e"}}}, false},
		// Disconnected: edge + isolated node has n-1 edges? No: 2 nodes
		// 1 edge + 1 isolated = 3 nodes, 1 edge != n-1, rejected.
		{&Graph{Labels: []string{"A", "B", "C"}, Edges: []Edge{{U: 0, V: 1, Label: "e"}}}, false},
		// Two disjoint edges + one more to make edge count n-1 but disconnected:
		// nodes {A,B,C,D}, edges A-B, A-B, C-D: degree check rejects.
		{&Graph{Labels: []string{"A", "B", "C", "D"}, Edges: []Edge{
			{U: 0, V: 1, Label: "e"}, {U: 0, V: 1, Label: "e"}, {U: 2, V: 3, Label: "e"}}}, false},
	}
	for i, c := range cases {
		if got := c.g.IsPath(); got != c.want {
			t.Errorf("case %d: IsPath = %v, want %v", i, got, c.want)
		}
	}
}

func TestBuilderUnionSemantics(t *testing.T) {
	// Union l2 (78-103-215) and l6 (78-103-34-215): shared node 103
	// must appear once; shared edge 25 must appear once.
	b := NewBuilder()
	// l2
	b.Node(78, "Protein")
	b.Node(103, "Unigene")
	b.Node(215, "DNA")
	b.Edge(25, 78, 103, "uni_encodes")
	b.Edge(62, 103, 215, "uni_contains")
	// l6
	b.Node(78, "Protein")
	b.Node(103, "Unigene")
	b.Node(34, "Protein")
	b.Node(215, "DNA")
	b.Edge(25, 78, 103, "uni_encodes")
	b.Edge(14, 103, 34, "uni_encodes")
	b.Edge(44, 34, 215, "encodes")
	g := b.Graph()
	if g.NumNodes() != 4 {
		t.Errorf("union nodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Errorf("union edges = %d, want 4", g.NumEdges())
	}
	if b.NumNodes() != 4 || b.NumEdges() != 4 {
		t.Error("builder counters wrong")
	}
	// The union must equal T3 from the T3-vs-T4 test.
	t3 := &Graph{
		Labels: []string{"Protein", "Unigene", "DNA", "Protein"},
		Edges: []Edge{
			{U: 0, V: 1, Label: "uni_encodes"},
			{U: 1, V: 2, Label: "uni_contains"},
			{U: 1, V: 3, Label: "uni_encodes"},
			{U: 3, V: 2, Label: "encodes"},
		},
	}
	if !Iso(g, t3) {
		t.Errorf("union of l2 and l6 is not T3:\n got %q\nwant %q", Canonical(g), Canonical(t3))
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("relabel", func() {
		b := NewBuilder()
		b.Node(1, "A")
		b.Node(1, "B")
	})
	mustPanic("dangling edge", func() {
		b := NewBuilder()
		b.Node(1, "A")
		b.Edge(9, 1, 2, "e")
	})
	mustPanic("dangling edge u", func() {
		b := NewBuilder()
		b.Node(2, "A")
		b.Edge(9, 1, 2, "e")
	})
}

func TestBuilderSnapshotIndependence(t *testing.T) {
	b := NewBuilder()
	b.Node(1, "A")
	g1 := b.Graph()
	b.Node(2, "B")
	b.Edge(5, 1, 2, "e")
	g2 := b.Graph()
	if g1.NumNodes() != 1 || g2.NumNodes() != 2 {
		t.Error("Graph snapshot shares state with builder")
	}
}

func BenchmarkCanonicalPath3(b *testing.B) {
	g := pathGraph([]string{"Protein", "Unigene", "Protein", "DNA"},
		[]string{"uni_encodes", "uni_encodes", "encodes"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Canonical(g)
	}
}

func BenchmarkCanonicalDense8(b *testing.B) {
	g := &Graph{Labels: []string{"X", "X", "X", "X", "X", "X", "X", "X"}}
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if (i+j)%2 == 0 {
				g.Edges = append(g.Edges, Edge{U: i, V: j, Label: "e"})
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Canonical(g)
	}
}
