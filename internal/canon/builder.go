package canon

import "fmt"

// Builder incrementally assembles a labeled graph from externally-keyed
// nodes and edges. It is used to union instance paths into a result
// graph (Definition 2): nodes are keyed by entity ID and edges by the
// graph-global relationship ID, so unioning two paths that share an
// intermediate entity merges that entity into a single node — exactly
// the distinction between topologies T3 and T4 in the paper's running
// example.
type Builder struct {
	idx      map[int64]int
	labels   []string
	edgeSeen map[int64]bool
	edges    []Edge
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		idx:      make(map[int64]int),
		edgeSeen: make(map[int64]bool),
	}
}

// Node registers (or finds) the node with the external key, returning
// its dense index. Registering an existing key with a different label
// panics: entity types are immutable.
func (b *Builder) Node(key int64, label string) int {
	if i, ok := b.idx[key]; ok {
		if b.labels[i] != label {
			panic(fmt.Sprintf("canon: node %d relabeled %q -> %q", key, b.labels[i], label))
		}
		return i
	}
	i := len(b.labels)
	b.idx[key] = i
	b.labels = append(b.labels, label)
	return i
}

// Edge registers an edge by its external key; duplicate keys are
// ignored (the same relationship appearing on two unioned paths is one
// edge of the result graph).
func (b *Builder) Edge(edgeKey int64, u, v int64, label string) {
	if b.edgeSeen[edgeKey] {
		return
	}
	ui, ok := b.idx[u]
	if !ok {
		panic(fmt.Sprintf("canon: edge %d references unregistered node %d", edgeKey, u))
	}
	vi, ok := b.idx[v]
	if !ok {
		panic(fmt.Sprintf("canon: edge %d references unregistered node %d", edgeKey, v))
	}
	b.edgeSeen[edgeKey] = true
	b.edges = append(b.edges, Edge{U: ui, V: vi, Label: label})
}

// NumNodes returns the number of registered nodes so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// NumEdges returns the number of registered edges so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Graph returns the assembled graph. The builder may continue to be
// used afterwards; the returned graph snapshots the current state.
func (b *Builder) Graph() *Graph {
	return &Graph{
		Labels: append([]string(nil), b.labels...),
		Edges:  append([]Edge(nil), b.edges...),
	}
}
