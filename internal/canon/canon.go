// Package canon computes canonical forms of small labeled multigraphs.
//
// Topology identity in the paper is "equivalence under labeled-graph
// isomorphism" (Section 2.1): two result graphs denote the same topology
// exactly when there is a type-preserving bijection between them. canon
// provides that identity as a canonical string: Canonical(g) ==
// Canonical(h) iff g and h are isomorphic.
//
// The algorithm is individualization–refinement: iterated colour
// refinement (initial colour = node label, refined by the multiset of
// (edge label, neighbour colour) pairs), then exhaustive branching over
// the first non-singleton cell, taking the lexicographically least
// adjacency encoding over all discrete colourings explored. Topology
// graphs have O(l) nodes (l = path-length bound, 3 or 4 in the paper),
// so the worst-case exponential search is never a concern in practice;
// property-based tests verify permutation invariance.
package canon

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is an undirected labeled edge between node indices U and V.
type Edge struct {
	U, V  int
	Label string
}

// Graph is a small labeled multigraph. Node i carries label Labels[i].
type Graph struct {
	Labels []string
	Edges  []Edge
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.Labels) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Degrees returns per-node degrees (loops count twice).
func (g *Graph) Degrees() []int {
	d := make([]int, len(g.Labels))
	for _, e := range g.Edges {
		d[e.U]++
		d[e.V]++
	}
	return d
}

// IsPath reports whether g is a simple path: connected, acyclic, with
// exactly two degree-1 endpoints (or a single node). Used to decide
// which frequent topologies are prunable "simple" topologies
// (Section 4.2.2).
func (g *Graph) IsPath() bool {
	n := len(g.Labels)
	if n == 0 {
		return false
	}
	if n == 1 {
		return len(g.Edges) == 0
	}
	if len(g.Edges) != n-1 {
		return false
	}
	deg := g.Degrees()
	ones := 0
	for _, d := range deg {
		switch d {
		case 1:
			ones++
		case 2:
		default:
			return false
		}
	}
	return ones == 2 && g.connected()
}

func (g *Graph) connected() bool {
	n := len(g.Labels)
	if n == 0 {
		return true
	}
	adj := make([][]int, n)
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	cnt := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				cnt++
				stack = append(stack, w)
			}
		}
	}
	return cnt == n
}

// Canonical returns a string that identifies g up to labeled-graph
// isomorphism: two graphs map to the same string iff they are
// isomorphic.
func Canonical(g *Graph) string {
	n := len(g.Labels)
	if n == 0 {
		return "empty"
	}
	s := newSearch(g)
	s.run()
	return s.best
}

// Iso reports whether two labeled graphs are isomorphic.
func Iso(a, b *Graph) bool {
	if len(a.Labels) != len(b.Labels) || len(a.Edges) != len(b.Edges) {
		return false
	}
	return Canonical(a) == Canonical(b)
}

type neighbor struct {
	to    int
	label string
}

type search struct {
	g    *Graph
	n    int
	adj  [][]neighbor
	best string
}

func newSearch(g *Graph) *search {
	n := len(g.Labels)
	s := &search{g: g, n: n, adj: make([][]neighbor, n)}
	for _, e := range g.Edges {
		s.adj[e.U] = append(s.adj[e.U], neighbor{to: e.V, label: e.Label})
		if e.U != e.V {
			s.adj[e.V] = append(s.adj[e.V], neighbor{to: e.U, label: e.Label})
		}
	}
	return s
}

func (s *search) run() {
	colors := make([]int, s.n)
	// Initial colouring by node label, ranks assigned in sorted label
	// order so the colouring is permutation-invariant.
	labels := append([]string(nil), s.g.Labels...)
	sort.Strings(labels)
	rank := map[string]int{}
	for _, l := range labels {
		if _, ok := rank[l]; !ok {
			rank[l] = len(rank)
		}
	}
	for i, l := range s.g.Labels {
		colors[i] = rank[l]
	}
	s.branch(colors)
}

// refine runs colour refinement to a fixpoint. New colour ranks are
// assigned by sorting (old colour, neighbourhood signature), which keeps
// the refinement permutation-invariant.
func (s *search) refine(colors []int) {
	for {
		type key struct {
			node int
			sig  string
		}
		keys := make([]key, s.n)
		for v := 0; v < s.n; v++ {
			parts := make([]string, 0, len(s.adj[v]))
			for _, nb := range s.adj[v] {
				parts = append(parts, fmt.Sprintf("%s~%06d", nb.label, colors[nb.to]))
			}
			sort.Strings(parts)
			keys[v] = key{node: v, sig: fmt.Sprintf("%06d|%s", colors[v], strings.Join(parts, ","))}
		}
		sorted := append([]key(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].sig < sorted[j].sig })
		newColors := make([]int, s.n)
		c := -1
		prev := ""
		for _, k := range sorted {
			if k.sig != prev {
				c++
				prev = k.sig
			}
			newColors[k.node] = c
		}
		same := true
		// The partition is stable when the number of colours stops
		// growing (refinement only ever splits cells).
		if countColors(newColors) != countColors(colors) {
			same = false
		}
		copy(colors, newColors)
		if same {
			return
		}
	}
}

func countColors(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

func (s *search) branch(colors []int) {
	work := append([]int(nil), colors...)
	s.refine(work)
	// Find the first non-singleton cell (smallest colour).
	cells := map[int][]int{}
	for v, c := range work {
		cells[c] = append(cells[c], v)
	}
	target := -1
	for c := 0; c < s.n; c++ {
		if len(cells[c]) > 1 {
			target = c
			break
		}
	}
	if target == -1 {
		enc := s.encode(work)
		if s.best == "" || enc < s.best {
			s.best = enc
		}
		return
	}
	for _, v := range cells[target] {
		child := make([]int, s.n)
		// Individualize v: give it a colour just below its cell, shift
		// everything at or above the cell up by one.
		for w, c := range work {
			if c >= target {
				child[w] = c + 1
			} else {
				child[w] = c
			}
		}
		child[v] = target
		s.branch(child)
	}
}

// encode renders the graph under the discrete colouring (colours form a
// permutation) as "labels;edges" with edges sorted.
func (s *search) encode(colors []int) string {
	pos := make([]int, s.n) // node -> canonical position
	copy(pos, colors)
	nodeAt := make([]int, s.n)
	for v, p := range pos {
		nodeAt[p] = v
	}
	var b strings.Builder
	for p := 0; p < s.n; p++ {
		if p > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.g.Labels[nodeAt[p]])
	}
	b.WriteByte(';')
	edges := make([]string, 0, len(s.g.Edges))
	for _, e := range s.g.Edges {
		u, v := pos[e.U], pos[e.V]
		if u > v {
			u, v = v, u
		}
		edges = append(edges, fmt.Sprintf("%d-%d:%s", u, v, e.Label))
	}
	sort.Strings(edges)
	b.WriteString(strings.Join(edges, ","))
	return b.String()
}
