package biozon

import (
	"fmt"
	"math/rand"

	"toposearch/internal/relstore"
)

// Entity-set ID namespaces keep object IDs globally unique, matching
// the paper's assumption that "the IDs of different biological objects
// are not overlapping".
const (
	BaseProtein     = 1_000_000
	BaseDNA         = 2_000_000
	BaseUnigene     = 3_000_000
	BaseInteraction = 4_000_000
	BaseFamily      = 5_000_000
	BasePathway     = 6_000_000
	BaseStructure   = 7_000_000
)

// Keyword tokens planted into desc columns with fixed selectivities —
// the paper's experiments use predicates of 15%, 50% and 85%
// selectivity (Table 2).
const (
	TokenSelective   = "kwsel15"
	TokenMedium      = "kwsel50"
	TokenUnselective = "kwsel85"
)

// GenConfig parameterizes the synthetic Biozon-like database.
type GenConfig struct {
	Seed int64

	// Entity counts.
	Proteins, DNAs, Unigenes, Interactions int
	Families, Pathways, Structures         int

	// Relationship counts.
	Encodes, UniEncodes, UniContains int
	PInteract, DInteract             int
	Belongs, Manifest, PathElements  int

	// Zipf exponent for degree skew (>1); the topology-frequency
	// distribution the paper reports (Figure 11) is approximately
	// Zipfian, which this skew induces.
	Skew float64
	// MaxDegree truncates hub degrees so that bounded-length path
	// enumeration stays tractable (hubs otherwise make P-D-P style
	// path counts quadratic in degree).
	MaxDegree int
	// SelfRegulating plants that many copies of the biologically
	// significant motif of Figure 16: two proteins encoded by the same
	// DNA that also interact with each other.
	SelfRegulating int
	// Triangles plants that many encodes+uni_encodes+uni_contains
	// triangles (a protein and a DNA related by both the direct
	// encodes edge and a shared Unigene cluster), the structure behind
	// the pruning exceptions.
	Triangles int
}

// DefaultConfig returns a config whose entity and relationship counts
// scale linearly with the given factor; scale 1 is a small test
// database (~1.3k entities), scale 10 a bench-sized one.
func DefaultConfig(scale int) GenConfig {
	if scale < 1 {
		scale = 1
	}
	return GenConfig{
		Seed:           42,
		Proteins:       300 * scale,
		DNAs:           400 * scale,
		Unigenes:       200 * scale,
		Interactions:   150 * scale,
		Families:       60 * scale,
		Pathways:       25 * scale,
		Structures:     80 * scale,
		Encodes:        350 * scale,
		UniEncodes:     400 * scale,
		UniContains:    380 * scale,
		PInteract:      300 * scale,
		DInteract:      160 * scale,
		Belongs:        320 * scale,
		Manifest:       120 * scale,
		PathElements:   90 * scale,
		Skew:           1.4,
		MaxDegree:      40,
		SelfRegulating: 6 * scale,
		Triangles:      10 * scale,
	}
}

// zipfPicker draws entity indices 0..n-1 with Zipf-distributed
// popularity over a per-relationship random permutation (so "hub"
// entities differ between relationship sets), while capping how often
// any single index is drawn.
type zipfPicker struct {
	z      *rand.Zipf
	perm   []int
	counts []int
	max    int
	rng    *rand.Rand
	n      int
}

func newZipfPicker(rng *rand.Rand, n int, skew float64, maxDegree int) *zipfPicker {
	if n < 1 {
		n = 1
	}
	return &zipfPicker{
		z:      rand.NewZipf(rng, skew, 1, uint64(n-1)),
		perm:   rng.Perm(n),
		counts: make([]int, n),
		max:    maxDegree,
		rng:    rng,
		n:      n,
	}
}

func (p *zipfPicker) pick() int {
	for tries := 0; tries < 32; tries++ {
		i := p.perm[int(p.z.Uint64())]
		if p.max <= 0 || p.counts[i] < p.max {
			p.counts[i]++
			return i
		}
	}
	// Hubs saturated: fall back to uniform.
	i := p.rng.Intn(p.n)
	p.counts[i]++
	return i
}

type edgeLoader struct {
	t      *relstore.Table
	seen   map[[2]int64]bool
	nextID int64
}

func newEdgeLoader(t *relstore.Table) *edgeLoader {
	return &edgeLoader{t: t, seen: map[[2]int64]bool{}, nextID: 1}
}

// add inserts the (a,b) relationship unless it already exists.
func (l *edgeLoader) add(a, b int64) bool {
	if l.seen[[2]int64{a, b}] {
		return false
	}
	l.seen[[2]int64{a, b}] = true
	l.t.MustInsert(relstore.IntVal(l.nextID), relstore.IntVal(a), relstore.IntVal(b))
	l.nextID++
	return true
}

func descFor(rng *rand.Rand, kind string, i int) string {
	d := fmt.Sprintf("%s %d", kind, i)
	if rng.Float64() < 0.15 {
		d += " " + TokenSelective
	}
	if rng.Float64() < 0.50 {
		d += " " + TokenMedium
	}
	if rng.Float64() < 0.85 {
		d += " " + TokenUnselective
	}
	if rng.Float64() < 0.30 {
		d += " enzyme"
	}
	return d
}

// Generate builds a synthetic Biozon-like database. The same config
// always yields the same database.
func Generate(cfg GenConfig) *relstore.DB {
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := EmptyDB()

	loadEntities := func(table string, base, n int, kind string, withType bool) {
		t := db.MustTable(table)
		for i := 0; i < n; i++ {
			id := relstore.IntVal(int64(base + i))
			if withType {
				dt := "EST"
				switch {
				case rng.Float64() < 0.5:
					dt = "mRNA"
				case rng.Float64() < 0.5:
					dt = "genomic"
				}
				t.MustInsert(id, relstore.StrVal(dt), relstore.StrVal(descFor(rng, kind, i)))
				continue
			}
			t.MustInsert(id, relstore.StrVal(descFor(rng, kind, i)))
		}
	}
	loadEntities(TabProtein, BaseProtein, cfg.Proteins, "protein", false)
	loadEntities(TabDNA, BaseDNA, cfg.DNAs, "dna", true)
	loadEntities(TabUnigene, BaseUnigene, cfg.Unigenes, "unigene", false)
	loadEntities(TabInteraction, BaseInteraction, cfg.Interactions, "interaction", false)
	loadEntities(TabFamily, BaseFamily, cfg.Families, "family", false)
	loadEntities(TabPathway, BasePathway, cfg.Pathways, "pathway", false)
	loadEntities(TabStructure, BaseStructure, cfg.Structures, "structure", false)

	type relSpec struct {
		table     string
		count     int
		aBase, aN int
		bBase, bN int
	}
	specs := []relSpec{
		{TabEncodes, cfg.Encodes, BaseProtein, cfg.Proteins, BaseDNA, cfg.DNAs},
		{TabUniEncodes, cfg.UniEncodes, BaseUnigene, cfg.Unigenes, BaseProtein, cfg.Proteins},
		{TabUniContains, cfg.UniContains, BaseUnigene, cfg.Unigenes, BaseDNA, cfg.DNAs},
		{TabPInteract, cfg.PInteract, BaseProtein, cfg.Proteins, BaseInteraction, cfg.Interactions},
		{TabDInteract, cfg.DInteract, BaseDNA, cfg.DNAs, BaseInteraction, cfg.Interactions},
		{TabBelongs, cfg.Belongs, BaseProtein, cfg.Proteins, BaseFamily, cfg.Families},
		{TabManifest, cfg.Manifest, BaseStructure, cfg.Structures, BaseProtein, cfg.Proteins},
		{TabPathElement, cfg.PathElements, BaseFamily, cfg.Families, BasePathway, cfg.Pathways},
	}
	loaders := map[string]*edgeLoader{}
	for _, sp := range specs {
		l := newEdgeLoader(db.MustTable(sp.table))
		loaders[sp.table] = l
		if sp.aN == 0 || sp.bN == 0 {
			continue
		}
		pa := newZipfPicker(rng, sp.aN, cfg.Skew, cfg.MaxDegree)
		pb := newZipfPicker(rng, sp.bN, cfg.Skew, cfg.MaxDegree)
		for e := 0; e < sp.count; e++ {
			a := int64(sp.aBase + pa.pick())
			b := int64(sp.bBase + pb.pick())
			l.add(a, b)
		}
	}

	// Plant Figure 16 motifs: encodes(p1,d), encodes(p2,d),
	// interaction(p1,i), interaction(p2,i).
	if cfg.Proteins > 1 && cfg.DNAs > 0 && cfg.Interactions > 0 {
		for m := 0; m < cfg.SelfRegulating; m++ {
			p1 := int64(BaseProtein + rng.Intn(cfg.Proteins))
			p2 := int64(BaseProtein + rng.Intn(cfg.Proteins))
			if p1 == p2 {
				continue
			}
			d := int64(BaseDNA + rng.Intn(cfg.DNAs))
			i := int64(BaseInteraction + rng.Intn(cfg.Interactions))
			loaders[TabEncodes].add(p1, d)
			loaders[TabEncodes].add(p2, d)
			loaders[TabPInteract].add(p1, i)
			loaders[TabPInteract].add(p2, i)
		}
	}

	// Plant pruning-exception triangles: encodes(p,d) + uni_encodes(u,p)
	// + uni_contains(u,d).
	if cfg.Proteins > 0 && cfg.DNAs > 0 && cfg.Unigenes > 0 {
		for m := 0; m < cfg.Triangles; m++ {
			p := int64(BaseProtein + rng.Intn(cfg.Proteins))
			d := int64(BaseDNA + rng.Intn(cfg.DNAs))
			u := int64(BaseUnigene + rng.Intn(cfg.Unigenes))
			loaders[TabEncodes].add(p, d)
			loaders[TabUniEncodes].add(u, p)
			loaders[TabUniContains].add(u, d)
		}
	}
	return db
}

// SelectivityPred returns the keyword predicate over the table's desc
// column with approximately the named selectivity ("selective" = 15%,
// "medium" = 50%, "unselective" = 85%).
func SelectivityPred(schema *relstore.Schema, level string) (relstore.Pred, error) {
	var tok string
	switch level {
	case "selective":
		tok = TokenSelective
	case "medium":
		tok = TokenMedium
	case "unselective":
		tok = TokenUnselective
	default:
		return nil, fmt.Errorf("biozon: unknown selectivity level %q", level)
	}
	return relstore.Contains(schema, "desc", tok)
}
