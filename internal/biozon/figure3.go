package biozon

import "toposearch/internal/relstore"

// Figure 3 entity IDs (exactly as printed in the paper).
const (
	P32 = 32 // Ubiquitin-conjugating enzyme UBCi
	P78 = 78 // Ubiquitin-conjugating enzyme variant MMS2
	P34 = 34 // vitamin D inducible protein [Homo sapiens]
	P44 = 44 // ubiquitin-conjugating enzyme E2B (homolog)

	U103 = 103 // ubiquitin-conjugating enzyme E2
	U150 = 150 // hypothetical protein FLJ13855
	U188 = 188 // ubiquitin-conjugating enzyme E2S
	U194 = 194 // ubiquitin-conjugating enzyme E2S

	D214 = 214 // Oryctolagus cuniculus ubiquitin-conjugating enzyme UBCi
	D215 = 215 // Homo sapiens MMS2 (MMS2) mRNA, complete cds
	D742 = 742 // Human ubiquitin carrier protein (E2-EPF) mRNA, complete cds
)

// Figure3DB builds the exact example database of Figure 3 / Figure 6:
// four proteins, four unigene clusters, three DNA sequences, and the
// eleven relationships that make the query Q1 = {(Protein,
// desc.ct('enzyme')), (DNA, type='mRNA')} return the topologies T1–T4 of
// Figure 5. It is the ground truth for the correctness tests of the
// topology algebra.
func Figure3DB() *relstore.DB {
	db := EmptyDB()

	p := db.MustTable(TabProtein)
	p.MustInsert(relstore.IntVal(P32), relstore.StrVal("Ubiquitin-conjugating enzyme UBCi"))
	p.MustInsert(relstore.IntVal(P78), relstore.StrVal("Ubiquitin-conjugating enzyme variant MMS2"))
	p.MustInsert(relstore.IntVal(P34), relstore.StrVal("vitamin D inducible protein Homo sapiens"))
	p.MustInsert(relstore.IntVal(P44), relstore.StrVal("ubiquitin-conjugating enzyme E2B homolog"))

	u := db.MustTable(TabUnigene)
	u.MustInsert(relstore.IntVal(U103), relstore.StrVal("ubiquitin-conjugating enzyme E2"))
	u.MustInsert(relstore.IntVal(U150), relstore.StrVal("hypothetical protein FLJ13855"))
	u.MustInsert(relstore.IntVal(U188), relstore.StrVal("ubiquitin-conjugating enzyme E2S"))
	u.MustInsert(relstore.IntVal(U194), relstore.StrVal("ubiquitin-conjugating enzyme E2S"))

	d := db.MustTable(TabDNA)
	d.MustInsert(relstore.IntVal(D214), relstore.StrVal("mRNA"),
		relstore.StrVal("Oryctolagus cuniculus ubiquitin-conjugating enzyme UBCi"))
	d.MustInsert(relstore.IntVal(D215), relstore.StrVal("mRNA"),
		relstore.StrVal("Homo sapiens MMS2 mRNA complete cds"))
	d.MustInsert(relstore.IntVal(D742), relstore.StrVal("mRNA"),
		relstore.StrVal("Human ubiquitin carrier protein E2-EPF mRNA complete cds"))

	// Relationships, with the tuple IDs printed in Figure 4/6.
	enc := db.MustTable(TabEncodes)
	enc.MustInsert(relstore.IntVal(57), relstore.IntVal(P32), relstore.IntVal(D214))
	enc.MustInsert(relstore.IntVal(44), relstore.IntVal(P34), relstore.IntVal(D215))

	ue := db.MustTable(TabUniEncodes)
	ue.MustInsert(relstore.IntVal(25), relstore.IntVal(U103), relstore.IntVal(P78))
	ue.MustInsert(relstore.IntVal(14), relstore.IntVal(U103), relstore.IntVal(P34))
	ue.MustInsert(relstore.IntVal(31), relstore.IntVal(U150), relstore.IntVal(P78))
	ue.MustInsert(relstore.IntVal(42), relstore.IntVal(U188), relstore.IntVal(P44))
	ue.MustInsert(relstore.IntVal(11), relstore.IntVal(U194), relstore.IntVal(P44))

	uc := db.MustTable(TabUniContains)
	uc.MustInsert(relstore.IntVal(62), relstore.IntVal(U103), relstore.IntVal(D215))
	uc.MustInsert(relstore.IntVal(93), relstore.IntVal(U150), relstore.IntVal(D215))
	uc.MustInsert(relstore.IntVal(121), relstore.IntVal(U188), relstore.IntVal(D742))
	uc.MustInsert(relstore.IntVal(37), relstore.IntVal(U194), relstore.IntVal(D742))

	return db
}
