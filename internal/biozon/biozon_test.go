package biozon

import (
	"math"
	"testing"

	"toposearch/internal/graph"
	"toposearch/internal/relstore"
)

func TestSchemaGraphTenPaths(t *testing.T) {
	sg := SchemaGraph()
	paths, err := sg.EnumeratePaths(Protein, DNA, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 10 {
		t.Errorf("P-D schema paths (l<=3) = %d, want 10 (paper, introduction)", len(paths))
	}
}

func TestFigure3DBBuilds(t *testing.T) {
	db := Figure3DB()
	if got := db.MustTable(TabProtein).NumRows(); got != 4 {
		t.Errorf("proteins = %d, want 4", got)
	}
	if got := db.MustTable(TabDNA).NumRows(); got != 3 {
		t.Errorf("DNAs = %d, want 3", got)
	}
	if got := db.MustTable(TabUniEncodes).NumRows(); got != 5 {
		t.Errorf("uni_encodes rows = %d, want 5", got)
	}
	g, err := graph.Build(db, SchemaGraph())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumNodes() != 11 || g.NumEdges() != 11 {
		t.Errorf("graph = %d nodes/%d edges, want 11/11", g.NumNodes(), g.NumEdges())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(1)
	db1 := Generate(cfg)
	db2 := Generate(cfg)
	for _, name := range db1.TableNames() {
		t1, t2 := db1.MustTable(name), db2.MustTable(name)
		if t1.NumRows() != t2.NumRows() {
			t.Fatalf("table %s: %d vs %d rows", name, t1.NumRows(), t2.NumRows())
		}
		for i := int32(0); i < int32(t1.NumRows()); i++ {
			r1, r2 := t1.Row(i), t2.Row(i)
			for c := range r1 {
				if !r1[c].Equal(r2[c]) {
					t.Fatalf("table %s row %d col %d: %s vs %s", name, i, c, r1[c], r2[c])
				}
			}
		}
	}
}

func TestGenerateCountsAndIDs(t *testing.T) {
	cfg := DefaultConfig(1)
	db := Generate(cfg)
	if got := db.MustTable(TabProtein).NumRows(); got != cfg.Proteins {
		t.Errorf("proteins = %d, want %d", got, cfg.Proteins)
	}
	if got := db.MustTable(TabDNA).NumRows(); got != cfg.DNAs {
		t.Errorf("DNAs = %d, want %d", got, cfg.DNAs)
	}
	// Relationship tables are deduplicated, so counts are upper bounds
	// but must be positive and reference valid entities.
	enc := db.MustTable(TabEncodes)
	if enc.NumRows() == 0 || enc.NumRows() > cfg.Encodes+2*cfg.SelfRegulating+cfg.Triangles {
		t.Errorf("encodes rows = %d out of range", enc.NumRows())
	}
	prot := db.MustTable(TabProtein)
	dna := db.MustTable(TabDNA)
	enc.Scan(func(_ int32, r relstore.Row) bool {
		if !prot.HasPK(r[1].Int) {
			t.Errorf("encodes row references unknown protein %d", r[1].Int)
			return false
		}
		if !dna.HasPK(r[2].Int) {
			t.Errorf("encodes row references unknown DNA %d", r[2].Int)
			return false
		}
		return true
	})
	// The whole thing maps to a graph without errors (IDs unique).
	g, err := graph.Build(db, SchemaGraph())
	if err != nil {
		t.Fatalf("graph build: %v", err)
	}
	wantNodes := cfg.Proteins + cfg.DNAs + cfg.Unigenes + cfg.Interactions +
		cfg.Families + cfg.Pathways + cfg.Structures
	if g.NumNodes() != wantNodes {
		t.Errorf("nodes = %d, want %d", g.NumNodes(), wantNodes)
	}
}

func TestGenerateSelectivities(t *testing.T) {
	db := Generate(DefaultConfig(2))
	prot := db.MustTable(TabProtein)
	for _, c := range []struct {
		level string
		want  float64
	}{
		{"selective", 0.15},
		{"medium", 0.50},
		{"unselective", 0.85},
	} {
		p, err := SelectivityPred(prot.Schema, c.level)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		prot.Scan(func(_ int32, r relstore.Row) bool {
			if p.Eval(r) {
				n++
			}
			return true
		})
		got := float64(n) / float64(prot.NumRows())
		if math.Abs(got-c.want) > 0.06 {
			t.Errorf("%s selectivity = %.3f, want ~%.2f", c.level, got, c.want)
		}
		// The estimator agrees with the measurement.
		if est := p.Sel(prot); math.Abs(est-got) > 0.01 {
			t.Errorf("%s: estimated %.3f vs actual %.3f", c.level, est, got)
		}
	}
	if _, err := SelectivityPred(prot.Schema, "nope"); err == nil {
		t.Error("unknown level accepted")
	}
}

func TestGenerateDegreeCap(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MaxDegree = 10
	db := Generate(cfg)
	g, err := graph.Build(db, SchemaGraph())
	if err != nil {
		t.Fatal(err)
	}
	// Per-relationship degree is capped at MaxDegree (+ planted motifs);
	// total degree across 8 relationship sets stays bounded.
	pt, _ := g.NodeTypes.Lookup(Protein)
	maxDeg := 0
	for _, n := range g.NodesOfType(pt) {
		if d := g.Degree(n); d > maxDeg {
			maxDeg = d
		}
	}
	// A protein participates in 4 relationship sets (encodes,
	// uni_encodes, interaction, belongs, manifest = 5).
	if maxDeg > 5*cfg.MaxDegree+8 {
		t.Errorf("max protein degree = %d, exceeds cap", maxDeg)
	}
}

func TestGenerateZipfSkew(t *testing.T) {
	// Degree distribution should be skewed: the busiest decile of
	// unigenes carries disproportionately many uni_encodes edges.
	db := Generate(DefaultConfig(2))
	ue := db.MustTable(TabUniEncodes)
	deg := map[int64]int{}
	ue.Scan(func(_ int32, r relstore.Row) bool {
		deg[r[1].Int]++
		return true
	})
	var degs []int
	for _, d := range deg {
		degs = append(degs, d)
	}
	if len(degs) == 0 {
		t.Fatal("no uni_encodes edges")
	}
	maxd, sum := 0, 0
	for _, d := range degs {
		if d > maxd {
			maxd = d
		}
		sum += d
	}
	avg := float64(sum) / float64(len(degs))
	if float64(maxd) < 3*avg {
		t.Errorf("max degree %d vs avg %.1f: distribution not skewed", maxd, avg)
	}
}

func TestPlantedMotifs(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.SelfRegulating = 20
	db := Generate(cfg)
	g, err := graph.Build(db, SchemaGraph())
	if err != nil {
		t.Fatal(err)
	}
	// At least one Figure-16 motif must exist: proteins p1,p2 with a
	// common DNA (via encodes) and a common Interaction.
	enc := db.MustTable(TabEncodes)
	byDNA := map[int64][]int64{}
	enc.Scan(func(_ int32, r relstore.Row) bool {
		byDNA[r[2].Int] = append(byDNA[r[2].Int], r[1].Int)
		return true
	})
	pin := db.MustTable(TabPInteract)
	byProt := map[int64]map[int64]bool{}
	pin.Scan(func(_ int32, r relstore.Row) bool {
		if byProt[r[1].Int] == nil {
			byProt[r[1].Int] = map[int64]bool{}
		}
		byProt[r[1].Int][r[2].Int] = true
		return true
	})
	found := false
	for _, prots := range byDNA {
		for i := 0; i < len(prots) && !found; i++ {
			for j := i + 1; j < len(prots) && !found; j++ {
				for inter := range byProt[prots[i]] {
					if byProt[prots[j]][inter] {
						found = true
						break
					}
				}
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Error("no Figure-16 motif found despite planting 20")
	}
	_ = g
}
