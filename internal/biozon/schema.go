// Package biozon defines the Biozon-like workload used throughout the
// reproduction: the schema of Figure 1, the exact micro-instance of
// Figure 3 (used as the paper's running example), and a deterministic
// synthetic generator whose relationship degrees are Zipf-distributed so
// that the induced topology-frequency distribution matches the Zipfian
// shape the paper reports for the real Biozon database (Figure 11).
package biozon

import (
	"toposearch/internal/graph"
	"toposearch/internal/relstore"
)

// Entity set names (node types).
const (
	Protein     = "Protein"
	DNA         = "DNA"
	Unigene     = "Unigene"
	Interaction = "Interaction"
	Family      = "Family"
	Pathway     = "Pathway"
	Structure   = "Structure"
)

// Relationship set names (edge types). Both interaction tables carry the
// same edge label "interaction", as in Figure 1.
const (
	RelEncodes     = "encodes"
	RelUniEncodes  = "uni_encodes"
	RelUniContains = "uni_contains"
	RelInteraction = "interaction"
	RelBelongs     = "belongs"
	RelManifest    = "manifest"
	RelPathElement = "path_element"
)

// Table names.
const (
	TabProtein     = "Protein"
	TabDNA         = "DNA"
	TabUnigene     = "Unigene"
	TabInteraction = "Interaction"
	TabFamily      = "Family"
	TabPathway     = "Pathway"
	TabStructure   = "Structure"

	TabEncodes     = "Encodes"
	TabUniEncodes  = "Uni_encodes"
	TabUniContains = "Uni_contains"
	TabPInteract   = "Protein_interaction"
	TabDInteract   = "DNA_interaction"
	TabBelongs     = "Belongs"
	TabManifest    = "Manifest"
	TabPathElement = "Path_element"
)

// entityTables lists every entity table's schema: an integer primary key
// plus queryable string attributes.
func entitySchemas() []*relstore.Schema {
	return []*relstore.Schema{
		relstore.MustSchema(TabProtein, []relstore.Column{
			{Name: "ID", Type: relstore.TInt},
			{Name: "desc", Type: relstore.TString},
		}, "ID"),
		relstore.MustSchema(TabDNA, []relstore.Column{
			{Name: "ID", Type: relstore.TInt},
			{Name: "type", Type: relstore.TString},
			{Name: "desc", Type: relstore.TString},
		}, "ID"),
		relstore.MustSchema(TabUnigene, []relstore.Column{
			{Name: "ID", Type: relstore.TInt},
			{Name: "desc", Type: relstore.TString},
		}, "ID"),
		relstore.MustSchema(TabInteraction, []relstore.Column{
			{Name: "ID", Type: relstore.TInt},
			{Name: "desc", Type: relstore.TString},
		}, "ID"),
		relstore.MustSchema(TabFamily, []relstore.Column{
			{Name: "ID", Type: relstore.TInt},
			{Name: "desc", Type: relstore.TString},
		}, "ID"),
		relstore.MustSchema(TabPathway, []relstore.Column{
			{Name: "ID", Type: relstore.TInt},
			{Name: "desc", Type: relstore.TString},
		}, "ID"),
		relstore.MustSchema(TabStructure, []relstore.Column{
			{Name: "ID", Type: relstore.TInt},
			{Name: "desc", Type: relstore.TString},
		}, "ID"),
	}
}

// relSchema builds the schema for a binary relationship table with its
// own tuple ID and two endpoint columns.
func relSchema(name, aCol, bCol string) *relstore.Schema {
	return relstore.MustSchema(name, []relstore.Column{
		{Name: "ID", Type: relstore.TInt},
		{Name: aCol, Type: relstore.TInt},
		{Name: bCol, Type: relstore.TInt},
	}, "ID")
}

func relSchemas() []*relstore.Schema {
	return []*relstore.Schema{
		relSchema(TabEncodes, "PID", "DID"),
		relSchema(TabUniEncodes, "UID", "PID"),
		relSchema(TabUniContains, "UID", "DID"),
		relSchema(TabPInteract, "PID", "IID"),
		relSchema(TabDInteract, "DID", "IID"),
		relSchema(TabBelongs, "PID", "FID"),
		relSchema(TabManifest, "SID", "PID"),
		relSchema(TabPathElement, "FID", "WID"),
	}
}

// SchemaGraph returns the Biozon schema graph of Figure 1. With this
// schema there are exactly ten schema paths of length three or less
// connecting Protein and DNA, matching the count quoted in the paper's
// introduction.
func SchemaGraph() *graph.SchemaGraph {
	sg, err := graph.NewSchemaGraph(
		[]graph.EntitySet{
			{Name: Protein, Table: TabProtein},
			{Name: DNA, Table: TabDNA},
			{Name: Unigene, Table: TabUnigene},
			{Name: Interaction, Table: TabInteraction},
			{Name: Family, Table: TabFamily},
			{Name: Pathway, Table: TabPathway},
			{Name: Structure, Table: TabStructure},
		},
		[]graph.RelSet{
			{Name: RelEncodes, A: Protein, B: DNA, Table: TabEncodes, ACol: "PID", BCol: "DID"},
			{Name: RelUniEncodes, A: Unigene, B: Protein, Table: TabUniEncodes, ACol: "UID", BCol: "PID"},
			{Name: RelUniContains, A: Unigene, B: DNA, Table: TabUniContains, ACol: "UID", BCol: "DID"},
			{Name: RelInteraction, A: Protein, B: Interaction, Table: TabPInteract, ACol: "PID", BCol: "IID"},
			{Name: RelInteraction, A: DNA, B: Interaction, Table: TabDInteract, ACol: "DID", BCol: "IID"},
			{Name: RelBelongs, A: Protein, B: Family, Table: TabBelongs, ACol: "PID", BCol: "FID"},
			{Name: RelManifest, A: Structure, B: Protein, Table: TabManifest, ACol: "SID", BCol: "PID"},
			{Name: RelPathElement, A: Family, B: Pathway, Table: TabPathElement, ACol: "FID", BCol: "WID"},
		})
	if err != nil {
		panic(err) // static schema, cannot fail
	}
	return sg
}

// EmptyDB creates a database with every Biozon table present and empty,
// with hash indices on all endpoint columns and the primary keys (the
// paper's setup "built indices on all the primary keys and queried
// attributes").
func EmptyDB() *relstore.DB {
	db := relstore.NewDB()
	for _, s := range entitySchemas() {
		db.MustCreateTable(s)
	}
	for _, s := range relSchemas() {
		t := db.MustCreateTable(s)
		for _, c := range s.Cols[1:] { // endpoint columns
			if _, err := t.CreateHashIndex(c.Name); err != nil {
				panic(err)
			}
		}
	}
	return db
}
