package experiments

// This file is the storage-engine benchmark: the BENCH_storage.json
// counterpart of the online sweep, recording ns/op and allocs/op for
// the storage hot paths (predicate scan, hash probe, store build, the
// Fast-Top scan-path query) and the bytes-per-row footprint of every
// precomputed table under the columnar + dictionary layout. The
// "scan/rowstore" row replays the pre-columnar access pattern — one
// materialized row per tuple — so the allocation win of the columnar
// engine is recorded next to its own numbers.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"toposearch/internal/methods"
	"toposearch/internal/relstore"
)

// StorageBenchRow is one measured storage operation.
type StorageBenchRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// TableFootprint is the columnar footprint of one precomputed table.
type TableFootprint struct {
	Table       string  `json:"table"`
	Rows        int     `json:"rows"`
	Bytes       int64   `json:"bytes"`
	BytesPerRow float64 `json:"bytes_per_row"`
}

// StorageBenchReport is the file-level shape of BENCH_storage.json.
type StorageBenchReport struct {
	Scale  int               `json:"scale"`
	Seed   int64             `json:"seed"`
	Pair   [2]string         `json:"pair"`
	Note   string            `json:"note"`
	Rows   []StorageBenchRow `json:"rows"`
	Tables []TableFootprint  `json:"tables"`
}

// storageNote explains the baseline row of the report.
const storageNote = "scan/rowstore replays the pre-columnar access pattern " +
	"(one materialized []Value row per tuple, the seed layout's per-row cost); " +
	"scan/columnar is the positional path on the same data. The allocs_per_op " +
	"gap between the two rows is the scan-path reduction of the columnar engine."

// measureOp times f (fastest of reps runs of `iters` calls, via the
// shared Measure helper) and counts its steady-state allocations per
// call.
func measureOp(reps, iters int, f func()) StorageBenchRow {
	sec, _ := Measure(reps, func() error {
		for i := 0; i < iters; i++ {
			f()
		}
		return nil
	})
	return StorageBenchRow{
		NsPerOp:     sec * 1e9 / float64(iters),
		AllocsPerOp: testing.AllocsPerRun(iters, f),
	}
}

// BenchStorage measures the storage engine on the environment's
// Protein-Interaction store and reports the footprint of every
// precomputed table in the environment.
func BenchStorage(env *Env, reps int) (*StorageBenchReport, error) {
	st := env.Store(PairPI)
	p1, err := PredFor(st.T1, "medium")
	if err != nil {
		return nil, err
	}
	psel, err := PredFor(st.T1, "selective")
	if err != nil {
		return nil, err
	}
	p2, err := PredFor(st.T2, "medium")
	if err != nil {
		return nil, err
	}
	rep := &StorageBenchReport{Scale: env.Setup.Scale, Seed: env.Setup.Seed, Pair: PairPI, Note: storageNote}
	add := func(name string, iters int, f func()) {
		row := measureOp(reps, iters, f)
		row.Name = name
		rep.Rows = append(rep.Rows, row)
	}

	// Predicate scan of the entity table: columnar positional path vs
	// the row-store pattern of materializing every tuple.
	t1 := st.T1
	add("scan/columnar", 20, func() {
		n := 0
		t1.ScanPos(func(pos int32) bool {
			if p1.EvalAt(t1, pos) {
				n++
			}
			return true
		})
	})
	add("scan/rowstore", 20, func() {
		n := 0
		for pos := int32(0); pos < int32(t1.NumRows()); pos++ {
			if p1.Eval(t1.Row(pos)) {
				n++
			}
		}
	})

	// Hash probe of the AllTops E1 index with every entity-1 key.
	ix, ok := st.AllTops.HashIndexOn("E1")
	if !ok {
		return nil, fmt.Errorf("experiments: AllTops has no E1 index")
	}
	ids := t1.Col(t1.Schema.KeyCol)
	add("hashprobe", 100, func() {
		hits := 0
		for pos := 0; pos < ids.Len(); pos++ {
			hits += len(ix.LookupInt(ids.Int(int32(pos))))
		}
	})

	// Store build: reload the entity table into a fresh columnar table.
	rows := make([]relstore.Row, t1.NumRows())
	for pos := range rows {
		rows[pos] = t1.Row(int32(pos))
	}
	add("buildstore", 5, func() {
		nt := relstore.NewTable(t1.Schema)
		for _, r := range rows {
			if err := nt.Insert(r); err != nil {
				panic(err)
			}
		}
	})

	// The Fast-Top scan-path query end to end (sequential, so the
	// number tracks the storage layer rather than the worker pool).
	q := methods.Query{Pred1: psel, Pred2: p2, Parallelism: 1}
	add("fasttop/workers=1", 3, func() {
		if _, err := st.FastTop(q); err != nil {
			panic(err)
		}
	})

	for _, pair := range Table1Pairs() {
		s := env.Store(pair)
		for _, tb := range []*relstore.Table{s.AllTops, s.LeftTops, s.ExcpTops, s.TopInfo} {
			fp := TableFootprint{Table: tb.Schema.Name, Rows: tb.NumRows(), Bytes: tb.ApproxBytes()}
			if fp.Rows > 0 {
				fp.BytesPerRow = float64(fp.Bytes) / float64(fp.Rows)
			}
			rep.Tables = append(rep.Tables, fp)
		}
	}
	return rep, nil
}

// WriteStorageBench writes the report as indented JSON to path.
func WriteStorageBench(rep *StorageBenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintStorageBench renders the report.
func PrintStorageBench(w io.Writer, rep *StorageBenchReport) {
	fmt.Fprintf(w, "%-20s %14s %14s\n", "operation", "ns/op", "allocs/op")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%-20s %14.0f %14.1f\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	fmt.Fprintf(w, "\n%-28s %10s %12s %10s\n", "table", "rows", "bytes", "bytes/row")
	for _, t := range rep.Tables {
		fmt.Fprintf(w, "%-28s %10d %12d %10.1f\n", t.Table, t.Rows, t.Bytes, t.BytesPerRow)
	}
}
