package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"toposearch/internal/methods"
)

// smallEnv builds a scale-1 environment shared across the tests.
var cachedEnv *Env

func smallEnv(t *testing.T) *Env {
	t.Helper()
	if cachedEnv != nil {
		return cachedEnv
	}
	env, err := NewEnv(context.Background(), Setup{Scale: 1, Seed: 42, PruneThreshold: 3, L: 3, MaxPathsPerClass: 64})
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	cachedEnv = env
	return env
}

func TestTable1ShowsSpaceReduction(t *testing.T) {
	env := smallEnv(t)
	reports := Table1(env)
	if len(reports) != 5 {
		t.Fatalf("got %d reports, want 5", len(reports))
	}
	reduced := 0
	for _, r := range reports {
		if r.AllTopsRows == 0 {
			continue
		}
		if r.Ratio < 1 {
			reduced++
		}
	}
	if reduced == 0 {
		t.Error("no pair shows space reduction")
	}
	var buf bytes.Buffer
	PrintTable1(&buf, reports)
	if !strings.Contains(buf.String(), "Ratio") {
		t.Error("PrintTable1 missing header")
	}
}

func TestFig11Zipfian(t *testing.T) {
	env := smallEnv(t)
	series := Fig11(env)
	if len(series) != 4 {
		t.Fatalf("got %d series, want 4 (PD, DU, PI, PU)", len(series))
	}
	for _, s := range series {
		if len(s.Freqs) < 3 {
			t.Errorf("pair %v has only %d topologies", s.Pair, len(s.Freqs))
			continue
		}
		if s.Slope >= -0.3 {
			t.Errorf("pair %v log-log slope %.2f: not Zipf-like", s.Pair, s.Slope)
		}
		// Frequencies must be non-increasing.
		for i := 1; i < len(s.Freqs); i++ {
			if s.Freqs[i] > s.Freqs[i-1] {
				t.Errorf("pair %v frequencies not sorted", s.Pair)
				break
			}
		}
	}
	var buf bytes.Buffer
	PrintFig11(&buf, series)
	if !strings.Contains(buf.String(), "slope") {
		t.Error("PrintFig11 missing fit")
	}
}

func TestFig12FrequentAreSimple(t *testing.T) {
	env := smallEnv(t)
	rows := Fig12(env, 10)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// The paper's observation: the most frequent topologies have simple
	// structure, most no more complicated than a path.
	paths := 0
	for _, r := range rows {
		if r.IsPath {
			paths++
		}
	}
	if paths < len(rows)/2 {
		t.Errorf("only %d/%d frequent topologies are paths", paths, len(rows))
	}
	if rows[0].Freq < rows[len(rows)-1].Freq {
		t.Error("rows not in frequency order")
	}
	var buf bytes.Buffer
	PrintFig12(&buf, rows)
	if !strings.Contains(buf.String(), "structure") {
		t.Error("PrintFig12 missing header")
	}
}

func TestTable2GridAgreesAcrossMethods(t *testing.T) {
	env := smallEnv(t)
	cells, err := Table2(env, Table2Options{K: 10, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 8 methods (SQL excluded here; see TestTable2Shapes) x 9
	// selectivity combos x 3 rankings = 216 cells.
	if len(cells) != 216 {
		t.Errorf("got %d cells, want 216", len(cells))
	}
	// All top-k methods must agree on result counts per
	// (sel1, sel2, ranking).
	type key struct{ s1, s2, rk string }
	counts := map[key]map[string]int{}
	for _, c := range cells {
		switch c.Method {
		case methods.MethodSQL, methods.MethodFullTop, methods.MethodFastTop:
			continue
		}
		k := key{c.Sel1, c.Sel2, c.Ranking}
		if counts[k] == nil {
			counts[k] = map[string]int{}
		}
		counts[k][c.Method] = c.Results
	}
	for k, byMethod := range counts {
		ref := -1
		for m, n := range byMethod {
			if ref == -1 {
				ref = n
			}
			if n != ref {
				t.Errorf("%v: %s returned %d results, others %d", k, m, n, ref)
			}
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, cells)
	if !strings.Contains(buf.String(), "protein=selective") {
		t.Error("PrintTable2 missing block header")
	}
}

func TestTable2Shapes(t *testing.T) {
	// One selective/selective cell with the SQL strawman included: the
	// headline shape is that SQL is at least an order of magnitude
	// slower than Full-Top (the full grid is exercised by the harness).
	env := smallEnv(t)
	st := env.Store(PairPI)
	p1, err := PredFor(st.T1, "selective")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PredFor(st.T2, "selective")
	if err != nil {
		t.Fatal(err)
	}
	q := methods.Query{Pred1: p1, Pred2: p2}
	sqlSec, err := Measure(1, func() error {
		_, runErr := st.SQLMethod(q)
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	fullSec, err := Measure(1, func() error {
		_, runErr := st.FullTop(q)
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if sqlSec < 10*fullSec {
		t.Errorf("SQL %.4fs vs Full-Top %.4fs: strawman not slow enough", sqlSec, fullSec)
	}
}

func TestTable3RunsAndRestoresEnv(t *testing.T) {
	env := smallEnv(t)
	before := env.Store(PairPI).TopInfo.NumRows()
	res, err := Table3(context.Background(), env, Table3Options{K: 10, Reps: 1, UseWeakRules: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 27 {
		t.Errorf("got %d cells, want 27", len(res.Cells))
	}
	if res.Space.AllTopsRows == 0 {
		t.Error("empty l=4 AllTops")
	}
	// The environment's l=3 store must be restored.
	after := env.Store(PairPI).TopInfo.NumRows()
	if before != after {
		t.Errorf("PI store not restored: %d -> %d topologies", before, after)
	}
	var buf bytes.Buffer
	PrintTable3(&buf, res)
	if !strings.Contains(buf.String(), "precomputation") {
		t.Error("PrintTable3 missing precomputation line")
	}
}

func TestVaryK(t *testing.T) {
	env := smallEnv(t)
	cells, err := VaryK(env, []int{1, 5, 25}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 9 {
		t.Errorf("got %d cells, want 9", len(cells))
	}
	for _, c := range cells {
		if c.Results > c.K {
			t.Errorf("k=%d returned %d results", c.K, c.Results)
		}
	}
	var buf bytes.Buffer
	PrintVaryK(&buf, cells)
	if !strings.Contains(buf.String(), "ranking") {
		t.Error("PrintVaryK missing header")
	}
}

func TestInstanceRetrieval(t *testing.T) {
	env := smallEnv(t)
	cells, err := InstanceRetrieval(env, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	witnessed := 0
	for _, c := range cells {
		if c.Pairs != 0 && c.Pairs < c.Freq {
			t.Errorf("TID %d: %d pairs < freq %d", c.TID, c.Pairs, c.Freq)
		}
		if c.Witnessed {
			witnessed++
		}
	}
	if witnessed == 0 {
		t.Error("no witnesses materialized")
	}
	var buf bytes.Buffer
	PrintInstanceRetrieval(&buf, cells)
	if !strings.Contains(buf.String(), "witnessed") {
		t.Error("missing header")
	}
}

func TestMeasure(t *testing.T) {
	n := 0
	sec, err := Measure(3, func() error { n++; return nil })
	if err != nil || n != 3 || sec < 0 {
		t.Errorf("Measure: n=%d sec=%v err=%v", n, sec, err)
	}
	if _, err := Measure(1, func() error { return errTest }); err == nil {
		t.Error("Measure swallowed error")
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }
