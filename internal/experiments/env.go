// Package experiments drives the reproduction of every table and
// figure in the paper's evaluation (Section 6): Table 1 (space
// requirements), Table 2 (query performance of all nine methods across
// predicate selectivities and ranking schemes), Table 3 (path length
// l=4), Figure 11 (Zipfian topology-frequency distributions), Figure 12
// (the most frequent Protein-DNA topologies), the vary-k experiment and
// the instance-retrieval cost experiment of Section 6.2.4.
package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"toposearch/internal/biozon"
	"toposearch/internal/core"
	"toposearch/internal/graph"
	"toposearch/internal/methods"
	"toposearch/internal/ranking"
	"toposearch/internal/relstore"
)

// Setup configures one experimental environment.
type Setup struct {
	// Scale multiplies the synthetic database size (see
	// biozon.DefaultConfig).
	Scale int
	// Seed drives the generator.
	Seed int64
	// PruneThreshold is the Fast-Top pruning threshold, scaled to the
	// generated data (the paper used 2M on the full Biozon).
	PruneThreshold int
	// L is the path-length bound (3 for most experiments).
	L int
	// MaxPathsPerClass caps the per-class representatives during
	// topology computation.
	MaxPathsPerClass int
	// Parallelism is the worker count for the offline precomputation
	// and, by inheritance through each store's options, for online
	// queries that leave Query.Parallelism at 0 (0 = GOMAXPROCS).
	Parallelism int
}

// DefaultSetup returns the environment used by the benchmark harness.
func DefaultSetup() Setup {
	return Setup{Scale: 2, Seed: 42, PruneThreshold: 6, L: 3, MaxPathsPerClass: 64}
}

// Pairs used across the experiments (Table 1 lists five pairs; Figure
// 11 plots PD, DU, PI and PU).
var (
	PairPD = [2]string{biozon.Protein, biozon.DNA}
	PairPI = [2]string{biozon.Protein, biozon.Interaction}
	PairPU = [2]string{biozon.Protein, biozon.Unigene}
	PairDI = [2]string{biozon.DNA, biozon.Interaction}
	PairDU = [2]string{biozon.DNA, biozon.Unigene}
)

// Table1Pairs lists the entity-set pairs of the paper's Table 1.
func Table1Pairs() [][2]string {
	return [][2]string{PairPD, PairPI, PairPU, PairDI, PairDU}
}

// Env is a fully precomputed experimental environment: the generated
// database, its graph, and one method store per entity-set pair.
type Env struct {
	Setup  Setup
	DB     *relstore.DB
	G      *graph.Graph
	SG     *graph.SchemaGraph
	Stores map[[2]string]*methods.Store
}

// NewEnv generates the database and precomputes stores for all
// experiment pairs. The per-pair offline builds run concurrently over
// one shared database and data graph: each pair materializes into its
// own tables (the relstore catalog is concurrency-safe) and interns
// into its own registry, so the builds only share read-only state.
// Setup.Parallelism stays the total worker budget: it is split between
// concurrently-building pairs and the workers inside each build, so
// Parallelism=1 still runs everything sequentially. The context cancels
// the offline precomputation.
func NewEnv(ctx context.Context, s Setup) (*Env, error) {
	cfg := biozon.DefaultConfig(s.Scale)
	cfg.Seed = s.Seed
	db := biozon.Generate(cfg)
	sg := biozon.SchemaGraph()
	g, err := graph.Build(db, sg)
	if err != nil {
		return nil, err
	}
	env := &Env{Setup: s, DB: db, G: g, SG: sg, Stores: map[[2]string]*methods.Store{}}
	pairs := Table1Pairs()
	budget := core.Options{Parallelism: s.Parallelism}.Workers()
	buildConc := budget
	if buildConc > len(pairs) {
		buildConc = len(pairs)
	}
	// Ceiling split keeps the whole budget busy while all pairs build
	// (worst momentary excess: buildConc-1 workers). The tail — fewer
	// running builds than buildConc near the end — can leave part of
	// the budget idle; redistributing freed workers to still-running
	// builds would need a pool shared across Compute calls.
	perBuild := (budget + buildConc - 1) / buildConc
	stores := make([]*methods.Store, len(pairs))
	errs := make([]error, len(pairs))
	sem := make(chan struct{}, buildConc)
	var wg sync.WaitGroup
	for i, pair := range pairs {
		wg.Add(1)
		go func(i int, pair [2]string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			stores[i], errs[i] = methods.BuildStoreFromGraph(ctx, db, g, sg, pair[0], pair[1], methods.StoreConfig{
				Opts: core.Options{
					MaxLen:           s.L,
					MaxCombinations:  4096,
					MaxPathsPerClass: s.MaxPathsPerClass,
					Parallelism:      perBuild,
				},
				PruneThreshold: s.PruneThreshold,
				Scores:         ranking.Schemes(),
			})
		}(i, pair)
	}
	wg.Wait()
	for i, pair := range pairs {
		if errs[i] != nil {
			return nil, fmt.Errorf("experiments: building store %v: %w", pair, errs[i])
		}
		// The throttled per-build worker count was an offline budget
		// split; queries on the finished store should default to the
		// full configured parallelism again.
		stores[i].Cfg.Opts.Parallelism = s.Parallelism
		env.Stores[pair] = stores[i]
	}
	return env, nil
}

// Store returns the precomputed store for a pair.
func (e *Env) Store(pair [2]string) *methods.Store { return e.Stores[pair] }

// SelLevels are the paper's three predicate selectivities.
var SelLevels = []string{"selective", "medium", "unselective"}

// PredFor builds the desc-keyword predicate of the given selectivity
// level for an entity table.
func PredFor(t *relstore.Table, level string) (relstore.Pred, error) {
	return biozon.SelectivityPred(t.Schema, level)
}

// Measure runs f reps times and returns the fastest wall-clock seconds
// (warm-cache timing, matching the paper's methodology of averaging
// warm runs).
func Measure(reps int, f func() error) (float64, error) {
	if reps < 1 {
		reps = 1
	}
	best := -1.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		sec := time.Since(start).Seconds()
		if best < 0 || sec < best {
			best = sec
		}
	}
	return best, nil
}
