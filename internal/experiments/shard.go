package experiments

// This file is the scatter-gather sharding benchmark: the Fast-Top-k
// family measured across shard counts, with single-store equivalence
// verified every round. cmd/benchtab -exp benchshard writes
// BENCH_shard.json so the scale-out trajectory is tracked release over
// release. Two effects are measured: the scatter-gather speedup (how
// evenly the cost-weighted cuts spread the work, reported as total
// shard work over the slowest shard's share) and the bound-exchange
// pruning (how much speculative work the global top-k bound avoids,
// reported against a rerun with the exchange disabled).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"toposearch/internal/methods"
	"toposearch/internal/ranking"
	"toposearch/internal/relstore"
)

// ShardBenchRow is one measurement: one method on one workload at one
// shard count.
type ShardBenchRow struct {
	Method string `json:"method"`
	// Workload names the query shape: "deep-crawl" (needle predicate,
	// fewer matches than k — the crawl runs to the end of the stream, so
	// the rows isolate the scatter-gather split) or "early-stop" (broad
	// predicate, many matches — the sequential run stops at k, so the
	// rows isolate what the bound exchange prunes).
	Workload string  `json:"workload"`
	Shards   int     `json:"shards"`
	Seconds float64 `json:"seconds"`
	Results int     `json:"results"`
	// UsefulWork is the committed work (rows scanned + index probes);
	// identical across shard counts by construction.
	UsefulWork int64 `json:"useful_work"`
	// ShardWork is the summed work of the shard executors (useful or
	// not); MaxShardWork is the slowest executor's share — the
	// scatter-gather critical path.
	ShardWork    int64 `json:"shard_work"`
	MaxShardWork int64 `json:"max_shard_work"`
	// SpeedupWork is ShardWork / MaxShardWork: the machine-independent
	// scatter-gather speedup the cost-weighted cuts expose (how evenly
	// the partition spread the sharded portion of the query).
	SpeedupWork float64 `json:"speedup_work"`
	// SpeedupVs1 is the single-store wall time divided by this row's
	// wall time.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	// WastedWork is the speculative work burned beyond the committed
	// useful work; for the ET method the bound exchange prunes it.
	WastedWork int64 `json:"wasted_work"`
	// WastedNoExchange reruns the ET query with the bound exchange
	// disabled: the speculative work the shards burn when nothing
	// shares the global k-th bound (0 for non-ET methods).
	WastedNoExchange int64 `json:"wasted_no_exchange"`
	// PrunedRatio is 1 - WastedWork/WastedNoExchange: the fraction of
	// the exchange-free speculative work the bound exchange avoided.
	PrunedRatio float64 `json:"pruned_ratio"`
	// PrunedShards counts the shard executors the exchange stopped
	// before they finished their window.
	PrunedShards int `json:"pruned_shards"`
}

// ShardBenchReport is the file-level shape of BENCH_shard.json.
type ShardBenchReport struct {
	Scale      int             `json:"scale"`
	Seed       int64           `json:"seed"`
	Pair       [2]string       `json:"pair"`
	K          int             `json:"k"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Note       string          `json:"note"`
	Rows       []ShardBenchRow `json:"rows"`
}

// BenchShard measures scatter-gather sharded execution on the
// Protein-Interaction pair over two workloads. "deep-crawl" is the
// adversarial query BenchET uses (medium predicate one side, needle
// predicate the other): the scan method crawls the whole entity space
// and the ET method essentially the whole group stream, so sharding
// splits exactly the dominant cost. "early-stop" drops the needle so
// matches far exceed k and the sequential ET run stops early: sharded
// executors past the stop boundary are pure speculative waste, which
// is exactly what the bound exchange prunes — the pruned_ratio rows.
// Per-query parallelism and speculation are pinned to 1 so the rows
// isolate the sharding effect. Every sharded run is verified
// byte-identical (items AND useful-work counters) to the single-store
// run before its timing is reported.
func BenchShard(env *Env, k, reps int, counts []int) (*ShardBenchReport, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8}
	}
	st := env.Store(PairPI)
	p1, err := PredFor(st.T1, "medium")
	if err != nil {
		return nil, err
	}
	// The generator writes "interaction <i>" into each desc, so the
	// bare index token matches exactly one interaction entity.
	p2, err := relstore.Contains(st.T2.Schema, "desc", "17")
	if err != nil {
		return nil, err
	}
	rep := &ShardBenchReport{
		Scale: env.Setup.Scale, Seed: env.Setup.Seed, Pair: PairPI, K: k,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "speedup_work = summed shard work / slowest shard's share: the scatter-gather speedup " +
			"the cost-weighted cuts expose once each shard has its own core. pruned_ratio = " +
			"1 - wasted/wasted_no_exchange: the speculative work the global top-k bound exchange avoids. " +
			"Canonical-priority worker spawning already keeps waste near zero on undersubscribed hosts, " +
			"so both wasted columns shrink with the core count of the measuring machine. " +
			"Every sharded row is verified byte-identical to shards=1 before being reported.",
	}
	// The early-stop workload keeps the needle-style crawl (most pairs
	// fail, so every group is expensive) but widens the needle to a
	// handful of interaction entities: matches now exceed k yet stay
	// sparse, so the sequential run stops mid-stream and every segment
	// past the stop boundary is pure speculative waste — the work the
	// bound exchange is there to prune.
	var wide []relstore.Pred
	for _, tok := range []string{"11", "17", "23", "29", "37", "41", "53", "67",
		"71", "83", "97", "101", "103", "107", "109", "113"} {
		p, err := relstore.Contains(st.T2.Schema, "desc", tok)
		if err != nil {
			return nil, err
		}
		wide = append(wide, p)
	}
	p2wide := relstore.Or(wide...)
	cases := []struct {
		workload string
		method   string
		p1, p2   relstore.Pred
	}{
		{"deep-crawl", methods.MethodFastTopK, p1, p2},
		{"deep-crawl", methods.MethodFastTopKET, p1, p2},
		{"early-stop", methods.MethodFastTopKET, p1, p2wide},
	}
	for _, cs := range cases {
		m := cs.method
		var baseline methods.QueryResult
		var baseSec float64
		for _, n := range counts {
			q := methods.Query{Pred1: cs.p1, Pred2: cs.p2, K: k, Ranking: ranking.Domain,
				Parallelism: 1, Speculation: 1, Shards: n}
			// One untimed warm-up so the first configurations measured
			// don't absorb heap stabilization after the offline build.
			if _, err := st.Run(m, q); err != nil {
				return nil, fmt.Errorf("experiments: %s at %d shards: %w", m, n, err)
			}
			var res methods.QueryResult
			sec, err := Measure(reps, func() error {
				var runErr error
				res, runErr = st.Run(m, q)
				return runErr
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s at %d shards: %w", m, n, err)
			}
			if n == counts[0] {
				baseline, baseSec = res, sec
			} else {
				// Equivalence gate: sharding must never change what the
				// query returns or what useful work it reports.
				if got, want := itemsKey(res.Items), itemsKey(baseline.Items); got != want {
					return nil, fmt.Errorf("experiments: %s at %d shards items %s diverge from single-store %s", m, n, got, want)
				}
				if res.Counters != baseline.Counters {
					return nil, fmt.Errorf("experiments: %s at %d shards counters %+v diverge from single-store %+v", m, n, res.Counters, baseline.Counters)
				}
			}
			row := ShardBenchRow{
				Method:       m,
				Workload:     cs.workload,
				Shards:       n,
				Seconds:      sec,
				Results:      len(res.Items),
				UsefulWork:   res.Counters.Work(),
				MaxShardWork: res.Shard.MaxWork(),
				WastedWork:   res.Spec.Wasted.Work(),
				PrunedShards: res.Shard.PrunedShards(),
			}
			for _, sh := range res.Shard.Stats {
				row.ShardWork += sh.Work
			}
			if row.MaxShardWork > 0 {
				row.SpeedupWork = float64(row.ShardWork) / float64(row.MaxShardWork)
			}
			if sec > 0 {
				row.SpeedupVs1 = baseSec / sec
			}
			if m == methods.MethodFastTopKET && n > 1 {
				// Pruning effectiveness: the same query with the bound
				// exchange off shows what the shards burn when nothing
				// shares the global k-th bound.
				qn := q
				qn.NoBoundExchange = true
				resn, err := st.Run(m, qn)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s at %d shards (no exchange): %w", m, n, err)
				}
				if got, want := itemsKey(resn.Items), itemsKey(baseline.Items); got != want {
					return nil, fmt.Errorf("experiments: %s at %d shards (no exchange) items %s diverge from single-store %s", m, n, got, want)
				}
				if resn.Counters != baseline.Counters {
					return nil, fmt.Errorf("experiments: %s at %d shards (no exchange) counters %+v diverge from single-store %+v", m, n, resn.Counters, baseline.Counters)
				}
				row.WastedNoExchange = resn.Spec.Wasted.Work()
				if row.WastedNoExchange > 0 {
					row.PrunedRatio = 1 - float64(row.WastedWork)/float64(row.WastedNoExchange)
					if row.PrunedRatio < 0 {
						row.PrunedRatio = 0
					}
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// WriteShardBench writes the report as indented JSON to path.
func WriteShardBench(rep *ShardBenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintShardBench renders the report as a shard-count table, one row
// per method × workload: wall seconds per count, the scatter-gather
// work speedup and bound-exchange pruning ratio at the widest setting.
func PrintShardBench(w io.Writer, rep *ShardBenchReport) {
	byCase := map[string][]ShardBenchRow{}
	var order []string
	for _, r := range rep.Rows {
		key := r.Method
		if r.Workload != "" {
			key = r.Method + " (" + r.Workload + ")"
		}
		if len(byCase[key]) == 0 {
			order = append(order, key)
		}
		byCase[key] = append(byCase[key], r)
	}
	fmt.Fprintf(w, "%-28s", "method (workload)")
	if len(order) > 0 {
		for _, r := range byCase[order[0]] {
			fmt.Fprintf(w, "  n=%-8d", r.Shards)
		}
	}
	fmt.Fprintf(w, "  work-speedup@max  pruned@max  results\n")
	for _, key := range order {
		rows := byCase[key]
		fmt.Fprintf(w, "%-28s", key)
		for _, r := range rows {
			fmt.Fprintf(w, "  %8.4fs", r.Seconds)
		}
		last := rows[len(rows)-1]
		fmt.Fprintf(w, "  %15.2fx  %9.0f%%  %7d\n", last.SpeedupWork, 100*last.PrunedRatio, last.Results)
	}
	fmt.Fprintf(w, "(gomaxprocs %d; work-speedup = summed shard work / slowest shard; pruned = wasted work the bound exchange avoided)\n", rep.GoMaxProcs)
}
