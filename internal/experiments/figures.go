package experiments

import (
	"fmt"
	"io"
	"math"

	"toposearch/internal/core"
)

// Fig11Series is one curve of Figure 11: topology frequencies by rank
// for an entity-set pair.
type Fig11Series struct {
	Pair  [2]string
	Freqs []int // descending
	// Slope is the fitted log-log slope; Zipfian data gives a
	// roughly straight line with negative slope.
	Slope float64
	// R2 is the goodness of fit of the log-log regression.
	R2 float64
}

// Fig11 reproduces Figure 11: the distribution of topology frequency
// for the PD, DU, PI and PU entity-set pairs, with a log-log linear
// fit quantifying how Zipfian each distribution is.
func Fig11(env *Env) []Fig11Series {
	var out []Fig11Series
	for _, pair := range [][2]string{PairPD, PairDU, PairPI, PairPU} {
		pd := env.Store(pair).Res.Pair(pair[0], pair[1])
		_, freqs := pd.FrequencyRank()
		slope, r2 := loglogFit(freqs)
		out = append(out, Fig11Series{Pair: pair, Freqs: freqs, Slope: slope, R2: r2})
	}
	return out
}

// loglogFit regresses log(freq) on log(rank).
func loglogFit(freqs []int) (slope, r2 float64) {
	var xs, ys []float64
	for i, f := range freqs {
		if f <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(i+1)))
		ys = append(ys, math.Log(float64(f)))
	}
	n := float64(len(xs))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	// R^2 from the correlation coefficient.
	denY := n*syy - sy*sy
	if denY <= 0 {
		return slope, 1
	}
	r := (n*sxy - sx*sy) / math.Sqrt(den*denY)
	return slope, r * r
}

// PrintFig11 renders the frequency curves as rank/frequency pairs.
func PrintFig11(w io.Writer, series []Fig11Series) {
	for _, s := range series {
		fmt.Fprintf(w, "pair %s-%s: %d topologies, log-log slope %.2f (R2 %.2f)\n",
			s.Pair[0], s.Pair[1], len(s.Freqs), s.Slope, s.R2)
		for i, f := range s.Freqs {
			if i >= 10 {
				fmt.Fprintf(w, "  ... (%d more)\n", len(s.Freqs)-10)
				break
			}
			fmt.Fprintf(w, "  rank %2d  freq %d\n", i+1, f)
		}
	}
}

// Fig12Row is one row of Figure 12: a frequent Protein-DNA topology
// with its structure details.
type Fig12Row struct {
	Rank      int
	TID       core.TopologyID
	Freq      int
	Nodes     int
	Edges     int
	Classes   int
	IsPath    bool
	Structure string
}

// Fig12 reproduces Figure 12: the details of the top-N most frequent
// topologies relating Proteins and DNAs. The paper's observation — the
// frequent topologies have simple, mostly path-shaped structure — is
// what justifies the pruning strategy.
func Fig12(env *Env, topN int) []Fig12Row {
	st := env.Store(PairPD)
	pd := st.Res.Pair(PairPD[0], PairPD[1])
	ids, freqs := pd.FrequencyRank()
	var out []Fig12Row
	for i, tid := range ids {
		if i >= topN {
			break
		}
		info := st.Res.Reg.Info(tid)
		out = append(out, Fig12Row{
			Rank: i + 1, TID: tid, Freq: freqs[i],
			Nodes: info.NumNodes, Edges: info.NumEdges,
			Classes: len(info.Sigs), IsPath: info.IsPath,
			Structure: info.Describe(),
		})
	}
	return out
}

// PrintFig12 renders the rows.
func PrintFig12(w io.Writer, rows []Fig12Row) {
	fmt.Fprintf(w, "%-4s %-6s %-6s %-6s %-6s %-7s %s\n",
		"rank", "freq", "nodes", "edges", "classes", "path", "structure")
	for _, r := range rows {
		fmt.Fprintf(w, "%-4d %-6d %-6d %-6d %-6d %-7v %s\n",
			r.Rank, r.Freq, r.Nodes, r.Edges, r.Classes, r.IsPath, r.Structure)
	}
}
