package experiments

// This file is the online-phase benchmark: the query-time counterpart
// of the paper's Table 2, measured across query worker counts so the
// speedup of the parallel online execution path is tracked release
// over release (cmd/benchtab -exp benchonline writes BENCH_online.json).

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"toposearch/internal/methods"
	"toposearch/internal/ranking"
)

// OnlineBenchRow is one measurement: one method at one worker count.
type OnlineBenchRow struct {
	Method  string  `json:"method"`
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Results int     `json:"results"`
	Work    int64   `json:"work"` // probes + rows scanned
	// SpeedupVs1 is the baseline time divided by this row's time. The
	// baseline is the method's workers=1 measurement; if the sweep did
	// not include workers=1, the lowest measured worker count is used.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// OnlineBenchReport is the file-level shape of BENCH_online.json.
type OnlineBenchReport struct {
	Scale int              `json:"scale"`
	Seed  int64            `json:"seed"`
	Pair  [2]string        `json:"pair"`
	K     int              `json:"k"`
	Rows  []OnlineBenchRow `json:"rows"`
}

// OnlineBenchMethods lists the methods the online benchmark sweeps. The
// ET and Opt methods are included even though their DGJ stacks do not
// shard across workers (early termination is a serial decision; they
// parallelize via speculation instead, measured by BenchET), so the
// report shows which methods scale with plain workers and which don't.
func OnlineBenchMethods() []string {
	return []string{
		methods.MethodFullTop,
		methods.MethodFastTop,
		methods.MethodFullTopK,
		methods.MethodFastTopK,
		methods.MethodFastTopKET,
		methods.MethodFastTopOpt,
	}
}

// BenchOnline measures the online evaluation methods on the
// Protein-Interaction pair (selective protein predicate, medium
// interaction predicate — the regime where the pruned-topology checks
// dominate FastTop) across the given worker counts.
func BenchOnline(env *Env, k, reps int, workerCounts []int) (*OnlineBenchReport, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8}
	}
	st := env.Store(PairPI)
	p1, err := PredFor(st.T1, "selective")
	if err != nil {
		return nil, err
	}
	p2, err := PredFor(st.T2, "medium")
	if err != nil {
		return nil, err
	}
	rep := &OnlineBenchReport{Scale: env.Setup.Scale, Seed: env.Setup.Seed, Pair: PairPI, K: k}
	for _, m := range OnlineBenchMethods() {
		rows := make([]OnlineBenchRow, 0, len(workerCounts))
		for _, w := range workerCounts {
			q := methods.Query{Pred1: p1, Pred2: p2, K: k, Ranking: ranking.Domain, Parallelism: w}
			if m == methods.MethodFullTop || m == methods.MethodFastTop {
				q.K, q.Ranking = 0, ""
			}
			var res methods.QueryResult
			sec, err := Measure(reps, func() error {
				var runErr error
				res, runErr = st.Run(m, q)
				return runErr
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s at %d workers: %w", m, w, err)
			}
			rows = append(rows, OnlineBenchRow{
				Method:  m,
				Workers: w,
				Seconds: sec,
				Results: len(res.Items),
				Work:    res.Counters.IndexProbes + res.Counters.RowsScanned,
			})
		}
		// Baseline: the workers=1 row, or the lowest worker count
		// measured when the sweep skips 1.
		base := rows[0]
		for _, r := range rows {
			if r.Workers == 1 {
				base = r
				break
			}
			if r.Workers < base.Workers {
				base = r
			}
		}
		for i := range rows {
			if rows[i].Seconds > 0 {
				rows[i].SpeedupVs1 = base.Seconds / rows[i].Seconds
			}
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	return rep, nil
}

// WriteOnlineBench writes the report as indented JSON to path.
func WriteOnlineBench(rep *OnlineBenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintOnlineBench renders the report as a worker-count table, one row
// per method, with the speedup of the highest worker count annotated.
func PrintOnlineBench(w io.Writer, rep *OnlineBenchReport) {
	byMethod := map[string][]OnlineBenchRow{}
	var order []string
	for _, r := range rep.Rows {
		if len(byMethod[r.Method]) == 0 {
			order = append(order, r.Method)
		}
		byMethod[r.Method] = append(byMethod[r.Method], r)
	}
	fmt.Fprintf(w, "%-16s", "method")
	if len(order) > 0 {
		for _, r := range byMethod[order[0]] {
			fmt.Fprintf(w, "  w=%-8d", r.Workers)
		}
	}
	fmt.Fprintf(w, "  speedup  results\n")
	for _, m := range order {
		rows := byMethod[m]
		fmt.Fprintf(w, "%-16s", m)
		for _, r := range rows {
			fmt.Fprintf(w, "  %8.4fs", r.Seconds)
		}
		last := rows[len(rows)-1]
		fmt.Fprintf(w, "  %6.2fx  %7d\n", last.SpeedupVs1, last.Results)
	}
}
