package experiments

// This file is the robustness benchmark: the BENCH_chaos.json
// counterpart of the chaos test harness. It quantifies what the
// failure-containment layer costs and what it buys: the per-hit price
// of a fault-injection point (disabled registry vs armed-but-silent),
// the end-to-end query cost of the armed registry, admission-control
// behavior under deliberate overload (admitted / degraded / shed), and
// a fault-schedule survival run whose final state is verified
// byte-identical to a fresh from-scratch rebuild.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"toposearch"
	"toposearch/internal/fault"
)

// benchChaosPoint is a dedicated injection point for the overhead
// measurement: arming only it leaves every engine point bound to no
// rule, which is exactly the "registry enabled, point silent" state
// the engine pays on every hot-path hit under an active chaos run.
var benchChaosPoint = fault.Register("bench.chaos")

// ChaosOverhead is the cost side: what the injection points charge.
type ChaosOverhead struct {
	// DisabledNsPerHit is one Point.Hit with the registry disabled —
	// the tax every production call pays for having the point compiled
	// in. ArmedNsPerHit is the same hit with the registry enabled but
	// the point bound to no rule — what every silent point pays during
	// a chaos run. BoundNsPerHit is a hit on a point bound to a
	// never-firing rule (rule bookkeeping included).
	DisabledNsPerHit float64 `json:"disabled_ns_per_hit"`
	ArmedNsPerHit    float64 `json:"armed_ns_per_hit"`
	BoundNsPerHit    float64 `json:"bound_ns_per_hit"`
	// SearchPlainSec / SearchArmedSec time the same query mix end to
	// end with the registry disabled vs enabled-but-silent (fastest of
	// reps); OverheadPct is their relative difference.
	SearchPlainSec float64 `json:"search_plain_sec"`
	SearchArmedSec float64 `json:"search_armed_sec"`
	OverheadPct    float64 `json:"overhead_pct"`
}

// ChaosOverload is the admission-control side: a burst of concurrent
// callers against a MaxInflight-bounded searcher versus the same burst
// unbounded.
type ChaosOverload struct {
	Callers     int `json:"callers"`
	PerCaller   int `json:"queries_per_caller"`
	MaxInflight int `json:"max_inflight"`
	MaxQueue    int `json:"max_queue"`
	// Outcome counts on the bounded searcher: every query is admitted
	// (possibly degraded to sequential execution) or shed with
	// ErrOverloaded — never anything else.
	Admitted int64 `json:"admitted"`
	Degraded int64 `json:"degraded"`
	Rejected int64 `json:"rejected"`
	// Wall-clock for the whole burst, bounded vs unbounded.
	BoundedSec   float64 `json:"bounded_sec"`
	UnboundedSec float64 `json:"unbounded_sec"`
}

// ChaosSurvival is the containment side: a fault schedule armed over
// every engine point while queries, batches, refreshes and compactions
// run; the layer must keep every failure typed and the final state
// byte-identical to a fresh rebuild.
type ChaosSurvival struct {
	Searches        int   `json:"searches"`
	Batches         int   `json:"batches"`
	FaultsFired     int64 `json:"faults_fired"`
	TypedErrors     int   `json:"typed_errors"`
	PanicsContained int64 `json:"panics_contained"`
	Partials        int64 `json:"partials"`
	// FiredByPoint breaks FaultsFired down per injection point.
	FiredByPoint map[string]int64 `json:"fired_by_point"`
	// Equivalent asserts the post-chaos searcher answers byte-identical
	// to a fresh from-scratch searcher on the final database.
	Equivalent bool `json:"equivalent"`
}

// ChaosBenchReport is the file-level shape of BENCH_chaos.json.
type ChaosBenchReport struct {
	Scale    int            `json:"scale"`
	Seed     int64          `json:"seed"`
	Pair     [2]string      `json:"pair"`
	Note     string         `json:"note"`
	Overhead ChaosOverhead  `json:"overhead"`
	Overload ChaosOverload  `json:"overload"`
	Survival ChaosSurvival  `json:"survival"`
}

const chaosNote = "disabled_ns_per_hit is the production-mode price of one injection point " +
	"(registry off); armed_ns_per_hit the price during a chaos run (registry on, point " +
	"silent). The overload burst drives a MaxInflight-bounded searcher past capacity: " +
	"queries are admitted, degraded to sequential execution, or shed with ErrOverloaded. " +
	"The survival run arms errors, panics and latency across every engine injection point " +
	"and verifies the surviving searcher byte-identical to a fresh rebuild."

// chaosMix is the query mix reused by the overhead and survival
// phases.
func chaosMix() []toposearch.SearchQuery {
	return []toposearch.SearchQuery{
		{K: 5, Method: "fast-top-k"},
		{K: 5, Method: "fast-top-k-et", Speculation: 2},
		{Method: "fast-top", Shards: 2},
		{K: 3, Method: "full-top-k", Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}}},
	}
}

func chaosTypedErr(err error) bool {
	if err == nil {
		return true
	}
	var pe *toposearch.EnginePanicError
	return errors.Is(err, toposearch.ErrInjected) ||
		errors.As(err, &pe) ||
		errors.Is(err, toposearch.ErrOverloaded) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// BenchChaos runs the three phases and assembles the report.
func BenchChaos(ctx context.Context, scale int, seed int64, reps int) (*ChaosBenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	rep := &ChaosBenchReport{
		Scale: scale, Seed: seed,
		Pair: [2]string{toposearch.Protein, toposearch.DNA},
		Note: chaosNote,
	}

	// Phase 1: point overhead. The micro loop times the disabled fast
	// path (one atomic load) and the armed-but-silent path (two loads).
	fault.Disable()
	const hits = 5_000_000
	start := time.Now()
	for i := 0; i < hits; i++ {
		if err := benchChaosPoint.Hit(); err != nil {
			return nil, err
		}
	}
	rep.Overhead.DisabledNsPerHit = float64(time.Since(start).Nanoseconds()) / hits
	if err := fault.Enable(seed); err != nil { // registry on, every point unbound
		return nil, err
	}
	start = time.Now()
	for i := 0; i < hits; i++ {
		if err := benchChaosPoint.Hit(); err != nil {
			return nil, err
		}
	}
	rep.Overhead.ArmedNsPerHit = float64(time.Since(start).Nanoseconds()) / hits
	if err := fault.Enable(seed, fault.Rule{Point: "bench.chaos", After: 1 << 50}); err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < hits; i++ {
		if err := benchChaosPoint.Hit(); err != nil {
			return nil, err
		}
	}
	rep.Overhead.BoundNsPerHit = float64(time.Since(start).Nanoseconds()) / hits
	fault.Disable()

	db, err := toposearch.Synthetic(scale, seed)
	if err != nil {
		return nil, err
	}
	cfg := toposearch.DefaultSearcherConfig()
	cfg.CacheBytes = -1 // uncached: the mix must execute every time
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	mix := chaosMix()
	runMix := func() (time.Duration, error) {
		start := time.Now()
		for _, q := range mix {
			if _, err := s.SearchContext(ctx, q); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	fastest := func() (float64, error) {
		best := time.Duration(1<<62 - 1)
		for r := 0; r < reps; r++ {
			d, err := runMix()
			if err != nil {
				return 0, err
			}
			if d < best {
				best = d
			}
		}
		return best.Seconds(), nil
	}
	if rep.Overhead.SearchPlainSec, err = fastest(); err != nil {
		return nil, err
	}
	if err := fault.Enable(seed); err != nil {
		return nil, err
	}
	if rep.Overhead.SearchArmedSec, err = fastest(); err != nil {
		return nil, err
	}
	fault.Disable()
	if rep.Overhead.SearchPlainSec > 0 {
		rep.Overhead.OverheadPct = 100 * (rep.Overhead.SearchArmedSec - rep.Overhead.SearchPlainSec) / rep.Overhead.SearchPlainSec
	}

	// Phase 2: overload burst. Injected executor latency makes each
	// query hold its slot long enough that the burst actually queues.
	if err := benchChaosOverload(ctx, db, rep); err != nil {
		return nil, err
	}

	// Phase 3: survival under a full fault schedule.
	if err := benchChaosSurvival(ctx, db, seed, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

func benchChaosOverload(ctx context.Context, db *toposearch.DB, rep *ChaosBenchReport) error {
	const callers, perCaller = 8, 3
	rep.Overload = ChaosOverload{
		Callers: callers, PerCaller: perCaller,
		MaxInflight: 2, MaxQueue: 4,
	}
	burst := func(s *toposearch.Searcher) (time.Duration, error) {
		var wg sync.WaitGroup
		errs := make([]error, callers*perCaller)
		start := time.Now()
		for c := 0; c < callers; c++ {
			c := c
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perCaller; i++ {
					// Distinct constraints keep callers off each other's
					// cache flights.
					q := toposearch.SearchQuery{Method: "fast-top",
						Cons1: []toposearch.Constraint{{Column: "desc", Keyword: fmt.Sprintf("kwsel%d", 10*(1+(c*perCaller+i)%6))}}}
					_, errs[c*perCaller+i] = s.SearchContext(ctx, q)
				}
			}()
		}
		wg.Wait()
		dur := time.Since(start)
		for _, err := range errs {
			if err != nil && !errors.Is(err, toposearch.ErrOverloaded) {
				return 0, fmt.Errorf("overload burst: unexpected error %w", err)
			}
		}
		return dur, nil
	}

	if err := fault.Enable(rep.Seed, fault.Rule{
		Point: "shard.executor", Delay: 10 * time.Millisecond, DelayOnly: true}); err != nil {
		return err
	}
	defer fault.Disable()

	cfg := toposearch.DefaultSearcherConfig()
	cfg.CacheBytes = -1
	unbounded, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		return err
	}
	defer unbounded.Close()
	du, err := burst(unbounded)
	if err != nil {
		return err
	}
	rep.Overload.UnboundedSec = du.Seconds()

	cfg.MaxInflight = rep.Overload.MaxInflight
	cfg.MaxQueue = rep.Overload.MaxQueue
	cfg.QueueTimeout = 2 * time.Second
	bounded, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		return err
	}
	defer bounded.Close()
	dbt, err := burst(bounded)
	if err != nil {
		return err
	}
	rep.Overload.BoundedSec = dbt.Seconds()
	st := bounded.Stats()
	rep.Overload.Admitted = st.Admitted
	rep.Overload.Degraded = st.Degraded
	rep.Overload.Rejected = st.Rejected
	return nil
}

func benchChaosSurvival(ctx context.Context, db *toposearch.DB, seed int64, rep *ChaosBenchReport) error {
	cfg := toposearch.DefaultSearcherConfig()
	cfg.Speculation, cfg.Shards = 2, 2
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		return err
	}
	defer s.Close()

	if err := fault.Enable(seed,
		fault.Rule{Point: "*", Prob: 0.05},
		fault.Rule{Point: "engine.segment", Prob: 0.05, Panic: true},
		fault.Rule{Point: "shard.executor", Prob: 0.05, Panic: true},
		fault.Rule{Point: "cache.fill", Prob: 0.1, Panic: true},
		fault.Rule{Point: "delta.apply", Prob: 0.1, Panic: true},
		fault.Rule{Point: "relstore.compact.mid", Prob: 0.5, Panic: true},
		fault.Rule{Point: "bench.chaos", After: 1 << 50},
	); err != nil {
		return err
	}
	defer fault.Disable()

	sv := &rep.Survival
	mix := chaosMix()
	for round := 0; round < 6; round++ {
		for _, q := range mix {
			sv.Searches++
			if _, err := s.SearchContext(ctx, q); err != nil {
				if !chaosTypedErr(err) {
					return fmt.Errorf("survival: untyped search error %w", err)
				}
				sv.TypedErrors++
			}
		}
		p := int64(6_810_000 + round)
		d := int64(7_810_000 + round)
		batch := []toposearch.Update{
			toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": fmt.Sprintf("chaos bench protein %d kwsel50", round)}),
			toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "mRNA", "desc": "chaos bench dna"}),
			toposearch.InsertRelationship("encodes", p, d),
		}
		for attempt := 0; attempt < 100; attempt++ {
			err := db.ApplyBatch(batch)
			if err == nil {
				sv.Batches++
				break
			}
			if !chaosTypedErr(err) {
				return fmt.Errorf("survival: untyped batch error %w", err)
			}
			sv.TypedErrors++
		}
		if err := db.Compact(); err != nil {
			if !chaosTypedErr(err) {
				return fmt.Errorf("survival: untyped compact error %w", err)
			}
			sv.TypedErrors++
		}
		for attempt := 0; attempt < 100; attempt++ {
			_, err := s.RefreshContext(ctx)
			if err == nil {
				break
			}
			if !chaosTypedErr(err) {
				return fmt.Errorf("survival: untyped refresh error %w", err)
			}
			sv.TypedErrors++
		}
	}
	// Stats are per-arming: the snapshot covers exactly this schedule.
	sv.FaultsFired = fault.TotalFired()
	sv.FiredByPoint = map[string]int64{}
	for _, ps := range fault.Stats() {
		if ps.Fired > 0 {
			sv.FiredByPoint[ps.Name] = ps.Fired
		}
	}
	fault.Disable()

	st := s.Stats()
	sv.PanicsContained = st.PanicsContained
	sv.Partials = st.Partials

	// Equivalence gate: the survivor answers like a fresh rebuild.
	if _, err := s.RefreshContext(ctx); err != nil {
		return err
	}
	if err := db.Compact(); err != nil {
		return err
	}
	fresh, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		return err
	}
	defer fresh.Close()
	sv.Equivalent = true
	for _, q := range chaosMix() {
		got, err := s.SearchContext(ctx, q)
		if err != nil {
			return err
		}
		want, err := fresh.SearchContext(ctx, q)
		if err != nil {
			return err
		}
		if fmt.Sprint(got.Topologies) != fmt.Sprint(want.Topologies) {
			sv.Equivalent = false
		}
	}
	if !sv.Equivalent {
		return fmt.Errorf("survival: post-chaos searcher diverges from fresh rebuild")
	}
	return nil
}

// WriteChaosBench writes the report as indented JSON.
func WriteChaosBench(rep *ChaosBenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintChaosBench renders the report.
func PrintChaosBench(w io.Writer, rep *ChaosBenchReport) {
	o := rep.Overhead
	fmt.Fprintf(w, "injection point: %.2f ns/hit disabled, %.2f ns/hit armed-silent, %.2f ns/hit bound-never-fires\n",
		o.DisabledNsPerHit, o.ArmedNsPerHit, o.BoundNsPerHit)
	fmt.Fprintf(w, "query mix: %.6fs plain vs %.6fs armed registry (%+.1f%%)\n",
		o.SearchPlainSec, o.SearchArmedSec, o.OverheadPct)
	ov := rep.Overload
	fmt.Fprintf(w, "overload burst (%d callers x %d, max_inflight=%d): admitted %d, degraded %d, shed %d; %.3fs bounded vs %.3fs unbounded\n",
		ov.Callers, ov.PerCaller, ov.MaxInflight, ov.Admitted, ov.Degraded, ov.Rejected, ov.BoundedSec, ov.UnboundedSec)
	sv := rep.Survival
	fmt.Fprintf(w, "survival: %d searches, %d batches, %d faults fired, %d typed errors, %d panics contained, equivalent=%v\n",
		sv.Searches, sv.Batches, sv.FaultsFired, sv.TypedErrors, sv.PanicsContained, sv.Equivalent)
	points := make([]string, 0, len(sv.FiredByPoint))
	for p := range sv.FiredByPoint {
		points = append(points, p)
	}
	sort.Strings(points)
	for _, p := range points {
		fmt.Fprintf(w, "  fired %-22s %d\n", p, sv.FiredByPoint[p])
	}
}
