package experiments

import (
	"fmt"
	"io"

	"toposearch/internal/core"
	"toposearch/internal/methods"
	"toposearch/internal/ranking"
)

// VaryKCell is one measurement of the Section 6.2.4 vary-k experiment.
type VaryKCell struct {
	K       int
	Ranking string
	Seconds float64
	Results int
}

// VaryK measures Fast-Top-k-Opt on the Protein-Interaction pair with a
// medium-selectivity query for growing k. The paper reports "a slight
// degradation in performance with increasing k".
func VaryK(env *Env, ks []int, reps int) ([]VaryKCell, error) {
	if len(ks) == 0 {
		ks = []int{1, 10, 50, 100}
	}
	st := env.Store(PairPI)
	p1, err := PredFor(st.T1, "medium")
	if err != nil {
		return nil, err
	}
	p2, err := PredFor(st.T2, "medium")
	if err != nil {
		return nil, err
	}
	var out []VaryKCell
	for _, k := range ks {
		for _, rk := range ranking.Names() {
			q := methods.Query{Pred1: p1, Pred2: p2, K: k, Ranking: rk}
			var res methods.QueryResult
			sec, err := Measure(reps, func() error {
				var runErr error
				res, runErr = st.FastTopKOpt(q)
				return runErr
			})
			if err != nil {
				return nil, err
			}
			out = append(out, VaryKCell{K: k, Ranking: rk, Seconds: sec, Results: len(res.Items)})
		}
	}
	return out, nil
}

// PrintVaryK renders the vary-k measurements.
func PrintVaryK(w io.Writer, cells []VaryKCell) {
	fmt.Fprintf(w, "%-6s %-8s %10s %8s\n", "k", "ranking", "seconds", "results")
	for _, c := range cells {
		fmt.Fprintf(w, "%-6d %-8s %10.4f %8d\n", c.K, c.Ranking, c.Seconds, c.Results)
	}
}

// InstanceCell measures retrieving the instances of one topology
// (Section 6.2.4: "1-50 seconds depending on the frequency of the
// topology").
type InstanceCell struct {
	TID       core.TopologyID
	Freq      int
	Pairs     int
	Seconds   float64
	Witnessed bool
}

// InstanceRetrieval measures, for a spread of topology frequencies on
// the Protein-DNA pair, the cost of listing the topology's instance
// pairs and materializing a witness subgraph for the first pair.
func InstanceRetrieval(env *Env, topologies int) ([]InstanceCell, error) {
	st := env.Store(PairPD)
	pd := st.Res.Pair(PairPD[0], PairPD[1])
	ids, freqs := pd.FrequencyRank()
	if len(ids) == 0 {
		return nil, fmt.Errorf("experiments: no topologies for PD")
	}
	// Sample across the frequency range: take evenly spaced ranks.
	var picks []int
	if topologies >= len(ids) {
		for i := range ids {
			picks = append(picks, i)
		}
	} else {
		for i := 0; i < topologies; i++ {
			picks = append(picks, i*(len(ids)-1)/max1(topologies-1))
		}
	}
	var out []InstanceCell
	for _, rank := range picks {
		tid := ids[rank]
		var n int
		var witnessed bool
		sec, err := Measure(1, func() error {
			inst := st.Res.Instances(PairPD[0], PairPD[1], tid)
			n = len(inst)
			if n > 0 {
				_, witnessed = core.WitnessFor(env.G, st.Res.Reg,
					inst[0][0], inst[0][1], tid, st.Cfg.Opts)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, InstanceCell{
			TID: tid, Freq: freqs[rank], Pairs: n, Seconds: sec, Witnessed: witnessed,
		})
	}
	return out, nil
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}

// PrintInstanceRetrieval renders the measurements.
func PrintInstanceRetrieval(w io.Writer, cells []InstanceCell) {
	fmt.Fprintf(w, "%-6s %-8s %-8s %10s %10s\n", "TID", "freq", "pairs", "seconds", "witnessed")
	for _, c := range cells {
		fmt.Fprintf(w, "%-6d %-8d %-8d %10.5f %10v\n", c.TID, c.Freq, c.Pairs, c.Seconds, c.Witnessed)
	}
}
