package experiments

// This file is the speculative early-termination benchmark: the ET
// methods measured across speculation widths on an unselective query —
// one whose predicates qualify few entity pairs, so the sequential DGJ
// stack crawls deep into the score-ordered group stream before k
// witnesses appear. That crawl is exactly what speculation parallelizes;
// cmd/benchtab -exp benchet writes BENCH_et.json so the ET-latency
// trajectory is tracked release over release. Every speculative
// measurement is verified byte-identical (items AND useful-work
// counters) to the sequential run before it is reported.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"toposearch/internal/methods"
	"toposearch/internal/ranking"
	"toposearch/internal/relstore"
)

// ETBenchRow is one measurement: one ET method and DGJ variant at one
// speculation width.
type ETBenchRow struct {
	Method string `json:"method"`
	// Variant names the middle join of the DGJ stack: "idgj" (index
	// nested loops; per-group cost follows the Zipfian topology
	// frequencies) or "hdgj" (group hash join; every group rescans the
	// inner entity table, so per-group cost is uniform).
	Variant     string  `json:"variant"`
	Speculation int     `json:"speculation"`
	Seconds     float64 `json:"seconds"`
	Results     int     `json:"results"`
	// UsefulWork is the committed work (rows scanned + index probes);
	// identical across speculation widths by construction.
	UsefulWork int64 `json:"useful_work"`
	// WastedWork is the work burned by losing speculative segment
	// workers (0 for the sequential run).
	WastedWork int64 `json:"wasted_work"`
	// CriticalPathWork is the slowest segment's share of the useful
	// work (plus the boundary replay): the machine-independent lower
	// bound of the racing phase's latency. Dividing UsefulWork by it
	// gives the ET speedup available once the host has one core per
	// segment.
	CriticalPathWork int64 `json:"critical_path_work"`
	// SpeedupWork is UsefulWork / CriticalPathWork: the deterministic
	// latency reduction speculation exposes at this width.
	SpeedupWork float64 `json:"speedup_work"`
	// SpeedupVs1 is the sequential (speculation=1) wall time divided by
	// this row's wall time; on hosts with fewer cores than segments it
	// trails SpeedupWork (the committed report records GOMAXPROCS).
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// ETBenchReport is the file-level shape of BENCH_et.json.
type ETBenchReport struct {
	Scale      int          `json:"scale"`
	Seed       int64        `json:"seed"`
	Pair       [2]string    `json:"pair"`
	K          int          `json:"k"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Note       string       `json:"note"`
	Rows       []ETBenchRow `json:"rows"`
}

// BenchET measures the early-termination methods on the
// Protein-Interaction pair in the regime where sequential ET is at its
// worst: a medium predicate on the protein side and a needle predicate
// on the interaction side (one matching entity), so almost no entity
// pair qualifies and the DGJ stack crawls essentially the whole
// score-ordered group stream before terminating. This is the
// unselective-answer tail-latency case the comparative tool
// evaluations flag: the query returns next to nothing but costs the
// most. Speculation splits exactly that crawl across the given widths.
// Each speculative run is checked byte-identical to the sequential one
// (items and useful-work counters) before its timing is reported.
func BenchET(env *Env, k, reps int, widths []int) (*ETBenchReport, error) {
	if len(widths) == 0 {
		widths = []int{1, 2, 4, 8}
	}
	st := env.Store(PairPI)
	p1, err := PredFor(st.T1, "medium")
	if err != nil {
		return nil, err
	}
	// The generator writes "interaction <i>" into each desc, so the
	// bare index token matches exactly one interaction entity.
	p2, err := relstore.Contains(st.T2.Schema, "desc", "17")
	if err != nil {
		return nil, err
	}
	rep := &ETBenchReport{
		Scale: env.Setup.Scale, Seed: env.Setup.Seed, Pair: PairPI, K: k,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Note: "critical_path_work is the slowest racing segment's share of the useful work: " +
			"the deterministic ET-latency bound speculation exposes (speedup_work = useful/critical). " +
			"Wall seconds converge to it once the host has one core per segment; " +
			"every speculative row is verified byte-identical to speculation=1 before being reported.",
	}
	for _, m := range []string{methods.MethodFullTopKET, methods.MethodFastTopKET} {
		for _, variant := range []string{"idgj", "hdgj"} {
			var baseline methods.QueryResult
			var baseSec float64
			for _, w := range widths {
				q := methods.Query{Pred1: p1, Pred2: p2, K: k, Ranking: ranking.Domain,
					UseHDGJ: variant == "hdgj", Speculation: w}
				// One untimed warm-up so the first configurations measured
				// don't absorb heap stabilization after the offline build.
				if _, err := st.Run(m, q); err != nil {
					return nil, fmt.Errorf("experiments: %s/%s at speculation %d: %w", m, variant, w, err)
				}
				var res methods.QueryResult
				sec, err := Measure(reps, func() error {
					var runErr error
					res, runErr = st.Run(m, q)
					return runErr
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: %s/%s at speculation %d: %w", m, variant, w, err)
				}
				if w == widths[0] {
					baseline, baseSec = res, sec
				} else {
					// Equivalence gate: speculation must never change what
					// the query returns or what useful work it reports.
					if got, want := itemsKey(res.Items), itemsKey(baseline.Items); got != want {
						return nil, fmt.Errorf("experiments: %s/%s speculation %d items %s diverge from sequential %s", m, variant, w, got, want)
					}
					if res.Counters != baseline.Counters {
						return nil, fmt.Errorf("experiments: %s/%s speculation %d counters %+v diverge from sequential %+v", m, variant, w, res.Counters, baseline.Counters)
					}
				}
				row := ETBenchRow{
					Method:           m,
					Variant:          variant,
					Speculation:      w,
					Seconds:          sec,
					Results:          len(res.Items),
					UsefulWork:       res.Counters.Work(),
					WastedWork:       res.Spec.Wasted.Work(),
					CriticalPathWork: res.Spec.CriticalPath.Work(),
				}
				if row.CriticalPathWork > 0 {
					// The ET portion's deterministic latency bound. For
					// fast-top-k-et the sequential pruned-topology merge
					// rides on top in both columns, so the ratio uses the
					// ET work only.
					row.SpeedupWork = float64(baseline.Spec.CriticalPath.Work()) / float64(row.CriticalPathWork)
				}
				if sec > 0 {
					row.SpeedupVs1 = baseSec / sec
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

func itemsKey(items []methods.Item) string {
	s := ""
	for _, it := range items {
		s += fmt.Sprintf("%d:%d ", it.TID, it.Score)
	}
	return s
}

// WriteETBench writes the report as indented JSON to path.
func WriteETBench(rep *ETBenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintETBench renders the report as a speculation-width table, one
// row per method and DGJ variant: wall seconds per width, the
// deterministic work speedup at the widest setting, and the wasted
// work there.
func PrintETBench(w io.Writer, rep *ETBenchReport) {
	byKey := map[string][]ETBenchRow{}
	var order []string
	for _, r := range rep.Rows {
		key := r.Method + "/" + r.Variant
		if len(byKey[key]) == 0 {
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], r)
	}
	fmt.Fprintf(w, "%-22s", "method/variant")
	if len(order) > 0 {
		for _, r := range byKey[order[0]] {
			fmt.Fprintf(w, "  s=%-8d", r.Speculation)
		}
	}
	fmt.Fprintf(w, "  work-speedup@max  wasted@max  results\n")
	for _, key := range order {
		rows := byKey[key]
		fmt.Fprintf(w, "%-22s", key)
		for _, r := range rows {
			fmt.Fprintf(w, "  %8.4fs", r.Seconds)
		}
		last := rows[len(rows)-1]
		fmt.Fprintf(w, "  %15.2fx  %10d  %7d\n", last.SpeedupWork, last.WastedWork, last.Results)
	}
	fmt.Fprintf(w, "(gomaxprocs %d; work-speedup = useful work / slowest racing segment's share)\n", rep.GoMaxProcs)
}
