package experiments

// This file is the serving-layer load benchmark: the BENCH_serve.json
// counterpart of the engine sweeps. It boots a toposerve daemon
// in-process on a loopback listener, replays the recorded query mix
// over real HTTP at fixed target rates (open loop: requests launch on
// the pacer's schedule whether or not earlier ones returned, so
// queueing shows up in the tail), and reports end-to-end latency
// percentiles per rate. A final unpaced burst drives the searcher past
// its admission bounds to demonstrate 429 shedding under saturation.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"toposearch"
	"toposearch/internal/biozon"
	"toposearch/internal/serve"
)

// ServeBenchRow is one paced phase of the load sweep.
type ServeBenchRow struct {
	TargetQPS   float64 `json:"target_qps"`
	Requests    int     `json:"requests"`
	AchievedQPS float64 `json:"achieved_qps"`
	// End-to-end client-observed latency percentiles, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
	// OK counts 200s; Shed counts 429 admission rejections; Errors is
	// everything else (0 on a healthy run).
	OK     int `json:"ok"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`
}

// ServeBenchBurst summarizes the saturation phase: an unpaced wave of
// concurrent requests against the searcher's admission bounds.
type ServeBenchBurst struct {
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`
	OK          int `json:"ok"`
	Shed        int `json:"shed"`
	// Deadlined counts admitted requests the 504 deadline cut ended:
	// the burst query (the SQL strawman, far slower than its 2s budget)
	// exists to hold admission slots, so every admitted one deadlines.
	Deadlined int `json:"deadlined"`
	Errors    int `json:"errors"`
}

// ServeBenchReport is the file-level shape of BENCH_serve.json.
type ServeBenchReport struct {
	Scale       int             `json:"scale"`
	Seed        int64           `json:"seed"`
	Pair        [2]string       `json:"pair"`
	Note        string          `json:"note"`
	Mix         []string        `json:"mix"`
	MaxInflight int             `json:"max_inflight"`
	MaxQueue    int             `json:"max_queue"`
	Rows        []ServeBenchRow `json:"rows"`
	Burst       ServeBenchBurst `json:"burst"`
}

const serveNote = "Open-loop HTTP load against an in-process toposerve daemon: the recorded " +
	"query mix fires at each target rate regardless of completions, so admission queueing " +
	"shows up in the p95/p99 tail. The burst phase launches one unpaced wave of slot-holding " +
	"SQL-strawman queries far past MaxInflight+MaxQueue; its shed count is the " +
	"429/Retry-After surface under saturation, and the admitted few end in the 504 deadline cut."

// serveBenchMix renders the cache benchmark's recorded query mix into
// wire-form request bodies, so the daemon serves exactly the queries
// the engine benchmarks replay.
func serveBenchMix() (names []string, bodies [][]byte, err error) {
	for _, it := range cacheQueryMix() {
		req := serve.SearchRequest{
			K:       it.Q.K,
			Ranking: it.Q.Ranking,
			Method:  it.Q.Method,
		}
		for _, c := range it.Q.Cons1 {
			req.Cons1 = append(req.Cons1, serve.Constraint{Column: c.Column, Keyword: c.Keyword, Equals: c.Equals})
		}
		for _, c := range it.Q.Cons2 {
			req.Cons2 = append(req.Cons2, serve.Constraint{Column: c.Column, Keyword: c.Keyword, Equals: c.Equals})
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, nil, err
		}
		names = append(names, it.Name)
		bodies = append(bodies, b)
	}
	return names, bodies, nil
}

// percentileMs picks the q-th percentile (0..1) of sorted latencies,
// in milliseconds.
func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// BenchServe boots the daemon and runs the load sweep. reps scales the
// per-rate request budget; scale/seed size the synthetic database.
func BenchServe(ctx context.Context, scale int, seed int64, reps int) (*ServeBenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	db, err := toposearch.Synthetic(scale, seed)
	if err != nil {
		return nil, err
	}
	const maxInflight, maxQueue = 8, 16
	sv, err := serve.New(serve.Config{
		DB: db,
		Searcher: toposearch.SearcherConfig{
			MaxLen: 3, PruneThreshold: 8, MaxCombinations: 4096,
			MaxInflight: maxInflight, MaxQueue: maxQueue,
			QueueTimeout: 10 * time.Millisecond,
		},
		Log: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = sv.Shutdown(sctx)
	}()
	if err := sv.Warm(ctx, toposearch.Protein, toposearch.DNA); err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: sv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}

	names, bodies, err := serveBenchMix()
	if err != nil {
		return nil, err
	}
	rep := &ServeBenchReport{
		Scale: scale, Seed: seed,
		Pair: [2]string{toposearch.Protein, toposearch.DNA},
		Note: serveNote, Mix: names,
		MaxInflight: maxInflight, MaxQueue: maxQueue,
	}

	// fire posts one search and classifies the outcome.
	fire := func(body []byte) (time.Duration, int) {
		t0 := time.Now()
		resp, err := client.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
		if err != nil {
			return time.Since(t0), -1
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return time.Since(t0), resp.StatusCode
	}

	// mutationBody stages one growth batch as a /v1/apply JSONL body,
	// exercising the background refresh loop mid-sweep.
	mutationBody := func(i int) []byte {
		p := biozon.BaseProtein + 840000 + i
		d := biozon.BaseDNA + 840000 + i
		return fmt.Appendf(nil,
			`{"entity":"Protein","id":%d,"attrs":{"desc":"serve bench %d %s"}}`+"\n"+
				`{"entity":"DNA","id":%d,"attrs":{"type":"mRNA"}}`+"\n"+
				`{"rel":"encodes","a":%d,"b":%d}`+"\n", p, i, biozon.TokenMedium, d, p, d)
	}

	for _, rate := range []float64{50, 200, 800} {
		n := 120 * reps
		interval := time.Duration(float64(time.Second) / rate)
		var mu sync.Mutex
		var lats []time.Duration
		row := ServeBenchRow{TargetQPS: rate, Requests: n}
		var wg sync.WaitGroup
		start := time.Now()
		tick := time.NewTicker(interval)
		for i := 0; i < n; i++ {
			if i > 0 {
				select {
				case <-tick.C:
				case <-ctx.Done():
					tick.Stop()
					return nil, ctx.Err()
				}
			}
			if i == n/2 {
				// One mutation batch mid-phase: the background loop folds
				// it in while the paced load keeps arriving.
				resp, err := client.Post(base+"/v1/apply", "application/x-ndjson",
					bytes.NewReader(mutationBody(int(rate))))
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				lat, code := fire(bodies[i%len(bodies)])
				mu.Lock()
				defer mu.Unlock()
				lats = append(lats, lat)
				switch {
				case code == http.StatusOK:
					row.OK++
				case code == http.StatusTooManyRequests:
					row.Shed++
				default:
					row.Errors++
				}
			}(i)
		}
		tick.Stop()
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		row.AchievedQPS = float64(n) / elapsed
		row.P50Ms = percentileMs(lats, 0.50)
		row.P95Ms = percentileMs(lats, 0.95)
		row.P99Ms = percentileMs(lats, 0.99)
		row.MaxMs = percentileMs(lats, 1.00)
		rep.Rows = append(rep.Rows, row)
	}

	// Saturation burst: one unpaced wave far past the admission bounds.
	// The burst runs the SQL strawman under a 2s deadline: the deadline
	// routes it around the result cache, and the strawman (seconds of
	// execution at any scale) holds every admission slot for the full
	// budget, so the bounded queue fills and the excess sheds with 429
	// while the admitted few end in the documented 504 deadline cut.
	// Nothing may fail untyped.
	burstBody, err := json.Marshal(serve.SearchRequest{K: 5, Method: "sql", TimeoutMs: 2000})
	if err != nil {
		return nil, err
	}
	burstBodies := [][]byte{burstBody}
	burst := ServeBenchBurst{Concurrency: 512}
	burst.Requests = burst.Concurrency
	var bmu sync.Mutex
	var bwg sync.WaitGroup
	for i := 0; i < burst.Concurrency; i++ {
		bwg.Add(1)
		go func(i int) {
			defer bwg.Done()
			_, code := fire(burstBodies[i%len(burstBodies)])
			bmu.Lock()
			defer bmu.Unlock()
			switch code {
			case http.StatusOK:
				burst.OK++
			case http.StatusTooManyRequests:
				burst.Shed++
			case http.StatusGatewayTimeout:
				burst.Deadlined++
			default:
				burst.Errors++
			}
		}(i)
	}
	bwg.Wait()
	rep.Burst = burst
	return rep, nil
}

// WriteServeBench writes BENCH_serve.json.
func WriteServeBench(rep *ServeBenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintServeBench prints the sweep as a table.
func PrintServeBench(w io.Writer, rep *ServeBenchReport) {
	fmt.Fprintf(w, "serving load sweep (scale %d, %s-%s, admission %d/%d):\n",
		rep.Scale, rep.Pair[0], rep.Pair[1], rep.MaxInflight, rep.MaxQueue)
	fmt.Fprintf(w, "%12s %10s %10s %10s %10s %10s %6s %6s %6s\n",
		"target_qps", "achieved", "p50_ms", "p95_ms", "p99_ms", "max_ms", "ok", "shed", "err")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%12.0f %10.1f %10.2f %10.2f %10.2f %10.2f %6d %6d %6d\n",
			r.TargetQPS, r.AchievedQPS, r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs, r.OK, r.Shed, r.Errors)
	}
	fmt.Fprintf(w, "burst: %d concurrent -> %d ok, %d shed (429), %d deadlined (504), %d errors\n",
		rep.Burst.Concurrency, rep.Burst.OK, rep.Burst.Shed, rep.Burst.Deadlined, rep.Burst.Errors)
}
