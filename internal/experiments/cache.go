package experiments

// This file is the result-cache benchmark: the BENCH_cache.json
// counterpart of the online and update sweeps. It measures the
// generation-tagged query result cache end to end through the public
// Searcher — hit latency against the full execution cost a miss pays,
// the hit ratio a mutating workload sustains when Refresh carries
// footprint-disjoint entries across generations instead of flushing —
// and verifies every cached answer row-identical against a cache-off
// searcher on the same database.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"toposearch"
	"toposearch/internal/biozon"
)

// CacheBenchRow is one query of the repeated-query mix.
type CacheBenchRow struct {
	Query string `json:"query"`
	// MissSec is the full execution cost a cache miss pays (measured on
	// the cache-off searcher, fastest of reps).
	MissSec float64 `json:"miss_sec"`
	// ColdSec is the first cached run: execution + footprint + store.
	ColdSec float64 `json:"cold_sec"`
	// HitSec is a warm cached lookup (fastest of many).
	HitSec float64 `json:"hit_sec"`
	// Speedup is miss_sec / hit_sec.
	Speedup float64 `json:"speedup"`
	// Topologies is the result size; Equivalent asserts the cached rows
	// equal the cache-off searcher's.
	Topologies int  `json:"topologies"`
	Equivalent bool `json:"equivalent"`
}

// CacheBenchWorkload summarizes the mutating phase: searches randomly
// interleaved with insert batches and refreshes on both searchers.
type CacheBenchWorkload struct {
	Searches int `json:"searches"`
	Batches  int `json:"batches"`
	// Counter deltas over the phase (see methods.CacheStats).
	Hits           int64   `json:"hits"`
	Misses         int64   `json:"misses"`
	HitRatio       float64 `json:"hit_ratio"`
	CarriedForward int64   `json:"carried_forward"`
	Invalidated    int64   `json:"invalidated"`
	Flushes        int64   `json:"flushes"`
	Evictions      int64   `json:"evictions"`
	// Resident set after the final refresh.
	Entries       int   `json:"entries"`
	ResidentBytes int64 `json:"resident_bytes"`
	// Equivalent asserts every search of the phase matched the cache-off
	// searcher row for row.
	Equivalent bool `json:"equivalent"`
}

// CacheBenchReport is the file-level shape of BENCH_cache.json.
type CacheBenchReport struct {
	Scale    int                `json:"scale"`
	Seed     int64              `json:"seed"`
	Pair     [2]string          `json:"pair"`
	Note     string             `json:"note"`
	Rows     []CacheBenchRow    `json:"rows"`
	// Mix aggregates: one pass over the whole query mix executed cold
	// versus answered warm, and their ratio.
	MixMissSec float64            `json:"mix_miss_sec"`
	MixHitSec  float64            `json:"mix_hit_sec"`
	MixSpeedup float64            `json:"mix_speedup"`
	Workload   CacheBenchWorkload `json:"workload"`
}

const cacheNote = "miss_sec is the cache-off execution cost, hit_sec a warm lookup on the " +
	"cached searcher; every cached answer is verified row-identical to the cache-off " +
	"searcher. The workload interleaves the query mix with insert batches (growth, " +
	"entity-only, parallel-duplicate edges) and refreshes: frontier-scoped invalidation " +
	"carries footprint-disjoint entries across generations (carried_forward), so the hit " +
	"ratio survives mutation instead of resetting per batch."

// cacheQueryMix is the repeated-query mix: the paper's selectivity
// levels crossed with rankings and methods, mirroring the randomized
// equivalence harness's pool.
func cacheQueryMix() []struct {
	Name string
	Q    toposearch.SearchQuery
} {
	kw := func(tok string) []toposearch.Constraint {
		return []toposearch.Constraint{{Column: "desc", Keyword: tok}}
	}
	return []struct {
		Name string
		Q    toposearch.SearchQuery
	}{
		{"all-topologies", toposearch.SearchQuery{}},
		{"top5-domain", toposearch.SearchQuery{K: 5}},
		{"top3-freq", toposearch.SearchQuery{K: 3, Ranking: toposearch.RankFreq}},
		{"top10-et-selective", toposearch.SearchQuery{K: 10, Method: "full-top-k-et", Cons1: kw(biozon.TokenSelective)}},
		{"top5-medium-mrna", toposearch.SearchQuery{K: 5, Cons1: kw(biozon.TokenMedium),
			Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}}}},
		{"fasttop-unselective", toposearch.SearchQuery{Method: "fast-top", Cons2: kw(biozon.TokenUnselective)}},
		{"top8-rare-selective", toposearch.SearchQuery{K: 8, Ranking: toposearch.RankRare, Cons1: kw(biozon.TokenSelective)}},
	}
}

// cacheGrowthBatch stages one growth unit: a fresh protein/DNA/unigene
// triangle plus links into existing hub entities, returning the new
// protein-DNA edge so later batches can duplicate it.
func cacheGrowthBatch(i int) ([]toposearch.Update, [2]int64) {
	p := int64(biozon.BaseProtein + 810000 + i)
	d := int64(biozon.BaseDNA + 810000 + i)
	u := int64(biozon.BaseUnigene + 810000 + i)
	return []toposearch.Update{
		toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": fmt.Sprintf("cache bench protein %d %s", i, biozon.TokenMedium)}),
		toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "mRNA", "desc": fmt.Sprintf("cache bench dna %d %s", i, biozon.TokenUnselective)}),
		toposearch.InsertEntity(toposearch.Unigene, u, map[string]string{"desc": fmt.Sprintf("cache bench cluster %d", i)}),
		toposearch.InsertRelationship(biozon.RelEncodes, p, d),
		toposearch.InsertRelationship(biozon.RelUniEncodes, u, p),
		toposearch.InsertRelationship(biozon.RelUniContains, u, d),
		toposearch.InsertRelationship(biozon.RelEncodes, p, int64(biozon.BaseDNA+i%29)),
	}, [2]int64{p, d}
}

// BenchCache builds its own synthetic database with two searchers —
// the default cached one and a cache-off oracle — and runs both phases.
// reps is the fastest-of repetition count for the miss-cost timings.
func BenchCache(ctx context.Context, scale int, seed int64, reps int) (*CacheBenchReport, error) {
	db, err := toposearch.Synthetic(scale, seed)
	if err != nil {
		return nil, err
	}
	cfg := toposearch.DefaultSearcherConfig()
	cached, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		return nil, err
	}
	ucfg := cfg
	ucfg.CacheBytes = -1
	uncached, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, ucfg)
	if err != nil {
		return nil, err
	}
	rep := &CacheBenchReport{
		Scale: scale, Seed: seed,
		Pair: [2]string{toposearch.Protein, toposearch.DNA},
		Note: cacheNote,
	}
	mix := cacheQueryMix()

	// Phase 1: repeated-query mix. Miss cost on the oracle, cold + warm
	// on the cached searcher, row equivalence between the two.
	for _, cq := range mix {
		var oracle *toposearch.SearchResult
		missSec, err := Measure(reps, func() error {
			var e error
			oracle, e = uncached.SearchContext(ctx, cq.Q)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: benchcache %s (uncached): %w", cq.Name, err)
		}
		start := time.Now()
		cres, err := cached.SearchContext(ctx, cq.Q)
		if err != nil {
			return nil, fmt.Errorf("experiments: benchcache %s (cold): %w", cq.Name, err)
		}
		coldSec := time.Since(start).Seconds()
		if cres.CacheHit {
			return nil, fmt.Errorf("experiments: benchcache %s: first run reported a cache hit", cq.Name)
		}
		hitSec, err := Measure(20*reps, func() error {
			var e error
			cres, e = cached.SearchContext(ctx, cq.Q)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: benchcache %s (warm): %w", cq.Name, err)
		}
		if !cres.CacheHit {
			return nil, fmt.Errorf("experiments: benchcache %s: warm run missed the cache", cq.Name)
		}
		row := CacheBenchRow{
			Query:      cq.Name,
			MissSec:    missSec,
			ColdSec:    coldSec,
			HitSec:     hitSec,
			Topologies: len(cres.Topologies),
			Equivalent: fmt.Sprint(cres.Topologies) == fmt.Sprint(oracle.Topologies),
		}
		if hitSec > 0 {
			row.Speedup = missSec / hitSec
		}
		rep.Rows = append(rep.Rows, row)
		if !row.Equivalent {
			return rep, fmt.Errorf("experiments: benchcache %s: cached result diverged from cache-off execution", cq.Name)
		}
		rep.MixMissSec += missSec
		rep.MixHitSec += hitSec
	}
	if rep.MixHitSec > 0 {
		rep.MixSpeedup = rep.MixMissSec / rep.MixHitSec
	}

	// Phase 2: mutating workload. Deterministically interleave searches
	// with growth / entity-only / duplicate-edge batches, refreshing both
	// searchers after each batch, and verify every answer against the
	// oracle. The counter deltas over this phase are the headline
	// numbers: hit ratio sustained under mutation and entries carried
	// across generations by frontier-scoped invalidation.
	base := cached.CacheStats()
	rng := rand.New(rand.NewSource(seed*31 + 7))
	wl := &rep.Workload
	wl.Equivalent = true
	lastEdge := [2]int64{}
	growth := 0
	for round := 0; round < 8; round++ {
		for i := 0; i < 6; i++ {
			cq := mix[rng.Intn(len(mix))]
			cres, err := cached.SearchContext(ctx, cq.Q)
			if err != nil {
				return rep, err
			}
			oracle, err := uncached.SearchContext(ctx, cq.Q)
			if err != nil {
				return rep, err
			}
			wl.Searches++
			if fmt.Sprint(cres.Topologies) != fmt.Sprint(oracle.Topologies) {
				wl.Equivalent = false
				return rep, fmt.Errorf("experiments: benchcache workload: %s diverged at round %d", cq.Name, round)
			}
		}
		// Batch kinds rotate deterministically so every invalidation
		// regime shows up in the counters: growth (frontier-scoped
		// invalidation), parallel duplicates (entries carried forward),
		// entity-only (generation survives, cache stays fully warm).
		var batch []toposearch.Update
		switch kind := round % 3; {
		case kind == 1 && lastEdge != [2]int64{}:
			// Parallel duplicate: same endpoints, one more edge. The
			// path-class signatures are unchanged, so the refresh carries
			// every cache entry forward.
			batch = []toposearch.Update{toposearch.InsertRelationship(biozon.RelEncodes, lastEdge[0], lastEdge[1])}
		case kind == 2:
			// Entity-only: topology tables cannot change; the generation
			// tag survives and the cache stays fully warm.
			batch = []toposearch.Update{toposearch.InsertEntity(toposearch.Protein,
				int64(biozon.BaseProtein+820000+round), map[string]string{"desc": fmt.Sprintf("cache bench lone %d", round)})}
		default:
			batch, lastEdge = cacheGrowthBatch(growth)
			growth++
		}
		if err := db.ApplyBatch(batch); err != nil {
			return rep, err
		}
		if _, err := cached.RefreshContext(ctx); err != nil {
			return rep, err
		}
		if _, err := uncached.RefreshContext(ctx); err != nil {
			return rep, err
		}
		wl.Batches++
	}
	// Final sweep over the whole mix against the last generation.
	for _, cq := range mix {
		cres, err := cached.SearchContext(ctx, cq.Q)
		if err != nil {
			return rep, err
		}
		oracle, err := uncached.SearchContext(ctx, cq.Q)
		if err != nil {
			return rep, err
		}
		wl.Searches++
		if fmt.Sprint(cres.Topologies) != fmt.Sprint(oracle.Topologies) {
			wl.Equivalent = false
			return rep, fmt.Errorf("experiments: benchcache workload: %s diverged in the final sweep", cq.Name)
		}
	}
	stats := cached.CacheStats()
	wl.Hits = stats.Hits - base.Hits
	wl.Misses = stats.Misses - base.Misses
	if n := wl.Hits + wl.Misses; n > 0 {
		wl.HitRatio = float64(wl.Hits) / float64(n)
	}
	wl.CarriedForward = stats.CarriedForward - base.CarriedForward
	wl.Invalidated = stats.Invalidated - base.Invalidated
	wl.Flushes = stats.Flushes - base.Flushes
	wl.Evictions = stats.Evictions - base.Evictions
	wl.Entries = stats.Entries
	wl.ResidentBytes = stats.Bytes
	cached.Close()
	uncached.Close()
	return rep, nil
}

// WriteCacheBench writes the report as indented JSON to path.
func WriteCacheBench(rep *CacheBenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintCacheBench renders the report.
func PrintCacheBench(w io.Writer, rep *CacheBenchReport) {
	fmt.Fprintf(w, "%-22s %12s %12s %12s %10s %6s %6s\n",
		"query", "miss s", "cold s", "hit s", "speedup", "tops", "equal")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%-22s %12.6f %12.6f %12.9f %9.0fx %6d %6v\n",
			r.Query, r.MissSec, r.ColdSec, r.HitSec, r.Speedup, r.Topologies, r.Equivalent)
	}
	fmt.Fprintf(w, "mix: %.6fs cold vs %.9fs warm = %.0fx\n",
		rep.MixMissSec, rep.MixHitSec, rep.MixSpeedup)
	wl := rep.Workload
	fmt.Fprintf(w, "workload: %d searches over %d batches: %d hits / %d misses (ratio %.2f), "+
		"%d carried forward, %d invalidated, %d flushes, %d evictions, %d entries (%d bytes) resident, equivalent=%v\n",
		wl.Searches, wl.Batches, wl.Hits, wl.Misses, wl.HitRatio,
		wl.CarriedForward, wl.Invalidated, wl.Flushes, wl.Evictions, wl.Entries, wl.ResidentBytes, wl.Equivalent)
}
