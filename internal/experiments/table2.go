package experiments

import (
	"fmt"
	"io"
	"sort"

	"toposearch/internal/methods"
	"toposearch/internal/ranking"
)

// Table2Cell is one measurement of the paper's Table 2: one method, one
// (protein, interaction) selectivity combination, one ranking.
type Table2Cell struct {
	Method   string
	Sel1     string // selectivity of the Protein predicate
	Sel2     string // selectivity of the Interaction predicate
	Ranking  string
	Seconds  float64
	Results  int
	Work     int64 // probes + rows scanned, for cost-model validation
	PlanKind string
}

// Table2Options controls the grid run.
type Table2Options struct {
	K          int
	Reps       int
	IncludeSQL bool
	// Methods restricts the run (nil = all nine).
	Methods []string
	// Speculation is the speculative ET width applied to every query
	// (the ET and Opt methods use it; results are identical at any
	// setting, only latency moves).
	Speculation int
}

// Table2 reproduces the paper's Table 2 on the Protein-Interaction
// pair: every method, every selectivity combination, every ranking.
// Methods whose answer does not depend on the ranking (SQL, Full-Top,
// Fast-Top) are measured once per selectivity combination and their
// numbers replicated across rankings, as in the paper.
func Table2(env *Env, opts Table2Options) ([]Table2Cell, error) {
	if opts.K == 0 {
		opts.K = 10
	}
	if opts.Reps == 0 {
		opts.Reps = 3
	}
	ms := opts.Methods
	if ms == nil {
		ms = methods.AllMethods()
	}
	st := env.Store(PairPI)
	var cells []Table2Cell
	for _, sel1 := range SelLevels {
		p1, err := PredFor(st.T1, sel1)
		if err != nil {
			return nil, err
		}
		for _, sel2 := range SelLevels {
			p2, err := PredFor(st.T2, sel2)
			if err != nil {
				return nil, err
			}
			for _, m := range ms {
				if m == methods.MethodSQL && !opts.IncludeSQL {
					continue
				}
				rankIndependent := m == methods.MethodSQL ||
					m == methods.MethodFullTop || m == methods.MethodFastTop
				rks := ranking.Names()
				if rankIndependent {
					rks = rks[:1]
				}
				var base *Table2Cell
				for _, rk := range rks {
					q := methods.Query{Pred1: p1, Pred2: p2, K: opts.K, Ranking: rk,
						Speculation: opts.Speculation}
					if rankIndependent {
						q.K = 0
						q.Ranking = ""
					}
					var res methods.QueryResult
					sec, err := Measure(opts.Reps, func() error {
						var runErr error
						res, runErr = st.Run(m, q)
						return runErr
					})
					if err != nil {
						return nil, fmt.Errorf("table2 %s %s/%s/%s: %w", m, sel1, sel2, rk, err)
					}
					cell := Table2Cell{
						Method: m, Sel1: sel1, Sel2: sel2, Ranking: rk,
						Seconds: sec, Results: len(res.Items),
						Work:     res.Counters.IndexProbes + res.Counters.RowsScanned,
						PlanKind: res.Plan.String(),
					}
					cells = append(cells, cell)
					base = &cell
				}
				if rankIndependent && base != nil {
					for _, rk := range ranking.Names()[1:] {
						dup := *base
						dup.Ranking = rk
						cells = append(cells, dup)
					}
				}
			}
		}
	}
	return cells, nil
}

// PrintTable2 renders the grid in the paper's layout: one block per
// protein selectivity, methods as rows, (interaction selectivity x
// ranking) as columns.
func PrintTable2(w io.Writer, cells []Table2Cell) {
	type key struct{ m, s1, s2, rk string }
	idx := map[key]Table2Cell{}
	var mset []string
	seen := map[string]bool{}
	for _, c := range cells {
		idx[key{c.Method, c.Sel1, c.Sel2, c.Ranking}] = c
		if !seen[c.Method] {
			seen[c.Method] = true
			mset = append(mset, c.Method)
		}
	}
	order := map[string]int{}
	for i, m := range methods.AllMethods() {
		order[m] = i
	}
	sort.Slice(mset, func(i, j int) bool { return order[mset[i]] < order[mset[j]] })

	for _, s1 := range SelLevels {
		fmt.Fprintf(w, "\nprotein=%s\n", s1)
		fmt.Fprintf(w, "%-16s", "interaction:")
		for _, s2 := range SelLevels {
			for _, rk := range ranking.Names() {
				fmt.Fprintf(w, " %11s", s2[:3]+"/"+rk)
			}
		}
		fmt.Fprintln(w)
		for _, m := range mset {
			fmt.Fprintf(w, "%-16s", m)
			for _, s2 := range SelLevels {
				for _, rk := range ranking.Names() {
					if c, ok := idx[key{m, s1, s2, rk}]; ok {
						fmt.Fprintf(w, " %11.4f", c.Seconds)
					} else {
						fmt.Fprintf(w, " %11s", "-")
					}
				}
			}
			fmt.Fprintln(w)
		}
	}
}
