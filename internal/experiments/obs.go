package experiments

// This file is the observability benchmark: the BENCH_obs.json
// counterpart of the telemetry layer. It quantifies what the metrics
// registry and the trace spans cost and verifies what the acceptance
// criteria demand: the per-event price of a counter increment, a
// histogram observation and the disabled gate; the end-to-end query
// cost of recording on vs off; traced results byte-identical to
// untraced ones; and the latency and size of a /metrics scrape.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"toposearch"
	"toposearch/internal/obs"
)

// ObsOverhead is the cost side: what the instruments charge.
type ObsOverhead struct {
	// CounterNsPerOp is one Counter.Inc; HistogramNsPerOp one
	// Histogram.Observe (bucket scan included); GateNsPerOp one
	// obs.Enabled() check that finds recording disabled — the tax every
	// production event site pays for having the instrumentation
	// compiled in.
	CounterNsPerOp   float64 `json:"counter_ns_per_op"`
	HistogramNsPerOp float64 `json:"histogram_ns_per_op"`
	GateNsPerOp      float64 `json:"gate_ns_per_op"`
	// SearchPlainSec / SearchRecordingSec time the same query mix end
	// to end with recording disabled vs enabled (fastest of reps);
	// OverheadPct is their relative difference.
	SearchPlainSec     float64 `json:"search_plain_sec"`
	SearchRecordingSec float64 `json:"search_recording_sec"`
	OverheadPct        float64 `json:"overhead_pct"`
	// SearchTracedSec times the mix with per-query tracing on (and
	// recording on); TraceOverheadPct is relative to SearchRecordingSec.
	SearchTracedSec  float64 `json:"search_traced_sec"`
	TraceOverheadPct float64 `json:"trace_overhead_pct"`
}

// ObsScrape measures GET /metrics after the query mix ran.
type ObsScrape struct {
	// NsPerScrape is one full Prometheus text exposition of the default
	// registry (fastest of reps); Bytes and Series size that exposition.
	NsPerScrape float64 `json:"ns_per_scrape"`
	Bytes       int     `json:"bytes"`
	Series      int     `json:"series"`
	Families    int     `json:"families"`
}

// ObsBenchReport is the file-level shape of BENCH_obs.json.
type ObsBenchReport struct {
	Scale int       `json:"scale"`
	Seed  int64     `json:"seed"`
	Pair  [2]string `json:"pair"`
	Note  string    `json:"note"`
	// TracedIdentical asserts every query of the mix returned
	// byte-identical topologies with and without SearchQuery.Trace,
	// across the speculation/shard settings the mix exercises.
	TracedIdentical bool        `json:"traced_identical"`
	TraceSpans      int         `json:"trace_spans"`
	Overhead        ObsOverhead `json:"overhead"`
	Scrape          ObsScrape   `json:"scrape"`
}

const obsNote = "gate_ns_per_op is the production-mode price of one instrumented event site " +
	"(recording off: a single atomic load); counter/histogram_ns_per_op the price of a live " +
	"instrument during a recording run. The query mix is timed with recording off, on, and " +
	"with per-query tracing, and every traced answer is verified byte-identical to the " +
	"untraced one. The scrape numbers size one GET /metrics over the registry the mix populated."

// BenchObs runs the phases and assembles the report.
func BenchObs(ctx context.Context, scale int, seed int64, reps int) (*ObsBenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	rep := &ObsBenchReport{
		Scale: scale, Seed: seed,
		Pair: [2]string{toposearch.Protein, toposearch.DNA},
		Note: obsNote,
	}

	// Phase 1: instrument micro-costs, on a private registry so the
	// bench series never pollute the default exposition.
	mreg := obs.NewRegistry()
	mc := mreg.Counter("bench_obs_counter_total", "micro bench counter")
	mh := mreg.Histogram("bench_obs_hist_seconds", "micro bench histogram", obs.DefLatencyBuckets())
	const ops = 5_000_000
	start := time.Now()
	for i := 0; i < ops; i++ {
		mc.Inc()
	}
	rep.Overhead.CounterNsPerOp = float64(time.Since(start).Nanoseconds()) / ops
	start = time.Now()
	for i := 0; i < ops; i++ {
		mh.Observe(float64(i%1024) / 1e6)
	}
	rep.Overhead.HistogramNsPerOp = float64(time.Since(start).Nanoseconds()) / ops
	obs.SetEnabled(false)
	sink := int64(0)
	start = time.Now()
	for i := 0; i < ops; i++ {
		if obs.Enabled() {
			sink++
		}
	}
	rep.Overhead.GateNsPerOp = float64(time.Since(start).Nanoseconds()) / ops
	if sink != 0 {
		mc.Add(sink) // keep the loop body observable
	}

	// Phase 2: end-to-end query mix, recording off vs on vs traced.
	db, err := toposearch.Synthetic(scale, seed)
	if err != nil {
		return nil, err
	}
	cfg := toposearch.DefaultSearcherConfig()
	cfg.CacheBytes = -1 // uncached: the mix must execute every time
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, cfg)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	mix := chaosMix()
	runMix := func(trace bool) (time.Duration, error) {
		start := time.Now()
		for _, q := range mix {
			q.Trace = trace
			if _, err := s.SearchContext(ctx, q); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	fastest := func(trace bool) (float64, error) {
		// One untimed warm-up absorbs first-use costs (labeled-series
		// creation, allocator warm-up) that are not steady-state.
		if _, err := runMix(trace); err != nil {
			return 0, err
		}
		best := time.Duration(1<<62 - 1)
		for r := 0; r < reps; r++ {
			d, err := runMix(trace)
			if err != nil {
				return 0, err
			}
			if d < best {
				best = d
			}
		}
		return best.Seconds(), nil
	}
	obs.SetEnabled(false)
	if rep.Overhead.SearchPlainSec, err = fastest(false); err != nil {
		return nil, err
	}
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	if rep.Overhead.SearchRecordingSec, err = fastest(false); err != nil {
		return nil, err
	}
	if rep.Overhead.SearchTracedSec, err = fastest(true); err != nil {
		return nil, err
	}
	if rep.Overhead.SearchPlainSec > 0 {
		rep.Overhead.OverheadPct = 100 * (rep.Overhead.SearchRecordingSec - rep.Overhead.SearchPlainSec) / rep.Overhead.SearchPlainSec
	}
	if rep.Overhead.SearchRecordingSec > 0 {
		rep.Overhead.TraceOverheadPct = 100 * (rep.Overhead.SearchTracedSec - rep.Overhead.SearchRecordingSec) / rep.Overhead.SearchRecordingSec
	}

	// Phase 3: traced answers must be byte-identical to untraced ones.
	rep.TracedIdentical = true
	for _, q := range mix {
		plain, err := s.SearchContext(ctx, q)
		if err != nil {
			return nil, err
		}
		q.Trace = true
		traced, err := s.SearchContext(ctx, q)
		if err != nil {
			return nil, err
		}
		if fmt.Sprint(plain.Topologies) != fmt.Sprint(traced.Topologies) {
			rep.TracedIdentical = false
		}
		if traced.Trace == nil {
			return nil, fmt.Errorf("benchobs: traced query returned no trace")
		}
		rep.TraceSpans += countSpans(traced.Trace)
	}
	if !rep.TracedIdentical {
		return nil, fmt.Errorf("benchobs: traced results diverge from untraced")
	}

	// Phase 4: scrape the registry the mix populated.
	var buf strings.Builder
	best := time.Duration(1<<62 - 1)
	for r := 0; r < reps+2; r++ {
		buf.Reset()
		start := time.Now()
		if err := toposearch.WriteMetricsText(&buf); err != nil {
			return nil, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	rep.Scrape.NsPerScrape = float64(best.Nanoseconds())
	rep.Scrape.Bytes = buf.Len()
	for _, line := range strings.Split(buf.String(), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# TYPE"):
			rep.Scrape.Families++
		case strings.HasPrefix(line, "#"):
		default:
			rep.Scrape.Series++
		}
	}
	return rep, nil
}

// countSpans sizes a trace tree.
func countSpans(sp *toposearch.TraceSpan) int {
	n := 1
	for _, c := range sp.Children() {
		n += countSpans(c)
	}
	return n
}

// WriteObsBench writes the report as indented JSON.
func WriteObsBench(rep *ObsBenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintObsBench renders the report.
func PrintObsBench(w io.Writer, rep *ObsBenchReport) {
	o := rep.Overhead
	fmt.Fprintf(w, "instruments: %.2f ns/op counter, %.2f ns/op histogram, %.2f ns/op disabled gate\n",
		o.CounterNsPerOp, o.HistogramNsPerOp, o.GateNsPerOp)
	fmt.Fprintf(w, "query mix: %.6fs plain vs %.6fs recording (%+.1f%%), %.6fs traced (%+.1f%% over recording)\n",
		o.SearchPlainSec, o.SearchRecordingSec, o.OverheadPct, o.SearchTracedSec, o.TraceOverheadPct)
	fmt.Fprintf(w, "traced answers identical to untraced: %v (%d spans across the mix)\n",
		rep.TracedIdentical, rep.TraceSpans)
	fmt.Fprintf(w, "scrape: %.0f ns for %d bytes, %d series in %d families\n",
		rep.Scrape.NsPerScrape, rep.Scrape.Bytes, rep.Scrape.Series, rep.Scrape.Families)
}
