package experiments

import (
	"fmt"
	"io"

	"toposearch/internal/methods"
)

// Table1 reproduces the paper's Table 1: the space requirements of the
// Full-Top strategy (the AllTops table) against the Fast-Top strategy
// (LeftTops + ExcpTops) for five entity-set pairs, and the ratio. The
// Zipfian frequency distribution makes the ratio small: pruning the few
// most frequent topologies removes most rows.
func Table1(env *Env) []methods.SpaceReport {
	var out []methods.SpaceReport
	for _, pair := range Table1Pairs() {
		out = append(out, env.Store(pair).Space())
	}
	return out
}

// PrintTable1 renders the reports in the paper's layout.
func PrintTable1(w io.Writer, reports []methods.SpaceReport) {
	fmt.Fprintf(w, "%-28s %12s %12s %12s %8s\n",
		"Object pair", "AllTops", "LeftTops", "ExcpTops", "Ratio")
	for _, r := range reports {
		fmt.Fprintf(w, "%-28s %12s %12s %12s %7.1f%%\n",
			r.ES1+" "+r.ES2,
			byteSize(r.AllTopsBytes), byteSize(r.LeftTopsBytes), byteSize(r.ExcpBytes),
			100*r.Ratio)
	}
}

func byteSize(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
