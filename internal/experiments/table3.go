package experiments

import (
	"context"
	"fmt"
	"io"

	"toposearch/internal/core"
	"toposearch/internal/methods"
	"toposearch/internal/ranking"
)

// Table3Result reproduces the paper's Table 3: the space overhead and
// Fast-Top-k-Opt query performance when the path-length bound grows to
// l = 4. The paper observes comparable query times and space, but notes
// that weak relationships make the l=4 precomputation dramatically more
// expensive and dilute topology quality (Section 6.2.3); setting
// UseWeakRules applies the Appendix B pruning it proposes.
type Table3Result struct {
	Space      methods.SpaceReport
	PrecompSec float64
	Cells      []Table2Cell
}

// Table3Options configures the l=4 experiment.
type Table3Options struct {
	K    int
	Reps int
	// UseWeakRules prunes weak schema paths (Appendix B) before
	// computing topologies.
	UseWeakRules bool
	// MaxPathsPerClass caps per-class representatives; weak
	// relationships can have thousands of instance paths per class
	// ("up to 5000 instances relating the end points").
	MaxPathsPerClass int
}

// Table3 builds an l=4 store for the Protein-Interaction pair on the
// environment's database and measures Fast-Top-k-Opt across the
// selectivity grid and rankings. The context cancels the (expensive)
// l=4 precomputation.
func Table3(ctx context.Context, env *Env, opts Table3Options) (*Table3Result, error) {
	if opts.K == 0 {
		opts.K = 10
	}
	if opts.Reps == 0 {
		opts.Reps = 3
	}
	if opts.MaxPathsPerClass == 0 {
		opts.MaxPathsPerClass = 32
	}
	copts := core.Options{
		MaxLen:           4,
		MaxCombinations:  2048,
		MaxPathsPerClass: opts.MaxPathsPerClass,
		Parallelism:      env.Setup.Parallelism,
	}
	if opts.UseWeakRules {
		copts.Weak = core.DefaultWeakRules()
	}
	var st *methods.Store
	precomp, err := Measure(1, func() error {
		var berr error
		st, berr = methods.BuildStoreFromGraph(ctx, env.DB, env.G, env.SG,
			PairPI[0], PairPI[1], methods.StoreConfig{
				Opts:           copts,
				PruneThreshold: env.Setup.PruneThreshold,
				Scores:         ranking.Schemes(),
			})
		return berr
	})
	if err != nil {
		return nil, err
	}
	res := &Table3Result{Space: st.Space(), PrecompSec: precomp}
	for _, sel1 := range SelLevels {
		p1, err := PredFor(st.T1, sel1)
		if err != nil {
			return nil, err
		}
		for _, sel2 := range SelLevels {
			p2, err := PredFor(st.T2, sel2)
			if err != nil {
				return nil, err
			}
			for _, rk := range ranking.Names() {
				q := methods.Query{Pred1: p1, Pred2: p2, K: opts.K, Ranking: rk}
				var qres methods.QueryResult
				sec, err := Measure(opts.Reps, func() error {
					var runErr error
					qres, runErr = st.FastTopKOpt(q)
					return runErr
				})
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, Table2Cell{
					Method: methods.MethodFastTopOpt, Sel1: sel1, Sel2: sel2,
					Ranking: rk, Seconds: sec, Results: len(qres.Items),
					Work:     qres.Counters.IndexProbes + qres.Counters.RowsScanned,
					PlanKind: qres.Plan.String(),
				})
			}
		}
	}
	// The l=4 tables are transient: drop them so the environment's l=3
	// stores remain authoritative.
	for _, kind := range []string{"AllTops", "LeftTops", "ExcpTops", "TopInfo"} {
		env.DB.DropTable(core.TableName(kind, PairPI[0], PairPI[1]))
	}
	// Rebuild the l=3 tables for subsequent experiments.
	st3, err := methods.BuildStoreFromGraph(ctx, env.DB, env.G, env.SG, PairPI[0], PairPI[1],
		methods.StoreConfig{
			Opts: core.Options{
				MaxLen:           env.Setup.L,
				MaxCombinations:  4096,
				MaxPathsPerClass: env.Setup.MaxPathsPerClass,
				Parallelism:      env.Setup.Parallelism,
			},
			PruneThreshold: env.Setup.PruneThreshold,
			Scores:         ranking.Schemes(),
		})
	if err != nil {
		return nil, err
	}
	env.Stores[PairPI] = st3
	return res, nil
}

// PrintTable3 renders the result in the paper's layout.
func PrintTable3(w io.Writer, r *Table3Result) {
	fmt.Fprintf(w, "precomputation: %.2fs\n", r.PrecompSec)
	fmt.Fprintf(w, "space: AllTops %s, LeftTops %s, ExcpTops %s (ratio %.1f%%)\n",
		byteSize(r.Space.AllTopsBytes), byteSize(r.Space.LeftTopsBytes),
		byteSize(r.Space.ExcpBytes), 100*r.Space.Ratio)
	PrintTable2(w, r.Cells)
}
