package experiments

// This file is the live-update benchmark: the BENCH_update.json
// counterpart of the online and storage sweeps, recording how fast the
// mutation subsystem absorbs inserts (rows/sec applied into the delta
// columns + copy-on-write graph) and how incremental Refresh — which
// recomputes only the affected start-node frontier — compares against
// a full offline rebuild over the same grown database. Every round
// also verifies the incremental-vs-rebuild equivalence gate: the four
// precomputed tables must come out byte-identical both ways.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"toposearch/internal/biozon"
	"toposearch/internal/delta"
	"toposearch/internal/graph"
	"toposearch/internal/methods"
	"toposearch/internal/relstore"
)

// UpdateBenchRow is one measured batch.
type UpdateBenchRow struct {
	Kind           string  `json:"kind"`            // growth | parallel-dup
	BatchRows      int     `json:"batch_rows"`      // rows applied (entities + relationships)
	NewEdges       int     `json:"new_edges"`       // relationship rows among them
	ApplyRowsSec   float64 `json:"apply_rows_sec"`  // mutation throughput into the live store
	RefreshSec     float64 `json:"refresh_sec"`     // incremental maintenance latency
	RebuildSec     float64 `json:"rebuild_sec"`     // full offline rebuild latency
	Speedup        float64 `json:"speedup"`         // rebuild_sec / refresh_sec
	AffectedStarts int     `json:"affected_starts"` // start-node frontier recomputed
	TotalStarts    int     `json:"total_starts"`    // start nodes a rebuild enumerates
	Equivalent     bool    `json:"equivalent"`      // tables byte-identical to rebuild
	AllTopsRows    int     `json:"alltops_rows_after"`
	// Materialize records what the diff-aware materializer did per
	// table: reused (carried wholesale), spliced(changed/total), or
	// rebuilt. The output is byte-identical in every mode; the mode is
	// where the refresh latency win comes from.
	Materialize string `json:"materialize"`
}

// UpdateBenchReport is the file-level shape of BENCH_update.json.
type UpdateBenchReport struct {
	Scale int              `json:"scale"`
	Seed  int64            `json:"seed"`
	Pair  [2]string        `json:"pair"`
	Note  string           `json:"note"`
	Rows  []UpdateBenchRow `json:"rows"`
}

const updateNote = "refresh_sec maintains AllTops/LeftTops incrementally (frontier " +
	"recomputation + deterministic merge + diff-aware rematerialize: unchanged row runs " +
	"bulk-copied, only frontier rows re-encoded — see materialize); rebuild_sec runs the " +
	"full offline phase on the same grown database. equivalent asserts the four " +
	"precomputed tables are byte-identical both ways. Batches mutate the environment " +
	"cumulatively."

// updateBatch stages size growth units against the environment's
// database: each unit adds a protein, a DNA and a unigene plus five
// relationships (a fresh triangle and links into existing hubs).
func updateBatch(offset, size int) delta.Batch {
	var b delta.Batch
	for j := 0; j < size; j++ {
		i := offset + j
		p := int64(biozon.BaseProtein + 800000 + i)
		d := int64(biozon.BaseDNA + 800000 + i)
		u := int64(biozon.BaseUnigene + 800000 + i)
		b = append(b,
			delta.Entity(biozon.Protein, p, map[string]string{"desc": fmt.Sprintf("grown protein %d kwsel50", i)}),
			delta.Entity(biozon.DNA, d, map[string]string{"type": "mRNA", "desc": fmt.Sprintf("grown dna %d kwsel85", i)}),
			delta.Entity(biozon.Unigene, u, map[string]string{"desc": fmt.Sprintf("grown cluster %d", i)}),
			delta.Relationship(biozon.RelEncodes, p, d),
			delta.Relationship(biozon.RelUniEncodes, u, p),
			delta.Relationship(biozon.RelUniContains, u, d),
			delta.Relationship(biozon.RelEncodes, p, int64(biozon.BaseDNA+i%37)),
			delta.Relationship(biozon.RelUniEncodes, int64(biozon.BaseUnigene+i%23), int64(biozon.BaseProtein+i%31)),
		)
	}
	return b
}

// dumpTable renders every row of a table (schema order) for
// byte-identity comparison.
func dumpTable(t *relstore.Table) string {
	var sb strings.Builder
	t.Scan(func(pos int32, r relstore.Row) bool {
		fmt.Fprintf(&sb, "%v\n", r)
		return true
	})
	return sb.String()
}

// storesEquivalent compares the four precomputed tables of two store
// generations byte for byte.
func storesEquivalent(a, b *methods.Store) bool {
	return dumpTable(a.AllTops) == dumpTable(b.AllTops) &&
		dumpTable(a.LeftTops) == dumpTable(b.LeftTops) &&
		dumpTable(a.ExcpTops) == dumpTable(b.ExcpTops) &&
		dumpTable(a.TopInfo) == dumpTable(b.TopInfo)
}

// BenchUpdate grows the environment's database in batches of
// increasing size and, for each batch, measures mutation throughput,
// incremental Refresh latency, and the full-rebuild latency on the
// same grown data, verifying table equivalence every round. It
// mutates the environment (cumulatively); run it after the read-only
// experiments.
func BenchUpdate(ctx context.Context, env *Env, reps int, sizes []int) (*UpdateBenchReport, error) {
	if len(sizes) == 0 {
		sizes = []int{1, 4, 16}
	}
	type round struct {
		kind  string
		batch delta.Batch
	}
	var rounds []round
	offset := 0
	for i, size := range sizes {
		rounds = append(rounds, round{"growth", updateBatch(offset, size)})
		offset += size
		if i == 0 {
			// A parallel duplicate of the first growth unit's protein-DNA
			// edge: the path-class signatures it adds already exist, so
			// the topology registry, frequencies and pruning verdicts all
			// survive — the round where the diff-aware materializer gets
			// to carry every table over instead of re-encoding anything.
			p := int64(biozon.BaseProtein + 800000)
			d := int64(biozon.BaseDNA + 800000)
			rounds = append(rounds, round{"parallel-dup",
				delta.Batch{delta.Relationship(biozon.RelEncodes, p, d)}})
		}
	}
	pair := PairPD
	st := env.Store(pair)
	g := env.G
	ap := delta.NewApplier(env.DB, env.SG)
	rep := &UpdateBenchReport{Scale: env.Setup.Scale, Seed: env.Setup.Seed, Pair: pair, Note: updateNote}
	for _, rd := range rounds {
		batch := rd.batch

		var g2 *graph.Graph
		var applied *delta.Applied
		applySec, err := Measure(1, func() error {
			var aerr error
			g2, applied, aerr = ap.Apply(g, batch)
			return aerr
		})
		if err != nil {
			return nil, err
		}

		affected := delta.AffectedStarts(g2, pair[0], st.Cfg.Opts.EffectiveMaxLen(), applied.Edges)

		var refreshed *methods.Store
		var rdiff *methods.RefreshDiff
		refreshSec, err := Measure(reps, func() error {
			var rerr error
			refreshed, rdiff, rerr = st.RefreshDiff(ctx, g2, affected)
			return rerr
		})
		if err != nil {
			return nil, err
		}

		var rebuilt *methods.Store
		rebuildSec, err := Measure(reps, func() error {
			var berr error
			rebuilt, berr = methods.BuildStoreFromGraph(ctx, env.DB, g2, env.SG, pair[0], pair[1], st.Cfg)
			return berr
		})
		if err != nil {
			return nil, err
		}

		t1, _ := g2.NodeTypes.Lookup(pair[0])
		row := UpdateBenchRow{
			Kind:           rd.kind,
			BatchRows:      applied.Rows(),
			NewEdges:       len(applied.Edges),
			ApplyRowsSec:   float64(applied.Rows()) / applySec,
			RefreshSec:     refreshSec,
			RebuildSec:     rebuildSec,
			AffectedStarts: len(affected),
			TotalStarts:    len(g2.NodesOfType(t1)),
			Equivalent:     storesEquivalent(refreshed, rebuilt),
			AllTopsRows:    refreshed.AllTops.NumRows(),
			Materialize: fmt.Sprintf("alltops=%s lefttops=%s excptops=%s topinfo=%s",
				rdiff.AllTops, rdiff.LeftTops, rdiff.ExcpTops, rdiff.TopInfo),
		}
		if refreshSec > 0 {
			row.Speedup = rebuildSec / refreshSec
		}
		rep.Rows = append(rep.Rows, row)
		if !row.Equivalent {
			return rep, fmt.Errorf("experiments: incremental refresh diverged from rebuild on %s batch of %d rows", rd.kind, applied.Rows())
		}

		// Chain the next batch onto the refreshed generation. The catalog
		// currently names the rebuilt store's tables (the last
		// materialization), but they are byte-identical and the refreshed
		// store holds its own table pointers, so the env stays consistent.
		env.Stores[pair] = refreshed
		st, g = refreshed, g2
		env.G = g2
	}
	for _, name := range env.DB.TableNames() {
		env.DB.Table(name).Compact()
	}
	return rep, nil
}

// WriteUpdateBench writes the report as indented JSON to path.
func WriteUpdateBench(rep *UpdateBenchReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PrintUpdateBench renders the report.
func PrintUpdateBench(w io.Writer, rep *UpdateBenchReport) {
	fmt.Fprintf(w, "%-13s %6s %7s %12s %12s %12s %8s %12s %6s  %s\n",
		"kind", "batch", "edges", "apply r/s", "refresh s", "rebuild s", "speedup", "frontier", "equal", "materialize")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%-13s %6d %7d %12.0f %12.6f %12.6f %8.1fx %6d/%-5d %6v  %s\n",
			r.Kind, r.BatchRows, r.NewEdges, r.ApplyRowsSec, r.RefreshSec, r.RebuildSec,
			r.Speedup, r.AffectedStarts, r.TotalStarts, r.Equivalent, r.Materialize)
	}
}
