// Package delta is the live-update subsystem: it stages entity and
// relationship inserts against a running topology-search store,
// validates them against the schema graph, applies them to the
// relational tables (which absorb rows into their delta columns while
// queries keep running) and to a copy-on-write extension of the data
// graph, and keeps the applied-edge log that lets each Searcher
// compute the start-node frontier its next incremental Refresh must
// recompute.
//
// The paper's Fast-Top family assumes a frozen database: the offline
// phase computes AllTops once and every later insert forces a full
// recompute. Real biological databases are continuously curated, so
// this package provides the mutation half of the incremental
// maintenance pipeline; the recomputation half lives in core
// (UpdateResult) and methods (Store.Refresh).
package delta

import (
	"fmt"
	"sync"

	"toposearch/internal/fault"
	"toposearch/internal/graph"
	"toposearch/internal/relstore"
)

// faultApply fires between row inserts of a batch, exercising the
// mid-apply rollback path (chaos harness).
var faultApply = fault.Register("delta.apply")

// Mutation is one staged insert: either a new entity (EntitySet set)
// or a new relationship (Rel set). The zero value is invalid.
type Mutation struct {
	// Entity insert: the entity set, the new globally unique ID, and
	// the string attributes by column name (missing columns default to
	// "").
	EntitySet string
	ID        int64
	Attrs     map[string]string

	// Relationship insert: the relationship-set name and the two
	// endpoint entity IDs. The endpoints must exist (or be inserted
	// earlier in the same batch); when several relationship sets share
	// a name (Biozon's two "interaction" tables) the endpoints' entity
	// sets disambiguate.
	Rel  string
	A, B int64
}

// Entity stages an entity insert.
func Entity(set string, id int64, attrs map[string]string) Mutation {
	return Mutation{EntitySet: set, ID: id, Attrs: attrs}
}

// Relationship stages a relationship insert.
func Relationship(rel string, a, b int64) Mutation {
	return Mutation{Rel: rel, A: a, B: b}
}

func (m Mutation) String() string {
	if m.EntitySet != "" {
		return fmt.Sprintf("entity %s %d", m.EntitySet, m.ID)
	}
	return fmt.Sprintf("rel %s %d-%d", m.Rel, m.A, m.B)
}

// Batch is an ordered list of staged mutations applied atomically:
// Apply validates every mutation up front and touches nothing on the
// first error.
type Batch []Mutation

// Edge records one relationship row applied to the store and graph:
// the relationship-set index (into the schema graph's Rels), the
// assigned tuple ID, and the endpoints. The Refresh path derives the
// affected start-node frontier from these.
type Edge struct {
	RelIdx  int
	TupleID int64
	A, B    graph.NodeID
}

// Applied summarizes one applied batch.
type Applied struct {
	Entities int    // entity rows inserted
	Edges    []Edge // relationship rows inserted, in application order
}

// Rows returns the total number of rows the batch inserted.
func (ap *Applied) Rows() int { return ap.Entities + len(ap.Edges) }

// Applier binds a relational database and its schema graph and applies
// batches to them. It assigns relationship tuple IDs (continuing each
// table's maximum primary key) and performs the copy-on-write graph
// extension. An Applier is not internally synchronized: callers
// serialize Apply externally (the public DB wraps it in the database
// mutation lock). Readers of the tables and of previously published
// graphs are never blocked.
type Applier struct {
	db     *relstore.DB
	sg     *graph.SchemaGraph
	nextID map[string]int64 // relationship table -> next tuple ID
}

// NewApplier returns an applier for the database.
func NewApplier(db *relstore.DB, sg *graph.SchemaGraph) *Applier {
	return &Applier{db: db, sg: sg, nextID: make(map[string]int64)}
}

// resolved is one validated mutation ready to apply.
type resolved struct {
	table *relstore.Table
	row   relstore.Row

	// For relationships:
	relIdx  int
	tupleID int64
	a, b    graph.NodeID

	// For entities:
	entitySet string
	id        graph.NodeID
}

// Apply validates the whole batch against the schema graph, the
// current graph g, and the batch itself; on success it inserts every
// row (the tables absorb them into their delta columns without
// blocking readers), extends a clone of g with the new nodes and
// edges, and returns the clone plus the applied-edge records. On a
// validation error nothing is touched; on a mid-apply failure —
// including a panic out of the store layer — every table the batch
// touched is rolled back to its pre-batch row count, so a batch is
// all-or-nothing even under injected faults. (Rollback is sound
// because the DB serializes Apply against Compact, so the sealed
// watermark cannot advance mid-batch.)
func (ap *Applier) Apply(g *graph.Graph, b Batch) (ng *graph.Graph, applied *Applied, err error) {
	if len(b) == 0 {
		return g, &Applied{}, nil
	}
	// typeOf resolves an entity ID to its set name, consulting both the
	// graph and the entities staged earlier in this batch.
	staged := make(map[int64]string)
	typeOf := func(id int64) (string, bool) {
		if es, ok := staged[id]; ok {
			return es, true
		}
		if t, ok := g.NodeType(graph.NodeID(id)); ok {
			return g.NodeTypes.Name(t), true
		}
		return "", false
	}
	nextID := make(map[string]int64, len(ap.nextID))
	for k, v := range ap.nextID {
		nextID[k] = v
	}
	rs := make([]resolved, 0, len(b))
	for i, m := range b {
		switch {
		case m.EntitySet != "" && m.Rel != "":
			return nil, nil, fmt.Errorf("delta: mutation %d sets both EntitySet and Rel", i)
		case m.EntitySet != "":
			r, err := ap.resolveEntity(m, typeOf)
			if err != nil {
				return nil, nil, fmt.Errorf("delta: mutation %d (%s): %w", i, m, err)
			}
			staged[m.ID] = m.EntitySet
			rs = append(rs, r)
		case m.Rel != "":
			r, err := ap.resolveRel(m, typeOf, nextID)
			if err != nil {
				return nil, nil, fmt.Errorf("delta: mutation %d (%s): %w", i, m, err)
			}
			rs = append(rs, r)
		default:
			return nil, nil, fmt.Errorf("delta: mutation %d is empty", i)
		}
	}

	// Validated: apply. Rows first (readers may see a relationship row
	// before the published graph has its edge; the searcher-visible
	// topology tables change only at Refresh), then the graph clone.
	// Snapshot every touched table's row count first so a mid-apply
	// failure can undo the inserts; the graph clone and nextID map are
	// discarded for free.
	pre := make(map[*relstore.Table]int)
	for _, r := range rs {
		if _, ok := pre[r.table]; !ok {
			pre[r.table] = r.table.NumRows()
		}
	}
	rollback := func(cause error) error {
		for tab, n := range pre {
			if terr := tab.TruncateTo(n); terr != nil {
				return fmt.Errorf("%w (rollback of %s also failed: %v)", cause, tab.Schema.Name, terr)
			}
		}
		return cause
	}
	defer func() {
		if v := recover(); v != nil {
			pe := fault.NewPanicError("delta.apply", v)
			ng, applied = nil, nil
			err = rollback(pe)
		}
	}()
	ng = g.Clone()
	applied = &Applied{}
	for _, r := range rs {
		if err := faultApply.Hit(); err != nil {
			return nil, nil, rollback(fmt.Errorf("delta: applying to %s: %w", r.table.Schema.Name, err))
		}
		if err := r.table.Insert(r.row); err != nil {
			// Unreachable after validation barring concurrent misuse.
			return nil, nil, rollback(fmt.Errorf("delta: applying to %s: %w", r.table.Schema.Name, err))
		}
		if r.entitySet != "" {
			tid, _ := ng.NodeTypes.Lookup(r.entitySet)
			if err := ng.AddNode(r.id, tid); err != nil {
				return nil, nil, rollback(fmt.Errorf("delta: extending graph: %w", err))
			}
			applied.Entities++
			continue
		}
		tid, _ := ng.EdgeTypes.Lookup(ap.sg.Rels[r.relIdx].Name)
		eid := graph.EncodeEdgeID(r.relIdx, r.tupleID)
		if err := ng.AddEdge(eid, r.a, r.b, tid); err != nil {
			return nil, nil, rollback(fmt.Errorf("delta: extending graph: %w", err))
		}
		applied.Edges = append(applied.Edges, Edge{RelIdx: r.relIdx, TupleID: r.tupleID, A: r.a, B: r.b})
	}
	ap.nextID = nextID
	return ng, applied, nil
}

func (ap *Applier) resolveEntity(m Mutation, typeOf func(int64) (string, bool)) (resolved, error) {
	var tab *relstore.Table
	for _, es := range ap.sg.Entities {
		if es.Name == m.EntitySet {
			tab = ap.db.Table(es.Table)
		}
	}
	if tab == nil {
		return resolved{}, fmt.Errorf("unknown entity set %q", m.EntitySet)
	}
	if es, exists := typeOf(m.ID); exists {
		return resolved{}, fmt.Errorf("entity ID %d already exists (in %s)", m.ID, es)
	}
	// Every attribute must name a non-key column of the entity table
	// (the key is set from m.ID, never through Attrs).
	for name := range m.Attrs {
		c, ok := tab.Schema.ColIndex(name)
		if !ok {
			return resolved{}, fmt.Errorf("entity table %q has no attribute %q", tab.Schema.Name, name)
		}
		if c == tab.Schema.KeyCol {
			return resolved{}, fmt.Errorf("entity table %q: the key column %q is set from the mutation's ID, not Attrs", tab.Schema.Name, name)
		}
	}
	row := make(relstore.Row, 0, tab.Schema.NumCols())
	for c, col := range tab.Schema.Cols {
		if c == tab.Schema.KeyCol {
			row = append(row, relstore.IntVal(m.ID))
			continue
		}
		if col.Type != relstore.TString {
			return resolved{}, fmt.Errorf("entity table %q has non-string attribute %q", tab.Schema.Name, col.Name)
		}
		row = append(row, relstore.StrVal(m.Attrs[col.Name]))
	}
	return resolved{table: tab, row: row, entitySet: m.EntitySet, id: graph.NodeID(m.ID)}, nil
}

func (ap *Applier) resolveRel(m Mutation, typeOf func(int64) (string, bool), nextID map[string]int64) (resolved, error) {
	esA, ok := typeOf(m.A)
	if !ok {
		return resolved{}, fmt.Errorf("endpoint %d does not exist", m.A)
	}
	esB, ok := typeOf(m.B)
	if !ok {
		return resolved{}, fmt.Errorf("endpoint %d does not exist", m.B)
	}
	// Resolve the relationship set by name, disambiguated by the
	// endpoints' entity sets; try both orientations.
	relIdx, swapped := -1, false
	named := false
	for i, r := range ap.sg.Rels {
		if r.Name != m.Rel {
			continue
		}
		named = true
		if r.A == esA && r.B == esB {
			if relIdx >= 0 {
				return resolved{}, fmt.Errorf("relationship %q between %s and %s is ambiguous", m.Rel, esA, esB)
			}
			relIdx, swapped = i, false
		} else if r.A == esB && r.B == esA {
			if relIdx >= 0 {
				return resolved{}, fmt.Errorf("relationship %q between %s and %s is ambiguous", m.Rel, esA, esB)
			}
			relIdx, swapped = i, true
		}
	}
	if relIdx < 0 {
		if !named {
			return resolved{}, fmt.Errorf("unknown relationship set %q", m.Rel)
		}
		return resolved{}, fmt.Errorf("relationship %q does not connect %s and %s", m.Rel, esA, esB)
	}
	rel := ap.sg.Rels[relIdx]
	tab := ap.db.Table(rel.Table)
	if tab == nil {
		return resolved{}, fmt.Errorf("relationship table %q not found", rel.Table)
	}
	a, b := m.A, m.B
	if swapped {
		a, b = m.B, m.A
	}
	id, err := ap.claimTupleID(tab, nextID)
	if err != nil {
		return resolved{}, err
	}
	row := make(relstore.Row, tab.Schema.NumCols())
	set := func(col string, v int64) error {
		c, ok := tab.Schema.ColIndex(col)
		if !ok {
			return fmt.Errorf("relationship table %q has no column %q", rel.Table, col)
		}
		row[c] = relstore.IntVal(v)
		return nil
	}
	if tab.Schema.KeyCol >= 0 {
		row[tab.Schema.KeyCol] = relstore.IntVal(id)
	}
	if err := set(rel.ACol, a); err != nil {
		return resolved{}, err
	}
	if err := set(rel.BCol, b); err != nil {
		return resolved{}, err
	}
	return resolved{
		table: tab, row: row,
		relIdx: relIdx, tupleID: id,
		a: graph.NodeID(a), b: graph.NodeID(b),
	}, nil
}

// claimTupleID assigns the next tuple ID for a relationship table,
// initializing the counter from the table's current maximum primary
// key on first use.
func (ap *Applier) claimTupleID(tab *relstore.Table, nextID map[string]int64) (int64, error) {
	name := tab.Schema.Name
	next, ok := nextID[name]
	if !ok {
		if tab.Schema.KeyCol < 0 {
			return 0, fmt.Errorf("relationship table %q has no primary key", name)
		}
		ids := tab.Col(tab.Schema.KeyCol)
		for pos := 0; pos < ids.Len(); pos++ {
			if v := ids.Int(int32(pos)); v >= next {
				next = v + 1
			}
		}
	}
	nextID[name] = next + 1
	return next, nil
}

// Log is the append-only record of applied relationship rows. Each
// Searcher keeps a cursor into it; Refresh reads the edges applied
// since its cursor to derive the affected start-node frontier. The log
// is safe for concurrent use.
//
// Cursors are positions in the logical log, which only ever grows; the
// physical prefix below every live searcher's cursor is reclaimed via
// TruncateBelow (the DB drives this from its registry of searcher
// cursors), so a long-lived store applying continuous batches retains
// only the edges some live searcher still has to absorb.
type Log struct {
	mu    sync.Mutex
	base  int // logical position of edges[0]; entries below are reclaimed
	edges []Edge
}

// Append records an applied batch's edges and returns the new logical
// length.
func (l *Log) Append(edges []Edge) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.edges = append(l.edges, edges...)
	return l.base + len(l.edges)
}

// Len returns the logical length of the log: the number of edges ever
// appended, truncated or not.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + len(l.edges)
}

// Retained returns the number of edge records physically held, i.e.
// not yet reclaimed by TruncateBelow.
func (l *Log) Retained() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.edges)
}

// Since returns the edges appended at or after the cursor, together
// with the cursor value that consumes them. The returned slice is
// shared and must not be mutated. A cursor below the truncation point
// is clamped to it: truncation guarantees no live searcher holds such
// a cursor.
func (l *Log) Since(cursor int) ([]Edge, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cursor -= l.base
	if cursor < 0 {
		cursor = 0
	}
	if cursor > len(l.edges) {
		cursor = len(l.edges)
	}
	return l.edges[cursor:len(l.edges):len(l.edges)], l.base + len(l.edges)
}

// TruncateBelow reclaims every edge record below the logical cursor.
// The caller guarantees no live searcher's cursor is below it. The
// retained tail is copied into a fresh array so the truncated prefix
// becomes collectable; slices previously handed out by Since stay
// valid (they pin the old array until their consumers drop them).
func (l *Log) TruncateBelow(cursor int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := cursor - l.base
	if n <= 0 {
		return
	}
	if n > len(l.edges) {
		n = len(l.edges)
	}
	l.edges = append([]Edge(nil), l.edges[n:]...)
	l.base += n
}

// AffectedStarts computes the start-node frontier an incremental
// AllTops refresh must recompute: every node of entity set es1 from
// which some path of length <= maxLen can traverse one of the new
// edges. Any such path reaches an endpoint of a new edge within
// maxLen-1 steps, so a multi-source BFS of that radius from all new
// endpoints over the updated graph yields a (conservative) superset of
// the changed start nodes; recomputation itself is exact, so the
// overapproximation only costs work, never correctness.
func AffectedStarts(g *graph.Graph, es1 string, maxLen int, edges []Edge) map[graph.NodeID]bool {
	if len(edges) == 0 {
		return nil
	}
	t1, ok := g.NodeTypes.Lookup(es1)
	if !ok {
		return nil
	}
	if maxLen < 1 {
		maxLen = 1
	}
	affected := make(map[graph.NodeID]bool)
	dist := make(map[graph.NodeID]int)
	var frontier []graph.NodeID
	seed := func(n graph.NodeID) {
		if _, ok := dist[n]; !ok {
			dist[n] = 0
			frontier = append(frontier, n)
		}
	}
	for _, e := range edges {
		seed(e.A)
		seed(e.B)
	}
	radius := maxLen - 1
	for d := 0; len(frontier) > 0; d++ {
		var next []graph.NodeID
		for _, n := range frontier {
			if t, ok := g.NodeType(n); ok && t == t1 {
				affected[n] = true
			}
			if d == radius {
				continue
			}
			for _, he := range g.Neighbors(n) {
				if _, seen := dist[he.To]; !seen {
					dist[he.To] = d + 1
					next = append(next, he.To)
				}
			}
		}
		frontier = next
	}
	return affected
}

// RouteStarts partitions an affected start-node frontier across n
// shards through the caller's partition function — the same function
// sharded queries cut their entity ranges with, so a delta batch's
// recompute work lands exactly on the shards whose query windows it
// touches. The returned maps are disjoint and their union is the input
// frontier (shardOf results outside [0, n) clamp to the nearest
// shard), which is what keeps sharded and single-store refreshes
// equivalent: refreshing every shard's share refreshes exactly the
// affected set.
func RouteStarts(affected map[graph.NodeID]bool, n int, shardOf func(graph.NodeID) int) []map[graph.NodeID]bool {
	if n < 1 {
		n = 1
	}
	out := make([]map[graph.NodeID]bool, n)
	for node := range affected {
		s := shardOf(node)
		if s < 0 {
			s = 0
		}
		if s >= n {
			s = n - 1
		}
		if out[s] == nil {
			out[s] = make(map[graph.NodeID]bool)
		}
		out[s][node] = true
	}
	return out
}
