package delta

import (
	"testing"

	"toposearch/internal/graph"
)

func edges(ids ...int64) []Edge {
	out := make([]Edge, len(ids))
	for i, id := range ids {
		out[i] = Edge{RelIdx: 0, TupleID: id, A: graph.NodeID(id), B: graph.NodeID(id + 1)}
	}
	return out
}

// TestLogTruncateBelow pins the logical-cursor contract of the
// applied-edge log: truncation reclaims physical records without
// moving logical positions, Since keeps returning exactly the edges at
// or after a cursor, and cursors below the truncation point clamp to
// it.
func TestLogTruncateBelow(t *testing.T) {
	var l Log
	l.Append(edges(1, 2, 3))
	l.Append(edges(4, 5))
	if l.Len() != 5 || l.Retained() != 5 {
		t.Fatalf("Len/Retained = %d/%d, want 5/5", l.Len(), l.Retained())
	}

	got, cur := l.Since(3)
	if len(got) != 2 || got[0].TupleID != 4 || cur != 5 {
		t.Fatalf("Since(3) = %v (cursor %d), want tuples 4,5 cursor 5", got, cur)
	}

	l.TruncateBelow(3)
	if l.Len() != 5 {
		t.Fatalf("Len after truncation = %d, want 5 (logical length never shrinks)", l.Len())
	}
	if l.Retained() != 2 {
		t.Fatalf("Retained after truncation = %d, want 2", l.Retained())
	}
	got, cur = l.Since(3)
	if len(got) != 2 || got[0].TupleID != 4 || cur != 5 {
		t.Fatalf("Since(3) after truncation = %v (cursor %d), want tuples 4,5 cursor 5", got, cur)
	}
	// A cursor below the truncation point clamps to it.
	if got, _ := l.Since(0); len(got) != 2 {
		t.Fatalf("Since(0) after truncation returned %d edges, want 2 (clamped)", len(got))
	}

	// Truncating at or below the current base is a no-op.
	l.TruncateBelow(2)
	if l.Retained() != 2 {
		t.Fatalf("Retained after backwards truncation = %d, want 2", l.Retained())
	}

	// Appends keep extending the logical log.
	l.Append(edges(6))
	if l.Len() != 6 || l.Retained() != 3 {
		t.Fatalf("Len/Retained after append = %d/%d, want 6/3", l.Len(), l.Retained())
	}

	// Truncating past the end clamps to the end.
	l.TruncateBelow(100)
	if l.Len() != 6 || l.Retained() != 0 {
		t.Fatalf("Len/Retained after over-truncation = %d/%d, want 6/0", l.Len(), l.Retained())
	}
	if got, cur := l.Since(6); len(got) != 0 || cur != 6 {
		t.Fatalf("Since(6) on empty tail = %v (cursor %d), want none, cursor 6", got, cur)
	}
}
