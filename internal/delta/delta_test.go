package delta

import (
	"testing"

	"toposearch/internal/graph"
)

func edges(ids ...int64) []Edge {
	out := make([]Edge, len(ids))
	for i, id := range ids {
		out[i] = Edge{RelIdx: 0, TupleID: id, A: graph.NodeID(id), B: graph.NodeID(id + 1)}
	}
	return out
}

// TestLogTruncateBelow pins the logical-cursor contract of the
// applied-edge log: truncation reclaims physical records without
// moving logical positions, Since keeps returning exactly the edges at
// or after a cursor, and cursors below the truncation point clamp to
// it.
func TestLogTruncateBelow(t *testing.T) {
	var l Log
	l.Append(edges(1, 2, 3))
	l.Append(edges(4, 5))
	if l.Len() != 5 || l.Retained() != 5 {
		t.Fatalf("Len/Retained = %d/%d, want 5/5", l.Len(), l.Retained())
	}

	got, cur := l.Since(3)
	if len(got) != 2 || got[0].TupleID != 4 || cur != 5 {
		t.Fatalf("Since(3) = %v (cursor %d), want tuples 4,5 cursor 5", got, cur)
	}

	l.TruncateBelow(3)
	if l.Len() != 5 {
		t.Fatalf("Len after truncation = %d, want 5 (logical length never shrinks)", l.Len())
	}
	if l.Retained() != 2 {
		t.Fatalf("Retained after truncation = %d, want 2", l.Retained())
	}
	got, cur = l.Since(3)
	if len(got) != 2 || got[0].TupleID != 4 || cur != 5 {
		t.Fatalf("Since(3) after truncation = %v (cursor %d), want tuples 4,5 cursor 5", got, cur)
	}
	// A cursor below the truncation point clamps to it.
	if got, _ := l.Since(0); len(got) != 2 {
		t.Fatalf("Since(0) after truncation returned %d edges, want 2 (clamped)", len(got))
	}

	// Truncating at or below the current base is a no-op.
	l.TruncateBelow(2)
	if l.Retained() != 2 {
		t.Fatalf("Retained after backwards truncation = %d, want 2", l.Retained())
	}

	// Appends keep extending the logical log.
	l.Append(edges(6))
	if l.Len() != 6 || l.Retained() != 3 {
		t.Fatalf("Len/Retained after append = %d/%d, want 6/3", l.Len(), l.Retained())
	}

	// Truncating past the end clamps to the end.
	l.TruncateBelow(100)
	if l.Len() != 6 || l.Retained() != 0 {
		t.Fatalf("Len/Retained after over-truncation = %d/%d, want 6/0", l.Len(), l.Retained())
	}
	if got, cur := l.Since(6); len(got) != 0 || cur != 6 {
		t.Fatalf("Since(6) on empty tail = %v (cursor %d), want none, cursor 6", got, cur)
	}
}

// TestLogSinceWindows pins Since over the degenerate windows: an empty
// log, a cursor at the logical end, and a cursor past the end (clamped
// back).
func TestLogSinceWindows(t *testing.T) {
	var l Log
	if got, cur := l.Since(0); len(got) != 0 || cur != 0 {
		t.Fatalf("Since(0) on empty log = %v (cursor %d), want none, cursor 0", got, cur)
	}
	l.Append(edges(1, 2))
	if got, cur := l.Since(2); len(got) != 0 || cur != 2 {
		t.Fatalf("Since(Len) = %v (cursor %d), want empty window, cursor 2", got, cur)
	}
	if got, cur := l.Since(50); len(got) != 0 || cur != 2 {
		t.Fatalf("Since past the end = %v (cursor %d), want clamped empty window, cursor 2", got, cur)
	}
	if got, _ := l.Since(1); len(got) != 1 || got[0].TupleID != 2 {
		t.Fatalf("Since(1) = %v, want tuple 2", got)
	}
}

// TestLogTruncateAtBase pins that truncating exactly at the current
// base — and truncating the same point twice — reclaims nothing and
// moves no cursor.
func TestLogTruncateAtBase(t *testing.T) {
	var l Log
	l.Append(edges(1, 2, 3))
	l.TruncateBelow(0) // at base: no-op
	if l.Len() != 3 || l.Retained() != 3 {
		t.Fatalf("Len/Retained after TruncateBelow(base) = %d/%d, want 3/3", l.Len(), l.Retained())
	}
	l.TruncateBelow(2)
	l.TruncateBelow(2) // idempotent
	if l.Len() != 3 || l.Retained() != 1 {
		t.Fatalf("Len/Retained after repeated truncation = %d/%d, want 3/1", l.Len(), l.Retained())
	}
	if got, cur := l.Since(2); len(got) != 1 || got[0].TupleID != 3 || cur != 3 {
		t.Fatalf("Since(2) = %v (cursor %d), want tuple 3, cursor 3", got, cur)
	}
}

// TestLogAppendAfterTruncate pins that appends after a truncation keep
// extending the logical log where it left off: cursors recorded before
// the truncation still address the right edges.
func TestLogAppendAfterTruncate(t *testing.T) {
	var l Log
	l.Append(edges(1, 2, 3, 4))
	l.TruncateBelow(4) // everything reclaimed
	if l.Retained() != 0 {
		t.Fatalf("Retained = %d, want 0", l.Retained())
	}
	if got := l.Append(edges(5, 6)); got != 6 {
		t.Fatalf("Append returned logical length %d, want 6", got)
	}
	got, cur := l.Since(4)
	if len(got) != 2 || got[0].TupleID != 5 || got[1].TupleID != 6 || cur != 6 {
		t.Fatalf("Since(4) = %v (cursor %d), want tuples 5,6 cursor 6", got, cur)
	}
	// A straddling cursor (below base, above zero) clamps to the base.
	if got, _ := l.Since(2); len(got) != 2 {
		t.Fatalf("Since(2) after truncation returned %d edges, want 2 (clamped to base)", len(got))
	}
}

// branchGraph builds P/D test graphs for AffectedStarts: nodes 1..9
// are type P, 101..109 type D, wired by the given (a, b) pairs.
func branchGraph(t *testing.T, pairs [][2]graph.NodeID) *graph.Graph {
	t.Helper()
	g := graph.New()
	p := g.NodeTypes.Intern("P")
	d := g.NodeTypes.Intern("D")
	e := g.EdgeTypes.Intern("e")
	node := func(n graph.NodeID) {
		typ := p
		if n > 100 {
			typ = d
		}
		if err := g.AddNode(n, typ); err != nil {
			t.Fatal(err)
		}
	}
	eid := int64(1000)
	for _, pr := range pairs {
		node(pr[0])
		node(pr[1])
		if err := g.AddEdge(eid, pr[0], pr[1], e); err != nil {
			t.Fatal(err)
		}
		eid++
	}
	return g
}

func wantStarts(t *testing.T, got map[graph.NodeID]bool, want ...graph.NodeID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("affected = %v, want %v", got, want)
	}
	for _, n := range want {
		if !got[n] {
			t.Fatalf("affected = %v, missing %d", got, n)
		}
	}
}

// TestAffectedStartsBranching pins the BFS radius on a branching
// neighborhood: a hub D fanning out to several P starts, with a longer
// chain hanging off one of them.
func TestAffectedStartsBranching(t *testing.T) {
	// Hub 101 fans out to starts 1, 2, 3; a chain 3-102-4-103-5 hangs
	// off start 3. The new edge lands on the hub.
	g := branchGraph(t, [][2]graph.NodeID{
		{1, 101}, {2, 101}, {3, 101},
		{3, 102}, {4, 102}, {4, 103}, {5, 103},
	})
	newEdge := []Edge{{A: 1, B: 101}}

	// maxLen 2 (radius 1): the endpoint start plus the hub's direct fan.
	wantStarts(t, AffectedStarts(g, "P", 2, newEdge), 1, 2, 3)
	// maxLen 3 (radius 2): no further P within 2 hops (4 is 3 away).
	wantStarts(t, AffectedStarts(g, "P", 3, newEdge), 1, 2, 3)
	// maxLen 4 (radius 3): the chain's next start comes into range.
	wantStarts(t, AffectedStarts(g, "P", 4, newEdge), 1, 2, 3, 4)
	// maxLen 1 clamps to radius 0: only the edge's own P endpoint.
	wantStarts(t, AffectedStarts(g, "P", 0, newEdge), 1)
}

// TestAffectedStartsCyclic pins termination and shortest-distance
// dedup on a cyclic neighborhood.
func TestAffectedStartsCyclic(t *testing.T) {
	// 4-cycle 1-101-2-102-1 with a tail 2-103-3.
	g := branchGraph(t, [][2]graph.NodeID{
		{1, 101}, {2, 101}, {2, 102}, {1, 102},
		{2, 103}, {3, 103},
	})
	newEdge := []Edge{{A: 1, B: 101}}

	// Radius 1: both cycle starts (2 via the hub 101).
	wantStarts(t, AffectedStarts(g, "P", 2, newEdge), 1, 2)
	// Radius 2: the cycle offers no new starts, the tail's 3 is 3 hops
	// from the nearest seed; the BFS must terminate despite the cycle.
	wantStarts(t, AffectedStarts(g, "P", 3, newEdge), 1, 2)
	// Radius 3: the tail start joins.
	wantStarts(t, AffectedStarts(g, "P", 4, newEdge), 1, 2, 3)
	// Duplicate seeds (parallel edge records) change nothing.
	dup := []Edge{{A: 1, B: 101}, {A: 1, B: 101}}
	wantStarts(t, AffectedStarts(g, "P", 2, dup), 1, 2)
}

// TestAffectedStartsDegenerate pins the nil returns: no edges, and an
// entity set the graph does not know.
func TestAffectedStartsDegenerate(t *testing.T) {
	g := branchGraph(t, [][2]graph.NodeID{{1, 101}})
	if got := AffectedStarts(g, "P", 3, nil); got != nil {
		t.Fatalf("AffectedStarts with no edges = %v, want nil", got)
	}
	if got := AffectedStarts(g, "NoSuchSet", 3, []Edge{{A: 1, B: 101}}); got != nil {
		t.Fatalf("AffectedStarts with unknown entity set = %v, want nil", got)
	}
}
