package graph_test

import (
	"fmt"
	"sort"
	"testing"

	"toposearch/internal/biozon"
	"toposearch/internal/graph"
	"toposearch/internal/relstore"
)

func figure3(t *testing.T) (*graph.Graph, *graph.SchemaGraph) {
	t.Helper()
	sg := biozon.SchemaGraph()
	g, err := graph.Build(biozon.Figure3DB(), sg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, sg
}

func TestTypeTableIntern(t *testing.T) {
	tt := graph.NewTypeTable()
	a := tt.Intern("Protein")
	b := tt.Intern("DNA")
	if a == b {
		t.Fatal("distinct names got same id")
	}
	if tt.Intern("Protein") != a {
		t.Error("re-intern changed id")
	}
	if got, ok := tt.Lookup("DNA"); !ok || got != b {
		t.Errorf("Lookup(DNA) = %v,%v", got, ok)
	}
	if _, ok := tt.Lookup("nope"); ok {
		t.Error("Lookup found phantom type")
	}
	if tt.Name(a) != "Protein" || tt.Len() != 2 {
		t.Errorf("Name/Len wrong: %q %d", tt.Name(a), tt.Len())
	}
	if tt.Name(graph.TypeID(99)) == "" {
		t.Error("out-of-range Name should still render")
	}
}

func TestBuildFigure3Counts(t *testing.T) {
	g, _ := figure3(t)
	if got := g.NumNodes(); got != 11 {
		t.Errorf("NumNodes = %d, want 11", got)
	}
	if got := g.NumEdges(); got != 11 {
		t.Errorf("NumEdges = %d, want 11", got)
	}
	pt, _ := g.NodeTypes.Lookup(biozon.Protein)
	if got := len(g.NodesOfType(pt)); got != 4 {
		t.Errorf("proteins = %d, want 4", got)
	}
	// p78 has two uni_encodes edges.
	if got := g.Degree(biozon.P78); got != 2 {
		t.Errorf("Degree(78) = %d, want 2", got)
	}
	tp, ok := g.NodeType(biozon.P78)
	if !ok || g.NodeTypes.Name(tp) != biozon.Protein {
		t.Errorf("NodeType(78) = %v,%v", tp, ok)
	}
}

func TestGraphErrors(t *testing.T) {
	g := graph.New()
	p := g.NodeTypes.Intern("P")
	d := g.NodeTypes.Intern("D")
	e := g.EdgeTypes.Intern("e")
	if err := g.AddNode(1, p); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(1, p); err != nil {
		t.Errorf("idempotent AddNode failed: %v", err)
	}
	if err := g.AddNode(1, d); err == nil {
		t.Error("retyping a node accepted")
	}
	if err := g.AddEdge(10, 1, 2, e); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := g.AddEdge(10, 2, 1, e); err == nil {
		t.Error("edge from unknown node accepted")
	}
	if err := g.AddNode(2, d); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(10, 1, 2, e); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
}

func TestEdgeIDCodec(t *testing.T) {
	for _, c := range []struct {
		rel int
		tup int64
	}{{0, 0}, {0, 57}, {3, 12345}, {7, 1 << 39}} {
		eid := graph.EncodeEdgeID(c.rel, c.tup)
		r, tu := graph.DecodeEdgeID(eid)
		if r != c.rel || tu != c.tup {
			t.Errorf("roundtrip (%d,%d) -> %d -> (%d,%d)", c.rel, c.tup, eid, r, tu)
		}
	}
}

// pathString renders a path as "78-103-215" for easy comparison.
func pathString(p graph.Path) string {
	s := ""
	for i, n := range p.Nodes {
		if i > 0 {
			s += "-"
		}
		s += fmt.Sprint(int64(n))
	}
	return s
}

func collectSimplePaths(g *graph.Graph, a, b graph.NodeID, l int) []string {
	var out []string
	g.SimplePaths(a, b, l, func(p graph.Path) bool {
		out = append(out, pathString(p))
		return true
	})
	sort.Strings(out)
	return out
}

func TestSimplePathsPaperExample(t *testing.T) {
	g, _ := figure3(t)
	// PS(78, 215, 3) = {l2, l3, l6} per Section 2.2.
	got := collectSimplePaths(g, biozon.P78, biozon.D215, 3)
	want := []string{
		"78-103-215",    // l2
		"78-103-34-215", // l6
		"78-150-215",    // l3
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("PS(78,215,3) = %v, want %v", got, want)
	}
	// PS(44, 742, 3) = {l4, l5}.
	got = collectSimplePaths(g, biozon.P44, biozon.D742, 3)
	want = []string{"44-188-742", "44-194-742"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("PS(44,742,3) = %v, want %v", got, want)
	}
	// PS(32, 214, 3) = {l1}.
	got = collectSimplePaths(g, biozon.P32, biozon.D214, 3)
	want = []string{"32-214"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("PS(32,214,3) = %v, want %v", got, want)
	}
	// Unrelated pair.
	if got := collectSimplePaths(g, biozon.P32, biozon.D215, 3); len(got) != 0 {
		t.Errorf("PS(32,215,3) = %v, want empty", got)
	}
}

func TestSimplePathsLengthLimit(t *testing.T) {
	g, _ := figure3(t)
	// With l=2 the length-3 path l6 must disappear.
	got := collectSimplePaths(g, biozon.P78, biozon.D215, 2)
	want := []string{"78-103-215", "78-150-215"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("PS(78,215,2) = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	g.SimplePaths(biozon.P78, biozon.D215, 3, func(graph.Path) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d paths", n)
	}
	// Unknown endpoints do not panic and yield nothing.
	if got := collectSimplePaths(g, 99999, biozon.D215, 3); len(got) != 0 {
		t.Errorf("phantom start produced paths: %v", got)
	}
	if got := collectSimplePaths(g, biozon.P78, 99999, 3); len(got) != 0 {
		t.Errorf("phantom end produced paths: %v", got)
	}
}

func TestPathReverseAndClone(t *testing.T) {
	g, _ := figure3(t)
	var p graph.Path
	g.SimplePaths(biozon.P78, biozon.D215, 3, func(q graph.Path) bool {
		if len(q.Edges) == 3 {
			p = q.Clone()
			return false
		}
		return true
	})
	if p.Len() != 3 {
		t.Fatalf("did not capture l6: %+v", p)
	}
	r := p.Reverse()
	if r.Start() != p.End() || r.End() != p.Start() {
		t.Error("Reverse endpoints wrong")
	}
	if r.Len() != p.Len() {
		t.Error("Reverse length wrong")
	}
	if g.Signature(p) != g.Signature(r) {
		t.Errorf("signature not direction-invariant: %q vs %q", g.Signature(p), g.Signature(r))
	}
}

func TestSignatureNormalization(t *testing.T) {
	g, _ := figure3(t)
	sigs := map[string]graph.PathSig{}
	g.SimplePaths(biozon.P78, biozon.D215, 3, func(p graph.Path) bool {
		sigs[pathString(p)] = g.Signature(p)
		return true
	})
	// l2 and l3 are in the same equivalence class; l6 is in a different one.
	if sigs["78-103-215"] != sigs["78-150-215"] {
		t.Errorf("l2 and l3 signatures differ: %q vs %q", sigs["78-103-215"], sigs["78-150-215"])
	}
	if sigs["78-103-215"] == sigs["78-103-34-215"] {
		t.Error("l2 and l6 signatures equal")
	}
	if got := sigs["78-103-215"].Len(); got != 2 {
		t.Errorf("sig len = %d, want 2", got)
	}
	if got := len(sigs["78-103-215"].Labels()); got != 5 {
		t.Errorf("labels = %d, want 5", got)
	}
}

func TestSchemaEnumeratePathsPD(t *testing.T) {
	sg := biozon.SchemaGraph()
	// The paper: "the ten schema paths of length three or less that
	// connect proteins and DNAs".
	paths, err := sg.EnumeratePaths(biozon.Protein, biozon.DNA, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 10 {
		for _, p := range paths {
			t.Logf("  %s", p.String(sg))
		}
		t.Fatalf("found %d P-D schema paths with l<=3, want 10", len(paths))
	}
	// Spot-check the three short ones.
	var short []string
	for _, p := range paths {
		if p.Len() <= 2 {
			short = append(short, p.String(sg))
		}
	}
	sort.Strings(short)
	want := []string{
		"Protein-[encodes]-DNA",
		"Protein-[interaction]-Interaction-[interaction]-DNA",
		"Protein-[uni_encodes]-Unigene-[uni_contains]-DNA",
	}
	if fmt.Sprint(short) != fmt.Sprint(want) {
		t.Errorf("short schema paths = %v, want %v", short, want)
	}
	for _, p := range paths {
		if p.Start != biozon.Protein || p.End() != biozon.DNA {
			t.Errorf("path %s has wrong endpoints", p.String(sg))
		}
	}
}

func TestSchemaEnumeratePathsErrors(t *testing.T) {
	sg := biozon.SchemaGraph()
	if _, err := sg.EnumeratePaths("Nope", biozon.DNA, 3); err == nil {
		t.Error("unknown source accepted")
	}
	if _, err := sg.EnumeratePaths(biozon.Protein, "Nope", 3); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestSchemaPathSignatureMatchesInstance(t *testing.T) {
	g, sg := figure3(t)
	paths, err := sg.EnumeratePaths(biozon.Protein, biozon.DNA, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range paths {
		spSig := sp.TypeSignature(sg)
		g.PathsAlong(sg, sp, biozon.P78, func(p graph.Path) bool {
			if got := g.Signature(p); got != spSig {
				t.Errorf("instance signature %q != schema signature %q for %s",
					got, spSig, sp.String(sg))
			}
			return true
		})
	}
}

func TestPathsAlong(t *testing.T) {
	g, sg := figure3(t)
	paths, _ := sg.EnumeratePaths(biozon.Protein, biozon.DNA, 3)
	// Count instances per schema path starting from each protein; union
	// must equal SimplePaths restricted to P-D pairs.
	total := 0
	for _, sp := range paths {
		for _, a := range []graph.NodeID{biozon.P32, biozon.P78, biozon.P34, biozon.P44} {
			g.PathsAlong(sg, sp, a, func(p graph.Path) bool {
				total++
				return true
			})
		}
	}
	// From the instance: l1 (32-214), l2, l3, l6 (78-215), l4, l5
	// (44-742), plus 34's own paths: 34-215 (encodes), 34-103-215
	// (PUD via u103), 34-103-78? no (ends at protein). Also longer:
	// 34-215-? PDP..., let me just assert parity with SimplePaths.
	want := 0
	prot := []graph.NodeID{biozon.P32, biozon.P78, biozon.P34, biozon.P44}
	dnas := []graph.NodeID{biozon.D214, biozon.D215, biozon.D742}
	for _, a := range prot {
		for _, b := range dnas {
			g.SimplePaths(a, b, 3, func(graph.Path) bool { want++; return true })
		}
	}
	if total != want {
		t.Errorf("PathsAlong found %d instance paths, SimplePaths found %d", total, want)
	}
	// Early stop is honoured.
	n := 0
	for _, sp := range paths {
		g.PathsAlong(sg, sp, biozon.P78, func(graph.Path) bool { n++; return false })
	}
	if n == 0 || n > len(paths) {
		t.Errorf("early-stop PathsAlong visited %d", n)
	}
	// Starting node of the wrong type yields nothing.
	m := 0
	g.PathsAlong(sg, paths[0], biozon.U103, func(graph.Path) bool { m++; return true })
	if m != 0 {
		t.Errorf("PathsAlong from wrong-typed start produced %d paths", m)
	}
}

func TestEntityPairs(t *testing.T) {
	sg := biozon.SchemaGraph()
	pairs := sg.EntityPairs()
	// 7 entity sets -> C(7,2)+7 = 28 unordered pairs including self-pairs.
	if len(pairs) != 28 {
		t.Errorf("EntityPairs = %d, want 28", len(pairs))
	}
	for _, pr := range pairs {
		if pr[0] > pr[1] {
			t.Errorf("pair %v not ordered", pr)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	sg := biozon.SchemaGraph()
	db := biozon.EmptyDB()
	db.DropTable(biozon.TabEncodes)
	if _, err := graph.Build(db, sg); err == nil {
		t.Error("missing relationship table accepted")
	}
	db2 := biozon.EmptyDB()
	db2.DropTable(biozon.TabProtein)
	if _, err := graph.Build(db2, sg); err == nil {
		t.Error("missing entity table accepted")
	}
	// Edge referencing a nonexistent node.
	db3 := biozon.EmptyDB()
	enc := db3.MustTable(biozon.TabEncodes)
	enc.MustInsert(relstore.IntVal(1), relstore.IntVal(1), relstore.IntVal(2))
	if _, err := graph.Build(db3, sg); err == nil {
		t.Error("dangling edge accepted")
	}
}
