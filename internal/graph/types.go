// Package graph implements the labeled-graph view of a relational
// database used throughout the paper (Section 2.1): entities become
// typed nodes, binary relationships become typed undirected edges, and
// both schema-level and instance-level bounded simple paths can be
// enumerated. It also defines path signatures, the compact form of the
// path equivalence classes of Definition 1.
package graph

import "fmt"

// TypeID is an interned node or edge type label.
type TypeID int32

// TypeTable interns type names. Node types and edge types use separate
// tables so that an entity set and a relationship set may share a name
// (in Biozon both a table and an edge are called "interaction").
type TypeTable struct {
	names []string
	idx   map[string]TypeID
}

// NewTypeTable returns an empty intern table.
func NewTypeTable() *TypeTable {
	return &TypeTable{idx: make(map[string]TypeID)}
}

// Intern returns the TypeID for the name, allocating one if needed.
func (tt *TypeTable) Intern(name string) TypeID {
	if id, ok := tt.idx[name]; ok {
		return id
	}
	id := TypeID(len(tt.names))
	tt.names = append(tt.names, name)
	tt.idx[name] = id
	return id
}

// Lookup returns the TypeID for a name without allocating.
func (tt *TypeTable) Lookup(name string) (TypeID, bool) {
	id, ok := tt.idx[name]
	return id, ok
}

// Name returns the name of a TypeID.
func (tt *TypeTable) Name(id TypeID) string {
	if int(id) < 0 || int(id) >= len(tt.names) {
		return fmt.Sprintf("type#%d", id)
	}
	return tt.names[id]
}

// Len returns the number of interned types.
func (tt *TypeTable) Len() int { return len(tt.names) }

// NodeID identifies an entity. The paper assumes object IDs of different
// biological types do not overlap; the mapping layer enforces that.
type NodeID int64
