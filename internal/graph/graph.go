package graph

import "fmt"

// HalfEdge is one direction of an undirected typed edge.
type HalfEdge struct {
	To   NodeID
	Type TypeID // relationship type
	ID   int64  // relationship tuple id
}

// Graph is the labeled undirected data graph G = (V, E) of Section 2.1.
type Graph struct {
	NodeTypes *TypeTable
	EdgeTypes *TypeTable

	nodeType map[NodeID]TypeID
	byType   map[TypeID][]NodeID
	adj      map[NodeID][]HalfEdge
	numEdges int
}

// New returns an empty graph with fresh type tables.
func New() *Graph {
	return &Graph{
		NodeTypes: NewTypeTable(),
		EdgeTypes: NewTypeTable(),
		nodeType:  make(map[NodeID]TypeID),
		byType:    make(map[TypeID][]NodeID),
		adj:       make(map[NodeID][]HalfEdge),
	}
}

// AddNode registers an entity with its type. Re-adding an existing node
// with a different type is an error.
func (g *Graph) AddNode(id NodeID, t TypeID) error {
	if old, ok := g.nodeType[id]; ok {
		if old != t {
			return fmt.Errorf("graph: node %d already has type %s, cannot retype to %s",
				id, g.NodeTypes.Name(old), g.NodeTypes.Name(t))
		}
		return nil
	}
	g.nodeType[id] = t
	g.byType[t] = append(g.byType[t], id)
	return nil
}

// AddEdge registers an undirected typed edge between two existing nodes.
func (g *Graph) AddEdge(id int64, a, b NodeID, t TypeID) error {
	if _, ok := g.nodeType[a]; !ok {
		return fmt.Errorf("graph: edge %d references unknown node %d", id, a)
	}
	if _, ok := g.nodeType[b]; !ok {
		return fmt.Errorf("graph: edge %d references unknown node %d", id, b)
	}
	g.adj[a] = append(g.adj[a], HalfEdge{To: b, Type: t, ID: id})
	g.adj[b] = append(g.adj[b], HalfEdge{To: a, Type: t, ID: id})
	g.numEdges++
	return nil
}

// NodeType returns a node's type.
func (g *Graph) NodeType(id NodeID) (TypeID, bool) {
	t, ok := g.nodeType[id]
	return t, ok
}

// Neighbors returns the adjacency list of a node (shared; do not mutate).
func (g *Graph) Neighbors(id NodeID) []HalfEdge { return g.adj[id] }

// NodesOfType returns all nodes of an entity type (shared; do not mutate).
func (g *Graph) NodesOfType(t TypeID) []NodeID { return g.byType[t] }

// NumNodes returns the entity count.
func (g *Graph) NumNodes() int { return len(g.nodeType) }

// NumEdges returns the relationship count.
func (g *Graph) NumEdges() int { return g.numEdges }

// Degree returns the number of incident edges of a node.
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }
