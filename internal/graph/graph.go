package graph

import (
	"fmt"
	"maps"
)

// HalfEdge is one direction of an undirected typed edge.
type HalfEdge struct {
	To   NodeID
	Type TypeID // relationship type
	ID   int64  // relationship tuple id

	// toDense and toType are precomputed at AddEdge time so the
	// path-enumeration DFS needs no map lookups: the dense index keys
	// the slice-backed visited marks (graph node IDs are sparse
	// per-type-namespaced primary keys) and toType answers the schema
	// conformance check.
	toDense int32
	toType  TypeID
}

// Graph is the labeled undirected data graph G = (V, E) of Section 2.1.
type Graph struct {
	NodeTypes *TypeTable
	EdgeTypes *TypeTable

	nodeType map[NodeID]TypeID
	byType   map[TypeID][]NodeID
	adj      map[NodeID][]HalfEdge
	numEdges int
	// dense numbers nodes 0..NumNodes-1 in insertion order; it backs
	// the Scratch visited marks.
	dense map[NodeID]int32
}

// New returns an empty graph with fresh type tables.
func New() *Graph {
	return &Graph{
		NodeTypes: NewTypeTable(),
		EdgeTypes: NewTypeTable(),
		nodeType:  make(map[NodeID]TypeID),
		byType:    make(map[TypeID][]NodeID),
		adj:       make(map[NodeID][]HalfEdge),
		dense:     make(map[NodeID]int32),
	}
}

// AddNode registers an entity with its type. Re-adding an existing node
// with a different type is an error.
func (g *Graph) AddNode(id NodeID, t TypeID) error {
	if old, ok := g.nodeType[id]; ok {
		if old != t {
			return fmt.Errorf("graph: node %d already has type %s, cannot retype to %s",
				id, g.NodeTypes.Name(old), g.NodeTypes.Name(t))
		}
		return nil
	}
	g.nodeType[id] = t
	g.byType[t] = append(g.byType[t], id)
	g.dense[id] = int32(len(g.dense))
	return nil
}

// AddEdge registers an undirected typed edge between two existing nodes.
func (g *Graph) AddEdge(id int64, a, b NodeID, t TypeID) error {
	ta, ok := g.nodeType[a]
	if !ok {
		return fmt.Errorf("graph: edge %d references unknown node %d", id, a)
	}
	tb, ok := g.nodeType[b]
	if !ok {
		return fmt.Errorf("graph: edge %d references unknown node %d", id, b)
	}
	g.adj[a] = append(g.adj[a], HalfEdge{To: b, Type: t, ID: id, toDense: g.dense[b], toType: tb})
	g.adj[b] = append(g.adj[b], HalfEdge{To: a, Type: t, ID: id, toDense: g.dense[a], toType: ta})
	g.numEdges++
	return nil
}

// Clone returns a copy of the graph that can be extended with AddNode
// and AddEdge without disturbing readers of the original: the node and
// adjacency maps are copied, while the type tables are shared (the
// schema is fixed, so an extension never interns new type names) and
// the adjacency slices use the append-only copy-on-write discipline —
// growth either happens beyond the original's slice lengths or
// reallocates, so the original graph and any earlier clone stay
// byte-stable. This is the substrate of the live-update path: a batch
// of inserts clones the current graph, extends the clone, and
// publishes it, leaving in-flight traversals of the old graph intact.
func (g *Graph) Clone() *Graph {
	return &Graph{
		NodeTypes: g.NodeTypes,
		EdgeTypes: g.EdgeTypes,
		nodeType:  maps.Clone(g.nodeType),
		byType:    maps.Clone(g.byType),
		adj:       maps.Clone(g.adj),
		numEdges:  g.numEdges,
		dense:     maps.Clone(g.dense),
	}
}

// NodeType returns a node's type.
func (g *Graph) NodeType(id NodeID) (TypeID, bool) {
	t, ok := g.nodeType[id]
	return t, ok
}

// Neighbors returns the adjacency list of a node (shared; do not mutate).
func (g *Graph) Neighbors(id NodeID) []HalfEdge { return g.adj[id] }

// NodesOfType returns all nodes of an entity type (shared; do not mutate).
func (g *Graph) NodesOfType(t TypeID) []NodeID { return g.byType[t] }

// NumNodes returns the entity count.
func (g *Graph) NumNodes() int { return len(g.nodeType) }

// NumEdges returns the relationship count.
func (g *Graph) NumEdges() int { return g.numEdges }

// Degree returns the number of incident edges of a node.
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }
