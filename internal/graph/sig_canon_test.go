package graph_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"toposearch/internal/biozon"
	"toposearch/internal/canon"
	"toposearch/internal/graph"
)

// pathToCanon converts an instance path into a labeled graph for the
// general canonicalizer.
func pathToCanon(g *graph.Graph, p graph.Path) *canon.Graph {
	b := canon.NewBuilder()
	for i, n := range p.Nodes {
		t, _ := g.NodeType(n)
		b.Node(int64(n), g.NodeTypes.Name(t))
		if i > 0 {
			b.Edge(p.Edges[i-1], int64(p.Nodes[i-1]), int64(n), g.EdgeTypes.Name(p.Types[i-1]))
		}
	}
	return b.Graph()
}

// TestSignatureEquivalentToCanonicalForm validates the claim behind
// Definition 1's fast path: for simple paths, equality of the
// direction-normalized type signature coincides with labeled-graph
// isomorphism as decided by the general canonicalizer.
func TestSignatureEquivalentToCanonicalForm(t *testing.T) {
	db := biozon.Generate(biozon.DefaultConfig(1))
	g, err := graph.Build(db, biozon.SchemaGraph())
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := g.NodeTypes.Lookup(biozon.Protein)
	proteins := g.NodesOfType(pt)

	// Collect a pool of paths from random proteins to anywhere.
	var paths []graph.Path
	rng := rand.New(rand.NewSource(3))
	for len(paths) < 60 {
		a := proteins[rng.Intn(len(proteins))]
		dt, _ := g.NodeTypes.Lookup(biozon.DNA)
		dnas := g.NodesOfType(dt)
		b := dnas[rng.Intn(len(dnas))]
		g.SimplePaths(a, b, 3, func(p graph.Path) bool {
			paths = append(paths, p.Clone())
			return len(paths) < 60
		})
	}
	if len(paths) < 2 {
		t.Skip("not enough paths")
	}

	check := func(iRaw, jRaw uint8) bool {
		i := int(iRaw) % len(paths)
		j := int(jRaw) % len(paths)
		pi, pj := paths[i], paths[j]
		sigEq := g.Signature(pi) == g.Signature(pj)
		isoEq := canon.Iso(pathToCanon(g, pi), pathToCanon(g, pj))
		if sigEq != isoEq {
			t.Logf("paths %d and %d: sig-equal=%v iso=%v (sigs %q vs %q)",
				i, j, sigEq, isoEq, g.Signature(pi), g.Signature(pj))
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
