package graph

import (
	"fmt"
	"sort"
	"strings"
)

// RelSet describes one relationship set of the schema: its name (edge
// type) and the two entity sets it connects, together with the backing
// relational table and endpoint columns.
type RelSet struct {
	Name  string // edge type label, e.g. "encodes"
	A, B  string // entity sets, e.g. "Protein", "DNA"
	Table string // backing table, e.g. "Encodes"
	ACol  string // column holding the A-side entity ID
	BCol  string // column holding the B-side entity ID
}

// EntitySet describes one entity set: its name (node type) and backing
// table whose primary key is the entity ID.
type EntitySet struct {
	Name  string
	Table string
}

// SchemaGraph is the schema of Figure 1: entity sets connected by
// relationship sets. It supports the schema-path enumeration that the
// Topology Computation module starts from (Section 4.1).
type SchemaGraph struct {
	Entities []EntitySet
	Rels     []RelSet

	entIdx map[string]int
	// adjacency: entity set -> outgoing (relIdx, other entity set, fromA)
	adj map[string][]schemaArc
}

type schemaArc struct {
	rel   int    // index into Rels
	next  string // entity set reached
	fromA bool   // true when traversing A->B
}

// NewSchemaGraph validates and indexes a schema.
func NewSchemaGraph(entities []EntitySet, rels []RelSet) (*SchemaGraph, error) {
	sg := &SchemaGraph{
		Entities: entities,
		Rels:     rels,
		entIdx:   make(map[string]int, len(entities)),
		adj:      make(map[string][]schemaArc),
	}
	for i, e := range entities {
		if e.Name == "" {
			return nil, fmt.Errorf("graph: entity set %d has no name", i)
		}
		if _, dup := sg.entIdx[e.Name]; dup {
			return nil, fmt.Errorf("graph: duplicate entity set %q", e.Name)
		}
		sg.entIdx[e.Name] = i
	}
	for i, r := range rels {
		if _, ok := sg.entIdx[r.A]; !ok {
			return nil, fmt.Errorf("graph: relationship %q references unknown entity set %q", r.Name, r.A)
		}
		if _, ok := sg.entIdx[r.B]; !ok {
			return nil, fmt.Errorf("graph: relationship %q references unknown entity set %q", r.Name, r.B)
		}
		sg.adj[r.A] = append(sg.adj[r.A], schemaArc{rel: i, next: r.B, fromA: true})
		if r.A != r.B {
			sg.adj[r.B] = append(sg.adj[r.B], schemaArc{rel: i, next: r.A, fromA: false})
		}
	}
	return sg, nil
}

// HasEntitySet reports whether the schema defines the entity set.
func (sg *SchemaGraph) HasEntitySet(name string) bool {
	_, ok := sg.entIdx[name]
	return ok
}

// EntitySetNames returns all entity set names, sorted.
func (sg *SchemaGraph) EntitySetNames() []string {
	out := make([]string, 0, len(sg.Entities))
	for _, e := range sg.Entities {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// SchemaStep is one hop of a schema path.
type SchemaStep struct {
	Rel  int    // index into SchemaGraph.Rels
	Next string // entity set reached after the hop
}

// SchemaPath is a type-level path between two entity sets: the skeleton
// of one path equivalence class. Unlike instance paths, schema paths may
// revisit entity sets (P–D–P–D is a legal schema path; its instances
// must still be simple).
type SchemaPath struct {
	Start string
	Steps []SchemaStep
}

// Len returns the number of hops.
func (p SchemaPath) Len() int { return len(p.Steps) }

// End returns the final entity set.
func (p SchemaPath) End() string {
	if len(p.Steps) == 0 {
		return p.Start
	}
	return p.Steps[len(p.Steps)-1].Next
}

// String renders the path as Protein-[encodes]-DNA-...
func (p SchemaPath) String(sg *SchemaGraph) string {
	var b strings.Builder
	b.WriteString(p.Start)
	for _, st := range p.Steps {
		b.WriteString("-[")
		b.WriteString(sg.Rels[st.Rel].Name)
		b.WriteString("]-")
		b.WriteString(st.Next)
	}
	return b.String()
}

// TypeSignature returns the direction-normalized label sequence of the
// schema path, shared with instance-path signatures.
func (p SchemaPath) TypeSignature(sg *SchemaGraph) PathSig {
	labels := make([]string, 0, 2*len(p.Steps)+1)
	labels = append(labels, p.Start)
	for _, st := range p.Steps {
		labels = append(labels, sg.Rels[st.Rel].Name, st.Next)
	}
	return normalizeSig(labels)
}

// EnumeratePaths returns every schema path from entity set `from` to
// entity set `to` with 1..maxLen hops, in deterministic order. Schema
// paths may revisit entity sets; the instance-level simplicity
// constraint is applied later when paths are materialized.
func (sg *SchemaGraph) EnumeratePaths(from, to string, maxLen int) ([]SchemaPath, error) {
	if !sg.HasEntitySet(from) {
		return nil, fmt.Errorf("graph: unknown entity set %q", from)
	}
	if !sg.HasEntitySet(to) {
		return nil, fmt.Errorf("graph: unknown entity set %q", to)
	}
	var out []SchemaPath
	steps := make([]SchemaStep, 0, maxLen)
	var dfs func(cur string)
	dfs = func(cur string) {
		if len(steps) > 0 && cur == to {
			cp := make([]SchemaStep, len(steps))
			copy(cp, steps)
			out = append(out, SchemaPath{Start: from, Steps: cp})
		}
		if len(steps) == maxLen {
			return
		}
		for _, arc := range sg.adj[cur] {
			steps = append(steps, SchemaStep{Rel: arc.rel, Next: arc.next})
			dfs(arc.next)
			steps = steps[:len(steps)-1]
		}
	}
	dfs(from)
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Steps) != len(out[j].Steps) {
			return len(out[i].Steps) < len(out[j].Steps)
		}
		return out[i].String(sg) < out[j].String(sg)
	})
	return out, nil
}

// EntityPairs returns all unordered pairs of entity sets, sorted; used
// by the Topology Computation module, which precomputes AllTops for
// every pair of entity sets (Section 4.1).
func (sg *SchemaGraph) EntityPairs() [][2]string {
	names := sg.EntitySetNames()
	var out [][2]string
	for i := 0; i < len(names); i++ {
		for j := i; j < len(names); j++ {
			out = append(out, [2]string{names[i], names[j]})
		}
	}
	return out
}
