package graph

import (
	"fmt"

	"toposearch/internal/relstore"
)

// Edge IDs inside the graph are namespaced by relationship set so that
// tuple IDs from different relationship tables never collide:
// edgeID = relIdx<<edgeIDShift | tupleID.
const edgeIDShift = 40

// EncodeEdgeID maps (relationship set index, tuple ID) to a
// graph-global edge ID.
func EncodeEdgeID(relIdx int, tupleID int64) int64 {
	return int64(relIdx)<<edgeIDShift | tupleID
}

// DecodeEdgeID recovers the relationship set index and the relational
// tuple ID from a graph edge ID.
func DecodeEdgeID(eid int64) (relIdx int, tupleID int64) {
	return int(eid >> edgeIDShift), eid & (1<<edgeIDShift - 1)
}

// Build constructs the labeled data graph from a relational database
// according to the schema graph's table mappings (Section 2.1: "when
// mapping a relational database to a graph data model, we identify each
// object/relationship by the value of the primary key of the associated
// table").
func Build(db *relstore.DB, sg *SchemaGraph) (*Graph, error) {
	g := New()
	for _, es := range sg.Entities {
		t := db.Table(es.Table)
		if t == nil {
			return nil, fmt.Errorf("graph: entity set %q: no table %q", es.Name, es.Table)
		}
		if t.Schema.KeyCol < 0 {
			return nil, fmt.Errorf("graph: entity table %q needs a primary key", es.Table)
		}
		tid := g.NodeTypes.Intern(es.Name)
		ids := t.Col(t.Schema.KeyCol)
		for pos := 0; pos < ids.Len(); pos++ {
			id := NodeID(ids.Int(int32(pos)))
			if err := g.AddNode(id, tid); err != nil {
				return nil, fmt.Errorf("graph: entity set %q: %w (are entity IDs globally unique?)", es.Name, err)
			}
		}
	}
	for relIdx, rs := range sg.Rels {
		t := db.Table(rs.Table)
		if t == nil {
			return nil, fmt.Errorf("graph: relationship set %q: no table %q", rs.Name, rs.Table)
		}
		aCol, ok := t.Schema.ColIndex(rs.ACol)
		if !ok {
			return nil, fmt.Errorf("graph: relationship table %q: no column %q", rs.Table, rs.ACol)
		}
		bCol, ok := t.Schema.ColIndex(rs.BCol)
		if !ok {
			return nil, fmt.Errorf("graph: relationship table %q: no column %q", rs.Table, rs.BCol)
		}
		tid := g.EdgeTypes.Intern(rs.Name)
		as, bs := t.Col(aCol), t.Col(bCol)
		for pos := 0; pos < t.NumRows(); pos++ {
			var eid int64
			if t.Schema.KeyCol >= 0 {
				eid = EncodeEdgeID(relIdx, t.IntAt(int32(pos), t.Schema.KeyCol))
			} else {
				eid = EncodeEdgeID(relIdx, int64(pos))
			}
			a, b := NodeID(as.Int(int32(pos))), NodeID(bs.Int(int32(pos)))
			if err := g.AddEdge(eid, a, b, tid); err != nil {
				return nil, fmt.Errorf("graph: relationship set %q: %w", rs.Name, err)
			}
		}
	}
	return g, nil
}
