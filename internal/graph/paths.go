package graph

import (
	"strings"
)

// Path is a simple instance-level path: an alternating sequence of
// entity IDs and relationship tuple IDs. Nodes has one more element
// than Edges.
type Path struct {
	Nodes []NodeID
	Edges []int64  // relationship tuple ids
	Types []TypeID // edge types, parallel to Edges
}

// Len returns the number of edges (the paper's path length).
func (p Path) Len() int { return len(p.Edges) }

// Start and End return the path's endpoints.
func (p Path) Start() NodeID { return p.Nodes[0] }

// End returns the last node of the path.
func (p Path) End() NodeID { return p.Nodes[len(p.Nodes)-1] }

// Clone deep-copies the path.
func (p Path) Clone() Path {
	return Path{
		Nodes: append([]NodeID(nil), p.Nodes...),
		Edges: append([]int64(nil), p.Edges...),
		Types: append([]TypeID(nil), p.Types...),
	}
}

// Reverse returns the path traversed from End to Start.
func (p Path) Reverse() Path {
	n := len(p.Nodes)
	out := Path{
		Nodes: make([]NodeID, n),
		Edges: make([]int64, len(p.Edges)),
		Types: make([]TypeID, len(p.Types)),
	}
	for i, v := range p.Nodes {
		out.Nodes[n-1-i] = v
	}
	for i := range p.Edges {
		out.Edges[len(p.Edges)-1-i] = p.Edges[i]
		out.Types[len(p.Types)-1-i] = p.Types[i]
	}
	return out
}

// PathSig is the direction-normalized sequence of node and edge type
// labels along a path. Two simple paths are isomorphic as labeled
// graphs exactly when their signatures are equal, so PathSig is the
// compact form of the path equivalence classes of Definition 1 (a fact
// verified against the general canonicalizer in the test suite).
type PathSig string

// Labels splits the signature back into its label sequence.
func (s PathSig) Labels() []string { return strings.Split(string(s), "|") }

// Len returns the path length (edge count) encoded in the signature.
func (s PathSig) Len() int { return len(s.Labels()) / 2 }

func normalizeSig(labels []string) PathSig {
	fwd := strings.Join(labels, "|")
	rev := make([]string, len(labels))
	for i, l := range labels {
		rev[len(labels)-1-i] = l
	}
	bwd := strings.Join(rev, "|")
	if bwd < fwd {
		return PathSig(bwd)
	}
	return PathSig(fwd)
}

// Signature computes the path's direction-normalized type signature.
func (g *Graph) Signature(p Path) PathSig {
	labels := make([]string, 0, 2*len(p.Edges)+1)
	t, _ := g.NodeType(p.Nodes[0])
	labels = append(labels, g.NodeTypes.Name(t))
	for i := range p.Edges {
		labels = append(labels, g.EdgeTypes.Name(p.Types[i]))
		nt, _ := g.NodeType(p.Nodes[i+1])
		labels = append(labels, g.NodeTypes.Name(nt))
	}
	return normalizeSig(labels)
}

// SimplePaths enumerates PS(a, b, maxLen): every simple path between a
// and b of length 1..maxLen (Section 2.1). The visit function receives
// a path that is only valid for the duration of the call; clone it to
// retain it. Enumeration stops early if visit returns false.
func (g *Graph) SimplePaths(a, b NodeID, maxLen int, visit func(Path) bool) {
	if _, ok := g.NodeType(a); !ok {
		return
	}
	if _, ok := g.NodeType(b); !ok {
		return
	}
	onPath := map[NodeID]bool{a: true}
	cur := Path{Nodes: []NodeID{a}}
	stop := false
	var dfs func(at NodeID)
	dfs = func(at NodeID) {
		if stop || len(cur.Edges) == maxLen {
			return
		}
		for _, he := range g.adj[at] {
			if stop {
				return
			}
			if onPath[he.To] {
				continue
			}
			cur.Nodes = append(cur.Nodes, he.To)
			cur.Edges = append(cur.Edges, he.ID)
			cur.Types = append(cur.Types, he.Type)
			if he.To == b {
				if !visit(cur) {
					stop = true
				}
			} else {
				onPath[he.To] = true
				dfs(he.To)
				delete(onPath, he.To)
			}
			cur.Nodes = cur.Nodes[:len(cur.Nodes)-1]
			cur.Edges = cur.Edges[:len(cur.Edges)-1]
			cur.Types = cur.Types[:len(cur.Types)-1]
		}
	}
	dfs(a)
}

// PathsAlong materializes every simple instance path conforming to the
// given schema path, starting from node a. This is the graph-native
// equivalent of the single SQL join query the Topology Computation
// module issues per schema path (Section 4.1). The visit callback's
// path is reused across calls; clone to retain.
func (g *Graph) PathsAlong(sg *SchemaGraph, sp SchemaPath, a NodeID, visit func(Path) bool) {
	startType, ok := g.NodeTypes.Lookup(sp.Start)
	if !ok {
		return
	}
	at, ok := g.NodeType(a)
	if !ok || at != startType {
		return
	}
	// Pre-intern step types; a missing type means no instances exist.
	relTypes := make([]TypeID, len(sp.Steps))
	nodeTypes := make([]TypeID, len(sp.Steps))
	for i, st := range sp.Steps {
		rt, ok := g.EdgeTypes.Lookup(sg.Rels[st.Rel].Name)
		if !ok {
			return
		}
		nt, ok := g.NodeTypes.Lookup(st.Next)
		if !ok {
			return
		}
		relTypes[i] = rt
		nodeTypes[i] = nt
	}
	onPath := map[NodeID]bool{a: true}
	cur := Path{Nodes: []NodeID{a}}
	stop := false
	var dfs func(at NodeID, step int)
	dfs = func(at NodeID, step int) {
		if stop {
			return
		}
		if step == len(sp.Steps) {
			if !visit(cur) {
				stop = true
			}
			return
		}
		for _, he := range g.adj[at] {
			if stop {
				return
			}
			if he.Type != relTypes[step] || onPath[he.To] {
				continue
			}
			if t, _ := g.NodeType(he.To); t != nodeTypes[step] {
				continue
			}
			cur.Nodes = append(cur.Nodes, he.To)
			cur.Edges = append(cur.Edges, he.ID)
			cur.Types = append(cur.Types, he.Type)
			onPath[he.To] = true
			dfs(he.To, step+1)
			delete(onPath, he.To)
			cur.Nodes = cur.Nodes[:len(cur.Nodes)-1]
			cur.Edges = cur.Edges[:len(cur.Edges)-1]
			cur.Types = cur.Types[:len(cur.Types)-1]
		}
	}
	dfs(a, 0)
}
