package graph

import (
	"strings"
)

// Path is a simple instance-level path: an alternating sequence of
// entity IDs and relationship tuple IDs. Nodes has one more element
// than Edges.
type Path struct {
	Nodes []NodeID
	Edges []int64  // relationship tuple ids
	Types []TypeID // edge types, parallel to Edges
}

// Len returns the number of edges (the paper's path length).
func (p Path) Len() int { return len(p.Edges) }

// Start and End return the path's endpoints.
func (p Path) Start() NodeID { return p.Nodes[0] }

// End returns the last node of the path.
func (p Path) End() NodeID { return p.Nodes[len(p.Nodes)-1] }

// Clone deep-copies the path.
func (p Path) Clone() Path {
	return Path{
		Nodes: append([]NodeID(nil), p.Nodes...),
		Edges: append([]int64(nil), p.Edges...),
		Types: append([]TypeID(nil), p.Types...),
	}
}

// Reverse returns the path traversed from End to Start.
func (p Path) Reverse() Path {
	n := len(p.Nodes)
	out := Path{
		Nodes: make([]NodeID, n),
		Edges: make([]int64, len(p.Edges)),
		Types: make([]TypeID, len(p.Types)),
	}
	for i, v := range p.Nodes {
		out.Nodes[n-1-i] = v
	}
	for i := range p.Edges {
		out.Edges[len(p.Edges)-1-i] = p.Edges[i]
		out.Types[len(p.Types)-1-i] = p.Types[i]
	}
	return out
}

// PathSig is the direction-normalized sequence of node and edge type
// labels along a path. Two simple paths are isomorphic as labeled
// graphs exactly when their signatures are equal, so PathSig is the
// compact form of the path equivalence classes of Definition 1 (a fact
// verified against the general canonicalizer in the test suite).
type PathSig string

// Labels splits the signature back into its label sequence.
func (s PathSig) Labels() []string { return strings.Split(string(s), "|") }

// Len returns the path length (edge count) encoded in the signature.
func (s PathSig) Len() int { return len(s.Labels()) / 2 }

func normalizeSig(labels []string) PathSig {
	fwd := strings.Join(labels, "|")
	rev := make([]string, len(labels))
	for i, l := range labels {
		rev[len(labels)-1-i] = l
	}
	bwd := strings.Join(rev, "|")
	if bwd < fwd {
		return PathSig(bwd)
	}
	return PathSig(fwd)
}

// Signature computes the path's direction-normalized type signature.
func (g *Graph) Signature(p Path) PathSig {
	labels := make([]string, 0, 2*len(p.Edges)+1)
	t, _ := g.NodeType(p.Nodes[0])
	labels = append(labels, g.NodeTypes.Name(t))
	for i := range p.Edges {
		labels = append(labels, g.EdgeTypes.Name(p.Types[i]))
		nt, _ := g.NodeType(p.Nodes[i+1])
		labels = append(labels, g.NodeTypes.Name(nt))
	}
	return normalizeSig(labels)
}

// Scratch is reusable state for the path-enumeration DFS: the
// slice-backed on-path visited marks (indexed by the graph's dense
// node numbering, since raw node IDs are sparse per-type-namespaced
// primary keys) and the path buffers. Reusing one Scratch across many
// SimplePathsScratch/PathsAlongScratch calls makes the hot DFS
// allocation-free; the offline Topology Computation workers each own
// one. A Scratch must not be shared between goroutines.
type Scratch struct {
	marks []bool   // on-path flags, indexed by dense node index
	cur   Path     // reusable path buffers
	rel   []TypeID // PathsAlong step-type buffers
	nodes []TypeID
}

// NewScratch returns a Scratch sized for this graph.
func (g *Graph) NewScratch() *Scratch {
	return &Scratch{marks: make([]bool, len(g.dense))}
}

// begin resets the path buffers to a single-node path rooted at a and
// ensures the marks cover every node (the graph may have grown since
// the Scratch was created). All marks are false between calls: the DFS
// unwinds them on backtrack.
func (sc *Scratch) begin(g *Graph, a NodeID) {
	if len(sc.marks) < len(g.dense) {
		sc.marks = make([]bool, len(g.dense))
	}
	sc.cur.Nodes = append(sc.cur.Nodes[:0], a)
	sc.cur.Edges = sc.cur.Edges[:0]
	sc.cur.Types = sc.cur.Types[:0]
}

// SimplePaths enumerates PS(a, b, maxLen): every simple path between a
// and b of length 1..maxLen (Section 2.1). The visit function receives
// a path that is only valid for the duration of the call; clone it to
// retain it. Enumeration stops early if visit returns false.
func (g *Graph) SimplePaths(a, b NodeID, maxLen int, visit func(Path) bool) {
	g.SimplePathsScratch(g.NewScratch(), a, b, maxLen, visit)
}

// SimplePathsScratch is SimplePaths with caller-provided scratch state,
// for hot loops that enumerate from many start nodes.
func (g *Graph) SimplePathsScratch(sc *Scratch, a, b NodeID, maxLen int, visit func(Path) bool) {
	if _, ok := g.NodeType(a); !ok {
		return
	}
	if _, ok := g.NodeType(b); !ok {
		return
	}
	sc.begin(g, a)
	aDense := g.dense[a]
	sc.marks[aDense] = true
	defer func() { sc.marks[aDense] = false }()
	stop := false
	var dfs func(at NodeID)
	dfs = func(at NodeID) {
		if stop || len(sc.cur.Edges) == maxLen {
			return
		}
		for _, he := range g.adj[at] {
			if stop {
				return
			}
			if sc.marks[he.toDense] {
				continue
			}
			sc.cur.Nodes = append(sc.cur.Nodes, he.To)
			sc.cur.Edges = append(sc.cur.Edges, he.ID)
			sc.cur.Types = append(sc.cur.Types, he.Type)
			if he.To == b {
				if !visit(sc.cur) {
					stop = true
				}
			} else {
				sc.marks[he.toDense] = true
				dfs(he.To)
				sc.marks[he.toDense] = false
			}
			sc.cur.Nodes = sc.cur.Nodes[:len(sc.cur.Nodes)-1]
			sc.cur.Edges = sc.cur.Edges[:len(sc.cur.Edges)-1]
			sc.cur.Types = sc.cur.Types[:len(sc.cur.Types)-1]
		}
	}
	dfs(a)
}

// PathsAlong materializes every simple instance path conforming to the
// given schema path, starting from node a. This is the graph-native
// equivalent of the single SQL join query the Topology Computation
// module issues per schema path (Section 4.1). The visit callback's
// path is reused across calls; clone to retain.
func (g *Graph) PathsAlong(sg *SchemaGraph, sp SchemaPath, a NodeID, visit func(Path) bool) {
	g.PathsAlongScratch(g.NewScratch(), sg, sp, a, visit)
}

// PathsAlongScratch is PathsAlong with caller-provided scratch state,
// for hot loops that materialize paths from many start nodes.
func (g *Graph) PathsAlongScratch(sc *Scratch, sg *SchemaGraph, sp SchemaPath, a NodeID, visit func(Path) bool) {
	startType, ok := g.NodeTypes.Lookup(sp.Start)
	if !ok {
		return
	}
	at, ok := g.NodeType(a)
	if !ok || at != startType {
		return
	}
	// Pre-intern step types; a missing type means no instances exist.
	if cap(sc.rel) < len(sp.Steps) {
		sc.rel = make([]TypeID, len(sp.Steps))
		sc.nodes = make([]TypeID, len(sp.Steps))
	}
	relTypes := sc.rel[:len(sp.Steps)]
	nodeTypes := sc.nodes[:len(sp.Steps)]
	for i, st := range sp.Steps {
		rt, ok := g.EdgeTypes.Lookup(sg.Rels[st.Rel].Name)
		if !ok {
			return
		}
		nt, ok := g.NodeTypes.Lookup(st.Next)
		if !ok {
			return
		}
		relTypes[i] = rt
		nodeTypes[i] = nt
	}
	sc.begin(g, a)
	aDense := g.dense[a]
	sc.marks[aDense] = true
	defer func() { sc.marks[aDense] = false }()
	stop := false
	var dfs func(at NodeID, step int)
	dfs = func(at NodeID, step int) {
		if stop {
			return
		}
		if step == len(sp.Steps) {
			if !visit(sc.cur) {
				stop = true
			}
			return
		}
		for _, he := range g.adj[at] {
			if stop {
				return
			}
			if he.Type != relTypes[step] || he.toType != nodeTypes[step] || sc.marks[he.toDense] {
				continue
			}
			sc.cur.Nodes = append(sc.cur.Nodes, he.To)
			sc.cur.Edges = append(sc.cur.Edges, he.ID)
			sc.cur.Types = append(sc.cur.Types, he.Type)
			sc.marks[he.toDense] = true
			dfs(he.To, step+1)
			sc.marks[he.toDense] = false
			sc.cur.Nodes = sc.cur.Nodes[:len(sc.cur.Nodes)-1]
			sc.cur.Edges = sc.cur.Edges[:len(sc.cur.Edges)-1]
			sc.cur.Types = sc.cur.Types[:len(sc.cur.Types)-1]
		}
	}
	dfs(a, 0)
}
