// Package optimizer implements the cost-based query optimization of
// Section 5.4: a cost model for stacks of Distinct Group Join operators
// (the early-termination plans of Figure 15), a conventional cost model
// for the regular hash-join plans (Figure 14), a plan chooser that picks
// the cheaper strategy (the Opt methods of the evaluation), and a
// System-R style dynamic-programming join enumerator extended with the
// early-termination interesting property (Section 5.4.1).
//
// The DGJ cost model follows the paper's Appendix A: per-operator
// result probabilities x_i (Lemma 1), miss costs delta_i (Lemma 2),
// per-group parameters np_i / nc_i / ec_i (Theorems 2-4), and the
// E[Z^k] recurrence over groups (Theorem 1) evaluated by dynamic
// programming. Two typos in the appendix are corrected here: the base
// case of Lemma 1 must be x_{n+1} = 1 (a tuple that survives every
// operator IS a result; with the printed x_{n+1} = 0 every x_i
// collapses to zero), and the first-success probability in Theorem 4
// uses x_l, not rho_l. The binomial sums of the appendix are evaluated
// in closed form: sum_j C(J,j) rho^j (1-rho)^(J-j) (1-(1-x)^j) =
// 1-(1-rho*x)^J.
package optimizer

import (
	"fmt"
	"math"
)

// JoinStats describes one operator of a DGJ stack (Section 5.4.3).
type JoinStats struct {
	// N is the cardinality of the inner relation being joined.
	N float64
	// I is the cost of one index probe on the inner relation's join
	// attribute (the unit of the whole model).
	I float64
	// Rho is the selectivity of the inner relation's local predicate.
	Rho float64
	// S is the join selectivity: an outer tuple matches S*N inner
	// tuples in expectation (for key joins S*N = 1).
	S float64
}

// Matches returns the expected number of inner matches per outer tuple.
func (j JoinStats) Matches() float64 { return j.S * j.N }

// StackStats describes a whole DGJ plan: the group cardinalities in
// processing (score) order and the join operators bottom-up.
type StackStats struct {
	// Cards[i] is Card_i: the number of input tuples in group g_i.
	Cards []float64
	// Joins are the stacked DGJ operators, outermost input first.
	Joins []JoinStats
}

// chains holds the per-operator x, delta, and success-cost chains.
type chains struct {
	x     []float64 // x[i]: P(input tuple of opr_i produces a result); x[n] = 1 sentinel
	delta []float64 // delta[i]: expected probe cost of one opr_i input tuple
}

// computeChains evaluates Lemmas 1 and 2 bottom-up.
func computeChains(joins []JoinStats) chains {
	n := len(joins)
	c := chains{x: make([]float64, n+1), delta: make([]float64, n+1)}
	c.x[n] = 1
	c.delta[n] = 0
	for i := n - 1; i >= 0; i-- {
		J := joins[i].Matches()
		// Lemma 1 (closed form): each of the J expected matches
		// independently passes the local predicate and produces a
		// downstream result with probability rho*x_{i+1}.
		p := clamp01(joins[i].Rho * c.x[i+1])
		c.x[i] = 1 - math.Pow(1-p, J)
		// Lemma 2 (closed form): one probe at this level plus, for each
		// of the rho*J matches that survive the local predicate, the
		// downstream cost.
		c.delta[i] = joins[i].I + joins[i].Rho*J*c.delta[i+1]
	}
	return c
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// geomSums returns S0 = sum_{j=1..h} q^(j-1) and
// S1 = sum_{j=1..h} (j-1) q^(j-1) in closed form.
func geomSums(q float64, h float64) (s0, s1 float64) {
	if h <= 0 {
		return 0, 0
	}
	if q >= 1 {
		return h, h * (h - 1) / 2
	}
	if q <= 0 {
		return 1, 0
	}
	qh := math.Pow(q, h)
	s0 = (1 - qh) / (1 - q)
	// sum_{j=0}^{h-1} j q^j
	s1 = q * (1 - h*math.Pow(q, h-1) + (h-1)*qh) / ((1 - q) * (1 - q))
	return s0, s1
}

// successCost returns the expected probe cost of one input tuple of
// operator l conditioned on that tuple producing a result: the probe at
// this level, the successful descent, plus the expected exploration of
// sibling matches tried before the successful one (early termination
// stops at the first success, so on average half the surviving matches
// beyond the first are explored).
func (c chains) successCost(joins []JoinStats, l int) float64 {
	if l >= len(joins) {
		return 0
	}
	sc := joins[l].I + c.successCost(joins, l+1)
	if extra := joins[l].Rho*joins[l].Matches() - 1; extra > 0 {
		sc += extra / 2 * c.delta[l+1]
	}
	return sc
}

// ec evaluates Theorem 4: the expected cost of finding the first result
// from h input tuples of operator l (0-based), probability-weighted so
// that the no-result case contributes zero here (it is carried by nc).
// The first success arrives at tuple j with probability
// x_l (1-x_l)^(j-1); the j-1 misses each cost delta_l and the hit costs
// the conditional success cost.
func (c chains) ec(joins []JoinStats, l int, h float64) float64 {
	if l >= len(joins) || h <= 0 {
		return 0
	}
	xl := c.x[l]
	if xl <= 0 {
		return 0
	}
	s0, s1 := geomSums(1-xl, h)
	return xl * (c.delta[l]*s1 + c.successCost(joins, l)*s0)
}

// GroupParams are the Theorem 2-4 parameters for one group.
type GroupParams struct {
	NP float64 // probability of finding no result in the group
	NC float64 // probability-weighted cost of exhausting the group
	EC float64 // probability-weighted cost of finding the first result
}

// Params computes np_i, nc_i and ec_i for every group.
func (s StackStats) Params() []GroupParams {
	c := computeChains(s.Joins)
	out := make([]GroupParams, len(s.Cards))
	for i, card := range s.Cards {
		np := math.Pow(1-c.x[0], card)
		out[i] = GroupParams{
			NP: np,
			NC: np * card * c.delta[0], // Theorem 3
			EC: c.ec(s.Joins, 0, card), // Theorem 4
		}
	}
	return out
}

// GroupCosts returns the expected processing cost of each group in
// index-probe units: one driving-scan charge plus Card_i input tuples
// each paying the Lemma 2 full-descent cost delta_0. This is the
// weight profile for cost-balanced segment/shard cut points — unlike
// ETCost it ignores early termination (a cut-point profile must cover
// the exhaustive case, and the relative weights are what balances the
// cuts), so it is cheap to evaluate for every group.
func (s StackStats) GroupCosts() []float64 {
	c := computeChains(s.Joins)
	out := make([]float64, len(s.Cards))
	for i, card := range s.Cards {
		out[i] = 1 + card*c.delta[0]
	}
	return out
}

// ETCost evaluates Theorem 1 by dynamic programming: the expected cost
// of producing the top k groups with results when groups are processed
// in the given order. It returns the expected cost in index-probe
// units.
func (s StackStats) ETCost(k int) float64 {
	if k <= 0 || len(s.Cards) == 0 {
		return 0
	}
	params := s.Params()
	m := len(params)
	// z[kk] = E[Z^kk_{l:m}] for the current l; iterate l = m..1.
	z := make([]float64, k+1)
	next := make([]float64, k+1)
	for l := m - 1; l >= 0; l-- {
		p := params[l]
		for kk := 1; kk <= k; kk++ {
			next[kk] = p.EC + (1-p.NP)*z[kk-1] + p.NC + p.NP*z[kk]
		}
		z, next = next, z
	}
	return z[k]
}

// String renders the stack for diagnostics.
func (s StackStats) String() string {
	return fmt.Sprintf("StackStats(groups=%d, joins=%d)", len(s.Cards), len(s.Joins))
}
