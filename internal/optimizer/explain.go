package optimizer

import (
	"fmt"
	"strings"
)

// ExplainInput names the relations of a top-k topology query for plan
// rendering.
type ExplainInput struct {
	TopInfo  string // e.g. "TopInfo_Protein_DNA"
	Tops     string // e.g. "LeftTops_Protein_DNA"
	Entity1  string // e.g. "Protein (desc.ct('enzyme'))"
	Entity2  string // e.g. "DNA (type='mRNA')"
	ScoreCol string // e.g. "SCORE_freq"
	K        int
}

// Explain renders the chosen plan as an operator tree in the style of
// Figures 14 and 15.
func Explain(kind PlanKind, in ExplainInput) string {
	var b strings.Builder
	switch kind {
	case PlanRegular:
		fmt.Fprintf(&b, "Fetch first %d\n", in.K)
		b.WriteString("└─ Sort (" + in.ScoreCol + " desc)\n")
		b.WriteString("   └─ Distinct (TID)\n")
		b.WriteString("      └─ HashJoin (TID)\n")
		b.WriteString("         ├─ HashJoin (E2 = ID)\n")
		b.WriteString("         │  ├─ HashJoin (E1 = ID)\n")
		b.WriteString("         │  │  ├─ seqScan " + in.Tops + "\n")
		b.WriteString("         │  │  └─ idxScan " + in.Entity1 + "\n")
		b.WriteString("         │  └─ idxScan " + in.Entity2 + "\n")
		b.WriteString("         └─ idxScan " + in.TopInfo + "\n")
	case PlanETIndex:
		fmt.Fprintf(&b, "DistinctGroups (k=%d)\n", in.K)
		b.WriteString("└─ IDGJ (E2 = ID) σ " + in.Entity2 + "\n")
		b.WriteString("   └─ IDGJ (E1 = ID) σ " + in.Entity1 + "\n")
		b.WriteString("      └─ IDGJ (TID = TID) " + in.Tops + "\n")
		b.WriteString("         └─ idxScan " + in.TopInfo + " (" + in.ScoreCol + " order)\n")
	case PlanETHash:
		fmt.Fprintf(&b, "DistinctGroups (k=%d)\n", in.K)
		b.WriteString("└─ IDGJ (E2 = ID) σ " + in.Entity2 + "\n")
		b.WriteString("   └─ HDGJ (E1 = ID) σ " + in.Entity1 + "\n")
		b.WriteString("      └─ IDGJ (TID = TID) " + in.Tops + "\n")
		b.WriteString("         └─ idxScan " + in.TopInfo + " (" + in.ScoreCol + " order)\n")
	}
	return b.String()
}
