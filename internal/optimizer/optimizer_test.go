package optimizer

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// twoKeyJoins builds the standard topology-query stack: two key joins
// (LeftTops.E1 = Protein.ID, LeftTops.E2 = DNA.ID) with predicate
// selectivities rho1 and rho2.
func twoKeyJoins(nP, nD, rho1, rho2 float64) []JoinStats {
	return []JoinStats{
		{N: nP, I: 1, Rho: rho1, S: 1 / nP},
		{N: nD, I: 1, Rho: rho2, S: 1 / nD},
	}
}

func TestChainsKeyJoins(t *testing.T) {
	c := computeChains(twoKeyJoins(1000, 2000, 0.5, 0.2))
	// x2 (last op): probability a tuple entering the DNA join produces
	// a result = rho2 = 0.2.
	if math.Abs(c.x[1]-0.2) > 1e-9 {
		t.Errorf("x2 = %v, want 0.2", c.x[1])
	}
	// x1 = rho1 * rho2 = 0.1.
	if math.Abs(c.x[0]-0.1) > 1e-9 {
		t.Errorf("x1 = %v, want 0.1", c.x[0])
	}
	// delta2 = I2 = 1; delta1 = I1 + rho1*delta2 = 1.5.
	if math.Abs(c.delta[1]-1) > 1e-9 || math.Abs(c.delta[0]-1.5) > 1e-9 {
		t.Errorf("delta = %v, want [1.5 1]", c.delta[:2])
	}
}

func TestGroupParams(t *testing.T) {
	s := StackStats{
		Cards: []float64{10, 1},
		Joins: twoKeyJoins(1000, 2000, 0.5, 0.2),
	}
	p := s.Params()
	// np for a 10-tuple group with x1=0.1: 0.9^10.
	want := math.Pow(0.9, 10)
	if math.Abs(p[0].NP-want) > 1e-9 {
		t.Errorf("np = %v, want %v", p[0].NP, want)
	}
	// nc = np * card * delta1.
	if math.Abs(p[0].NC-want*10*1.5) > 1e-9 {
		t.Errorf("nc = %v, want %v", p[0].NC, want*10*1.5)
	}
	// Single-tuple group: np = 0.9, ec = x1 * (I1 + I2) = 0.1*2.
	if math.Abs(p[1].NP-0.9) > 1e-9 {
		t.Errorf("np single = %v", p[1].NP)
	}
	if math.Abs(p[1].EC-0.2) > 1e-9 {
		t.Errorf("ec single = %v, want 0.2", p[1].EC)
	}
	// EC grows with group size but stays bounded by expected work.
	if p[0].EC <= p[1].EC {
		t.Errorf("EC(card=10)=%v should exceed EC(card=1)=%v", p[0].EC, p[1].EC)
	}
}

func TestETCostMonotonicInK(t *testing.T) {
	s := StackStats{
		Cards: []float64{50, 40, 30, 20, 10},
		Joins: twoKeyJoins(1000, 2000, 0.5, 0.5),
	}
	prev := 0.0
	for k := 1; k <= 5; k++ {
		c := s.ETCost(k)
		if c < prev {
			t.Errorf("ETCost(%d) = %v < ETCost(%d) = %v", k, c, k-1, prev)
		}
		prev = c
	}
	if s.ETCost(0) != 0 {
		t.Error("ETCost(0) != 0")
	}
	if (StackStats{}).ETCost(3) != 0 {
		t.Error("empty stack cost != 0")
	}
}

func TestETCostSelectivityShape(t *testing.T) {
	// The paper's headline trade-off: ET is cheap for unselective
	// predicates (first tuples match, groups are skipped immediately)
	// and expensive for selective ones (many tuples probed per group).
	cards := make([]float64, 100)
	for i := range cards {
		cards[i] = 200
	}
	unselective := StackStats{Cards: cards, Joins: twoKeyJoins(5000, 5000, 0.85, 0.85)}
	selective := StackStats{Cards: cards, Joins: twoKeyJoins(5000, 5000, 0.15, 0.15)}
	cu, cs := unselective.ETCost(10), selective.ETCost(10)
	if cu >= cs {
		t.Errorf("ET unselective (%v) should be cheaper than selective (%v)", cu, cs)
	}
}

func TestGeomSums(t *testing.T) {
	// Closed forms match direct summation.
	f := func(qRaw, hRaw uint8) bool {
		q := float64(qRaw%99) / 100.0
		h := float64(hRaw%50 + 1)
		s0, s1 := geomSums(q, h)
		var w0, w1 float64
		for j := 1; j <= int(h); j++ {
			w0 += math.Pow(q, float64(j-1))
			w1 += float64(j-1) * math.Pow(q, float64(j-1))
		}
		return math.Abs(s0-w0) < 1e-6 && math.Abs(s1-w1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Edge cases.
	if s0, s1 := geomSums(0.5, 0); s0 != 0 || s1 != 0 {
		t.Error("h=0 sums nonzero")
	}
	if s0, _ := geomSums(1, 5); s0 != 5 {
		t.Error("q=1 sum wrong")
	}
	if s0, s1 := geomSums(0, 5); s0 != 1 || s1 != 0 {
		t.Error("q=0 sums wrong")
	}
}

func TestRegularCostShape(t *testing.T) {
	small := RegularCost(RegularStats{Entity1Rows: 100, TopsMatches: 50, Rho2: 0.5, Groups: 10})
	big := RegularCost(RegularStats{Entity1Rows: 100000, TopsMatches: 50000, Rho2: 0.5, Groups: 500})
	if small >= big {
		t.Errorf("regular cost not increasing with size: %v vs %v", small, big)
	}
	// Regular cost is independent of k: it always processes everything.
	again := RegularCost(RegularStats{Entity1Rows: 100, TopsMatches: 50, Rho2: 0.5, Groups: 10})
	if again != small {
		t.Error("RegularCost not deterministic")
	}
}

// paperScenario builds the Fast-Top-k vs Fast-Top-k-ET decision inputs
// for a pruned store: 400 leftover topologies with small per-group
// cardinalities (frequent topologies were pruned), entity tables of
// 20k rows, and the given predicate selectivity on both sides.
func paperScenario(rho float64) (RegularStats, StackStats) {
	nGroups := 400
	cardPerGroup := 3.0
	cards := make([]float64, nGroups)
	for i := range cards {
		cards[i] = cardPerGroup
	}
	joins := []JoinStats{
		{N: 20000, I: DefaultProbeCostET, Rho: rho, S: 1.0 / 20000},
		{N: 20000, I: DefaultProbeCostET, Rho: rho, S: 1.0 / 20000},
	}
	stack := StackStats{Cards: cards, Joins: joins}
	topsRows := cardPerGroup * float64(nGroups)
	reg := RegularStats{
		Entity1Rows: 20000 * rho,
		TopsMatches: topsRows * rho,
		Rho2:        rho,
		Groups:      float64(nGroups),
	}
	return reg, stack
}

func TestChooseMatchesPaperShape(t *testing.T) {
	// Selective predicates (15%), k=10: the regular plan wins — Table 2
	// selective rows, where Fast-Top-k beats Fast-Top-k-ET.
	reg, stack := paperScenario(0.15)
	choice := Choose(reg, stack, 10)
	if choice.Kind != PlanRegular {
		t.Errorf("selective choice = %v (costs %v), want regular", choice.Kind, choice.CostByPlan)
	}

	// Unselective predicates (85%): ET wins (Table 2 unselective rows).
	reg, stack = paperScenario(0.85)
	choice = Choose(reg, stack, 10)
	if choice.Kind != PlanETIndex {
		t.Errorf("unselective choice = %v (costs %v), want et-idgj", choice.Kind, choice.CostByPlan)
	}

	// Medium (50%): ET should also win, but by less.
	regM, stackM := paperScenario(0.5)
	choiceM := Choose(regM, stackM, 10)
	if choiceM.Kind == PlanETHash {
		t.Errorf("medium choice = et-hdgj (costs %v)", choiceM.CostByPlan)
	}
	// Costs are reported for all plans.
	if len(choice.CostByPlan) != 3 {
		t.Errorf("CostByPlan has %d entries", len(choice.CostByPlan))
	}
	// The HDGJ plan must be the worst choice for selective queries —
	// the paper's "worst plan" column (2467s vs 9.65s best ET).
	regS, stackS := paperScenario(0.15)
	cs := Choose(regS, stackS, 10).CostByPlan
	if cs[PlanETHash] <= cs[PlanETIndex] {
		t.Errorf("HDGJ (%v) should be worse than IDGJ (%v) for selective", cs[PlanETHash], cs[PlanETIndex])
	}
}

func TestHDGJCostVsIDGJ(t *testing.T) {
	// With tiny inner relations, rescanning per group (HDGJ) can beat
	// index probes; with huge inners it must lose.
	cards := []float64{100, 100, 100}
	smallInner := StackStats{Cards: cards, Joins: []JoinStats{{N: 4, I: 1, Rho: 0.9, S: 0.25}}}
	hugeInner := StackStats{Cards: cards, Joins: []JoinStats{{N: 1e6, I: 1, Rho: 0.9, S: 1e-6}}}
	if HDGJCost(hugeInner, 2) <= hugeInner.ETCost(2) {
		t.Error("HDGJ should lose with a huge inner relation")
	}
	if HDGJCost(smallInner, 2) <= 0 {
		t.Error("HDGJ cost must be positive")
	}
	if HDGJCost(StackStats{}, 2) != 0 || HDGJCost(smallInner, 0) != 0 {
		t.Error("HDGJ edge cases wrong")
	}
}

func TestExplainRendersAllPlans(t *testing.T) {
	in := ExplainInput{
		TopInfo:  "TopInfo_Protein_DNA",
		Tops:     "LeftTops_Protein_DNA",
		Entity1:  "Protein (desc.ct('enzyme'))",
		Entity2:  "DNA (type='mRNA')",
		ScoreCol: "SCORE_freq",
		K:        10,
	}
	for _, kind := range []PlanKind{PlanRegular, PlanETIndex, PlanETHash} {
		s := Explain(kind, in)
		if !strings.Contains(s, "LeftTops_Protein_DNA") {
			t.Errorf("%v plan missing table name:\n%s", kind, s)
		}
		switch kind {
		case PlanRegular:
			if !strings.Contains(s, "Sort") || !strings.Contains(s, "HashJoin") {
				t.Errorf("regular plan missing operators:\n%s", s)
			}
		case PlanETIndex:
			if !strings.Contains(s, "IDGJ") || strings.Contains(s, "HDGJ") {
				t.Errorf("et-idgj plan wrong:\n%s", s)
			}
		case PlanETHash:
			if !strings.Contains(s, "HDGJ") {
				t.Errorf("et-hdgj plan missing HDGJ:\n%s", s)
			}
		}
	}
	if PlanRegular.String() != "regular" || PlanETIndex.String() != "et-idgj" ||
		PlanETHash.String() != "et-hdgj" || PlanKind(99).String() != "unknown" {
		t.Error("PlanKind names wrong")
	}
}

func TestJoinStatsMatches(t *testing.T) {
	j := JoinStats{N: 1000, S: 0.002}
	if j.Matches() != 2 {
		t.Errorf("Matches = %v, want 2", j.Matches())
	}
	s := StackStats{Cards: []float64{1}, Joins: []JoinStats{j}}
	if s.String() == "" {
		t.Error("empty String")
	}
}
