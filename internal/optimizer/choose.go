package optimizer

import "math"

// Cost-unit calibration. The unit is one in-memory hash probe (the
// regular plan's join probe). Random index lookups — the access path of
// the IDGJ operator — are substantially more expensive on the paper's
// hardware ("the IDGJ operator requires (random) index lookups ...
// while a regular hash-join does not have any of this overhead",
// Section 5.4); DefaultProbeCostET captures that penalty and should be
// used as JoinStats.I when costing DGJ stacks.
const (
	cScan  = 0.02 // sequential access, per row
	cProbe = 1.0  // in-memory hash probe
	cSort  = 0.1  // per comparison in the final sort

	// DefaultProbeCostET is the random index lookup cost of a DGJ
	// operator, in cProbe units.
	DefaultProbeCostET = 8.0
)

// PlanKind identifies the strategy the optimizer picked.
type PlanKind int

// The three physical strategies for the top-k topology query.
const (
	// PlanRegular is the conventional hash-join plan of Figure 14:
	// join everything, distinct, sort by score, fetch k.
	PlanRegular PlanKind = iota
	// PlanETIndex is the Figure 15(a) plan: a stack of IDGJ operators
	// over a score-ordered group source with early termination.
	PlanETIndex
	// PlanETHash is the Figure 15(b) variant using an HDGJ operator,
	// which rescans its inner relation once per group.
	PlanETHash
)

// String names the plan kind.
func (k PlanKind) String() string {
	switch k {
	case PlanRegular:
		return "regular"
	case PlanETIndex:
		return "et-idgj"
	case PlanETHash:
		return "et-hdgj"
	default:
		return "unknown"
	}
}

// RegularStats describes the conventional plan of Figure 14, which
// drives the join from the selected entity rows (DB2 and SQL Server
// both join LeftTops with the selected Protein tuples first): retrieve
// the rows of entity-set 1 that pass the local predicate, probe the
// Tops table by E1, probe entity-set 2 for each match, join TopInfo,
// then distinct + sort + fetch k.
type RegularStats struct {
	// Entity1Rows is the number of entity-1 rows retrieved by the
	// predicate index (N1 * rho1).
	Entity1Rows float64
	// TopsMatches is the expected number of Tops rows whose E1 joins a
	// selected entity-1 row (|Tops| * rho1).
	TopsMatches float64
	// Rho2 is the entity-2 predicate selectivity applied to each match.
	Rho2 float64
	// Groups is the number of distinct topologies reaching the sort.
	Groups float64
}

// RegularCost estimates the Figure 14 plan in probe units. All
// topologies are processed; there is no early termination — the
// inefficiency the paper identifies in Section 5.2 — but every probe is
// a cheap in-memory hash probe and the input shrinks with the entity
// predicates' selectivity, which is why this plan wins for selective
// queries (Table 2).
func RegularCost(rs RegularStats) float64 {
	cost := rs.Entity1Rows * (cScan + cProbe) // retrieve + probe Tops by E1
	cost += rs.TopsMatches * cProbe           // probe entity-2 hash per match
	cost += rs.TopsMatches * rs.Rho2 * cProbe // probe TopInfo for survivors
	if g := rs.Groups; g > 1 {
		cost += g * math.Log2(g+1) * cSort // final distinct+sort
	}
	return cost
}

// HDGJCost estimates the Figure 15(b) variant through the same
// Theorem 1 recurrence but with group costs dominated by the per-group
// rescan of the inner relations: a missed group pays the full scans, a
// hit group pays half in expectation (the match interrupts the scan).
func HDGJCost(s StackStats, k int) float64 {
	if k <= 0 || len(s.Cards) == 0 {
		return 0
	}
	c := computeChains(s.Joins)
	var scanAll float64
	for _, j := range s.Joins {
		scanAll += j.N * cScan
	}
	z := make([]float64, k+1)
	next := make([]float64, k+1)
	for l := len(s.Cards) - 1; l >= 0; l-- {
		np := math.Pow(1-c.x[0], s.Cards[l])
		missCost := s.Cards[l]*cScan + scanAll
		hitCost := s.Cards[l]*cScan + scanAll/2
		for kk := 1; kk <= k; kk++ {
			next[kk] = (1-np)*(hitCost+z[kk-1]) + np*(missCost+z[kk])
		}
		z, next = next, z
	}
	return z[k]
}

// Choice reports the optimizer's decision and the estimated costs of
// all candidate plans.
type Choice struct {
	Kind       PlanKind
	CostByPlan map[PlanKind]float64
}

// Choose compares the regular plan against the two early-termination
// plans for a top-k query and returns the cheapest (the decision the
// Fast-Top-k-Opt and Full-Top-k-Opt methods make). The stack's
// JoinStats.I should carry the random-lookup penalty
// (DefaultProbeCostET).
func Choose(reg RegularStats, stack StackStats, k int) Choice {
	costs := map[PlanKind]float64{
		PlanRegular: RegularCost(reg),
		PlanETIndex: stack.ETCost(k),
		PlanETHash:  HDGJCost(stack, k),
	}
	best := PlanRegular
	for _, kind := range []PlanKind{PlanETIndex, PlanETHash} {
		if costs[kind] < costs[best] {
			best = kind
		}
	}
	return Choice{Kind: best, CostByPlan: costs}
}
