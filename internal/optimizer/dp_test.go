package optimizer

import (
	"strings"
	"testing"
)

// topologyQuery builds the paper's SQL4 join graph:
// TopInfo (group source) - LeftTops - Protein - DNA.
func topologyQuery(rho float64, k int) DPQuery {
	return DPQuery{
		Relations: []Relation{
			{Name: "TopInfo", Rows: 400, Rho: 1, GroupSource: true, Groups: 400},
			{Name: "LeftTops", Rows: 1200, Rho: 1, ProbeCost: DefaultProbeCostET},
			{Name: "Protein", Rows: 20000, Rho: rho, ProbeCost: DefaultProbeCostET},
			{Name: "DNA", Rows: 20000, Rho: rho, ProbeCost: DefaultProbeCostET},
		},
		Edges: []DPEdge{
			{A: 0, B: 1, Sel: 1.0 / 400},   // TID = TID
			{A: 1, B: 2, Sel: 1.0 / 20000}, // E1 = ID
			{A: 1, B: 3, Sel: 1.0 / 20000}, // E2 = ID
		},
		K: k,
	}
}

func TestDPUnselectivePicksETStack(t *testing.T) {
	plan, err := EnumerateDP(topologyQuery(0.85, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.ET {
		t.Errorf("unselective top-10 plan lacks ET property:\n%s", plan)
	}
	s := plan.String()
	if !strings.Contains(s, "IDGJ") || !strings.Contains(s, "scoreScan") {
		t.Errorf("expected a DGJ stack over the score scan:\n%s", s)
	}
	// The ET plan must not need a final sort: order is preserved.
	if strings.HasPrefix(s, "sort") {
		t.Errorf("ET plan should not sort:\n%s", s)
	}
}

func TestDPSelectivePicksRegularPlan(t *testing.T) {
	plan, err := EnumerateDP(topologyQuery(0.02, 10))
	if err != nil {
		t.Fatal(err)
	}
	if plan.ET {
		t.Errorf("highly selective plan should be regular:\n%s", plan)
	}
	s := plan.String()
	if !strings.Contains(s, "hashJoin") {
		t.Errorf("expected hash joins:\n%s", s)
	}
	if !strings.Contains(s, "sort") {
		t.Errorf("regular plan must sort for the ORDER BY:\n%s", s)
	}
}

func TestDPWithoutTopKIgnoresET(t *testing.T) {
	// K=0: no early-termination benefit, so the ET discount is off and
	// the cheaper raw-cost plan wins.
	plan, err := EnumerateDP(topologyQuery(0.85, 0))
	if err != nil {
		t.Fatal(err)
	}
	if plan.EffectiveCost != plan.Cost {
		t.Error("no-k plan should not be discounted")
	}
}

func TestDPPropertiesPropagate(t *testing.T) {
	plan, err := EnumerateDP(topologyQuery(0.85, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Walk the winning stack: every IDGJ node must sit on an ET child.
	var walk func(p *DPPlan)
	walk = func(p *DPPlan) {
		if p == nil {
			return
		}
		if p.Op == "IDGJ" && (p.Left == nil || !p.Left.ET) {
			t.Errorf("IDGJ over a non-ET child:\n%s", plan)
		}
		walk(p.Left)
		walk(p.Right)
	}
	walk(plan)
}

func TestDPErrors(t *testing.T) {
	if _, err := EnumerateDP(DPQuery{}); err == nil {
		t.Error("empty query accepted")
	}
	// Disconnected join graph.
	q := DPQuery{
		Relations: []Relation{
			{Name: "A", Rows: 10, Rho: 1},
			{Name: "B", Rows: 10, Rho: 1},
		},
	}
	if _, err := EnumerateDP(q); err == nil {
		t.Error("disconnected query accepted")
	}
	// Edge out of range.
	q.Edges = []DPEdge{{A: 0, B: 7, Sel: 1}}
	if _, err := EnumerateDP(q); err == nil {
		t.Error("bad edge accepted")
	}
}

func TestDPCardinalityEstimates(t *testing.T) {
	plan, err := EnumerateDP(topologyQuery(0.5, 10))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rows <= 0 {
		t.Errorf("non-positive cardinality: %v", plan.Rows)
	}
	if plan.Cost <= 0 || plan.EffectiveCost <= 0 {
		t.Errorf("non-positive cost: %v / %v", plan.Cost, plan.EffectiveCost)
	}
	if plan.EffectiveCost > plan.Cost {
		t.Error("effective cost above raw cost")
	}
}

func TestDPScalesToWiderQueries(t *testing.T) {
	// A 6-relation star around the Tops relation still enumerates.
	q := DPQuery{
		Relations: []Relation{
			{Name: "TopInfo", Rows: 100, Rho: 1, GroupSource: true, Groups: 100},
			{Name: "Tops", Rows: 1000, Rho: 1},
			{Name: "R2", Rows: 5000, Rho: 0.5},
			{Name: "R3", Rows: 5000, Rho: 0.5},
			{Name: "R4", Rows: 5000, Rho: 0.5},
			{Name: "R5", Rows: 5000, Rho: 0.5},
		},
		Edges: []DPEdge{
			{A: 0, B: 1, Sel: 1.0 / 100},
			{A: 1, B: 2, Sel: 1.0 / 5000},
			{A: 1, B: 3, Sel: 1.0 / 5000},
			{A: 2, B: 4, Sel: 1.0 / 5000},
			{A: 3, B: 5, Sel: 1.0 / 5000},
		},
		K: 5,
	}
	plan, err := EnumerateDP(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil || plan.Cost <= 0 {
		t.Fatal("no plan")
	}
}
