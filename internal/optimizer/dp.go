package optimizer

import (
	"fmt"
	"math"
	"strings"
)

// This file implements the Section 5.4.1 extension of a System-R style
// optimizer: bottom-up dynamic programming over join orders where, at
// each step, the enumerator considers regular hash joins alongside DGJ
// joins, and retains the least-cost plan per (relation subset,
// interesting order, early-termination property). The early-termination
// property is the new "interesting property": a plan has it when every
// operator from the group source upward supports advanceToNextGroup, so
// a top-k consumer can skip group remainders. Such plans are not
// comparable to cheaper plans without the property — they are kept
// separately, exactly as interesting orders are.

// Relation is one input of a SQL6-class query (Section 5.4):
//
//	SELECT DISTINCT O1.ID, O1.score FROM O1..On
//	WHERE local_predicate(Oi) AND O1 join O2 join ... join On
//	ORDER BY O1.score DESC FETCH FIRST k ROWS ONLY
type Relation struct {
	Name string
	// Rows is the relation's cardinality.
	Rows float64
	// Rho is the local predicate's selectivity.
	Rho float64
	// ProbeCost is the cost of one index lookup on its join attribute
	// (DefaultProbeCostET for DGJ access paths).
	ProbeCost float64
	// GroupSource marks the relation whose tuples define the groups
	// and carry the score (TopInfo); it must have a score-ordered
	// index for ET plans to exist.
	GroupSource bool
	// Groups is the number of distinct groups (only meaningful on the
	// group source).
	Groups float64
}

// DPEdge is a join edge with its selectivity: joining relations A and B
// produces |A| * |B| * Sel tuples.
type DPEdge struct {
	A, B int
	Sel  float64
}

// DPQuery is the optimizer input.
type DPQuery struct {
	Relations []Relation
	Edges     []DPEdge
	// K is the FETCH FIRST k value; 0 disables the top-k discount.
	K int
}

// DPPlan is a physical plan produced by the enumerator.
type DPPlan struct {
	Op    string // "scan", "scoreScan", "hashJoin", "IDGJ", "sort"
	Rel   int    // leaf relation (for scans and DGJ inners)
	Left  *DPPlan
	Right *DPPlan

	Cost float64 // cost before any top-k discount
	Rows float64 // output cardinality estimate

	// ScoreOrdered is the interesting order: tuples emerge in score
	// order of the group source.
	ScoreOrdered bool
	// ET is the early-termination interesting property.
	ET bool

	// EffectiveCost is the cost after the top-k early-termination
	// discount (equals Cost for non-ET plans).
	EffectiveCost float64
}

// String renders the plan as a tree.
func (p *DPPlan) String() string {
	var b strings.Builder
	p.render(&b, "")
	return b.String()
}

func (p *DPPlan) render(b *strings.Builder, indent string) {
	props := ""
	if p.ET {
		props += " [ET]"
	}
	if p.ScoreOrdered {
		props += " [score-ordered]"
	}
	fmt.Fprintf(b, "%s%s(rel=%d, cost=%.1f, rows=%.1f)%s\n", indent, p.Op, p.Rel, p.Cost, p.Rows, props)
	if p.Left != nil {
		p.Left.render(b, indent+"  ")
	}
	if p.Right != nil {
		p.Right.render(b, indent+"  ")
	}
}

// planKey is the memo key: subset plus interesting properties.
type planKey struct {
	subset  uint32
	ordered bool
	et      bool
}

// EnumerateDP runs the dynamic program and returns the overall cheapest
// plan for the query (by effective cost, so ET plans are credited with
// their early-termination savings when K > 0).
func EnumerateDP(q DPQuery) (*DPPlan, error) {
	n := len(q.Relations)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: no relations")
	}
	if n > 20 {
		return nil, fmt.Errorf("optimizer: too many relations (%d)", n)
	}
	adj := make(map[int]map[int]float64) // a -> b -> sel
	for _, e := range q.Edges {
		if e.A < 0 || e.A >= n || e.B < 0 || e.B >= n {
			return nil, fmt.Errorf("optimizer: edge %v out of range", e)
		}
		if adj[e.A] == nil {
			adj[e.A] = map[int]float64{}
		}
		if adj[e.B] == nil {
			adj[e.B] = map[int]float64{}
		}
		adj[e.A][e.B] = e.Sel
		adj[e.B][e.A] = e.Sel
	}

	best := make(map[planKey]*DPPlan)
	consider := func(subset uint32, p *DPPlan) {
		k := planKey{subset: subset, ordered: p.ScoreOrdered, et: p.ET}
		if cur, ok := best[k]; !ok || p.Cost < cur.Cost {
			best[k] = p
		}
	}

	// Base plans: plain scans, plus the score-ordered scan for the
	// group source.
	for i, r := range q.Relations {
		subset := uint32(1) << i
		consider(subset, &DPPlan{
			Op: "scan", Rel: i,
			Cost: r.Rows * cScan,
			Rows: r.Rows * r.Rho,
		})
		if r.GroupSource {
			consider(subset, &DPPlan{
				Op: "scoreScan", Rel: i,
				Cost:         r.Rows * cScan,
				Rows:         r.Rows * r.Rho,
				ScoreOrdered: true,
				ET:           true, // each tuple is its own group
			})
		}
	}

	// Bottom-up over subset sizes: left-deep extension by one relation.
	full := uint32(1)<<n - 1
	for size := 1; size < n; size++ {
		for subset := uint32(1); subset <= full; subset++ {
			if bitCount(subset) != size {
				continue
			}
			for _, ordered := range []bool{false, true} {
				for _, et := range []bool{false, true} {
					left, ok := best[planKey{subset, ordered, et}]
					if !ok {
						continue
					}
					for r := 0; r < n; r++ {
						if subset&(1<<r) != 0 {
							continue
						}
						sel, connected := joinSel(adj, subset, r)
						if !connected {
							continue
						}
						rel := q.Relations[r]
						outRows := left.Rows * rel.Rows * rel.Rho * sel
						newSubset := subset | 1<<r

						// Regular hash join: build the (filtered) inner,
						// probe per outer tuple. Destroys order and ET.
						consider(newSubset, &DPPlan{
							Op: "hashJoin", Rel: r, Left: left,
							Cost: left.Cost + rel.Rows*cScan +
								rel.Rows*rel.Rho*0.5 + left.Rows*cProbe,
							Rows: outRows,
						})
						// IDGJ: index probes per outer tuple; preserves
						// order and ET when the outer has them.
						if left.ET {
							probe := rel.ProbeCost
							if probe == 0 {
								probe = DefaultProbeCostET
							}
							consider(newSubset, &DPPlan{
								Op: "IDGJ", Rel: r, Left: left,
								Cost:         left.Cost + left.Rows*probe,
								Rows:         outRows,
								ScoreOrdered: left.ScoreOrdered,
								ET:           true,
							})
						}
					}
				}
			}
		}
	}

	// Pick the overall winner by effective cost. Non-ordered complete
	// plans must pay a final sort for the ORDER BY.
	var winner *DPPlan
	for _, ordered := range []bool{false, true} {
		for _, et := range []bool{false, true} {
			p, ok := best[planKey{full, ordered, et}]
			if !ok {
				continue
			}
			cand := *p
			if !p.ScoreOrdered {
				g := groupCount(q)
				sortCost := 0.0
				if g > 1 {
					sortCost = g * math.Log2(g+1) * cSort
				}
				cand = DPPlan{
					Op: "sort", Left: p,
					Cost: p.Cost + sortCost, Rows: p.Rows,
					ScoreOrdered: true, ET: p.ET,
				}
			}
			cand.EffectiveCost = cand.Cost
			if cand.ET && q.K > 0 {
				cand.EffectiveCost = cand.Cost * etDiscount(q)
			}
			if winner == nil || cand.EffectiveCost < winner.EffectiveCost {
				w := cand
				winner = &w
			}
		}
	}
	if winner == nil {
		return nil, fmt.Errorf("optimizer: query graph is disconnected")
	}
	return winner, nil
}

// joinSel returns the combined selectivity of all edges between the
// subset and relation r, and whether any exist.
func joinSel(adj map[int]map[int]float64, subset uint32, r int) (float64, bool) {
	sel := 1.0
	connected := false
	for a, m := range adj {
		if subset&(1<<a) == 0 {
			continue
		}
		if s, ok := m[r]; ok {
			sel *= s
			connected = true
		}
	}
	return sel, connected
}

func groupCount(q DPQuery) float64 {
	for _, r := range q.Relations {
		if r.GroupSource {
			if r.Groups > 0 {
				return r.Groups
			}
			return r.Rows
		}
	}
	return 0
}

// etDiscount estimates the fraction of work an ET plan performs: with m
// groups and k requested, roughly k out of the groups that produce
// results need to be processed. The precise per-group model is
// StackStats.ETCost; the DP uses this coarse factor only to rank plan
// shapes, and the final candidates can be re-costed exactly.
func etDiscount(q DPQuery) float64 {
	m := groupCount(q)
	if m <= 0 {
		return 1
	}
	// Probability a group yields a result, assuming predicates filter
	// uniformly across groups.
	rho := 1.0
	for _, r := range q.Relations {
		if !r.GroupSource {
			rho *= r.Rho
		}
	}
	if rho <= 0 {
		return 1
	}
	expectedGroups := float64(q.K) / rho
	if expectedGroups > m {
		expectedGroups = m
	}
	f := expectedGroups / m
	if f > 1 {
		f = 1
	}
	if f < 1.0/m {
		f = 1.0 / m
	}
	return f
}

func bitCount(v uint32) int {
	c := 0
	for ; v != 0; v &= v - 1 {
		c++
	}
	return c
}
