package relstore

import (
	"fmt"
	"strings"
)

// Pred is a boolean predicate over rows of one schema. Predicates are
// compiled against a schema up front so evaluation is positional. They
// model the paper's query constraints: keyword containment
// (desc.ct('enzyme')) and structured comparisons (type = 'mRNA').
type Pred interface {
	// Eval reports whether the row satisfies the predicate.
	Eval(r Row) bool
	// EvalAt reports whether the table's row at pos satisfies the
	// predicate, reading cells straight from the column arrays. It is
	// the allocation-free evaluation path scans use: no Row is
	// materialized, no Value is constructed per row.
	EvalAt(t *Table, pos int32) bool
	// Sel estimates the fraction of the table's rows that satisfy the
	// predicate, using table statistics (Section 5.4.3 parameter rho).
	Sel(t *Table) float64
	// String renders the predicate in SQL-ish syntax.
	String() string
}

// True is the predicate satisfied by every row.
type True struct{}

// Eval implements Pred.
func (True) Eval(Row) bool { return true }

// EvalAt implements Pred.
func (True) EvalAt(*Table, int32) bool { return true }

// Sel implements Pred.
func (True) Sel(*Table) float64 { return 1 }

func (True) String() string { return "TRUE" }

type eqPred struct {
	col  int
	name string
	val  Value
}

// Eq returns the predicate col = v.
func Eq(s *Schema, col string, v Value) (Pred, error) {
	c, ok := s.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: %s: no column %q", s.Name, col)
	}
	return &eqPred{col: c, name: col, val: v}, nil
}

// MustEq is Eq that panics on error.
func MustEq(s *Schema, col string, v Value) Pred {
	p, err := Eq(s, col, v)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *eqPred) Eval(r Row) bool { return r[p.col].Equal(p.val) }

func (p *eqPred) EvalAt(t *Table, pos int32) bool {
	if t.Schema.Cols[p.col].Type == TInt {
		return p.val.Kind == TInt && t.IntAt(pos, p.col) == p.val.Int
	}
	return p.val.Kind == TString && t.StrAt(pos, p.col) == p.val.Str
}

func (p *eqPred) Sel(t *Table) float64 {
	st := t.Stats()
	if st.Rows == 0 {
		return 0
	}
	if cs := st.Col(p.col); cs != nil {
		if n, ok := cs.Freq[p.val]; ok {
			return float64(n) / float64(st.Rows)
		}
		if cs.NDV > 0 {
			return 1 / float64(cs.NDV)
		}
	}
	return 0.1
}

func (p *eqPred) String() string { return fmt.Sprintf("%s = %s", p.name, p.val) }

type containsPred struct {
	col  int
	name string
	word string
}

// Contains returns the keyword-containment predicate col.ct('word'),
// true when the column's string value contains word as a whitespace-
// separated token (the paper's desc.ct keyword-search clause).
func Contains(s *Schema, col string, word string) (Pred, error) {
	c, ok := s.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: %s: no column %q", s.Name, col)
	}
	if s.Cols[c].Type != TString {
		return nil, fmt.Errorf("relstore: %s.%s: ct() needs a string column", s.Name, col)
	}
	return &containsPred{col: c, name: col, word: word}, nil
}

// MustContains is Contains that panics on error.
func MustContains(s *Schema, col, word string) Pred {
	p, err := Contains(s, col, word)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *containsPred) Eval(r Row) bool {
	return containsToken(r[p.col].Str, p.word)
}

func (p *containsPred) EvalAt(t *Table, pos int32) bool {
	return containsToken(t.StrAt(pos, p.col), p.word)
}

func containsToken(text, word string) bool {
	for len(text) > 0 {
		i := strings.IndexByte(text, ' ')
		var tok string
		if i < 0 {
			tok, text = text, ""
		} else {
			tok, text = text[:i], text[i+1:]
		}
		if tok == word {
			return true
		}
	}
	return false
}

func (p *containsPred) Sel(t *Table) float64 {
	st := t.Stats()
	if st.Rows == 0 {
		return 0
	}
	if cs := st.Col(p.col); cs != nil {
		if n, ok := cs.TokenFreq[p.word]; ok {
			return float64(n) / float64(st.Rows)
		}
	}
	return 0.05
}

func (p *containsPred) String() string { return fmt.Sprintf("%s.ct('%s')", p.name, p.word) }

type cmpPred struct {
	col  int
	name string
	op   string // "<", "<=", ">", ">="
	val  Value
}

// Cmp returns the comparison predicate col op v where op is one of
// "<", "<=", ">", ">=".
func Cmp(s *Schema, col, op string, v Value) (Pred, error) {
	c, ok := s.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: %s: no column %q", s.Name, col)
	}
	switch op {
	case "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("relstore: bad comparison operator %q", op)
	}
	return &cmpPred{col: c, name: col, op: op, val: v}, nil
}

func (p *cmpPred) Eval(r Row) bool {
	return p.holds(r[p.col].Compare(p.val))
}

func (p *cmpPred) EvalAt(t *Table, pos int32) bool {
	return p.holds(t.compareValueAt(p.col, pos, p.val))
}

func (p *cmpPred) holds(c int) bool {
	switch p.op {
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default:
		return c >= 0
	}
}

func (p *cmpPred) Sel(t *Table) float64 {
	st := t.Stats()
	if st.Rows == 0 {
		return 0
	}
	cs := st.Col(p.col)
	if cs == nil || cs.Min.Kind != TInt || cs.Max.Int == cs.Min.Int {
		return 0.33
	}
	// Linear interpolation over the integer range.
	span := float64(cs.Max.Int - cs.Min.Int)
	frac := (float64(p.val.Int) - float64(cs.Min.Int)) / span
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	switch p.op {
	case "<", "<=":
		return frac
	default:
		return 1 - frac
	}
}

func (p *cmpPred) String() string { return fmt.Sprintf("%s %s %s", p.name, p.op, p.val) }

type andPred struct{ ps []Pred }

// And returns the conjunction of predicates; And() is True.
func And(ps ...Pred) Pred {
	switch len(ps) {
	case 0:
		return True{}
	case 1:
		return ps[0]
	}
	return &andPred{ps: ps}
}

func (p *andPred) Eval(r Row) bool {
	for _, q := range p.ps {
		if !q.Eval(r) {
			return false
		}
	}
	return true
}

func (p *andPred) EvalAt(t *Table, pos int32) bool {
	for _, q := range p.ps {
		if !q.EvalAt(t, pos) {
			return false
		}
	}
	return true
}

func (p *andPred) Sel(t *Table) float64 {
	s := 1.0
	for _, q := range p.ps {
		s *= q.Sel(t) // attribute-independence assumption, as in the paper
	}
	return s
}

func (p *andPred) String() string {
	parts := make([]string, len(p.ps))
	for i, q := range p.ps {
		parts[i] = q.String()
	}
	return "(" + strings.Join(parts, " AND ") + ")"
}

type orPred struct{ ps []Pred }

// Or returns the disjunction of predicates; Or() is unsatisfiable.
func Or(ps ...Pred) Pred {
	if len(ps) == 1 {
		return ps[0]
	}
	return &orPred{ps: ps}
}

func (p *orPred) Eval(r Row) bool {
	for _, q := range p.ps {
		if q.Eval(r) {
			return true
		}
	}
	return false
}

func (p *orPred) EvalAt(t *Table, pos int32) bool {
	for _, q := range p.ps {
		if q.EvalAt(t, pos) {
			return true
		}
	}
	return false
}

func (p *orPred) Sel(t *Table) float64 {
	miss := 1.0
	for _, q := range p.ps {
		miss *= 1 - q.Sel(t)
	}
	return 1 - miss
}

func (p *orPred) String() string {
	if len(p.ps) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(p.ps))
	for i, q := range p.ps {
		parts[i] = q.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}

type notPred struct{ p Pred }

// Not negates a predicate.
func Not(p Pred) Pred { return &notPred{p: p} }

func (p *notPred) Eval(r Row) bool                 { return !p.p.Eval(r) }
func (p *notPred) EvalAt(t *Table, pos int32) bool { return !p.p.EvalAt(t, pos) }
func (p *notPred) Sel(t *Table) float64            { return 1 - p.p.Sel(t) }
func (p *notPred) String() string                  { return "NOT " + p.p.String() }
