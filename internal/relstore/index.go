package relstore

import (
	"sort"
	"sync"
)

// HashIndex is an equality index on one column: key -> row positions.
// It models the hash indices the paper's engine probes in index
// nested-loop joins (cost parameter I_i in Section 5.4.3).
//
// Keys are int64: the integer value for TInt columns, the dictionary
// code for TString columns. Probing therefore never hashes a composite
// Value struct or a string — a string probe is one dictionary lookup
// (absent string: no rows, no map access).
type HashIndex struct {
	Col int
	t   *Table
	m   map[int64][]int32
}

func newHashIndex(t *Table, col int) *HashIndex {
	return &HashIndex{Col: col, t: t, m: make(map[int64][]int32)}
}

func (ix *HashIndex) addKey(k int64, pos int32) { ix.m[k] = append(ix.m[k], pos) }

// Lookup returns the positions of all rows whose indexed column equals v.
// The returned slice is shared; callers must not mutate it.
func (ix *HashIndex) Lookup(v Value) []int32 {
	k, ok := ix.t.keyFor(ix.Col, v)
	if !ok {
		return nil
	}
	return ix.m[k]
}

// LookupInt returns the positions matching an integer key directly
// (TInt columns only) — the no-Value probe for tight loops.
func (ix *HashIndex) LookupInt(k int64) []int32 { return ix.m[k] }

// NumKeys returns the number of distinct values in the index.
func (ix *HashIndex) NumKeys() int { return len(ix.m) }

// OrderedIndex is a sorted permutation of row positions by one column,
// supporting range scans and ordered iteration (used for score-ordered
// access to TopInfo in the early-termination plans, Figure 15). All
// comparisons go through the table's column arrays; no Value is built
// per comparison.
//
// Inserts are buffered: add appends to a pending list in O(1) and the
// next read merges the (sorted) pending block into the permutation in
// one pass, so N inserts into a scored table cost O(N log N) total
// rather than the O(N^2) of a copy-shift insert per row.
type OrderedIndex struct {
	Col int
	t   *Table

	mu      sync.Mutex
	perm    []int32 // row positions sorted by column value
	pending []int32 // positions added since the last merge
}

func newOrderedIndex(t *Table, col int) *OrderedIndex {
	ix := &OrderedIndex{Col: col, t: t}
	ix.perm = make([]int32, t.nrows)
	for i := range ix.perm {
		ix.perm[i] = int32(i)
	}
	sort.SliceStable(ix.perm, func(a, b int) bool {
		return t.compareAt(col, ix.perm[a], ix.perm[b]) < 0
	})
	return ix
}

func (ix *OrderedIndex) add(pos int32) {
	ix.mu.Lock()
	ix.pending = append(ix.pending, pos)
	ix.mu.Unlock()
}

// flush merges the pending block into the sorted permutation. Rows are
// append-only, so every pending position exceeds every merged position;
// taking merged entries first on value ties therefore preserves the
// index's insertion-order tie-break. Concurrent readers may race to
// flush; the mutex makes the merge happen exactly once.
func (ix *OrderedIndex) flush() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.pending) == 0 {
		return
	}
	pend := ix.pending
	t, col := ix.t, ix.Col
	sort.SliceStable(pend, func(a, b int) bool {
		return t.compareAt(col, pend[a], pend[b]) < 0
	})
	merged := make([]int32, 0, len(ix.perm)+len(pend))
	i, j := 0, 0
	for i < len(ix.perm) && j < len(pend) {
		if t.compareAt(col, ix.perm[i], pend[j]) <= 0 {
			merged = append(merged, ix.perm[i])
			i++
		} else {
			merged = append(merged, pend[j])
			j++
		}
	}
	merged = append(merged, ix.perm[i:]...)
	merged = append(merged, pend[j:]...)
	ix.perm = merged
	ix.pending = nil
}

// Len returns the number of indexed rows.
func (ix *OrderedIndex) Len() int {
	ix.flush()
	return len(ix.perm)
}

// At returns the row position at sorted rank i (ascending by value).
func (ix *OrderedIndex) At(i int) int32 {
	ix.flush()
	return ix.perm[i]
}

// Scan visits row positions in ascending column order; descending if
// desc is set. Ties are always visited in insertion order (the scan is
// stable in both directions), so plans that consume a descending score
// order break ties identically to an explicit (score DESC, key ASC)
// sort. The visit function returns false to stop early.
func (ix *OrderedIndex) Scan(desc bool, visit func(pos int32) bool) {
	ix.flush()
	if desc {
		hi := len(ix.perm)
		for hi > 0 {
			// Find the run of equal values ending at hi-1.
			lo := hi - 1
			for lo > 0 && ix.t.compareAt(ix.Col, ix.perm[lo-1], ix.perm[lo]) == 0 {
				lo--
			}
			for i := lo; i < hi; i++ {
				if !visit(ix.perm[i]) {
					return
				}
			}
			hi = lo
		}
		return
	}
	for _, p := range ix.perm {
		if !visit(p) {
			return
		}
	}
}

// Range visits row positions with lo <= value <= hi in ascending order.
func (ix *OrderedIndex) Range(lo, hi Value, visit func(pos int32) bool) {
	ix.flush()
	start := sort.Search(len(ix.perm), func(i int) bool {
		return ix.t.compareValueAt(ix.Col, ix.perm[i], lo) >= 0
	})
	for i := start; i < len(ix.perm); i++ {
		p := ix.perm[i]
		if ix.t.compareValueAt(ix.Col, p, hi) > 0 {
			return
		}
		if !visit(p) {
			return
		}
	}
}
