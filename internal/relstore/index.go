package relstore

import "sort"

// HashIndex is an equality index on one column: value -> row positions.
// It models the hash indices the paper's engine probes in index
// nested-loop joins (cost parameter I_i in Section 5.4.3).
type HashIndex struct {
	Col int
	m   map[Value][]int32
}

func newHashIndex(col int) *HashIndex {
	return &HashIndex{Col: col, m: make(map[Value][]int32)}
}

func (ix *HashIndex) add(v Value, pos int32) { ix.m[v] = append(ix.m[v], pos) }

// Lookup returns the positions of all rows whose indexed column equals v.
// The returned slice is shared; callers must not mutate it.
func (ix *HashIndex) Lookup(v Value) []int32 { return ix.m[v] }

// NumKeys returns the number of distinct values in the index.
func (ix *HashIndex) NumKeys() int { return len(ix.m) }

// OrderedIndex is a sorted permutation of row positions by one column,
// supporting range scans and ordered iteration (used for score-ordered
// access to TopInfo in the early-termination plans, Figure 15).
type OrderedIndex struct {
	Col  int
	perm []int32 // row positions sorted by column value
	t    *Table
}

func newOrderedIndex(t *Table, col int) *OrderedIndex {
	ix := &OrderedIndex{Col: col, t: t}
	ix.perm = make([]int32, len(t.rows))
	for i := range ix.perm {
		ix.perm[i] = int32(i)
	}
	sort.SliceStable(ix.perm, func(a, b int) bool {
		return t.rows[ix.perm[a]][col].Compare(t.rows[ix.perm[b]][col]) < 0
	})
	return ix
}

func (ix *OrderedIndex) add(pos int32) {
	v := ix.t.rows[pos][ix.Col]
	at := sort.Search(len(ix.perm), func(i int) bool {
		return ix.t.rows[ix.perm[i]][ix.Col].Compare(v) > 0
	})
	ix.perm = append(ix.perm, 0)
	copy(ix.perm[at+1:], ix.perm[at:])
	ix.perm[at] = pos
}

// Len returns the number of indexed rows.
func (ix *OrderedIndex) Len() int { return len(ix.perm) }

// At returns the row position at sorted rank i (ascending by value).
func (ix *OrderedIndex) At(i int) int32 { return ix.perm[i] }

// Scan visits row positions in ascending column order; descending if
// desc is set. Ties are always visited in insertion order (the scan is
// stable in both directions), so plans that consume a descending score
// order break ties identically to an explicit (score DESC, key ASC)
// sort. The visit function returns false to stop early.
func (ix *OrderedIndex) Scan(desc bool, visit func(pos int32) bool) {
	if desc {
		hi := len(ix.perm)
		for hi > 0 {
			// Find the run of equal values ending at hi-1.
			lo := hi - 1
			v := ix.t.rows[ix.perm[lo]][ix.Col]
			for lo > 0 && ix.t.rows[ix.perm[lo-1]][ix.Col].Compare(v) == 0 {
				lo--
			}
			for i := lo; i < hi; i++ {
				if !visit(ix.perm[i]) {
					return
				}
			}
			hi = lo
		}
		return
	}
	for _, p := range ix.perm {
		if !visit(p) {
			return
		}
	}
}

// Range visits row positions with lo <= value <= hi in ascending order.
func (ix *OrderedIndex) Range(lo, hi Value, visit func(pos int32) bool) {
	start := sort.Search(len(ix.perm), func(i int) bool {
		return ix.t.rows[ix.perm[i]][ix.Col].Compare(lo) >= 0
	})
	for i := start; i < len(ix.perm); i++ {
		p := ix.perm[i]
		if ix.t.rows[p][ix.Col].Compare(hi) > 0 {
			return
		}
		if !visit(p) {
			return
		}
	}
}
