package relstore

import (
	"sort"
	"sync"
	"sync/atomic"
)

// HashIndex is an equality index on one column: key -> row positions.
// It models the hash indices the paper's engine probes in index
// nested-loop joins (cost parameter I_i in Section 5.4.3).
//
// Keys are int64: the integer value for TInt columns, the dictionary
// code for TString columns. Probing therefore never hashes a composite
// Value struct or a string — a string probe is one dictionary lookup
// (absent string: no rows, no map access).
//
// The index is split like the table's storage into a sealed map (an
// immutable map probed lock-free) and a pending buffer that absorbs
// the positions of rows inserted since the last Compact. While no
// delta rows exist, a probe is exactly the pre-live-update map lookup;
// with pending entries, a probe on a delta-touched key concatenates
// the sealed and pending postings into a fresh slice.
type HashIndex struct {
	Col int
	t   *Table

	sealed atomic.Pointer[map[int64][]int32]
	mu     sync.RWMutex
	pend   map[int64][]int32
	npend  atomic.Int32
}

func newHashIndex(t *Table, col int) *HashIndex {
	ix := &HashIndex{Col: col, t: t}
	m := make(map[int64][]int32)
	ix.sealed.Store(&m)
	return ix
}

// addPending records a freshly inserted row (writers only, serialized
// by the table's write lock).
func (ix *HashIndex) addPending(k int64, pos int32) {
	ix.mu.Lock()
	if ix.pend == nil {
		ix.pend = make(map[int64][]int32)
	}
	ix.pend[k] = append(ix.pend[k], pos)
	ix.mu.Unlock()
	ix.npend.Add(1)
}

// merge folds the pending postings into a fresh sealed map (writers
// only, under the table's write lock). Sealed postings of untouched
// keys are shared with the previous map; touched keys get new slices,
// so probes holding the old map stay valid. The sealed-pointer swap
// and the pending clear happen atomically with respect to readers'
// locked slow path, so a racing probe can never double-count or miss
// the postings being merged.
func (ix *HashIndex) merge() {
	if ix.npend.Load() == 0 {
		return
	}
	old := *ix.sealed.Load()
	merged := make(map[int64][]int32, len(old)+len(ix.pend))
	for k, ps := range old {
		merged[k] = ps
	}
	for k, ps := range ix.pend {
		base := merged[k]
		merged[k] = append(base[:len(base):len(base)], ps...)
	}
	ix.mu.Lock()
	ix.sealed.Store(&merged)
	ix.pend = nil
	ix.npend.Store(0)
	ix.mu.Unlock()
}

// dropAtOrAbove removes every posting at position >= limit (rollback
// support; writers only, under the table's write lock). Pending
// postings are filtered in place under the index lock. The sealed map
// normally never holds a doomed position — rolled-back rows are always
// un-sealed — except when the index itself was built between the
// doomed inserts and the rollback (CreateHashIndex scans the live
// state); that case is detected and the sealed map rebuilt on fresh
// backing, so probes holding the old map stay valid.
func (ix *HashIndex) dropAtOrAbove(limit int32) {
	ix.mu.Lock()
	var removed int32
	for k, ps := range ix.pend {
		kept := ps[:0]
		for _, pos := range ps {
			if pos < limit {
				kept = append(kept, pos)
			} else {
				removed++
			}
		}
		if len(kept) == 0 {
			delete(ix.pend, k)
		} else {
			ix.pend[k] = kept
		}
	}
	ix.mu.Unlock()
	if removed > 0 {
		ix.npend.Add(-removed)
	}

	sealed := *ix.sealed.Load()
	dirty := false
	for _, ps := range sealed {
		for _, pos := range ps {
			if pos >= limit {
				dirty = true
				break
			}
		}
		if dirty {
			break
		}
	}
	if !dirty {
		return
	}
	rebuilt := make(map[int64][]int32, len(sealed))
	for k, ps := range sealed {
		kept := make([]int32, 0, len(ps))
		for _, pos := range ps {
			if pos < limit {
				kept = append(kept, pos)
			}
		}
		if len(kept) > 0 {
			rebuilt[k] = kept
		}
	}
	ix.sealed.Store(&rebuilt)
}

// Lookup returns the positions of all rows whose indexed column equals v.
// The returned slice is shared; callers must not mutate it.
func (ix *HashIndex) Lookup(v Value) []int32 {
	k, ok := ix.t.keyFor(ix.Col, v)
	if !ok {
		return nil
	}
	return ix.LookupInt(k)
}

// LookupInt returns the positions matching an integer key directly
// (TInt columns; for TString columns the key is a dictionary code) —
// the no-Value probe for tight loops. While the key has no pending
// rows the probe allocates nothing. The pending counter is read before
// the sealed map and the slow path reads both under one read lock, so
// a probe racing Compact's merge never misses or double-counts a
// committed row.
func (ix *HashIndex) LookupInt(k int64) []int32 {
	if ix.npend.Load() == 0 {
		return (*ix.sealed.Load())[k]
	}
	ix.mu.RLock()
	base := (*ix.sealed.Load())[k]
	pend := ix.pend[k]
	var out []int32
	if len(pend) > 0 {
		out = make([]int32, 0, len(base)+len(pend))
		out = append(out, base...)
		out = append(out, pend...)
	}
	ix.mu.RUnlock()
	if out != nil {
		return out
	}
	return base
}

// NumKeys returns the number of distinct values in the index.
func (ix *HashIndex) NumKeys() int {
	if ix.npend.Load() == 0 {
		return len(*ix.sealed.Load())
	}
	ix.mu.RLock()
	sealed := *ix.sealed.Load()
	n := len(sealed)
	for k := range ix.pend {
		if _, ok := sealed[k]; !ok {
			n++
		}
	}
	ix.mu.RUnlock()
	return n
}

// approxBytes estimates the index footprint (sealed + pending); the
// caller holds the table's registry lock.
func (ix *HashIndex) approxBytes() int64 {
	var b int64
	for _, ps := range *ix.sealed.Load() {
		b += 16 + int64(len(ps))*4 // key + slice bookkeeping + postings
	}
	return b + ix.pendingBytes()
}

// pendingBytes estimates the pending-buffer footprint alone.
func (ix *HashIndex) pendingBytes() int64 {
	var b int64
	ix.mu.RLock()
	for _, ps := range ix.pend {
		b += 16 + int64(len(ps))*4
	}
	ix.mu.RUnlock()
	return b
}

// OrderedIndex is a sorted permutation of row positions by one column,
// supporting range scans and ordered iteration (used for score-ordered
// access to TopInfo in the early-termination plans, Figure 15). All
// comparisons go through the table's column arrays; no Value is built
// per comparison.
//
// Inserts are buffered: add appends to a pending list in O(1) and the
// next read merges the (sorted) pending block into the permutation in
// one pass, so N inserts into a scored table cost O(N log N) total
// rather than the O(N^2) of a copy-shift insert per row. The merge
// always builds a fresh permutation slice and readers iterate the
// snapshot the merge returned, so ordered scans are safe to race with
// concurrent Inserts and with each other.
type OrderedIndex struct {
	Col int
	t   *Table

	mu      sync.Mutex
	perm    []int32 // row positions sorted by column value; replaced wholesale
	pending []int32 // positions added since the last merge
}

func newOrderedIndex(t *Table, col int) *OrderedIndex {
	ix := &OrderedIndex{Col: col, t: t}
	st := t.loadState()
	ix.perm = make([]int32, st.nrows)
	for i := range ix.perm {
		ix.perm[i] = int32(i)
	}
	sort.SliceStable(ix.perm, func(a, b int) bool {
		return st.compareAt(t.Schema, col, ix.perm[a], ix.perm[b]) < 0
	})
	return ix
}

func (ix *OrderedIndex) add(pos int32) {
	ix.mu.Lock()
	ix.pending = append(ix.pending, pos)
	ix.mu.Unlock()
}

// snapshot merges any pending block into the sorted permutation and
// returns the resulting permutation together with the table snapshot
// that covers every position in it. Rows are append-only, so every
// pending position exceeds every merged position; taking merged
// entries first on value ties therefore preserves the index's
// insertion-order tie-break. The merge builds a new slice, so
// previously returned snapshots stay valid for their readers.
func (ix *OrderedIndex) snapshot() ([]int32, *tableState) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	// Load the table state inside the lock: any position a writer added
	// to pending was published to the table before the add, so this
	// state covers the whole merged permutation.
	st := ix.t.loadState()
	if len(ix.pending) == 0 {
		return ix.perm, st
	}
	pend := ix.pending
	t, col := ix.t, ix.Col
	sort.SliceStable(pend, func(a, b int) bool {
		return st.compareAt(t.Schema, col, pend[a], pend[b]) < 0
	})
	merged := make([]int32, 0, len(ix.perm)+len(pend))
	i, j := 0, 0
	for i < len(ix.perm) && j < len(pend) {
		if st.compareAt(t.Schema, col, ix.perm[i], pend[j]) <= 0 {
			merged = append(merged, ix.perm[i])
			i++
		} else {
			merged = append(merged, pend[j])
			j++
		}
	}
	merged = append(merged, ix.perm[i:]...)
	merged = append(merged, pend[j:]...)
	ix.perm = merged
	ix.pending = nil
	return merged, st
}

// flush merges the pending block into the sorted permutation.
func (ix *OrderedIndex) flush() { ix.snapshot() }

// dropAtOrAbove removes every position >= limit from the index
// (rollback support; writers only, under the table's write lock). A
// concurrent reader's snapshot() call may already have merged pending
// positions into the permutation, so BOTH the pending block and the
// permutation are filtered; the permutation is rebuilt on fresh backing
// so snapshots previously handed to readers stay valid.
func (ix *OrderedIndex) dropAtOrAbove(limit int32) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	kept := ix.pending[:0]
	for _, pos := range ix.pending {
		if pos < limit {
			kept = append(kept, pos)
		}
	}
	ix.pending = kept
	dirty := false
	for _, pos := range ix.perm {
		if pos >= limit {
			dirty = true
			break
		}
	}
	if !dirty {
		return
	}
	rebuilt := make([]int32, 0, len(ix.perm))
	for _, pos := range ix.perm {
		if pos < limit {
			rebuilt = append(rebuilt, pos)
		}
	}
	ix.perm = rebuilt
}

// Len returns the number of indexed rows.
func (ix *OrderedIndex) Len() int {
	perm, _ := ix.snapshot()
	return len(perm)
}

// At returns the row position at sorted rank i (ascending by value).
func (ix *OrderedIndex) At(i int) int32 {
	perm, _ := ix.snapshot()
	return perm[i]
}

// Scan visits row positions in ascending column order; descending if
// desc is set. Ties are always visited in insertion order (the scan is
// stable in both directions), so plans that consume a descending score
// order break ties identically to an explicit (score DESC, key ASC)
// sort. The visit function returns false to stop early. The scan
// covers the rows indexed when it started (a snapshot).
func (ix *OrderedIndex) Scan(desc bool, visit func(pos int32) bool) {
	perm, st := ix.snapshot()
	if desc {
		hi := len(perm)
		for hi > 0 {
			// Find the run of equal values ending at hi-1.
			lo := hi - 1
			for lo > 0 && st.compareAt(ix.t.Schema, ix.Col, perm[lo-1], perm[lo]) == 0 {
				lo--
			}
			for i := lo; i < hi; i++ {
				if !visit(perm[i]) {
					return
				}
			}
			hi = lo
		}
		return
	}
	for _, p := range perm {
		if !visit(p) {
			return
		}
	}
}

// Range visits row positions with lo <= value <= hi in ascending order.
func (ix *OrderedIndex) Range(lo, hi Value, visit func(pos int32) bool) {
	perm, st := ix.snapshot()
	sch := ix.t.Schema
	start := sort.Search(len(perm), func(i int) bool {
		return st.compareValueAt(sch, ix.Col, perm[i], lo) >= 0
	})
	for i := start; i < len(perm); i++ {
		p := perm[i]
		if st.compareValueAt(sch, ix.Col, p, hi) > 0 {
			return
		}
		if !visit(p) {
			return
		}
	}
}

// approxBytes estimates the index footprint (permutation + pending).
func (ix *OrderedIndex) approxBytes() int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return int64(len(ix.perm)+len(ix.pending)) * 4
}

// pendingBytes estimates the pending-block footprint alone.
func (ix *OrderedIndex) pendingBytes() int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return int64(len(ix.pending)) * 4
}
