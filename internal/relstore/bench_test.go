package relstore

import (
	"fmt"
	"math/rand"
	"testing"
)

// Storage-engine benchmarks (run with -benchmem; CI runs them once per
// push and cmd/benchtab -exp benchstorage records the same quantities
// in BENCH_storage.json). BenchmarkScan/rowstore replays the pre-
// columnar access pattern — one materialized []Value row per visited
// tuple — against the columnar engine's positional path, so the
// allocs/op reduction of the columnar layout stays visible release
// over release.

const benchRows = 20000

func benchTable(b *testing.B) *Table {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	s := MustSchema("Bench", []Column{
		{Name: "ID", Type: TInt},
		{Name: "grp", Type: TInt},
		{Name: "desc", Type: TString},
	}, "ID")
	vocab := make([]string, 64)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("protein enzyme variant %d hypothetical domain", i)
	}
	t := NewTable(s)
	for i := 0; i < benchRows; i++ {
		t.MustInsert(IntVal(int64(i)), IntVal(int64(rng.Intn(97))), StrVal(vocab[rng.Intn(len(vocab))]))
	}
	return t
}

// BenchmarkScan measures a predicate scan of the desc column: the
// columnar positional path (EvalAt, no materialization), the reusable-
// buffer Scan shim, and the row-store pattern of materializing every
// tuple.
func BenchmarkScan(b *testing.B) {
	t := benchTable(b)
	pred := MustContains(t.Schema, "desc", "enzyme")
	b.Run("columnar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			t.ScanPos(func(pos int32) bool {
				if pred.EvalAt(t, pos) {
					n++
				}
				return true
			})
			if n != benchRows {
				b.Fatal("wrong hit count")
			}
		}
	})
	b.Run("scanbuf", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			t.Scan(func(pos int32, r Row) bool {
				if pred.Eval(r) {
					n++
				}
				return true
			})
			if n != benchRows {
				b.Fatal("wrong hit count")
			}
		}
	})
	b.Run("rowstore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			for pos := int32(0); pos < int32(t.NumRows()); pos++ {
				if pred.Eval(t.Row(pos)) { // materializes, as the row store did
					n++
				}
			}
			if n != benchRows {
				b.Fatal("wrong hit count")
			}
		}
	})
}

// BenchmarkHashProbe measures equality-index probes: the int64-keyed
// index probed by Value and by raw key, plus the dictionary-code probe
// of a string column.
func BenchmarkHashProbe(b *testing.B) {
	t := benchTable(b)
	grp, err := t.CreateHashIndex("grp")
	if err != nil {
		b.Fatal(err)
	}
	desc, err := t.CreateHashIndex("desc")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("int", func(b *testing.B) {
		b.ReportAllocs()
		var hits int
		for i := 0; i < b.N; i++ {
			hits += len(grp.Lookup(IntVal(int64(i % 97))))
		}
	})
	b.Run("intraw", func(b *testing.B) {
		b.ReportAllocs()
		var hits int
		for i := 0; i < b.N; i++ {
			hits += len(grp.LookupInt(int64(i % 97)))
		}
	})
	b.Run("string", func(b *testing.B) {
		probe := StrVal("protein enzyme variant 7 hypothetical domain")
		b.ReportAllocs()
		var hits int
		for i := 0; i < b.N; i++ {
			hits += len(desc.Lookup(probe))
		}
	})
}

// BenchmarkBuildStore measures the load path: inserting rows with
// duplicated string payloads into a fresh table (dictionary interning
// included), then building the primary indexes.
func BenchmarkBuildStore(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	vocab := make([]string, 64)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("protein enzyme variant %d hypothetical domain", i)
	}
	rows := make([]Row, benchRows)
	for i := range rows {
		rows[i] = Row{IntVal(int64(i)), IntVal(int64(rng.Intn(97))), StrVal(vocab[rng.Intn(len(vocab))])}
	}
	s := MustSchema("BenchBuild", []Column{
		{Name: "ID", Type: TInt},
		{Name: "grp", Type: TInt},
		{Name: "desc", Type: TString},
	}, "ID")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := NewTable(s)
		for _, r := range rows {
			if err := t.Insert(r); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := t.CreateHashIndex("grp"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchRows), "rows")
}
