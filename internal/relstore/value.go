// Package relstore implements the in-memory relational storage substrate
// used by the topology-search system: catalogs, typed tables, hash and
// ordered secondary indices, predicate evaluation, and per-column
// statistics for selectivity estimation.
//
// The paper evaluates its methods on IBM DB2; relstore plays that role
// here. It supports exactly the physical capabilities the paper's SQL
// listings require — primary-key lookups, index scans, full scans, and
// statistics — with the same asymptotics, so the relative cost trade-offs
// measured in the paper carry over.
package relstore

import (
	"fmt"
	"strconv"
	"strings"
)

// ColType identifies the type of a column.
type ColType uint8

// Supported column types.
const (
	TInt    ColType = iota // 64-bit signed integer
	TString                // UTF-8 string
)

// String returns the SQL-ish name of the type.
func (t ColType) String() string {
	switch t {
	case TInt:
		return "INT"
	case TString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("ColType(%d)", uint8(t))
	}
}

// Value is a single typed cell. The zero value is the integer 0.
//
// Value is a comparable struct so it can be used directly as a map key
// (hash joins build on this). Storage is columnar: tables do not hold
// Values — a Value is materialized at the row-compatibility shims, and
// hash indices key on int64 values / dictionary codes instead.
type Value struct {
	Kind ColType
	Int  int64
	Str  string
}

// IntVal returns an integer Value.
func IntVal(i int64) Value { return Value{Kind: TInt, Int: i} }

// StrVal returns a string Value.
func StrVal(s string) Value { return Value{Kind: TString, Str: s} }

// IsNullish reports whether v is the zero value of its kind (used only for
// diagnostics; the engine has no SQL NULL, matching the paper's queries,
// none of which involve NULLs).
func (v Value) IsNullish() bool {
	switch v.Kind {
	case TInt:
		return v.Int == 0
	default:
		return v.Str == ""
	}
}

// Compare orders two values. Values of different kinds order by kind,
// which gives a total order over all values (needed by ordered indices
// and sort operators).
func (v Value) Compare(o Value) int {
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case TInt:
		switch {
		case v.Int < o.Int:
			return -1
		case v.Int > o.Int:
			return 1
		}
		return 0
	default:
		return strings.Compare(v.Str, o.Str)
	}
}

// Equal reports whether two values are identical.
func (v Value) Equal(o Value) bool { return v == o }

// String renders the value for plans and error messages.
func (v Value) String() string {
	switch v.Kind {
	case TInt:
		return strconv.FormatInt(v.Int, 10)
	default:
		return "'" + v.Str + "'"
	}
}

// Row is a tuple of values, positionally matching a Schema's columns.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}
