package relstore

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func proteinSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("Protein",
		[]Column{{Name: "ID", Type: TInt}, {Name: "desc", Type: TString}}, "ID")
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema("", []Column{{Name: "a", Type: TInt}}, ""); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewSchema("T", nil, ""); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := NewSchema("T", []Column{{Name: "a", Type: TInt}, {Name: "a", Type: TInt}}, ""); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewSchema("T", []Column{{Name: "a", Type: TString}}, "a"); err == nil {
		t.Error("string key accepted")
	}
	if _, err := NewSchema("T", []Column{{Name: "a", Type: TInt}}, "b"); err == nil {
		t.Error("missing key column accepted")
	}
	s, err := NewSchema("T", []Column{{Name: "a", Type: TInt}, {Name: "b", Type: TString}}, "a")
	if err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	if s.KeyCol != 0 {
		t.Errorf("KeyCol = %d, want 0", s.KeyCol)
	}
	if i, ok := s.ColIndex("b"); !ok || i != 1 {
		t.Errorf("ColIndex(b) = %d,%v", i, ok)
	}
	if _, ok := s.ColIndex("zzz"); ok {
		t.Error("ColIndex found a phantom column")
	}
}

func TestSchemaCheckRow(t *testing.T) {
	s := proteinSchema(t)
	if err := s.CheckRow(Row{IntVal(1), StrVal("x")}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.CheckRow(Row{IntVal(1)}); err == nil {
		t.Error("short row accepted")
	}
	if err := s.CheckRow(Row{StrVal("x"), StrVal("y")}); err == nil {
		t.Error("mistyped row accepted")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntVal(1), IntVal(2), -1},
		{IntVal(2), IntVal(2), 0},
		{IntVal(3), IntVal(2), 1},
		{StrVal("a"), StrVal("b"), -1},
		{StrVal("b"), StrVal("b"), 0},
		{IntVal(99), StrVal("a"), -1}, // ints order before strings
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return IntVal(a).Compare(IntVal(b)) == -IntVal(b).Compare(IntVal(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return StrVal(a).Compare(StrVal(b)) == -StrVal(b).Compare(StrVal(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestTableInsertAndPK(t *testing.T) {
	tab := NewTable(proteinSchema(t))
	if err := tab.Insert(Row{IntVal(32), StrVal("ubiquitin conjugating enzyme")}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := tab.Insert(Row{IntVal(32), StrVal("dup")}); err == nil {
		t.Error("duplicate PK accepted")
	}
	if err := tab.Insert(Row{StrVal("x"), StrVal("y")}); err == nil {
		t.Error("mistyped row accepted")
	}
	r, ok := tab.LookupPK(32)
	if !ok || r[1].Str != "ubiquitin conjugating enzyme" {
		t.Errorf("LookupPK(32) = %v,%v", r, ok)
	}
	if _, ok := tab.LookupPK(99); ok {
		t.Error("LookupPK found phantom row")
	}
	if !tab.HasPK(32) || tab.HasPK(99) {
		t.Error("HasPK wrong")
	}
	if tab.NumRows() != 1 {
		t.Errorf("NumRows = %d, want 1", tab.NumRows())
	}
}

func TestHashIndexBeforeAndAfterInsert(t *testing.T) {
	tab := NewTable(proteinSchema(t))
	tab.MustInsert(IntVal(1), StrVal("a"))
	tab.MustInsert(IntVal(2), StrVal("b"))
	ix, err := tab.CreateHashIndex("desc")
	if err != nil {
		t.Fatalf("CreateHashIndex: %v", err)
	}
	// Index built over existing rows.
	if got := ix.Lookup(StrVal("a")); len(got) != 1 || tab.Row(got[0])[0].Int != 1 {
		t.Errorf("Lookup(a) = %v", got)
	}
	// Index maintained on insert.
	tab.MustInsert(IntVal(3), StrVal("a"))
	if got := ix.Lookup(StrVal("a")); len(got) != 2 {
		t.Errorf("after insert Lookup(a) = %v, want 2 positions", got)
	}
	if ix.NumKeys() != 2 {
		t.Errorf("NumKeys = %d, want 2", ix.NumKeys())
	}
	if _, err := tab.CreateHashIndex("nope"); err == nil {
		t.Error("index on phantom column accepted")
	}
	// Idempotent create returns the same index.
	ix2, _ := tab.CreateHashIndex("desc")
	if ix2 != ix {
		t.Error("CreateHashIndex rebuilt an existing index")
	}
}

func TestLookupWithAndWithoutIndex(t *testing.T) {
	tab := NewTable(proteinSchema(t))
	for i := 0; i < 10; i++ {
		tab.MustInsert(IntVal(int64(i)), StrVal(fmt.Sprintf("w%d", i%3)))
	}
	unindexed, err := tab.Lookup("desc", StrVal("w1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateHashIndex("desc"); err != nil {
		t.Fatal(err)
	}
	indexed, err := tab.Lookup("desc", StrVal("w1"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(indexed, func(i, j int) bool { return indexed[i] < indexed[j] })
	if len(unindexed) != len(indexed) {
		t.Fatalf("scan found %d rows, index found %d", len(unindexed), len(indexed))
	}
	for i := range indexed {
		if indexed[i] != unindexed[i] {
			t.Errorf("position %d: index %d != scan %d", i, indexed[i], unindexed[i])
		}
	}
	if _, err := tab.Lookup("nope", IntVal(0)); err == nil {
		t.Error("Lookup on phantom column accepted")
	}
}

func TestOrderedIndexScanAndRange(t *testing.T) {
	s := MustSchema("S", []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TInt}}, "")
	tab := NewTable(s)
	vals := []int64{5, 1, 9, 3, 7, 3}
	for i, v := range vals {
		tab.MustInsert(IntVal(v), IntVal(int64(i)))
	}
	ix, err := tab.CreateOrderedIndex("k")
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	ix.Scan(false, func(pos int32) bool {
		got = append(got, tab.Row(pos)[0].Int)
		return true
	})
	want := []int64{1, 3, 3, 5, 7, 9}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ascending scan = %v, want %v", got, want)
	}
	got = got[:0]
	ix.Scan(true, func(pos int32) bool {
		got = append(got, tab.Row(pos)[0].Int)
		return true
	})
	want = []int64{9, 7, 5, 3, 3, 1}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("descending scan = %v, want %v", got, want)
	}
	// Maintained on insert.
	tab.MustInsert(IntVal(4), IntVal(99))
	got = got[:0]
	ix.Range(IntVal(3), IntVal(5), func(pos int32) bool {
		got = append(got, tab.Row(pos)[0].Int)
		return true
	})
	want = []int64{3, 3, 4, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Range(3,5) = %v, want %v", got, want)
	}
	// Early stop.
	n := 0
	ix.Scan(false, func(int32) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("early stop visited %d, want 2", n)
	}
}

func TestOrderedIndexMatchesSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := MustSchema("S", []Column{{Name: "k", Type: TInt}}, "")
		tab := NewTable(s)
		n := rng.Intn(50)
		half := n / 2
		var vals []int64
		for i := 0; i < half; i++ {
			v := int64(rng.Intn(20))
			vals = append(vals, v)
			tab.MustInsert(IntVal(v))
		}
		ix, _ := tab.CreateOrderedIndex("k")
		for i := half; i < n; i++ { // insert the rest after index creation
			v := int64(rng.Intn(20))
			vals = append(vals, v)
			tab.MustInsert(IntVal(v))
		}
		var got []int64
		ix.Scan(false, func(pos int32) bool {
			got = append(got, tab.Row(pos)[0].Int)
			return true
		})
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		if len(got) != len(vals) {
			return false
		}
		for i := range got {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPredicates(t *testing.T) {
	s := MustSchema("P", []Column{
		{Name: "ID", Type: TInt},
		{Name: "desc", Type: TString},
	}, "ID")
	tab := NewTable(s)
	tab.MustInsert(IntVal(1), StrVal("ubiquitin conjugating enzyme"))
	tab.MustInsert(IntVal(2), StrVal("hypothetical protein"))
	tab.MustInsert(IntVal(3), StrVal("enzyme variant"))

	enzyme := MustContains(s, "desc", "enzyme")
	id2 := MustEq(s, "ID", IntVal(2))
	lt3, err := Cmp(s, "ID", "<", IntVal(3))
	if err != nil {
		t.Fatal(err)
	}

	var hits []int64
	tab.Scan(func(_ int32, r Row) bool {
		if enzyme.Eval(r) {
			hits = append(hits, r[0].Int)
		}
		return true
	})
	if fmt.Sprint(hits) != "[1 3]" {
		t.Errorf("ct('enzyme') hits = %v, want [1 3]", hits)
	}
	if !id2.Eval(tab.Row(1)) || id2.Eval(tab.Row(0)) {
		t.Error("Eq wrong")
	}
	if !lt3.Eval(tab.Row(0)) || lt3.Eval(tab.Row(2)) {
		t.Error("Cmp wrong")
	}
	both := And(enzyme, Not(id2))
	if !both.Eval(tab.Row(0)) || both.Eval(tab.Row(1)) {
		t.Error("And/Not wrong")
	}
	either := Or(id2, MustEq(s, "ID", IntVal(3)))
	if !either.Eval(tab.Row(1)) || !either.Eval(tab.Row(2)) || either.Eval(tab.Row(0)) {
		t.Error("Or wrong")
	}
	if (True{}).Eval(tab.Row(0)) != true {
		t.Error("True wrong")
	}
	// "enzyme" must match as a token, not a substring.
	tab.MustInsert(IntVal(4), StrVal("coenzymeX related"))
	if enzyme.Eval(tab.Row(3)) {
		t.Error("ct matched a substring instead of a token")
	}
}

func TestPredicateErrors(t *testing.T) {
	s := proteinSchema(t)
	if _, err := Eq(s, "nope", IntVal(1)); err == nil {
		t.Error("Eq on phantom column accepted")
	}
	if _, err := Contains(s, "nope", "w"); err == nil {
		t.Error("Contains on phantom column accepted")
	}
	if _, err := Contains(s, "ID", "w"); err == nil {
		t.Error("Contains on int column accepted")
	}
	if _, err := Cmp(s, "ID", "!=", IntVal(1)); err == nil {
		t.Error("bad operator accepted")
	}
}

func TestSelectivityEstimates(t *testing.T) {
	s := MustSchema("P", []Column{
		{Name: "ID", Type: TInt},
		{Name: "desc", Type: TString},
	}, "ID")
	tab := NewTable(s)
	for i := 0; i < 100; i++ {
		d := "common"
		if i%10 == 0 {
			d = "rare token"
		}
		tab.MustInsert(IntVal(int64(i)), StrVal(d))
	}
	rare := MustContains(s, "desc", "rare")
	if got := rare.Sel(tab); got < 0.05 || got > 0.15 {
		t.Errorf("Sel(rare) = %v, want ~0.10", got)
	}
	common := MustContains(s, "desc", "common")
	if got := common.Sel(tab); got < 0.85 || got > 0.95 {
		t.Errorf("Sel(common) = %v, want ~0.90", got)
	}
	one := MustEq(s, "ID", IntVal(5))
	if got := one.Sel(tab); got != 0.01 {
		t.Errorf("Sel(ID=5) = %v, want 0.01", got)
	}
	if got := (True{}).Sel(tab); got != 1 {
		t.Errorf("Sel(TRUE) = %v", got)
	}
	and := And(rare, common)
	if got := and.Sel(tab); got < 0.08*0.85 || got > 0.12*0.95 {
		t.Errorf("Sel(and) = %v, want product", got)
	}
}

func TestStatsMinMaxNDV(t *testing.T) {
	s := MustSchema("S", []Column{{Name: "k", Type: TInt}}, "")
	tab := NewTable(s)
	for _, v := range []int64{7, 3, 3, 9, 1} {
		tab.MustInsert(IntVal(v))
	}
	st := tab.Stats()
	cs := st.Col(0)
	if cs.Min.Int != 1 || cs.Max.Int != 9 {
		t.Errorf("min/max = %d/%d, want 1/9", cs.Min.Int, cs.Max.Int)
	}
	if cs.NDV != 4 {
		t.Errorf("NDV = %d, want 4", cs.NDV)
	}
	// Stats cache is invalidated on insert.
	tab.MustInsert(IntVal(100))
	if got := tab.Stats().Col(0).Max.Int; got != 100 {
		t.Errorf("stale stats: max = %d, want 100", got)
	}
	if st.Col(99) != nil {
		t.Error("Col out of range should be nil")
	}
}

func TestDBCatalog(t *testing.T) {
	db := NewDB()
	s := proteinSchema(t)
	tab, err := db.CreateTable(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(s); err == nil {
		t.Error("duplicate table accepted")
	}
	if db.Table("Protein") != tab {
		t.Error("Table lookup failed")
	}
	if db.Table("nope") != nil {
		t.Error("phantom table found")
	}
	db.MustCreateTable(MustSchema("DNA", []Column{{Name: "ID", Type: TInt}}, "ID"))
	names := db.TableNames()
	if fmt.Sprint(names) != "[DNA Protein]" {
		t.Errorf("TableNames = %v", names)
	}
	db.DropTable("DNA")
	if db.Table("DNA") != nil {
		t.Error("DropTable did not drop")
	}
}

func TestApproxBytesGrows(t *testing.T) {
	tab := NewTable(proteinSchema(t))
	empty := tab.ApproxBytes()
	for i := 0; i < 100; i++ {
		tab.MustInsert(IntVal(int64(i)), StrVal("some description text"))
	}
	full := tab.ApproxBytes()
	if full <= empty {
		t.Errorf("ApproxBytes did not grow: %d -> %d", empty, full)
	}
	if _, err := tab.CreateHashIndex("ID"); err != nil {
		t.Fatal(err)
	}
	if tab.ApproxBytes() <= full {
		t.Error("index did not add to footprint")
	}
}

func TestScanEarlyStop(t *testing.T) {
	tab := NewTable(proteinSchema(t))
	for i := 0; i < 10; i++ {
		tab.MustInsert(IntVal(int64(i)), StrVal("x"))
	}
	n := 0
	tab.Scan(func(int32, Row) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("scan visited %d rows, want 3", n)
	}
}

func TestContainsTokenEdgeCases(t *testing.T) {
	cases := []struct {
		text, word string
		want       bool
	}{
		{"", "x", false},
		{"x", "x", true},
		{"a x b", "x", true},
		{"ax xb", "x", false},
		{"x ", "x", true},
		{" x", "x", true},
	}
	for _, c := range cases {
		if got := containsToken(c.text, c.word); got != c.want {
			t.Errorf("containsToken(%q,%q) = %v, want %v", c.text, c.word, got, c.want)
		}
	}
}

func TestConcurrentIndexCreationAndStats(t *testing.T) {
	s := MustSchema("S", []Column{{Name: "k", Type: TInt}, {Name: "v", Type: TInt}}, "")
	tab := NewTable(s)
	for i := 0; i < 200; i++ {
		tab.MustInsert(IntVal(int64(i%17)), IntVal(int64(i)))
	}
	// Many goroutines race to create the same indexes and statistics;
	// everyone must get the same objects (run under -race in CI).
	var wg sync.WaitGroup
	hs := make([]*HashIndex, 16)
	os := make([]*OrderedIndex, 16)
	ss := make([]*TableStats, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := tab.CreateHashIndex("k")
			if err != nil {
				t.Error(err)
				return
			}
			o, err := tab.CreateOrderedIndex("v")
			if err != nil {
				t.Error(err)
				return
			}
			hs[i], os[i], ss[i] = h, o, tab.Stats()
		}(i)
	}
	wg.Wait()
	for i := 1; i < 16; i++ {
		if hs[i] != hs[0] || os[i] != os[0] || ss[i] != ss[0] {
			t.Fatalf("goroutine %d got different index/stats objects", i)
		}
	}
	if got := len(hs[0].Lookup(IntVal(3))); got == 0 {
		t.Error("racing creation produced an empty hash index")
	}
	if hs[0].NumKeys() != 17 {
		t.Errorf("NumKeys = %d, want 17", hs[0].NumKeys())
	}
}

func TestOrderedIndexBatchedInsertStability(t *testing.T) {
	// Inserts after index creation land in the pending buffer; ties
	// must still come out in insertion order in both directions.
	s := MustSchema("S", []Column{{Name: "k", Type: TInt}, {Name: "pos", Type: TInt}}, "")
	tab := NewTable(s)
	tab.MustInsert(IntVal(5), IntVal(0))
	ix, err := tab.CreateOrderedIndex("k")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		tab.MustInsert(IntVal(5), IntVal(int64(i))) // all ties
	}
	for _, desc := range []bool{false, true} {
		var got []int64
		ix.Scan(desc, func(pos int32) bool {
			got = append(got, tab.Row(pos)[1].Int)
			return true
		})
		want := []int64{0, 1, 2, 3, 4, 5, 6}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("desc=%v: tie order = %v, want %v (insertion order)", desc, got, want)
		}
	}
}
