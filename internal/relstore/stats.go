package relstore

import "strings"

// maxTrackedValues bounds the per-column exact frequency map; beyond it
// the column keeps only NDV/min/max, like a real system's histogram cap.
const maxTrackedValues = 4096

// ColStats summarizes one column for selectivity estimation. A ColStats
// is immutable once published: incremental maintenance clones it before
// extending, so readers holding an older statistics object are never
// raced.
type ColStats struct {
	NDV int   // number of distinct values
	Min Value // minimum value (by Compare order)
	Max Value // maximum value
	// Freq maps value -> exact occurrence count while the column has at
	// most maxTrackedValues distinct values; nil afterwards.
	Freq map[Value]int
	// TokenFreq maps whitespace token -> number of rows containing it,
	// for string columns (supports ct() keyword selectivity).
	TokenFreq map[string]int
}

// clone deep-copies the statistics so an extension pass can mutate them.
func (cs *ColStats) clone() *ColStats {
	out := &ColStats{NDV: cs.NDV, Min: cs.Min, Max: cs.Max}
	if cs.Freq != nil {
		out.Freq = make(map[Value]int, len(cs.Freq))
		for v, n := range cs.Freq {
			out.Freq[v] = n
		}
	}
	if cs.TokenFreq != nil {
		out.TokenFreq = make(map[string]int, len(cs.TokenFreq))
		for tok, n := range cs.TokenFreq {
			out.TokenFreq[tok] = n
		}
	}
	return out
}

// TableStats holds per-table statistics.
type TableStats struct {
	Rows int
	cols []*ColStats
}

// Col returns the statistics of column i.
func (st *TableStats) Col(i int) *ColStats {
	if st == nil || i < 0 || i >= len(st.cols) {
		return nil
	}
	return st.cols[i]
}

// tableStatsCache maintains the table's statistics incrementally, one
// column at a time: each column remembers the row watermark its
// statistics cover, and a Stats() call extends only the columns whose
// watermark lags the table — scanning just the rows appended since,
// never rebuilding from scratch and never touching up-to-date columns.
// The cache is guarded by the table's registry lock (Table.mu).
type tableStatsCache struct {
	upTo  []int32 // per-column watermark: rows covered by cols[c]
	cols  []*ColStats
	built *TableStats // last assembled snapshot (Rows == min watermark)
}

func newTableStatsCache(ncols int) *tableStatsCache {
	return &tableStatsCache{upTo: make([]int32, ncols), cols: make([]*ColStats, ncols)}
}

// Stats returns (building or extending lazily) the table's statistics.
// Statistics are maintained incrementally per column: an Insert does
// not invalidate anything — the next Stats() call extends each stale
// column over just the newly appended rows. Concurrent callers are
// safe: extension happens under the table lock and always publishes
// fresh ColStats objects, so a previously returned TableStats is never
// mutated.
func (t *Table) Stats() *TableStats {
	st := t.loadState()
	t.mu.RLock()
	built := t.stats.built
	t.mu.RUnlock()
	if built != nil && built.Rows >= int(st.nrows) {
		return built
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats.built != nil && t.stats.built.Rows >= int(st.nrows) {
		return t.stats.built
	}
	for c := range t.Schema.Cols {
		if t.stats.upTo[c] >= st.nrows {
			continue
		}
		if t.stats.cols[c] == nil || t.stats.upTo[c] == 0 {
			t.stats.cols[c] = t.buildColStats(st, c)
		} else {
			t.stats.cols[c] = t.extendColStats(st, c, t.stats.cols[c].clone(), t.stats.upTo[c])
		}
		t.stats.upTo[c] = st.nrows
	}
	t.stats.built = &TableStats{
		Rows: int(st.nrows),
		cols: append([]*ColStats(nil), t.stats.cols...),
	}
	return t.stats.built
}

// buildColStats derives one column's statistics from scratch over the
// snapshot. String columns are summarized per dictionary code — one
// count-array pass over the codes, then one pass over the distinct
// strings — so a million-row column with a hundred distinct
// descriptions hashes a hundred strings, not a million. The resulting
// NDV / Freq / TokenFreq / Min / Max are identical to a row-at-a-time
// scan, including the histogram caps (a column exceeding
// maxTrackedValues distinct values reports NDV=maxTrackedValues+1 with
// no Freq map, exactly as the capped row scan did) — which is also what
// makes whole builds and incremental extensions interchangeable.
func (t *Table) buildColStats(st *tableState, c int) *ColStats {
	if t.Schema.Cols[c].Type == TInt {
		return buildIntStats(st, c)
	}
	return buildStrStats(st, c)
}

func buildIntStats(st *tableState, c int) *ColStats {
	cs := &ColStats{Freq: make(map[Value]int)}
	first := true
	var lo, hi int64
	for pos := int32(0); pos < st.nrows; pos++ {
		v := st.intAt(pos, c)
		if first {
			lo, hi = v, v
			first = false
		} else {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if cs.Freq != nil {
			cs.Freq[IntVal(v)]++
			if len(cs.Freq) > maxTrackedValues {
				cs.NDV = len(cs.Freq)
				cs.Freq = nil
			}
		}
	}
	if !first {
		cs.Min, cs.Max = IntVal(lo), IntVal(hi)
	}
	if cs.Freq != nil {
		cs.NDV = len(cs.Freq)
	} else if cs.NDV == 0 {
		cs.NDV = int(st.nrows)
	}
	return cs
}

func buildStrStats(st *tableState, c int) *ColStats {
	cs := &ColStats{}
	// One pass over the codes: occurrences per dictionary code.
	counts := make([]int, len(st.strs))
	for pos := int32(0); pos < st.nrows; pos++ {
		counts[st.codeAt(pos, c)]++
	}
	ndv := 0
	minCode, maxCode := uint32(0), uint32(0)
	for code, n := range counts {
		if n == 0 {
			continue
		}
		cd := uint32(code)
		if ndv == 0 {
			minCode, maxCode = cd, cd
		} else {
			if strings.Compare(st.strs[cd], st.strs[minCode]) < 0 {
				minCode = cd
			}
			if strings.Compare(st.strs[cd], st.strs[maxCode]) > 0 {
				maxCode = cd
			}
		}
		ndv++
	}
	if ndv > 0 {
		cs.Min, cs.Max = StrVal(st.strs[minCode]), StrVal(st.strs[maxCode])
	}
	if ndv <= maxTrackedValues {
		cs.NDV = ndv
		cs.Freq = make(map[Value]int, ndv)
		for code, n := range counts {
			if n > 0 {
				cs.Freq[StrVal(st.strs[code])] = n
			}
		}
	} else {
		// The capped row scan stopped tracking on the distinct value
		// after the cap and reported the count it had seen.
		cs.NDV = maxTrackedValues + 1
	}
	// Token frequencies: tokenize each distinct string once and charge
	// its tokens with the string's row count (tokens repeat within one
	// description only once, as in the per-row seen-set scan).
	tf := make(map[string]int)
	seen := map[string]bool{}
	for code, n := range counts {
		if n == 0 {
			continue
		}
		clear(seen)
		for _, tok := range strings.Fields(st.strs[code]) {
			if !seen[tok] {
				seen[tok] = true
				tf[tok] += n
			}
		}
		if len(tf) > 4*maxTrackedValues {
			tf = nil
			break
		}
	}
	cs.TokenFreq = tf
	return cs
}

// extendColStats advances one column's statistics over the rows
// [from, st.nrows) with the exact row-at-a-time semantics of a full
// rebuild: frequency and token maps grow until their caps and are then
// dropped for good, NDV freezes at the cap crossing, and Min/Max keep
// tightening. Extending a column therefore yields byte-identical
// statistics to rebuilding it from scratch over all rows.
func (t *Table) extendColStats(st *tableState, c int, cs *ColStats, from int32) *ColStats {
	if t.Schema.Cols[c].Type == TInt {
		for pos := from; pos < st.nrows; pos++ {
			v := IntVal(st.intAt(pos, c))
			if from == 0 && pos == 0 {
				cs.Min, cs.Max = v, v
			} else {
				if v.Compare(cs.Min) < 0 {
					cs.Min = v
				}
				if v.Compare(cs.Max) > 0 {
					cs.Max = v
				}
			}
			if cs.Freq != nil {
				cs.Freq[v]++
				if len(cs.Freq) > maxTrackedValues {
					cs.NDV = len(cs.Freq)
					cs.Freq = nil
				}
			}
		}
		if cs.Freq != nil {
			cs.NDV = len(cs.Freq)
		}
		return cs
	}
	var seen map[string]bool
	if cs.TokenFreq != nil {
		seen = map[string]bool{}
	}
	for pos := from; pos < st.nrows; pos++ {
		s := st.strAt(pos, c)
		v := StrVal(s)
		if from == 0 && pos == 0 {
			cs.Min, cs.Max = v, v
		} else {
			if v.Compare(cs.Min) < 0 {
				cs.Min = v
			}
			if v.Compare(cs.Max) > 0 {
				cs.Max = v
			}
		}
		if cs.Freq != nil {
			cs.Freq[v]++
			if len(cs.Freq) > maxTrackedValues {
				cs.NDV = len(cs.Freq)
				cs.Freq = nil
			}
		}
		if cs.TokenFreq != nil {
			clear(seen)
			for _, tok := range strings.Fields(s) {
				if !seen[tok] {
					seen[tok] = true
					cs.TokenFreq[tok]++
				}
			}
			if len(cs.TokenFreq) > 4*maxTrackedValues {
				cs.TokenFreq = nil
			}
		}
	}
	if cs.Freq != nil {
		cs.NDV = len(cs.Freq)
	}
	return cs
}
