package relstore

import "strings"

// maxTrackedValues bounds the per-column exact frequency map; beyond it
// the column keeps only NDV/min/max, like a real system's histogram cap.
const maxTrackedValues = 4096

// ColStats summarizes one column for selectivity estimation.
type ColStats struct {
	NDV int   // number of distinct values
	Min Value // minimum value (by Compare order)
	Max Value // maximum value
	// Freq maps value -> exact occurrence count while the column has at
	// most maxTrackedValues distinct values; nil afterwards.
	Freq map[Value]int
	// TokenFreq maps whitespace token -> number of rows containing it,
	// for string columns (supports ct() keyword selectivity).
	TokenFreq map[string]int
}

// TableStats holds per-table statistics.
type TableStats struct {
	Rows int
	cols []*ColStats
}

// Col returns the statistics of column i.
func (st *TableStats) Col(i int) *ColStats {
	if st == nil || i < 0 || i >= len(st.cols) {
		return nil
	}
	return st.cols[i]
}

// Stats returns (building lazily) the table's statistics. The result is
// invalidated by Insert. Concurrent callers are safe: the first builds
// the statistics under the table lock, the rest get the cached object.
func (t *Table) Stats() *TableStats {
	t.mu.RLock()
	st := t.stats
	t.mu.RUnlock()
	if st != nil {
		return st
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats != nil {
		return t.stats
	}
	st = t.buildStats()
	t.stats = st
	return st
}

// buildStats derives the per-column statistics straight from the
// columnar arrays. String columns are summarized per dictionary code —
// one count-array pass over the codes, then one pass over the distinct
// strings — so a million-row column with a hundred distinct
// descriptions hashes a hundred strings, not a million. The resulting
// NDV / Freq / TokenFreq / Min / Max are identical to a row-at-a-time
// scan, including the histogram caps (a column exceeding
// maxTrackedValues distinct values reports NDV=maxTrackedValues+1 with
// no Freq map, exactly as the capped row scan did).
func (t *Table) buildStats() *TableStats {
	st := &TableStats{Rows: t.NumRows(), cols: make([]*ColStats, len(t.Schema.Cols))}
	for c := range t.Schema.Cols {
		if t.Schema.Cols[c].Type == TInt {
			st.cols[c] = t.buildIntStats(c)
		} else {
			st.cols[c] = t.buildStrStats(c)
		}
	}
	return st
}

func (t *Table) buildIntStats(c int) *ColStats {
	cs := &ColStats{Freq: make(map[Value]int)}
	first := true
	var lo, hi int64
	for _, v := range t.cols[c].ints {
		if first {
			lo, hi = v, v
			first = false
		} else {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if cs.Freq != nil {
			cs.Freq[IntVal(v)]++
			if len(cs.Freq) > maxTrackedValues {
				cs.NDV = len(cs.Freq)
				cs.Freq = nil
			}
		}
	}
	if !first {
		cs.Min, cs.Max = IntVal(lo), IntVal(hi)
	}
	if cs.Freq != nil {
		cs.NDV = len(cs.Freq)
	} else if cs.NDV == 0 {
		cs.NDV = t.NumRows()
	}
	return cs
}

func (t *Table) buildStrStats(c int) *ColStats {
	cs := &ColStats{}
	codes := t.cols[c].codes
	// One pass over the codes: occurrences per dictionary code.
	counts := make([]int, len(t.dict.strs))
	for _, code := range codes {
		counts[code]++
	}
	ndv := 0
	minCode, maxCode := uint32(0), uint32(0)
	for code, n := range counts {
		if n == 0 {
			continue
		}
		cd := uint32(code)
		if ndv == 0 {
			minCode, maxCode = cd, cd
		} else {
			if strings.Compare(t.dict.strs[cd], t.dict.strs[minCode]) < 0 {
				minCode = cd
			}
			if strings.Compare(t.dict.strs[cd], t.dict.strs[maxCode]) > 0 {
				maxCode = cd
			}
		}
		ndv++
	}
	if ndv > 0 {
		cs.Min, cs.Max = StrVal(t.dict.strs[minCode]), StrVal(t.dict.strs[maxCode])
	}
	if ndv <= maxTrackedValues {
		cs.NDV = ndv
		cs.Freq = make(map[Value]int, ndv)
		for code, n := range counts {
			if n > 0 {
				cs.Freq[StrVal(t.dict.strs[code])] = n
			}
		}
	} else {
		// The capped row scan stopped tracking on the distinct value
		// after the cap and reported the count it had seen.
		cs.NDV = maxTrackedValues + 1
	}
	// Token frequencies: tokenize each distinct string once and charge
	// its tokens with the string's row count (tokens repeat within one
	// description only once, as in the per-row seen-set scan).
	tf := make(map[string]int)
	seen := map[string]bool{}
	for code, n := range counts {
		if n == 0 {
			continue
		}
		clear(seen)
		for _, tok := range strings.Fields(t.dict.strs[code]) {
			if !seen[tok] {
				seen[tok] = true
				tf[tok] += n
			}
		}
		if len(tf) > 4*maxTrackedValues {
			tf = nil
			break
		}
	}
	cs.TokenFreq = tf
	return cs
}
