package relstore

import "strings"

// maxTrackedValues bounds the per-column exact frequency map; beyond it
// the column keeps only NDV/min/max, like a real system's histogram cap.
const maxTrackedValues = 4096

// ColStats summarizes one column for selectivity estimation.
type ColStats struct {
	NDV int   // number of distinct values
	Min Value // minimum value (by Compare order)
	Max Value // maximum value
	// Freq maps value -> exact occurrence count while the column has at
	// most maxTrackedValues distinct values; nil afterwards.
	Freq map[Value]int
	// TokenFreq maps whitespace token -> number of rows containing it,
	// for string columns (supports ct() keyword selectivity).
	TokenFreq map[string]int
}

// TableStats holds per-table statistics.
type TableStats struct {
	Rows int
	cols []*ColStats
}

// Col returns the statistics of column i.
func (st *TableStats) Col(i int) *ColStats {
	if st == nil || i < 0 || i >= len(st.cols) {
		return nil
	}
	return st.cols[i]
}

// Stats returns (building lazily) the table's statistics. The result is
// invalidated by Insert. Concurrent callers are safe: the first builds
// the statistics under the table lock, the rest get the cached object.
func (t *Table) Stats() *TableStats {
	t.mu.RLock()
	st := t.stats
	t.mu.RUnlock()
	if st != nil {
		return st
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats != nil {
		return t.stats
	}
	st = t.buildStats()
	t.stats = st
	return st
}

func (t *Table) buildStats() *TableStats {
	st := &TableStats{Rows: len(t.rows), cols: make([]*ColStats, len(t.Schema.Cols))}
	for c := range t.Schema.Cols {
		cs := &ColStats{Freq: make(map[Value]int)}
		if t.Schema.Cols[c].Type == TString {
			cs.TokenFreq = make(map[string]int)
		}
		first := true
		for _, r := range t.rows {
			v := r[c]
			if first {
				cs.Min, cs.Max = v, v
				first = false
			} else {
				if v.Compare(cs.Min) < 0 {
					cs.Min = v
				}
				if v.Compare(cs.Max) > 0 {
					cs.Max = v
				}
			}
			if cs.Freq != nil {
				cs.Freq[v]++
				if len(cs.Freq) > maxTrackedValues {
					cs.NDV = len(cs.Freq)
					cs.Freq = nil
				}
			}
			if cs.TokenFreq != nil {
				seen := map[string]bool{}
				for _, tok := range strings.Fields(v.Str) {
					if !seen[tok] {
						seen[tok] = true
						cs.TokenFreq[tok]++
					}
				}
				if len(cs.TokenFreq) > 4*maxTrackedValues {
					cs.TokenFreq = nil
				}
			}
		}
		if cs.Freq != nil {
			cs.NDV = len(cs.Freq)
		} else if cs.NDV == 0 {
			cs.NDV = len(t.rows)
		}
		st.cols[c] = cs
	}
	return st
}
