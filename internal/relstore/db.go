package relstore

import (
	"fmt"
	"sort"
	"sync"
)

// DB is a catalog of tables — the "Base Data" box of the paper's system
// architecture (Figure 10). The catalog itself is safe for concurrent
// use, so several offline store builds can create and drop their
// per-pair tables in one DB simultaneously; the tables they return
// follow Table's own concurrency contract.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable registers an empty table for the schema. It fails if a
// table with the same name already exists.
func (db *DB) CreateTable(s *Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[s.Name]; dup {
		return nil, fmt.Errorf("relstore: table %q already exists", s.Name)
	}
	t := NewTable(s)
	db.tables[s.Name] = t
	return t, nil
}

// MustCreateTable is CreateTable that panics on error.
func (db *DB) MustCreateTable(s *Schema) *Table {
	t, err := db.CreateTable(s)
	if err != nil {
		panic(err)
	}
	return t
}

// DropTable removes a table from the catalog (used when the Topology
// Pruning module discards the temporary AllTops table, Section 4).
func (db *DB) DropTable(name string) {
	db.mu.Lock()
	delete(db.tables, name)
	db.mu.Unlock()
}

// PutTable registers an already-built table under its schema name,
// replacing any previous entry. The diff-aware materializer uses it to
// publish tables assembled outside the catalog (via IntTableBuilder)
// or carried over from a previous store generation; readers holding
// the replaced table keep their own pointer, exactly as with
// DropTable + CreateTable.
func (db *DB) PutTable(t *Table) {
	db.mu.Lock()
	db.tables[t.Schema.Name] = t
	db.mu.Unlock()
}

// Table returns the named table, or nil if absent.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[name]
}

// MustTable returns the named table or panics.
func (db *DB) MustTable(name string) *Table {
	t := db.Table(name)
	if t == nil {
		panic(fmt.Sprintf("relstore: no table %q", name))
	}
	return t
}

// TableNames returns all table names in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	db.mu.RUnlock()
	sort.Strings(names)
	return names
}

// ApproxBytes sums ApproxBytes over all tables.
func (db *DB) ApproxBytes() int64 {
	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	var b int64
	for _, t := range tables {
		b += t.ApproxBytes()
	}
	return b
}

// DeltaBytes sums DeltaBytes over all tables: the footprint of the
// not-yet-compacted write state across the whole database. The
// auto-compaction policy compares it against ApproxBytes.
func (db *DB) DeltaBytes() int64 {
	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	var b int64
	for _, t := range tables {
		b += t.DeltaBytes()
	}
	return b
}
