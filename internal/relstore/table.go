package relstore

import (
	"fmt"
	"strings"
	"sync"
)

// column is the physical storage of one attribute: a typed array
// indexed by row position. TInt columns store values directly; TString
// columns store 32-bit codes into the table's shared string dictionary,
// so duplicated string payloads (descriptions, type tags) are stored
// once per distinct value rather than once per row.
type column struct {
	ints  []int64  // TInt values, one per row
	codes []uint32 // TString dictionary codes, one per row
}

// stringDict is a table-wide string dictionary shared by all TString
// columns: code -> string and the inverse map used while loading.
type stringDict struct {
	strs []string
	code map[string]uint32
}

func (d *stringDict) intern(s string) uint32 {
	if c, ok := d.code[s]; ok {
		return c
	}
	if d.code == nil {
		d.code = make(map[string]uint32)
	}
	c := uint32(len(d.strs))
	d.strs = append(d.strs, s)
	d.code[s] = c
	return c
}

// lookup returns the code of s, or false when s never occurs in the
// table (then no row can match it).
func (d *stringDict) lookup(s string) (uint32, bool) {
	c, ok := d.code[s]
	return c, ok
}

// Table is an append-only in-memory relation with optional primary-key,
// hash, and ordered secondary indices.
//
// Storage is columnar: each column is a typed array ([]int64 for TInt,
// dictionary codes for TString), so scans walk contiguous memory and a
// tuple is materialized into a Row only at the compatibility shims
// (Row, LookupPK, Scan). Hot paths read cells through IntAt/StrAt or
// the Col views and allocate nothing per row.
//
// A fully built table is safe for concurrent readers: index creation is
// idempotent and mutex-guarded, so simultaneous query plans may race to
// CreateHashIndex without corrupting the index maps. Insert is NOT safe
// to run concurrently with readers or other inserts; loading and
// querying are distinct phases, as in the paper's offline/online split.
type Table struct {
	Schema *Schema

	nrows int32
	cols  []column
	dict  stringDict
	pk    map[int64]int32

	mu      sync.RWMutex // guards hash, ordered, stats
	hash    map[int]*HashIndex
	ordered map[int]*OrderedIndex

	stats *TableStats // lazily computed, dropped on insert
}

// NewTable creates an empty table for the schema.
func NewTable(s *Schema) *Table {
	t := &Table{
		Schema:  s,
		cols:    make([]column, len(s.Cols)),
		hash:    make(map[int]*HashIndex),
		ordered: make(map[int]*OrderedIndex),
	}
	if s.KeyCol >= 0 {
		t.pk = make(map[int64]int32)
	}
	return t
}

// NumRows returns the current row count.
func (t *Table) NumRows() int { return int(t.nrows) }

// IntAt returns the integer cell at (pos, col c). The column must have
// type TInt.
func (t *Table) IntAt(pos int32, c int) int64 { return t.cols[c].ints[pos] }

// StrAt returns the string cell at (pos, col c) without copying. The
// column must have type TString.
func (t *Table) StrAt(pos int32, c int) string { return t.dict.strs[t.cols[c].codes[pos]] }

// CodeAt returns the dictionary code of the string cell at (pos, col
// c). Codes are equality-preserving but NOT order-preserving.
func (t *Table) CodeAt(pos int32, c int) uint32 { return t.cols[c].codes[pos] }

// ValueAt materializes the cell at (pos, col c) as a Value. The string
// payload is shared with the dictionary, so this allocates nothing.
func (t *Table) ValueAt(pos int32, c int) Value {
	if t.Schema.Cols[c].Type == TInt {
		return Value{Kind: TInt, Int: t.cols[c].ints[pos]}
	}
	return Value{Kind: TString, Str: t.dict.strs[t.cols[c].codes[pos]]}
}

// ColView is a zero-copy read-only view of one column, for tight loops
// that index cells by row position without going through the table.
type ColView struct {
	Kind  ColType
	ints  []int64
	codes []uint32
	strs  []string
}

// Col returns a view of column c.
func (t *Table) Col(c int) ColView {
	v := ColView{Kind: t.Schema.Cols[c].Type}
	if v.Kind == TInt {
		v.ints = t.cols[c].ints
	} else {
		v.codes = t.cols[c].codes
		v.strs = t.dict.strs
	}
	return v
}

// Len returns the number of rows in the view.
func (v ColView) Len() int {
	if v.Kind == TInt {
		return len(v.ints)
	}
	return len(v.codes)
}

// Int returns the integer cell at pos (TInt columns).
func (v ColView) Int(pos int32) int64 { return v.ints[pos] }

// Str returns the string cell at pos (TString columns).
func (v ColView) Str(pos int32) string { return v.strs[v.codes[pos]] }

// Code returns the dictionary code at pos (TString columns).
func (v ColView) Code(pos int32) uint32 { return v.codes[pos] }

// Value materializes the cell at pos.
func (v ColView) Value(pos int32) Value {
	if v.Kind == TInt {
		return Value{Kind: TInt, Int: v.ints[pos]}
	}
	return Value{Kind: TString, Str: v.strs[v.codes[pos]]}
}

// AppendRow appends the cells of the row at pos to dst and returns the
// extended slice — the allocation-free way to materialize a tuple into
// a reusable buffer (pass dst[:0] to overwrite a previous row).
func (t *Table) AppendRow(dst Row, pos int32) Row {
	for c := range t.cols {
		if t.Schema.Cols[c].Type == TInt {
			dst = append(dst, Value{Kind: TInt, Int: t.cols[c].ints[pos]})
		} else {
			dst = append(dst, Value{Kind: TString, Str: t.dict.strs[t.cols[c].codes[pos]]})
		}
	}
	return dst
}

// Row materializes the row stored at position pos. It is a
// compatibility shim over the columnar layout: each call allocates a
// fresh Row; position-addressed readers should prefer IntAt/StrAt,
// Col views, or AppendRow with a reusable buffer.
func (t *Table) Row(pos int32) Row {
	return t.AppendRow(make(Row, 0, len(t.cols)), pos)
}

// Insert appends a row, maintaining all indices. It rejects rows that do
// not match the schema or that duplicate the primary key.
func (t *Table) Insert(r Row) error {
	if err := t.Schema.CheckRow(r); err != nil {
		return err
	}
	pos := t.nrows
	if t.pk != nil {
		key := r[t.Schema.KeyCol].Int
		if _, dup := t.pk[key]; dup {
			return fmt.Errorf("relstore: table %q: duplicate primary key %d", t.Schema.Name, key)
		}
		t.pk[key] = pos
	}
	for c := range r {
		if r[c].Kind == TInt {
			t.cols[c].ints = append(t.cols[c].ints, r[c].Int)
		} else {
			t.cols[c].codes = append(t.cols[c].codes, t.dict.intern(r[c].Str))
		}
	}
	t.nrows++
	t.mu.Lock()
	for col, ix := range t.hash {
		ix.addKey(t.keyAt(pos, col), pos)
	}
	for _, ix := range t.ordered {
		ix.add(pos)
	}
	t.stats = nil
	t.mu.Unlock()
	return nil
}

// keyAt returns the hash-index key of the cell at (pos, col c): the
// integer value itself, or the string's dictionary code widened to
// int64. Codes are non-negative, so negative keys never match a row.
func (t *Table) keyAt(pos int32, c int) int64 {
	if t.Schema.Cols[c].Type == TInt {
		return t.cols[c].ints[pos]
	}
	return int64(t.cols[c].codes[pos])
}

// keyFor maps a lookup value to the hash-index key space of column c.
// ok=false means no row of the table can equal v (a string absent from
// the dictionary, or a kind mismatch).
func (t *Table) keyFor(c int, v Value) (int64, bool) {
	if t.Schema.Cols[c].Type == TInt {
		if v.Kind != TInt {
			return 0, false
		}
		return v.Int, true
	}
	if v.Kind != TString {
		return 0, false
	}
	code, ok := t.dict.lookup(v.Str)
	return int64(code), ok
}

// compareAt orders the cells of column c at row positions a and b.
func (t *Table) compareAt(c int, a, b int32) int {
	col := &t.cols[c]
	if t.Schema.Cols[c].Type == TInt {
		x, y := col.ints[a], col.ints[b]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
	ca, cb := col.codes[a], col.codes[b]
	if ca == cb {
		return 0 // codes are equality-preserving
	}
	return strings.Compare(t.dict.strs[ca], t.dict.strs[cb])
}

// compareValueAt orders the cell of column c at pos against v, with the
// same cross-kind ordering as Value.Compare.
func (t *Table) compareValueAt(c int, pos int32, v Value) int {
	return t.ValueAt(pos, c).Compare(v)
}

// MustInsert is Insert that panics on error; for loaders of generated data.
func (t *Table) MustInsert(vals ...Value) {
	if err := t.Insert(Row(vals)); err != nil {
		panic(err)
	}
}

// PKPos returns the row position of the row with the given primary-key
// value — the allocation-free LookupPK.
func (t *Table) PKPos(id int64) (int32, bool) {
	if t.pk == nil {
		return 0, false
	}
	pos, ok := t.pk[id]
	return pos, ok
}

// LookupPK returns (materializing) the row with the given primary-key
// value. Hot paths should use PKPos with IntAt/StrAt or EvalAt instead.
func (t *Table) LookupPK(id int64) (Row, bool) {
	pos, ok := t.PKPos(id)
	if !ok {
		return nil, false
	}
	return t.Row(pos), true
}

// HasPK reports whether a row with the given primary key exists.
func (t *Table) HasPK(id int64) bool {
	if t.pk == nil {
		return false
	}
	_, ok := t.pk[id]
	return ok
}

// CreateHashIndex builds (or returns) an equality index on the column.
// It is idempotent and safe to call from concurrent query plans: the
// first caller builds the index under the table lock, later callers get
// the same index back.
func (t *Table) CreateHashIndex(col string) (*HashIndex, error) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: table %q: no column %q", t.Schema.Name, col)
	}
	t.mu.RLock()
	ix, have := t.hash[c]
	t.mu.RUnlock()
	if have {
		return ix, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, have := t.hash[c]; have {
		return ix, nil
	}
	ix = newHashIndex(t, c)
	if t.Schema.Cols[c].Type == TInt {
		for pos, v := range t.cols[c].ints {
			ix.addKey(v, int32(pos))
		}
	} else {
		for pos, code := range t.cols[c].codes {
			ix.addKey(int64(code), int32(pos))
		}
	}
	t.hash[c] = ix
	return ix, nil
}

// CreateOrderedIndex builds (or returns) an ordered index on the column.
// Like CreateHashIndex it is idempotent under the table lock.
func (t *Table) CreateOrderedIndex(col string) (*OrderedIndex, error) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: table %q: no column %q", t.Schema.Name, col)
	}
	t.mu.RLock()
	ix, have := t.ordered[c]
	t.mu.RUnlock()
	if have {
		return ix, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, have := t.ordered[c]; have {
		return ix, nil
	}
	ix = newOrderedIndex(t, c)
	t.ordered[c] = ix
	return ix, nil
}

// HashIndexOn returns the hash index on the column, if one exists.
func (t *Table) HashIndexOn(col string) (*HashIndex, bool) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, false
	}
	t.mu.RLock()
	ix, ok := t.hash[c]
	t.mu.RUnlock()
	return ix, ok
}

// OrderedIndexOn returns the ordered index on the column, if one exists.
func (t *Table) OrderedIndexOn(col string) (*OrderedIndex, bool) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, false
	}
	t.mu.RLock()
	ix, ok := t.ordered[c]
	t.mu.RUnlock()
	return ix, ok
}

// Lookup returns positions of rows whose column equals v, using a hash
// index when available and a column scan otherwise. The fallback walks
// the typed arrays directly: no Value is constructed per row, and for a
// string column the probe is one dictionary lookup plus a code scan.
func (t *Table) Lookup(col string, v Value) ([]int32, error) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: table %q: no column %q", t.Schema.Name, col)
	}
	t.mu.RLock()
	ix, have := t.hash[c]
	t.mu.RUnlock()
	if have {
		return ix.Lookup(v), nil
	}
	var out []int32
	if t.Schema.Cols[c].Type == TInt {
		if v.Kind != TInt {
			return nil, nil
		}
		for pos, x := range t.cols[c].ints {
			if x == v.Int {
				out = append(out, int32(pos))
			}
		}
		return out, nil
	}
	if v.Kind != TString {
		return nil, nil
	}
	code, ok := t.dict.lookup(v.Str)
	if !ok {
		return nil, nil // string never interned: no row can match
	}
	for pos, x := range t.cols[c].codes {
		if x == code {
			out = append(out, int32(pos))
		}
	}
	return out, nil
}

// Scan visits every row in insertion order until visit returns false.
// The Row passed to visit is a single buffer reused across calls: it is
// valid only during the visit and must be cloned to be retained.
// Position-only readers should prefer ScanPos with IntAt/StrAt.
func (t *Table) Scan(visit func(pos int32, r Row) bool) {
	buf := make(Row, 0, len(t.cols))
	for pos := int32(0); pos < t.nrows; pos++ {
		buf = t.AppendRow(buf[:0], pos)
		if !visit(pos, buf) {
			return
		}
	}
}

// ScanPos visits every row position in insertion order until visit
// returns false, materializing nothing.
func (t *Table) ScanPos(visit func(pos int32) bool) {
	for pos := int32(0); pos < t.nrows; pos++ {
		if !visit(pos) {
			return
		}
	}
}

// ApproxBytes estimates the storage footprint of the table in bytes:
// the columnar arrays (8 bytes per TInt cell, 4 per TString code), the
// shared string dictionary (header + payload + intern-map entry per
// distinct string), and the index entries. Used to reproduce the
// paper's space-requirement comparison (Table 1).
func (t *Table) ApproxBytes() int64 {
	var b int64
	for c := range t.cols {
		if t.Schema.Cols[c].Type == TInt {
			b += 8 * int64(len(t.cols[c].ints))
		} else {
			b += 4 * int64(len(t.cols[c].codes))
		}
	}
	for _, s := range t.dict.strs {
		b += 16 + int64(len(s)) // string header + payload (stored once)
		b += 24                 // intern-map entry (string header + code + overhead)
	}
	if t.pk != nil {
		b += int64(len(t.pk)) * 12
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ix := range t.hash {
		b += int64(len(ix.m)) * 16 // key + slice bookkeeping
		for _, ps := range ix.m {
			b += int64(len(ps)) * 4
		}
	}
	for _, ix := range t.ordered {
		b += int64(ix.Len()) * 4
	}
	return b
}
